// SSSP on a weighted grid standing in for a road network: the min
// aggregation is "pre-incrementalized" (paper §7.2), so ΔV and ΔV★ send
// exactly the same messages — and both match Dijkstra.
//
//	go run ./examples/sssp-roadnet
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/programs"
)

func main() {
	const rows, cols = 80, 80
	g := graph.Grid(rows, cols, 10, 7) // weights in [1,10]
	fmt.Println("road network:", g)

	src := graph.VertexID(0) // top-left corner
	var msgs [2]int64
	var dv *vm.Result
	for i, mode := range []core.Mode{core.Incremental, core.Baseline} {
		prog, err := core.Compile(programs.MustSource("sssp"), core.Options{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		res, err := vm.Run(prog, g, vm.RunOptions{
			Params:  map[string]float64{"src": float64(src)},
			Combine: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		msgs[i] = res.Stats.MessagesSent
		if mode == core.Incremental {
			dv = res
		}
		fmt.Printf("%-4s messages=%d supersteps=%d wall=%v\n",
			mode, res.Stats.MessagesSent, res.Stats.Supersteps, res.Stats.Duration)
	}
	fmt.Printf("ΔV and ΔV★ message counts equal: %v (the standard algorithm is already incremental)\n\n",
		msgs[0] == msgs[1])

	// Check a few corners against Dijkstra.
	oracle := algorithms.SSSPOracle(g, src)
	for _, u := range []graph.VertexID{
		graph.VertexID(cols - 1),          // top-right
		graph.VertexID((rows - 1) * cols), // bottom-left
		graph.VertexID(rows*cols - 1),     // bottom-right
	} {
		got := dv.Field("dist", u)
		fmt.Printf("dist[%4d] = %8.3f (Dijkstra %8.3f, diff %.1e)\n",
			u, got, oracle[u], math.Abs(got-oracle[u]))
	}
}
