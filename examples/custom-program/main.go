// Authoring a new ΔV program: write the pull-based source, inspect what
// every compiler pass did to it (receive loops, change checks, Δ-messages,
// halts), emit the equivalent Go, and run it.
//
// The program computes, per vertex, the weighted "influence" of its
// in-neighbourhood and propagates the maximum influence seen.
//
//	go run ./examples/custom-program
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/deltav/codegen"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
)

const src = `
// influence: a two-phase custom analysis.
param damp : float = 0.5;
init {
  local infl : float = 1.0;
  local seen : float = 0.0
};
step {
  // Phase 1: one round of weighted influence gathering.
  infl = 1.0 + damp * (+ [ u.infl * ew | u <- #in ])
};
iter k {
  // Phase 2: propagate the maximum influence downstream. seen counts the
  // rounds; being a non-idempotent self-update it disables halt-by-default
  // (the compiler's re-execution stability analysis catches it), so the
  // loop needs the iteration bound alongside fixpoint.
  let m : float = max [ u.infl | u <- #in ] in
  infl = max infl m;
  seen = seen + 1.0
} until {
  fixpoint || k >= 50
}
`

func main() {
	prog, err := core.Compile(src, core.Options{Mode: core.Incremental})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== compiled program (transformed AST, paper pseudo-syntax) ==")
	fmt.Println(prog)

	fmt.Println("== generated Go (what dvc -emit go prints) ==")
	gosrc, err := codegen.Generate(prog, "influence")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(firstLines(gosrc, 40))
	fmt.Println("  … (truncated)")

	// Run it on a weighted scale-free graph.
	g := graph.WithRandomWeights(graph.RMAT(10, 6, 0.55, 0.2, 0.2, true, 5), 0.1, 1.0, 9)
	g.BuildReverse()
	res, err := vm.Run(prog, g, vm.RunOptions{Combine: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== run on %v ==\n", g)
	fmt.Printf("supersteps=%d messages=%d phase-iterations=%v\n",
		res.Stats.Supersteps, res.Stats.MessagesSent, res.Iterations)

	best, bestU := 0.0, 0
	for u := 0; u < g.NumVertices(); u++ {
		if v := res.Field("infl", graph.VertexID(u)); v > best {
			best, bestU = v, u
		}
	}
	fmt.Printf("most influential: vertex %d with %.4f\n", bestU, best)
}

func firstLines(s string, n int) string {
	out, count := "", 0
	for _, line := range splitLines(s) {
		out += line + "\n"
		count++
		if count >= n {
			break
		}
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
