// Quickstart: compile the paper's PageRank in ΔV, run it on a synthetic
// graph, and see the automatic incrementalization cut the message count.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/programs"
)

func main() {
	// A scale-free directed graph standing in for a small web crawl.
	g := graph.RMAT(12, 8, 0.57, 0.19, 0.19, true, 1)
	g.BuildReverse()
	fmt.Println("graph:", g)

	src := programs.MustSource("pagerank")
	fmt.Println("\nΔV source:")
	fmt.Println(src)

	// Compile twice: with the paper's full incrementalization pipeline
	// (ΔV) and without the message-reduction passes (ΔV★).
	for _, mode := range []core.Mode{core.Incremental, core.Baseline} {
		prog, err := core.Compile(src, core.Options{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		res, err := vm.Run(prog, g, vm.RunOptions{Combine: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s state=%dB/vertex  messages=%-9d supersteps=%-3d wall=%v\n",
			mode, prog.Layout.ByteSize(), res.Stats.MessagesSent, res.Stats.Supersteps, res.Stats.Duration)
		if mode == core.Incremental {
			fmt.Printf("     top rank: vertex with vl=%.6f\n", maxField(res, g))
		}
	}
	fmt.Println("\nSame results, far fewer messages: every ΔV message is meaningful.")
}

func maxField(res *vm.Result, g *graph.Graph) float64 {
	best := 0.0
	for u := 0; u < g.NumVertices(); u++ {
		if v := res.Field("vl", graph.VertexID(u)); v > best {
			best = v
		}
	}
	return best
}
