// HITS on a web-like graph: the two simultaneous aggregations (authority =
// Σ hub over in-links, hub = Σ auth over out-links) compile to two send
// groups with independent Δ-messages and change checks.
//
//	go run ./examples/hits-web
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/programs"
)

func main() {
	g := graph.RMAT(13, 10, 0.57, 0.19, 0.19, true, 3)
	g.BuildReverse()
	fmt.Println("web graph:", g)

	prog, err := core.Compile(programs.MustSource("hits"), core.Options{Mode: core.Incremental})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d aggregation sites, %d send groups, state %dB/vertex\n",
		len(prog.Sites), len(prog.Groups), prog.Layout.ByteSize())

	res, err := vm.Run(prog, g, vm.RunOptions{Combine: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d supersteps, %d messages, wall %v\n\n",
		res.Stats.Supersteps, res.Stats.MessagesSent, res.Stats.Duration)

	printTop := func(field string) {
		vals, err := res.FieldVector(field)
		if err != nil {
			log.Fatal(err)
		}
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
		fmt.Printf("top 5 by %s:\n", field)
		for _, u := range idx[:5] {
			fmt.Printf("  vertex %-6d %-12.4g (out-deg %d, in-deg %d)\n",
				u, vals[u], g.OutDegree(graph.VertexID(u)), g.InDegree(graph.VertexID(u)))
		}
	}
	printTop("hub")
	printTop("auth")
}
