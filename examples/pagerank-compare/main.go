// A miniature Figure 4: PageRank on the Wikipedia stand-in across all
// three variants of the paper's evaluation — ΔV (incrementalized), ΔV★
// (compiled without message reduction), and a hand-written Pregel+-style
// reference — plus the §4.2.1 lookup-table strawman for contrast.
//
//	go run ./examples/pagerank-compare
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/algorithms"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/programs"
)

func main() {
	g, err := bench.LoadDataset("wikipedia-s")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset wikipedia-s:", g)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tmessages\tsupersteps\tstate B/vertex\twall")

	type row struct {
		name  string
		msgs  int64
		steps int
		state float64
		wall  string
	}
	var rows []row

	for _, mode := range []core.Mode{core.Incremental, core.Baseline, core.MemoTable} {
		prog, err := core.Compile(programs.MustSource("pagerank"), core.Options{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		m, err := vm.NewMachine(prog, g, vm.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(vm.RunOptions{Combine: mode != core.MemoTable})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{mode.String(), res.Stats.MessagesSent, res.Stats.Supersteps,
			m.StateBytes(), res.Stats.Duration.String()})
	}

	e, stats, err := algorithms.RunPageRank(g, bench.PageRankIterations, algorithms.RunOptions{Combine: true})
	if err != nil {
		log.Fatal(err)
	}
	_ = e
	rows = append(rows, row{"Pregel+ (handwritten)", stats.MessagesSent, stats.Supersteps, 8, stats.Duration.String()})

	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%s\n", r.name, r.msgs, r.steps, r.state, r.wall)
	}
	tw.Flush()

	dv, dvStar := rows[0].msgs, rows[1].msgs
	fmt.Printf("\nmessage reduction (ΔV★/ΔV): %.2fx — the paper reports 5.8x on the real Wikipedia graph\n",
		float64(dvStar)/float64(dv))

	// The results are numerically identical across variants.
	oracle := algorithms.PageRankOracle(g, bench.PageRankIterations)
	prog, _ := core.Compile(programs.MustSource("pagerank"), core.Options{Mode: core.Incremental})
	res, err := vm.Run(prog, g, vm.RunOptions{Combine: true})
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for u := range oracle {
		if d := abs(res.Field("vl", graph.VertexID(u)) - oracle[u]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max |ΔV - sequential oracle| over all vertices: %.2e\n", worst)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
