// Package serve turns a one-shot ΔV run into a resident serving process:
// load a graph, converge a compiled program once, then answer point reads
// from an immutable published version while edge mutations stream into a
// bounded log that is periodically collapsed into a delta-recomputation
// repair (vm.RunDelta) — the paper's incrementalization payoff applied to
// the always-on setting where queries must never wait on recomputation.
//
// # Version lifecycle
//
// A Version is an immutable {vertex values, graph, fingerprint, superstep}
// published through one atomic pointer. Readers load the pointer and are
// thereby pinned to that epoch: everything they touch — value vectors,
// adjacency — belongs to one converged fixpoint, bit-stable for as long
// as they hold it. Repair runs entirely off to the side on the next
// graph; only when the repaired fixpoint is complete does a single
// pointer swap publish epoch N+1 (double buffering, generalized: old
// readers finish on N while new readers start on N+1). The old version's
// graph is then retired with graph.Close, whose Retain/Release refcount
// defers the actual unmap past any reader still iterating mapped
// adjacency.
//
// # Repair batching policy
//
// Mutations accepted by Enqueue accumulate in a bounded in-memory log
// (MaxPending; beyond it Enqueue fails with ErrLogFull — backpressure,
// not silent dropping). A background flush collapses the log into one
// graph.Delta and applies it as a single batch every BatchInterval, or as
// soon as MaxBatch entries are pending, whichever comes first; Flush
// forces the same synchronously. Batching preserves log order within and
// across batches, so "add u v; del u v" semantics survive the batch
// boundary. Admission consults the program's static repairability matrix
// (core.RepairProfile, computed once at boot): a batch containing a delta
// class the matrix marks statically unrepairable — Unsupported, or an
// unconditional fallback such as added vertices — skips the planner
// entirely and goes straight to a from-scratch rerun, counted per class
// in Stats. Otherwise each batch tries the cheap path first — vm.RunDelta
// from the previous version's terminal snapshot — and falls back to a
// from-scratch rerun when a per-value guard rejects the delta (snapshot
// mismatch, retracting a live contribution, …). A batch that fails both
// paths is discarded with its error counted and logged: the published
// version always remains a true fixpoint of some graph.
//
// # Checkpoint chain
//
// With Config.ChainDir set, every published version is persisted to a
// checkpoint chain (internal/pregel): the initial convergence writes a
// full base snapshot, and each flushed batch atomically appends the
// batch's mutation log plus an incremental DVSNPD record of the repaired
// fixpoint. A restarted server pointed at the same directory replays the
// chain — mutation logs rebuild the graph from the boot-time one, delta
// records rebuild the tip snapshot — and seeds serving state directly
// from the tip (vm.SeedFromSnapshot) without rerunning the program or
// rereading full vertex state. The boot-time graph itself is not stored
// in the chain; the operator must hand New the same initial graph (same
// fingerprint) the chain was started from.
//
// # Quarantine semantics
//
// With Config.Quarantine set (the default in dvserve), a vertex program
// that panics during a repair or rerun is contained to that vertex
// (pregel.Options.Quarantine): its partial sends are retracted, the
// vertex is removed from the computation, and the run — and therefore the
// server — survives. The cumulative count is exposed in Stats.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/pregel"
)

// ErrLogFull is returned by Enqueue when accepting the mutations would
// exceed Config.MaxPending.
var ErrLogFull = errors.New("serve: mutation log full")

// ErrClosed is returned by operations on a closed server.
var ErrClosed = errors.New("serve: server closed")

// Config configures a Server. Prog and Graph are required; the server
// takes ownership of Graph (it is Closed when its version is retired).
type Config struct {
	// Prog is the compiled program to keep converged.
	Prog *core.Program
	// Graph is the initial graph. Ownership passes to the server.
	Graph *graph.Graph

	// Params override program parameter defaults by name.
	Params map[string]float64
	// Workers, Scheduler, Partition and Combine configure every run the
	// server performs, exactly as in vm.RunOptions.
	Workers   int
	Scheduler pregel.Scheduler
	Partition pregel.Partition
	Combine   bool
	// Quarantine contains vertex-program panics to the panicking vertex
	// instead of failing the batch (see pregel.Options.Quarantine).
	Quarantine bool

	// MaxPending bounds the mutation log; Enqueue fails with ErrLogFull
	// beyond it. Default 65536 entries.
	MaxPending int
	// MaxBatch triggers an immediate flush once this many mutations are
	// pending. Default: MaxPending.
	MaxBatch int
	// BatchInterval is the periodic flush cadence. Zero disables the
	// timer; flushes then happen only via MaxBatch or explicit Flush.
	BatchInterval time.Duration

	// ChainDir, when non-empty, persists every published version to a
	// checkpoint chain in that directory and, when the directory already
	// holds a chain manifest, seeds the server from the chain tip instead
	// of recomputing. The graph passed in Graph must then be the same
	// boot-time graph the chain was started from; its mutation logs are
	// replayed on top of it.
	ChainDir string
	// RebaseEvery caps how many incremental records the chain layers on
	// one base snapshot before writing a fresh full one. Zero selects
	// pregel.DefaultRebaseEvery.
	RebaseEvery int

	// RepairBudget, when positive, bounds each delta repair to
	// ceil(RepairBudget × S) body supersteps, where S is the superstep
	// count of the fixpoint being repaired — past that the repair has lost
	// to the from-scratch path it was supposed to undercut, so the run is
	// abandoned (vm.ErrRepairBudget) and the batch falls back to a
	// from-scratch rerun, counted in Stats. Zero disables the budget.
	RepairBudget float64

	// Logf receives operational log lines (batch failures, fallbacks).
	// Nil discards them.
	Logf func(format string, args ...any)
}

// Version is one published, immutable serving epoch: the converged field
// values of one graph, plus the terminal snapshot that seeds the next
// repair. All exported fields are read-only after publication.
type Version struct {
	// Epoch numbers published versions from 1 (the initial convergence).
	Epoch int64
	// Fingerprint identifies the graph this fixpoint belongs to.
	Fingerprint uint64
	// Superstep is the superstep count at which the fixpoint converged.
	Superstep int
	// Repaired is true when this version was produced by delta repair
	// (vm.RunDelta), false for from-scratch runs (epoch 1, fallbacks).
	Repaired bool
	// Stats is the run that produced this version.
	Stats *pregel.Stats

	g      *graph.Graph
	fields map[string][]float64
	snap   *pregel.Snapshot
}

// Graph returns the version's graph. Callers iterating adjacency while
// the version may be superseded must pin it with Graph().Retain().
func (v *Version) Graph() *graph.Graph { return v.g }

// Field returns the published vector of the named user field.
func (v *Version) Field(name string) ([]float64, bool) {
	vec, ok := v.fields[name]
	return vec, ok
}

// Server is a resident serving process for one compiled program.
type Server struct {
	cfg     Config
	fields  []string // published user-field names, layout order
	profile *core.RepairProfile
	chain   *pregel.ChainWriter // nil unless Config.ChainDir is set

	current atomic.Pointer[Version]

	mu      sync.Mutex // guards pending
	pending []graph.Mutation

	repairMu sync.Mutex // serializes batch application

	wake     chan struct{}
	stop     chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once
	closed   atomic.Bool

	// Counters exposed through Stats.
	reads       atomic.Int64
	mutAccepted atomic.Int64
	mutRejected atomic.Int64
	batches     atomic.Int64
	repairs     atomic.Int64
	fallbacks   atomic.Int64
	// budgetFallbacks counts the fallbacks caused specifically by a repair
	// overrunning Config.RepairBudget (a subset of fallbacks).
	budgetFallbacks atomic.Int64
	failed          atomic.Int64
	quarantined     atomic.Int64
	// staticFallbacks counts, per delta class, the batches that admission
	// short-circuited to the from-scratch path because the repairability
	// matrix rules the class out without looking at values.
	staticFallbacks [core.NumDeltaClasses]atomic.Int64
}

// hookMidRepair, when non-nil, runs inside Flush after the replacement
// version is fully computed but before it is published — the widest
// deterministic window in which a repair is in flight. Tests use it to
// prove reads neither block on the repair lock nor observe torn state.
var hookMidRepair func(old *Version)

// hookDeltaRepair, when non-nil, runs at the top of every vm.RunDelta
// attempt. Tests use it to prove that statically-unrepairable batches
// never reach the planner.
var hookDeltaRepair func()

// New publishes the server's first version and starts the background
// flush loop. Without a chain (or with an empty ChainDir directory) it
// converges cfg.Prog on cfg.Graph from scratch and publishes epoch 1;
// when ChainDir already holds a chain manifest it replays the chain over
// cfg.Graph and seeds the tip fixpoint directly, publishing the epoch the
// previous process reached. On error the caller keeps ownership of
// cfg.Graph.
func New(ctx context.Context, cfg Config) (*Server, error) {
	if cfg.Prog == nil || cfg.Graph == nil {
		return nil, fmt.Errorf("serve: Config needs Prog and Graph")
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 65536
	}
	if cfg.MaxBatch <= 0 || cfg.MaxBatch > cfg.MaxPending {
		cfg.MaxBatch = cfg.MaxPending
	}
	s := &Server{
		cfg:      cfg,
		profile:  cfg.Prog.Repairability(),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	for _, f := range cfg.Prog.Layout.Fields[:cfg.Prog.Layout.UserFields] {
		s.fields = append(s.fields, f.Name)
	}
	if cfg.ChainDir != "" {
		// Opened (and an existing manifest validated) before any compute, so
		// a corrupt chain fails fast with cfg.Graph still owned by the caller.
		w, err := pregel.NewChainWriter(cfg.ChainDir, cfg.RebaseEvery)
		if err != nil {
			return nil, fmt.Errorf("serve: opening chain %s: %w", cfg.ChainDir, err)
		}
		s.chain = w
	}
	var v *Version
	if s.chain != nil && s.chain.Tip() != nil {
		var err error
		v, err = s.bootFromChain(cfg.ChainDir)
		if err != nil {
			return nil, err
		}
	} else {
		res, snap, err := s.runScratch(ctx, cfg.Graph)
		if err != nil {
			return nil, fmt.Errorf("serve: initial convergence: %w", err)
		}
		v, err = s.buildVersion(1, cfg.Graph, res, snap, false)
		if err != nil {
			return nil, err
		}
		if s.chain != nil {
			// Fresh chain: persist the initial convergence as the base so a
			// restart never has to recompute epoch 1 either.
			if _, _, err := s.chain.AppendSnapshot(v.snap); err != nil {
				return nil, fmt.Errorf("serve: persisting initial snapshot: %w", err)
			}
		}
	}
	s.current.Store(v)
	go s.loop()
	return s, nil
}

// bootFromChain replays the chain in dir over the boot-time graph
// cfg.Graph: each persisted mutation log advances the graph one batch, the
// reconstructed tip snapshot then seeds serving state directly
// (vm.SeedFromSnapshot) — no superstep is executed and no full vertex
// state is reread. The returned version carries the epoch the chain
// recorded: 1 + the number of persisted batches. On error cfg.Graph is
// left open (the caller owns it); on success, ownership of the replayed
// graph passes to the returned version and cfg.Graph is retired if the
// replay superseded it.
func (s *Server) bootFromChain(dir string) (*Version, error) {
	st, err := pregel.LoadChain(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: loading chain %s: %w", dir, err)
	}
	g := s.cfg.Graph
	// fail closes the intermediate replay graph (never the caller's).
	fail := func(err error) (*Version, error) {
		if g != s.cfg.Graph {
			g.Close()
		}
		return nil, err
	}
	for i, payload := range st.GraphDeltas {
		d, err := graph.ReadDeltaLog(bytes.NewReader(payload))
		if err != nil {
			return fail(fmt.Errorf("serve: chain %s: decoding mutation log %d: %w", dir, i, err))
		}
		next, _, err := graph.ApplyDelta(g, d)
		if err != nil {
			return fail(fmt.Errorf("serve: chain %s: replaying mutation log %d: %w", dir, i, err))
		}
		if g != s.cfg.Graph {
			g.Close()
		}
		g = next
		if fp := g.Fingerprint(); fp != st.GraphFingerprints[i] {
			return fail(fmt.Errorf("serve: chain %s: graph fingerprint %016x after mutation log %d, chain recorded %016x",
				dir, fp, i, st.GraphFingerprints[i]))
		}
	}
	if fp := g.Fingerprint(); fp != st.Snapshot.Fingerprint {
		return fail(fmt.Errorf("serve: chain %s: replayed graph has fingerprint %016x but the tip snapshot was taken on %016x — wrong boot-time graph?",
			dir, fp, st.Snapshot.Fingerprint))
	}
	res, err := vm.SeedFromSnapshot(s.cfg.Prog, g, s.runOpts(nil), st.Snapshot)
	if err != nil {
		return fail(fmt.Errorf("serve: chain %s: seeding from tip snapshot: %w", dir, err))
	}
	epoch := int64(1 + len(st.GraphDeltas))
	v, err := s.buildVersion(epoch, g, res, st.Snapshot, false)
	if err != nil {
		return fail(err)
	}
	if g != s.cfg.Graph {
		// Success: the server owns the boot-time graph too, and the replayed
		// graph has superseded it.
		s.cfg.Graph.Close()
	}
	s.logf("serve: chain: seeded epoch %d from %s (superstep %d, fingerprint %016x, %d batches replayed)",
		epoch, dir, st.Snapshot.Superstep, st.Snapshot.Fingerprint, len(st.GraphDeltas))
	return v, nil
}

// Current returns the published version. The pointer pins the caller to
// that epoch: its vectors never change and its graph survives (for
// adjacency iteration, take Graph().Retain()).
func (s *Server) Current() *Version {
	s.reads.Add(1)
	return s.current.Load()
}

// FieldNames returns the published user-field names in layout order.
func (s *Server) FieldNames() []string { return s.fields }

// Enqueue appends mutations to the pending log, reporting the new log
// length. It fails with ErrLogFull when the log cannot take them and
// ErrClosed after Close; partial batches are never enqueued.
func (s *Server) Enqueue(muts []graph.Mutation) (pending int, err error) {
	if s.closed.Load() {
		return 0, ErrClosed
	}
	s.mu.Lock()
	if len(s.pending)+len(muts) > s.cfg.MaxPending {
		n := len(s.pending)
		s.mu.Unlock()
		s.mutRejected.Add(int64(len(muts)))
		return n, fmt.Errorf("%w: %d pending + %d new > %d", ErrLogFull, n, len(muts), s.cfg.MaxPending)
	}
	s.pending = append(s.pending, muts...)
	pending = len(s.pending)
	s.mu.Unlock()
	s.mutAccepted.Add(int64(len(muts)))
	if pending >= s.cfg.MaxBatch {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return pending, nil
}

// Pending reports the current mutation-log length.
func (s *Server) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Flush synchronously collapses the pending log into one batch, repairs
// (or recomputes) the fixpoint, and publishes the next version. With an
// empty log it returns the current version unchanged. Concurrent flushes
// serialize; reads are never blocked by a flush in progress.
func (s *Server) Flush(ctx context.Context) (*Version, error) {
	if s.closed.Load() {
		return s.current.Load(), ErrClosed
	}
	s.repairMu.Lock()
	defer s.repairMu.Unlock()

	s.mu.Lock()
	muts := s.pending
	s.pending = nil
	s.mu.Unlock()

	cur := s.current.Load()
	if len(muts) == 0 {
		return cur, nil
	}
	s.batches.Add(1)

	next, err := s.applyBatch(ctx, cur, muts)
	if err != nil {
		s.failed.Add(1)
		s.logf("serve: batch of %d mutations discarded: %v", len(muts), err)
		return cur, err
	}
	if s.chain != nil {
		// Persist before publishing: a version a restart cannot reach must
		// never be served. The chain commits the mutation log and the
		// snapshot as one atomic manifest rename, so a crash here leaves the
		// previous epoch fully replayable.
		if err := s.persistBatch(muts, next); err != nil {
			s.failed.Add(1)
			next.g.Close()
			s.logf("serve: batch of %d mutations discarded: persisting to chain: %v", len(muts), err)
			return cur, fmt.Errorf("serve: persisting to chain: %w", err)
		}
	}
	if hookMidRepair != nil {
		hookMidRepair(cur)
	}
	s.current.Store(next)
	// Retire the superseded graph; Retain/Release defers the unmap past
	// readers still pinned to the old epoch.
	cur.g.Close()
	return next, nil
}

// applyBatch computes the replacement version for cur + muts without
// touching any published state. Admission consults the repairability
// matrix first: a batch containing a statically-unrepairable delta class
// goes straight to the from-scratch path without invoking the planner.
func (s *Server) applyBatch(ctx context.Context, cur *Version, muts []graph.Mutation) (*Version, error) {
	g, applied, err := graph.ApplyDelta(cur.g, &graph.Delta{Muts: muts})
	if err != nil {
		return nil, fmt.Errorf("applying delta: %w", err)
	}
	repaired := false
	var res *vm.Result
	var snap *pregel.Snapshot
	if bad := s.admitBatch(muts); bad != nil {
		// The matrix rules the batch out before any values are looked at;
		// attempting the repair would only rediscover the same verdict.
		s.fallbacks.Add(1)
		s.logf("serve: batch holds %s mutations the program cannot repair (%s); recomputing from scratch",
			bad.Class, bad.Reason)
		res, snap, err = s.runScratch(ctx, g)
	} else {
		res, snap, err = s.runDelta(ctx, g, cur.snap, applied, s.repairBudget(cur))
		if err != nil {
			// A per-value guard rejected the batch (retracting a live
			// contribution, loosening a clamped fixpoint, …), the repair
			// overran its superstep budget, or the run itself aborted: fall
			// back to a from-scratch run on the mutated graph. Correctness
			// never depends on the repair path being available.
			s.fallbacks.Add(1)
			if errors.Is(err, vm.ErrRepairBudget) {
				s.budgetFallbacks.Add(1)
				s.logf("serve: repair passed break-even (%v); recomputing from scratch", err)
			} else {
				s.logf("serve: delta repair unavailable (%v); recomputing from scratch", err)
			}
			res, snap, err = s.runScratch(ctx, g)
		} else {
			repaired = true
			s.repairs.Add(1)
		}
	}
	if err != nil {
		g.Close()
		return nil, fmt.Errorf("from-scratch fallback: %w", err)
	}
	next, err := s.buildVersion(cur.Epoch+1, g, res, snap, repaired)
	if err != nil {
		g.Close()
		return nil, err
	}
	return next, nil
}

// admitBatch checks every delta class present in the batch against the
// repairability matrix. It returns the first verdict that is statically
// unrepairable — Unsupported, or FallbackRequired with an Unconditional
// reason — and bumps the per-class counter for each such class; nil means
// the repair path is worth attempting. A weight rewrite's direction
// (tighten vs loosen) depends on the old weight, so it conservatively
// counts as both weight classes.
func (s *Server) admitBatch(muts []graph.Mutation) *core.ClassVerdict {
	var present [core.NumDeltaClasses]bool
	for _, m := range muts {
		switch m.Op {
		case graph.MutAddEdge:
			present[core.DeltaArcAdd] = true
		case graph.MutRemoveEdge:
			present[core.DeltaArcRemove] = true
		case graph.MutSetWeight:
			present[core.DeltaWeightTighten] = true
			present[core.DeltaWeightLoosen] = true
		case graph.MutAddVertices:
			present[core.DeltaVertexAdd] = true
		}
	}
	var first *core.ClassVerdict
	for c := core.DeltaClass(0); int(c) < core.NumDeltaClasses; c++ {
		if !present[c] {
			continue
		}
		v := s.profile.Verdict(c)
		if v.Cap == core.Repairable || (v.Cap == core.FallbackRequired && !v.Unconditional) {
			continue
		}
		s.staticFallbacks[c].Add(1)
		if first == nil {
			first = &v
		}
	}
	return first
}

// runScratch converges the program from scratch on g, capturing the
// terminal snapshot for the next repair.
func (s *Server) runScratch(ctx context.Context, g *graph.Graph) (*vm.Result, *pregel.Snapshot, error) {
	var sink lastSink
	res, err := vm.RunContext(ctx, s.cfg.Prog, g, s.runOpts(&sink))
	if err != nil {
		return nil, nil, err
	}
	snap, err := sink.snapshot()
	if err != nil {
		return nil, nil, err
	}
	s.noteRun(res)
	return res, snap, nil
}

// repairBudget translates Config.RepairBudget into a superstep bound for
// repairing cur's fixpoint: the from-scratch alternative costs about
// cur.Superstep supersteps, so past RepairBudget × that the repair has
// lost the race it exists to win. Zero means unbounded.
func (s *Server) repairBudget(cur *Version) int {
	if s.cfg.RepairBudget <= 0 {
		return 0
	}
	b := int(math.Ceil(s.cfg.RepairBudget * float64(cur.Superstep)))
	if b < 1 {
		b = 1
	}
	return b
}

// runDelta repairs the fixpoint in snap for the mutated graph g, giving
// up past budget body supersteps (0 = unbounded).
func (s *Server) runDelta(ctx context.Context, g *graph.Graph, snap *pregel.Snapshot, applied *graph.AppliedDelta, budget int) (*vm.Result, *pregel.Snapshot, error) {
	if hookDeltaRepair != nil {
		hookDeltaRepair()
	}
	var sink lastSink
	res, err := vm.RunDeltaContext(ctx, s.cfg.Prog, g, vm.DeltaRunOptions{
		RunOptions:      s.runOpts(&sink),
		Snapshot:        snap,
		Changes:         applied,
		SuperstepBudget: budget,
	})
	if err != nil {
		return nil, nil, err
	}
	next, err := sink.snapshot()
	if err != nil {
		return nil, nil, err
	}
	s.noteRun(res)
	return res, next, nil
}

func (s *Server) runOpts(sink *lastSink) vm.RunOptions {
	opts := vm.RunOptions{
		Params:     s.cfg.Params,
		Workers:    s.cfg.Workers,
		Scheduler:  s.cfg.Scheduler,
		Partition:  s.cfg.Partition,
		Combine:    s.cfg.Combine,
		Quarantine: s.cfg.Quarantine,
	}
	if sink != nil {
		opts.Checkpoint = pregel.CheckpointOptions{Sink: sink}
	}
	return opts
}

// persistBatch appends the flushed batch to the chain: the mutation log
// that explains the graph step plus the repaired fixpoint's snapshot, as
// one atomic commit.
func (s *Server) persistBatch(muts []graph.Mutation, next *Version) error {
	var buf bytes.Buffer
	if err := graph.WriteDeltaLog(&buf, &graph.Delta{Muts: muts}); err != nil {
		return err
	}
	_, _, err := s.chain.AppendBatch(buf.Bytes(), next.snap)
	return err
}

func (s *Server) noteRun(res *vm.Result) {
	if res != nil && res.Stats != nil {
		s.quarantined.Add(int64(res.Stats.Quarantined))
	}
}

// buildVersion freezes a finished run into an immutable Version.
func (s *Server) buildVersion(epoch int64, g *graph.Graph, res *vm.Result, snap *pregel.Snapshot, repaired bool) (*Version, error) {
	fields := make(map[string][]float64, len(s.fields))
	for _, name := range s.fields {
		vec, err := res.FieldVector(name)
		if err != nil {
			return nil, err
		}
		fields[name] = vec
	}
	return &Version{
		Epoch:       epoch,
		Fingerprint: g.Fingerprint(),
		Superstep:   snap.Superstep,
		Repaired:    repaired,
		Stats:       res.Stats,
		g:           g,
		fields:      fields,
		snap:        snap,
	}, nil
}

// loop is the background flusher: ticker-driven when BatchInterval is
// set, wake-driven when MaxBatch fills the log.
func (s *Server) loop() {
	defer close(s.loopDone)
	var tick <-chan time.Time
	if s.cfg.BatchInterval > 0 {
		t := time.NewTicker(s.cfg.BatchInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-tick:
		case <-s.wake:
		}
		// Errors are already counted and logged by Flush; a failed batch
		// must not stop the loop.
		_, _ = s.Flush(context.Background())
	}
}

// Close stops the flush loop and retires the published version's graph.
// Pending mutations are not flushed; call Flush first for a clean drain.
func (s *Server) Close() error {
	s.stopOnce.Do(func() {
		s.closed.Store(true)
		close(s.stop)
		<-s.loopDone
		// Serialize with any in-flight Flush before retiring the graph.
		s.repairMu.Lock()
		defer s.repairMu.Unlock()
		if v := s.current.Load(); v != nil {
			v.g.Close()
		}
	})
	return nil
}

// Stats is a point-in-time operational summary.
type Stats struct {
	Epoch       int64    `json:"epoch"`
	Fingerprint string   `json:"fingerprint"`
	Superstep   int      `json:"superstep"`
	Repaired    bool     `json:"repaired"`
	NumVertices int      `json:"vertices"`
	NumArcs     int      `json:"arcs"`
	Repr        string   `json:"repr"`
	Fields      []string `json:"fields"`

	Pending           int   `json:"pending_mutations"`
	Reads             int64 `json:"reads"`
	MutationsAccepted int64 `json:"mutations_accepted"`
	MutationsRejected int64 `json:"mutations_rejected"`
	Batches           int64 `json:"batches"`
	RepairedBatches   int64 `json:"repaired_batches"`
	FallbackBatches   int64 `json:"fallback_batches"`
	// BudgetFallbackBatches counts the subset of FallbackBatches where the
	// repair was abandoned for overrunning Config.RepairBudget.
	BudgetFallbackBatches int64 `json:"budget_fallback_batches"`
	FailedBatches         int64 `json:"failed_batches"`
	Quarantined           int64 `json:"quarantined_vertices"`
	// ChainDir is the checkpoint chain the server persists to ("" when
	// chaining is disabled).
	ChainDir string `json:"chain_dir,omitempty"`

	// Repairability is the program's static delta-capability matrix, one
	// entry per delta class: "repairable (strategy)" or
	// "fallback|unsupported — reason".
	Repairability map[string]string `json:"repairability"`
	// StaticFallbacks counts, per delta class, the batches that admission
	// sent straight to the from-scratch path without attempting repair.
	StaticFallbacks map[string]int64 `json:"static_fallback_batches"`
}

// Stats snapshots the server's counters and the published version.
func (s *Server) Stats() Stats {
	matrix := make(map[string]string, core.NumDeltaClasses)
	statics := make(map[string]int64, core.NumDeltaClasses)
	for c := core.DeltaClass(0); int(c) < core.NumDeltaClasses; c++ {
		cv := s.profile.Verdict(c)
		if cv.Cap == core.Repairable {
			matrix[c.String()] = fmt.Sprintf("repairable (%s)", cv.Strategy)
		} else {
			matrix[c.String()] = fmt.Sprintf("%s — %s", cv.Cap, cv.Reason)
		}
		statics[c.String()] = s.staticFallbacks[c].Load()
	}
	v := s.current.Load()
	return Stats{
		Epoch:             v.Epoch,
		Fingerprint:       fmt.Sprintf("%016x", v.Fingerprint),
		Superstep:         v.Superstep,
		Repaired:          v.Repaired,
		NumVertices:       v.g.NumVertices(),
		NumArcs:           v.g.NumArcs(),
		Repr:              v.g.Repr(),
		Fields:            s.fields,
		Pending:           s.Pending(),
		Reads:             s.reads.Load(),
		MutationsAccepted: s.mutAccepted.Load(),
		MutationsRejected: s.mutRejected.Load(),
		Batches:               s.batches.Load(),
		RepairedBatches:       s.repairs.Load(),
		FallbackBatches:       s.fallbacks.Load(),
		BudgetFallbackBatches: s.budgetFallbacks.Load(),
		FailedBatches:         s.failed.Load(),
		Quarantined:           s.quarantined.Load(),
		ChainDir:              s.cfg.ChainDir,
		Repairability:     matrix,
		StaticFallbacks:   statics,
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// lastSink keeps the bytes of the most recent snapshot Write. The engine
// writes each barrier snapshot as exactly one Write call, and with no
// periodic interval configured a converged run writes only the terminal
// snapshot — which is precisely the seed the next repair needs.
type lastSink struct {
	buf []byte
}

func (k *lastSink) Write(p []byte) (int, error) {
	k.buf = append(k.buf[:0], p...)
	return len(p), nil
}

func (k *lastSink) snapshot() (*pregel.Snapshot, error) {
	if len(k.buf) == 0 {
		return nil, fmt.Errorf("serve: run produced no terminal snapshot")
	}
	snap, rest, err := pregel.DecodeSnapshot(k.buf)
	if err != nil {
		return nil, fmt.Errorf("serve: decoding terminal snapshot: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("serve: %d trailing snapshot bytes", len(rest))
	}
	return snap, nil
}
