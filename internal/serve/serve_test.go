package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/programs"
)

// compile builds an embedded program in the given mode.
func compile(t *testing.T, name string, mode core.Mode) *core.Program {
	t.Helper()
	prog, err := core.Compile(programs.MustSource(name), core.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// ssspServer spins up a server converging weighted SSSP on a grid. The
// incremental SSSP fixpoint is min-based (idempotent), so delta repair is
// bit-identical to a from-scratch run — the strictest equivalence the
// suite can assert.
func ssspServer(t *testing.T, cfg Config) (*Server, *core.Program) {
	t.Helper()
	prog := compile(t, "sssp", core.Incremental)
	cfg.Prog = prog
	if cfg.Graph == nil {
		cfg.Graph = graph.Grid(15, 15, 10, 3)
	}
	if cfg.Params == nil {
		cfg.Params = map[string]float64{"src": 0}
	}
	cfg.Workers = 3
	cfg.Combine = true
	s, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, prog
}

// scratchVector reruns prog from scratch on g and returns the named field
// — the ground truth every published version is checked against.
func scratchVector(t *testing.T, prog *core.Program, g *graph.Graph, params map[string]float64, field string) []float64 {
	t.Helper()
	res, err := vm.Run(prog, g, vm.RunOptions{Params: params, Workers: 3, Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	vec, err := res.FieldVector(field)
	if err != nil {
		t.Fatal(err)
	}
	return vec
}

func sameVector(t *testing.T, label string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] == want[i] {
			continue
		}
		if tol > 0 && math.Abs(got[i]-want[i]) <= tol {
			continue
		}
		t.Fatalf("%s: vertex %d: got %v, want %v (tol %g)", label, i, got[i], want[i], tol)
	}
}

// TestServeEquivalenceAcrossBatches is the end-to-end acceptance test:
// after N mutation batches the published values must be bit-identical to
// a from-scratch run on the final graph, batch by batch, with the repair
// path (not the fallback) doing the work.
func TestServeEquivalenceAcrossBatches(t *testing.T) {
	s, prog := ssspServer(t, Config{})
	params := map[string]float64{"src": 0}

	// Additions and weight tightenings only: the incremental (dv) min
	// fixpoint can repair those in place; loosening mutations (removals)
	// are exercised by the fallback tests below.
	ref := graph.Grid(15, 15, 10, 3) // mirror of the server's graph
	batches := [][]graph.Mutation{
		{{Op: graph.MutAddEdge, U: 0, V: 200, W: 2}},
		{{Op: graph.MutAddEdge, U: 3, V: 180, W: 1.5}, {Op: graph.MutAddEdge, U: 7, V: 140, W: 3}},
		{{Op: graph.MutSetWeight, U: 3, V: 180, W: 0.25}},
	}
	for i, muts := range batches {
		var err error
		ref, _, err = graph.ApplyDelta(ref, &graph.Delta{Muts: muts})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Enqueue(muts); err != nil {
			t.Fatal(err)
		}
		v, err := s.Flush(context.Background())
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if v.Epoch != int64(i)+2 {
			t.Fatalf("batch %d: epoch %d, want %d", i, v.Epoch, i+2)
		}
		if !v.Repaired {
			t.Fatalf("batch %d: expected the delta-repair path, got a fallback", i)
		}
		if v.Fingerprint != ref.Fingerprint() {
			t.Fatalf("batch %d: fingerprint %016x, reference graph %016x", i, v.Fingerprint, ref.Fingerprint())
		}
		got, ok := v.Field("dist")
		if !ok {
			t.Fatal("published version lost the dist field")
		}
		sameVector(t, "dist after batch", got, scratchVector(t, prog, ref, params, "dist"), 0)
	}
	st := s.Stats()
	if st.RepairedBatches != 3 || st.FallbackBatches != 0 || st.FailedBatches != 0 {
		t.Fatalf("stats = %+v, want 3 repaired batches", st)
	}
}

// TestServeMemoTableRemovalFallsBack: SSSP's body folds dist with its own
// previous value, so even in memo-table mode — where the per-neighbour
// tables can retract the removed contribution itself — a loosening
// mutation is outside the repairable class (the clamp would pin the stale
// fixpoint). The daemon surfaced this bug: before the planner's clamp
// guard, RunDelta reported success here and the server kept serving the
// pre-removal distances. Now the batch must fall back and still publish
// the exact from-scratch answer.
func TestServeMemoTableRemovalFallsBack(t *testing.T) {
	prog := compile(t, "sssp", core.MemoTable)
	g := graph.Grid(12, 12, 10, 5)
	params := map[string]float64{"src": 0}
	s, err := New(context.Background(), Config{
		Prog: prog, Graph: g, Params: params, Workers: 3, Combine: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ref := graph.Grid(12, 12, 10, 5)
	muts := []graph.Mutation{{Op: graph.MutRemoveEdge, U: 0, V: 1}}
	ref, _, err = graph.ApplyDelta(ref, &graph.Delta{Muts: muts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Enqueue(muts); err != nil {
		t.Fatal(err)
	}
	v, err := s.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Repaired {
		t.Fatal("clamped memo-table removal claimed the repair path (stale-serving bug)")
	}
	got, _ := v.Field("dist")
	sameVector(t, "dist", got, scratchVector(t, prog, ref, params, "dist"), 0)
	if st := s.Stats(); st.FallbackBatches != 1 || st.FailedBatches != 0 {
		t.Fatalf("stats = %+v, want 1 fallback", st)
	}
}

// nminSrc is a one-hop weighted min whose output is a pure function of
// the aggregate (no self-fold), so edge removal stays repairable in
// memo-table mode: table surgery plus refold re-derives the min exactly.
const nminSrc = `
init {
  local x : float = 1.0 + 1.0 * id;
  local m : float = infty
};
iter k {
  let t : float = min [ u.x + ew | u <- #in ] in
  m = t
} until { fixpoint }
`

// TestServeMemoTableRemovalRepairs is the positive counterpart: with an
// unclamped program the same mutation shape takes the repair path and the
// published min field is bit-identical to a from-scratch rerun.
func TestServeMemoTableRemovalRepairs(t *testing.T) {
	prog, err := core.Compile(nminSrc, core.Options{Mode: core.MemoTable})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Grid(12, 12, 10, 5)
	s, err := New(context.Background(), Config{Prog: prog, Graph: g, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ref := graph.Grid(12, 12, 10, 5)
	muts := []graph.Mutation{{Op: graph.MutRemoveEdge, U: 0, V: 1}}
	ref, _, err = graph.ApplyDelta(ref, &graph.Delta{Muts: muts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Enqueue(muts); err != nil {
		t.Fatal(err)
	}
	v, err := s.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Repaired {
		t.Fatal("unclamped memo-table removal fell back to scratch")
	}
	got, _ := v.Field("m")
	res, err := vm.Run(prog, ref, vm.RunOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.FieldVector("m")
	if err != nil {
		t.Fatal(err)
	}
	sameVector(t, "m after repaired removal", got, want, 0)
	if st := s.Stats(); st.RepairedBatches != 1 || st.FallbackBatches != 0 {
		t.Fatalf("stats = %+v, want 1 repaired batch", st)
	}
}

// TestServeFallbackOnLoosenedMin: removing an edge loosens a folded-in
// min contribution, which sssp's self-clamping body cannot unwind; the
// server must fall back and still publish the exact from-scratch fixpoint.
func TestServeFallbackOnLoosenedMin(t *testing.T) {
	s, prog := ssspServer(t, Config{})
	muts := []graph.Mutation{{Op: graph.MutRemoveEdge, U: 0, V: 1}}
	ref, _, err := graph.ApplyDelta(graph.Grid(15, 15, 10, 3), &graph.Delta{Muts: muts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Enqueue(muts); err != nil {
		t.Fatal(err)
	}
	v, err := s.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Repaired {
		t.Fatal("loosening batch claimed the repair path")
	}
	got, _ := v.Field("dist")
	sameVector(t, "dist after loosening fallback", got,
		scratchVector(t, prog, ref, map[string]float64{"src": 0}, "dist"), 0)
	if st := s.Stats(); st.FallbackBatches != 1 || st.FailedBatches != 0 {
		t.Fatalf("stats = %+v, want 1 fallback", st)
	}
}

// TestServeRepairOnAddedVertices: a batch that grows the vertex set rides
// the repair path for programs whose init{} ignores the graph size — the
// new vertices are initialized and primed in place, their arcs injected,
// and the published values must still be bit-identical to a from-scratch
// run on the grown graph.
func TestServeRepairOnAddedVertices(t *testing.T) {
	s, prog := ssspServer(t, Config{})
	muts := []graph.Mutation{
		{Op: graph.MutAddVertices, Count: 2},
		{Op: graph.MutAddEdge, U: 0, V: 225, W: 1},
	}
	ref, _, err := graph.ApplyDelta(graph.Grid(15, 15, 10, 3), &graph.Delta{Muts: muts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Enqueue(muts); err != nil {
		t.Fatal(err)
	}
	v, err := s.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Repaired {
		t.Fatal("added-vertex batch fell back to scratch; vertex growth is repairable for sssp")
	}
	if v.Epoch != 2 {
		t.Fatalf("epoch = %d, want 2", v.Epoch)
	}
	got, _ := v.Field("dist")
	sameVector(t, "dist after vertex-add repair", got,
		scratchVector(t, prog, ref, map[string]float64{"src": 0}, "dist"), 0)
	if st := s.Stats(); st.RepairedBatches != 1 || st.FallbackBatches != 0 || st.StaticFallbacks["vertex-add"] != 0 {
		t.Fatalf("stats = %+v, want 1 repaired batch and no fallbacks", st)
	}
}

// TestServeEnqueueBounds: the log is bounded with backpressure, and a
// rejected batch is all-or-nothing.
func TestServeEnqueueBounds(t *testing.T) {
	s, _ := ssspServer(t, Config{MaxPending: 3})
	one := []graph.Mutation{{Op: graph.MutAddEdge, U: 0, V: 7, W: 1}}
	for i := 0; i < 3; i++ {
		if _, err := s.Enqueue(one); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Enqueue(one); !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
	if got := s.Pending(); got != 3 {
		t.Fatalf("pending = %d after rejection, want 3", got)
	}
	if st := s.Stats(); st.MutationsRejected != 1 || st.MutationsAccepted != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Enqueue(one); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
}

// TestServeMaxBatchAutoFlush: filling the log to MaxBatch must wake the
// background loop without any ticker configured.
func TestServeMaxBatchAutoFlush(t *testing.T) {
	s, _ := ssspServer(t, Config{MaxBatch: 2})
	muts := []graph.Mutation{
		{Op: graph.MutAddEdge, U: 0, V: 50, W: 1},
		{Op: graph.MutAddEdge, U: 1, V: 60, W: 1},
	}
	if _, err := s.Enqueue(muts); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Current().Epoch < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("auto flush never published: epoch %d, pending %d", s.Current().Epoch, s.Pending())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeTickerFlush: the periodic loop drains the log without any
// explicit trigger.
func TestServeTickerFlush(t *testing.T) {
	s, _ := ssspServer(t, Config{BatchInterval: 20 * time.Millisecond})
	if _, err := s.Enqueue([]graph.Mutation{{Op: graph.MutAddEdge, U: 0, V: 33, W: 1}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Current().Epoch < 2 {
		if time.Now().After(deadline) {
			t.Fatal("ticker flush never published")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentReadsDuringRepair is the version-swap race suite: reader
// goroutines continuously pin versions and checksum their vectors and
// adjacency while the main goroutine pushes mutation batches through.
// Under -race this proves the swap is clean; the checksum re-reads prove
// a pinned epoch stays bit-identical while repairs publish newer ones.
func TestConcurrentReadsDuringRepair(t *testing.T) {
	s, _ := ssspServer(t, Config{})
	var (
		stop    atomic.Bool
		readErr atomic.Value
		wg      sync.WaitGroup
	)
	fail := func(format string, args ...any) {
		readErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}
	checksum := func(vec []float64) float64 {
		var sum float64
		for _, x := range vec {
			if !math.IsInf(x, 0) {
				sum += x
			}
		}
		return sum
	}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pinned *Version
			var pinnedSum float64
			var last int64
			for !stop.Load() {
				v := s.Current()
				if v.Epoch < last {
					fail("epoch went backwards: %d after %d", v.Epoch, last)
					return
				}
				last = v.Epoch
				vec, ok := v.Field("dist")
				if !ok {
					fail("version %d lost its field", v.Epoch)
					return
				}
				sum := checksum(vec)
				// Pin one version across publishes: its data must never
				// move underneath us, no matter how many epochs pass.
				if pinned == nil {
					pinned, pinnedSum = v, sum
				} else {
					pv, _ := pinned.Field("dist")
					if got := checksum(pv); got != pinnedSum {
						fail("pinned epoch %d mutated: %v -> %v", pinned.Epoch, pinnedSum, got)
						return
					}
				}
				// Adjacency read through the lifetime pin.
				if v.g.Retain() {
					it := v.g.OutArcs(0)
					for it.Next() {
					}
					v.g.Release()
				}
			}
		}()
	}
	for b := 0; b < 5; b++ {
		if _, err := s.Enqueue([]graph.Mutation{{Op: graph.MutAddEdge, U: 0, V: graph.VertexID(40 + b), W: 0.5}}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if msg := readErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	if got := s.Current().Epoch; got != 6 {
		t.Fatalf("final epoch = %d, want 6", got)
	}
}

// TestReadsCompleteWhileRepairInFlight pins the "repair never blocks
// reads" guarantee deterministically: the mid-repair hook runs while
// Flush holds the repair lock with a fully computed but unpublished
// replacement, and reads issued from inside that window must complete
// immediately and still see the old epoch.
func TestReadsCompleteWhileRepairInFlight(t *testing.T) {
	s, _ := ssspServer(t, Config{})
	before := s.Current()
	hookRan := false
	hookMidRepair = func(old *Version) {
		hookRan = true
		done := make(chan *Version, 1)
		go func() { done <- s.Current() }()
		select {
		case v := <-done:
			if v.Epoch != old.Epoch {
				t.Errorf("read during repair saw epoch %d, want the still-published %d", v.Epoch, old.Epoch)
			}
			if vec, ok := v.Field("dist"); !ok || len(vec) == 0 {
				t.Error("read during repair got no values")
			}
		case <-time.After(5 * time.Second):
			t.Error("read blocked while a repair was in flight")
		}
	}
	defer func() { hookMidRepair = nil }()
	if _, err := s.Enqueue([]graph.Mutation{{Op: graph.MutAddEdge, U: 0, V: 99, W: 1}}); err != nil {
		t.Fatal(err)
	}
	after, err := s.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !hookRan {
		t.Fatal("mid-repair hook never ran")
	}
	if after.Epoch != before.Epoch+1 {
		t.Fatalf("epoch %d after flush, want %d", after.Epoch, before.Epoch+1)
	}
}

// TestServeClose: operations after Close fail cleanly and the loop exits.
func TestServeClose(t *testing.T) {
	s, _ := ssspServer(t, Config{BatchInterval: 10 * time.Millisecond})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Enqueue([]graph.Mutation{{Op: graph.MutAddEdge, U: 0, V: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enqueue after Close: %v, want ErrClosed", err)
	}
	if _, err := s.Flush(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
