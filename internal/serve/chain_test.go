package serve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pregel"
)

// copyChainDir snapshots a chain directory into a fresh temp dir, byte for
// byte — the crash suites use it to freeze the on-disk state a kill -9
// would have left behind at that instant.
func copyChainDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// chainGrid is the boot-time graph every (re)start hands the server; the
// chain stores only mutation logs on top of it.
func chainGrid() *graph.Graph { return graph.Grid(12, 12, 10, 3) }

func chainServer(t *testing.T, dir string) (*Server, *core.Program) {
	t.Helper()
	prog := compile(t, "sssp", core.Incremental)
	s, err := New(context.Background(), Config{
		Prog: prog, Graph: chainGrid(), Params: map[string]float64{"src": 0},
		Workers: 3, Combine: true, ChainDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, prog
}

// TestServeChainKillAnywhereResume is the crash suite for the checkpoint
// chain: a chained server works through a batch schedule that exercises
// the repair path, vertex growth, and the from-scratch fallback, and the
// chain directory is frozen after every published epoch — each copy is
// exactly what a kill -9 right after that batch would leave on disk. A new
// server booted from each copy (with only the boot-time graph, never the
// mutated one) must come up at the surviving epoch with bit-identical
// published values, without executing a single superstep — and must then
// keep serving and persisting. A second pass freezes the torn window
// between the record write and the manifest rename: the unreferenced
// record files must be ignored and the previous epoch served.
func TestServeChainKillAnywhereResume(t *testing.T) {
	chainDir := t.TempDir()
	s, prog := chainServer(t, chainDir)
	defer s.Close()

	batches := [][]graph.Mutation{
		{{Op: graph.MutAddEdge, U: 0, V: 100, W: 2}},                                      // repairable injection
		{{Op: graph.MutAddVertices, Count: 1}, {Op: graph.MutAddEdge, U: 5, V: 144, W: 1}}, // repairable growth
		{{Op: graph.MutSetWeight, U: 0, V: 100, W: 0.5}},                                  // repairable tightening
		{{Op: graph.MutRemoveEdge, U: 0, V: 1}},                                           // loosening: from-scratch fallback
		{{Op: graph.MutAddEdge, U: 7, V: 60, W: 1.5}},                                     // repair again after a fallback
	}

	// refs[j], mirror[j], fps[j]: the mutated graph, published dist vector,
	// and fingerprint after j batches on the uninterrupted server.
	refs := []*graph.Graph{chainGrid()}
	v0 := s.Current()
	d0, _ := v0.Field("dist")
	mirror := [][]float64{append([]float64(nil), d0...)}
	fps := []uint64{v0.Fingerprint}
	copies := []string{copyChainDir(t, chainDir)}

	for i, muts := range batches {
		ref, _, err := graph.ApplyDelta(refs[len(refs)-1], &graph.Delta{Muts: muts})
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
		if _, err := s.Enqueue(muts); err != nil {
			t.Fatal(err)
		}
		v, err := s.Flush(context.Background())
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if v.Epoch != int64(i)+2 {
			t.Fatalf("batch %d: epoch %d, want %d", i, v.Epoch, i+2)
		}
		got, _ := v.Field("dist")
		mirror = append(mirror, append([]float64(nil), got...))
		fps = append(fps, v.Fingerprint)
		copies = append(copies, copyChainDir(t, chainDir))
	}
	if st := s.Stats(); st.RepairedBatches != 4 || st.FallbackBatches != 1 || st.FailedBatches != 0 {
		t.Fatalf("uninterrupted stats = %+v, want 4 repaired + 1 fallback", st)
	}

	extra := []graph.Mutation{{Op: graph.MutAddEdge, U: 2, V: 50, W: 1}}
	for j, dir := range copies {
		// Boot from a fresh copy so the continuation batch below does not
		// pollute the frozen state the torn-commit pass reuses.
		s2, _ := chainServer(t, copyChainDir(t, dir))
		v := s2.Current()
		if v.Epoch != int64(j)+1 {
			t.Fatalf("kill after batch %d: restart came up at epoch %d, want %d", j, v.Epoch, j+1)
		}
		if v.Fingerprint != fps[j] {
			t.Fatalf("kill after batch %d: fingerprint %016x, want %016x", j, v.Fingerprint, fps[j])
		}
		if v.Stats.Supersteps != 0 {
			t.Fatalf("kill after batch %d: restart ran %d supersteps; chain boot must seed, not recompute", j, v.Stats.Supersteps)
		}
		got, _ := v.Field("dist")
		sameVector(t, "restarted dist", got, mirror[j], 0)

		// The survivor keeps serving: one more batch repairs from the
		// chain-seeded snapshot and appends to the copied chain.
		refC, _, err := graph.ApplyDelta(refs[j], &graph.Delta{Muts: extra})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s2.Enqueue(extra); err != nil {
			t.Fatal(err)
		}
		vc, err := s2.Flush(context.Background())
		if err != nil {
			t.Fatalf("kill after batch %d: continuation flush: %v", j, err)
		}
		if vc.Epoch != int64(j)+2 || !vc.Repaired {
			t.Fatalf("kill after batch %d: continuation = {Epoch:%d Repaired:%v}, want a repaired epoch %d",
				j, vc.Epoch, vc.Repaired, j+2)
		}
		gotC, _ := vc.Field("dist")
		sameVector(t, "continuation dist", gotC,
			scratchVector(t, prog, refC, map[string]float64{"src": 0}, "dist"), 0)
		refC.Close()
		s2.Close()
	}

	// Torn-commit window: batch j's record files are on disk but the
	// manifest rename never happened. Replay must ignore the unreferenced
	// files and serve epoch j (the previous batch).
	for j := 1; j < len(copies); j++ {
		dir := copyChainDir(t, copies[j])
		mb, err := os.ReadFile(filepath.Join(copies[j-1], pregel.ChainManifestName))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, pregel.ChainManifestName), mb, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, _ := chainServer(t, dir)
		v := s2.Current()
		if v.Epoch != int64(j) {
			t.Fatalf("torn commit of batch %d: epoch %d, want the uncommitted batch dropped (epoch %d)", j, v.Epoch, j)
		}
		got, _ := v.Field("dist")
		sameVector(t, "torn-commit dist", got, mirror[j-1], 0)
		s2.Close()
	}
}

// TestServeChainWrongBootGraph: a chain replays its mutation logs over the
// boot-time graph, so handing the restart a different graph must fail with
// a fingerprint diagnostic instead of serving values for the wrong graph.
func TestServeChainWrongBootGraph(t *testing.T) {
	dir := t.TempDir()
	s, prog := chainServer(t, dir)
	if _, err := s.Enqueue([]graph.Mutation{{Op: graph.MutAddEdge, U: 0, V: 100, W: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	wrong := graph.Grid(11, 11, 10, 3)
	defer wrong.Close()
	_, err := New(context.Background(), Config{
		Prog: prog, Graph: wrong, Params: map[string]float64{"src": 0},
		Workers: 3, Combine: true, ChainDir: dir,
	})
	if err == nil {
		t.Fatal("restart accepted the wrong boot-time graph")
	}
}

// TestServeRepairBudgetFallsBack: with a tiny RepairBudget a long repair
// wave must be abandoned past break-even and the batch recomputed from
// scratch — counted separately in Stats — while a generous budget lets the
// same batch repair in place.
func TestServeRepairBudgetFallsBack(t *testing.T) {
	// A heavy shortcut into the far corner of the grid triggers a repair
	// wave that needs several supersteps to drain.
	muts := []graph.Mutation{{Op: graph.MutAddEdge, U: 0, V: 224, W: 0.5}}
	ref, _, err := graph.ApplyDelta(graph.Grid(15, 15, 10, 3), &graph.Delta{Muts: muts})
	if err != nil {
		t.Fatal(err)
	}

	var logged []string
	s, prog := ssspServer(t, Config{
		RepairBudget: 0.001, // ceil(0.001×S) = 1 body superstep
		Logf:         func(f string, a ...any) { logged = append(logged, f) },
	})
	if _, err := s.Enqueue(muts); err != nil {
		t.Fatal(err)
	}
	v, err := s.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Repaired {
		t.Fatal("budget-starved repair still claimed the repair path")
	}
	got, _ := v.Field("dist")
	sameVector(t, "dist after budget fallback", got,
		scratchVector(t, prog, ref, map[string]float64{"src": 0}, "dist"), 0)
	st := s.Stats()
	if st.FallbackBatches != 1 || st.BudgetFallbackBatches != 1 {
		t.Fatalf("stats = %+v, want the fallback attributed to the budget", st)
	}
	budgetLogged := false
	for _, l := range logged {
		if strings.Contains(l, "break-even") {
			budgetLogged = true
		}
	}
	if !budgetLogged {
		t.Fatalf("budget fallback not logged: %q", logged)
	}

	s2, _ := ssspServer(t, Config{RepairBudget: 50})
	if _, err := s2.Enqueue(muts); err != nil {
		t.Fatal(err)
	}
	v2, err := s2.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Repaired {
		t.Fatal("generously budgeted repair fell back")
	}
	if st := s2.Stats(); st.BudgetFallbackBatches != 0 {
		t.Fatalf("stats = %+v, want no budget fallbacks", st)
	}
}
