package serve

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// gsizeSrc bakes the graph size into every vertex's init{} state, which
// is exactly the shape the vertex-add gate rules out statically: growth
// changes #V for every existing vertex, so init{} rerun on the newcomers
// alone cannot repair the fixpoint.
const gsizeSrc = `
init { local share : float = 1.0 / graphSize };
iter k {
  share = max [ u.share | u <- #in ]
} until { fixpoint }`

// TestServeStaticFallbackSkipsPlanner: a batch whose delta class the
// repairability matrix marks unconditionally unrepairable must be
// admitted straight to the from-scratch path — vm.RunDelta is never
// invoked — and counted in the per-class static-fallback stats. sssp now
// repairs vertex growth in place, so the probe serves a #V-reading
// program instead, where added vertices stay statically unrepairable.
func TestServeStaticFallbackSkipsPlanner(t *testing.T) {
	planner := 0
	hookDeltaRepair = func() { planner++ }
	defer func() { hookDeltaRepair = nil }()

	prog, err := core.Compile(gsizeSrc, core.Options{Mode: core.Incremental})
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	s, err := New(context.Background(), Config{
		Prog: prog, Graph: graph.Grid(15, 15, 10, 3), Workers: 3,
		Logf: func(f string, a ...any) { logged = append(logged, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	muts := []graph.Mutation{
		{Op: graph.MutAddVertices, Count: 3},
		{Op: graph.MutAddEdge, U: 0, V: 226, W: 1},
	}
	ref, _, err := graph.ApplyDelta(graph.Grid(15, 15, 10, 3), &graph.Delta{Muts: muts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Enqueue(muts); err != nil {
		t.Fatal(err)
	}
	v, err := s.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if planner != 0 {
		t.Fatalf("vm.RunDelta was invoked %d times for a statically-unrepairable batch", planner)
	}
	if v.Repaired || v.Epoch != 2 {
		t.Fatalf("version = {Epoch:%d Repaired:%v}, want a from-scratch epoch 2", v.Epoch, v.Repaired)
	}
	got, _ := v.Field("share")
	sameVector(t, "share after static fallback", got,
		scratchVector(t, prog, ref, nil, "share"), 0)

	st := s.Stats()
	if st.FallbackBatches != 1 {
		t.Fatalf("FallbackBatches = %d, want 1", st.FallbackBatches)
	}
	if st.StaticFallbacks["vertex-add"] != 1 {
		t.Fatalf("StaticFallbacks = %v, want vertex-add: 1", st.StaticFallbacks)
	}
	if st.StaticFallbacks["arc-add"] != 0 {
		t.Fatalf("arc-add is repairable for this program, yet StaticFallbacks = %v", st.StaticFallbacks)
	}
	found := false
	for _, l := range logged {
		if strings.Contains(l, "cannot repair") {
			found = true
		}
	}
	if !found {
		t.Fatalf("static fallback not logged with its verdict: %q", logged)
	}
}

// TestServeBlockedProgramAlwaysStatic: a program the matrix blocks outright
// (pagerank's non-fixpoint until{} in dv mode) must send every mutation
// batch — even a plain arc add — down the static from-scratch path.
func TestServeBlockedProgramAlwaysStatic(t *testing.T) {
	planner := 0
	hookDeltaRepair = func() { planner++ }
	defer func() { hookDeltaRepair = nil }()

	prog := compile(t, "pagerank", core.Incremental)
	if prog.Repairability().Blocked() == nil {
		t.Fatal("pagerank/dv should be profile-blocked")
	}
	s, err := New(context.Background(), Config{
		Prog: prog, Graph: graph.Grid(10, 10, 10, 3), Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Enqueue([]graph.Mutation{{Op: graph.MutAddEdge, U: 0, V: 55, W: 1}}); err != nil {
		t.Fatal(err)
	}
	v, err := s.Flush(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if planner != 0 {
		t.Fatal("blocked program reached vm.RunDelta")
	}
	if v.Repaired {
		t.Fatal("blocked program claimed the repair path")
	}
	if got := s.Stats().StaticFallbacks["arc-add"]; got != 1 {
		t.Fatalf("StaticFallbacks[arc-add] = %d, want 1", got)
	}
}

// TestServeStatsRepairabilityMatrix: Stats must expose the full matrix in
// vet's vocabulary — strategies for repairable classes, reasons otherwise.
func TestServeStatsRepairabilityMatrix(t *testing.T) {
	s, _ := ssspServer(t, Config{})
	st := s.Stats()
	if len(st.Repairability) != core.NumDeltaClasses || len(st.StaticFallbacks) != core.NumDeltaClasses {
		t.Fatalf("matrix has %d entries, static counters %d, want %d each",
			len(st.Repairability), len(st.StaticFallbacks), core.NumDeltaClasses)
	}
	if got := st.Repairability["arc-add"]; got != "repairable (delta-inject)" {
		t.Fatalf("arc-add = %q", got)
	}
	if got := st.Repairability["arc-remove"]; !strings.Contains(got, "fallback — ") {
		t.Fatalf("arc-remove = %q, want a fallback verdict with a reason", got)
	}
	if got := st.Repairability["vertex-add"]; got != "repairable (init-prime)" {
		t.Fatalf("vertex-add = %q, want repairable (init-prime)", got)
	}
}
