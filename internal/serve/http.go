package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/graph"
)

// Handler returns the server's HTTP API:
//
//	GET  /healthz            liveness ("ok")
//	GET  /stats              operational counters + published-version info
//	GET  /value/{v}          one vertex's value; ?field= selects the user
//	                         field (default: the program's first)
//	GET  /neighbors/{v}      out-neighbors (+weights on weighted graphs)
//	POST /mutate             deltaio text body (add/del/set/addv lines),
//	                         enqueued for the next repair batch
//	POST /flush              force the pending batch through now
//
// Every read reply carries the epoch, graph fingerprint and superstep of
// the version it was served from, so clients can correlate reads across
// an epoch swap.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /value/{v}", s.handleValue)
	mux.HandleFunc("GET /neighbors/{v}", s.handleNeighbors)
	mux.HandleFunc("POST /mutate", s.handleMutate)
	mux.HandleFunc("POST /flush", s.handleFlush)

	// Everything below is error shaping: without these, requests that miss
	// the method+pattern routes above fall through to the mux's plain-text
	// 404/405 pages. An API client expects machine-readable errors on every
	// path, so malformed vertex paths ("/value/", "/value/1/2"), wrong
	// methods, and unknown routes all answer JSON with the right status.
	mux.HandleFunc("/value/", s.vertexPathFallback)
	mux.HandleFunc("/value", s.vertexPathFallback)
	mux.HandleFunc("/neighbors/", s.vertexPathFallback)
	mux.HandleFunc("/neighbors", s.vertexPathFallback)
	mux.HandleFunc("/mutate", methodOnly(http.MethodPost))
	mux.HandleFunc("/flush", methodOnly(http.MethodPost))
	mux.HandleFunc("/healthz", methodOnly(http.MethodGet))
	mux.HandleFunc("/stats", methodOnly(http.MethodGet))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such route %q", r.URL.Path))
	})
	return mux
}

// vertexPathFallback answers for /value and /neighbors requests the typed
// routes did not match: wrong method (405 + Allow), a missing id
// ("/value", "/value/"), or extra/odd segments ("/value/1/2"). The
// non-integer single-segment case never reaches here — "GET /value/{v}"
// matches it and vertexArg returns the 400.
func (s *Server) vertexPathFallback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed,
			fmt.Sprintf("method %s not allowed on %s (allow GET)", r.Method, r.URL.Path))
		return
	}
	writeError(w, http.StatusBadRequest,
		fmt.Sprintf("bad vertex path %q: want /value/{v} or /neighbors/{v} with a single numeric vertex id", r.URL.Path))
}

// methodOnly rejects the methods the typed route for the same pattern did
// not take, with a JSON 405 instead of the mux's plain-text page.
func methodOnly(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed,
			fmt.Sprintf("method %s not allowed on %s (allow %s)", r.Method, r.URL.Path, allow))
	}
}

// versionMeta is the epoch correlation block every read reply embeds.
type versionMeta struct {
	Epoch       int64  `json:"epoch"`
	Fingerprint string `json:"fingerprint"`
	Superstep   int    `json:"superstep"`
}

func metaOf(v *Version) versionMeta {
	return versionMeta{
		Epoch:       v.Epoch,
		Fingerprint: fmt.Sprintf("%016x", v.Fingerprint),
		Superstep:   v.Superstep,
	}
}

type valueReply struct {
	versionMeta
	Vertex graph.VertexID `json:"vertex"`
	Field  string         `json:"field"`
	Value  float64        `json:"value"`
}

func (s *Server) handleValue(w http.ResponseWriter, r *http.Request) {
	v := s.Current()
	u, ok := s.vertexArg(w, r, v)
	if !ok {
		return
	}
	field := r.URL.Query().Get("field")
	if field == "" {
		field = s.fields[0]
	}
	vec, ok := v.Field(field)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown field %q (have %v)", field, s.fields))
		return
	}
	writeJSON(w, http.StatusOK, valueReply{
		versionMeta: metaOf(v),
		Vertex:      u,
		Field:       field,
		Value:       vec[u],
	})
}

type neighborsReply struct {
	versionMeta
	Vertex    graph.VertexID   `json:"vertex"`
	Degree    int              `json:"degree"`
	Neighbors []graph.VertexID `json:"neighbors"`
	Weights   []float64        `json:"weights,omitempty"`
}

func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	// Adjacency iteration aliases the version's (possibly file-mapped)
	// storage, so unlike value reads it needs a lifetime pin. A failed
	// Retain means the version was superseded and retired between the
	// pointer load and here; one reload reaches a version that cannot
	// have been retired yet, because retirement only happens to a version
	// that has already been replaced as current.
	v := s.Current()
	if !v.g.Retain() {
		v = s.Current()
		if !v.g.Retain() {
			writeError(w, http.StatusServiceUnavailable, "graph version churn; retry")
			return
		}
	}
	defer v.g.Release()
	u, ok := s.vertexArg(w, r, v)
	if !ok {
		return
	}
	reply := neighborsReply{
		versionMeta: metaOf(v),
		Vertex:      u,
		Degree:      v.g.OutDegree(u),
	}
	reply.Neighbors = make([]graph.VertexID, 0, reply.Degree)
	weighted := v.g.Weighted()
	if weighted {
		reply.Weights = make([]float64, 0, reply.Degree)
	}
	it := v.g.OutArcs(u)
	for it.Next() {
		reply.Neighbors = append(reply.Neighbors, it.To())
		if weighted {
			reply.Weights = append(reply.Weights, it.Weight())
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

type mutateReply struct {
	Accepted int   `json:"accepted"`
	Pending  int   `json:"pending"`
	Epoch    int64 `json:"epoch"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	d, err := graph.ReadDeltaLog(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if d.Len() == 0 {
		writeError(w, http.StatusBadRequest, "empty mutation log")
		return
	}
	pending, err := s.Enqueue(d.Muts)
	if err != nil {
		code := http.StatusServiceUnavailable
		writeError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, mutateReply{
		Accepted: d.Len(),
		Pending:  pending,
		Epoch:    s.current.Load().Epoch,
	})
}

type flushReply struct {
	versionMeta
	Repaired bool `json:"repaired"`
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	v, err := s.Flush(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, flushReply{versionMeta: metaOf(v), Repaired: v.Repaired})
}

// vertexArg parses the {v} path segment and bounds-checks it against the
// version being served.
func (s *Server) vertexArg(w http.ResponseWriter, r *http.Request, v *Version) (graph.VertexID, bool) {
	raw := r.PathValue("v")
	u, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad vertex id %q", raw))
		return 0, false
	}
	if int(u) >= v.g.NumVertices() {
		writeError(w, http.StatusNotFound, fmt.Sprintf("vertex %d out of range (graph has %d)", u, v.g.NumVertices()))
		return 0, false
	}
	return graph.VertexID(u), true
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
