package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/graph"
)

// getJSON issues a request against the test server and decodes the JSON
// reply into out, asserting the status code.
func getJSON(t *testing.T, ts *httptest.Server, method, path, body string, wantCode int, out any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d (body: %s)", method, path, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, path, raw, err)
		}
	}
}

// TestHTTPDaemonRoundTrip is the end-to-end serving test the daemon is
// built around: start, query, mutate over the wire, flush, query again,
// and check the repaired values against a from-scratch rerun on an
// identically mutated reference graph.
func TestHTTPDaemonRoundTrip(t *testing.T) {
	s, prog := ssspServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Liveness and the converged first version.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var before valueReply
	getJSON(t, ts, "GET", "/value/1", "", http.StatusOK, &before)
	if before.Epoch != 1 || before.Field != "dist" {
		t.Fatalf("initial value reply = %+v", before)
	}

	// Mutate over the wire: a tightening batch the repair path accepts.
	muts := "# tighten the corner\nadd 0 16 0.25\nset 0 1 0.5\n"
	var acc mutateReply
	getJSON(t, ts, "POST", "/mutate", muts, http.StatusAccepted, &acc)
	if acc.Accepted != 2 || acc.Pending != 2 || acc.Epoch != 1 {
		t.Fatalf("mutate reply = %+v", acc)
	}
	var fl flushReply
	getJSON(t, ts, "POST", "/flush", "", http.StatusOK, &fl)
	if fl.Epoch != 2 || !fl.Repaired {
		t.Fatalf("flush reply = %+v", fl)
	}

	// The served values now match a from-scratch rerun on an identically
	// mutated graph, vertex by vertex over the wire.
	d, err := graph.ReadDeltaLog(strings.NewReader(muts))
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := graph.ApplyDelta(graph.Grid(15, 15, 10, 3), d)
	if err != nil {
		t.Fatal(err)
	}
	want := scratchVector(t, prog, ref, map[string]float64{"src": 0}, "dist")
	for _, u := range []int{0, 1, 16, 17, 100, 224} {
		var got valueReply
		getJSON(t, ts, "GET", fmt.Sprintf("/value/%d?field=dist", u), "", http.StatusOK, &got)
		if got.Epoch != 2 {
			t.Fatalf("vertex %d served from epoch %d, want 2", u, got.Epoch)
		}
		if got.Value != want[u] {
			t.Fatalf("vertex %d = %v over the wire, want %v (from-scratch)", u, got.Value, want[u])
		}
	}

	// Adjacency reads see the mutated topology.
	var nb neighborsReply
	getJSON(t, ts, "GET", "/neighbors/0", "", http.StatusOK, &nb)
	if nb.Epoch != 2 || nb.Degree != len(nb.Neighbors) || len(nb.Weights) != nb.Degree {
		t.Fatalf("neighbors reply = %+v", nb)
	}
	found := false
	for i, v := range nb.Neighbors {
		if v == 16 && nb.Weights[i] == 0.25 {
			found = true
		}
	}
	if !found {
		t.Fatalf("mutated arc 0->16 (w 0.25) missing from neighbors reply %+v", nb)
	}

	// Stats reflect the round trip.
	var st Stats
	getJSON(t, ts, "GET", "/stats", "", http.StatusOK, &st)
	if st.Epoch != 2 || st.MutationsAccepted != 2 || st.RepairedBatches != 1 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHTTPErrorPaths covers every client-error reply the handlers produce.
func TestHTTPErrorPaths(t *testing.T) {
	s, _ := ssspServer(t, Config{MaxPending: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var e map[string]string
	getJSON(t, ts, "GET", "/value/abc", "", http.StatusBadRequest, &e)
	if !strings.Contains(e["error"], "bad vertex id") {
		t.Fatalf("error = %q", e["error"])
	}
	getJSON(t, ts, "GET", "/value/225", "", http.StatusNotFound, &e)
	if !strings.Contains(e["error"], "out of range") {
		t.Fatalf("error = %q", e["error"])
	}
	getJSON(t, ts, "GET", "/value/3?field=nope", "", http.StatusBadRequest, &e)
	if !strings.Contains(e["error"], `unknown field "nope"`) {
		t.Fatalf("error = %q", e["error"])
	}
	getJSON(t, ts, "GET", "/neighbors/-1", "", http.StatusBadRequest, &e)
	getJSON(t, ts, "POST", "/mutate", "frobnicate 1 2\n", http.StatusBadRequest, &e)
	if !strings.Contains(e["error"], "unknown verb") {
		t.Fatalf("error = %q", e["error"])
	}
	getJSON(t, ts, "POST", "/mutate", "# comments only\n", http.StatusBadRequest, &e)
	if !strings.Contains(e["error"], "empty mutation log") {
		t.Fatalf("error = %q", e["error"])
	}
	// Overflowing the bounded ingest log is a 503 (back-pressure), not a 4xx.
	getJSON(t, ts, "POST", "/mutate", "add 1 2\nadd 2 3\nadd 3 4\n", http.StatusServiceUnavailable, &e)
	if !strings.Contains(e["error"], "mutation log full") {
		t.Fatalf("error = %q", e["error"])
	}
	// A method mismatch is a JSON 405, not the mux's plain-text page.
	getJSON(t, ts, "GET", "/mutate", "", http.StatusMethodNotAllowed, &e)
	if !strings.Contains(e["error"], "not allowed") {
		t.Fatalf("error = %q", e["error"])
	}
}

// TestHTTPMalformedPaths pins the error shaping for every request shape
// that misses the typed routes: each must answer JSON (never an empty or
// plain-text body) with the right status code.
func TestHTTPMalformedPaths(t *testing.T) {
	s, _ := ssspServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		method, path string
		wantCode     int
		wantErr      string
	}{
		// Non-integer and out-of-range ids through the typed routes.
		{"GET", "/value/abc", http.StatusBadRequest, "bad vertex id"},
		{"GET", "/value/1.5", http.StatusBadRequest, "bad vertex id"},
		{"GET", "/value/-1", http.StatusBadRequest, "bad vertex id"},
		{"GET", "/value/99999999999", http.StatusBadRequest, "bad vertex id"},
		{"GET", "/value/0x10", http.StatusBadRequest, "bad vertex id"},
		{"GET", "/neighbors/abc", http.StatusBadRequest, "bad vertex id"},
		{"GET", "/neighbors/1e3", http.StatusBadRequest, "bad vertex id"},
		{"GET", "/value/100000", http.StatusNotFound, "out of range"},
		{"GET", "/neighbors/100000", http.StatusNotFound, "out of range"},
		// Missing, empty, and multi-segment vertex paths.
		{"GET", "/value", http.StatusBadRequest, "bad vertex path"},
		{"GET", "/value/", http.StatusBadRequest, "bad vertex path"},
		{"GET", "/value/1/2", http.StatusBadRequest, "bad vertex path"},
		{"GET", "/value/1/", http.StatusBadRequest, "bad vertex path"},
		{"GET", "/value/abc/def", http.StatusBadRequest, "bad vertex path"},
		{"GET", "/neighbors", http.StatusBadRequest, "bad vertex path"},
		{"GET", "/neighbors/", http.StatusBadRequest, "bad vertex path"},
		{"GET", "/neighbors/3/x", http.StatusBadRequest, "bad vertex path"},
		// Wrong methods on every route.
		{"POST", "/value/3", http.StatusMethodNotAllowed, "not allowed"},
		{"DELETE", "/value/3", http.StatusMethodNotAllowed, "not allowed"},
		{"PUT", "/neighbors/3", http.StatusMethodNotAllowed, "not allowed"},
		{"GET", "/mutate", http.StatusMethodNotAllowed, "not allowed"},
		{"GET", "/flush", http.StatusMethodNotAllowed, "not allowed"},
		{"POST", "/healthz", http.StatusMethodNotAllowed, "not allowed"},
		{"POST", "/stats", http.StatusMethodNotAllowed, "not allowed"},
		// Unknown routes.
		{"GET", "/", http.StatusNotFound, "no such route"},
		{"GET", "/values/3", http.StatusNotFound, "no such route"},
		{"POST", "/nope", http.StatusNotFound, "no such route"},
	}
	for _, tc := range cases {
		var e map[string]string
		getJSON(t, ts, tc.method, tc.path, "", tc.wantCode, &e)
		if !strings.Contains(e["error"], tc.wantErr) {
			t.Errorf("%s %s: error = %q, want substring %q", tc.method, tc.path, e["error"], tc.wantErr)
		}
	}

	// The 405s advertise the allowed method.
	req, err := http.NewRequest("POST", ts.URL+"/value/3", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if allow := resp.Header.Get("Allow"); allow != "GET" {
		t.Fatalf("Allow = %q, want GET", allow)
	}
}

// TestHTTPReadsAcrossEpochSwap drives value reads over the wire while
// mutation batches swap versions underneath, checking that every reply is
// internally consistent (epoch monotone per client, value always matching
// the epoch's published vector).
func TestHTTPReadsAcrossEpochSwap(t *testing.T) {
	s, _ := ssspServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lastEpoch := int64(0)
	for i := 0; i < 4; i++ {
		if i > 0 {
			muts := []graph.Mutation{{Op: graph.MutAddEdge, U: graph.VertexID(i), V: graph.VertexID(200 + i), W: 0.1}}
			if _, err := s.Enqueue(muts); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Flush(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		var got valueReply
		getJSON(t, ts, "GET", "/value/42", "", http.StatusOK, &got)
		if got.Epoch < lastEpoch {
			t.Fatalf("epoch went backwards over the wire: %d after %d", got.Epoch, lastEpoch)
		}
		lastEpoch = got.Epoch
		cur := s.Current()
		vec, _ := cur.Field("dist")
		if got.Epoch == cur.Epoch && got.Value != vec[42] {
			t.Fatalf("epoch %d reply %v does not match published vector %v", got.Epoch, got.Value, vec[42])
		}
	}
	if lastEpoch != 4 {
		t.Fatalf("final epoch = %d, want 4", lastEpoch)
	}
}
