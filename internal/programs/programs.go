// Package programs embeds the ΔV benchmark and example programs used
// throughout the repository: the four programs of the paper's evaluation
// (PageRank, SSSP, CC, HITS) plus an extension corpus exercising every
// aggregation operator and phase structure.
package programs

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

//go:embed src/*.dv
var fs embed.FS

// Source returns the ΔV source text of the named program (e.g. "pagerank").
func Source(name string) (string, error) {
	b, err := fs.ReadFile("src/" + name + ".dv")
	if err != nil {
		return "", fmt.Errorf("programs: unknown program %q (have: %s)", name, strings.Join(Names(), ", "))
	}
	return string(b), nil
}

// MustSource is Source but panics on unknown names; for tests and benches.
func MustSource(name string) string {
	s, err := Source(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names lists the available program names, sorted.
func Names() []string {
	entries, err := fs.ReadDir("src")
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		out = append(out, strings.TrimSuffix(e.Name(), ".dv"))
	}
	sort.Strings(out)
	return out
}
