package programs

import (
	"sort"
	"strings"
	"testing"
)

// TestNamesDeterministic pins that Names() is sorted and stable across
// calls: `dvc -list`, the vet corpus gate and every corpus-driven test
// iterate it and must see the same order every run.
func TestNamesDeterministic(t *testing.T) {
	first := Names()
	if !sort.StringsAreSorted(first) {
		t.Fatalf("Names() not sorted: %v", first)
	}
	for i := 0; i < 5; i++ {
		again := Names()
		if len(again) != len(first) {
			t.Fatalf("Names() length changed: %v vs %v", again, first)
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("Names() order changed at %d: %v vs %v", j, again, first)
			}
		}
	}
}

func TestNamesListsWholeCorpus(t *testing.T) {
	names := Names()
	want := []string{"allreach", "bfs", "cc", "degreesum", "hits", "maxval",
		"pagerank", "prod", "reach", "sssp", "twophase", "wcc"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestSourceAndErrors(t *testing.T) {
	src, err := Source("pagerank")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "init {") || !strings.Contains(src, "iter i") {
		t.Fatalf("pagerank source unexpected:\n%s", src)
	}
	if _, err := Source("no-such-program"); err == nil {
		t.Fatal("unknown program should error")
	}
	if got := MustSource("cc"); !strings.Contains(got, "#neighbors") {
		t.Fatal("cc source unexpected")
	}
}

func TestMustSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSource should panic on unknown name")
		}
	}()
	MustSource("nope")
}
