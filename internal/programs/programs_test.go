package programs

import (
	"strings"
	"testing"
)

func TestNamesListsWholeCorpus(t *testing.T) {
	names := Names()
	want := []string{"allreach", "bfs", "cc", "degreesum", "hits", "maxval",
		"pagerank", "prod", "reach", "sssp", "twophase", "wcc"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestSourceAndErrors(t *testing.T) {
	src, err := Source("pagerank")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "init {") || !strings.Contains(src, "iter i") {
		t.Fatalf("pagerank source unexpected:\n%s", src)
	}
	if _, err := Source("no-such-program"); err == nil {
		t.Fatal("unknown program should error")
	}
	if got := MustSource("cc"); !strings.Contains(got, "#neighbors") {
		t.Fatal("cc source unexpected")
	}
}

func TestMustSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSource should panic on unknown name")
		}
	}()
	MustSource("nope")
}
