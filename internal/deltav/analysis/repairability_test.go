package analysis

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/deltav/diag"
	"repro/internal/programs"
)

// TestRepairabilityMatrixShape pins that the analyzer emits exactly one
// info finding per delta class for every corpus program × mode, so the
// rendered matrix is always complete.
func TestRepairabilityMatrixShape(t *testing.T) {
	as, err := ByName([]string{"repairability"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range programs.Names() {
		for _, mode := range []core.Mode{core.Incremental, core.Baseline, core.MemoTable} {
			diags, err := VetSource(programs.MustSource(name), Config{Mode: mode}, as)
			if err != nil {
				t.Fatalf("%s × %s: front end rejected corpus program: %v", name, mode, err)
			}
			if len(diags) != int(core.NumDeltaClasses) {
				t.Errorf("%s × %s: findings = %d, want %d:\n%v",
					name, mode, len(diags), core.NumDeltaClasses, diags)
			}
			seen := map[string]bool{}
			for _, d := range diags {
				if d.Severity != diag.Info || d.Code != "repairability" {
					t.Errorf("%s × %s: unexpected finding %v", name, mode, d)
				}
				cls := strings.SplitN(d.Message, ":", 2)[0]
				if seen[cls] {
					t.Errorf("%s × %s: duplicate class %q", name, mode, cls)
				}
				seen[cls] = true
			}
		}
	}
}

// TestRepairabilityFindings pins message content and source anchoring for
// a representative program.
func TestRepairabilityFindings(t *testing.T) {
	as, _ := ByName([]string{"repairability"})
	diags, err := VetSource(programs.MustSource("sssp"), Config{Mode: core.MemoTable}, as)
	if err != nil {
		t.Fatal(err)
	}
	byClass := map[string]diag.Diagnostic{}
	for _, d := range diags {
		byClass[strings.SplitN(d.Message, ":", 2)[0]] = d
	}
	add := byClass["arc-add"]
	if !strings.Contains(add.Message, "repairable (table-update)") {
		t.Errorf("arc-add = %v", add)
	}
	rem := byClass["arc-remove"]
	if !strings.Contains(rem.Message, "fallback required") ||
		!strings.Contains(rem.Message, "pin the stale fixpoint") {
		t.Errorf("arc-remove = %v", rem)
	}
	if !rem.Pos.IsValid() {
		t.Errorf("arc-remove finding should anchor the clamping assignment: %v", rem)
	}
	if v := byClass["vertex-add"]; !strings.Contains(v.Message, "repairable (init-prime)") {
		t.Errorf("vertex-add = %v", v)
	}

	// A blocked program reports the same blocker for every class.
	diags, err = VetSource(programs.MustSource("pagerank"), Config{Mode: core.Incremental}, as)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "unsupported") || !strings.Contains(d.Message, "fixpoint") {
			t.Errorf("pagerank finding = %v", d)
		}
	}
}
