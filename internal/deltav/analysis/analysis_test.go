package analysis

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/deltav/ast"
	"repro/internal/deltav/diag"
	"repro/internal/deltav/parser"
	"repro/internal/programs"
)

// idempotentAggs counts min/max aggregation sites in statement bodies —
// the sites the invertibility analyzer must reject under -mode dv.
func idempotentAggs(t *testing.T, src string) int {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, s := range prog.Stmts {
		var body ast.Expr
		switch st := s.(type) {
		case *ast.Step:
			body = st.Body
		case *ast.Iter:
			body = st.Body
		}
		ast.Walk(body, func(e ast.Expr) bool {
			if agg, ok := e.(*ast.Agg); ok && agg.Op.Idempotent() {
				n++
			}
			return true
		})
	}
	return n
}

// TestVetCorpusAllModes pins the full program × mode matrix: the only
// errors anywhere are invertibility rejections of min/max sites under
// -mode dv, and the only warning is prod's disabled halt-by-default (its
// body folds the iteration counter into state).
func TestVetCorpusAllModes(t *testing.T) {
	for _, name := range programs.Names() {
		src := programs.MustSource(name)
		wantErrs := idempotentAggs(t, src)
		for _, mode := range []core.Mode{core.Incremental, core.Baseline, core.MemoTable} {
			name, mode := name, mode
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				diags, err := VetSource(src, Config{Mode: mode}, nil)
				if err != nil {
					t.Fatalf("front end rejected corpus program: %v", err)
				}
				errs := diags.Filter(diag.Error)
				want := 0
				if mode == core.Incremental {
					want = wantErrs
				}
				if len(errs) != want {
					t.Fatalf("errors = %d, want %d:\n%v", len(errs), want, diags)
				}
				for _, d := range errs {
					if d.Code != "invertibility" {
						t.Fatalf("unexpected error code %q: %v", d.Code, d)
					}
				}
				var warns diag.List
				for _, d := range diags {
					if d.Severity == diag.Warning {
						warns = append(warns, d)
					}
				}
				switch name {
				case "prod":
					if len(warns) != 1 || warns[0].Code != "initonly" {
						t.Fatalf("prod warnings = %v, want one initonly", warns)
					}
				default:
					if len(warns) != 0 {
						t.Fatalf("unexpected warnings: %v", warns)
					}
				}
			})
		}
	}
}

// TestNegativeFixtures runs each analyzer in isolation over a fixture
// crafted to trigger it, pinning finding count, severity and line.
func TestNegativeFixtures(t *testing.T) {
	type want struct {
		severity diag.Severity
		line     int
	}
	cases := []struct {
		file     string
		analyzer string
		cfg      Config
		want     []want
	}{
		{"invert_minmax.dv", "invertibility", Config{Mode: core.Incremental},
			[]want{{diag.Error, 6}}},
		{"invert_minmax.dv", "invertibility", Config{Mode: core.MemoTable}, nil},
		{"invert_minmax.dv", "invertibility", Config{Mode: core.Baseline}, nil},
		{"meaningless.dv", "meaningfulness", Config{Mode: core.Incremental},
			[]want{{diag.Warning, 8}}},
		{"noconverge.dv", "convergence", Config{Mode: core.Incremental},
			[]want{{diag.Warning, 10}}},
		{"eps_float.dv", "convergence", Config{Mode: core.Incremental},
			[]want{{diag.Warning, 7}}},
		{"eps_float.dv", "convergence", Config{Mode: core.Incremental, Epsilon: 0.001}, nil},
		{"deadfield.dv", "deadfield", Config{Mode: core.Incremental},
			[]want{{diag.Warning, 2}, {diag.Warning, 5}}},
		{"shadow.dv", "shadow", Config{Mode: core.Incremental},
			[]want{{diag.Warning, 8}, {diag.Warning, 9}}},
		{"counterdrive.dv", "initonly", Config{Mode: core.Incremental},
			[]want{{diag.Warning, 6}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file+"/"+tc.analyzer+"/"+tc.cfg.Mode.String(), func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			as, err := ByName([]string{tc.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			diags, err := VetSource(string(src), tc.cfg, as)
			if err != nil {
				t.Fatalf("front end rejected fixture: %v", err)
			}
			if len(diags) != len(tc.want) {
				t.Fatalf("findings = %d, want %d:\n%v", len(diags), len(tc.want), diags)
			}
			for i, w := range tc.want {
				d := diags[i]
				if d.Severity != w.severity || d.Pos.Line != w.line || d.Code != tc.analyzer {
					t.Errorf("finding %d = %v, want severity %s at line %d", i, d, w.severity, w.line)
				}
			}
		})
	}
}

// TestFixturesCompileUnderIntendedMode guards against fixtures that only
// vet-fail: every fixture must still be a valid ΔV program.
func TestFixturesCompileUnderIntendedMode(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.dv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.Compile(string(src), core.Options{Mode: core.MemoTable}); err != nil {
			t.Errorf("%s does not compile: %v", f, err)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("analyzers = %d, want 7", len(all))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Name < all[j].Name }) {
		t.Fatal("All() not sorted by name")
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("incomplete analyzer %+v", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName accepted unknown analyzer")
	}
	as, err := ByName([]string{"shadow", "deadfield"})
	if err != nil || len(as) != 2 || as[0].Name != "shadow" {
		t.Fatalf("ByName = %v, %v", as, err)
	}
}

// TestReportForcesCode pins that findings are always attributable to the
// analyzer that produced them.
func TestReportForcesCode(t *testing.T) {
	p := &Pass{Analyzer: &Analyzer{Name: "myname"}}
	p.Report(diag.Diagnostic{Code: "spoofed", Message: "m"})
	if p.diags[0].Code != "myname" {
		t.Fatalf("code = %q, want myname", p.diags[0].Code)
	}
}
