package analysis

import (
	"repro/internal/core"
	"repro/internal/deltav/ast"
	"repro/internal/deltav/types"
)

// eachBody visits every statement body; iter is nil for step phases.
func eachBody(prog *ast.Program, fn func(body ast.Expr, iter *ast.Iter)) {
	for _, s := range prog.Stmts {
		switch st := s.(type) {
		case *ast.Step:
			fn(st.Body, nil)
		case *ast.Iter:
			fn(st.Body, st)
		}
	}
}

// assignedFields returns the names of fields assigned in any statement
// body (Assign.IsField is set by the type checker, so Vet requires a
// checked program).
func assignedFields(prog *ast.Program) map[string]bool {
	out := map[string]bool{}
	eachBody(prog, func(body ast.Expr, _ *ast.Iter) {
		ast.Walk(body, func(e ast.Expr) bool {
			if a, ok := e.(*ast.Assign); ok && a.IsField {
				out[a.Name] = true
			}
			return true
		})
	})
	return out
}

// invertibility rejects non-invertible aggregations under -mode dv. The
// ΔV scheme turns each state change into a Δ-message that updates a
// memoized accumulator in place (§4.2.2); that needs the operator to be
// invertible (+, and * with the §6.4.1 nullary tracking) so the old
// contribution can be retracted. min/max have no inverse: once a
// neighbour's value moves away from the extremum the accumulator cannot
// forget the stale contribution unless every update happens to be
// monotone, which no static check of the aggregand can guarantee.
var invertibilityAnalyzer = &Analyzer{
	Name: "invertibility",
	Doc:  "reject min/max aggregations under -mode dv (no inverse; §4.2.2)",
	Run: func(p *Pass) {
		if p.Config.Mode != core.Incremental {
			return
		}
		eachBody(p.Program, func(body ast.Expr, _ *ast.Iter) {
			ast.Walk(body, func(e ast.Expr) bool {
				if agg, ok := e.(*ast.Agg); ok && agg.Op.Idempotent() {
					p.Errorf(agg,
						"compile with -mode memotable (the §4.2.1 per-neighbour lookup-table scheme supports non-invertible operators)",
						"%s aggregation is not invertible under -mode dv: a memoized accumulator cannot retract a neighbour's previous contribution (§4.2.2)",
						agg.Op)
				}
				return true
			})
		})
	},
}

// meaningfulness flags aggregations inside iter loops whose input can
// never change after init{}: every re-aggregation then yields the value
// of the first superstep, so the incremental machinery maintains a
// constant. (Step phases run once, where a static aggregation is a
// perfectly sensible one-shot computation — degreesum does exactly that.)
var meaningfulnessAnalyzer = &Analyzer{
	Name: "meaningfulness",
	Doc:  "warn on iter aggregations whose input can never change after init{}",
	Run: func(p *Pass) {
		assigned := assignedFields(p.Program)
		eachBody(p.Program, func(body ast.Expr, iter *ast.Iter) {
			if iter == nil {
				return
			}
			ast.Walk(body, func(e ast.Expr) bool {
				agg, ok := e.(*ast.Agg)
				if !ok {
					return true
				}
				live := false
				ast.Walk(agg.Body, func(b ast.Expr) bool {
					if nf, ok := b.(*ast.NeighborField); ok && assigned[nf.Name] {
						live = true
					}
					return true
				})
				if !live {
					p.Warnf(agg,
						"compute it once in a step{} phase instead",
						"aggregation input never changes after init{}, so every iteration of %q re-derives the same value",
						iter.Var)
				}
				return true
			})
		})
	},
}

// convergence flags iter loops with no visible termination driver, and
// exact-float fixpoint loops. An until{} that mentions neither fixpoint
// nor the iteration counter can only terminate through the MaxIterations
// safety net; a fixpoint over float state re-aggregated with a
// non-idempotent operator and ε = 0 (§9's allowable slop disabled) can be
// kept spinning by floating-point noise alone.
var convergenceAnalyzer = &Analyzer{
	Name: "convergence",
	Doc:  "warn on until{} conditions with no termination driver and on exact-float fixpoints",
	Run: func(p *Pass) {
		eachBody(p.Program, func(body ast.Expr, iter *ast.Iter) {
			if iter == nil {
				return
			}
			usesFix, usesCounter := false, false
			ast.Walk(iter.Until, func(e ast.Expr) bool {
				switch n := e.(type) {
				case *ast.FixpointRef:
					usesFix = true
				case *ast.Var:
					if n.Name == iter.Var {
						usesCounter = true
					}
				}
				return true
			})
			if !usesFix && !usesCounter {
				p.Warnf(iter.Until,
					"bound the loop on the iteration counter or on fixpoint",
					"until{} references neither fixpoint nor the iteration counter %q: the loop can only stop via the MaxIterations safety net",
					iter.Var)
			}
			if usesFix && p.Config.Epsilon == 0 {
				ast.Walk(body, func(e ast.Expr) bool {
					agg, ok := e.(*ast.Agg)
					if !ok || agg.Op.Idempotent() || agg.Type() != types.Float {
						return true
					}
					p.Warnf(agg,
						"pass a small -epsilon slop (§9)",
						"fixpoint loop re-aggregates %s over floats with epsilon 0: floating-point noise can keep the change check true forever",
						agg.Op)
					return true
				})
			}
		})
	},
}

// deadfield flags vertex state that the program never touches again after
// init{} — neither read (directly or as a neighbour's field) nor updated
// — and params that are never referenced. Output fields (assigned but
// never read) and static inputs (read but never assigned) are live.
var deadfieldAnalyzer = &Analyzer{
	Name: "deadfield",
	Doc:  "warn on fields never read nor updated after init{}, and on unused params",
	Run: func(p *Pass) {
		read := map[string]bool{}
		noteReads := func(e ast.Expr) {
			ast.Walk(e, func(x ast.Expr) bool {
				switch n := x.(type) {
				case *ast.Var:
					read[n.Name] = true
				case *ast.NeighborField:
					read[n.Name] = true
				}
				return true
			})
		}
		noteReads(p.Program.Init)
		eachBody(p.Program, func(body ast.Expr, iter *ast.Iter) {
			noteReads(body)
			if iter != nil {
				noteReads(iter.Until)
			}
		})
		assigned := assignedFields(p.Program)
		ast.Walk(p.Program.Init, func(e ast.Expr) bool {
			if l, ok := e.(*ast.Local); ok && !read[l.Name] && !assigned[l.Name] {
				p.Warnf(l, "remove the field or use it",
					"field %q is never read and never updated after init{}", l.Name)
			}
			return true
		})
		for _, pm := range p.Program.Params {
			if !read[pm.Name] {
				p.WarnfAt(pm.P, "remove the param or use it", "param %q is never used", pm.Name)
			}
		}
	},
}

// initonly flags iter bodies that are not re-execution stable: state that
// keeps moving even when no new messages arrive. Such a body disables
// halt-by-default (P6, §6.6) — re-running it is not a no-op, so vertices
// can never vote to halt and every superstep runs the full vertex set.
var initonlyAnalyzer = &Analyzer{
	Name: "initonly",
	Doc:  "warn on iter bodies that mutate state unconditionally, disabling halt-by-default (§6.6)",
	Run: func(p *Pass) {
		eachBody(p.Program, func(body ast.Expr, iter *ast.Iter) {
			if iter == nil || core.ReExecutionStable(body, iter.Var) {
				return
			}
			p.Warnf(iter,
				"restrict self-updates to idempotent forms (min/max, ||, &&) or derive state from aggregations only",
				"iter %q body is not re-execution stable: state changes every superstep even without new messages, so halt-by-default (§6.6) is disabled",
				iter.Var)
		})
	},
}

// shadow flags bindings that reuse the name of a vertex-state field or a
// param. The language resolves the inner binding silently (the typer
// allows it), but a reader — and especially a later assignment, which
// targets the innermost binding — can easily mean the field.
var shadowAnalyzer = &Analyzer{
	Name: "shadow",
	Doc:  "warn on let/aggregation/iter bindings that shadow a field or param",
	Run: func(p *Pass) {
		isField := map[string]bool{}
		for _, f := range p.Info.Fields {
			isField[f.Name] = true
		}
		kind := func(name string) string {
			if isField[name] {
				return "vertex-state field"
			}
			if _, ok := p.Info.Params[name]; ok {
				return "param"
			}
			return ""
		}
		check := func(e ast.Expr) {
			ast.Walk(e, func(x ast.Expr) bool {
				switch n := x.(type) {
				case *ast.Let:
					if k := kind(n.Name); k != "" {
						p.Warnf(n, "rename the let binding",
							"let %q shadows the %s of the same name", n.Name, k)
					}
				case *ast.Agg:
					if k := kind(n.BindVar); k != "" {
						p.Warnf(n, "rename the aggregation variable",
							"aggregation variable %q shadows the %s of the same name", n.BindVar, k)
					}
				}
				return true
			})
		}
		check(p.Program.Init)
		eachBody(p.Program, func(body ast.Expr, iter *ast.Iter) {
			check(body)
			if iter != nil {
				check(iter.Until)
				if k := kind(iter.Var); k != "" {
					p.Warnf(iter, "rename the iteration counter",
						"iteration counter %q shadows the %s of the same name", iter.Var, k)
				}
			}
		})
	},
}
