package analysis

import (
	"fmt"

	"repro/internal/core"
)

// repairability renders the program's static delta-capability matrix
// (core.RepairProfile) as informational findings: one per delta class,
// anchored to the construct that decides it — the clamping assignment, the
// aggregation site, the until{} clause, init{}'s degree read. This is the
// same profile vm.RunDelta validates deltas against and dvserve admits
// batches with, surfaced at vet time so an author learns before deployment
// which mutation classes their program repairs in place and which force a
// from-scratch rerun. Hidden at the default -severity; pass
// `-severity info` to see the matrix.
var repairabilityAnalyzer = &Analyzer{
	Name: "repairability",
	Doc:  "report the per-delta-class repair capability matrix (informational)",
	Run: func(p *Pass) {
		prog, err := core.CompileAST(p.Program, core.Options{Mode: p.Config.Mode})
		if err != nil {
			// Compilation failures are reported by the driver and the
			// error-severity analyzers; there is no profile to render.
			return
		}
		for _, v := range prog.Repairability().Classes {
			var msg string
			switch v.Cap {
			case core.Repairable:
				msg = fmt.Sprintf("%s: repairable (%s)", v.Class, v.Strategy)
			default:
				msg = fmt.Sprintf("%s: %s — %s", v.Class, capabilityPhrase(v.Cap), v.Reason)
			}
			p.InformfAt(v.Pos, v.End, "%s", msg)
		}
	},
}

func capabilityPhrase(c core.Capability) string {
	if c == core.FallbackRequired {
		return "fallback required"
	}
	return "unsupported"
}
