// Package analysis is the ΔV static-analysis suite behind `dvc vet`: a
// small go/analysis-style framework plus the paper-grounded analyzers
// that check whether a program will incrementalize meaningfully.
//
// Each Analyzer inspects a parsed and type-checked program through a Pass
// and reports findings as diag.Diagnostic values. The driver, Vet, runs a
// set of analyzers and returns the merged, position-sorted diag.List.
// Analyzers are pure: they never mutate the program, so the driver can
// hand every analyzer the same tree.
//
// Severity policy: an Error marks a program/mode combination the compiler
// must reject (today only invertibility, §4.2.2); a Warning marks a
// program that compiles but likely does not do what its author intended
// (degenerate incrementalization, disabled halt-by-default, dead state,
// shadowing); an Info finding describes a healthy program (the
// repairability capability matrix) and is hidden at the default severity.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/deltav/ast"
	"repro/internal/deltav/diag"
	"repro/internal/deltav/parser"
	"repro/internal/deltav/token"
	"repro/internal/deltav/typer"
)

// Analyzer is one static-analysis pass.
type Analyzer struct {
	// Name is the stable identifier: the -analyzers flag value and the
	// diagnostic Code.
	Name string
	// Doc is a one-line description shown by `dvc vet -help`.
	Doc string
	// Run inspects the pass's program and reports findings on it.
	Run func(*Pass)
}

// Config parameterizes a vet run with the compilation options the program
// is headed for: some findings depend on the target mode (invertibility)
// or on option values (the ε-slop check).
type Config struct {
	// Mode is the compilation mode the program will be compiled with.
	Mode core.Mode
	// Epsilon is the §9 allowable-slop value the program will run with.
	Epsilon float64
}

// Pass carries one analyzer's view of the program under analysis.
type Pass struct {
	Analyzer *Analyzer
	Program  *ast.Program
	Info     *typer.Info
	Config   Config

	diags diag.List
}

// Report appends a fully-formed diagnostic. The Code is forced to the
// analyzer's name so findings are always attributable.
func (p *Pass) Report(d diag.Diagnostic) {
	d.Code = p.Analyzer.Name
	p.diags.Add(d)
}

// Errorf reports an error-severity finding anchored to a node.
func (p *Pass) Errorf(n ast.Node, suggestion, format string, args ...any) {
	p.reportAt(n.Pos(), n.End(), diag.Error, suggestion, format, args...)
}

// Warnf reports a warning-severity finding anchored to a node.
func (p *Pass) Warnf(n ast.Node, suggestion, format string, args ...any) {
	p.reportAt(n.Pos(), n.End(), diag.Warning, suggestion, format, args...)
}

// WarnfAt reports a warning at an explicit position (for non-Node program
// elements such as params).
func (p *Pass) WarnfAt(pos token.Pos, suggestion, format string, args ...any) {
	p.reportAt(pos, token.Pos{}, diag.Warning, suggestion, format, args...)
}

// InformfAt reports an info-severity finding at an explicit range (for
// program elements that only exist after compilation, such as aggregation
// sites; the range may be invalid for program-wide facts).
func (p *Pass) InformfAt(pos, end token.Pos, format string, args ...any) {
	p.reportAt(pos, end, diag.Info, "", format, args...)
}

func (p *Pass) reportAt(pos, end token.Pos, sev diag.Severity, suggestion, format string, args ...any) {
	p.Report(diag.Diagnostic{
		Pos: pos, End: end, Severity: sev,
		Message: fmt.Sprintf(format, args...), Suggestion: suggestion,
	})
}

// registry holds the built-in analyzers in a fixed order.
var registry = []*Analyzer{
	invertibilityAnalyzer,
	meaningfulnessAnalyzer,
	convergenceAnalyzer,
	deadfieldAnalyzer,
	initonlyAnalyzer,
	shadowAnalyzer,
	repairabilityAnalyzer,
}

// All returns every registered analyzer, sorted by name.
func All() []*Analyzer {
	out := append([]*Analyzer(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName resolves analyzer names (e.g. from a -analyzers flag) to
// analyzers, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range registry {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			known := make([]string, 0, len(registry))
			for _, r := range All() {
				known = append(known, r.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (known: %v)", n, known)
		}
		out = append(out, a)
	}
	return out, nil
}

// Vet runs the given analyzers (nil means all) over a type-checked
// program and returns the merged findings, position-sorted.
func Vet(prog *ast.Program, info *typer.Info, cfg Config, analyzers []*Analyzer) diag.List {
	if analyzers == nil {
		analyzers = All()
	}
	var out diag.List
	for _, a := range analyzers {
		p := &Pass{Analyzer: a, Program: prog, Info: info, Config: cfg}
		a.Run(p)
		out = append(out, p.diags...)
	}
	out.Sort()
	return out
}

// VetSource parses, type-checks and vets ΔV source in one call. Parse and
// type errors come back as the error (a diag.List); analyzer findings as
// the returned list.
func VetSource(src string, cfg Config, analyzers []*Analyzer) (diag.List, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := typer.Check(prog)
	if err != nil {
		return nil, err
	}
	return Vet(prog, info, cfg, analyzers), nil
}
