// Package token defines the lexical tokens of the ΔV language (paper
// Fig. 3) and source positions.
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT // pr, sum, u
	INT   // 42
	FLOAT // 0.85
	TRUE  // true
	FALSE // false

	// Keywords.
	PARAM    // param
	INIT     // init
	STEP     // step
	ITER     // iter
	UNTIL    // until
	LET      // let
	IN       // in
	IF       // if
	THEN     // then
	ELSE     // else
	LOCAL    // local
	MINKW    // min
	MAXKW    // max
	NOT      // not
	GSIZE    // graphSize
	INFTY    // infty
	IDKW     // id
	FIXPOINT // fixpoint
	EW       // ew
	TINT     // int
	TBOOL    // bool
	TFLOAT   // float

	// Graph expressions.
	HASHIN        // #in
	HASHOUT       // #out
	HASHNEIGHBORS // #neighbors

	// Operators and punctuation.
	PLUS      // +
	MINUS     // -
	STAR      // *
	SLASH     // /
	ANDAND    // &&
	OROR      // ||
	LT        // <
	GT        // >
	LE        // <=
	GE        // >=
	EQ        // ==
	NE        // !=
	ASSIGN    // =
	SEMI      // ;
	COLON     // :
	COMMA     // ,
	DOT       // .
	PIPE      // |
	LARROW    // <-
	LBRACE    // {
	RBRACE    // }
	LBRACKET  // [
	RBRACKET  // ]
	LPAREN    // (
	RPAREN    // )
	numtokens // sentinel
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF",
	IDENT: "IDENT", INT: "INT", FLOAT: "FLOAT", TRUE: "true", FALSE: "false",
	PARAM: "param", INIT: "init", STEP: "step", ITER: "iter", UNTIL: "until",
	LET: "let", IN: "in", IF: "if", THEN: "then", ELSE: "else", LOCAL: "local",
	MINKW: "min", MAXKW: "max", NOT: "not", GSIZE: "graphSize", INFTY: "infty",
	IDKW: "id", FIXPOINT: "fixpoint", EW: "ew",
	TINT: "int", TBOOL: "bool", TFLOAT: "float",
	HASHIN: "#in", HASHOUT: "#out", HASHNEIGHBORS: "#neighbors",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", ANDAND: "&&", OROR: "||",
	LT: "<", GT: ">", LE: "<=", GE: ">=", EQ: "==", NE: "!=", ASSIGN: "=",
	SEMI: ";", COLON: ":", COMMA: ",", DOT: ".", PIPE: "|", LARROW: "<-",
	LBRACE: "{", RBRACE: "}", LBRACKET: "[", RBRACKET: "]", LPAREN: "(", RPAREN: ")",
}

// String returns the canonical spelling of the kind.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to kinds.
var Keywords = map[string]Kind{
	"param": PARAM, "init": INIT, "step": STEP, "iter": ITER, "until": UNTIL,
	"let": LET, "in": IN, "if": IF, "then": THEN, "else": ELSE, "local": LOCAL,
	"min": MINKW, "max": MAXKW, "not": NOT, "graphSize": GSIZE, "infty": INFTY,
	"id": IDKW, "fixpoint": FIXPOINT, "ew": EW,
	"int": TINT, "bool": TBOOL, "float": TFLOAT,
	"true": TRUE, "false": FALSE,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position was set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT/INT/FLOAT
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, FLOAT:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
