package vm

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/pregel/transport"
)

// The ΔV corpus sharded across a 2-machine socket mesh must reproduce
// the in-process field vectors bitwise: the VM's compiled programs run
// on the same engine, and gatherShardState re-assembles the full state
// matrix on every shard after the run.

// runCorpusSharded2 compiles name in mode and runs it on both shards of
// a fresh unix-socket mesh, returning each shard's Result.
func runCorpusSharded2(t *testing.T, name string, mode core.Mode, g *graph.Graph, base RunOptions) [2]*Result {
	t.Helper()
	dir := t.TempDir()
	addrs := []string{
		"unix:" + filepath.Join(dir, "s0.sock"),
		"unix:" + filepath.Join(dir, "s1.sock"),
	}
	var out [2]*Result
	errs := [2]error{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := transport.DialMesh(transport.SocketConfig{
				Shard: i, Count: 2, Addrs: addrs,
				Fingerprint: g.Fingerprint(), Timeout: 10 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer tr.Close()
			opts := base
			opts.Shard = &pregel.ShardOptions{Index: i, Count: 2, Transport: tr}
			out[i], errs[i] = Run(compileT(t, name, mode), g, opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	return out
}

func TestShardedCorpusBitIdentical(t *testing.T) {
	prG := directedTestGraph()
	ssspG := graph.Grid(12, 15, 9, 3)
	ccG := graph.PreferentialAttachment(500, 3, 7)
	cases := []struct {
		name  string
		field string
		g     *graph.Graph
		opts  RunOptions
	}{
		{"pagerank", "vl", prG, RunOptions{Workers: 4}},
		{"sssp", "dist", ssspG, RunOptions{Workers: 4, Params: map[string]float64{"src": 5}}},
		{"cc", "cid", ccG, RunOptions{Workers: 4}},
	}
	for _, mode := range []core.Mode{core.Incremental, core.Baseline} {
		for _, tc := range cases {
			t.Run(tc.name+"-"+mode.String(), func(t *testing.T) {
				ref := runT(t, tc.name, mode, tc.g, tc.opts)
				want, err := ref.FieldVector(tc.field)
				if err != nil {
					t.Fatal(err)
				}
				outs := runCorpusSharded2(t, tc.name, mode, tc.g, tc.opts)
				for i, res := range outs {
					if res.Stats.MessagesSent != ref.Stats.MessagesSent ||
						res.Stats.Supersteps != ref.Stats.Supersteps {
						t.Fatalf("shard %d stats diverge: %+v vs %+v", i, res.Stats, ref.Stats)
					}
					got, err := res.FieldVector(tc.field)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("shard %d: %d values, want %d", i, len(got), len(want))
					}
					for u := range want {
						if got[u] != want[u] {
							t.Fatalf("shard %d: %s[%d] = %v, want %v (bitwise)", i, tc.field, u, got[u], want[u])
						}
					}
				}
			})
		}
	}
}
