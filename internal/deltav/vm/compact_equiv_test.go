package vm

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/programs"
)

// Compact-CSR equivalence for the ΔV runtime: every corpus program in
// every compilation mode must leave bit-identical user fields on a
// gap-varint compacted graph and on the flat graph it came from. The
// runtime schedules and sends identically per configuration, so this
// pins decoding bugs, not float slop.

// equivParams supplies the parameter bindings a corpus program declares.
func equivParams(name string) map[string]float64 {
	switch name {
	case "sssp", "bfs", "reach":
		return map[string]float64{"src": 5}
	}
	return nil
}

// compareUserFields asserts that two results agree bitwise on every user
// field of prog's layout. tol > 0 relaxes to a relative tolerance, for
// the one runtime mode whose float association is not reproducible.
func compareUserFields(t *testing.T, label string, prog *core.Program, want, got *Result, tol float64) {
	t.Helper()
	for _, f := range prog.Layout.Fields[:prog.Layout.UserFields] {
		wv, err := want.FieldVector(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		gv, err := got.FieldVector(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		for u := range wv {
			if tol > 0 {
				if !almostEqual(gv[u], wv[u], tol) {
					t.Fatalf("%s: %s[%d] = %g, want %g", label, f.Name, u, gv[u], wv[u])
				}
			} else if math.Float64bits(gv[u]) != math.Float64bits(wv[u]) {
				t.Fatalf("%s: %s[%d] = %g (%x), want %g (%x)",
					label, f.Name, u, gv[u], math.Float64bits(gv[u]), wv[u], math.Float64bits(wv[u]))
			}
		}
	}
}

func TestCompactEquivCorpus(t *testing.T) {
	flat := directedTestGraph()
	compact := graph.MustCompact(flat)
	compact.BuildReverse() // deferred: materializes only if a program pulls #in
	if compact.Fingerprint() != flat.Fingerprint() {
		t.Fatal("fingerprint is not representation-independent")
	}
	// #neighbors programs demand an undirected graph.
	undirFlat := graph.RMAT(8, 4, 0.57, 0.19, 0.19, false, 42)
	undirCompact := graph.MustCompact(undirFlat)
	needsUndirected := map[string]bool{"cc": true, "maxval": true}
	for _, name := range programs.Names() {
		for _, mode := range allModes {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				f, c := flat, compact
				if needsUndirected[name] {
					f, c = undirFlat, undirCompact
				}
				// One worker keeps the send/apply schedule reproducible; the
				// memo-table fold runs in sorted sender order, so every mode
				// is bitwise reproducible and must also match work exactly.
				opts := RunOptions{Workers: 1, Params: equivParams(name)}
				prog := compileT(t, name, mode)
				want, err := Run(prog, f, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Run(compileT(t, name, mode), c, opts)
				if err != nil {
					t.Fatal(err)
				}
				compareUserFields(t, name, prog, want, got, 0)
				if want.Stats.Supersteps != got.Stats.Supersteps ||
					want.Stats.MessagesSent != got.Stats.MessagesSent {
					t.Fatalf("work diverged: %d steps/%d msgs vs %d/%d",
						got.Stats.Supersteps, got.Stats.MessagesSent,
						want.Stats.Supersteps, want.Stats.MessagesSent)
				}
			})
		}
	}
}

// TestCompactEquivWarmDelta replays the delta-recomputation pipeline
// entirely on compacted graphs: seed run, snapshot, ApplyDelta (which must
// preserve the representation), RunDelta repair — and checks the repaired
// state bitwise against a from-scratch run on the flat mutated graph.
func TestCompactEquivWarmDelta(t *testing.T) {
	g0 := weightedChain(80)
	c0 := graph.MustCompact(g0)
	prog := func() *core.Program {
		p, err := core.Compile(programs.MustSource("sssp"), core.Options{Mode: core.Incremental})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	opts := RunOptions{Workers: 4, Params: map[string]float64{"src": 0}, Combine: true}
	snap, _ := terminalVMSnapshot(t, prog(), c0, opts)

	d := &graph.Delta{}
	d.AddWeightedEdge(0, 60, 1.5)
	d.SetWeight(30, 31, 1)
	c1, ad, err := graph.ApplyDelta(c0, d)
	if err != nil {
		t.Fatal(err)
	}
	if !c1.IsCompact() {
		t.Fatalf("ApplyDelta changed representation: %s", c1.Repr())
	}
	repaired, err := RunDelta(prog(), c1, DeltaRunOptions{RunOptions: opts, Snapshot: snap, Changes: ad})
	if err != nil {
		t.Fatal(err)
	}
	g1, _, err := graph.ApplyDelta(g0, d)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := Run(prog(), g1, opts)
	if err != nil {
		t.Fatal(err)
	}
	compareUserFields(t, "warm-delta", prog(), scratch, repaired, 0)
	if repaired.Stats.Supersteps >= scratch.Stats.Supersteps {
		t.Fatalf("repair on compact graph not cheaper: %d vs %d supersteps",
			repaired.Stats.Supersteps, scratch.Stats.Supersteps)
	}
}

// TestCompactEquivCrossReprWarmStart takes the terminal snapshot from a
// run on the FLAT graph and repairs with it on the COMPACT mutated graph
// (and vice versa). Both directions only work if Fingerprint is
// representation-independent — the snapshot/delta handshake compares the
// snapshot's graph fingerprint against the delta's OldFingerprint.
func TestCompactEquivCrossReprWarmStart(t *testing.T) {
	g0 := weightedChain(60)
	c0 := graph.MustCompact(g0)
	opts := RunOptions{Workers: 4, Params: map[string]float64{"src": 0}}
	mk := func() *core.Program {
		p, err := core.Compile(programs.MustSource("sssp"), core.Options{Mode: core.Incremental})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	d := &graph.Delta{}
	d.AddWeightedEdge(0, 40, 1)

	flatSnap, _ := terminalVMSnapshot(t, mk(), g0, opts)
	compactSnap, _ := terminalVMSnapshot(t, mk(), c0, opts)
	if flatSnap.Fingerprint != compactSnap.Fingerprint {
		t.Fatal("snapshots of the two representations disagree on the graph fingerprint")
	}

	for _, dir := range []struct {
		name string
		snap *pregel.Snapshot
		base *graph.Graph
	}{
		{"flat-snap/compact-graph", flatSnap, c0},
		{"compact-snap/flat-graph", compactSnap, g0},
	} {
		t.Run(dir.name, func(t *testing.T) {
			g1, ad, err := graph.ApplyDelta(dir.base, d)
			if err != nil {
				t.Fatal(err)
			}
			repaired, err := RunDelta(mk(), g1, DeltaRunOptions{RunOptions: opts, Snapshot: dir.snap, Changes: ad})
			if err != nil {
				t.Fatal(err)
			}
			scratch, err := Run(mk(), g1, opts)
			if err != nil {
				t.Fatal(err)
			}
			compareUserFields(t, dir.name, mk(), scratch, repaired, 0)
		})
	}
}
