package vm

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/programs"
)

// TestRepairProfilePlannerAgreement is the contract between the static
// repairability matrix and the planner: for every corpus program × mode ×
// delta class, RunDelta's accept/reject decision must equal the profile's
// verdict — accept exactly the Repairable classes — and every accepted
// repair must match a from-scratch run on the mutated graph bitwise. The
// representative deltas are generic (no identity contributions, no
// value-identical transitions), so conditional fallback verdicts reject
// them too.
func TestRepairProfilePlannerAgreement(t *testing.T) {
	for _, name := range programs.Names() {
		for _, mode := range allModes {
			name, mode := name, mode
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				prog := func() *core.Program {
					p, err := core.Compile(programs.MustSource(name), core.Options{Mode: mode})
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					return p
				}
				rp := prog().Repairability()
				g0 := agreementGraph(name)
				opts := RunOptions{Workers: 4, Params: agreementParams(name)}
				snap, _ := terminalVMSnapshot(t, prog(), g0, opts)
				for c := core.DeltaClass(0); int(c) < core.NumDeltaClasses; c++ {
					c := c
					t.Run(c.String(), func(t *testing.T) {
						g1, ad, err := graph.ApplyDelta(g0, agreementDelta(name, c))
						if err != nil {
							t.Fatalf("ApplyDelta: %v", err)
						}
						g1.BuildReverse()
						verdict := rp.Verdict(c)
						res, err := RunDelta(prog(), g1, DeltaRunOptions{
							RunOptions: opts, Snapshot: snap, Changes: ad,
						})
						if wantAccept := verdict.Cap == core.Repairable; (err == nil) != wantAccept {
							t.Fatalf("planner disagrees with the matrix: verdict %s(%s) but RunDelta err = %v",
								verdict.Cap, verdict.Strategy, err)
						}
						if err != nil {
							// The rejection must carry the verdict's reason (or,
							// for value-dependent verdicts, a per-value variant
							// of it) so callers see the same vocabulary vet
							// prints. Both vocabularies share these markers.
							if !strings.Contains(err.Error(), "from scratch") &&
								!strings.Contains(err.Error(), "delta run") &&
								!strings.Contains(err.Error(), "re-sends full values") &&
								!strings.Contains(err.Error(), "repaired in place") {
								t.Fatalf("rejection does not speak the matrix vocabulary: %v", err)
							}
							return
						}
						scratch, err := Run(prog(), g1, opts)
						if err != nil {
							t.Fatalf("scratch run: %v", err)
						}
						compareUserFields(t, name, prog(), scratch, res, 0)
					})
				}
			})
		}
	}
}

// agreementGraph picks a seed graph the program converges on: a weighted
// undirected cycle for the #neighbors programs, a weighted directed chain
// (with its reverse CSR, for #out pulls) otherwise.
func agreementGraph(name string) *graph.Graph {
	switch name {
	case "cc", "maxval":
		const n = 60
		b := graph.NewBuilder(n, false)
		for i := 0; i < n; i++ {
			b.AddWeightedEdge(graph.VertexID(i), graph.VertexID((i+1)%n), 2)
		}
		return b.Finalize()
	default:
		g := weightedChain(40)
		g.BuildReverse()
		return g
	}
}

func agreementParams(name string) map[string]float64 {
	switch name {
	case "sssp", "bfs", "reach":
		return map[string]float64{"src": 0}
	}
	return nil
}

// agreementDelta builds one generic member of the class: mutated arcs sit
// mid-graph where every contribution is finite/true, so no per-value guard
// can admit them as degenerate.
func agreementDelta(name string, c core.DeltaClass) *graph.Delta {
	d := &graph.Delta{}
	undirected := name == "cc" || name == "maxval"
	switch c {
	case core.DeltaArcAdd:
		if undirected {
			d.AddWeightedEdge(3, 30, 1.5)
		} else {
			d.AddWeightedEdge(2, 25, 1.5)
		}
	case core.DeltaArcRemove:
		if undirected {
			d.RemoveEdge(10, 11)
		} else {
			d.RemoveEdge(20, 21)
		}
	case core.DeltaWeightTighten:
		d.SetWeight(10, 11, 1) // chain/cycle arcs start at weight 2
	case core.DeltaWeightLoosen:
		d.SetWeight(10, 11, 5)
	case core.DeltaVertexAdd:
		d.AddVertices(2)
	}
	return d
}
