package vm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/deltav/ast"
	"repro/internal/deltav/types"
	"repro/internal/graph"
	"repro/internal/pregel"
)

// evaluator interprets resolved ΔV expressions for one vertex during one
// superstep. All values are float64-encoded: bools are 0/1 and ints are
// integral floats (exact up to 2^53).
type evaluator struct {
	m    *Machine
	ctx  *pregel.Context[VState, Msg]
	u    graph.VertexID
	base int

	lets []float64
	msgs []Msg
	cur  *Msg
	iter int

	curWeight float64
	curDest   graph.VertexID

	// redirect, when non-nil, remaps field slots during evaluation; used
	// to recompute a slot expression against the $old fields for Δ
	// synthesis (Eq. 11).
	redirect map[int]int

	// degOverride, when non-nil, substitutes the vertex's degrees during
	// Cardinality evaluation. The repair planner uses it to evaluate
	// pre-mutation contributions against the mutated graph's CSR.
	degOverride *vertexDegrees

	// foldKeys is tableFold's reusable sender-sort scratch.
	foldKeys []graph.VertexID

	changed bool
}

// vertexDegrees is an explicit degree pair for degOverride.
type vertexDegrees struct {
	in, out int
}

func (ev *evaluator) field(slot int) float64 {
	if ev.redirect != nil {
		if o, ok := ev.redirect[slot]; ok {
			slot = o
		}
	}
	return ev.m.state[ev.base+slot]
}

// eval evaluates e and returns its float64-encoded value (0 for
// unit-typed statements).
func (ev *evaluator) eval(e ast.Expr) float64 {
	switch n := e.(type) {
	case *ast.IntLit:
		return float64(n.Val)
	case *ast.FloatLit:
		return n.Val
	case *ast.BoolLit:
		return boolTo01(n.Val)
	case *ast.Infty:
		return math.Inf(1)
	case *ast.GraphSize:
		return float64(ev.m.g.NumVertices())
	case *ast.VertexID:
		return float64(ev.u)
	case *ast.EdgeWeight:
		return ev.curWeight
	case *ast.Var:
		switch {
		case n.Slot >= 0:
			return ev.lets[n.Slot]
		case n.Slot == core.IterVarSlot:
			return float64(ev.iter)
		default:
			return ev.m.params[core.ParamIndex(n.Slot)]
		}
	case *ast.Field:
		return ev.field(n.Slot)
	case *ast.OldField:
		return ev.m.state[ev.base+n.Slot]
	case *ast.Changed:
		cur := ev.m.state[ev.base+n.Slot]
		old := ev.m.state[ev.base+n.OldSlot]
		eps := ev.m.prog.Opts.Epsilon
		if eps > 0 && ev.m.prog.Layout.Fields[n.Slot].Type == types.Float {
			return boolTo01(math.Abs(cur-old) > eps)
		}
		return boolTo01(cur != old)
	case *ast.Unary:
		if n.Op == "not" {
			return boolTo01(ev.eval(n.X) == 0)
		}
		return -ev.eval(n.X)
	case *ast.Binary:
		switch n.Op {
		case "&&":
			if ev.eval(n.L) == 0 {
				return 0
			}
			return boolTo01(ev.eval(n.R) != 0)
		case "||":
			if ev.eval(n.L) != 0 {
				return 1
			}
			return boolTo01(ev.eval(n.R) != 0)
		}
		l, r := ev.eval(n.L), ev.eval(n.R)
		switch n.Op {
		case "+":
			return l + r
		case "-":
			return l - r
		case "*":
			return l * r
		case "/":
			return l / r
		case "<":
			return boolTo01(l < r)
		case ">":
			return boolTo01(l > r)
		case "<=":
			return boolTo01(l <= r)
		case ">=":
			return boolTo01(l >= r)
		case "==":
			return boolTo01(l == r)
		case "!=":
			return boolTo01(l != r)
		}
		panic(fmt.Sprintf("vm: unknown operator %q", n.Op))
	case *ast.MinMax:
		a, b := ev.eval(n.A), ev.eval(n.B)
		if n.IsMax {
			return math.Max(a, b)
		}
		return math.Min(a, b)
	case *ast.If:
		if ev.eval(n.Cond) != 0 {
			return ev.eval(n.Then)
		}
		if n.Else != nil {
			return ev.eval(n.Else)
		}
		return 0
	case *ast.Let:
		ev.lets[n.Slot] = ev.eval(n.Init)
		return ev.eval(n.Body)
	case *ast.Local:
		ev.m.state[ev.base+n.Slot] = ev.eval(n.Init)
		return 0
	case *ast.Assign:
		v := ev.eval(n.Value)
		if !n.IsField {
			ev.lets[n.Slot] = v
			return 0
		}
		idx := ev.base + n.Slot
		if ev.m.prog.Layout.Fields[n.Slot].Kind == core.UserField && ev.m.state[idx] != v {
			ev.changed = true
		}
		ev.m.state[idx] = v
		return 0
	case *ast.Seq:
		var v float64
		for _, it := range n.Items {
			v = ev.eval(it)
		}
		return v
	case *ast.Cardinality:
		return float64(ev.degree(n.G))
	case *ast.ForNeighbors:
		// Broadcast fast path (the runtime side of the Eq. 7 lift): when
		// the loop body is a send whose payload does not read the edge
		// weight, the message is identical on every edge — build it once.
		if send, ok := n.Body.(*ast.Send); ok && !ev.m.groupUsesWeight(send.Group) {
			ev.curWeight = 1
			if msg, sendIt := ev.buildMsg(send); sendIt {
				ev.forPushEdges(n.G, func(dest graph.VertexID, _ float64) {
					ev.ctx.Send(dest, msg)
				})
			}
			return 0
		}
		ev.forPushEdges(n.G, func(dest graph.VertexID, w float64) {
			ev.curDest, ev.curWeight = dest, w
			ev.eval(n.Body)
		})
		return 0
	case *ast.Send:
		ev.send(n)
		return 0
	case *ast.MsgLoop:
		for i := range ev.msgs {
			if int(ev.msgs[i].Group) != n.Group {
				continue
			}
			ev.cur = &ev.msgs[i]
			ev.eval(n.Body)
		}
		ev.cur = nil
		return 0
	case *ast.MsgSlot:
		return ev.cur.Vals[ev.m.prog.Sites[n.Site].SlotInGroup]
	case *ast.MsgIsNull:
		return boolTo01(ev.cur.TagNull&(1<<ev.m.prog.Sites[n.Site].SlotInGroup) != 0)
	case *ast.MsgPrevNull:
		return boolTo01(ev.cur.TagPrev&(1<<ev.m.prog.Sites[n.Site].SlotInGroup) != 0)
	case *ast.TableUpdate:
		ev.tableUpdate(n.Group)
		return 0
	case *ast.TableFold:
		return ev.tableFold(n.Site)
	case *ast.Halt:
		ev.ctx.VoteToHalt()
		return 0
	case *ast.Delta:
		panic("vm: Delta outside a send payload")
	}
	panic(fmt.Sprintf("vm: eval missing case for %T", e))
}

// degree is the receiver-perspective count |g|.
func (ev *evaluator) degree(g ast.GraphDir) int {
	if d := ev.degOverride; d != nil {
		if g == ast.DirIn {
			return d.in
		}
		return d.out
	}
	switch g {
	case ast.DirIn:
		return ev.m.g.InDegree(ev.u)
	case ast.DirOut:
		return ev.m.g.OutDegree(ev.u)
	default:
		return ev.m.g.OutDegree(ev.u) // undirected: neighbours
	}
}

// forPushEdges iterates the sender-perspective edges of a push direction,
// yielding each destination and edge weight.
func (ev *evaluator) forPushEdges(dir ast.GraphDir, fn func(dest graph.VertexID, w float64)) {
	g := ev.m.g
	var it graph.ArcIter
	switch dir {
	case ast.DirIn:
		it = g.InArcs(ev.u)
	default: // DirOut and DirNeighbors
		it = g.OutArcs(ev.u)
	}
	for it.Next() {
		v, w := it.To(), it.Weight()
		fn(v, w)
	}
}

// send assembles and emits one message for the current edge (set by the
// enclosing ForNeighbors).
func (ev *evaluator) send(n *ast.Send) {
	if msg, sendIt := ev.buildMsg(n); sendIt {
		ev.ctx.Send(ev.curDest, msg)
	}
}

// buildMsg assembles a message from a Send node's payload; the second
// result is false when every slot is a no-op Δ (the message would not be
// meaningful).
func (ev *evaluator) buildMsg(n *ast.Send) (Msg, bool) {
	g := ev.m.prog.Groups[n.Group]
	msg := Msg{Group: uint8(g.ID), NVals: uint8(len(n.Payload)), Sender: ev.u}
	noop := true
	for i, p := range n.Payload {
		if d, ok := p.(*ast.Delta); ok {
			val, isNull, prevNull, slotNoop := ev.delta(d)
			msg.Vals[i] = val
			if isNull {
				msg.TagNull |= 1 << i
			}
			if prevNull {
				msg.TagPrev |= 1 << i
			}
			if !slotNoop {
				noop = false
			}
		} else {
			msg.Vals[i] = ev.eval(p)
			noop = false
		}
	}
	return msg, !noop
}

// groupUsesWeight reports whether any site of the group reads ew.
func (m *Machine) groupUsesWeight(group int) bool {
	for _, sid := range m.prog.Groups[group].Sites {
		if m.prog.Sites[sid].UsesWeight {
			return true
		}
	}
	return false
}

// delta synthesizes the Δ-message value for one slot (P5, Eq. 11): the
// value v such that acc ⊞ new ≃ (acc ⊞ old) ⊞ v, with the §6.4.1 nullary
// tags for multiplicative operators.
func (ev *evaluator) delta(d *ast.Delta) (val float64, isNull, prevNull, noop bool) {
	s := ev.m.prog.Sites[d.Site]
	newV := ev.eval(d.X)
	ev.redirect = ev.m.redirectFor(s)
	oldV := ev.eval(d.X)
	ev.redirect = nil
	if newV == oldV {
		return core.Identity(s.Op), false, false, true
	}
	switch s.Op {
	case ast.AggSum:
		return newV - oldV, false, false, false
	case ast.AggMin:
		if newV > oldV {
			ev.m.nonMonotone.Add(1)
		}
		return newV, false, false, false
	case ast.AggMax:
		if newV < oldV {
			ev.m.nonMonotone.Add(1)
		}
		return newV, false, false, false
	case ast.AggProd:
		switch {
		case newV == 0:
			return 0, true, false, false
		case oldV == 0:
			lastNN := ev.m.state[ev.base+s.LastNNSlot]
			return newV / lastNN, false, true, false
		default:
			return newV / oldV, false, false, false
		}
	case ast.AggAnd, ast.AggOr:
		abs, _ := core.Absorbing(s.Op)
		if newV == abs {
			return newV, true, false, false
		}
		// newV is the identity and oldV was absorbing.
		return newV, false, true, false
	}
	panic("vm: delta for unknown operator")
}

// redirectFor returns the precomputed field→old-field remapping of a site.
func (m *Machine) redirectFor(s *core.AggSite) map[int]int {
	return m.redirects[s.ID]
}

// tableUpdate implements the §4.2.1 receive path: record each sender's
// latest contribution in the per-neighbour lookup tables of the group's
// sites. A sender with parallel edges to this vertex sends one message per
// edge in the same superstep; those are merged with the site's ⊞, which is
// exactly the sender's total contribution for any commutative-associative
// operator. A fresh superstep's value replaces the cached one (the cache
// update of Fig. 2b).
func (ev *evaluator) tableUpdate(group int) {
	g := ev.m.prog.Groups[group]
	var replaced map[graph.VertexID]bool
	for _, sid := range g.Sites {
		s := ev.m.prog.Sites[sid]
		slotIdx := s.SlotInGroup
		if replaced == nil {
			replaced = make(map[graph.VertexID]bool, 4)
		} else {
			clear(replaced)
		}
		tbl := ev.m.tables[sid][ev.u]
		for i := range ev.msgs {
			msg := &ev.msgs[i]
			if int(msg.Group) != group {
				continue
			}
			if tbl == nil {
				tbl = make(map[graph.VertexID]float64, 4)
				ev.m.tables[sid][ev.u] = tbl
			}
			if replaced[msg.Sender] {
				tbl[msg.Sender] = core.Apply(s.Op, tbl[msg.Sender], msg.Vals[slotIdx])
			} else {
				tbl[msg.Sender] = msg.Vals[slotIdx]
				replaced[msg.Sender] = true
			}
		}
	}
}

// tableFold implements the §4.2.1 aggregation path: refold the entire
// lookup table (the cost the paper calls out as making this approach
// impractical). The fold runs in ascending sender order — never map
// iteration order — so non-associative float accumulation yields the same
// bits on every run and memo-table results stay comparable bitwise against
// the other modes' deterministic schedules.
func (ev *evaluator) tableFold(site int) float64 {
	s := ev.m.prog.Sites[site]
	tbl := ev.m.tables[site][ev.u]
	keys := ev.foldKeys[:0]
	for sender := range tbl { //lint:allow maprange — senders sorted below before folding
		keys = append(keys, sender)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	ev.foldKeys = keys
	acc := core.Identity(s.Op)
	for _, sender := range keys {
		acc = core.Apply(s.Op, acc, tbl[sender])
	}
	return acc
}
