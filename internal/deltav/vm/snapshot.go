package vm

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pregel"
)

// Checkpoint/restore support. The engine snapshots its own barrier state
// (inboxes, active sets, queues — see internal/pregel/snapshot.go); all ΔV
// vertex state lives in the Machine's flat arrays, not the engine's (empty)
// VState, so the machine rides along in the snapshot's opaque Extra
// payload: the state matrix, the §4.2.1 memo tables, the iteration
// counters, the non-monotone send count, and the master state machine's
// globals (phase / mode / iteration).

// extraVersion versions the Extra payload independently of the engine
// snapshot format.
const extraVersion = 1

// vstateCodec encodes the engine-side vertex value, which is empty.
type vstateCodec struct{}

func (vstateCodec) AppendValue(dst []byte, _ VState) []byte { return dst }

func (vstateCodec) DecodeValue(src []byte) (VState, []byte, error) { return VState{}, src, nil }

// msgCodec is the portable codec for in-flight ΔV messages: fixed 40-byte
// little-endian layout, no struct padding.
type msgCodec struct{}

func (msgCodec) AppendValue(dst []byte, m Msg) []byte {
	dst = append(dst, m.Group, m.NVals, m.TagNull, m.TagPrev)
	dst = append(dst, byte(m.Sender), byte(m.Sender>>8), byte(m.Sender>>16), byte(m.Sender>>24))
	for _, v := range m.Vals {
		dst = pregel.AppendFloat64(dst, v)
	}
	return dst
}

func (msgCodec) DecodeValue(src []byte) (Msg, []byte, error) {
	var m Msg
	if len(src) < 8+8*MaxSlots {
		return m, nil, fmt.Errorf("%w: truncated ΔV message", pregel.ErrSnapshotCorrupt)
	}
	m.Group, m.NVals, m.TagNull, m.TagPrev = src[0], src[1], src[2], src[3]
	m.Sender = graph.VertexID(src[4]) | graph.VertexID(src[5])<<8 |
		graph.VertexID(src[6])<<16 | graph.VertexID(src[7])<<24
	src = src[8:]
	for i := range m.Vals {
		var err error
		if m.Vals[i], src, err = pregel.DecodeFloat64(src); err != nil {
			return m, nil, err
		}
	}
	return m, src, nil
}

// encodeExtra appends the machine payload to dst. Memo-table maps are
// serialized in ascending key order so the bytes are deterministic.
func (m *Machine) encodeExtra(dst []byte, gl *globals) []byte {
	dst = pregel.AppendInt64(dst, extraVersion)
	dst = pregel.AppendInt64(dst, int64(gl.Phase))
	dst = pregel.AppendInt64(dst, int64(gl.Mode))
	dst = pregel.AppendInt64(dst, int64(gl.Iter))
	dst = pregel.AppendInt64(dst, m.nonMonotone.Load())
	dst = pregel.AppendInt64(dst, int64(len(m.iterations)))
	for _, it := range m.iterations {
		dst = pregel.AppendInt64(dst, int64(it))
	}
	dst = pregel.AppendInt64(dst, int64(len(m.state)))
	for _, v := range m.state {
		dst = pregel.AppendFloat64(dst, v)
	}
	if m.tables == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = pregel.AppendInt64(dst, int64(len(m.tables)))
	var keys []uint32
	for _, per := range m.tables {
		dst = pregel.AppendInt64(dst, int64(len(per)))
		for _, tbl := range per {
			dst = pregel.AppendInt64(dst, int64(len(tbl)))
			keys = keys[:0]
			for k := range tbl { //lint:allow maprange — keys sorted below before encoding
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				dst = pregel.AppendInt64(dst, int64(k))
				dst = pregel.AppendFloat64(dst, tbl[k])
			}
		}
	}
	return dst
}

// restoreExtra decodes an Extra payload produced by encodeExtra into the
// machine and returns the restored master globals. Every dimension is
// validated against this machine's program and graph. oldN is the vertex
// count the snapshot covers: it equals the machine's graph size for
// ordinary resumes, and the pre-mutation size for a delta run whose
// mutation added vertices — the decoded state then seeds the prefix and
// the planner initializes the rest.
func (m *Machine) restoreExtra(b []byte, oldN int) (*globals, error) {
	if oldN < 0 || oldN > m.g.NumVertices() {
		return nil, fmt.Errorf("vm: snapshot extra: snapshot covers %d vertices, graph has %d", oldN, m.g.NumVertices())
	}
	rd := func(what string) (int64, error) {
		v, rest, err := pregel.DecodeInt64(b)
		if err != nil {
			return 0, fmt.Errorf("vm: snapshot extra: %s: %w", what, err)
		}
		b = rest
		return v, nil
	}
	rdf := func(what string) (float64, error) {
		v, rest, err := pregel.DecodeFloat64(b)
		if err != nil {
			return 0, fmt.Errorf("vm: snapshot extra: %s: %w", what, err)
		}
		b = rest
		return v, nil
	}
	ver, err := rd("version")
	if err != nil {
		return nil, err
	}
	if ver != extraVersion {
		return nil, fmt.Errorf("vm: snapshot extra version %d, want %d (was the snapshot taken by a ΔV run?)", ver, extraVersion)
	}
	gl := &globals{}
	phase, err := rd("phase")
	if err != nil {
		return nil, err
	}
	mode, err := rd("mode")
	if err != nil {
		return nil, err
	}
	iter, err := rd("iter")
	if err != nil {
		return nil, err
	}
	if phase < 0 || phase >= int64(len(m.prog.Phases)) {
		return nil, fmt.Errorf("vm: snapshot extra: phase %d out of range", phase)
	}
	if mode != int64(modePrime) && mode != int64(modeBody) {
		return nil, fmt.Errorf("vm: snapshot extra: unknown mode %d", mode)
	}
	gl.Phase, gl.Mode, gl.Iter = int(phase), stepMode(mode), int(iter)
	nonMono, err := rd("non-monotone count")
	if err != nil {
		return nil, err
	}
	m.nonMonotone.Store(nonMono)
	nIter, err := rd("iteration count")
	if err != nil {
		return nil, err
	}
	if nIter != int64(len(m.iterations)) {
		return nil, fmt.Errorf("vm: snapshot extra: %d phase counters, program has %d", nIter, len(m.iterations))
	}
	for i := range m.iterations {
		v, err := rd("iterations")
		if err != nil {
			return nil, err
		}
		m.iterations[i] = int(v)
	}
	nState, err := rd("state size")
	if err != nil {
		return nil, err
	}
	if nState != int64(oldN*m.stride) {
		return nil, fmt.Errorf("vm: snapshot extra: state size %d, machine needs %d (different program or graph?)", nState, oldN*m.stride)
	}
	for i := 0; i < oldN*m.stride; i++ {
		if m.state[i], err = rdf("state"); err != nil {
			return nil, err
		}
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("vm: snapshot extra: missing memo-table flag")
	}
	hasTables := b[0]
	b = b[1:]
	switch {
	case hasTables == 0 && m.tables == nil:
		// Both sides agree: no memo tables.
	case hasTables == 1 && m.tables != nil:
		nSites, err := rd("site count")
		if err != nil {
			return nil, err
		}
		if nSites != int64(len(m.tables)) {
			return nil, fmt.Errorf("vm: snapshot extra: %d memo-table sites, program has %d", nSites, len(m.tables))
		}
		for site := range m.tables {
			nVerts, err := rd("table vertex count")
			if err != nil {
				return nil, err
			}
			if nVerts != int64(oldN) {
				return nil, fmt.Errorf("vm: snapshot extra: memo tables for %d vertices, want %d", nVerts, oldN)
			}
			for u := 0; u < oldN; u++ {
				entries, err := rd("table size")
				if err != nil {
					return nil, err
				}
				if entries < 0 || entries > int64(oldN) {
					return nil, fmt.Errorf("vm: snapshot extra: memo table with %d entries", entries)
				}
				var tbl map[graph.VertexID]float64
				if entries > 0 {
					tbl = make(map[graph.VertexID]float64, entries)
				}
				for j := int64(0); j < entries; j++ {
					k, err := rd("table key")
					if err != nil {
						return nil, err
					}
					if k < 0 || k >= int64(oldN) {
						return nil, fmt.Errorf("vm: snapshot extra: memo key %d out of range", k)
					}
					v, err := rdf("table value")
					if err != nil {
						return nil, err
					}
					tbl[graph.VertexID(k)] = v
				}
				m.tables[site][u] = tbl
			}
		}
	default:
		return nil, fmt.Errorf("vm: snapshot extra: memo-table flag %d does not match program mode", hasTables)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("vm: snapshot extra: %d trailing bytes", len(b))
	}
	return gl, nil
}

// SeedFromSnapshot rehydrates a finished run from its terminal snapshot
// without re-executing anything: the returned Result serves Field /
// FieldVector reads exactly as the run that captured the snapshot would,
// and its machine state is the valid seed for a subsequent RunDelta.
// This is how a restarted server boots from a checkpoint chain instead of
// recomputing from scratch. The snapshot must be a Done cut of the same
// compiled program (same mode) on the same graph.
func SeedFromSnapshot(prog *core.Program, g *graph.Graph, opts RunOptions, snap *pregel.Snapshot) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("vm: seed needs a snapshot")
	}
	m, err := NewMachine(prog, g, opts)
	if err != nil {
		return nil, err
	}
	if snap.Fingerprint != g.Fingerprint() {
		return nil, fmt.Errorf("vm: %w: snapshot was taken on graph %016x, machine runs on %016x",
			pregel.ErrSnapshotMismatch, snap.Fingerprint, g.Fingerprint())
	}
	if !snap.Done {
		return nil, fmt.Errorf("vm: %w: seed needs a terminal (Done) snapshot, got one at superstep %d",
			pregel.ErrSnapshotMismatch, snap.Superstep)
	}
	gl, err := m.restoreExtra(snap.Extra, g.NumVertices())
	if err != nil {
		return nil, err
	}
	if gl.Mode != modeBody {
		return nil, fmt.Errorf("vm: seed needs the snapshot of a completed body phase")
	}
	return &Result{
		Stats:            &pregel.Stats{Supersteps: 0},
		Iterations:       m.iterations,
		NonMonotoneSends: m.nonMonotone.Load(),
		machine:          m,
	}, nil
}
