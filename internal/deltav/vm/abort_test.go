package vm

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pregel"
)

// TestRunContextCancelledReturnsPartialResult cancels a compiled run
// mid-flight and checks the VM's partial-result contract: non-nil Result
// carrying the stats accumulated so far, marked aborted, alongside a
// context.Canceled error.
func TestRunContextCancelledReturnsPartialResult(t *testing.T) {
	g := directedTestGraph()
	prog := compileT(t, "pagerank", core.Incremental)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, prog, g, RunOptions{Combine: true, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if res == nil {
		t.Fatal("aborted run returned nil Result, want partial result")
	}
	if res.Stats == nil || !res.Stats.Aborted {
		t.Fatalf("partial stats = %+v, want Aborted", res.Stats)
	}
	if res.Stats.AbortReason == "" {
		t.Fatal("partial stats missing AbortReason")
	}
}

// TestRunContextDeadlineReturnsPartialResult bounds a run with a context
// deadline tight enough to fire mid-run.
func TestRunContextDeadlineReturnsPartialResult(t *testing.T) {
	g := graph.RMAT(13, 12, 0.57, 0.19, 0.19, true, 7)
	g.BuildReverse()
	prog := compileT(t, "pagerank", core.Incremental)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	res, err := RunContext(ctx, prog, g, RunOptions{Combine: true, Workers: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	if res == nil || res.Stats == nil || !res.Stats.Aborted {
		t.Fatalf("res = %+v, want aborted partial result", res)
	}
	// The run was cut short: it cannot have reached its natural superstep
	// count (pagerank needs 30+ supersteps).
	if res.Stats.Supersteps >= 30 {
		t.Fatalf("supersteps = %d, deadline did not bite", res.Stats.Supersteps)
	}
}

// TestMachineRunContextNilCtx pins the nil-context convenience: a nil ctx
// behaves like context.Background().
func TestMachineRunContextNilCtx(t *testing.T) {
	g := directedTestGraph()
	m, err := NewMachine(compileT(t, "pagerank", core.Incremental), g, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var nilCtx context.Context // a nil ctx is part of the documented contract
	res, err := m.RunContext(nilCtx, RunOptions{Combine: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Aborted {
		t.Fatalf("uncancelled run marked aborted: %q", res.Stats.AbortReason)
	}
}

// TestFieldVectorUnknownField checks the error-returning API boundary:
// unknown fields come back as a wrapped ErrUnknownField, not a panic.
func TestFieldVectorUnknownField(t *testing.T) {
	g := graph.Grid(4, 4, 1, 1)
	g.BuildReverse()
	res := runT(t, "pagerank", core.Incremental, g, RunOptions{Combine: true})
	if _, err := res.FieldVector("vl"); err != nil {
		t.Fatalf("known field errored: %v", err)
	}
	_, err := res.FieldVector("nosuch")
	if !errors.Is(err, ErrUnknownField) {
		t.Fatalf("err = %v, want ErrUnknownField in chain", err)
	}
	if err == nil || err.Error() == ErrUnknownField.Error() {
		t.Fatalf("error %q should name the missing field", err)
	}
}

// TestVMRunWrapsEnginePanic ensures an engine-level panic during a VM run
// surfaces as a *pregel.RunError through the VM API (with the VM's partial
// result still attached).
func TestVMRunWrapsEnginePanic(t *testing.T) {
	// Force a master-side panic by corrupting the machine's params after
	// construction is not possible from here; instead use a program whose
	// until{} iteration limit trips the VM's own structured failure path,
	// and verify abort metadata flows through Result.
	g := graph.Grid(3, 3, 1, 1)
	g.BuildReverse()
	prog, err := core.Compile("init { local x : float = 1.0 };\niter k { x = x + 1.0 } until { k >= 1000000000 }\n",
		core.Options{Mode: core.Baseline, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunContext(context.Background(), prog, g, RunOptions{})
	if err == nil {
		t.Fatal("iteration-limit run succeeded, want error")
	}
	if res == nil || res.Stats == nil {
		t.Fatal("VM error path dropped the partial result")
	}
	var re *pregel.RunError
	if errors.As(err, &re) {
		t.Fatalf("VM master error should not masquerade as a RunError: %v", err)
	}
}
