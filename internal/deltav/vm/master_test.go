package vm

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// evalMasterOn compiles a one-iter program with the given until condition
// and evaluates it directly through the master evaluator.
func evalMasterOn(t *testing.T, until string, iter int, fixpoint bool, params map[string]float64) bool {
	t.Helper()
	src := "param p : float = 2.5;\ninit { local x : float = 1.0 };\niter k { x = + [ u.x | u <- #in ] } until { " + until + " }"
	prog, err := core.Compile(src, core.Options{Mode: core.Incremental})
	if err != nil {
		t.Fatalf("compile until %q: %v", until, err)
	}
	m, err := NewMachine(prog, graph.Path(4, true), RunOptions{Params: params})
	if err != nil {
		t.Fatal(err)
	}
	return m.untilSatisfied(&m.prog.Phases[0], iter, fixpoint)
}

func TestMasterUntilEvaluation(t *testing.T) {
	cases := []struct {
		until    string
		iter     int
		fixpoint bool
		want     bool
	}{
		{"k >= 30", 30, false, true},
		{"k >= 30", 29, false, false},
		{"fixpoint", 1, true, true},
		{"fixpoint", 1, false, false},
		{"fixpoint || k >= 5", 5, false, true},
		{"fixpoint && k >= 5", 7, false, false},
		{"fixpoint && k >= 5", 7, true, true},
		{"not fixpoint", 1, false, true},
		{"k == 3", 3, false, true},
		{"k != 3", 3, false, false},
		{"k < 2 || k > 4", 5, false, true},
		{"k <= 2", 2, false, true},
		{"min k 10 >= 7", 8, false, true},
		{"max k 10 >= 11", 8, false, false},
		{"1.0 * k / graphSize >= 1.0", 4, false, true},  // 4/4
		{"1.0 * k / graphSize >= 1.0", 3, false, false}, // 3/4
		{"1.0 * k >= p", 3, false, true},                // param p = 2.5
		{"1.0 * k >= p", 2, false, false},
		{"if fixpoint then true else k >= 6", 6, false, true},
		{"if fixpoint then true else k >= 6", 5, false, false},
		{"k - 1 + 2 * 2 >= 8", 5, false, true},
		{"-k <= -3", 3, false, true},
		{"k >= 100 == false", 4, false, true},
	}
	for _, tc := range cases {
		if got := evalMasterOn(t, tc.until, tc.iter, tc.fixpoint, nil); got != tc.want {
			t.Errorf("until %q at k=%d fix=%v: got %v, want %v", tc.until, tc.iter, tc.fixpoint, got, tc.want)
		}
	}
}

func TestMasterUntilParamOverride(t *testing.T) {
	if !evalMasterOn(t, "1.0 * k >= p", 2, false, map[string]float64{"p": 1.5}) {
		t.Fatal("param override not visible to until evaluation")
	}
}

func TestDegreeForms(t *testing.T) {
	// |#in|, |#out| and |#neighbors| through a program that stores them.
	src := `
init {
  local din : int = |#in|;
  local dout : int = |#out|;
  local s : float = 0.0
};
step { s = + [ u.s | u <- #in ] }`
	prog, err := core.Compile(src, core.Options{Mode: core.Incremental})
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	b.AddEdge(1, 2)
	g := b.Finalize()
	g.BuildReverse()
	res, err := Run(prog, g, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Field("din", 1) != 2 || res.Field("dout", 1) != 1 {
		t.Fatalf("degrees of vertex 1 = (%g,%g), want (2,1)", res.Field("din", 1), res.Field("dout", 1))
	}
	// Undirected |#neighbors|.
	src2 := `
init { local d : int = |#neighbors|; local s : float = 0.0 };
step { s = + [ u.s | u <- #neighbors ] }`
	prog2, err := core.Compile(src2, core.Options{Mode: core.Incremental})
	if err != nil {
		t.Fatal(err)
	}
	ug := graph.Star(5, false)
	res2, err := Run(prog2, ug, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Field("d", 0) != 4 || res2.Field("d", 1) != 1 {
		t.Fatalf("star degrees = (%g,%g), want (4,1)", res2.Field("d", 0), res2.Field("d", 1))
	}
}

func TestMessageBytesAccounting(t *testing.T) {
	// One slot, no tags: 1 + 8 bytes.
	pr := mustCompile("pagerank", core.Incremental)
	if got := MessageBytes(pr); got != 9 {
		t.Fatalf("pagerank message bytes = %d, want 9", got)
	}
	// Multiplicative adds a tag byte.
	prod := mustCompile("prod", core.Incremental)
	if got := MessageBytes(prod); got != 10 {
		t.Fatalf("prod message bytes = %d, want 10", got)
	}
	// MemoTable adds the 4-byte sender id.
	tbl := mustCompile("pagerank", core.MemoTable)
	if got := MessageBytes(tbl); got != 13 {
		t.Fatalf("memotable message bytes = %d, want 13", got)
	}
}

func TestProgramStringAndModeNames(t *testing.T) {
	for mode, want := range map[core.Mode]string{
		core.Incremental: "dV",
		core.Baseline:    "dV*",
		core.MemoTable:   "dV-memotable",
	} {
		if mode.String() != want {
			t.Errorf("mode %d = %q, want %q", mode, mode.String(), want)
		}
	}
	for strat, want := range map[core.Strategy]string{
		core.StrategyMemoized: "memoized",
		core.StrategyScratch:  "scratch",
		core.StrategyTable:    "table",
	} {
		if strat.String() != want {
			t.Errorf("strategy %d = %q, want %q", strat, strat.String(), want)
		}
	}
	for kind, want := range map[core.FieldKind]string{
		core.UserField: "user", core.OldOfField: "old", core.DirtyField: "dirty",
		core.AccField: "acc", core.NNAccField: "nnacc", core.NullsField: "nulls",
		core.LastNNField: "lastnn",
	} {
		if kind.String() != want {
			t.Errorf("field kind %d = %q, want %q", kind, kind.String(), want)
		}
	}
	if s := mustCompile("hits", core.Incremental).String(); !strings.Contains(s, "group 1") {
		t.Fatalf("hits Program.String missing second group:\n%s", s)
	}
}
