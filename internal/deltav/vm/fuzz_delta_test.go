package vm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/programs"
)

// FuzzRunDeltaEquivalence is the differential harness behind the
// repairability matrix: arbitrary mutation batches against every corpus
// program must land in one of exactly two outcomes — RunDelta succeeds and
// the repaired fields are bit-identical to a from-scratch run on the
// mutated graph, or RunDelta returns a clean error. A wrong answer is
// never acceptable, and a batch the matrix rules out statically
// (program-wide blocker, added vertices, an unconditional arc verdict)
// must be rejected, never silently accepted.
func FuzzRunDeltaEquivalence(f *testing.F) {
	names := programs.Names()
	// One seed per corpus program plus shapes that exercise each mutation
	// op, vertex growth, and out-of-range endpoints.
	for i := range names {
		f.Add(uint8(i), uint8(0), []byte{0, 2, 25, 4})
	}
	f.Add(uint8(0), uint8(1), []byte{1, 20, 21, 0})
	f.Add(uint8(0), uint8(2), []byte{2, 10, 11, 1, 2, 10, 11, 15})
	f.Add(uint8(3), uint8(0), []byte{3, 1, 0, 0, 0, 2, 25, 4})
	f.Add(uint8(5), uint8(2), []byte{1, 200, 9, 0})
	f.Fuzz(func(t *testing.T, progSel, modeSel uint8, ops []byte) {
		name := names[int(progSel)%len(names)]
		mode := allModes[int(modeSel)%len(allModes)]
		prog := func() *core.Program {
			p, err := core.Compile(programs.MustSource(name), core.Options{Mode: mode})
			if err != nil {
				t.Fatalf("corpus program %s failed to compile: %v", name, err)
			}
			return p
		}
		rp := prog().Repairability()
		g0 := agreementGraph(name)
		d := decodeFuzzDelta(ops, g0.NumVertices())
		if d.Len() == 0 {
			return
		}
		g1, ad, err := graph.ApplyDelta(g0, d)
		if err != nil {
			return // removing a missing arc, out-of-range endpoint, …
		}
		g1.BuildReverse()

		// Workers:1 keeps the send/apply schedule reproducible so the
		// success path can demand bitwise equality even for sum folds.
		opts := RunOptions{Workers: 1, Params: agreementParams(name)}
		snap, _ := terminalVMSnapshot(t, prog(), g0, opts)
		res, err := RunDelta(prog(), g1, DeltaRunOptions{
			RunOptions: opts, Snapshot: snap, Changes: ad,
		})
		if err != nil {
			if err.Error() == "" {
				t.Fatal("RunDelta failed with an empty error")
			}
			return
		}
		if mustReject(rp, ad) {
			t.Fatalf("%s/%s: matrix rules the batch out statically, but RunDelta accepted it (delta %v)",
				name, mode, d.Muts)
		}
		scratch, err := Run(prog(), g1, opts)
		if err != nil {
			t.Fatalf("scratch run on the mutated graph: %v", err)
		}
		compareUserFields(t, name+"/"+mode.String(), prog(), scratch, res, 0)
	})
}

// decodeFuzzDelta turns fuzz bytes into a bounded mutation log: groups of
// four bytes (op, u, v, w). Endpoints are left unreduced in one of every
// eight groups so out-of-range handling stays covered.
func decodeFuzzDelta(ops []byte, n int) *graph.Delta {
	d := &graph.Delta{}
	for i := 0; i+3 < len(ops) && d.Len() < 6; i += 4 {
		kind, bu, bv, bw := ops[i], ops[i+1], ops[i+2], ops[i+3]
		u, v := graph.VertexID(int(bu)%n), graph.VertexID(int(bv)%n)
		if bu%8 == 7 {
			u = graph.VertexID(bu) // deliberately possibly out of range
		}
		w := 0.25 * float64(1+bw%16)
		switch kind % 4 {
		case 0:
			d.AddWeightedEdge(u, v, w)
		case 1:
			d.RemoveEdge(u, v)
		case 2:
			d.SetWeight(u, v, w)
		case 3:
			d.AddVertices(1 + int(kind/4)%3)
		}
	}
	return d
}

// mustReject reports whether the repairability matrix forbids accepting
// the applied delta without looking at any values: a program-wide blocker,
// new vertices under a non-repairable vertex-add verdict, or a structural
// arc change whose class verdict is statically unrepairable. (Reweights are classified by comparing old and
// new weight; their conditional verdicts are value-dependent, so only
// blockers make them mandatory rejections.)
func mustReject(rp *core.RepairProfile, ad *graph.AppliedDelta) bool {
	if rp.Blocked() != nil {
		return true
	}
	if ad.NewVertices > 0 && rp.Verdict(core.DeltaVertexAdd).Cap != core.Repairable {
		return true
	}
	static := func(c core.DeltaClass) bool {
		v := rp.Verdict(c)
		return v.Cap == core.Unsupported || (v.Cap == core.FallbackRequired && v.Unconditional)
	}
	for _, a := range ad.Arcs {
		switch a.Kind {
		case graph.ArcAdd:
			if static(core.DeltaArcAdd) {
				return true
			}
		case graph.ArcRemove:
			if static(core.DeltaArcRemove) {
				return true
			}
		}
	}
	return false
}
