package vm

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pregel"
)

// End-to-end integration scenarios combining generators, placements,
// schedulers and programs in ways no single unit test does.

func TestSSSPOnSmallWorldAllConfigurations(t *testing.T) {
	g := graph.WithRandomWeights(graph.WattsStrogatz(400, 6, 0.05, 11), 1, 5, 12)
	want := algorithms.SSSPOracle(g, 7)
	for _, mode := range allModes {
		for _, part := range []pregel.Partition{pregel.PartitionBlock, pregel.PartitionHash} {
			for _, sched := range []pregel.Scheduler{pregel.ScanAll, pregel.WorkQueue} {
				res, err := Run(mustCompile("sssp", mode), g, RunOptions{
					Params:    map[string]float64{"src": 7},
					Workers:   5,
					Partition: part,
					Scheduler: sched,
					Combine:   true,
				})
				if err != nil {
					t.Fatalf("%v/%v/%v: %v", mode, part, sched, err)
				}
				for u := range want {
					if !almostEqual(res.Field("dist", graph.VertexID(u)), want[u], 1e-9) {
						t.Fatalf("%v/%v/%v: dist[%d] = %g, want %g",
							mode, part, sched, u, res.Field("dist", graph.VertexID(u)), want[u])
					}
				}
			}
		}
	}
}

func TestTwoPhaseIterationAccounting(t *testing.T) {
	g := graph.RMAT(6, 3, 0.5, 0.2, 0.2, true, 13)
	g.BuildReverse()
	res := runT(t, "twophase", core.Incremental, g, RunOptions{Workers: 2})
	if len(res.Iterations) != 2 {
		t.Fatalf("iterations = %v, want 2 phases", res.Iterations)
	}
	if res.Iterations[0] != 1 {
		t.Fatalf("step phase body supersteps = %d, want 1", res.Iterations[0])
	}
	// The iter phase is bounded by until{k >= 5}; quiescence
	// fast-forwarding may execute fewer body supersteps.
	if res.Iterations[1] < 1 || res.Iterations[1] > 5 {
		t.Fatalf("iter phase body supersteps = %d, want 1..5", res.Iterations[1])
	}
	// Superstep budget: init+prime (1) + phase-0 body (1) + phase-1 prime
	// (1) + at most 5 bodies.
	if res.Stats.Supersteps > 8 {
		t.Fatalf("supersteps = %d, want <= 8", res.Stats.Supersteps)
	}
}

func TestEpsilonDriftEventuallySends(t *testing.T) {
	// A chain where the head's value grows by a sub-ε amount per
	// iteration: the §9 policy must accumulate the drift against the last
	// *sent* value and fire once it exceeds ε.
	src := `
init {
  local v : float = 0.0;
  local got : float = 0.0
};
iter k {
  let s : float = + [ u.v | u <- #in ] in
  got = s;
  v = if id == 0 then v + 0.4 else v
} until { k >= 10 }`
	prog, err := core.Compile(src, core.Options{Mode: core.Incremental, Epsilon: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Path(2, true) // 0 → 1
	res, err := Run(prog, g, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// v(0) grows 0.4/iter for 10 iters = 4.0; with ε=1.0 sends happen only
	// when |v - lastSent| > 1.0, i.e. at drifts of 1.2 (3 steps). The last
	// sent value must be within ε+0.4 of the true final value.
	vFinal := res.Field("v", 0)
	got := res.Field("got", 1)
	if math.Abs(vFinal-4.0) > 1e-9 {
		t.Fatalf("v(0) = %g, want 4.0", vFinal)
	}
	if got == 0 {
		t.Fatal("ε-slop never sent despite 4.0 total drift")
	}
	if diff := math.Abs(vFinal - got); diff > 1.4+1e-9 {
		t.Fatalf("receiver lag %g exceeds ε+step", diff)
	}
}

func TestIntAndBoolFieldsRoundTrip(t *testing.T) {
	// Integer sums and boolean fields flowing through messages.
	src := `
init {
  local n : int = 1;
  local total : int = 0;
  local big : bool = false
};
iter k {
  let s : int = + [ u.n | u <- #in ] in
  total = total + s;
  big = total > 5
} until { k >= 3 }`
	prog, err := core.Compile(src, core.Options{Mode: core.Incremental})
	if err != nil {
		t.Fatal(err)
	}
	// Star: hub 0 → 4 leaves; each leaf has in-degree 1 from the hub.
	g := graph.Star(5, true)
	g.BuildReverse()
	res, err := Run(prog, g, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Each leaf receives n=1 from the hub every iteration (n never
	// changes, so after the prime the accumulator is constant 1):
	// total = 3 after 3 iterations; big = false.
	for u := 1; u <= 4; u++ {
		if got := res.Field("total", graph.VertexID(u)); got != 3 {
			t.Fatalf("total[%d] = %g, want 3", u, got)
		}
		if got := res.Field("big", graph.VertexID(u)); got != 0 {
			t.Fatalf("big[%d] = %g, want 0", u, got)
		}
	}
	// The hub has no in-edges: total stays 0.
	if got := res.Field("total", 0); got != 0 {
		t.Fatalf("total[0] = %g, want 0", got)
	}
}
