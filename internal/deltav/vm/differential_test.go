package vm

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// Differential testing: generate random (but type-correct) ΔV programs and
// check that the incrementalized compilation computes the same vertex
// state as the baseline and the lookup-table strawman. This is the
// repository's strongest end-to-end check of the Eq. 11 Δ-message algebra:
// any unsound delta, tag, suppression or memoization shows up as a state
// divergence.

// randProgram builds a random program over nFields float fields with
// 1..2 aggregation sites. Expressions are damped to avoid float blow-up.
// Fields feeding min (max) sites get monotone non-increasing
// (non-decreasing) updates — the contract idempotent Δ-messages require.
func randProgram(rng *rand.Rand) string {
	nFields := 2 + rng.Intn(2)
	nSites := 1 + rng.Intn(2)
	iters := 3 + rng.Intn(5)

	// role[f]: "" free, "min" monotone down, "max" monotone up.
	role := make([]string, nFields)

	type site struct {
		op    string
		field int
		ew    bool
	}
	sites := make([]site, nSites)
	ops := []string{"+", "min", "max"}
	for s := range sites {
		op := ops[rng.Intn(len(ops))]
		// Pick a field compatible with the op's monotonicity need.
		field := -1
		for attempts := 0; attempts < 2*nFields; attempts++ {
			f := rng.Intn(nFields)
			if op == "+" || role[f] == "" || role[f] == op {
				field = f
				break
			}
		}
		if field < 0 {
			op, field = "+", rng.Intn(nFields)
		}
		if op != "+" {
			role[field] = op
		}
		sites[s] = site{op: op, field: field, ew: op != "+" && rng.Intn(3) == 0}
	}

	var b strings.Builder
	b.WriteString("init {\n")
	for f := 0; f < nFields; f++ {
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "  local f%d : float = 1.0 + 1.0 * id / graphSize", f)
		case 1:
			fmt.Fprintf(&b, "  local f%d : float = if id == 0 then 2.0 else 0.5", f)
		default:
			fmt.Fprintf(&b, "  local f%d : float = 0.25 * (1.0 + 1.0 * id)", f)
		}
		if f != nFields-1 {
			b.WriteString(";\n")
		} else {
			b.WriteString("\n")
		}
	}
	b.WriteString("};\niter k {\n")

	for s, st := range sites {
		aggrand := fmt.Sprintf("u.f%d", st.field)
		if st.ew {
			aggrand += " + ew"
		}
		fmt.Fprintf(&b, "  let a%d : float = %s [ %s | u <- #in ] in\n", s, st.op, aggrand)
	}
	// Field updates honouring each field's monotonicity role.
	for f := 0; f < nFields; f++ {
		var upd string
		switch role[f] {
		case "min":
			upd = fmt.Sprintf("min f%d (%s)", f, randUpdate(rng, f, nFields, nSites))
		case "max":
			upd = fmt.Sprintf("max f%d (%s)", f, randUpdate(rng, f, nFields, nSites))
		default:
			upd = randUpdate(rng, f, nFields, nSites)
		}
		fmt.Fprintf(&b, "  f%d = %s", f, upd)
		if f != nFields-1 {
			b.WriteString(";\n")
		} else {
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "} until { k >= %d }\n", iters)
	return b.String()
}

func randUpdate(rng *rand.Rand, f, nFields, nSites int) string {
	atom := func() string {
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("a%d", rng.Intn(nSites))
		case 1:
			return fmt.Sprintf("f%d", rng.Intn(nFields))
		case 2:
			return "0.75"
		default:
			return "1.0 * k"
		}
	}
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("0.3 * (%s) + 0.2 * (%s)", atom(), atom())
	case 1:
		return fmt.Sprintf("min (%s) (%s)", atom(), atom())
	case 2:
		return fmt.Sprintf("max (%s) (0.1 * (%s))", atom(), atom())
	default:
		return fmt.Sprintf("if %s > 1.0 then 0.4 * (%s) else 0.25 + 0.5 * (%s)", atom(), atom(), atom())
	}
}

func randGraphD(rng *rand.Rand) *graph.Graph {
	n := 4 + rng.Intn(40)
	m := 1 + rng.Intn(5*n)
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		b.AddWeightedEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), 0.5+2*rng.Float64())
	}
	g := b.Finalize()
	g.BuildReverse()
	return g
}

func TestDifferentialModesAgree(t *testing.T) {
	const trials = 120
	skipped := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		src := randProgram(rng)
		g := randGraphD(rng)

		type outcome struct {
			fields map[string][]float64
			nonMon int64
		}
		results := map[core.Mode]outcome{}
		failed := false
		for _, mode := range allModes {
			prog, err := core.Compile(src, core.Options{Mode: mode})
			if err != nil {
				t.Fatalf("trial %d: compile %v failed for\n%s\n%v", trial, mode, src, err)
			}
			res, err := Run(prog, g, RunOptions{Workers: 3})
			if err != nil {
				t.Fatalf("trial %d: run %v failed for\n%s\n%v", trial, mode, src, err)
			}
			out := outcome{fields: map[string][]float64{}, nonMon: res.NonMonotoneSends}
			for _, f := range prog.Layout.Fields[:prog.Layout.UserFields] {
				vec, err := res.FieldVector(f.Name)
				if err != nil {
					t.Fatalf("trial %d: FieldVector(%q): %v", trial, f.Name, err)
				}
				out.fields[f.Name] = vec
			}
			results[mode] = out
			if res.NonMonotoneSends > 0 {
				failed = true // min/max fed by a non-monotone field: Δs unsound by contract
			}
		}
		if failed {
			skipped++
			continue
		}
		base := results[core.Baseline]
		for _, mode := range []core.Mode{core.Incremental, core.MemoTable} {
			got := results[mode]
			for name, want := range base.fields {
				for u := range want {
					if !close9(got.fields[name][u], want[u]) {
						t.Fatalf("trial %d: %v diverges from baseline at %s[%d]: %g vs %g\nprogram:\n%s",
							trial, mode, name, u, got.fields[name][u], want[u], src)
					}
				}
			}
		}
	}
	if skipped > trials/2 {
		t.Fatalf("too many trials skipped for non-monotone min/max: %d of %d", skipped, trials)
	}
	t.Logf("differential: %d trials, %d skipped (non-monotone min/max)", trials, skipped)
}

func close9(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		// ±Inf identity elements mixing across aggregations produce NaN
		// deterministically in every mode.
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}
