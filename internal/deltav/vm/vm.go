// Package vm executes compiled ΔV programs (core.Program) on the Pregel
// engine. It plays the role of the Pregel+ compute() function the paper's
// compiler emits: the statement list runs as a master-driven state machine,
// each vertex evaluates the transformed statement bodies (including the
// internal receive loops, change checks, Δ-message sends and halts the
// passes inserted), and the master evaluates until{} conditions with an
// incrementally maintained fixpoint aggregator.
package vm

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pregel"
)

// VState is the engine-side vertex value; the Machine keeps all ΔV vertex
// state in its own flat arrays, so this is empty.
type VState struct{}

// MaxSlots is the widest supported message (aggregation sites per send
// group).
const MaxSlots = 4

// Msg is one ΔV message: the values of a send group's slots, with the
// §6.4.1 nullary/previous-nullary tag bits, and the sender id for the
// §4.2.1 lookup-table mode.
type Msg struct {
	Group   uint8
	NVals   uint8
	TagNull uint8 // bit i: slot i carries a nullary value
	TagPrev uint8 // bit i: slot i's previous message was nullary
	Sender  graph.VertexID
	Vals    [MaxSlots]float64
}

// stepMode is the master state machine's mode.
type stepMode int

const (
	modePrime  stepMode = iota // send full slot values, skip the body
	modeBody                   // run the transformed statement body
	modeRepair                 // emit planned delta-repair sends (RunDelta)
)

// globals is the engine-wide state vertices read; replaced (not mutated)
// by the master between supersteps.
type globals struct {
	Phase int
	Mode  stepMode
	Iter  int // 1-based iteration counter of the current iter phase
}

// RunOptions configure an execution.
type RunOptions struct {
	// Params override program parameter defaults by name.
	Params map[string]float64
	// Workers is the engine worker count (default GOMAXPROCS).
	Workers int
	// Scheduler selects the engine's vertex scheduler.
	Scheduler pregel.Scheduler
	// Partition selects the vertex-to-worker placement.
	Partition pregel.Partition
	// Combine enables sender-side combining of combinable send groups.
	Combine bool
	// MaxSupersteps bounds the engine (default 10h of supersteps: 100k).
	MaxSupersteps int
	// Checkpoint enables barrier snapshots (pregel.CheckpointOptions).
	// The VM owns the snapshot's Extra payload — it stores the machine's
	// flat state, memo tables, and master phase there — so any Extra
	// callback set here is ignored.
	Checkpoint pregel.CheckpointOptions
	// Resume continues from a snapshot taken by a previous run of the
	// same compiled program (same mode) on the same graph. The machine
	// payload and the engine state are both validated before the run
	// continues at the snapshot's superstep + 1.
	Resume *pregel.Snapshot
	// Quarantine contains a panic inside a single vertex's evaluation to
	// that vertex (skip + remove + record in Stats.Quarantined) instead
	// of aborting the run — the resident-server posture. See
	// pregel.Options.Quarantine.
	Quarantine bool
	// Shard places the run in a multi-process sharded mesh (see
	// pregel.ShardOptions). Every shard runs the same compiled program
	// over the same graph with identical options; after a successful run
	// the machine's state rows are all-gathered so Result fields are
	// whole on every shard. Requires PartitionBlock and an explicit
	// Workers value identical on every shard.
	Shard *pregel.ShardOptions
}

// ErrUnknownField is wrapped by the error returned when a field name does
// not exist in the program's layout.
var ErrUnknownField = errors.New("vm: unknown field")

// Result is a finished execution. When a run aborts (cancellation,
// deadline, or a contained panic), RunContext returns a non-nil Result
// holding the partial statistics and field state alongside the error;
// Stats.Aborted records the cause.
type Result struct {
	Stats *pregel.Stats
	// Supersteps per phase body (iterations executed per iter phase).
	Iterations []int
	// NonMonotoneSends counts Δ-messages of idempotent (min/max) sites
	// whose value moved against the operator's direction; non-zero means
	// the memoized accumulators may be stale (see DESIGN.md).
	NonMonotoneSends int64

	machine *Machine
}

// Field returns vertex u's final value of the named user field, decoded
// per its declared type (bools: 0/1). It panics on an unknown field name;
// use FieldVector when the name comes from untrusted input.
func (r *Result) Field(name string, u graph.VertexID) float64 {
	return r.machine.FieldValue(name, u)
}

// FieldVector returns the named field for all vertices, or an error
// wrapping ErrUnknownField when the layout has no such field.
func (r *Result) FieldVector(name string) ([]float64, error) {
	if r.machine.prog.Layout.Slot(name) < 0 {
		return nil, fmt.Errorf("%w %q", ErrUnknownField, name)
	}
	n := r.machine.g.NumVertices()
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		out[u] = r.machine.FieldValue(name, graph.VertexID(u))
	}
	return out, nil
}

// Machine executes one compiled program over one graph.
type Machine struct {
	prog   *core.Program
	g      *graph.Graph
	params []float64

	stride int
	state  []float64 // n × stride

	// tables[site] is the §4.2.1 per-neighbour cache: one map per vertex,
	// allocated lazily. Only non-nil in MemoTable mode.
	tables [][]map[graph.VertexID]float64

	// redirects[site] maps user-field slots to $old slots, precomputed so
	// workers never mutate shared state during Δ evaluation.
	redirects []map[int]int

	iterations  []int
	nonMonotone atomic.Int64
	masterErr   error
	runCtx      context.Context // run's context, visible to the master hook
	ran         bool

	// repair is the delta-recomputation plan (RunDelta only): the
	// retraction/injection messages each frontier vertex emits during the
	// modeRepair superstep. Nil for ordinary runs.
	repair *repairPlan
	// repairBudget bounds the repair run's body supersteps (RunDelta with
	// DeltaRunOptions.SuperstepBudget); 0 means unbounded.
	repairBudget int

	msgBytes int
}

// NewMachine prepares a machine; Run executes it. The graph must be
// compatible with the program (undirected if #neighbors is used; reverse
// adjacency is built as needed).
func NewMachine(prog *core.Program, g *graph.Graph, opts RunOptions) (*Machine, error) {
	if prog.MaxSlotsPerGroup > MaxSlots {
		return nil, fmt.Errorf("vm: program needs %d message slots, max %d", prog.MaxSlotsPerGroup, MaxSlots)
	}
	if prog.UsesNeighbors && g.Directed() {
		return nil, fmt.Errorf("vm: program uses #neighbors but the graph is directed")
	}
	if prog.UsesIn || prog.UsesNeighbors {
		g.BuildReverse()
	}
	m := &Machine{
		prog:   prog,
		g:      g,
		stride: len(prog.Layout.Fields),
	}
	m.params = make([]float64, len(prog.Params))
	for i, p := range prog.Params {
		m.params[i] = p.Default
		if v, ok := opts.Params[p.Name]; ok {
			m.params[i] = v
		}
	}
	for name := range opts.Params { //lint:allow maprange — validation; any unknown name is an equivalent error
		if _, ok := paramIndex(prog, name); !ok {
			return nil, fmt.Errorf("vm: unknown param %q", name)
		}
	}
	m.state = make([]float64, g.NumVertices()*m.stride)
	if prog.Mode == core.MemoTable {
		m.tables = make([][]map[graph.VertexID]float64, len(prog.Sites))
		for i := range m.tables {
			m.tables[i] = make([]map[graph.VertexID]float64, g.NumVertices())
		}
	}
	m.iterations = make([]int, len(prog.Phases))
	m.msgBytes = MessageBytes(prog)
	m.redirects = make([]map[int]int, len(prog.Sites))
	for _, s := range prog.Sites {
		if s.OldSlots == nil {
			continue
		}
		r := make(map[int]int, len(s.Fields))
		for i, f := range s.Fields {
			r[f] = s.OldSlots[i]
		}
		m.redirects[s.ID] = r
	}
	return m, nil
}

func paramIndex(p *core.Program, name string) (int, bool) {
	for i, ps := range p.Params {
		if ps.Name == name {
			return i, true
		}
	}
	return 0, false
}

// MessageBytes returns the wire size the compiled program's messages are
// accounted at: group tag + one 8-byte value per slot, plus a tag byte when
// any multiplicative site exists, plus the sender id in MemoTable mode
// (the §4.2.1 "tagged with the sending vertex's id" overhead).
func MessageBytes(p *core.Program) int {
	n := 1 + 8*maxInt(1, p.MaxSlotsPerGroup)
	for _, s := range p.Sites {
		if s.Multiplicative() {
			n++
			break
		}
	}
	if p.Mode == core.MemoTable {
		n += 4
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Run executes the program to completion. It is RunContext with a
// background context.
func Run(prog *core.Program, g *graph.Graph, opts RunOptions) (*Result, error) {
	return RunContext(context.Background(), prog, g, opts)
}

// RunContext executes the program until completion or until ctx aborts the
// run. On an abort (cancellation, deadline, or a panic contained by the
// engine) the returned Result is non-nil and carries the partial run
// statistics and whatever field state had been computed.
func RunContext(ctx context.Context, prog *core.Program, g *graph.Graph, opts RunOptions) (*Result, error) {
	m, err := NewMachine(prog, g, opts)
	if err != nil {
		return nil, err
	}
	return m.RunContext(ctx, opts)
}

// Run executes the machine. It may only be called once.
func (m *Machine) Run(opts RunOptions) (*Result, error) {
	return m.RunContext(context.Background(), opts)
}

// RunContext executes the machine under ctx. It may only be called once.
// Like the engine's RunContext, an aborted run returns partial results: the
// Result is non-nil whenever the engine produced statistics, and the error
// reports the abort cause (a *pregel.RunError for contained panics —
// including panics raised by the ΔV evaluator's own error paths, which this
// converts into errors callers can test for instead of process crashes).
func (m *Machine) RunContext(ctx context.Context, opts RunOptions) (*Result, error) {
	if m.ran {
		return nil, fmt.Errorf("vm: Machine.Run called twice")
	}
	m.ran = true
	var gl *globals
	if opts.Resume != nil {
		// Validate graph identity before decoding the machine payload so a
		// wrong-graph snapshot fails with the engine's mismatch error, not a
		// confusing state-size complaint.
		if opts.Resume.Fingerprint != m.g.Fingerprint() {
			return nil, fmt.Errorf("vm: %w: snapshot was taken on a different graph", pregel.ErrSnapshotMismatch)
		}
		var err error
		if gl, err = m.restoreExtra(opts.Resume.Extra, m.g.NumVertices()); err != nil {
			return nil, err
		}
	} else {
		gl = &globals{Phase: 0, Mode: modePrime}
	}
	return m.execute(ctx, opts, nil, gl)
}

// execute runs the machine on a fresh engine seeded with gl. Exactly one of
// opts.Resume and warm may be set; both nil is a from-scratch run.
func (m *Machine) execute(ctx context.Context, opts RunOptions, warm *pregel.WarmStartOptions, gl *globals) (*Result, error) {
	if opts.MaxSupersteps <= 0 {
		opts.MaxSupersteps = 100_000
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m.runCtx = ctx
	// The Extra closure captures eng by reference: the engine only invokes
	// it mid-run, after New below has assigned it.
	var eng *pregel.Engine[VState, Msg]
	ckpt := opts.Checkpoint
	if ckpt.Dir != "" || ckpt.Sink != nil {
		ckpt.Extra = func(dst []byte) []byte {
			return m.encodeExtra(dst, eng.Globals().(*globals))
		}
	}
	eng = pregel.New[VState, Msg](m.g, pregel.Options{
		Workers:       opts.Workers,
		Scheduler:     opts.Scheduler,
		Partition:     opts.Partition,
		MaxSupersteps: opts.MaxSupersteps,
		Checkpoint:    ckpt,
		Resume:        opts.Resume,
		WarmStart:     warm,
		Quarantine:    opts.Quarantine,
		Shard:         opts.Shard,
	})
	eng.SetMessageSize(m.msgBytes)
	eng.SetValueCodec(vstateCodec{})
	eng.SetMessageCodec(msgCodec{})
	if err := eng.RegisterAggregator(aggUnchanged, pregel.AggAnd, false); err != nil {
		return nil, err
	}
	if opts.Combine {
		if c := m.combiner(); c != nil {
			eng.SetCombiner(c)
		}
	}
	eng.SetGlobals(gl)
	eng.SetMasterHook(m.masterHook)
	stats, err := eng.RunContext(ctx, m)
	if stats == nil {
		return nil, err
	}
	if err == nil {
		// The engine gathered its vertex values, but the VM's field state
		// lives in m.state: a successful sharded run all-gathers the owned
		// rows so Result fields read whole on every shard.
		if gerr := m.gatherShardState(eng); gerr != nil {
			err = gerr
		}
	}
	res := &Result{
		Stats:            stats,
		Iterations:       m.iterations,
		NonMonotoneSends: m.nonMonotone.Load(),
		machine:          m,
	}
	if err != nil {
		return res, err
	}
	if m.masterErr != nil {
		return res, m.masterErr
	}
	return res, nil
}

const aggUnchanged = "$unchanged"

// gatherShardState all-gathers the machine's flat state rows after a
// successful sharded run: each shard broadcasts its owned vertex range
// [lo, hi) as u32 bounds plus (hi-lo)·stride little-endian float64s and
// copies every peer's rows into place. A no-op unsharded.
func (m *Machine) gatherShardState(eng *pregel.Engine[VState, Msg]) error {
	if _, count := eng.ShardInfo(); count <= 1 {
		return nil
	}
	lo, hi := eng.ShardOwnedRange()
	buf := make([]byte, 0, 8+(hi-lo)*m.stride*8)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(lo))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(hi))
	for _, v := range m.state[lo*m.stride : hi*m.stride] {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	idx, _ := eng.ShardInfo()
	payloads, err := eng.ShardAllGather(buf)
	if err != nil {
		return fmt.Errorf("vm: state gather: %w", err)
	}
	n := m.g.NumVertices()
	for i, p := range payloads {
		if i == idx {
			continue
		}
		if len(p) < 8 {
			return fmt.Errorf("vm: state gather: short payload from shard %d", i)
		}
		plo := int(binary.LittleEndian.Uint32(p))
		phi := int(binary.LittleEndian.Uint32(p[4:]))
		rows := p[8:]
		if plo > phi || phi > n || len(rows) != (phi-plo)*m.stride*8 {
			return fmt.Errorf("vm: state gather: shard %d sent %d bytes for range [%d, %d)", i, len(rows), plo, phi)
		}
		for j := 0; j < (phi-plo)*m.stride; j++ {
			m.state[plo*m.stride+j] = math.Float64frombits(binary.LittleEndian.Uint64(rows[8*j:]))
		}
	}
	return nil
}

// FieldValue returns vertex u's current value of a layout field by name.
func (m *Machine) FieldValue(name string, u graph.VertexID) float64 {
	slot := m.prog.Layout.Slot(name)
	if slot < 0 {
		panic(fmt.Sprintf("vm: unknown field %q", name))
	}
	return m.state[int(u)*m.stride+slot]
}

// StateBytes reports the per-vertex state size: the compiled layout plus,
// in MemoTable mode, the measured average lookup-table footprint (id +
// value per cached neighbour), which is the §4.2.1 memory blow-up.
func (m *Machine) StateBytes() float64 {
	base := float64(m.prog.Layout.ByteSize())
	if m.tables == nil {
		return base
	}
	entries := 0
	for _, per := range m.tables {
		for _, t := range per {
			entries += len(t)
		}
	}
	n := m.g.NumVertices()
	if n == 0 {
		return base
	}
	return base + float64(entries*12)/float64(n)
}

// Init runs at superstep 0 on every vertex: default-initialize the
// synthesized fields, evaluate the init{} body, and prime phase 0's send
// groups with full slot values.
func (m *Machine) Init(ctx *pregel.Context[VState, Msg]) {
	u := ctx.ID()
	base := int(u) * m.stride
	for i, f := range m.prog.Layout.Fields {
		m.state[base+i] = m.fieldDefault(f)
	}
	ev := &evaluator{m: m, ctx: ctx, base: base, u: u}
	ev.lets = make([]float64, m.prog.MaxLetDepth)
	ev.eval(m.prog.Init)
	if len(m.prog.Phases) > 0 {
		m.primeSends(ev, 0)
	}
	// The master activates all vertices for the first body superstep, so
	// halting after the prime is always sound.
	ctx.VoteToHalt()
}

func (m *Machine) fieldDefault(f core.FieldSpec) float64 {
	switch f.Kind {
	case core.AccField, core.NNAccField:
		return core.Identity(m.prog.Sites[f.Ref].Op)
	case core.NullsField:
		return 0
	case core.LastNNField:
		return 1 // multiplicative identity: first non-null Δ is the raw value
	case core.DirtyField:
		return 1 // pre-set, §6.3
	default:
		return 0
	}
}

// Compute runs a vertex at supersteps >= 1.
func (m *Machine) Compute(ctx *pregel.Context[VState, Msg], msgs []Msg) {
	gl := ctx.Globals().(*globals)
	u := ctx.ID()
	base := int(u) * m.stride
	ev := &evaluator{m: m, ctx: ctx, base: base, u: u, msgs: msgs, iter: gl.Iter}
	ev.lets = make([]float64, m.prog.MaxLetDepth)
	ph := &m.prog.Phases[gl.Phase]
	switch gl.Mode {
	case modePrime:
		// Messages in flight at a prime superstep belong to the previous,
		// finished phase; they are dropped (see package docs).
		m.primeSends(ev, gl.Phase)
		ctx.VoteToHalt()
	case modeBody:
		ev.eval(ph.Body)
		ctx.Aggregate(aggUnchanged, boolTo01(!ev.changed))
		// Halting is performed by the Halt node for incremental programs;
		// non-halting programs stay active for the next body superstep.
	case modeRepair:
		// Emit the precomputed retraction/injection messages for this
		// vertex's mutated arcs. Pure senders halt; vertices flagged by the
		// planner (memo-table surgery receivers) stay active so the next
		// body superstep refolds their state even if no message wakes them.
		for _, ps := range m.repair.sends[u] {
			ctx.Send(ps.dest, ps.msg)
		}
		if !m.repair.keepActive[u] {
			ctx.VoteToHalt()
		}
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// primeSends implements the initial full-value send of §6.1 ("at the first
// superstep send the data from the neighbors' perspective") for every send
// group of a phase, records the sent values as the most-recently-sent
// state, and clears the dirty bits.
func (m *Machine) primeSends(ev *evaluator, phase int) {
	for _, gid := range m.prog.Phases[phase].Groups {
		g := m.prog.Groups[gid]
		m.primeGroup(ev, g)
	}
}

func (m *Machine) primeGroup(ev *evaluator, g *core.SendGroup) {
	sites := make([]*core.AggSite, len(g.Sites))
	for i, sid := range g.Sites {
		sites[i] = m.prog.Sites[sid]
	}
	buildFull := func(w float64) (Msg, bool) {
		msg := Msg{Group: uint8(g.ID), NVals: uint8(len(sites)), Sender: ev.u}
		noop := true
		for i, s := range sites {
			ev.curWeight = w
			v := ev.eval(s.SlotExpr)
			msg.Vals[i] = v
			if s.Multiplicative() {
				if abs, _ := core.Absorbing(s.Op); v == abs {
					msg.TagNull |= 1 << i
					noop = false
					continue
				}
			}
			if v != core.Identity(s.Op) {
				noop = false
			}
		}
		if noop && g.Strategy != core.StrategyTable {
			// An all-identity message cannot affect any accumulator;
			// receivers' caches already agree (Def. 1's initial
			// coherence), so it is never meaningful.
			return msg, false
		}
		return msg, true
	}
	if !m.groupUsesWeight(g.ID) {
		// Edge-independent payload: build once, broadcast (Eq. 7 lift).
		if msg, sendIt := buildFull(1); sendIt {
			ev.forPushEdges(g.PushDir, func(dest graph.VertexID, _ float64) {
				ev.ctx.Send(dest, msg)
			})
		}
	} else {
		ev.forPushEdges(g.PushDir, func(dest graph.VertexID, w float64) {
			if msg, sendIt := buildFull(w); sendIt {
				ev.ctx.Send(dest, msg)
			}
		})
	}
	// Record what receivers now believe (§6.2) and reset the dirty bits.
	if g.DirtySlot >= 0 {
		m.state[ev.base+g.DirtySlot] = 0
	}
	for _, s := range sites {
		for i, fslot := range s.Fields {
			if s.OldSlots != nil {
				m.state[ev.base+s.OldSlots[i]] = m.state[ev.base+fslot]
			}
		}
		if s.LastNNSlot >= 0 {
			ev.curWeight = 1
			if v := ev.eval(s.SlotExpr); v != 0 {
				m.state[ev.base+s.LastNNSlot] = v
			}
		}
	}
}
