package vm

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/deltav/ast"
	"repro/internal/pregel"
)

// masterHook drives the compiled statement state machine: prime → body
// transitions, iteration counting, until{} evaluation with the fixpoint
// aggregator, quiescence fast-forwarding (the halt-by-default runtime of
// §6.6/§9), and final termination.
func (m *Machine) masterHook(mc *pregel.MasterContext) {
	if m.masterErr != nil {
		mc.Stop()
		return
	}
	gl := mc.Globals().(*globals)
	if len(m.prog.Phases) == 0 {
		mc.Stop()
		return
	}
	switch gl.Mode {
	case modePrime:
		// The prime superstep (superstep 0 folds init into it) just
		// finished; every vertex must run the first body superstep, since
		// a body execution can differ from the init{} values even without
		// messages.
		mc.SetGlobals(&globals{Phase: gl.Phase, Mode: modeBody, Iter: 1})
		mc.ActivateAll()
	case modeRepair:
		// The repair frontier has injected its corrections; body supersteps
		// now propagate them outward. Deliberately no ActivateAll: only
		// vertices woken by repair messages (or kept active by the planner)
		// run, which is what makes a small delta cheap. The iteration
		// counter restarts so iteration-bounded until{} conditions grant the
		// repair wave a full budget; quiescence fast-forwarding still ends
		// the phase as soon as the wave dies out.
		mc.SetGlobals(&globals{Phase: gl.Phase, Mode: modeBody, Iter: 1})
	case modeBody:
		ph := &m.prog.Phases[gl.Phase]
		m.iterations[gl.Phase]++
		if ph.Kind == core.PhaseStep {
			m.advance(mc, gl.Phase)
			return
		}
		fix := mc.AggValue(aggUnchanged) != 0
		if m.untilSatisfied(ph, gl.Iter, fix) {
			m.advance(mc, gl.Phase)
			return
		}
		if gl.Iter >= m.prog.Opts.MaxIterations {
			m.failf(mc, "phase %d: iteration limit %d reached", gl.Phase, m.prog.Opts.MaxIterations)
			return
		}
		quiescent := mc.NextActive() == 0 && mc.Step().CombinedMessages == 0
		if quiescent {
			// No vertex can change any more, so every future body
			// superstep is a no-op; fast-forward the iteration counter to
			// the first satisfying value (with fixpoint = true) instead
			// of spinning. The loop is master-side and can be long (up to
			// MaxIterations evaluations), so it honors the run's context
			// at a coarse stride.
			for k := gl.Iter + 1; k <= m.prog.Opts.MaxIterations; k++ {
				if k%4096 == 0 && m.runCtx != nil && m.runCtx.Err() != nil {
					m.failf(mc, "phase %d: until{} fast-forward aborted: %v", gl.Phase, m.runCtx.Err())
					return
				}
				if m.untilSatisfied(ph, k, true) {
					m.advance(mc, gl.Phase)
					return
				}
			}
			m.failf(mc, "phase %d: computation quiesced but until{} can never hold", gl.Phase)
			return
		}
		if m.repair != nil && m.repairBudget > 0 && m.iterations[gl.Phase] >= m.repairBudget {
			// The repair wave is past break-even: each additional superstep
			// costs what a from-scratch superstep costs, and the budget says
			// a rerun is now cheaper. Abort with the sentinel so callers
			// take that fallback.
			m.masterErr = fmt.Errorf("vm: %w: repair ran %d body supersteps without converging (budget %d) — rerun from scratch",
				ErrRepairBudget, m.iterations[gl.Phase], m.repairBudget)
			mc.Stop()
			return
		}
		mc.SetGlobals(&globals{Phase: gl.Phase, Mode: modeBody, Iter: gl.Iter + 1})
		if !ph.Halts {
			// Halt-by-default is off for this phase (scratch groups or an
			// iteration-dependent body): every vertex runs every body
			// superstep, as a hand-written Pregel+ program would.
			mc.ActivateAll()
		}
	}
}

func (m *Machine) failf(mc *pregel.MasterContext, format string, args ...any) {
	m.masterErr = fmt.Errorf("vm: %s", fmt.Sprintf(format, args...))
	mc.Stop()
}

// advance moves the state machine past the given phase.
func (m *Machine) advance(mc *pregel.MasterContext, phase int) {
	next := phase + 1
	if next >= len(m.prog.Phases) {
		mc.Stop()
		return
	}
	if len(m.prog.Phases[next].Groups) > 0 {
		mc.SetGlobals(&globals{Phase: next, Mode: modePrime})
	} else {
		mc.SetGlobals(&globals{Phase: next, Mode: modeBody, Iter: 1})
	}
	mc.ActivateAll()
}

// untilSatisfied evaluates the (master-evaluable) until condition.
func (m *Machine) untilSatisfied(ph *core.Phase, iter int, fixpoint bool) bool {
	if ph.Until == nil {
		return true
	}
	return m.evalMaster(ph.Until, iter, fixpoint) != 0
}

// evalMaster evaluates the restricted until{} expression language: the
// iteration counter, params, fixpoint, graphSize, literals and pure
// operators (enforced by the type checker).
func (m *Machine) evalMaster(e ast.Expr, iter int, fixpoint bool) float64 {
	ev := func(x ast.Expr) float64 { return m.evalMaster(x, iter, fixpoint) }
	switch n := e.(type) {
	case *ast.IntLit:
		return float64(n.Val)
	case *ast.FloatLit:
		return n.Val
	case *ast.BoolLit:
		return boolTo01(n.Val)
	case *ast.Infty:
		return math.Inf(1)
	case *ast.GraphSize:
		return float64(m.g.NumVertices())
	case *ast.FixpointRef:
		return boolTo01(fixpoint)
	case *ast.Var:
		if n.Slot == core.IterVarSlot {
			return float64(iter)
		}
		return m.params[core.ParamIndex(n.Slot)]
	case *ast.Unary:
		if n.Op == "not" {
			return boolTo01(ev(n.X) == 0)
		}
		return -ev(n.X)
	case *ast.Binary:
		switch n.Op {
		case "&&":
			return boolTo01(ev(n.L) != 0 && ev(n.R) != 0)
		case "||":
			return boolTo01(ev(n.L) != 0 || ev(n.R) != 0)
		}
		l, r := ev(n.L), ev(n.R)
		switch n.Op {
		case "+":
			return l + r
		case "-":
			return l - r
		case "*":
			return l * r
		case "/":
			return l / r
		case "<":
			return boolTo01(l < r)
		case ">":
			return boolTo01(l > r)
		case "<=":
			return boolTo01(l <= r)
		case ">=":
			return boolTo01(l >= r)
		case "==":
			return boolTo01(l == r)
		case "!=":
			return boolTo01(l != r)
		}
	case *ast.MinMax:
		a, b := ev(n.A), ev(n.B)
		if n.IsMax {
			return math.Max(a, b)
		}
		return math.Min(a, b)
	case *ast.If:
		if ev(n.Cond) != 0 {
			return ev(n.Then)
		}
		if n.Else != nil {
			return ev(n.Else)
		}
		return 0
	}
	panic(fmt.Sprintf("vm: until{} contains unsupported form %T", e))
}

// combiner builds the sender-side combiner for the program, or nil when no
// group is combinable. Messages of a combinable group (single-strategy,
// non-multiplicative slots, no sender identity) combine slot-wise with
// their sites' operators; all other messages get unique keys and pass
// through untouched.
func (m *Machine) combiner() pregel.Combiner[Msg] {
	combinable := make([]bool, len(m.prog.Groups))
	any := false
	for _, g := range m.prog.Groups {
		ok := g.Strategy != core.StrategyTable
		for _, sid := range g.Sites {
			s := m.prog.Sites[sid]
			if s.Multiplicative() {
				ok = false // nullary tags are not mergeable
			}
		}
		combinable[g.ID] = ok
		any = any || ok
	}
	if !any {
		return nil
	}
	return &vmCombiner{m: m, combinable: combinable}
}

type vmCombiner struct {
	m          *Machine
	combinable []bool
	serial     atomic.Uint32
}

// Key implements pregel.KeyedCombiner: combinable groups share a key per
// group; everything else gets a unique key so it is never combined.
func (c *vmCombiner) Key(msg Msg) uint32 {
	if c.combinable[msg.Group] {
		return uint32(msg.Group)
	}
	return 1<<31 | c.serial.Add(1)
}

// Combine merges two same-group messages slot-wise with each slot's ⊞.
func (c *vmCombiner) Combine(a, b Msg) Msg {
	g := c.m.prog.Groups[a.Group]
	for i, sid := range g.Sites {
		a.Vals[i] = core.Apply(c.m.prog.Sites[sid].Op, a.Vals[i], b.Vals[i])
	}
	return a
}
