package vm

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/deltav/ast"
	"repro/internal/graph"
	"repro/internal/pregel"
)

// Delta recomputation: instead of rerunning a converged program from
// scratch after an edge mutation, RunDelta warm-starts the engine from the
// previous run's terminal snapshot and repairs the affected accumulators in
// place. The plan is computed before the run starts: for every mutated arc
// the sender retracts its stale contribution and injects the new one using
// the same Δ-message encoding the incremental pipeline already uses (sum:
// signed difference; prod/and/or: §6.4.1 nullary tags; min/max: monotone
// re-injection only), and the body supersteps then propagate the repair
// wave exactly as an ordinary run would propagate any change. A site whose
// slot expression reads a degree (PageRank's rank/#neighbors) is re-sent
// over the sender's whole adjacency, because a topology change shifts its
// contribution on every incident edge. In memo-table mode the repair
// rewrites the per-neighbour tables instead: surviving pairs are re-sent
// (the table update replaces the stale entry), and pairs whose last arc
// disappeared are surgically deleted with the receiver kept active for the
// next refold.
//
// Repairs only reach the accumulators. A body that folds a field with its
// own previous value (SSSP's `dist = min dist d`) memoizes history the
// plan cannot rewrite: the clamp would pin the stale fixpoint even after a
// perfect table repair, so for such programs the planner admits only
// provable tightenings (core.SelfFoldingFields / core.ClampSafe) and
// rejects everything else with a rerun-from-scratch error.

// DeltaRunOptions configure a delta-recomputation run. The machine's graph
// must be the *mutated* graph (the output of graph.ApplyDelta); Snapshot
// and Changes tie it back to the converged pre-mutation run.
type DeltaRunOptions struct {
	RunOptions
	// Snapshot is the terminal (Done, quiescent) snapshot of a converged
	// run of the same compiled program on the pre-mutation graph.
	Snapshot *pregel.Snapshot
	// Changes is the applied mutation diff produced by graph.ApplyDelta;
	// its OldFingerprint must match the snapshot's graph.
	Changes *graph.AppliedDelta
	// SuperstepBudget, when positive, bounds the repair run's body
	// supersteps. A repair wave that has not converged within the budget
	// aborts with an error wrapping ErrRepairBudget — past break-even a
	// from-scratch rerun is cheaper than finishing the repair, and callers
	// (dvserve) use the sentinel to take that fallback.
	SuperstepBudget int
}

// ErrRepairBudget is wrapped by the error a delta run returns when its
// repair wave exceeds DeltaRunOptions.SuperstepBudget before converging.
var ErrRepairBudget = errors.New("repair superstep budget exceeded")

// repairSend is one precomputed repair message.
type repairSend struct {
	dest graph.VertexID
	msg  Msg
}

// tableSurgery deletes a memo-table entry whose last arc disappeared.
type tableSurgery struct {
	site   int
	dest   graph.VertexID
	sender graph.VertexID
}

// repairPlan is everything the modeRepair superstep executes.
type repairPlan struct {
	sends      map[graph.VertexID][]repairSend
	keepActive map[graph.VertexID]bool
	surgery    []tableSurgery
	frontier   []graph.VertexID
}

// RunDelta executes a delta-recomputation run to completion; see
// RunDeltaContext.
func RunDelta(prog *core.Program, g *graph.Graph, opts DeltaRunOptions) (*Result, error) {
	return RunDeltaContext(context.Background(), prog, g, opts)
}

// RunDeltaContext warm-starts prog on the mutated graph g from the
// converged snapshot in opts and repairs only the state the delta actually
// disturbed. The result is equivalent to rerunning from scratch on g —
// bitwise identical for idempotent (min/max) programs, and equal up to
// float re-association for sum-based ones — while running strictly fewer
// supersteps and messages when the delta is small.
func RunDeltaContext(ctx context.Context, prog *core.Program, g *graph.Graph, opts DeltaRunOptions) (*Result, error) {
	m, err := NewMachine(prog, g, opts.RunOptions)
	if err != nil {
		return nil, err
	}
	return m.RunDeltaContext(ctx, opts)
}

// RunDeltaContext executes the machine as a delta-recomputation run. It may
// only be called once, like RunContext.
func (m *Machine) RunDeltaContext(ctx context.Context, opts DeltaRunOptions) (*Result, error) {
	if m.ran {
		return nil, fmt.Errorf("vm: Machine.Run called twice")
	}
	m.ran = true
	if err := m.validateDelta(&opts); err != nil {
		return nil, err
	}
	gl, err := m.restoreExtra(opts.Snapshot.Extra, opts.Snapshot.NumVertices)
	if err != nil {
		return nil, err
	}
	if gl.Mode != modeBody {
		return nil, fmt.Errorf("vm: delta run needs the snapshot of a completed body phase")
	}
	// The repair run reports its own work, not the seed run's.
	for i := range m.iterations {
		m.iterations[i] = 0
	}
	m.nonMonotone.Store(0)
	m.repairBudget = opts.SuperstepBudget
	// Added vertices have no snapshotted state: run their init{} now, and
	// record the primed send state (what primeGroup would have recorded)
	// so the planner's injection sends for their arcs evaluate against a
	// coherent baseline. The sends themselves come from the plan — every
	// arc of a new vertex is an ArcAdd in the diff.
	m.initNewVertices(opts.Snapshot.NumVertices, gl.Phase)
	plan, err := m.planRepair(opts.Changes)
	if err != nil {
		return nil, err
	}
	for _, sg := range plan.surgery {
		delete(m.tables[sg.site][sg.dest], sg.sender)
	}
	m.repair = plan
	warm := &pregel.WarmStartOptions{
		Snapshot:          opts.Snapshot,
		ExpectFingerprint: opts.Changes.OldFingerprint,
		Activate:          plan.frontier,
		AllowGrowth:       opts.Changes.NewVertices > 0,
	}
	return m.execute(ctx, opts.RunOptions, warm, &globals{Phase: gl.Phase, Mode: modeRepair, Iter: 1})
}

// initNewVertices seeds the vertices in [oldN, n): default field values,
// the init{} body, and the same most-recently-sent bookkeeping primeGroup
// records after a full prime — minus the sends, which the repair plan
// synthesizes from the new vertices' (all-added) arcs instead.
func (m *Machine) initNewVertices(oldN, phase int) {
	n := m.g.NumVertices()
	if oldN >= n {
		return
	}
	ev := &evaluator{m: m}
	ev.lets = make([]float64, m.prog.MaxLetDepth)
	for u := oldN; u < n; u++ {
		ev.u, ev.base = graph.VertexID(u), u*m.stride
		for i, f := range m.prog.Layout.Fields {
			m.state[ev.base+i] = m.fieldDefault(f)
		}
		ev.eval(m.prog.Init)
		for _, gid := range m.prog.Phases[phase].Groups {
			g := m.prog.Groups[gid]
			if g.DirtySlot >= 0 {
				m.state[ev.base+g.DirtySlot] = 0
			}
			for _, sid := range g.Sites {
				s := m.prog.Sites[sid]
				for i, fslot := range s.Fields {
					if s.OldSlots != nil {
						m.state[ev.base+s.OldSlots[i]] = m.state[ev.base+fslot]
					}
				}
				if s.LastNNSlot >= 0 {
					ev.curWeight = 1
					if v := ev.eval(s.SlotExpr); v != 0 {
						m.state[ev.base+s.LastNNSlot] = v
					}
				}
			}
		}
	}
}

// validateDelta rejects the combinations a warm repair cannot handle.
// Every structural decision comes from the program's static RepairProfile —
// the same matrix `dvc vet -analyzers repairability` renders and dvserve
// admits batches with — so the planner and the published matrix can never
// disagree. Only per-value guards (clamp safety of a particular transition,
// zero-crossing product contributions) remain in the planning code below.
func (m *Machine) validateDelta(opts *DeltaRunOptions) error {
	if opts.Snapshot == nil {
		return fmt.Errorf("vm: delta run needs a snapshot")
	}
	if opts.Changes == nil {
		return fmt.Errorf("vm: delta run needs the applied delta")
	}
	if opts.Resume != nil {
		return fmt.Errorf("vm: Resume and a delta run are mutually exclusive")
	}
	rp := m.prog.Repairability()
	if b := rp.Blocked(); b != nil {
		return fmt.Errorf("vm: %s", b.Reason)
	}
	if opts.Changes.NewVertices > 0 {
		// Vertex additions are repairable when the profile says so: the
		// planner runs init{} for the new vertices and injects their arcs.
		// Otherwise wrap ErrSnapshotMismatch so long-lived callers (dvserve,
		// dvrun -warm-start) can detect the case programmatically and fall
		// back to a from-scratch run instead of dying.
		if v := rp.Verdict(core.DeltaVertexAdd); v.Cap != core.Repairable {
			return fmt.Errorf("vm: %w: delta adds %d vertices: %s",
				pregel.ErrSnapshotMismatch, opts.Changes.NewVertices, v.Reason)
		}
		if opts.Snapshot.NumVertices+opts.Changes.NewVertices != m.g.NumVertices() {
			return fmt.Errorf("vm: %w: snapshot covers %d vertices and the delta adds %d, but the graph has %d",
				pregel.ErrSnapshotMismatch, opts.Snapshot.NumVertices, opts.Changes.NewVertices, m.g.NumVertices())
		}
	}
	if opts.Snapshot.Fingerprint != opts.Changes.OldFingerprint {
		return fmt.Errorf("vm: %w: snapshot was taken on graph %016x, the delta was applied to %016x",
			pregel.ErrSnapshotMismatch, opts.Snapshot.Fingerprint, opts.Changes.OldFingerprint)
	}
	// A class the profile rejects for every member is refused before any
	// seed or plan work; value-dependent verdicts fall through to the
	// planner's per-value guards. Reweights are always value-dependent
	// (their class is a direction the plan evaluates per site).
	for _, a := range opts.Changes.Arcs {
		var class core.DeltaClass
		switch a.Kind {
		case graph.ArcAdd:
			class = core.DeltaArcAdd
		case graph.ArcRemove:
			class = core.DeltaArcRemove
		default:
			continue
		}
		if v := rp.Verdict(class); v.Cap != core.Repairable && v.Unconditional {
			return fmt.Errorf("vm: cannot repair %s %d->%d: %s", v.Class, a.U, a.V, v.Reason)
		}
	}
	return nil
}

// pushArc is one sender-perspective arc.
type pushArc struct {
	dest graph.VertexID
	w    float64
}

// planRepair builds the per-vertex repair sends, the memo-table surgery
// list, and the warm-start frontier for the applied delta. It runs after
// restoreExtra, so slot expressions evaluate against the converged state.
func (m *Machine) planRepair(ch *graph.AppliedDelta) (*repairPlan, error) {
	plan := &repairPlan{
		sends:      make(map[graph.VertexID][]repairSend),
		keepActive: make(map[graph.VertexID]bool),
	}
	// Per-vertex degree changes (new minus old), for evaluating
	// pre-mutation contributions against the mutated CSR.
	inDelta := make(map[graph.VertexID]int)
	outDelta := make(map[graph.VertexID]int)
	for _, a := range ch.Arcs {
		switch a.Kind {
		case graph.ArcAdd:
			outDelta[a.U]++
			inDelta[a.V]++
		case graph.ArcRemove:
			outDelta[a.U]--
			inDelta[a.V]--
		}
	}
	ev := &evaluator{m: m}
	ev.lets = make([]float64, m.prog.MaxLetDepth)
	clamped := core.SelfFoldingFields(m.prog.Phases[0].Body, m.prog.Layout.UserFields)
	for _, gid := range m.prog.Phases[0].Groups {
		if err := m.planGroup(plan, ev, m.prog.Groups[gid], ch, inDelta, outDelta, clamped); err != nil {
			return nil, err
		}
	}
	// A body that reads a degree (stock PageRank's pr = vl/|#out|) computes
	// different field values once that degree changes, so every vertex with
	// a changed degree must re-run the body even if no repair message wakes
	// it; its own change checks then broadcast the correction.
	bodyIn, bodyOut, _ := core.SlotTopology(m.prog.Phases[0].Body)
	if bodyIn {
		for v, d := range inDelta { //lint:allow maprange — fills the keepActive set; commutative
			if d != 0 {
				plan.keepActive[v] = true
			}
		}
	}
	if bodyOut {
		for v, d := range outDelta { //lint:allow maprange — fills the keepActive set; commutative
			if d != 0 {
				plan.keepActive[v] = true
			}
		}
	}
	// New vertices join the frontier unconditionally: init{} state is not
	// necessarily their fixpoint (the body may compute from accumulators
	// the injections are only now filling), so they run body supersteps
	// until the wave quiesces, like any repaired vertex.
	for u := m.g.NumVertices() - ch.NewVertices; u < m.g.NumVertices(); u++ {
		plan.keepActive[graph.VertexID(u)] = true
	}
	frontier := make([]graph.VertexID, 0, len(plan.sends)+len(plan.keepActive))
	for u := range plan.sends { //lint:allow maprange — frontier sorted below
		frontier = append(frontier, u)
	}
	for u := range plan.keepActive { //lint:allow maprange — frontier sorted below
		if _, dup := plan.sends[u]; !dup {
			frontier = append(frontier, u)
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	plan.frontier = frontier
	return plan, nil
}

// planGroup plans one send group's repair. clamped names the body's
// self-folding fields (empty for pure-function bodies).
func (m *Machine) planGroup(plan *repairPlan, ev *evaluator, g *core.SendGroup, ch *graph.AppliedDelta, inDelta, outDelta map[graph.VertexID]int, clamped []string) error {
	sites := make([]*core.AggSite, len(g.Sites))
	readsIn, readsOut := false, false
	for i, sid := range g.Sites {
		sites[i] = m.prog.Sites[sid]
		ri, ro, _ := core.SlotTopology(sites[i].SlotExpr)
		readsIn = readsIn || ri
		readsOut = readsOut || ro
	}
	// Orient the CSR arc changes into the group's push direction: an arc
	// u→v is pushed by u to v over out-adjacency, and by v to u when the
	// group pushes over in-adjacency.
	perSender := make(map[graph.VertexID]map[graph.VertexID][]graph.ArcChange)
	for _, a := range ch.Arcs {
		s, d := a.U, a.V
		if g.PushDir == ast.DirIn {
			s, d = a.V, a.U
		}
		pd := perSender[s]
		if pd == nil {
			pd = make(map[graph.VertexID][]graph.ArcChange)
			perSender[s] = pd
		}
		pd[d] = append(pd[d], a)
	}
	// A sender whose read degree changed produces a different contribution
	// on every incident edge and must re-send over its whole adjacency.
	resweep := make(map[graph.VertexID]bool)
	if readsIn {
		for v, d := range inDelta { //lint:allow maprange — fills the resweep set; commutative
			if d != 0 {
				resweep[v] = true
			}
		}
	}
	if readsOut {
		for v, d := range outDelta { //lint:allow maprange — fills the resweep set; commutative
			if d != 0 {
				resweep[v] = true
			}
		}
	}
	senders := make([]graph.VertexID, 0, len(perSender)+len(resweep))
	for s := range perSender { //lint:allow maprange — senders sorted below
		senders = append(senders, s)
	}
	for s := range resweep { //lint:allow maprange — senders sorted below
		if _, dup := perSender[s]; !dup {
			senders = append(senders, s)
		}
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })

	usesW := m.groupUsesWeight(g.ID)
	for _, s := range senders {
		ev.u, ev.base = s, int(s)*m.stride
		if err := m.checkClampedLoosening(ev, sites, perSender[s], resweep[s], clamped); err != nil {
			return err
		}
		cur := m.pushArcs(ev, g.PushDir)
		if g.Strategy == core.StrategyTable {
			m.planTableSender(plan, ev, g, sites, cur, sortedDests(perSender[s]), resweep[s])
			continue
		}
		var err error
		if resweep[s] {
			err = m.planResweep(plan, ev, g, sites, cur, perSender[s], inDelta, outDelta)
		} else {
			err = m.planChangedArcs(plan, ev, g, sites, sortedDests(perSender[s]), perSender[s], usesW)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// pushArcs lists the sender's current push-side arcs in destination order.
func (m *Machine) pushArcs(ev *evaluator, dir ast.GraphDir) []pushArc {
	var out []pushArc
	ev.forPushEdges(dir, func(dest graph.VertexID, w float64) {
		out = append(out, pushArc{dest, w})
	})
	sort.SliceStable(out, func(i, j int) bool { return out[i].dest < out[j].dest })
	return out
}

func sortedDests(pd map[graph.VertexID][]graph.ArcChange) []graph.VertexID {
	dests := make([]graph.VertexID, 0, len(pd))
	for d := range pd { //lint:allow maprange — dests sorted below
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	return dests
}

// oldDegrees reconstructs a vertex's pre-mutation degrees from the diff.
func (m *Machine) oldDegrees(u graph.VertexID, inDelta, outDelta map[graph.VertexID]int) *vertexDegrees {
	d := &vertexDegrees{out: m.g.OutDegree(u) - outDelta[u]}
	if m.g.HasReverse() {
		d.in = m.g.InDegree(u) - inDelta[u]
	} else {
		d.in = d.out
	}
	return d
}

// repairSlotVal evaluates one site's slot expression for the planner:
// with the arc's weight, optionally against the pre-mutation degrees, and
// optionally against the $old fields (what receivers last heard).
func (m *Machine) repairSlotVal(ev *evaluator, s *core.AggSite, w float64, old *vertexDegrees) float64 {
	ev.curWeight = w
	ev.degOverride = old
	if old != nil {
		ev.redirect = m.redirectFor(s)
	}
	v := ev.eval(s.SlotExpr)
	ev.redirect = nil
	ev.degOverride = nil
	return v
}

// emitRepair builds and records one repair message for an arc whose
// contribution moves from oldArc (nil: the arc did not exist) to newArc
// (nil: the arc no longer exists). oldDeg carries the pre-mutation degrees
// for old-side evaluation; nil means the degrees did not change.
func (m *Machine) emitRepair(plan *repairPlan, ev *evaluator, g *core.SendGroup, sites []*core.AggSite, dest graph.VertexID, oldArc, newArc *pushArc, oldDeg *vertexDegrees) error {
	if oldDeg == nil {
		oldDeg = &vertexDegrees{in: m.degreeOf(ev.u, true), out: m.degreeOf(ev.u, false)}
	}
	msg := Msg{Group: uint8(g.ID), NVals: uint8(len(sites)), Sender: ev.u}
	noop := true
	for i, s := range sites {
		var oldV, newV float64
		if oldArc != nil {
			oldV = m.repairSlotVal(ev, s, oldArc.w, oldDeg)
		}
		if newArc != nil {
			newV = m.repairSlotVal(ev, s, newArc.w, nil)
		}
		val, tagNull, tagPrev, slotNoop, err := repairSlot(s, oldV, oldArc != nil, newV, newArc != nil)
		if err != nil {
			return err
		}
		msg.Vals[i] = val
		if tagNull {
			msg.TagNull |= 1 << i
		}
		if tagPrev {
			msg.TagPrev |= 1 << i
		}
		if !slotNoop {
			noop = false
		}
	}
	if !noop {
		plan.sends[ev.u] = append(plan.sends[ev.u], repairSend{dest: dest, msg: msg})
	}
	return nil
}

func (m *Machine) degreeOf(u graph.VertexID, in bool) int {
	if in && m.g.HasReverse() {
		return m.g.InDegree(u)
	}
	return m.g.OutDegree(u)
}

// checkClampedLoosening rejects the transitions a self-folding body would
// mask. A field like SSSP's `dist = min dist d` memoizes its converged
// value outside every repairable accumulator: table surgery can delete a
// removed arc's entry and the refold then yields the corrected aggregate,
// but the body clamps the field to the stale (tighter) value, silently
// pinning a fixpoint no from-scratch run reaches. For clamped programs
// only transitions whose new contribution subsumes the old one — provable
// tightenings — are admitted; everything else reruns from scratch.
func (m *Machine) checkClampedLoosening(ev *evaluator, sites []*core.AggSite, pd map[graph.VertexID][]graph.ArcChange, resweep bool, clamped []string) error {
	if len(clamped) == 0 {
		return nil
	}
	if resweep {
		return fmt.Errorf("vm: a degree change moves every contribution of vertex %d, and the body folds field %q with its own previous value; the clamp could pin a loosened aggregate — rerun from scratch",
			ev.u, clamped[0])
	}
	for _, dest := range sortedDests(pd) {
		for _, a := range pd[dest] {
			for _, s := range sites {
				var oldV, newV float64
				oldPresent := a.Kind != graph.ArcAdd
				newPresent := a.Kind != graph.ArcRemove
				if oldPresent {
					oldV = m.repairSlotVal(ev, s, a.OldW, nil)
				}
				if newPresent {
					newV = m.repairSlotVal(ev, s, a.NewW, nil)
				}
				if !core.ClampSafe(s.Op, oldV, oldPresent, newV, newPresent) {
					return fmt.Errorf("vm: mutated arc %d->%d loosens a %s contribution, and the body folds field %q with its own previous value; the clamp would pin the stale fixpoint — rerun from scratch",
						ev.u, dest, s.Op, clamped[0])
				}
			}
		}
	}
	return nil
}

// planChangedArcs handles a sender whose contributions are
// topology-independent: only the mutated arcs themselves need repair.
func (m *Machine) planChangedArcs(plan *repairPlan, ev *evaluator, g *core.SendGroup, sites []*core.AggSite, dests []graph.VertexID, pd map[graph.VertexID][]graph.ArcChange, usesW bool) error {
	for _, dest := range dests {
		for _, a := range pd[dest] {
			var err error
			switch a.Kind {
			case graph.ArcAdd:
				err = m.emitRepair(plan, ev, g, sites, dest, nil, &pushArc{dest, a.NewW}, nil)
			case graph.ArcRemove:
				err = m.emitRepair(plan, ev, g, sites, dest, &pushArc{dest, a.OldW}, nil, nil)
			case graph.ArcReweight:
				if !usesW {
					continue // no site reads the weight: nothing changed
				}
				err = m.emitRepair(plan, ev, g, sites, dest, &pushArc{dest, a.OldW}, &pushArc{dest, a.NewW}, nil)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// planResweep handles a sender whose read degree changed: every incident
// arc's contribution moved, so the old adjacency is reconstructed from the
// diff and diffed arc-by-arc against the current one.
func (m *Machine) planResweep(plan *repairPlan, ev *evaluator, g *core.SendGroup, sites []*core.AggSite, cur []pushArc, pd map[graph.VertexID][]graph.ArcChange, inDelta, outDelta map[graph.VertexID]int) error {
	oldDeg := m.oldDegrees(ev.u, inDelta, outDelta)
	old := append([]pushArc(nil), cur...)
	for _, dest := range sortedDests(pd) {
		for _, a := range pd[dest] {
			switch a.Kind {
			case graph.ArcAdd:
				i := findArc(old, dest, a.NewW)
				if i < 0 {
					return fmt.Errorf("vm: repair plan cannot reconcile added arc %d->%d with the mutated graph", ev.u, dest)
				}
				old = append(old[:i], old[i+1:]...)
			case graph.ArcReweight:
				i := findArc(old, dest, a.NewW)
				if i < 0 {
					return fmt.Errorf("vm: repair plan cannot reconcile reweighted arc %d->%d with the mutated graph", ev.u, dest)
				}
				old[i].w = a.OldW
			case graph.ArcRemove:
				old = append(old, pushArc{dest, a.OldW})
			}
		}
	}
	sort.SliceStable(old, func(i, j int) bool { return old[i].dest < old[j].dest })
	// Merge old and current per destination: persisting arcs become
	// old→new transitions, vanished arcs retractions, fresh arcs
	// injections.
	i, j := 0, 0
	for i < len(old) || j < len(cur) {
		var err error
		switch {
		case j >= len(cur) || (i < len(old) && old[i].dest < cur[j].dest):
			err = m.emitRepair(plan, ev, g, sites, old[i].dest, &old[i], nil, oldDeg)
			i++
		case i >= len(old) || cur[j].dest < old[i].dest:
			err = m.emitRepair(plan, ev, g, sites, cur[j].dest, nil, &cur[j], oldDeg)
			j++
		default:
			err = m.emitRepair(plan, ev, g, sites, old[i].dest, &old[i], &cur[j], oldDeg)
			i++
			j++
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func findArc(arcs []pushArc, dest graph.VertexID, w float64) int {
	for i, a := range arcs {
		if a.dest == dest && math.Float64bits(a.w) == math.Float64bits(w) {
			return i
		}
	}
	return -1
}

// planTableSender repairs the §4.2.1 per-neighbour tables: stale pairs are
// re-sent over every surviving arc (the receiver's table update replaces
// the entry, merging parallel arcs with ⊞), and pairs whose last arc
// disappeared are queued for direct surgery with the receiver kept active
// so its next refold sees the deletion.
func (m *Machine) planTableSender(plan *repairPlan, ev *evaluator, g *core.SendGroup, sites []*core.AggSite, cur []pushArc, changedDests []graph.VertexID, resweep bool) {
	emitFull := func(a pushArc) {
		msg := Msg{Group: uint8(g.ID), NVals: uint8(len(sites)), Sender: ev.u}
		for i, s := range sites {
			msg.Vals[i] = m.repairSlotVal(ev, s, a.w, nil)
		}
		plan.sends[ev.u] = append(plan.sends[ev.u], repairSend{dest: a.dest, msg: msg})
	}
	surgery := func(dest graph.VertexID) {
		for _, sid := range g.Sites {
			plan.surgery = append(plan.surgery, tableSurgery{site: sid, dest: dest, sender: ev.u})
		}
		plan.keepActive[dest] = true
	}
	if resweep {
		for _, a := range cur {
			emitFull(a)
		}
		for _, dest := range changedDests {
			if countArcs(cur, dest) == 0 {
				surgery(dest)
			}
		}
		return
	}
	for _, dest := range changedDests {
		n := 0
		for _, a := range cur {
			if a.dest == dest {
				emitFull(a)
				n++
			}
		}
		if n == 0 {
			surgery(dest)
		}
	}
}

func countArcs(arcs []pushArc, dest graph.VertexID) int {
	n := 0
	for _, a := range arcs {
		if a.dest == dest {
			n++
		}
	}
	return n
}

// repairSlot synthesizes the Δ-message slot that moves a memoized
// accumulator from an arc's old contribution to its new one, reusing the
// Δ-message encodings of Eq. 11 and §6.4.1. Absent contributions (the arc
// did not or will no longer exist) are passed with present=false.
func repairSlot(s *core.AggSite, oldV float64, oldPresent bool, newV float64, newPresent bool) (val float64, tagNull, tagPrev, noop bool, err error) {
	switch s.Op {
	case ast.AggSum:
		var o, n float64
		if oldPresent {
			o = oldV
		}
		if newPresent {
			n = newV
		}
		if o == n {
			return 0, false, false, true, nil
		}
		return n - o, false, false, false, nil
	case ast.AggMin, ast.AggMax:
		id := core.Identity(s.Op)
		if !oldPresent {
			// Injection: folding a fresh value into an idempotent
			// accumulator is always exact.
			return newV, false, false, newV == id, nil
		}
		if newPresent {
			if newV == oldV {
				return id, false, false, true, nil
			}
			if (s.Op == ast.AggMin && newV < oldV) || (s.Op == ast.AggMax && newV > oldV) {
				// A tightening transition subsumes the old value.
				return newV, false, false, false, nil
			}
		}
		if oldV == id {
			// The old contribution was the identity; dropping it is free.
			if !newPresent {
				return id, false, false, true, nil
			}
			return newV, false, false, false, nil
		}
		return 0, false, false, false, fmt.Errorf(
			"vm: cannot retract a %s contribution from a memoized accumulator (mutation loosens a folded-in value); use mode %s or rerun from scratch",
			s.Op, core.MemoTable)
	case ast.AggProd:
		o, n := 1.0, 1.0
		if oldPresent {
			o = oldV
		}
		if newPresent {
			n = newV
		}
		if o == n {
			return 1, false, false, true, nil
		}
		if o == 0 || n == 0 {
			// Zero crossings need the sender-global $lastnn protocol, which
			// a per-arc repair cannot participate in.
			return 0, false, false, false, fmt.Errorf("vm: cannot repair a nullary (zero) product contribution in place; rerun from scratch")
		}
		return n / o, false, false, false, nil
	case ast.AggOr, ast.AggAnd:
		abs, _ := core.Absorbing(s.Op)
		id := core.Identity(s.Op)
		o, n := id, id
		if oldPresent {
			o = oldV
		}
		if newPresent {
			n = newV
		}
		if o == n {
			return id, false, false, true, nil
		}
		if n == abs {
			return n, true, false, false, nil // gained an absorbing value
		}
		return id, false, true, false, nil // lost an absorbing value
	}
	return 0, false, false, false, fmt.Errorf("vm: repair for unknown operator %s", s.Op)
}
