package vm

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/programs"
)

// Delta-recomputation equivalence: RunDelta on the mutated graph, seeded
// from the converged pre-mutation snapshot, must produce the same user
// fields as a from-scratch run on the mutated graph — bitwise for
// idempotent (min) programs, up to float re-association for sum-based ones
// — while doing strictly less work for a small delta.
//
// Removals are only exercised for invertible (sum) aggregations: SSSP and
// CC clamp against their own previous value (dist = min dist d), so a
// loosened input is unrecoverable by *any* execution strategy — the
// algorithms are monotone by construction — and the planner rejects
// min-retraction to surface that early.

// fixpoint-terminating sources for programs whose stock versions use an
// iteration bound (which a warm repair cannot continue meaningfully).
const (
	// prFieldSrc is stock PageRank with until{fixpoint}: the degree
	// dependence sits in the pr *field*, so mutated-degree vertices must be
	// re-woken to recompute and re-broadcast it.
	prFieldSrc = `
init {
  local vl : float = 1.0 / graphSize;
  local pr : float = if |#out| > 0 then vl / |#out| else 0.0
};
iter i {
  let sum : float = + [ u.pr | u <- #in ] in
  vl = 0.15 + 0.85 * (sum / graphSize);
  pr = if |#out| > 0 then vl / |#out| else 0.0
} until { fixpoint }
`
	// prSiteSrc moves the degree dependence into the aggregand itself, so
	// the slot expression reads the sender's out-degree and the planner
	// must re-send over the sender's whole adjacency.
	prSiteSrc = `
init {
  local vl : float = 1.0 / graphSize
};
iter i {
  let sum : float = + [ u.vl / |#out| | u <- #in ] in
  vl = 0.15 + 0.85 * (sum / graphSize)
} until { fixpoint }
`
	// nsumSrc is a weighted one-hop sum: x never changes, s is the
	// weighted sum of in-neighbour x values. Every arc mutation maps to
	// exactly one retraction/injection/transition.
	nsumSrc = `
init {
  local x : float = 1.0 + 1.0 * id;
  local s : float = 0.0
};
iter k {
  let t : float = + [ u.x * ew | u <- #in ] in
  s = t
} until { fixpoint }
`
)

var deltaScheds = map[string]pregel.Scheduler{
	"scan-all":   pregel.ScanAll,
	"work-queue": pregel.WorkQueue,
}

// terminalVMSnapshot runs the program to convergence with a Sink-only
// checkpoint and returns the single terminal snapshot plus the result.
func terminalVMSnapshot(t *testing.T, prog *core.Program, g *graph.Graph, opts RunOptions) (*pregel.Snapshot, *Result) {
	t.Helper()
	var buf bytes.Buffer
	opts.Checkpoint = pregel.CheckpointOptions{Sink: &buf}
	res, err := Run(prog, g, opts)
	if err != nil {
		t.Fatalf("seed run: %v", err)
	}
	snap, err := pregel.ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("decode terminal snapshot: %v", err)
	}
	if !snap.Done {
		t.Fatalf("terminal snapshot not Done")
	}
	return snap, res
}

// deltaCase drives one (program, mode, graph, delta) equivalence check
// across schedulers and returns the scratch and delta stats of the last
// scheduler for work assertions.
type deltaCase struct {
	name    string
	src     string // inline source; empty means stock program progName
	prog    string
	mode    core.Mode
	epsilon float64
	params  map[string]float64
	combine bool
	fields  []string
	bitwise bool
}

func (tc *deltaCase) compile(t *testing.T) *core.Program {
	t.Helper()
	src := tc.src
	if src == "" {
		src = programs.MustSource(tc.prog)
	}
	p, err := core.Compile(src, core.Options{Mode: tc.mode, Epsilon: tc.epsilon})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func (tc *deltaCase) run(t *testing.T, g0 *graph.Graph, d *graph.Delta) (scratch, delta *pregel.Stats) {
	t.Helper()
	g1, ad, err := graph.ApplyDelta(g0, d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	// The seed snapshot is taken under ScanAll; a warm start is
	// scheduler-agnostic, so both schedulers replay from the same snapshot.
	base := RunOptions{Workers: 4, Params: tc.params, Combine: tc.combine}
	snap, _ := terminalVMSnapshot(t, tc.compile(t), g0, base)
	for schedName, sched := range deltaScheds {
		opts := base
		opts.Scheduler = sched
		scratchRes, err := Run(tc.compile(t), g1, opts)
		if err != nil {
			t.Fatalf("%s: scratch run: %v", schedName, err)
		}
		deltaRes, err := RunDelta(tc.compile(t), g1, DeltaRunOptions{
			RunOptions: opts,
			Snapshot:   snap,
			Changes:    ad,
		})
		if err != nil {
			t.Fatalf("%s: delta run: %v", schedName, err)
		}
		for _, f := range tc.fields {
			want, err := scratchRes.FieldVector(f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := deltaRes.FieldVector(f)
			if err != nil {
				t.Fatal(err)
			}
			for u := range want {
				if tc.bitwise {
					if math.Float64bits(got[u]) != math.Float64bits(want[u]) {
						t.Fatalf("%s: %s[%d] = %g (%x), want %g (%x)",
							schedName, f, u, got[u], math.Float64bits(got[u]), want[u], math.Float64bits(want[u]))
					}
				} else if !close9(got[u], want[u]) {
					t.Fatalf("%s: %s[%d] = %g, want %g", schedName, f, u, got[u], want[u])
				}
			}
		}
		scratch, delta = scratchRes.Stats, deltaRes.Stats
	}
	return scratch, delta
}

// assertCheaper checks the paper's delta-recomputation payoff: strictly
// fewer supersteps and strictly fewer messages than the from-scratch run.
func assertCheaper(t *testing.T, scratch, delta *pregel.Stats) {
	t.Helper()
	if delta.Supersteps >= scratch.Supersteps {
		t.Errorf("delta run took %d supersteps, scratch %d — expected strictly fewer", delta.Supersteps, scratch.Supersteps)
	}
	if delta.MessagesSent >= scratch.MessagesSent {
		t.Errorf("delta run sent %d messages, scratch %d — expected strictly fewer", delta.MessagesSent, scratch.MessagesSent)
	}
}

// weightedChain builds a directed weighted path 0→1→…→n-1 (weight 2), the
// worst case for a from-scratch SSSP wave and the best showcase for a
// localized repair.
func weightedChain(n int) *graph.Graph {
	b := graph.NewBuilder(n, true)
	for i := 0; i < n-1; i++ {
		b.AddWeightedEdge(graph.VertexID(i), graph.VertexID(i+1), 2)
	}
	return b.Finalize()
}

func TestDeltaRecomputeSSSP(t *testing.T) {
	for _, mode := range []core.Mode{core.Incremental, core.MemoTable} {
		t.Run(mode.String(), func(t *testing.T) {
			g0 := weightedChain(80)
			d := &graph.Delta{}
			d.AddWeightedEdge(0, 60, 1.5)  // shortcut: tightens 60..79
			d.SetWeight(30, 31, 1)         // tightened existing arc
			d.AddWeightedEdge(70, 10, 100) // loose arc: injected but never wins
			tc := &deltaCase{
				prog: "sssp", mode: mode, fields: []string{"dist"},
				params: map[string]float64{"src": 0}, bitwise: true, combine: true,
			}
			scratch, delta := tc.run(t, g0, d)
			assertCheaper(t, scratch, delta)
		})
	}
}

// TestDeltaRecomputeVertexAdd: growth repairs in place — the planner runs
// init{} for the appended vertices, injects their (simultaneously added)
// arcs, and the repair wave integrates them into the converged state,
// bitwise equal to a from-scratch run on the grown graph.
func TestDeltaRecomputeVertexAdd(t *testing.T) {
	for _, mode := range []core.Mode{core.Incremental, core.MemoTable} {
		t.Run(mode.String(), func(t *testing.T) {
			g0 := weightedChain(80)
			d := &graph.Delta{}
			d.AddVertices(2)
			d.AddWeightedEdge(79, 80, 2)  // extend the chain into vertex 80
			d.AddWeightedEdge(80, 81, 1)  // ... and on to 81
			d.AddWeightedEdge(81, 40, 50) // loose back-arc: injected, never wins
			tc := &deltaCase{
				prog: "sssp", mode: mode, fields: []string{"dist"},
				params: map[string]float64{"src": 0}, bitwise: true,
			}
			scratch, delta := tc.run(t, g0, d)
			if delta.MessagesSent >= scratch.MessagesSent {
				t.Errorf("delta run sent %d messages, scratch %d — expected strictly fewer",
					delta.MessagesSent, scratch.MessagesSent)
			}
		})
	}
}

// TestDeltaRecomputeVertexAddIsolated: appended vertices with no arcs
// still run init{} and their body to a private fixpoint.
func TestDeltaRecomputeVertexAddIsolated(t *testing.T) {
	g0 := graph.Cycle(60, false)
	d := &graph.Delta{}
	d.AddVertices(3)
	tc := &deltaCase{prog: "cc", mode: core.Incremental, fields: []string{"cid"}, bitwise: true}
	tc.run(t, g0, d)
}

// TestDeltaRunSuperstepBudget: a repair wave that outlives its superstep
// budget aborts with ErrRepairBudget instead of finishing, so servers can
// switch to a from-scratch rerun past break-even.
func TestDeltaRunSuperstepBudget(t *testing.T) {
	g0 := weightedChain(80)
	prog := mustCompile("sssp", core.Incremental)
	snap, _ := terminalVMSnapshot(t, prog, g0, RunOptions{Workers: 2, Params: map[string]float64{"src": 0}})
	d := &graph.Delta{}
	d.AddWeightedEdge(0, 40, 1.5) // tightens the whole 40..79 suffix: a long wave
	g1, ad, err := graph.ApplyDelta(g0, d)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunDelta(mustCompile("sssp", core.Incremental), g1, DeltaRunOptions{
		RunOptions:      RunOptions{Workers: 2, Params: map[string]float64{"src": 0}},
		Snapshot:        snap,
		Changes:         ad,
		SuperstepBudget: 3,
	})
	if !errors.Is(err, ErrRepairBudget) {
		t.Fatalf("budget 3 on a 40-superstep wave: err = %v, want ErrRepairBudget", err)
	}
	// The same repair with room to spare completes.
	res, err := RunDelta(mustCompile("sssp", core.Incremental), g1, DeltaRunOptions{
		RunOptions:      RunOptions{Workers: 2, Params: map[string]float64{"src": 0}},
		Snapshot:        snap,
		Changes:         ad,
		SuperstepBudget: 10_000,
	})
	if err != nil {
		t.Fatalf("generous budget: %v", err)
	}
	if res.Stats.Supersteps == 0 {
		t.Fatal("repair did no work")
	}
}

// TestDeltaCheckpointIncrementalBytes pins the O(touched) end of the
// checkpoint chain: a converged run's chain holds one full base record;
// a three-arc repair appended to the same chain writes a delta record a
// couple of orders of magnitude smaller.
func TestDeltaCheckpointIncrementalBytes(t *testing.T) {
	g0 := weightedChain(3000)
	dir := t.TempDir()
	ck := pregel.CheckpointOptions{Dir: dir, Incremental: true}
	seed, err := Run(mustCompile("sssp", core.Incremental), g0, RunOptions{
		Workers: 4, Params: map[string]float64{"src": 0}, Checkpoint: ck,
	})
	if err != nil {
		t.Fatal(err)
	}
	baseBytes := seed.Stats.CheckpointBytes
	if baseBytes == 0 {
		t.Fatal("seed run wrote no checkpoint bytes")
	}
	st, err := pregel.LoadChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := &graph.Delta{}
	d.AddWeightedEdge(100, 50, 500) // three loose arcs: the repair wave
	d.AddWeightedEdge(900, 20, 500) // dies immediately, so the chain's
	d.AddWeightedEdge(2500, 7, 500) // next record is O(touched)
	g1, ad, err := graph.ApplyDelta(g0, d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDelta(mustCompile("sssp", core.Incremental), g1, DeltaRunOptions{
		RunOptions: RunOptions{Workers: 4, Params: map[string]float64{"src": 0}, Checkpoint: ck},
		Snapshot:   st.Snapshot,
		Changes:    ad,
	})
	if err != nil {
		t.Fatal(err)
	}
	deltaBytes := res.Stats.CheckpointBytes
	if deltaBytes == 0 {
		t.Fatal("repair run wrote no checkpoint bytes")
	}
	if deltaBytes*50 > baseBytes {
		t.Fatalf("repair chain record is %d bytes, base is %d — not O(touched)", deltaBytes, baseBytes)
	}
	// The chain must now replay to the repaired state.
	st2, err := pregel.LoadChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Snapshot.Fingerprint != g1.Fingerprint() {
		t.Fatal("chain tip does not carry the mutated graph's fingerprint")
	}
	want, _ := res.FieldVector("dist")
	seeded, err := SeedFromSnapshot(mustCompile("sssp", core.Incremental), g1, RunOptions{}, st2.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := seeded.FieldVector("dist")
	for u := range want {
		if math.Float64bits(got[u]) != math.Float64bits(want[u]) {
			t.Fatalf("chain-seeded dist[%d] = %g, want %g", u, got[u], want[u])
		}
	}
}

func TestDeltaRecomputeCC(t *testing.T) {
	g0 := graph.Cycle(180, false)
	d := &graph.Delta{}
	d.AddEdge(20, 130)
	tc := &deltaCase{prog: "cc", mode: core.Incremental, fields: []string{"cid"}, bitwise: true}
	scratch, delta := tc.run(t, g0, d)
	assertCheaper(t, scratch, delta)
}

// randWeighted builds a random directed weighted multigraph.
func randWeighted(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, true)
	for i := 0; i < m; i++ {
		b.AddWeightedEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), 0.5+2*rng.Float64())
	}
	return b.Finalize()
}

// firstArc returns some existing arc of g.
func firstArc(t *testing.T, g *graph.Graph) (u, v graph.VertexID) {
	t.Helper()
	for x := 0; x < g.NumVertices(); x++ {
		if adj := g.OutNeighbors(graph.VertexID(x)); len(adj) > 0 {
			return graph.VertexID(x), adj[0]
		}
	}
	t.Fatal("graph has no arcs")
	return 0, 0
}

func TestDeltaRecomputeWeightedSum(t *testing.T) {
	for _, mode := range []core.Mode{core.Incremental, core.MemoTable} {
		t.Run(mode.String(), func(t *testing.T) {
			g0 := randWeighted(60, 150, 11)
			u, v := firstArc(t, g0)
			d := &graph.Delta{}
			d.RemoveEdge(u, v) // clears all parallel arcs: memo-table surgery
			d.AddWeightedEdge(7, 3, 1.25)
			d.AddWeightedEdge(3, 7, 0.5)
			d.SetWeight(7, 3, 4) // reweight the arc added above
			tc := &deltaCase{src: nsumSrc, mode: mode, fields: []string{"s"}}
			tc.run(t, g0, d)
		})
	}
}

// nminSrc is a weighted one-hop min whose output field is a pure function
// of the aggregate — no `m = min m t` self-fold. That keeps loosening
// mutations inside the memo-table repairable class: surgery deletes the
// retracted entry and the refold re-derives the min exactly.
const nminSrc = `
init {
  local x : float = 1.0 + 1.0 * id;
  local m : float = infty
};
iter k {
  let t : float = min [ u.x + ew | u <- #in ] in
  m = t
} until { fixpoint }
`

// TestDeltaRecomputeUnclampedMinRemoval: edge removal against a min site
// is repairable in memo-table mode when the body does not clamp — the
// positive counterpart of the TestDeltaClampedLoosening rejections.
func TestDeltaRecomputeUnclampedMinRemoval(t *testing.T) {
	g0 := randWeighted(60, 150, 11)
	u, v := firstArc(t, g0)
	d := &graph.Delta{}
	d.RemoveEdge(u, v) // clears all parallel arcs: memo-table surgery
	d.AddWeightedEdge(7, 3, 1.25)
	tc := &deltaCase{src: nminSrc, mode: core.MemoTable, fields: []string{"m"}, bitwise: true}
	tc.run(t, g0, d)

	// The same removal in incremental mode still hits the accumulator
	// retraction wall (no table to delete from), with advice that is only
	// honest because the body is unclamped.
	opts := RunOptions{Workers: 4}
	prog, err := core.Compile(nminSrc, core.Options{Mode: core.Incremental})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := terminalVMSnapshot(t, prog, g0, opts)
	g1, ad, err := graph.ApplyDelta(g0, d)
	if err != nil {
		t.Fatal(err)
	}
	prog, err = core.Compile(nminSrc, core.Options{Mode: core.Incremental})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunDelta(prog, g1, DeltaRunOptions{RunOptions: opts, Snapshot: snap, Changes: ad})
	wantErr(t, err, "cannot retract")
}

// TestDeltaClampedLoosening: SSSP's `dist = min dist d` folds the field
// with its own previous value, so a loosening mutation would leave dist
// pinned at the stale (tighter) fixpoint even though the memo table can
// retract the contribution itself. dvserve surfaced this: before the
// planner guard, RunDelta reported success and the daemon served stale
// distances forever. Both mutation shapes that can loosen — removal and a
// weight increase — must be rejected so callers fall back to scratch.
func TestDeltaClampedLoosening(t *testing.T) {
	g0 := graph.Grid(12, 12, 10, 5)
	opts := RunOptions{Workers: 3, Params: map[string]float64{"src": 0}, Combine: true}
	snap, _ := terminalVMSnapshot(t, mustCompile("sssp", core.MemoTable), g0, opts)
	cases := []struct {
		name string
		mut  func(*graph.Delta)
	}{
		{"remove", func(d *graph.Delta) { d.RemoveEdge(0, 1) }},
		{"loosen-reweight", func(d *graph.Delta) { d.SetWeight(0, 1, 99) }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			d := &graph.Delta{}
			tt.mut(d)
			g1, ad, err := graph.ApplyDelta(g0, d)
			if err != nil {
				t.Fatal(err)
			}
			_, err = RunDelta(mustCompile("sssp", core.MemoTable), g1, DeltaRunOptions{
				RunOptions: opts, Snapshot: snap, Changes: ad,
			})
			wantErr(t, err, "pin the stale fixpoint")
		})
	}
}

func TestDeltaRecomputePageRankField(t *testing.T) {
	g0 := graph.RMAT(7, 3, 0.57, 0.19, 0.19, true, 42)
	u, v := firstArc(t, g0)
	d := &graph.Delta{}
	d.RemoveEdge(u, v)
	d.AddEdge(3, 11)
	tc := &deltaCase{src: prFieldSrc, mode: core.Incremental, epsilon: 1e-9, fields: []string{"vl", "pr"}}
	scratch, delta := tc.run(t, g0, d)
	if delta.MessagesSent >= scratch.MessagesSent {
		t.Errorf("delta run sent %d messages, scratch %d — expected strictly fewer", delta.MessagesSent, scratch.MessagesSent)
	}
}

func TestDeltaRecomputeSiteCardinality(t *testing.T) {
	g0 := graph.RMAT(7, 3, 0.57, 0.19, 0.19, true, 7)
	u, v := firstArc(t, g0)
	d := &graph.Delta{}
	d.RemoveEdge(u, v)
	d.AddEdge(5, 23)
	tc := &deltaCase{src: prSiteSrc, mode: core.Incremental, epsilon: 1e-9, fields: []string{"vl"}}
	scratch, delta := tc.run(t, g0, d)
	if delta.MessagesSent >= scratch.MessagesSent {
		t.Errorf("delta run sent %d messages, scratch %d — expected strictly fewer", delta.MessagesSent, scratch.MessagesSent)
	}
}

// TestDeltaRecomputeNoop: an empty delta leaves the fingerprint and values
// untouched; the repair frontier is empty and the run converges on the spot.
func TestDeltaRecomputeNoop(t *testing.T) {
	g0 := weightedChain(40)
	prog := mustCompile("sssp", core.Incremental)
	snap, seed := terminalVMSnapshot(t, prog, g0, RunOptions{Workers: 3})
	g1, ad, err := graph.ApplyDelta(g0, &graph.Delta{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDelta(mustCompile("sssp", core.Incremental), g1, DeltaRunOptions{
		RunOptions: RunOptions{Workers: 3},
		Snapshot:   snap,
		Changes:    ad,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Supersteps > 2 {
		t.Errorf("no-op delta ran %d supersteps", res.Stats.Supersteps)
	}
	want, _ := seed.FieldVector("dist")
	got, _ := res.FieldVector("dist")
	for u := range want {
		if math.Float64bits(got[u]) != math.Float64bits(want[u]) {
			t.Fatalf("dist[%d] = %g, want %g", u, got[u], want[u])
		}
	}
}

// TestDeltaRunValidation pins every rejection path with its reason.
func TestDeltaRunValidation(t *testing.T) {
	g0 := weightedChain(30)
	snap, _ := terminalVMSnapshot(t, mustCompile("sssp", core.Incremental), g0, RunOptions{Workers: 2})

	apply := func(t *testing.T, d *graph.Delta) (*graph.Graph, *graph.AppliedDelta) {
		t.Helper()
		g1, ad, err := graph.ApplyDelta(g0, d)
		if err != nil {
			t.Fatal(err)
		}
		return g1, ad
	}
	addOne := &graph.Delta{}
	addOne.AddWeightedEdge(0, 20, 1)

	t.Run("baseline-mode", func(t *testing.T) {
		g1, ad := apply(t, addOne)
		_, err := RunDelta(mustCompile("sssp", core.Baseline), g1, DeltaRunOptions{Snapshot: snap, Changes: ad})
		wantErr(t, err, "delta runs need")
	})
	t.Run("multi-phase", func(t *testing.T) {
		g1, ad := apply(t, addOne)
		_, err := RunDelta(mustCompile("twophase", core.Incremental), g1, DeltaRunOptions{Snapshot: snap, Changes: ad})
		wantErr(t, err, "single-phase")
	})
	t.Run("iteration-bounded-until", func(t *testing.T) {
		g1, ad := apply(t, addOne)
		_, err := RunDelta(mustCompile("pagerank", core.Incremental), g1, DeltaRunOptions{Snapshot: snap, Changes: ad})
		wantErr(t, err, "fixpoint")
	})
	t.Run("new-vertices-reads-graphsize", func(t *testing.T) {
		// Vertex additions repair in place unless vertex code reads #V:
		// growth then changes every existing vertex's inputs, and init{}
		// only reruns for the new ones. The profile's verdict gates the run.
		d := &graph.Delta{}
		d.AddVertices(2)
		g1, ad := apply(t, d)
		prog, err := core.Compile(prFieldSrc, core.Options{Mode: core.Incremental, Epsilon: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		_, err = RunDelta(prog, g1, DeltaRunOptions{Snapshot: snap, Changes: ad})
		wantErr(t, err, "graph size")
	})
	t.Run("new-vertices-count-mismatch", func(t *testing.T) {
		d := &graph.Delta{}
		d.AddVertices(2)
		g1, ad := apply(t, d)
		bad := *ad
		bad.NewVertices = 1
		_, err := RunDelta(mustCompile("sssp", core.Incremental), g1, DeltaRunOptions{Snapshot: snap, Changes: &bad})
		wantErr(t, err, "the delta adds")
	})
	t.Run("fingerprint-mismatch", func(t *testing.T) {
		g1, ad := apply(t, addOne)
		bad := *ad
		bad.OldFingerprint++
		_, err := RunDelta(mustCompile("sssp", core.Incremental), g1, DeltaRunOptions{Snapshot: snap, Changes: &bad})
		wantErr(t, err, "snapshot was taken on graph")
	})
	t.Run("resume-conflict", func(t *testing.T) {
		g1, ad := apply(t, addOne)
		_, err := RunDelta(mustCompile("sssp", core.Incremental), g1, DeltaRunOptions{
			RunOptions: RunOptions{Resume: snap}, Snapshot: snap, Changes: ad,
		})
		wantErr(t, err, "mutually exclusive")
	})
	t.Run("missing-snapshot", func(t *testing.T) {
		g1, ad := apply(t, addOne)
		_, err := RunDelta(mustCompile("sssp", core.Incremental), g1, DeltaRunOptions{Changes: ad})
		wantErr(t, err, "needs a snapshot")
	})
	t.Run("missing-changes", func(t *testing.T) {
		g1, _ := apply(t, addOne)
		_, err := RunDelta(mustCompile("sssp", core.Incremental), g1, DeltaRunOptions{Snapshot: snap})
		wantErr(t, err, "needs the applied delta")
	})
	t.Run("min-retraction", func(t *testing.T) {
		// Removing an arc loosens a min input. SSSP's body clamps dist
		// with its own previous value, so even a mode whose accumulator
		// could retract the contribution (memo tables) would publish a
		// pinned stale fixpoint; the planner rejects the loosening before
		// strategy dispatch in both modes.
		d := &graph.Delta{}
		d.RemoveEdge(10, 11)
		g1, ad := apply(t, d)
		_, err := RunDelta(mustCompile("sssp", core.Incremental), g1, DeltaRunOptions{Snapshot: snap, Changes: ad})
		wantErr(t, err, "pin the stale fixpoint")
	})
	t.Run("non-terminal-snapshot", func(t *testing.T) {
		dir := t.TempDir()
		opts := RunOptions{Workers: 2, Params: map[string]float64{"src": 0},
			Checkpoint: pregel.CheckpointOptions{Every: 1, Dir: dir}}
		if _, err := Run(mustCompile("sssp", core.Incremental), g0, opts); err != nil {
			t.Fatal(err)
		}
		mid, err := pregel.ReadSnapshotFile(filepath.Join(dir, pregel.SnapshotFileName(2)))
		if err != nil {
			t.Fatal(err)
		}
		g1, ad := apply(t, addOne)
		_, err = RunDelta(mustCompile("sssp", core.Incremental), g1, DeltaRunOptions{Snapshot: mid, Changes: ad})
		wantErr(t, err, "terminal")
	})
}

func wantErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected an error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}
