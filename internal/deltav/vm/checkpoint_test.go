package vm

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pregel"
)

// Crash-resume equivalence for compiled ΔV programs: the machine state
// (flat state matrix, memo tables, master phase machine) rides in the
// snapshot's Extra payload, so a resumed run must be indistinguishable from
// the uninterrupted one — bitwise-identical final fields, same remaining
// supersteps, same per-phase iteration counts.
//
// Table folds run in sorted sender order, so memo-table runs are bitwise
// reproducible like the other modes; the sssp memo-table case pins that
// through the snapshot round-trip.
func TestDeltaVCheckpointResumeEquivalence(t *testing.T) {
	g := directedTestGraph()
	cases := []struct {
		program string
		mode    core.Mode
		field   string
		params  map[string]float64
	}{
		{"pagerank", core.Incremental, "vl", nil},
		{"sssp", core.MemoTable, "dist", map[string]float64{"src": 5}},
		{"cc", core.Incremental, "cid", nil},
		{"twophase", core.Incremental, "t", nil},
	}
	scheds := map[string]pregel.Scheduler{
		"scan-all":   pregel.ScanAll,
		"work-queue": pregel.WorkQueue,
	}
	for _, tc := range cases {
		for schedName, sched := range scheds {
			tc, sched := tc, sched
			t.Run(tc.program+"/"+tc.mode.String()+"/"+schedName, func(t *testing.T) {
				gr := g
				if tc.program == "cc" {
					gr = graph.PreferentialAttachment(150, 2, 5)
				}
				prog := compileT(t, tc.program, tc.mode)
				base := RunOptions{Workers: 4, Scheduler: sched, Params: tc.params}

				dir := t.TempDir()
				full := base
				full.Checkpoint = pregel.CheckpointOptions{Every: 1, Dir: dir}
				fullRes, err := Run(prog, gr, full)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fullRes.FieldVector(tc.field)
				if err != nil {
					t.Fatal(err)
				}
				S := fullRes.Stats.Supersteps
				if S < 3 {
					t.Fatalf("full run too short: %d supersteps", S)
				}
				for k := 0; k < S; k++ {
					snap, err := pregel.ReadSnapshotFile(filepath.Join(dir, pregel.SnapshotFileName(k)))
					if err != nil {
						t.Fatalf("k=%d: %v", k, err)
					}
					res := base
					res.Resume = snap
					out, err := Run(compileT(t, tc.program, tc.mode), gr, res)
					if err != nil {
						t.Fatalf("k=%d: resume: %v", k, err)
					}
					if got, wantLeft := out.Stats.Supersteps, S-(k+1); got != wantLeft {
						t.Errorf("k=%d: resumed run took %d supersteps, want %d", k, got, wantLeft)
					}
					got, err := out.FieldVector(tc.field)
					if err != nil {
						t.Fatalf("k=%d: %v", k, err)
					}
					for u := range want {
						if math.Float64bits(got[u]) != math.Float64bits(want[u]) {
							t.Fatalf("k=%d: %s[%d] = %g (%x), want %g (%x)",
								k, tc.field, u, got[u], math.Float64bits(got[u]), want[u], math.Float64bits(want[u]))
						}
					}
					for i := range fullRes.Iterations {
						if out.Iterations[i] != fullRes.Iterations[i] {
							t.Errorf("k=%d: phase %d ran %d iterations, want %d",
								k, i, out.Iterations[i], fullRes.Iterations[i])
						}
					}
				}
			})
		}
	}
}

// TestDeltaVResumeRejectsWrongProgram checks the Extra payload validation:
// a snapshot from one program/mode cannot resume a machine compiled for
// another shape.
func TestDeltaVResumeRejectsWrongProgram(t *testing.T) {
	g := directedTestGraph()
	dir := t.TempDir()
	opts := RunOptions{Workers: 2, Checkpoint: pregel.CheckpointOptions{Every: 1, Dir: dir}}
	if _, err := Run(compileT(t, "pagerank", core.Incremental), g, opts); err != nil {
		t.Fatal(err)
	}
	snap, err := pregel.ReadSnapshotFile(filepath.Join(dir, pregel.SnapshotFileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Different layout (state width) → the machine payload must refuse.
	if _, err := Run(compileT(t, "sssp", core.Incremental), g, RunOptions{Workers: 2, Resume: snap}); err == nil {
		t.Fatal("sssp machine resumed a pagerank snapshot")
	}
	// Memo-table mode expects table payloads the dv snapshot lacks.
	if _, err := Run(compileT(t, "pagerank", core.MemoTable), g, RunOptions{Workers: 2, Resume: snap}); err == nil {
		t.Fatal("memo-table machine resumed an incremental snapshot")
	}
	// Empty Extra (engine-only snapshot) must be rejected too.
	bare := *snap
	bare.Extra = nil
	if _, err := Run(compileT(t, "pagerank", core.Incremental), g, RunOptions{Workers: 2, Resume: &bare}); err == nil {
		t.Fatal("machine resumed a snapshot with no Extra payload")
	}
}

// FuzzDeltaVExtraDecode: arbitrary Extra payloads must produce errors, not
// panics or corrupt machines.
func FuzzDeltaVExtraDecode(f *testing.F) {
	g := graph.Path(8, true)
	prog := mustCompile("pagerank", core.Incremental)
	m, err := NewMachine(prog, g, RunOptions{})
	if err != nil {
		f.Fatal(err)
	}
	valid := m.encodeExtra(nil, &globals{Phase: 0, Mode: modeBody, Iter: 2})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		mm, err := NewMachine(mustCompile("pagerank", core.Incremental), g, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gl, err := mm.restoreExtra(b, g.NumVertices())
		if err == nil && gl == nil {
			t.Fatal("restoreExtra returned neither globals nor error")
		}
	})
}
