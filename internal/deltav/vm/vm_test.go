package vm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/programs"
)

var allModes = []core.Mode{core.Incremental, core.Baseline, core.MemoTable}

func compileT(t *testing.T, name string, mode core.Mode) *core.Program {
	t.Helper()
	p, err := core.Compile(programs.MustSource(name), core.Options{Mode: mode})
	if err != nil {
		t.Fatalf("compile %s %v: %v", name, mode, err)
	}
	return p
}

func runT(t *testing.T, name string, mode core.Mode, g *graph.Graph, opts RunOptions) *Result {
	t.Helper()
	res, err := Run(compileT(t, name, mode), g, opts)
	if err != nil {
		t.Fatalf("run %s %v: %v", name, mode, err)
	}
	if res.NonMonotoneSends != 0 {
		t.Fatalf("run %s %v: %d non-monotone Δ-messages", name, mode, res.NonMonotoneSends)
	}
	return res
}

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func directedTestGraph() *graph.Graph {
	g := graph.RMAT(8, 4, 0.57, 0.19, 0.19, true, 42)
	g.BuildReverse()
	return g
}

// ---------------------------------------------------------------------------
// PageRank: all three modes must agree with the sequential oracle, and the
// incremental mode must send strictly fewer messages than the baseline.

func TestPageRankAllModesMatchOracle(t *testing.T) {
	g := directedTestGraph()
	want := algorithms.PageRankOracle(g, 30)
	msgs := map[core.Mode]int64{}
	for _, mode := range allModes {
		res := runT(t, "pagerank", mode, g, RunOptions{Workers: 4})
		for u := range want {
			got := res.Field("vl", graph.VertexID(u))
			if !almostEqual(got, want[u], 1e-9) {
				t.Fatalf("%v: vl[%d] = %g, want %g", mode, u, got, want[u])
			}
		}
		msgs[mode] = res.Stats.MessagesSent
	}
	if msgs[core.Incremental] >= msgs[core.Baseline] {
		t.Fatalf("incremental sent %d messages, baseline %d — no reduction", msgs[core.Incremental], msgs[core.Baseline])
	}
	t.Logf("pagerank messages: dV=%d dV*=%d table=%d (reduction %.2fx)",
		msgs[core.Incremental], msgs[core.Baseline], msgs[core.MemoTable],
		float64(msgs[core.Baseline])/float64(msgs[core.Incremental]))
}

func TestPageRankMatchesHandwritten(t *testing.T) {
	g := directedTestGraph()
	e, _, err := algorithms.RunPageRank(g, 30, algorithms.RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := runT(t, "pagerank", core.Incremental, g, RunOptions{Workers: 4})
	for u := 0; u < g.NumVertices(); u++ {
		if !almostEqual(res.Field("vl", graph.VertexID(u)), e.Value(graph.VertexID(u)).PR, 1e-9) {
			t.Fatalf("vl[%d] = %g, handwritten %g", u,
				res.Field("vl", graph.VertexID(u)), e.Value(graph.VertexID(u)).PR)
		}
	}
}

// ---------------------------------------------------------------------------
// SSSP: modes agree with Dijkstra; ΔV and ΔV★ send the exact same number
// of messages (the paper's §7.2 claim for pre-incrementalized algorithms).

func TestSSSPAllModesMatchDijkstra(t *testing.T) {
	g := graph.Grid(12, 15, 9, 3)
	want := algorithms.SSSPOracle(g, 5)
	msgs := map[core.Mode]int64{}
	for _, mode := range allModes {
		res := runT(t, "sssp", mode, g, RunOptions{Workers: 4, Params: map[string]float64{"src": 5}})
		for u := range want {
			got := res.Field("dist", graph.VertexID(u))
			if !almostEqual(got, want[u], 1e-12) {
				t.Fatalf("%v: dist[%d] = %g, want %g", mode, u, got, want[u])
			}
		}
		msgs[mode] = res.Stats.MessagesSent
	}
	if msgs[core.Incremental] != msgs[core.Baseline] {
		t.Fatalf("SSSP: dV sent %d, dV* sent %d — paper reports exactly equal", msgs[core.Incremental], msgs[core.Baseline])
	}
}

func TestSSSPDirectedWithInfinities(t *testing.T) {
	b := graph.NewBuilder(5, true)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 3)
	b.AddWeightedEdge(0, 2, 10)
	// vertices 3,4 unreachable
	g := b.Finalize()
	res := runT(t, "sssp", core.Incremental, g, RunOptions{Workers: 2})
	wants := []float64{0, 2, 5, math.Inf(1), math.Inf(1)}
	for u, w := range wants {
		if got := res.Field("dist", graph.VertexID(u)); got != w && !(math.IsInf(got, 1) && math.IsInf(w, 1)) {
			t.Fatalf("dist[%d] = %g, want %g", u, got, w)
		}
	}
}

// ---------------------------------------------------------------------------
// CC: modes agree with the DFS oracle; ΔV ≡ ΔV★ in messages.

func TestCCAllModesMatchOracle(t *testing.T) {
	g := graph.PreferentialAttachment(500, 3, 7)
	want, _ := graph.ConnectedComponents(g)
	msgs := map[core.Mode]int64{}
	for _, mode := range allModes {
		res := runT(t, "cc", mode, g, RunOptions{Workers: 4})
		for u := range want {
			if got := res.Field("cid", graph.VertexID(u)); got != float64(want[u]) {
				t.Fatalf("%v: cid[%d] = %g, want %d", mode, u, got, want[u])
			}
		}
		msgs[mode] = res.Stats.MessagesSent
	}
	if msgs[core.Incremental] != msgs[core.Baseline] {
		t.Fatalf("CC: dV sent %d, dV* sent %d — paper reports exactly equal", msgs[core.Incremental], msgs[core.Baseline])
	}
}

// ---------------------------------------------------------------------------
// HITS: modes agree with the oracle; incremental reduces messages.

func TestHITSAllModesMatchOracle(t *testing.T) {
	g := directedTestGraph()
	wantHub, wantAuth := algorithms.HITSOracle(g, 7)
	msgs := map[core.Mode]int64{}
	for _, mode := range allModes {
		res := runT(t, "hits", mode, g, RunOptions{Workers: 4})
		for u := range wantHub {
			gh := res.Field("hub", graph.VertexID(u))
			ga := res.Field("auth", graph.VertexID(u))
			if !almostEqual(gh, wantHub[u], 1e-9) || !almostEqual(ga, wantAuth[u], 1e-9) {
				t.Fatalf("%v: hits[%d] = (%g,%g), want (%g,%g)", mode, u, gh, ga, wantHub[u], wantAuth[u])
			}
		}
		msgs[mode] = res.Stats.MessagesSent
	}
	if msgs[core.Incremental] >= msgs[core.Baseline] {
		t.Fatalf("HITS: incremental sent %d, baseline %d — no reduction", msgs[core.Incremental], msgs[core.Baseline])
	}
}

// ---------------------------------------------------------------------------
// Extension corpus.

func TestReachability(t *testing.T) {
	// 0 → 1 → 2, 3 isolated.
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Finalize()
	for _, mode := range allModes {
		res := runT(t, "reach", mode, g, RunOptions{Workers: 2})
		wants := []float64{1, 1, 1, 0}
		for u, w := range wants {
			if got := res.Field("reach", graph.VertexID(u)); got != w {
				t.Fatalf("%v: reach[%d] = %g, want %g", mode, u, got, w)
			}
		}
	}
}

func TestReachabilityParamOverride(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddEdge(1, 2)
	g := b.Finalize()
	res := runT(t, "reach", core.Incremental, g, RunOptions{Params: map[string]float64{"src": 1}})
	if res.Field("reach", 0) != 0 || res.Field("reach", 1) != 1 || res.Field("reach", 2) != 1 {
		t.Fatalf("reach = %v %v %v", res.Field("reach", 0), res.Field("reach", 1), res.Field("reach", 2))
	}
}

func TestMaxValPropagation(t *testing.T) {
	g := graph.PreferentialAttachment(200, 2, 3)
	for _, mode := range allModes {
		res := runT(t, "maxval", mode, g, RunOptions{Workers: 3})
		for u := 0; u < g.NumVertices(); u++ {
			if got := res.Field("best", graph.VertexID(u)); got != 199 {
				t.Fatalf("%v: best[%d] = %g, want 199", mode, u, got)
			}
		}
	}
}

// prodOracle mirrors prod.dv sequentially.
func prodOracle(g *graph.Graph, iters int) []float64 {
	n := g.NumVertices()
	w := make([]float64, n)
	p := make([]float64, n)
	for i := 0; i < n; i++ {
		if i == 0 {
			w[i] = 0
		} else {
			w[i] = 1 + 1/(1+float64(i))
		}
		p[i] = 1
	}
	for k := 1; k <= iters; k++ {
		nw := append([]float64(nil), w...)
		np := make([]float64, n)
		for u := 0; u < n; u++ {
			prod := 1.0
			for _, v := range g.InNeighbors(graph.VertexID(u)) {
				prod *= w[v]
			}
			np[u] = prod
			if u == 0 {
				if k >= 3 {
					nw[u] = 2.0
				} else {
					nw[u] = 0.0
				}
			}
		}
		w, p = nw, np
	}
	return p
}

func TestProductWithNullaryTransitions(t *testing.T) {
	// Vertex 0 feeds several vertices; its weight crosses 0 → 2.0 at k=3,
	// exercising nullary and prev-nullary tags (Eq. 9).
	b := graph.NewBuilder(6, true)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(0, 3)
	b.AddEdge(3, 4)
	b.AddEdge(1, 5)
	g := b.Finalize()
	g.BuildReverse()
	want := prodOracle(g, 6)
	for _, mode := range allModes {
		res := runT(t, "prod", mode, g, RunOptions{Workers: 2})
		for u := range want {
			if got := res.Field("p", graph.VertexID(u)); !almostEqual(got, want[u], 1e-9) {
				t.Fatalf("%v: p[%d] = %g, want %g", mode, u, got, want[u])
			}
		}
	}
}

func TestAllReachAndAggregation(t *testing.T) {
	// 0 → 1, 2 → 1: ok(1) becomes true only when both in-neighbours are ok.
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	g := b.Finalize()
	for _, mode := range allModes {
		res := runT(t, "allreach", mode, g, RunOptions{})
		// ok(0)=true from init; ok(2)=false forever (&&-identity over no
		// in-neighbours is true, but ok(2) = false || true = true!).
		// Vertex 2 has no in-neighbours: && over ∅ = true ⇒ ok(2) true
		// after one iteration; then ok(1) = ok(0) && ok(2) = true.
		for u := 0; u < 3; u++ {
			if got := res.Field("ok", graph.VertexID(u)); got != 1 {
				t.Fatalf("%v: ok[%d] = %g, want 1", mode, u, got)
			}
		}
	}
}

func TestDegreeSumStep(t *testing.T) {
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Finalize()
	g.BuildReverse()
	for _, mode := range allModes {
		res := runT(t, "degreesum", mode, g, RunOptions{})
		// total(2) = outdeg(0) + outdeg(1) = 2; total(3) = outdeg(2) = 1.
		wants := []float64{0, 0, 2, 1}
		for u, w := range wants {
			if got := res.Field("total", graph.VertexID(u)); got != w {
				t.Fatalf("%v: total[%d] = %g, want %g", mode, u, got, w)
			}
		}
	}
}

func TestTwoPhaseProgram(t *testing.T) {
	// Phase 1: s = Σ in-neighbour ids. Phase 2: max-propagate s along
	// edges for 5 iterations.
	g := graph.RMAT(6, 3, 0.5, 0.2, 0.2, true, 13)
	g.BuildReverse()
	var ref []float64
	for _, mode := range allModes {
		res := runT(t, "twophase", mode, g, RunOptions{Workers: 3})
		got, err := res.FieldVector("t")
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for u := range got {
			if !almostEqual(got[u], ref[u], 1e-9) {
				t.Fatalf("%v: t[%d] = %g, want %g", mode, u, got[u], ref[u])
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Cross-cutting behaviours.

func TestSchedulersAndWorkersEquivalent(t *testing.T) {
	g := directedTestGraph()
	base := runT(t, "pagerank", core.Incremental, g, RunOptions{Workers: 1})
	for _, sched := range []pregel.Scheduler{pregel.ScanAll, pregel.WorkQueue} {
		for _, workers := range []int{2, 7} {
			res := runT(t, "pagerank", core.Incremental, g, RunOptions{Workers: workers, Scheduler: sched})
			// Message-application order varies with the worker count, so
			// float sums differ in the last bits and exact-equality dirty
			// checks may flip on a handful of vertices. Counts must agree
			// to within a small fraction; values to float tolerance.
			diff := res.Stats.MessagesSent - base.Stats.MessagesSent
			if diff < 0 {
				diff = -diff
			}
			if diff*1000 > base.Stats.MessagesSent {
				t.Fatalf("sched=%v w=%d: messages %d vs %d (>0.1%% apart)",
					sched, workers, res.Stats.MessagesSent, base.Stats.MessagesSent)
			}
			for u := 0; u < g.NumVertices(); u += 17 {
				a := res.Field("vl", graph.VertexID(u))
				b := base.Field("vl", graph.VertexID(u))
				if !almostEqual(a, b, 1e-9) {
					t.Fatalf("sched=%v w=%d: vl[%d] = %g, want %g", sched, workers, u, a, b)
				}
			}
		}
	}
	// For an order-insensitive (idempotent) program the counts are exact.
	ssspBase := runT(t, "sssp", core.Incremental, g, RunOptions{Workers: 1})
	for _, workers := range []int{2, 7} {
		res := runT(t, "sssp", core.Incremental, g, RunOptions{Workers: workers})
		if res.Stats.MessagesSent != ssspBase.Stats.MessagesSent {
			t.Fatalf("sssp w=%d: messages %d != %d", workers, res.Stats.MessagesSent, ssspBase.Stats.MessagesSent)
		}
	}
}

func TestCombinerPreservesResults(t *testing.T) {
	g := directedTestGraph()
	plain := runT(t, "pagerank", core.Incremental, g, RunOptions{Workers: 4})
	combined := runT(t, "pagerank", core.Incremental, g, RunOptions{Workers: 4, Combine: true})
	for u := 0; u < g.NumVertices(); u += 11 {
		a := plain.Field("vl", graph.VertexID(u))
		b := combined.Field("vl", graph.VertexID(u))
		if !almostEqual(a, b, 1e-9) {
			t.Fatalf("vl[%d] = %g with combiner, %g without", u, b, a)
		}
	}
	if combined.Stats.CombinedMessages >= combined.Stats.MessagesSent && combined.Stats.MessagesSent > 100 {
		t.Fatalf("combiner ineffective: %d delivered of %d sent",
			combined.Stats.CombinedMessages, combined.Stats.MessagesSent)
	}
}

func TestEpsilonSlopReducesMessagesFurther(t *testing.T) {
	g := directedTestGraph()
	exact := runT(t, "pagerank", core.Incremental, g, RunOptions{Workers: 4})
	prog, err := core.Compile(programs.MustSource("pagerank"), core.Options{Mode: core.Incremental, Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, g, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MessagesSent >= exact.Stats.MessagesSent {
		t.Fatalf("ε=1e-6 sent %d messages, exact sent %d — slop should reduce further",
			res.Stats.MessagesSent, exact.Stats.MessagesSent)
	}
	// Values must stay within a graph-diameter-scaled multiple of ε.
	want := algorithms.PageRankOracle(g, 30)
	for u := range want {
		if got := res.Field("vl", graph.VertexID(u)); math.Abs(got-want[u]) > 1e-3 {
			t.Fatalf("ε run diverged: vl[%d] = %g, want %g", u, got, want[u])
		}
	}
	t.Logf("epsilon: exact=%d msgs, eps=%d msgs", exact.Stats.MessagesSent, res.Stats.MessagesSent)
}

func TestMemoTableStateAndMessageOverhead(t *testing.T) {
	g := directedTestGraph()
	inc := compileT(t, "pagerank", core.Incremental)
	tbl := compileT(t, "pagerank", core.MemoTable)
	if MessageBytes(tbl) <= MessageBytes(inc) {
		t.Fatalf("table message bytes %d <= incremental %d — id tag missing", MessageBytes(tbl), MessageBytes(inc))
	}
	m, err := NewMachine(tbl, g, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(RunOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if m.StateBytes() <= float64(tbl.Layout.ByteSize()) {
		t.Fatalf("table state %v not larger than layout %d — lookup tables unaccounted",
			m.StateBytes(), tbl.Layout.ByteSize())
	}
}

func TestRunErrors(t *testing.T) {
	t.Run("neighbors-on-directed", func(t *testing.T) {
		g := graph.Path(4, true)
		if _, err := Run(compileT(t, "cc", core.Incremental), g, RunOptions{}); err == nil {
			t.Fatal("cc on a directed graph should fail (#neighbors)")
		}
	})
	t.Run("unknown-param", func(t *testing.T) {
		g := graph.Path(4, true)
		if _, err := Run(compileT(t, "sssp", core.Incremental), g, RunOptions{Params: map[string]float64{"nope": 1}}); err == nil {
			t.Fatal("unknown param should fail")
		}
	})
	t.Run("run-twice", func(t *testing.T) {
		g := graph.Path(4, true)
		m, err := NewMachine(compileT(t, "sssp", core.Incremental), g, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(RunOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(RunOptions{}); err == nil {
			t.Fatal("second Run should fail (engine is single-use)")
		}
	})
}

func TestNonTerminatingUntilFails(t *testing.T) {
	src := `
init { local x : float = 1.0 };
iter i {
  let s : float = + [ u.x | u <- #in ] in
  x = x
} until { false }`
	prog, err := core.Compile(src, core.Options{Mode: core.Incremental, MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Path(4, true)
	if _, err := Run(prog, g, RunOptions{}); err == nil {
		t.Fatal("until{false} should fail, not loop forever")
	}
}

func TestIterationLimitEnforced(t *testing.T) {
	src := `
init { local x : float = 1.0 };
iter i {
  x = x + 1.0;
  let s : float = + [ u.x | u <- #in ] in
  x = x + s * 0.0001
} until { false }`
	prog, err := core.Compile(src, core.Options{Mode: core.Baseline, MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Cycle(4, true)
	if _, err := Run(prog, g, RunOptions{}); err == nil {
		t.Fatal("iteration limit should surface as an error")
	}
}

// Property: for random graphs, incremental and baseline PageRank agree and
// incremental never sends more messages.
func TestIncrementalNeverWorseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		m := 1 + rng.Intn(5*n)
		b := graph.NewBuilder(n, true)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Finalize()
		g.BuildReverse()
		inc, err := Run(mustCompile("pagerank", core.Incremental), g, RunOptions{Workers: 1 + rng.Intn(4)})
		if err != nil {
			return false
		}
		base, err := Run(mustCompile("pagerank", core.Baseline), g, RunOptions{Workers: 1 + rng.Intn(4)})
		if err != nil {
			return false
		}
		if inc.Stats.MessagesSent > base.Stats.MessagesSent {
			return false
		}
		for u := 0; u < n; u++ {
			if !almostEqual(inc.Field("vl", graph.VertexID(u)), base.Field("vl", graph.VertexID(u)), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func mustCompile(name string, mode core.Mode) *core.Program {
	p, err := core.Compile(programs.MustSource(name), core.Options{Mode: mode})
	if err != nil {
		panic(err)
	}
	return p
}

// Property: SSSP over random weighted DAG-ish graphs agrees with Dijkstra
// in every mode.
func TestSSSPModesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		m := rng.Intn(4 * n)
		b := graph.NewBuilder(n, true)
		for i := 0; i < m; i++ {
			b.AddWeightedEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), 1+rng.Float64()*5)
		}
		g := b.Finalize()
		g.BuildReverse()
		src := graph.VertexID(rng.Intn(n))
		want := algorithms.SSSPOracle(g, src)
		for _, mode := range allModes {
			res, err := Run(mustCompile("sssp", mode), g, RunOptions{Params: map[string]float64{"src": float64(src)}})
			if err != nil || res.NonMonotoneSends != 0 {
				return false
			}
			for u := range want {
				if !almostEqual(res.Field("dist", graph.VertexID(u)), want[u], 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSHopCounts(t *testing.T) {
	// 0 → 1 → 2 → 3 and a shortcut 0 → 2.
	b := graph.NewBuilder(5, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 2)
	g := b.Finalize()
	for _, mode := range allModes {
		res := runT(t, "bfs", mode, g, RunOptions{})
		wants := []float64{0, 1, 1, 2, math.Inf(1)}
		for u, w := range wants {
			got := res.Field("hop", graph.VertexID(u))
			if got != w && !(math.IsInf(got, 1) && math.IsInf(w, 1)) {
				t.Fatalf("%v: hop[%d] = %g, want %g", mode, u, got, w)
			}
		}
	}
}

func TestWCCDirectedComponents(t *testing.T) {
	// Directed arcs whose weak components are {0,1,2} and {3,4}.
	b := graph.NewBuilder(5, true)
	b.AddEdge(1, 0) // back edge only: weak connectivity still joins
	b.AddEdge(1, 2)
	b.AddEdge(4, 3)
	g := b.Finalize()
	g.BuildReverse()
	want, _ := graph.ConnectedComponents(g)
	for _, mode := range allModes {
		res := runT(t, "wcc", mode, g, RunOptions{})
		for u := range want {
			if got := res.Field("cid", graph.VertexID(u)); got != float64(want[u]) {
				t.Fatalf("%v: cid[%d] = %g, want %d", mode, u, got, want[u])
			}
		}
	}
}

func TestWCCOnRandomDirectedGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		m := rng.Intn(3 * n)
		b := graph.NewBuilder(n, true)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Finalize()
		g.BuildReverse()
		want, _ := graph.ConnectedComponents(g)
		res, err := Run(mustCompile("wcc", core.Incremental), g, RunOptions{Workers: 1 + rng.Intn(4)})
		if err != nil {
			return false
		}
		for u := range want {
			if res.Field("cid", graph.VertexID(u)) != float64(want[u]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStepPhaseOnlyRunsOnce(t *testing.T) {
	g := graph.Path(3, true)
	g.BuildReverse()
	res := runT(t, "degreesum", core.Incremental, g, RunOptions{})
	if res.Iterations[0] != 1 {
		t.Fatalf("step phase ran %d body supersteps, want 1", res.Iterations[0])
	}
}

func TestHaltByDefaultActivity(t *testing.T) {
	// In incremental mode, total active-vertex work should be well below
	// |V| × supersteps once the computation quiesces locally.
	g := directedTestGraph()
	inc := runT(t, "pagerank", core.Incremental, g, RunOptions{Workers: 4})
	base := runT(t, "pagerank", core.Baseline, g, RunOptions{Workers: 4})
	if inc.Stats.TotalActive >= base.Stats.TotalActive {
		t.Fatalf("halt-by-default did not reduce activity: %d >= %d",
			inc.Stats.TotalActive, base.Stats.TotalActive)
	}
}
