package lexer

import (
	"testing"

	"repro/internal/deltav/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, errs := Tokenize(src)
	if len(errs) > 0 {
		t.Fatalf("Tokenize(%q): %v", src, errs[0])
	}
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := kinds(t, src)
	want = append(want, token.EOF)
	if len(got) != len(want) {
		t.Fatalf("Tokenize(%q): got %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Tokenize(%q)[%d] = %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, "+ - * / && || < > <= >= == != = ; : , . | <- { } [ ] ( )",
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.ANDAND, token.OROR,
		token.LT, token.GT, token.LE, token.GE, token.EQ, token.NE, token.ASSIGN,
		token.SEMI, token.COLON, token.COMMA, token.DOT, token.PIPE, token.LARROW,
		token.LBRACE, token.RBRACE, token.LBRACKET, token.RBRACKET, token.LPAREN, token.RPAREN)
}

func TestKeywordsAndIdents(t *testing.T) {
	expectKinds(t, "init step iter until let in if then else local min max not graphSize infty id fixpoint ew param int bool float true false foo",
		token.INIT, token.STEP, token.ITER, token.UNTIL, token.LET, token.IN,
		token.IF, token.THEN, token.ELSE, token.LOCAL, token.MINKW, token.MAXKW,
		token.NOT, token.GSIZE, token.INFTY, token.IDKW, token.FIXPOINT, token.EW,
		token.PARAM, token.TINT, token.TBOOL, token.TFLOAT, token.TRUE, token.FALSE,
		token.IDENT)
}

func TestGraphExprs(t *testing.T) {
	expectKinds(t, "#in #out #neighbors", token.HASHIN, token.HASHOUT, token.HASHNEIGHBORS)
	if _, errs := Tokenize("#bogus"); len(errs) == 0 {
		t.Fatal("expected error for #bogus")
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := Tokenize("42 0.85 1e-3 2.5E+2 7e 1.x")
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	// 7e → INT(7) IDENT(e); 1.x → INT(1) DOT IDENT(x)
	want := []struct {
		k token.Kind
		l string
	}{
		{token.INT, "42"}, {token.FLOAT, "0.85"}, {token.FLOAT, "1e-3"},
		{token.FLOAT, "2.5E+2"}, {token.INT, "7"}, {token.IDENT, "e"},
		{token.INT, "1"}, {token.DOT, ""}, {token.IDENT, "x"}, {token.EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), toks, len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.k || (w.l != "" && toks[i].Lit != w.l) {
			t.Fatalf("tok[%d] = %v, want %v %q", i, toks[i], w.k, w.l)
		}
	}
}

func TestCommentsAndPositions(t *testing.T) {
	toks, errs := Tokenize("a // comment\n  b")
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestIllegalCharacters(t *testing.T) {
	for _, src := range []string{"@", "!", "&", "$", "?"} {
		if _, errs := Tokenize(src); len(errs) == 0 {
			t.Errorf("Tokenize(%q): want error", src)
		}
	}
	// != and && are fine.
	expectKinds(t, "!= &&", token.NE, token.ANDAND)
}

func TestTokenStrings(t *testing.T) {
	tok := token.Token{Kind: token.IDENT, Lit: "pr"}
	if tok.String() != "IDENT(pr)" {
		t.Fatalf("String = %q", tok.String())
	}
	if token.PLUS.String() != "+" {
		t.Fatalf("PLUS = %q", token.PLUS)
	}
	if (token.Pos{Line: 3, Col: 7}).String() != "3:7" {
		t.Fatal("pos string")
	}
	if (token.Pos{}).IsValid() {
		t.Fatal("zero pos should be invalid")
	}
}
