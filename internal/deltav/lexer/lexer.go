// Package lexer tokenizes ΔV source text.
//
// Comments run from "//" to end of line. Whitespace separates tokens. The
// cardinality form |g| and the aggregation separator share the '|'
// character; the lexer emits PIPE and the parser disambiguates.
package lexer

import (
	"fmt"
	"unicode"
	"unicode/utf8"

	"repro/internal/deltav/token"
)

// Lexer scans ΔV source into tokens.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int // column of next rune, 1-based
	errs []error
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the accumulated lexical errors.
func (l *Lexer) Errors() []error { return l.errs }

// Tokenize scans the entire input, returning all tokens ending with EOF,
// and any lexical errors.
func Tokenize(src string) ([]token.Token, []error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	return toks, l.Errors()
}

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) peek2() rune {
	if l.off >= len(l.src) {
		return 0
	}
	_, sz := utf8.DecodeRuneInString(l.src[l.off:])
	if l.off+sz >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+sz:])
	return r
}

func (l *Lexer) advance() rune {
	r, sz := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += sz
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentCont(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := token.Pos{Line: l.line, Col: l.col}
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	r := l.peek()
	switch {
	case isIdentStart(r):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		word := l.src[start:l.off]
		if k, ok := token.Keywords[word]; ok {
			return token.Token{Kind: k, Lit: word, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Lit: word, Pos: pos}
	case unicode.IsDigit(r):
		return l.number(pos)
	case r == '#':
		l.advance()
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		switch word := l.src[start:l.off]; word {
		case "in":
			return token.Token{Kind: token.HASHIN, Lit: "#in", Pos: pos}
		case "out":
			return token.Token{Kind: token.HASHOUT, Lit: "#out", Pos: pos}
		case "neighbors":
			return token.Token{Kind: token.HASHNEIGHBORS, Lit: "#neighbors", Pos: pos}
		default:
			l.errorf(pos, "unknown graph expression #%s", word)
			return token.Token{Kind: token.ILLEGAL, Lit: "#" + word, Pos: pos}
		}
	}
	l.advance()
	two := func(next rune, withKind, aloneKind token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: withKind, Pos: pos}
		}
		return token.Token{Kind: aloneKind, Pos: pos}
	}
	switch r {
	case '+':
		return token.Token{Kind: token.PLUS, Pos: pos}
	case '-':
		return token.Token{Kind: token.MINUS, Pos: pos}
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}
	case '&':
		if l.peek() == '&' {
			l.advance()
			return token.Token{Kind: token.ANDAND, Pos: pos}
		}
		l.errorf(pos, "unexpected '&'")
		return token.Token{Kind: token.ILLEGAL, Lit: "&", Pos: pos}
	case '|':
		return two('|', token.OROR, token.PIPE)
	case '<':
		if l.peek() == '-' {
			l.advance()
			return token.Token{Kind: token.LARROW, Pos: pos}
		}
		return two('=', token.LE, token.LT)
	case '>':
		return two('=', token.GE, token.GT)
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.NE, Pos: pos}
		}
		l.errorf(pos, "unexpected '!' (use 'not')")
		return token.Token{Kind: token.ILLEGAL, Lit: "!", Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", r)
	return token.Token{Kind: token.ILLEGAL, Lit: string(r), Pos: pos}
}

func (l *Lexer) number(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
		l.advance()
	}
	isFloat := false
	// A '.' followed by a digit continues the number (plain "1." is not a
	// float; '.' is also field access).
	if l.peek() == '.' && unicode.IsDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		saveLine, saveCol := l.line, l.col
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if unicode.IsDigit(l.peek()) {
			isFloat = true
			for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.off, l.line, l.col = save, saveLine, saveCol
		}
	}
	lit := l.src[start:l.off]
	if isFloat {
		return token.Token{Kind: token.FLOAT, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.INT, Lit: lit, Pos: pos}
}
