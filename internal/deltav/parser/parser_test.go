package parser

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/deltav/ast"
	"repro/internal/deltav/types"
	"repro/internal/programs"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParsePaperPageRank(t *testing.T) {
	p := parseOK(t, programs.MustSource("pagerank"))
	if len(p.Stmts) != 1 {
		t.Fatalf("stmts = %d, want 1", len(p.Stmts))
	}
	it, ok := p.Stmts[0].(*ast.Iter)
	if !ok {
		t.Fatalf("stmt is %T, want *Iter", p.Stmts[0])
	}
	if it.Var != "i" {
		t.Fatalf("iter var = %q, want i", it.Var)
	}
	// Body must start with a let of an aggregation.
	let, ok := it.Body.(*ast.Let)
	if !ok {
		t.Fatalf("iter body is %T, want *Let", it.Body)
	}
	agg, ok := let.Init.(*ast.Agg)
	if !ok {
		t.Fatalf("let init is %T, want *Agg", let.Init)
	}
	if agg.Op != ast.AggSum || agg.G != ast.DirIn || agg.BindVar != "u" {
		t.Fatalf("agg = %v %v %q", agg.Op, agg.G, agg.BindVar)
	}
	nf, ok := agg.Body.(*ast.NeighborField)
	if !ok || nf.Var != "u" || nf.Name != "pr" {
		t.Fatalf("agg body = %#v, want u.pr", agg.Body)
	}
	// The let body is the two assignments.
	seq, ok := let.Body.(*ast.Seq)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("let body = %T, want 2-item Seq", let.Body)
	}
	if a, ok := seq.Items[0].(*ast.Assign); !ok || a.Name != "vl" {
		t.Fatalf("first item = %#v, want vl = …", seq.Items[0])
	}
}

func TestParseParams(t *testing.T) {
	p := parseOK(t, programs.MustSource("sssp"))
	if len(p.Params) != 1 || p.Params[0].Name != "src" || p.Params[0].DeclType != types.Int {
		t.Fatalf("params = %+v", p.Params)
	}
	if _, ok := p.Params[0].Default.(*ast.IntLit); !ok {
		t.Fatalf("default = %T, want IntLit", p.Params[0].Default)
	}
}

func TestParseAllCorpusPrograms(t *testing.T) {
	for _, name := range programs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			parseOK(t, programs.MustSource(name))
		})
	}
}

// Print → reparse must give a structurally identical tree (ignoring
// positions and types) for the whole corpus.
func TestPrintReparseRoundTrip(t *testing.T) {
	for _, name := range programs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p1 := parseOK(t, programs.MustSource(name))
			text := ast.Print(p1)
			p2, err := Parse(text)
			if err != nil {
				t.Fatalf("reparse of printed program failed: %v\n%s", err, text)
			}
			s1, s2 := canon(p1), canon(p2)
			if s1 != s2 {
				t.Fatalf("round trip mismatch:\n-- first --\n%s\n-- second --\n%s", s1, s2)
			}
		})
	}
}

// canon prints a program after zeroing positions so trees compare stably.
func canon(p *ast.Program) string { return ast.Print(p) }

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 < 4 && true || false")
	if err != nil {
		t.Fatal(err)
	}
	// ((1 + (2*3)) < 4 && true) || false
	or, ok := e.(*ast.Binary)
	if !ok || or.Op != "||" {
		t.Fatalf("top = %#v, want ||", e)
	}
	and, ok := or.L.(*ast.Binary)
	if !ok || and.Op != "&&" {
		t.Fatalf("or.L = %#v, want &&", or.L)
	}
	lt, ok := and.L.(*ast.Binary)
	if !ok || lt.Op != "<" {
		t.Fatalf("and.L = %#v, want <", and.L)
	}
	plus, ok := lt.L.(*ast.Binary)
	if !ok || plus.Op != "+" {
		t.Fatalf("lt.L = %#v, want +", lt.L)
	}
	if mul, ok := plus.R.(*ast.Binary); !ok || mul.Op != "*" {
		t.Fatalf("plus.R = %#v, want *", plus.R)
	}
}

func TestParseMinMaxForms(t *testing.T) {
	// Prefix pop form.
	e, err := ParseExpr("min 1 2")
	if err != nil {
		t.Fatal(err)
	}
	if mm, ok := e.(*ast.MinMax); !ok || mm.IsMax {
		t.Fatalf("min 1 2 = %#v", e)
	}
	// Aggregation form.
	prog := `
init { local v : float = 0.0 };
step { v = max [ u.v | u <- #in ] }`
	p := parseOK(t, prog)
	st := p.Stmts[0].(*ast.Step)
	asg := st.Body.(*ast.Assign)
	if agg, ok := asg.Value.(*ast.Agg); !ok || agg.Op != ast.AggMax {
		t.Fatalf("value = %#v, want max aggregation", asg.Value)
	}
}

func TestParseCardinalityVsOr(t *testing.T) {
	e, err := ParseExpr("|#in| + |#out| + |#neighbors|")
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	ast.Walk(e, func(x ast.Expr) bool {
		if _, ok := x.(*ast.Cardinality); ok {
			found++
		}
		return true
	})
	if found != 3 {
		t.Fatalf("cardinalities = %d, want 3", found)
	}
	// || still parses as the or operator / or-aggregation.
	if _, err := ParseExpr("true || false"); err != nil {
		t.Fatal(err)
	}
}

func TestParseIfForms(t *testing.T) {
	e, err := ParseExpr("if 1 < 2 then 3 else 4")
	if err != nil {
		t.Fatal(err)
	}
	n := e.(*ast.If)
	if n.Else == nil {
		t.Fatal("else missing")
	}
	e2, err := ParseExpr("if true then { x = 1; y = 2 }")
	if err != nil {
		t.Fatal(err)
	}
	n2 := e2.(*ast.If)
	if n2.Else != nil {
		t.Fatal("unexpected else")
	}
	if _, ok := n2.Then.(*ast.Seq); !ok {
		t.Fatalf("braced then = %T, want Seq", n2.Then)
	}
}

func TestParseLetBindsRestOfSequence(t *testing.T) {
	e, err := ParseExpr("let x : int = 1 in a = x; b = x")
	if err != nil {
		t.Fatal(err)
	}
	let := e.(*ast.Let)
	seq, ok := let.Body.(*ast.Seq)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("let body = %#v, want 2-item seq", let.Body)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                 // no init
		"init { }",                         // empty init
		"init { local x : int = 1 }",       // no statements
		"init { local x : int = 1 }; blah", // bad statement keyword
		"init { local x : int = 1 }; step", // missing braces
		"init { local x : int = 1 }; iter { x = 1 } until { true }",  // missing counter
		"init { local x : int = 1 }; step { x = }",                   // missing rhs
		"init { local x : int = 1 }; step { + [ u.v | u <- #bad ] }", // bad graph dir
		"init { local x : int = 1 }; step { (1 + 2 }",                // unbalanced paren
		"init { local x : int = 1 }; step { 3.v }",                   // field access on literal
		"init { local x : int @ 1 }; step { x = 1 }",                 // illegal char
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
// leading comment
init {
  local x : int = 1 // trailing comment
};
step { x = 2 } // done
`
	parseOK(t, src)
}

func TestParseNegativeLiterals(t *testing.T) {
	p := parseOK(t, "param bias : float = -2.5;\ninit { local x : float = bias };\nstep { x = 0.0 - 1.0 }")
	def := p.Params[0].Default.(*ast.FloatLit)
	if def.Val != -2.5 {
		t.Fatalf("default = %v, want -2.5", def.Val)
	}
}

func TestParseScientificFloats(t *testing.T) {
	e, err := ParseExpr("1e-3 + 2.5E+2")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*ast.Binary)
	if l := b.L.(*ast.FloatLit); l.Val != 1e-3 {
		t.Fatalf("lhs = %v", l.Val)
	}
	if r := b.R.(*ast.FloatLit); r.Val != 2.5e2 {
		t.Fatalf("rhs = %v", r.Val)
	}
}

func TestExprStringCoversInternalForms(t *testing.T) {
	base := ast.Base{}
	send := &ast.Send{DestVar: "u", Group: 0, Payload: []ast.Expr{
		&ast.Delta{Site: 0, X: &ast.Field{Base: base, Name: "pr"}},
	}}
	loop := &ast.ForNeighbors{Var: "u", G: ast.DirOut, Body: send}
	s := ast.ExprString(loop)
	for _, want := range []string{"for (u : #out)", "send(u", "delta<0>(pr)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("printed %q, missing %q", s, want)
		}
	}
	ml := &ast.MsgLoop{Group: 1, Body: &ast.Seq{Items: []ast.Expr{
		&ast.MsgSlot{Site: 2},
		&ast.MsgIsNull{Site: 2},
		&ast.MsgPrevNull{Site: 2},
		&ast.OldField{Name: "pr"},
		&ast.Halt{},
	}}}
	s2 := ast.ExprString(ml)
	for _, want := range []string{"messages<1>", "m.slot2", "is_nullary<2>(m)", "prev_nullary<2>(m)", "old(pr)", "halt"} {
		if !strings.Contains(s2, want) {
			t.Fatalf("printed %q, missing %q", s2, want)
		}
	}
}

func TestCloneProgramIsDeep(t *testing.T) {
	p1 := parseOK(t, programs.MustSource("pagerank"))
	p2 := ast.CloneProgram(p1)
	if !reflect.DeepEqual(ast.Print(p1), ast.Print(p2)) {
		t.Fatal("clone prints differently")
	}
	// Mutating the clone must not affect the original.
	it := p2.Stmts[0].(*ast.Iter)
	it.Body = &ast.Halt{}
	if ast.Print(p1) == ast.Print(p2) {
		t.Fatal("mutation leaked into original")
	}
}
