package parser

import (
	"testing"

	"repro/internal/deltav/ast"
	"repro/internal/programs"
)

// TestPrintParseRoundTripCorpus checks the pretty-printer/parser fixpoint
// property on every embedded program: printing a parsed program yields
// source that parses back and prints identically. One re-print is allowed
// to normalize formatting; after that the representation must be stable.
func TestPrintParseRoundTripCorpus(t *testing.T) {
	for _, name := range programs.Names() {
		t.Run(name, func(t *testing.T) {
			prog, err := Parse(programs.MustSource(name))
			if err != nil {
				t.Fatalf("parse %s: %v", name, err)
			}
			checkRoundTrip(t, ast.Print(prog))
		})
	}
}

// TestPrintParseRoundTripSynthetic probes printer corner cases that the
// corpus does not exercise: nested prefix min/max, unary over binary,
// if-expressions in operand position, sequenced branches, let chains,
// float exponent notation, and cardinalities of every graph direction.
func TestPrintParseRoundTripSynthetic(t *testing.T) {
	exprs := []string{
		`min (max 1 2) (min 3 4)`,
		`-(1 + 2) * -x`,
		`not (a || b) && not c`,
		`(if x > 0 then { 1 } else { 2 }) + 3`,
		`max (+ [ u.f * ew | u <- #in ]) (|#out| + |#neighbors| + |#in|)`,
		`1e+09 + 2.5e-07 + 0.125 + infty`,
		`1 < 2 == (3 >= 4) != (5 <= 6)`,
		`a / b / c - d - e`,
		`min a -b`,
	}
	for _, src := range exprs {
		t.Run(src, func(t *testing.T) {
			e, err := ParseExpr(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			printed := ast.ExprString(e)
			e2, err := ParseExpr(printed)
			if err != nil {
				t.Fatalf("re-parse %q (printed from %q): %v", printed, src, err)
			}
			if again := ast.ExprString(e2); again != printed {
				t.Fatalf("expression print not a fixpoint:\nfirst:  %s\nsecond: %s", printed, again)
			}
		})
	}

	fullPrograms := []string{
		"param eps : float = 0.001;\n" +
			"init { local v : float = 1.0 / graphSize };\n" +
			"iter k { v = if id == 0 then { let s : float = + [ u.v | u <- #in ] in v = s } else { v * 0.5 } } until { fixpoint || k > 10 }\n",
		"init { local best : int = id; local seen : bool = false };\n" +
			"step { seen = true };\n" +
			"iter i { best = max [ u.best | u <- #neighbors ] } until { fixpoint }\n",
	}
	for i, src := range fullPrograms {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("program %d: parse: %v", i, err)
		}
		checkRoundTrip(t, ast.Print(prog))
	}
}

// checkRoundTrip asserts that printed source re-parses and re-prints to
// itself (print∘parse is a fixpoint on printer output).
func checkRoundTrip(t *testing.T, printed string) {
	t.Helper()
	prog, err := Parse(printed)
	if err != nil {
		t.Fatalf("printed program does not re-parse: %v\nsource:\n%s", err, printed)
	}
	if again := ast.Print(prog); again != printed {
		t.Fatalf("print not a fixpoint:\n--- first print ---\n%s\n--- second print ---\n%s", printed, again)
	}
}
