// Package parser builds ΔV abstract syntax trees from source text.
//
// The grammar is the user-visible fragment of paper Fig. 3, concretized as
// documented in DESIGN.md §5. The parser never produces compiler-internal
// nodes (send, halt, message loops); those are introduced by the passes in
// internal/core.
//
// Errors (lexical and syntactic) are reported as diag.List values, the
// structured diagnostic path shared with the type checker and the vet
// suite. Every node the parser produces carries both a start and an end
// position, so downstream diagnostics can anchor precise source ranges.
package parser

import (
	"fmt"
	"strconv"

	"repro/internal/deltav/ast"
	"repro/internal/deltav/diag"
	"repro/internal/deltav/lexer"
	"repro/internal/deltav/token"
	"repro/internal/deltav/types"
)

// Parse parses a complete ΔV program. On failure the returned error is a
// diag.List with code "syntax".
func Parse(src string) (*ast.Program, error) {
	toks, errs := lexer.Tokenize(src)
	if len(errs) > 0 {
		return nil, lexDiags(errs)
	}
	p := &parser{toks: toks}
	var prog *ast.Program
	err := p.catch(func() { prog = p.parseProgram() })
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	toks, errs := lexer.Tokenize(src)
	if len(errs) > 0 {
		return nil, lexDiags(errs)
	}
	p := &parser{toks: toks}
	var e ast.Expr
	err := p.catch(func() {
		e = p.parseSeq(token.EOF)
		p.expect(token.EOF)
	})
	if err != nil {
		return nil, err
	}
	return e, nil
}

// lexDiags wraps lexical errors (already position-prefixed strings) into
// the structured diagnostic path.
func lexDiags(errs []error) error {
	var l diag.List
	for _, e := range errs {
		l.Add(diag.Diagnostic{Severity: diag.Error, Code: "syntax", Message: e.Error()})
	}
	return l.ErrOrNil()
}

type parser struct {
	toks []token.Token
	pos  int
}

type parseError struct{ list diag.List }

func (p *parser) catch(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(parseError); ok {
				err = pe.list.ErrOrNil()
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

func (p *parser) fail(format string, args ...any) {
	t := p.peek()
	msg := fmt.Sprintf(format, args...)
	panic(parseError{diag.List{{
		Pos: t.Pos, End: endOf(t), Severity: diag.Error, Code: "syntax",
		Message: fmt.Sprintf("%s (at %s)", msg, t),
	}}})
}

// endOf returns the position one past a token's last character.
func endOf(t token.Token) token.Pos {
	n := len(t.Lit)
	if n == 0 {
		n = len(t.Kind.String())
	}
	return token.Pos{Line: t.Pos.Line, Col: t.Pos.Col + n}
}

func (p *parser) peek() token.Token { return p.toks[p.pos] }
func (p *parser) peek2() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.peek().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k token.Kind) token.Token {
	if !p.at(k) {
		p.fail("expected %s", k)
	}
	return p.next()
}

// parseProgram := param* init { seq } (";" stmt)* [";"]
func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for p.at(token.PARAM) {
		prog.Params = append(prog.Params, p.parseParam())
	}
	p.expect(token.INIT)
	p.expect(token.LBRACE)
	prog.Init = p.parseSeq(token.RBRACE)
	p.expect(token.RBRACE)
	for p.accept(token.SEMI) {
		if p.at(token.EOF) {
			break
		}
		prog.Stmts = append(prog.Stmts, p.parseStmt())
	}
	p.expect(token.EOF)
	if len(prog.Stmts) == 0 {
		p.fail("program has no statements after init")
	}
	return prog
}

func (p *parser) parseParam() ast.Param {
	pos := p.expect(token.PARAM).Pos
	name := p.expect(token.IDENT).Lit
	p.expect(token.COLON)
	ty := p.parseType()
	p.expect(token.ASSIGN)
	def := p.parseLiteral()
	p.expect(token.SEMI)
	return ast.Param{Name: name, DeclType: ty, Default: def, P: pos}
}

func (p *parser) parseLiteral() ast.Expr {
	t := p.peek()
	start := t.Pos
	neg := false
	if t.Kind == token.MINUS {
		neg = true
		p.next()
		t = p.peek()
	}
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.fail("bad integer literal %q", t.Lit)
		}
		if neg {
			v = -v
		}
		return &ast.IntLit{Base: ast.Base{P: start, EndP: endOf(t)}, Val: v}
	case token.FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.fail("bad float literal %q", t.Lit)
		}
		if neg {
			v = -v
		}
		return &ast.FloatLit{Base: ast.Base{P: start, EndP: endOf(t)}, Val: v}
	case token.TRUE, token.FALSE:
		if neg {
			p.fail("cannot negate a bool literal")
		}
		p.next()
		return &ast.BoolLit{Base: ast.Base{P: t.Pos, EndP: endOf(t)}, Val: t.Kind == token.TRUE}
	}
	p.fail("expected literal")
	return nil
}

func (p *parser) parseType() types.Type {
	switch t := p.next(); t.Kind {
	case token.TINT:
		return types.Int
	case token.TBOOL:
		return types.Bool
	case token.TFLOAT:
		return types.Float
	default:
		p.fail("expected type (int, bool, float)")
		return types.Invalid
	}
}

func (p *parser) parseStmt() ast.Stmt {
	switch t := p.peek(); t.Kind {
	case token.STEP:
		p.next()
		p.expect(token.LBRACE)
		body := p.parseSeq(token.RBRACE)
		rb := p.expect(token.RBRACE)
		return &ast.Step{P: t.Pos, EndP: endOf(rb), Body: body}
	case token.ITER:
		p.next()
		v := p.expect(token.IDENT).Lit
		p.expect(token.LBRACE)
		body := p.parseSeq(token.RBRACE)
		p.expect(token.RBRACE)
		p.expect(token.UNTIL)
		p.expect(token.LBRACE)
		cond := p.parseExpr()
		rb := p.expect(token.RBRACE)
		return &ast.Iter{P: t.Pos, EndP: endOf(rb), Var: v, Body: body, Until: cond}
	default:
		p.fail("expected step or iter")
		return nil
	}
}

// parseSeq parses e1; e2; …; en up to (not consuming) the terminator. A
// `let` binds the remainder of the sequence as its body, matching the
// paper's usage.
func (p *parser) parseSeq(term token.Kind) ast.Expr {
	pos := p.peek().Pos
	var items []ast.Expr
	for {
		if p.at(term) || p.at(token.EOF) {
			break
		}
		e := p.parseSeqElement(term)
		items = append(items, e)
		if _, isLet := e.(*ast.Let); isLet {
			break // let consumed the rest of the sequence
		}
		if !p.accept(token.SEMI) {
			break
		}
	}
	switch len(items) {
	case 0:
		p.fail("empty block")
		return nil
	case 1:
		return items[0]
	default:
		return &ast.Seq{Base: ast.Base{P: pos, EndP: items[len(items)-1].End()}, Items: items}
	}
}

func (p *parser) parseSeqElement(term token.Kind) ast.Expr {
	switch t := p.peek(); t.Kind {
	case token.LOCAL:
		p.next()
		name := p.expect(token.IDENT).Lit
		p.expect(token.COLON)
		ty := p.parseType()
		p.expect(token.ASSIGN)
		init := p.parseExpr()
		return &ast.Local{Base: ast.Base{P: t.Pos, EndP: init.End()}, Name: name, DeclType: ty, Init: init}
	case token.LET:
		return p.parseLet(term)
	case token.IDENT:
		if p.peek2().Kind == token.ASSIGN {
			p.next()
			p.expect(token.ASSIGN)
			val := p.parseExpr()
			return &ast.Assign{Base: ast.Base{P: t.Pos, EndP: val.End()}, Name: t.Lit, Value: val}
		}
	}
	return p.parseExpr()
}

// parseLet parses let x : τ = e in <rest-of-seq>.
func (p *parser) parseLet(term token.Kind) ast.Expr {
	t := p.expect(token.LET)
	name := p.expect(token.IDENT).Lit
	p.expect(token.COLON)
	ty := p.parseType()
	p.expect(token.ASSIGN)
	init := p.parseExpr()
	p.expect(token.IN)
	body := p.parseSeq(term)
	return &ast.Let{Base: ast.Base{P: t.Pos, EndP: body.End()}, Name: name, DeclType: ty, Init: init, Body: body}
}

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func binOpPrec(k token.Kind) (string, int) {
	switch k {
	case token.OROR:
		return "||", 1
	case token.ANDAND:
		return "&&", 2
	case token.LT:
		return "<", 3
	case token.GT:
		return ">", 3
	case token.LE:
		return "<=", 3
	case token.GE:
		return ">=", 3
	case token.EQ:
		return "==", 3
	case token.NE:
		return "!=", 3
	case token.PLUS:
		return "+", 4
	case token.MINUS:
		return "-", 4
	case token.STAR:
		return "*", 5
	case token.SLASH:
		return "/", 5
	}
	return "", 0
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	left := p.parseUnary()
	for {
		op, prec := binOpPrec(p.peek().Kind)
		if prec == 0 || prec < minPrec {
			return left
		}
		t := p.next()
		right := p.parseBinary(prec + 1)
		left = &ast.Binary{Base: ast.Base{P: t.Pos, EndP: right.End()}, Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch t := p.peek(); t.Kind {
	case token.MINUS:
		p.next()
		x := p.parseUnary()
		return &ast.Unary{Base: ast.Base{P: t.Pos, EndP: x.End()}, Op: "-", X: x}
	case token.NOT:
		p.next()
		x := p.parseUnary()
		return &ast.Unary{Base: ast.Base{P: t.Pos, EndP: x.End()}, Op: "not", X: x}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	e := p.parsePrimary()
	if p.at(token.DOT) {
		v, ok := e.(*ast.Var)
		if !ok {
			p.fail("field access requires a variable on the left")
		}
		p.next()
		f := p.expect(token.IDENT)
		return &ast.NeighborField{Base: ast.Base{P: v.P, EndP: endOf(f)}, Var: v.Name, Name: f.Lit}
	}
	return e
}

func (p *parser) parseGraphDir() ast.GraphDir {
	switch t := p.next(); t.Kind {
	case token.HASHIN:
		return ast.DirIn
	case token.HASHOUT:
		return ast.DirOut
	case token.HASHNEIGHBORS:
		return ast.DirNeighbors
	default:
		p.fail("expected graph expression (#in, #out, #neighbors)")
		return ast.DirIn
	}
}

// parseAgg parses ⊞ [ body | u <- g ] with ⊞ already consumed.
func (p *parser) parseAgg(op ast.AggOp, pos token.Pos) ast.Expr {
	p.expect(token.LBRACKET)
	body := p.parseExpr()
	p.expect(token.PIPE)
	v := p.expect(token.IDENT).Lit
	p.expect(token.LARROW)
	g := p.parseGraphDir()
	rb := p.expect(token.RBRACKET)
	return &ast.Agg{Base: ast.Base{P: pos, EndP: endOf(rb)}, Op: op, BindVar: v, G: g, Body: body, Site: -1}
}

// parseBranch parses either a braced sequence, a bare assignment, or a
// single expression, for then/else branches.
func (p *parser) parseBranch() ast.Expr {
	if p.accept(token.LBRACE) {
		e := p.parseSeq(token.RBRACE)
		p.expect(token.RBRACE)
		return e
	}
	if t := p.peek(); t.Kind == token.IDENT && p.peek2().Kind == token.ASSIGN {
		p.next()
		p.expect(token.ASSIGN)
		val := p.parseExpr()
		return &ast.Assign{Base: ast.Base{P: t.Pos, EndP: val.End()}, Name: t.Lit, Value: val}
	}
	return p.parseExpr()
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.peek()
	switch t.Kind {
	case token.INT, token.FLOAT, token.TRUE, token.FALSE:
		return p.parseLiteral()
	case token.INFTY:
		p.next()
		return &ast.Infty{Base: ast.Base{P: t.Pos, EndP: endOf(t)}}
	case token.GSIZE:
		p.next()
		return &ast.GraphSize{Base: ast.Base{P: t.Pos, EndP: endOf(t)}}
	case token.IDKW:
		p.next()
		return &ast.VertexID{Base: ast.Base{P: t.Pos, EndP: endOf(t)}}
	case token.FIXPOINT:
		p.next()
		return &ast.FixpointRef{Base: ast.Base{P: t.Pos, EndP: endOf(t)}}
	case token.EW:
		p.next()
		return &ast.EdgeWeight{Base: ast.Base{P: t.Pos, EndP: endOf(t)}}
	case token.IDENT:
		p.next()
		return &ast.Var{Base: ast.Base{P: t.Pos, EndP: endOf(t)}, Name: t.Lit, Slot: -1}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	case token.PIPE:
		p.next()
		g := p.parseGraphDir()
		rp := p.expect(token.PIPE)
		return &ast.Cardinality{Base: ast.Base{P: t.Pos, EndP: endOf(rp)}, G: g}
	case token.IF:
		p.next()
		cond := p.parseExpr()
		p.expect(token.THEN)
		then := p.parseBranch()
		var els ast.Expr
		end := then.End()
		if p.accept(token.ELSE) {
			els = p.parseBranch()
			end = els.End()
		}
		return &ast.If{Base: ast.Base{P: t.Pos, EndP: end}, Cond: cond, Then: then, Else: els}
	case token.PLUS:
		p.next()
		return p.parseAgg(ast.AggSum, t.Pos)
	case token.STAR:
		p.next()
		return p.parseAgg(ast.AggProd, t.Pos)
	case token.OROR:
		p.next()
		return p.parseAgg(ast.AggOr, t.Pos)
	case token.ANDAND:
		p.next()
		return p.parseAgg(ast.AggAnd, t.Pos)
	case token.MINKW, token.MAXKW:
		p.next()
		isMax := t.Kind == token.MAXKW
		if p.at(token.LBRACKET) {
			if isMax {
				return p.parseAgg(ast.AggMax, t.Pos)
			}
			return p.parseAgg(ast.AggMin, t.Pos)
		}
		a := p.parseUnary()
		b := p.parseUnary()
		return &ast.MinMax{Base: ast.Base{P: t.Pos, EndP: b.End()}, IsMax: isMax, A: a, B: b}
	}
	p.fail("expected expression")
	return nil
}
