package diag

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/deltav/token"
)

func pos(l, c int) token.Pos { return token.Pos{Line: l, Col: c} }

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos: pos(3, 7), End: pos(3, 12), Severity: Error,
		Code: "invertibility", Message: "max is not invertible",
		Suggestion: "compile with -mode memotable",
	}
	got := d.String()
	for _, want := range []string{"3:7:", "error[invertibility]", "max is not invertible", "suggestion: compile with -mode memotable"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	// Position-less diagnostics omit the position prefix.
	d2 := Diagnostic{Severity: Warning, Code: "x", Message: "m"}
	if got := d2.String(); !strings.HasPrefix(got, "warn[x]:") {
		t.Errorf("position-less String() = %q", got)
	}
}

func TestListSortAndError(t *testing.T) {
	var l List
	l.Warnf(pos(5, 1), pos(5, 2), "b", "later")
	l.Errorf(pos(2, 9), pos(2, 10), "a", "early")
	l.Warnf(pos(2, 9), pos(2, 10), "a", "early-warn")
	l.Sort()
	if l[0].Message != "early" || l[1].Message != "early-warn" || l[2].Message != "later" {
		t.Fatalf("sort order wrong: %v", l)
	}
	msg := l.Error()
	if strings.Count(msg, "\n") != 2 {
		t.Fatalf("Error() should render one line per diagnostic:\n%s", msg)
	}
	if !l.HasErrors() {
		t.Fatal("HasErrors = false")
	}
	if (List{}).HasErrors() {
		t.Fatal("empty list has errors")
	}
}

func TestFilter(t *testing.T) {
	var l List
	l.Warnf(pos(1, 1), pos(1, 2), "w", "warn")
	l.Errorf(pos(2, 1), pos(2, 2), "e", "err")
	if got := l.Filter(Error); len(got) != 1 || got[0].Code != "e" {
		t.Fatalf("Filter(Error) = %v", got)
	}
	if got := l.Filter(Warning); len(got) != 2 {
		t.Fatalf("Filter(Warning) = %v", got)
	}
}

func TestErrOrNil(t *testing.T) {
	if err := (List{}).ErrOrNil(); err != nil {
		t.Fatalf("empty ErrOrNil = %v, want nil", err)
	}
	var l List
	l.Errorf(pos(1, 1), pos(1, 2), "e", "boom")
	if err := l.ErrOrNil(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("ErrOrNil = %v", err)
	}
}

func TestJSONShape(t *testing.T) {
	var l List
	l.Errorf(pos(3, 7), pos(3, 12), "invertibility", "nope")
	l[0].Suggestion = "use -mode memotable"
	var rep struct {
		Diagnostics []struct {
			Pos        struct{ Line, Col int }  `json:"pos"`
			End        *struct{ Line, Col int } `json:"end"`
			Severity   string                   `json:"severity"`
			Code       string                   `json:"code"`
			Message    string                   `json:"message"`
			Suggestion string                   `json:"suggestion"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(l.JSON()), &rep); err != nil {
		t.Fatalf("JSON unmarshal: %v\n%s", err, l.JSON())
	}
	d := rep.Diagnostics[0]
	if d.Pos.Line != 3 || d.Pos.Col != 7 || d.End == nil || d.End.Col != 12 ||
		d.Severity != "error" || d.Code != "invertibility" || d.Suggestion == "" {
		t.Fatalf("JSON diagnostic = %+v", d)
	}
	// An empty list still renders a diagnostics array, not null.
	if got := (List{}).JSON(); !strings.Contains(got, `"diagnostics": []`) {
		t.Fatalf("empty JSON = %s", got)
	}
}

func TestParseSeverity(t *testing.T) {
	for in, want := range map[string]Severity{"info": Info, "warn": Warning, "warning": Warning, "error": Error} {
		got, err := ParseSeverity(in)
		if err != nil || got != want {
			t.Errorf("ParseSeverity(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSeverity("bogus"); err == nil {
		t.Error("ParseSeverity(bogus) succeeded")
	}
}
