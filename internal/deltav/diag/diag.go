// Package diag defines the structured diagnostics shared by the ΔV front
// end. The parser, the type checker and the static-analysis suite in
// internal/deltav/analysis all report findings as position-carrying
// Diagnostic values aggregated into a List, so every stage can surface all
// of its findings at once (instead of stopping at the first) and render
// them uniformly as text or JSON.
package diag

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/deltav/token"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, ordered so that higher is more severe.
const (
	// Info marks a descriptive finding about a healthy program (the
	// repairability capability matrix); hidden at the default -severity.
	Info Severity = iota
	// Warning marks a program the compiler accepts but that likely does
	// not mean what its author intended (degenerate incrementalization,
	// shadowing, dead state, disabled halt-by-default).
	Warning
	// Error marks a program the driver refuses to compile.
	Error
)

// String returns the surface spelling used by renderers and flags.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warn"
	}
	return "info"
}

// ParseSeverity parses a -severity flag value.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "info":
		return Info, nil
	case "warn", "warning":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return 0, fmt.Errorf("unknown severity %q (want info, warn, error)", s)
}

// Diagnostic is one finding, anchored to a source range.
type Diagnostic struct {
	Pos        token.Pos // start of the offending range (invalid when unknown)
	End        token.Pos // end of the range (invalid when unknown)
	Severity   Severity
	Code       string // stable identifier: an analyzer name, "syntax", "typecheck"
	Message    string
	Suggestion string // optional remediation, e.g. a flag to pass instead
}

// String renders the diagnostic on one line:
//
//	3:7: error[invertibility]: message (suggestion: compile with -mode memotable)
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Pos.IsValid() {
		fmt.Fprintf(&b, "%s: ", d.Pos)
	}
	b.WriteString(d.Severity.String())
	if d.Code != "" {
		fmt.Fprintf(&b, "[%s]", d.Code)
	}
	fmt.Fprintf(&b, ": %s", d.Message)
	if d.Suggestion != "" {
		fmt.Fprintf(&b, " (suggestion: %s)", d.Suggestion)
	}
	return b.String()
}

// List is an accumulating collection of diagnostics. It implements error,
// rendering every finding (one per line), so front-end stages can return
// all of their findings through ordinary error plumbing.
type List []Diagnostic

// Add appends a diagnostic.
func (l *List) Add(d Diagnostic) { *l = append(*l, d) }

// Errorf appends an error-severity diagnostic.
func (l *List) Errorf(pos, end token.Pos, code, format string, args ...any) {
	l.Add(Diagnostic{Pos: pos, End: end, Severity: Error, Code: code,
		Message: fmt.Sprintf(format, args...)})
}

// Warnf appends a warning-severity diagnostic.
func (l *List) Warnf(pos, end token.Pos, code, format string, args ...any) {
	l.Add(Diagnostic{Pos: pos, End: end, Severity: Warning, Code: code,
		Message: fmt.Sprintf(format, args...)})
}

// Error renders every diagnostic, one per line, positions first.
func (l List) Error() string {
	if len(l) == 0 {
		return "no diagnostics"
	}
	parts := make([]string, len(l))
	for i, d := range l {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\n")
}

// Sort orders the list by position, then severity (errors first), then
// code, keeping renders and JSON output deterministic.
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.Code < b.Code
	})
}

// HasErrors reports whether any diagnostic has Error severity.
func (l List) HasErrors() bool {
	for _, d := range l {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Filter returns the diagnostics at or above the given severity.
func (l List) Filter(min Severity) List {
	out := List{}
	for _, d := range l {
		if d.Severity >= min {
			out = append(out, d)
		}
	}
	return out
}

// ErrOrNil returns the sorted list as an error, or nil when it is empty.
// Use this instead of returning a List directly: a typed empty List in an
// error interface would compare non-nil.
func (l List) ErrOrNil() error {
	if len(l) == 0 {
		return nil
	}
	l.Sort()
	return l
}

// jsonPos mirrors token.Pos with explicit JSON field names.
type jsonPos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

type jsonDiagnostic struct {
	Pos        jsonPos  `json:"pos"`
	End        *jsonPos `json:"end,omitempty"`
	Severity   string   `json:"severity"`
	Code       string   `json:"code"`
	Message    string   `json:"message"`
	Suggestion string   `json:"suggestion,omitempty"`
}

type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

// JSON renders the list as a stable, machine-readable report:
//
//	{"diagnostics":[{"pos":{"line":3,"col":7},...}]}
func (l List) JSON() string {
	rep := jsonReport{Diagnostics: make([]jsonDiagnostic, 0, len(l))}
	for _, d := range l {
		jd := jsonDiagnostic{
			Pos:        jsonPos{Line: d.Pos.Line, Col: d.Pos.Col},
			Severity:   d.Severity.String(),
			Code:       d.Code,
			Message:    d.Message,
			Suggestion: d.Suggestion,
		}
		if d.End.IsValid() {
			jd.End = &jsonPos{Line: d.End.Line, Col: d.End.Col}
		}
		rep.Diagnostics = append(rep.Diagnostics, jd)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		// The types above marshal unconditionally; this is unreachable.
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(b)
}
