package typer

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/deltav/ast"
	"repro/internal/deltav/diag"
	"repro/internal/deltav/parser"
	"repro/internal/deltav/types"
	"repro/internal/programs"
)

func check(t *testing.T, src string) (*ast.Program, *Info, error) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(p)
	return p, info, err
}

func mustCheck(t *testing.T, src string) (*ast.Program, *Info) {
	t.Helper()
	p, info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p, info
}

func TestCheckCorpus(t *testing.T) {
	for _, name := range programs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			mustCheck(t, programs.MustSource(name))
		})
	}
}

func TestFieldAndParamInfo(t *testing.T) {
	_, info := mustCheck(t, programs.MustSource("sssp"))
	if got := info.FieldType("dist"); got != types.Float {
		t.Fatalf("dist type = %s, want float", got)
	}
	if got := info.FieldType("nope"); got != types.Invalid {
		t.Fatalf("unknown field type = %s, want invalid", got)
	}
	if info.Params["src"] != types.Int {
		t.Fatalf("params = %v", info.Params)
	}
}

func TestTypesAnnotated(t *testing.T) {
	p, _ := mustCheck(t, programs.MustSource("pagerank"))
	it := p.Stmts[0].(*ast.Iter)
	let := it.Body.(*ast.Let)
	if let.Init.Type() != types.Float {
		t.Fatalf("aggregation type = %s, want float", let.Init.Type())
	}
	if it.Until.Type() != types.Bool {
		t.Fatalf("until type = %s, want bool", it.Until.Type())
	}
	// Every expression in the program must have a type after checking.
	count, untyped := 0, 0
	walkAll(p, func(e ast.Expr) {
		count++
		if e.Type() == types.Invalid {
			untyped++
		}
	})
	if untyped != 0 {
		t.Fatalf("%d of %d expressions untyped", untyped, count)
	}
}

func walkAll(p *ast.Program, fn func(ast.Expr)) {
	visit := func(e ast.Expr) {
		ast.Walk(e, func(x ast.Expr) bool { fn(x); return true })
	}
	visit(p.Init)
	for _, s := range p.Stmts {
		switch st := s.(type) {
		case *ast.Step:
			visit(st.Body)
		case *ast.Iter:
			visit(st.Body)
			visit(st.Until)
		}
	}
}

func TestDivisionIsAlwaysFloat(t *testing.T) {
	p, _ := mustCheck(t, `
init { local x : float = 1 / graphSize };
step { x = 3 / 4 }`)
	loc := findLocal(p, "x")
	if loc.Init.Type() != types.Float {
		t.Fatalf("1/graphSize type = %s, want float", loc.Init.Type())
	}
}

func findLocal(p *ast.Program, name string) *ast.Local {
	var out *ast.Local
	ast.Walk(p.Init, func(e ast.Expr) bool {
		if l, ok := e.(*ast.Local); ok && l.Name == name {
			out = l
		}
		return true
	})
	return out
}

func TestIntToFloatCoercion(t *testing.T) {
	mustCheck(t, `
init { local x : float = 3 };
step { x = id }`)
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined-var", `init { local x : int = y };step { x = 1 }`, "undefined"},
		{"no-fields", `init { let x : int = 1 in x };step { 1 }`, "no vertex-state fields"},
		{"dup-field", `init { local x : int = 1; local x : int = 2 };step { x = 1 }`, "duplicate field"},
		{"dup-param", "param a : int = 1;\nparam a : int = 2;\ninit { local x : int = 1 };step { x = 1 }", "duplicate param"},
		{"param-default-type", "param a : int = 1.5;\ninit { local x : int = 1 };step { x = 1 }", "default has type"},
		{"field-shadows-param", "param a : int = 1;\ninit { local a : int = 1 };step { a = 1 }", "shadows a param"},
		{"local-outside-init", `init { local x : int = 1 };step { local y : int = 2 }`, "only legal in init"},
		{"assign-undefined", `init { local x : int = 1 };step { y = 2 }`, "undefined name"},
		{"assign-param", "param a : int = 1;\ninit { local x : int = 1 };step { a = 2 }", "cannot assign to param"},
		{"assign-iter-var", `init { local x : int = 1 };iter i { i = 2 } until { true }`, "iteration counter"},
		{"assign-type", `init { local x : int = 1 };step { x = 1.5 }`, "assigning float to int"},
		{"let-type", `init { local x : int = 1 };step { let y : bool = 3 in x = 1 }`, "initialized with"},
		{"float-to-int-local", `init { local x : int = 1.5 };step { x = 1 }`, "initialized with"},
		{"not-on-int", `init { local x : bool = not 3 };step { x = true }`, "not applied"},
		{"neg-bool", `init { local x : int = -true };step { x = 1 }`, "unary - applied"},
		{"plus-bool", `init { local x : int = 1 + true };step { x = 1 }`, "applied to"},
		{"and-int", `init { local x : bool = 1 && true };step { x = true }`, "applied to"},
		{"cmp-mixed", `init { local x : bool = true < 1 };step { x = true }`, "applied to"},
		{"eq-mixed", `init { local x : bool = true == 1 };step { x = true }`, "compares"},
		{"if-cond", `init { local x : int = if 3 then 1 else 2 };step { x = 1 }`, "if condition"},
		{"minmax-bool", `init { local x : int = min true 2 };step { x = 1 }`, "min/max applied"},
		{"agg-in-init", `init { local x : float = + [ u.x | u <- #in ] };step { x = 1.0 }`, "not allowed in init"},
		{"agg-in-until", `init { local x : float = 1.0 };iter i { x = 2.0 } until { + [ u.x | u <- #in ] > 1.0 }`, "not allowed in until"},
		{"nested-agg", `init { local x : float = 1.0 };step { x = + [ u.x + (+ [ v.x | v <- #in ]) | u <- #in ] }`, "nested aggregations"},
		{"agg-local-state", `init { local x : float = 1.0 };step { x = + [ u.x + x | u <- #in ] }`, "not usable inside an aggregation"},
		{"agg-bare-bindvar", `init { local x : float = 1.0 };step { x = + [ u | u <- #in ] }`, "must be used as"},
		{"agg-unknown-field", `init { local x : float = 1.0 };step { x = + [ u.q | u <- #in ] }`, "unknown field"},
		{"agg-wrong-bindvar", `init { local x : float = 1.0 };step { x = + [ v.x | u <- #in ] }`, "unknown aggregation variable"},
		{"agg-bool-sum", `init { local x : bool = true };step { let y : bool = + [ u.x | u <- #in ] in x = y }`, "aggregation over bool"},
		{"agg-float-and", `init { local x : float = 1.0 };step { let y : float = && [ u.x | u <- #in ] in x = y }`, "aggregation over float"},
		{"ew-outside-agg", `init { local x : float = ew };step { x = 1.0 }`, "only legal inside an aggregation"},
		{"neighborfield-outside", `init { local x : float = 1.0 };step { x = u.x }`, "outside an aggregation"},
		{"fixpoint-outside-until", `init { local x : bool = fixpoint };step { x = true }`, "only legal inside until"},
		{"until-not-bool", `init { local x : int = 1 };iter i { x = 2 } until { i + 1 }`, "want bool"},
		{"until-field-ref", `init { local x : bool = true };iter i { x = true } until { x }`, "may not reference vertex state"},
		{"until-id", `init { local x : int = 1 };iter i { x = 2 } until { id > 3 }`, "not allowed in until"},
		{"until-cardinality", `init { local x : int = 1 };iter i { x = 2 } until { |#in| > 3 }`, "not allowed in until"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := check(t, tc.src)
			if err == nil {
				t.Fatalf("Check succeeded, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

// TestMultipleErrors pins the accumulating behaviour: a program with
// several independent type errors reports all of them, each anchored to
// its own line, instead of stopping at the first.
func TestMultipleErrors(t *testing.T) {
	src := `init { local x : int = 1.5;
local y : bool = not 3;
local z : int = 1 };
step { w = 2;
z = true }`
	_, _, err := check(t, src)
	if err == nil {
		t.Fatal("Check succeeded, want multiple errors")
	}
	var diags diag.List
	if !errors.As(err, &diags) {
		t.Fatalf("error is %T, want diag.List", err)
	}
	wantLines := map[int]string{
		1: "initialized with",  // local x : int = 1.5
		2: "not applied",       // not 3
		4: "undefined name",    // w = 2
		5: "assigning bool to", // z = true
	}
	if len(diags) != len(wantLines) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wantLines), diags)
	}
	for _, d := range diags {
		sub, ok := wantLines[d.Pos.Line]
		if !ok {
			t.Errorf("unexpected diagnostic at line %d: %v", d.Pos.Line, d)
			continue
		}
		if !strings.Contains(d.Message, sub) {
			t.Errorf("line %d: message %q missing %q", d.Pos.Line, d.Message, sub)
		}
		if d.Severity != diag.Error || d.Code != "typecheck" || d.Pos.Col == 0 {
			t.Errorf("line %d: diagnostic not a positioned typecheck error: %+v", d.Pos.Line, d)
		}
		delete(wantLines, d.Pos.Line)
	}
	if len(wantLines) != 0 {
		t.Errorf("missing diagnostics for lines %v:\n%v", wantLines, diags)
	}
}

// TestCascadeSuppression pins that one broken subexpression produces one
// diagnostic, not a complaint at every enclosing node.
func TestCascadeSuppression(t *testing.T) {
	_, _, err := check(t, `init { local x : float = (nope + 1) * 2.0 };step { x = 1.0 }`)
	var diags diag.List
	if !errors.As(err, &diags) {
		t.Fatalf("error is %T, want diag.List", err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "undefined") {
		t.Fatalf("diagnostics = %v, want exactly the undefined-variable error", diags)
	}
}

func TestUntilMayUseParams(t *testing.T) {
	mustCheck(t, "param lim : int = 5;\ninit { local x : int = 1 };\niter i { x = x + 1 } until { i >= lim }")
}

func TestLetShadowsField(t *testing.T) {
	// A let with the same name as a field shadows it within its body.
	mustCheck(t, `
init { local x : float = 1.0 };
step {
  let x : int = 3 in
  x = 4
}`)
}

func TestIfBranchUnification(t *testing.T) {
	p, _ := mustCheck(t, `
init { local x : float = if true then 1 else 2.5 };
step { x = 1.0 }`)
	loc := findLocal(p, "x")
	if loc.Init.Type() != types.Float {
		t.Fatalf("mixed-numeric if = %s, want float", loc.Init.Type())
	}
}
