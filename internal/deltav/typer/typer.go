// Package typer type-checks ΔV programs, annotating every expression with
// its type (the paper's type-annotation pass that runs before all
// transformation passes, §6: typeOf(e)).
//
// Beyond Fig. 3's simple types, the checker enforces the structural
// restrictions the compilation scheme relies on:
//
//   - aggregation bodies may only reference the bound neighbour's fields,
//     the edge weight ew, literals, graphSize and params — this is what
//     makes Δ-messages locally determinable at the sender (paper §4.2.2);
//   - aggregations may not appear in init{} (no messages exist yet) nor in
//     until{} conditions;
//   - until{} conditions are master-evaluable: only the iteration counter,
//     fixpoint, literals, graphSize and params may appear;
//   - vertex-state fields (local declarations) may only be introduced in
//     init{}.
package typer

import (
	"fmt"

	"repro/internal/deltav/ast"
	"repro/internal/deltav/token"
	"repro/internal/deltav/types"
)

// Info is the result of checking: the program's symbol tables.
type Info struct {
	// Fields lists vertex-state fields in declaration order.
	Fields []FieldInfo
	// Params maps parameter names to types.
	Params map[string]types.Type
}

// FieldInfo describes one declared vertex-state field.
type FieldInfo struct {
	Name string
	Type types.Type
}

// FieldType returns the declared type of a field, or Invalid.
func (in *Info) FieldType(name string) types.Type {
	for _, f := range in.Fields {
		if f.Name == name {
			return f.Type
		}
	}
	return types.Invalid
}

// Check type-checks prog in place and returns its symbol information.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info:   &Info{Params: map[string]types.Type{}},
		fields: map[string]types.Type{},
		lets:   map[string][]types.Type{},
	}
	err := c.catch(func() { c.program(prog) })
	if err != nil {
		return nil, err
	}
	return c.info, nil
}

type checker struct {
	info    *Info
	fields  map[string]types.Type
	lets    map[string][]types.Type // scope stacks per name
	iterVar string

	inInit  bool
	inUntil bool
	aggVar  string // non-empty while inside an aggregation body
}

type checkError struct{ err error }

func (c *checker) catch(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(checkError); ok {
				err = ce.err
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

func (c *checker) errf(pos token.Pos, format string, args ...any) {
	panic(checkError{fmt.Errorf("deltav: type: %s: %s", pos, fmt.Sprintf(format, args...))})
}

func (c *checker) program(prog *ast.Program) {
	for _, p := range prog.Params {
		if _, dup := c.info.Params[p.Name]; dup {
			c.errf(p.P, "duplicate param %q", p.Name)
		}
		dt := c.expr(p.Default)
		if !assignable(p.DeclType, dt) {
			c.errf(p.P, "param %q default has type %s, want %s", p.Name, dt, p.DeclType)
		}
		c.info.Params[p.Name] = p.DeclType
	}
	c.inInit = true
	c.expr(prog.Init)
	c.inInit = false
	if len(c.info.Fields) == 0 {
		c.errf(token.Pos{Line: 1, Col: 1}, "init declares no vertex-state fields")
	}
	for _, s := range prog.Stmts {
		switch st := s.(type) {
		case *ast.Step:
			c.expr(st.Body)
		case *ast.Iter:
			if st.Var == "" {
				c.errf(st.P, "iter without counter variable")
			}
			saved := c.iterVar
			c.iterVar = st.Var
			c.expr(st.Body)
			c.inUntil = true
			ut := c.expr(st.Until)
			c.inUntil = false
			if ut != types.Bool {
				c.errf(st.Until.Pos(), "until condition has type %s, want bool", ut)
			}
			c.iterVar = saved
		}
	}
}

func assignable(dst, src types.Type) bool {
	if dst == src {
		return true
	}
	return dst == types.Float && src == types.Int
}

func (c *checker) lookupVar(name string) (types.Type, bool) {
	if stack := c.lets[name]; len(stack) > 0 {
		return stack[len(stack)-1], true
	}
	if name == c.iterVar && c.iterVar != "" {
		return types.Int, true
	}
	if t, ok := c.info.Params[name]; ok {
		return t, true
	}
	return types.Invalid, false
}

func (c *checker) set(e ast.Expr, t types.Type) types.Type {
	e.SetType(t)
	return t
}

func (c *checker) expr(e ast.Expr) types.Type {
	switch n := e.(type) {
	case *ast.IntLit:
		return c.set(e, types.Int)
	case *ast.FloatLit:
		return c.set(e, types.Float)
	case *ast.BoolLit:
		return c.set(e, types.Bool)
	case *ast.Infty:
		return c.set(e, types.Float)
	case *ast.GraphSize:
		return c.set(e, types.Int)
	case *ast.Cardinality:
		if c.inUntil {
			c.errf(n.P, "|%s| not allowed in until{}", n.G)
		}
		return c.set(e, types.Int)
	case *ast.VertexID:
		if c.inUntil {
			c.errf(n.P, "id not allowed in until{} (condition must be master-evaluable)")
		}
		return c.set(e, types.Int)
	case *ast.FixpointRef:
		if !c.inUntil {
			c.errf(n.P, "fixpoint is only legal inside until{}")
		}
		return c.set(e, types.Bool)
	case *ast.EdgeWeight:
		if c.aggVar == "" {
			c.errf(n.P, "ew is only legal inside an aggregation body")
		}
		return c.set(e, types.Float)
	case *ast.Var:
		if c.aggVar != "" && n.Name == c.aggVar {
			c.errf(n.P, "aggregation variable %q must be used as %s.field", n.Name, n.Name)
		}
		if c.aggVar != "" {
			// Only params are allowed inside an aggregation body.
			if t, ok := c.info.Params[n.Name]; ok {
				return c.set(e, t)
			}
			c.errf(n.P, "%q not usable inside an aggregation body (only %s.field, ew, literals, graphSize, params)", n.Name, c.aggVar)
		}
		if t, ok := c.lookupVar(n.Name); ok {
			if c.inUntil && n.Name != c.iterVar {
				if _, isParam := c.info.Params[n.Name]; !isParam {
					c.errf(n.P, "until{} may only reference the iteration counter, fixpoint, params and constants")
				}
			}
			return c.set(e, t)
		}
		if t, ok := c.fields[n.Name]; ok {
			if c.inUntil {
				c.errf(n.P, "until{} may not reference vertex state (%q)", n.Name)
			}
			// The parser cannot distinguish fields from variables; retype
			// the node as a field reference is done by the resolver in
			// internal/core. Here we only record the type.
			return c.set(e, t)
		}
		c.errf(n.P, "undefined variable %q", n.Name)
	case *ast.Unary:
		xt := c.expr(n.X)
		if n.Op == "not" {
			if xt != types.Bool {
				c.errf(n.P, "not applied to %s", xt)
			}
			return c.set(e, types.Bool)
		}
		if !xt.Numeric() {
			c.errf(n.P, "unary - applied to %s", xt)
		}
		return c.set(e, xt)
	case *ast.Binary:
		lt, rt := c.expr(n.L), c.expr(n.R)
		switch n.Op {
		case "+", "-", "*":
			if !lt.Numeric() || !rt.Numeric() {
				c.errf(n.P, "%s applied to %s and %s", n.Op, lt, rt)
			}
			if lt == types.Float || rt == types.Float {
				return c.set(e, types.Float)
			}
			return c.set(e, types.Int)
		case "/":
			if !lt.Numeric() || !rt.Numeric() {
				c.errf(n.P, "/ applied to %s and %s", lt, rt)
			}
			// Division is always real-valued in ΔV: 1 / graphSize is a
			// fraction, as the paper's PageRank uses it.
			return c.set(e, types.Float)
		case "&&", "||":
			if lt != types.Bool || rt != types.Bool {
				c.errf(n.P, "%s applied to %s and %s", n.Op, lt, rt)
			}
			return c.set(e, types.Bool)
		case "<", ">", "<=", ">=":
			if !lt.Numeric() || !rt.Numeric() {
				c.errf(n.P, "%s applied to %s and %s", n.Op, lt, rt)
			}
			return c.set(e, types.Bool)
		case "==", "!=":
			if lt != rt && !(lt.Numeric() && rt.Numeric()) {
				c.errf(n.P, "%s compares %s and %s", n.Op, lt, rt)
			}
			return c.set(e, types.Bool)
		}
		c.errf(n.P, "unknown operator %q", n.Op)
	case *ast.MinMax:
		at, bt := c.expr(n.A), c.expr(n.B)
		if !at.Numeric() || !bt.Numeric() {
			c.errf(n.P, "min/max applied to %s and %s", at, bt)
		}
		if at == types.Float || bt == types.Float {
			return c.set(e, types.Float)
		}
		return c.set(e, types.Int)
	case *ast.If:
		ct := c.expr(n.Cond)
		if ct != types.Bool {
			c.errf(n.P, "if condition has type %s", ct)
		}
		tt := c.expr(n.Then)
		if n.Else == nil {
			return c.set(e, types.Unit)
		}
		et := c.expr(n.Else)
		switch {
		case tt == et:
			return c.set(e, tt)
		case tt.Numeric() && et.Numeric():
			return c.set(e, types.Float)
		default:
			return c.set(e, types.Unit)
		}
	case *ast.Let:
		it := c.expr(n.Init)
		if !assignable(n.DeclType, it) {
			c.errf(n.P, "let %s : %s initialized with %s", n.Name, n.DeclType, it)
		}
		c.lets[n.Name] = append(c.lets[n.Name], n.DeclType)
		bt := c.expr(n.Body)
		c.lets[n.Name] = c.lets[n.Name][:len(c.lets[n.Name])-1]
		return c.set(e, bt)
	case *ast.Local:
		if !c.inInit {
			c.errf(n.P, "local declarations are only legal in init{}")
		}
		if _, dup := c.fields[n.Name]; dup {
			c.errf(n.P, "duplicate field %q", n.Name)
		}
		if _, isParam := c.info.Params[n.Name]; isParam {
			c.errf(n.P, "field %q shadows a param", n.Name)
		}
		it := c.expr(n.Init)
		if !assignable(n.DeclType, it) {
			c.errf(n.P, "local %s : %s initialized with %s", n.Name, n.DeclType, it)
		}
		c.fields[n.Name] = n.DeclType
		c.info.Fields = append(c.info.Fields, FieldInfo{Name: n.Name, Type: n.DeclType})
		return c.set(e, types.Unit)
	case *ast.Assign:
		vt := c.expr(n.Value)
		if t := c.lets[n.Name]; len(t) > 0 {
			if !assignable(t[len(t)-1], vt) {
				c.errf(n.P, "assigning %s to %s %q", vt, t[len(t)-1], n.Name)
			}
			n.IsField = false
			return c.set(e, types.Unit)
		}
		if t, ok := c.fields[n.Name]; ok {
			if !assignable(t, vt) {
				c.errf(n.P, "assigning %s to %s field %q", vt, t, n.Name)
			}
			n.IsField = true
			return c.set(e, types.Unit)
		}
		if n.Name == c.iterVar {
			c.errf(n.P, "cannot assign to iteration counter %q", n.Name)
		}
		if _, isParam := c.info.Params[n.Name]; isParam {
			c.errf(n.P, "cannot assign to param %q", n.Name)
		}
		c.errf(n.P, "assignment to undefined name %q", n.Name)
	case *ast.Seq:
		var t types.Type = types.Unit
		for _, it := range n.Items {
			t = c.expr(it)
		}
		return c.set(e, t)
	case *ast.Agg:
		if c.inInit {
			c.errf(n.P, "aggregations are not allowed in init{} (no prior superstep exists)")
		}
		if c.inUntil {
			c.errf(n.P, "aggregations are not allowed in until{}")
		}
		if c.aggVar != "" {
			c.errf(n.P, "nested aggregations are not supported")
		}
		c.aggVar = n.BindVar
		bt := c.expr(n.Body)
		c.aggVar = ""
		switch n.Op {
		case ast.AggSum, ast.AggProd, ast.AggMin, ast.AggMax:
			if !bt.Numeric() {
				c.errf(n.P, "%s aggregation over %s body", n.Op, bt)
			}
			return c.set(e, bt)
		case ast.AggOr, ast.AggAnd:
			if bt != types.Bool {
				c.errf(n.P, "%s aggregation over %s body", n.Op, bt)
			}
			return c.set(e, types.Bool)
		}
	case *ast.NeighborField:
		if c.aggVar == "" {
			c.errf(n.P, "%s.%s outside an aggregation", n.Var, n.Name)
		}
		if n.Var != c.aggVar {
			c.errf(n.P, "unknown aggregation variable %q (bound: %q)", n.Var, c.aggVar)
		}
		t, ok := c.fields[n.Name]
		if !ok {
			c.errf(n.P, "unknown field %q", n.Name)
		}
		return c.set(e, t)
	default:
		c.errf(e.Pos(), "internal form %T cannot appear in source", e)
	}
	return types.Invalid
}
