// Package typer type-checks ΔV programs, annotating every expression with
// its type (the paper's type-annotation pass that runs before all
// transformation passes, §6: typeOf(e)).
//
// Beyond Fig. 3's simple types, the checker enforces the structural
// restrictions the compilation scheme relies on:
//
//   - aggregation bodies may only reference the bound neighbour's fields,
//     the edge weight ew, literals, graphSize and params — this is what
//     makes Δ-messages locally determinable at the sender (paper §4.2.2);
//   - aggregations may not appear in init{} (no messages exist yet) nor in
//     until{} conditions;
//   - until{} conditions are master-evaluable: only the iteration counter,
//     fixpoint, literals, graphSize and params may appear;
//   - vertex-state fields (local declarations) may only be introduced in
//     init{}.
//
// The checker does not stop at the first problem: it records every finding
// in a diag.List (code "typecheck") and keeps going, suppressing cascade
// errors by propagating types.Invalid silently. Check returns the full
// list as its error.
package typer

import (
	"repro/internal/deltav/ast"
	"repro/internal/deltav/diag"
	"repro/internal/deltav/token"
	"repro/internal/deltav/types"
)

// Info is the result of checking: the program's symbol tables.
type Info struct {
	// Fields lists vertex-state fields in declaration order.
	Fields []FieldInfo
	// Params maps parameter names to types.
	Params map[string]types.Type
}

// FieldInfo describes one declared vertex-state field.
type FieldInfo struct {
	Name string
	Type types.Type
}

// FieldType returns the declared type of a field, or Invalid.
func (in *Info) FieldType(name string) types.Type {
	for _, f := range in.Fields {
		if f.Name == name {
			return f.Type
		}
	}
	return types.Invalid
}

// Check type-checks prog in place and returns its symbol information. On
// failure the returned error is a diag.List carrying every type error
// found (not just the first), each anchored to its source range.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info:   &Info{Params: map[string]types.Type{}},
		fields: map[string]types.Type{},
		lets:   map[string][]types.Type{},
	}
	c.program(prog)
	if err := c.diags.ErrOrNil(); err != nil {
		return nil, err
	}
	return c.info, nil
}

type checker struct {
	info    *Info
	diags   diag.List
	fields  map[string]types.Type
	lets    map[string][]types.Type // scope stacks per name
	iterVar string

	inInit  bool
	inUntil bool
	aggVar  string // non-empty while inside an aggregation body
}

// errf records a type error at an explicit position and keeps checking.
func (c *checker) errf(pos token.Pos, format string, args ...any) {
	c.diags.Errorf(pos, token.Pos{}, "typecheck", format, args...)
}

// errNode records a type error anchored to a node's source range.
func (c *checker) errNode(n ast.Node, format string, args ...any) {
	c.diags.Errorf(n.Pos(), n.End(), "typecheck", format, args...)
}

func (c *checker) program(prog *ast.Program) {
	for _, p := range prog.Params {
		if _, dup := c.info.Params[p.Name]; dup {
			c.errf(p.P, "duplicate param %q", p.Name)
			continue
		}
		dt := c.expr(p.Default)
		if dt != types.Invalid && !assignable(p.DeclType, dt) {
			c.errf(p.P, "param %q default has type %s, want %s", p.Name, dt, p.DeclType)
		}
		c.info.Params[p.Name] = p.DeclType
	}
	c.inInit = true
	c.expr(prog.Init)
	c.inInit = false
	if len(c.info.Fields) == 0 {
		c.errf(token.Pos{Line: 1, Col: 1}, "init declares no vertex-state fields")
	}
	for _, s := range prog.Stmts {
		switch st := s.(type) {
		case *ast.Step:
			c.expr(st.Body)
		case *ast.Iter:
			if st.Var == "" {
				c.errf(st.P, "iter without counter variable")
			}
			saved := c.iterVar
			c.iterVar = st.Var
			c.expr(st.Body)
			c.inUntil = true
			ut := c.expr(st.Until)
			c.inUntil = false
			if ut != types.Bool && ut != types.Invalid {
				c.errNode(st.Until, "until condition has type %s, want bool", ut)
			}
			c.iterVar = saved
		}
	}
}

func assignable(dst, src types.Type) bool {
	if dst == src {
		return true
	}
	return dst == types.Float && src == types.Int
}

func (c *checker) lookupVar(name string) (types.Type, bool) {
	if stack := c.lets[name]; len(stack) > 0 {
		return stack[len(stack)-1], true
	}
	if name == c.iterVar && c.iterVar != "" {
		return types.Int, true
	}
	if t, ok := c.info.Params[name]; ok {
		return t, true
	}
	return types.Invalid, false
}

func (c *checker) set(e ast.Expr, t types.Type) types.Type {
	e.SetType(t)
	return t
}

// expr checks one expression. It reports problems into c.diags and returns
// the expression's type; types.Invalid marks a subtree whose type could
// not be determined. Checks involving an Invalid operand are skipped
// silently — the operand already carries a diagnostic, and repeating the
// complaint at every enclosing node would drown the real finding.
func (c *checker) expr(e ast.Expr) types.Type {
	switch n := e.(type) {
	case *ast.IntLit:
		return c.set(e, types.Int)
	case *ast.FloatLit:
		return c.set(e, types.Float)
	case *ast.BoolLit:
		return c.set(e, types.Bool)
	case *ast.Infty:
		return c.set(e, types.Float)
	case *ast.GraphSize:
		return c.set(e, types.Int)
	case *ast.Cardinality:
		if c.inUntil {
			c.errNode(n, "|%s| not allowed in until{}", n.G)
		}
		return c.set(e, types.Int)
	case *ast.VertexID:
		if c.inUntil {
			c.errNode(n, "id not allowed in until{} (condition must be master-evaluable)")
		}
		return c.set(e, types.Int)
	case *ast.FixpointRef:
		if !c.inUntil {
			c.errNode(n, "fixpoint is only legal inside until{}")
		}
		return c.set(e, types.Bool)
	case *ast.EdgeWeight:
		if c.aggVar == "" {
			c.errNode(n, "ew is only legal inside an aggregation body")
		}
		return c.set(e, types.Float)
	case *ast.Var:
		if c.aggVar != "" {
			if n.Name == c.aggVar {
				c.errNode(n, "aggregation variable %q must be used as %s.field", n.Name, n.Name)
				return c.set(e, types.Invalid)
			}
			// Only params are allowed inside an aggregation body.
			if t, ok := c.info.Params[n.Name]; ok {
				return c.set(e, t)
			}
			c.errNode(n, "%q not usable inside an aggregation body (only %s.field, ew, literals, graphSize, params)", n.Name, c.aggVar)
			return c.set(e, types.Invalid)
		}
		if t, ok := c.lookupVar(n.Name); ok {
			if c.inUntil && n.Name != c.iterVar {
				if _, isParam := c.info.Params[n.Name]; !isParam {
					c.errNode(n, "until{} may only reference the iteration counter, fixpoint, params and constants")
				}
			}
			return c.set(e, t)
		}
		if t, ok := c.fields[n.Name]; ok {
			if c.inUntil {
				c.errNode(n, "until{} may not reference vertex state (%q)", n.Name)
			}
			// The parser cannot distinguish fields from variables; retyping
			// the node as a field reference is done by the resolver in
			// internal/core. Here we only record the type.
			return c.set(e, t)
		}
		c.errNode(n, "undefined variable %q", n.Name)
		return c.set(e, types.Invalid)
	case *ast.Unary:
		xt := c.expr(n.X)
		if n.Op == "not" {
			if xt != types.Bool && xt != types.Invalid {
				c.errNode(n, "not applied to %s", xt)
			}
			return c.set(e, types.Bool)
		}
		if xt == types.Invalid {
			return c.set(e, types.Invalid)
		}
		if !xt.Numeric() {
			c.errNode(n, "unary - applied to %s", xt)
			return c.set(e, types.Invalid)
		}
		return c.set(e, xt)
	case *ast.Binary:
		lt, rt := c.expr(n.L), c.expr(n.R)
		bad := lt == types.Invalid || rt == types.Invalid
		switch n.Op {
		case "+", "-", "*":
			if !bad && (!lt.Numeric() || !rt.Numeric()) {
				c.errNode(n, "%s applied to %s and %s", n.Op, lt, rt)
				bad = true
			}
			if lt == types.Float || rt == types.Float {
				return c.set(e, types.Float)
			}
			if bad {
				return c.set(e, types.Invalid)
			}
			return c.set(e, types.Int)
		case "/":
			if !bad && (!lt.Numeric() || !rt.Numeric()) {
				c.errNode(n, "/ applied to %s and %s", lt, rt)
			}
			// Division is always real-valued in ΔV: 1 / graphSize is a
			// fraction, as the paper's PageRank uses it.
			return c.set(e, types.Float)
		case "&&", "||":
			if !bad && (lt != types.Bool || rt != types.Bool) {
				c.errNode(n, "%s applied to %s and %s", n.Op, lt, rt)
			}
			return c.set(e, types.Bool)
		case "<", ">", "<=", ">=":
			if !bad && (!lt.Numeric() || !rt.Numeric()) {
				c.errNode(n, "%s applied to %s and %s", n.Op, lt, rt)
			}
			return c.set(e, types.Bool)
		case "==", "!=":
			if !bad && lt != rt && !(lt.Numeric() && rt.Numeric()) {
				c.errNode(n, "%s compares %s and %s", n.Op, lt, rt)
			}
			return c.set(e, types.Bool)
		}
		c.errNode(n, "unknown operator %q", n.Op)
		return c.set(e, types.Invalid)
	case *ast.MinMax:
		at, bt := c.expr(n.A), c.expr(n.B)
		if at == types.Invalid || bt == types.Invalid {
			return c.set(e, types.Invalid)
		}
		if !at.Numeric() || !bt.Numeric() {
			c.errNode(n, "min/max applied to %s and %s", at, bt)
			return c.set(e, types.Invalid)
		}
		if at == types.Float || bt == types.Float {
			return c.set(e, types.Float)
		}
		return c.set(e, types.Int)
	case *ast.If:
		ct := c.expr(n.Cond)
		if ct != types.Bool && ct != types.Invalid {
			c.errNode(n.Cond, "if condition has type %s", ct)
		}
		tt := c.expr(n.Then)
		if n.Else == nil {
			return c.set(e, types.Unit)
		}
		et := c.expr(n.Else)
		switch {
		case tt == types.Invalid || et == types.Invalid:
			return c.set(e, types.Invalid)
		case tt == et:
			return c.set(e, tt)
		case tt.Numeric() && et.Numeric():
			return c.set(e, types.Float)
		default:
			return c.set(e, types.Unit)
		}
	case *ast.Let:
		it := c.expr(n.Init)
		if it != types.Invalid && !assignable(n.DeclType, it) {
			c.errNode(n, "let %s : %s initialized with %s", n.Name, n.DeclType, it)
		}
		c.lets[n.Name] = append(c.lets[n.Name], n.DeclType)
		bt := c.expr(n.Body)
		c.lets[n.Name] = c.lets[n.Name][:len(c.lets[n.Name])-1]
		return c.set(e, bt)
	case *ast.Local:
		if !c.inInit {
			c.errNode(n, "local declarations are only legal in init{}")
		}
		if _, dup := c.fields[n.Name]; dup {
			c.errNode(n, "duplicate field %q", n.Name)
			c.expr(n.Init)
			return c.set(e, types.Unit)
		}
		if _, isParam := c.info.Params[n.Name]; isParam {
			c.errNode(n, "field %q shadows a param", n.Name)
		}
		it := c.expr(n.Init)
		if it != types.Invalid && !assignable(n.DeclType, it) {
			c.errNode(n, "local %s : %s initialized with %s", n.Name, n.DeclType, it)
		}
		c.fields[n.Name] = n.DeclType
		c.info.Fields = append(c.info.Fields, FieldInfo{Name: n.Name, Type: n.DeclType})
		return c.set(e, types.Unit)
	case *ast.Assign:
		vt := c.expr(n.Value)
		if t := c.lets[n.Name]; len(t) > 0 {
			if vt != types.Invalid && !assignable(t[len(t)-1], vt) {
				c.errNode(n, "assigning %s to %s %q", vt, t[len(t)-1], n.Name)
			}
			n.IsField = false
			return c.set(e, types.Unit)
		}
		if t, ok := c.fields[n.Name]; ok {
			if vt != types.Invalid && !assignable(t, vt) {
				c.errNode(n, "assigning %s to %s field %q", vt, t, n.Name)
			}
			n.IsField = true
			return c.set(e, types.Unit)
		}
		switch {
		case n.Name == c.iterVar && c.iterVar != "":
			c.errNode(n, "cannot assign to iteration counter %q", n.Name)
		default:
			if _, isParam := c.info.Params[n.Name]; isParam {
				c.errNode(n, "cannot assign to param %q", n.Name)
			} else {
				c.errNode(n, "assignment to undefined name %q", n.Name)
			}
		}
		return c.set(e, types.Unit)
	case *ast.Seq:
		var t types.Type = types.Unit
		for _, it := range n.Items {
			t = c.expr(it)
		}
		return c.set(e, t)
	case *ast.Agg:
		if c.inInit {
			c.errNode(n, "aggregations are not allowed in init{} (no prior superstep exists)")
		}
		if c.inUntil {
			c.errNode(n, "aggregations are not allowed in until{}")
		}
		if c.aggVar != "" {
			c.errNode(n, "nested aggregations are not supported")
			return c.set(e, types.Invalid)
		}
		c.aggVar = n.BindVar
		bt := c.expr(n.Body)
		c.aggVar = ""
		switch n.Op {
		case ast.AggSum, ast.AggProd, ast.AggMin, ast.AggMax:
			if bt == types.Invalid {
				return c.set(e, types.Invalid)
			}
			if !bt.Numeric() {
				c.errNode(n, "%s aggregation over %s body", n.Op, bt)
				return c.set(e, types.Invalid)
			}
			return c.set(e, bt)
		case ast.AggOr, ast.AggAnd:
			if bt != types.Bool && bt != types.Invalid {
				c.errNode(n, "%s aggregation over %s body", n.Op, bt)
			}
			return c.set(e, types.Bool)
		}
		return c.set(e, types.Invalid)
	case *ast.NeighborField:
		if c.aggVar == "" {
			c.errNode(n, "%s.%s outside an aggregation", n.Var, n.Name)
		} else if n.Var != c.aggVar {
			c.errNode(n, "unknown aggregation variable %q (bound: %q)", n.Var, c.aggVar)
		}
		t, ok := c.fields[n.Name]
		if !ok {
			if c.aggVar != "" {
				c.errNode(n, "unknown field %q", n.Name)
			}
			return c.set(e, types.Invalid)
		}
		return c.set(e, t)
	default:
		c.errNode(e, "internal form %T cannot appear in source", e)
		return c.set(e, types.Invalid)
	}
}
