package codegen

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/programs"
)

func generateT(t *testing.T, name string, mode core.Mode) string {
	t.Helper()
	prog, err := core.Compile(programs.MustSource(name), core.Options{Mode: mode})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	src, err := Generate(prog, "dvgen")
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return src
}

// Every corpus program in every mode must generate syntactically valid Go.
func TestGenerateParsesForWholeCorpus(t *testing.T) {
	for _, name := range programs.Names() {
		for _, mode := range []core.Mode{core.Incremental, core.Baseline, core.MemoTable} {
			name, mode := name, mode
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				src := generateT(t, name, mode)
				fset := token.NewFileSet()
				if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
					t.Fatalf("generated source does not parse: %v\n%s", err, src)
				}
			})
		}
	}
}

func TestGeneratedPageRankShowsPaperConstructs(t *testing.T) {
	src := generateT(t, "pagerank", core.Incremental)
	for _, want := range []string{
		"func computeDelta0(oldMsg, newMsg float64) float64 {",
		"return newMsg - oldMsg",             // §3.3's computeDelta
		"v.dirtyG0 = b2f(v.pr != v.oldG0Pr)", // §6.3 change check
		"ctx.VoteToHalt()",                   // Eq. 12
		"msg := Message{Group: 0}",           // Δ-message assembly
		"type VertexState struct",            // §6.2 state
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("generated source missing %q:\n%s", want, src)
		}
	}
}

func TestGeneratedProdHasTaggedDelta(t *testing.T) {
	src := generateT(t, "prod", core.Incremental)
	for _, want := range []string{
		"func computeDelta0(oldMsg, newMsg, lastNonNull float64) (delta float64, isNull, prevNull bool)",
		"return newMsg / lastNonNull, false, true",
		"msg.TagNull |= 1 << 0",
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("prod source missing %q:\n%s", want, src)
		}
	}
}

// The generated code must actually compile with the Go toolchain.
func TestGeneratedSourceBuilds(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module dvgen\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for i, tc := range []struct {
		name string
		mode core.Mode
	}{
		{"pagerank", core.Incremental},
		{"hits", core.Incremental},
		{"sssp", core.Incremental},
		{"prod", core.Incremental},
		{"pagerank", core.Baseline},
	} {
		src := generateT(t, tc.name, tc.mode)
		// One package per file to avoid symbol collisions.
		sub := filepath.Join(dir, "p", string(rune('a'+i)))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "gen.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cmd := exec.Command("go", "build", "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GOPROXY=off")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("generated code failed to build: %v\n%s", err, out)
	}
}
