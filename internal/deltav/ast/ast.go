// Package ast defines the abstract syntax tree of ΔV (paper Fig. 3).
//
// Two groups of nodes exist, mirroring the figure: user-visible forms that
// the parser can produce, and compiler-internal forms (the highlighted
// productions: send, halt, for-loops over neighbours and messages, Δ-message
// operators, old-value and dirty-bit references) that only the
// transformation passes in internal/core introduce.
package ast

import (
	"repro/internal/deltav/token"
	"repro/internal/deltav/types"
)

// Node is any AST node. Pos is the start of the node's source range; End
// is one past its last character. Nodes synthesized by the compiler (and
// older construction sites that never learned about end positions) may
// leave the end unset, in which case End falls back to Pos.
type Node interface {
	Pos() token.Pos
	End() token.Pos
}

// Expr is an expression node. Every expression carries the type assigned by
// the type checker (types.Invalid before checking).
type Expr interface {
	Node
	Type() types.Type
	SetType(types.Type)
	isExpr()
}

// Base supplies position and type storage for expression nodes.
type Base struct {
	P    token.Pos
	EndP token.Pos // end of the source range; zero when unknown
	Ty   types.Type
}

// Pos returns the node's source position.
func (b *Base) Pos() token.Pos { return b.P }

// End returns the end of the node's source range, falling back to the
// start position when no end was recorded.
func (b *Base) End() token.Pos {
	if b.EndP.IsValid() {
		return b.EndP
	}
	return b.P
}

// Type returns the node's checked type.
func (b *Base) Type() types.Type { return b.Ty }

// SetType records the node's checked type.
func (b *Base) SetType(t types.Type) { b.Ty = t }

func (*Base) isExpr() {}

// GraphDir is a graph expression g: the vertex set an aggregation ranges
// over, from the receiving vertex's perspective.
type GraphDir int

// Graph expressions.
const (
	DirIn        GraphDir = iota // #in: in-neighbours
	DirOut                       // #out: out-neighbours
	DirNeighbors                 // #neighbors: neighbours of an undirected graph
)

// String returns the surface spelling.
func (g GraphDir) String() string {
	switch g {
	case DirIn:
		return "#in"
	case DirOut:
		return "#out"
	}
	return "#neighbors"
}

// AggOp is an aggregation operator ⊞ (commutative and associative).
type AggOp int

// Aggregation operators.
const (
	AggSum  AggOp = iota // +
	AggProd              // *
	AggMin               // min
	AggMax               // max
	AggOr                // ||
	AggAnd               // &&
)

// String returns the surface spelling.
func (op AggOp) String() string {
	switch op {
	case AggSum:
		return "+"
	case AggProd:
		return "*"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggOr:
		return "||"
	}
	return "&&"
}

// Multiplicative reports whether ⊞ has an absorbing ("nullary") element
// that requires the three-field tracking of paper §6.4.1: 0 for *, false
// for &&, true for ||.
func (op AggOp) Multiplicative() bool {
	return op == AggProd || op == AggAnd || op == AggOr
}

// Idempotent reports whether ⊞ is idempotent (min/max), in which case a
// value is its own Δ-message and memoization requires monotone updates.
func (op AggOp) Idempotent() bool { return op == AggMin || op == AggMax }

// ---------------------------------------------------------------------------
// User-visible expressions.

// IntLit is an integer literal.
type IntLit struct {
	Base
	Val int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Base
	Val float64
}

// BoolLit is true or false.
type BoolLit struct {
	Base
	Val bool
}

// Infty is the literal ∞ (spelled infty).
type Infty struct{ Base }

// GraphSize is the number of vertices in the graph.
type GraphSize struct{ Base }

// VertexID is the current vertex's ID (spelled id).
type VertexID struct{ Base }

// FixpointRef is the fixpoint predicate, legal only inside until{}: true
// when no vertex changed any state field during the iteration.
type FixpointRef struct{ Base }

// Var references a let-bound variable, a param, or an iter counter.
// Slot is assigned by the resolver: params and iteration counters get
// negative encodings, let variables get stack depths.
type Var struct {
	Base
	Name string
	Slot int
}

// Field references a vertex-state field (underlined variables in the
// paper). Slot indexes the vertex-state layout after resolution.
type Field struct {
	Base
	Name string
	Slot int
}

// Unary is -x or not x.
type Unary struct {
	Base
	Op string // "-" or "not"
	X  Expr
}

// Binary is a binary operator expression.
type Binary struct {
	Base
	Op   string // + - * / && || < > <= >= == !=
	L, R Expr
}

// MinMax is the prefix pop form: min e1 e2 / max e1 e2.
type MinMax struct {
	Base
	IsMax bool
	A, B  Expr
}

// If is if/then or if/then/else; Else may be nil (statement form).
type If struct {
	Base
	Cond, Then Expr
	Else       Expr // may be nil
}

// Let is let x : τ = e1 in e2.
type Let struct {
	Base
	Name     string
	DeclType types.Type
	Init     Expr
	Body     Expr
	Slot     int
}

// Local declares a vertex-state field inside init{}: local x : τ = e.
type Local struct {
	Base
	Name     string
	DeclType types.Type
	Init     Expr
	Slot     int
}

// Assign is x = e where x is a field or a local let variable.
type Assign struct {
	Base
	Name    string
	IsField bool
	Slot    int
	Value   Expr
}

// Seq is e1; e2; …; en evaluated in order.
type Seq struct {
	Base
	Items []Expr
}

// Agg is the aggregation ⊞ [ body | var <- g ]. Site is the aggregation
// site index assigned during compilation (-1 before).
type Agg struct {
	Base
	Op      AggOp
	BindVar string
	G       GraphDir
	Body    Expr
	Site    int
}

// NeighborField is u.f inside an aggregation body: the bound neighbour
// variable's vertex-state field f.
type NeighborField struct {
	Base
	Var  string
	Name string
	Slot int
}

// EdgeWeight is ew: the weight of the edge between the aggregating vertex
// and the bound neighbour; legal only inside an aggregation body.
type EdgeWeight struct{ Base }

// Cardinality is |g|: the number of vertices g ranges over.
type Cardinality struct {
	Base
	G GraphDir
}

// ---------------------------------------------------------------------------
// Compiler-internal forms (highlighted in paper Fig. 3). The parser never
// produces these; the passes in internal/core insert them.

// ForNeighbors is for(u : g){ body }: iterate over the push targets.
type ForNeighbors struct {
	Base
	Var  string
	G    GraphDir // direction from the *sender's* perspective
	Body Expr
}

// Send is send(u, payload…): send one message of the given send group to
// the loop variable's vertex. Payload holds one expression per message
// slot (one per aggregation site of the group).
type Send struct {
	Base
	DestVar string
	Group   int
	Payload []Expr
}

// Delta wraps a payload slot: ∆_{old}(new) for the aggregation site's ⊞
// (paper Eq. 10/11). X is the aggregand expression; the old value is
// recomputed against the saved old fields.
type Delta struct {
	Base
	Site int
	X    Expr
}

// MsgLoop is for(m : messages){ body } restricted to one send group.
type MsgLoop struct {
	Base
	Group int
	Body  Expr
}

// MsgSlot reads the current message's value for an aggregation site.
type MsgSlot struct {
	Base
	Site int
}

// MsgIsNull is is_nullary(m) for a multiplicative site (paper Eq. 9).
type MsgIsNull struct {
	Base
	Site int
}

// MsgPrevNull is prev_nullary(m) for a multiplicative site (paper Eq. 9).
type MsgPrevNull struct {
	Base
	Site int
}

// OldField reads the saved "most recently sent" value o_f of a field
// (paper §6.3).
type OldField struct {
	Base
	Name string
	Slot int
}

// Halt is vote_to_halt() (paper Eq. 12).
type Halt struct{ Base }

// Changed is the ε-aware change check of a field against its saved
// most-recently-sent value (paper §6.3; ε from §9's slop extension).
type Changed struct {
	Base
	Name    string // user field
	OldName string // $old_g_f field holding the most recently sent value
	Slot    int    // field slot
	OldSlot int    // $old_g_f slot
}

// TableUpdate records incoming (sender, values) pairs of a send group into
// the per-neighbour lookup tables of the §4.2.1 strawman.
type TableUpdate struct {
	Base
	Group int
}

// TableFold refolds a site's whole lookup table into its accumulator
// (§4.2.1: "use this lookup table as a proxy for the messages").
type TableFold struct {
	Base
	Site int
}

// ---------------------------------------------------------------------------
// Program structure.

// Param is a program parameter with a literal default, overridable at run
// time (used e.g. for the SSSP source vertex).
type Param struct {
	Name     string
	DeclType types.Type
	Default  Expr // IntLit/FloatLit/BoolLit
	P        token.Pos
}

// Stmt is a top-level statement: step{e} or iter i {e} until {e}.
type Stmt interface {
	Node
	isStmt()
}

// Step runs its body for a single superstep.
type Step struct {
	P    token.Pos
	EndP token.Pos
	Body Expr
}

// Pos returns the statement position.
func (s *Step) Pos() token.Pos { return s.P }

// End returns the end of the statement's source range.
func (s *Step) End() token.Pos {
	if s.EndP.IsValid() {
		return s.EndP
	}
	return s.P
}
func (*Step) isStmt() {}

// Iter runs its body repeatedly until the condition holds. Var is the
// iteration counter, starting at 1 on the first execution of the body.
type Iter struct {
	P     token.Pos
	EndP  token.Pos
	Var   string
	Body  Expr
	Until Expr
}

// Pos returns the statement position.
func (s *Iter) Pos() token.Pos { return s.P }

// End returns the end of the statement's source range.
func (s *Iter) End() token.Pos {
	if s.EndP.IsValid() {
		return s.EndP
	}
	return s.P
}
func (*Iter) isStmt() {}

// Program is a complete ΔV program: parameters, the init expression, and
// the statement list.
type Program struct {
	Params []Param
	Init   Expr
	Stmts  []Stmt
}
