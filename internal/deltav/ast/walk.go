package ast

import "fmt"

// Walk calls fn on e and every descendant expression, pre-order. If fn
// returns false the node's children are skipped.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	for _, c := range Children(e) {
		Walk(c, fn)
	}
}

// Children returns e's direct child expressions.
func Children(e Expr) []Expr {
	switch n := e.(type) {
	case *Unary:
		return []Expr{n.X}
	case *Binary:
		return []Expr{n.L, n.R}
	case *MinMax:
		return []Expr{n.A, n.B}
	case *If:
		if n.Else != nil {
			return []Expr{n.Cond, n.Then, n.Else}
		}
		return []Expr{n.Cond, n.Then}
	case *Let:
		return []Expr{n.Init, n.Body}
	case *Local:
		return []Expr{n.Init}
	case *Assign:
		return []Expr{n.Value}
	case *Seq:
		return n.Items
	case *Agg:
		return []Expr{n.Body}
	case *ForNeighbors:
		return []Expr{n.Body}
	case *Send:
		return n.Payload
	case *Delta:
		return []Expr{n.X}
	case *MsgLoop:
		return []Expr{n.Body}
	}
	return nil
}

// Rewrite applies fn bottom-up: children are rewritten first, then fn is
// applied to the (possibly reconstructed) node. fn must return a non-nil
// expression. The input tree is not modified; shared leaves are reused.
// This realizes the paper's context-based rewriting C[e1] ⇝ C[e1']: fn is
// applied at every expression hole.
func Rewrite(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Unary:
		m := *n
		m.X = Rewrite(n.X, fn)
		return fn(&m)
	case *Binary:
		m := *n
		m.L = Rewrite(n.L, fn)
		m.R = Rewrite(n.R, fn)
		return fn(&m)
	case *MinMax:
		m := *n
		m.A = Rewrite(n.A, fn)
		m.B = Rewrite(n.B, fn)
		return fn(&m)
	case *If:
		m := *n
		m.Cond = Rewrite(n.Cond, fn)
		m.Then = Rewrite(n.Then, fn)
		if n.Else != nil {
			m.Else = Rewrite(n.Else, fn)
		}
		return fn(&m)
	case *Let:
		m := *n
		m.Init = Rewrite(n.Init, fn)
		m.Body = Rewrite(n.Body, fn)
		return fn(&m)
	case *Local:
		m := *n
		m.Init = Rewrite(n.Init, fn)
		return fn(&m)
	case *Assign:
		m := *n
		m.Value = Rewrite(n.Value, fn)
		return fn(&m)
	case *Seq:
		m := *n
		m.Items = make([]Expr, len(n.Items))
		for i, it := range n.Items {
			m.Items[i] = Rewrite(it, fn)
		}
		return fn(&m)
	case *Agg:
		m := *n
		m.Body = Rewrite(n.Body, fn)
		return fn(&m)
	case *ForNeighbors:
		m := *n
		m.Body = Rewrite(n.Body, fn)
		return fn(&m)
	case *Send:
		m := *n
		m.Payload = make([]Expr, len(n.Payload))
		for i, p := range n.Payload {
			m.Payload[i] = Rewrite(p, fn)
		}
		return fn(&m)
	case *Delta:
		m := *n
		m.X = Rewrite(n.X, fn)
		return fn(&m)
	case *MsgLoop:
		m := *n
		m.Body = Rewrite(n.Body, fn)
		return fn(&m)
	default:
		// Leaves: copy so that later slot assignment cannot alias.
		return fn(cloneLeaf(e))
	}
}

func cloneLeaf(e Expr) Expr {
	switch n := e.(type) {
	case *IntLit:
		m := *n
		return &m
	case *FloatLit:
		m := *n
		return &m
	case *BoolLit:
		m := *n
		return &m
	case *Infty:
		m := *n
		return &m
	case *GraphSize:
		m := *n
		return &m
	case *VertexID:
		m := *n
		return &m
	case *FixpointRef:
		m := *n
		return &m
	case *Var:
		m := *n
		return &m
	case *Field:
		m := *n
		return &m
	case *NeighborField:
		m := *n
		return &m
	case *EdgeWeight:
		m := *n
		return &m
	case *Cardinality:
		m := *n
		return &m
	case *MsgSlot:
		m := *n
		return &m
	case *MsgIsNull:
		m := *n
		return &m
	case *MsgPrevNull:
		m := *n
		return &m
	case *OldField:
		m := *n
		return &m
	case *Halt:
		m := *n
		return &m
	case *Changed:
		m := *n
		return &m
	case *TableUpdate:
		m := *n
		return &m
	case *TableFold:
		m := *n
		return &m
	}
	panic(fmt.Sprintf("ast: cloneLeaf on non-leaf %T", e))
}

// Clone deep-copies an expression.
func Clone(e Expr) Expr {
	return Rewrite(e, func(x Expr) Expr { return x })
}

// CloneProgram deep-copies a program.
func CloneProgram(p *Program) *Program {
	out := &Program{Params: append([]Param(nil), p.Params...), Init: Clone(p.Init)}
	for _, s := range p.Stmts {
		switch st := s.(type) {
		case *Step:
			out.Stmts = append(out.Stmts, &Step{P: st.P, EndP: st.EndP, Body: Clone(st.Body)})
		case *Iter:
			out.Stmts = append(out.Stmts, &Iter{P: st.P, EndP: st.EndP, Var: st.Var, Body: Clone(st.Body), Until: Clone(st.Until)})
		}
	}
	return out
}
