package ast

import (
	"strings"
	"testing"

	"repro/internal/deltav/types"
)

func sampleExpr() Expr {
	// if a > 1 then { x = min a 2; y = a + b } else { halt }
	return &If{
		Cond: &Binary{Op: ">", L: &Field{Name: "a"}, R: &IntLit{Val: 1}},
		Then: &Seq{Items: []Expr{
			&Assign{Name: "x", Value: &MinMax{A: &Field{Name: "a"}, B: &IntLit{Val: 2}}},
			&Assign{Name: "y", Value: &Binary{Op: "+", L: &Field{Name: "a"}, R: &Field{Name: "b"}}},
		}},
		Else: &Halt{},
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	var kinds []string
	Walk(sampleExpr(), func(e Expr) bool {
		kinds = append(kinds, strings.TrimPrefix(strings.TrimPrefix(
			strings.Split(strings.TrimPrefix(ExprString(e), "("), " ")[0], "*"), "ast."))
		return true
	})
	// If + cond(binary+field+lit) + seq + assign(minmax+field+lit) +
	// assign(binary+field+field) + halt = 14 nodes.
	if len(kinds) != 14 {
		t.Fatalf("visited %d nodes, want 14", len(kinds))
	}
}

func TestWalkPruning(t *testing.T) {
	count := 0
	Walk(sampleExpr(), func(e Expr) bool {
		count++
		_, isSeq := e.(*Seq)
		return !isSeq // prune below the Seq
	})
	// if + cond(3) + seq + else-halt = 6.
	if count != 6 {
		t.Fatalf("visited %d nodes with pruning, want 6", count)
	}
}

func TestRewriteReplacesEveryOccurrence(t *testing.T) {
	e := sampleExpr()
	out := Rewrite(e, func(x Expr) Expr {
		if f, ok := x.(*Field); ok && f.Name == "a" {
			return &Field{Base: f.Base, Name: "z", Slot: f.Slot}
		}
		return x
	})
	s := ExprString(out)
	if strings.Contains(s, "a") && strings.Contains(s, " a ") {
		t.Fatalf("occurrences of a remain: %s", s)
	}
	if got := strings.Count(s, "z"); got != 3 {
		t.Fatalf("z occurs %d times, want 3 in %q", got, s)
	}
	// Original untouched (C[e1] ⇝ C[e1'] builds a new context).
	if strings.Contains(ExprString(e), "z") {
		t.Fatal("Rewrite mutated its input")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := sampleExpr()
	c := Clone(e)
	if ExprString(c) != ExprString(e) {
		t.Fatalf("clone differs:\n%s\nvs\n%s", ExprString(c), ExprString(e))
	}
	c.(*If).Cond.(*Binary).L.(*Field).Name = "mutated"
	if strings.Contains(ExprString(e), "mutated") {
		t.Fatal("clone shares nodes with the original")
	}
}

func TestChildrenCoverage(t *testing.T) {
	cases := []struct {
		e    Expr
		want int
	}{
		{&Unary{Op: "-", X: &IntLit{}}, 1},
		{&Binary{Op: "+", L: &IntLit{}, R: &IntLit{}}, 2},
		{&MinMax{A: &IntLit{}, B: &IntLit{}}, 2},
		{&If{Cond: &BoolLit{}, Then: &IntLit{}}, 2},
		{&If{Cond: &BoolLit{}, Then: &IntLit{}, Else: &IntLit{}}, 3},
		{&Let{Init: &IntLit{}, Body: &IntLit{}}, 2},
		{&Local{Init: &IntLit{}}, 1},
		{&Assign{Value: &IntLit{}}, 1},
		{&Seq{Items: []Expr{&IntLit{}, &IntLit{}, &IntLit{}}}, 3},
		{&Agg{Body: &NeighborField{}}, 1},
		{&ForNeighbors{Body: &Halt{}}, 1},
		{&Send{Payload: []Expr{&Delta{X: &Field{}}, &Field{}}}, 2},
		{&Delta{X: &Field{}}, 1},
		{&MsgLoop{Body: &Halt{}}, 1},
		{&IntLit{}, 0},
		{&Changed{}, 0},
		{&TableUpdate{}, 0},
		{&TableFold{}, 0},
	}
	for i, tc := range cases {
		if got := len(Children(tc.e)); got != tc.want {
			t.Errorf("case %d (%T): children = %d, want %d", i, tc.e, got, tc.want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !AggProd.Multiplicative() || !AggAnd.Multiplicative() || !AggOr.Multiplicative() {
		t.Fatal("*, &&, || must be multiplicative")
	}
	if AggSum.Multiplicative() || AggMin.Multiplicative() {
		t.Fatal("+ and min are not multiplicative")
	}
	if !AggMin.Idempotent() || !AggMax.Idempotent() || AggSum.Idempotent() {
		t.Fatal("idempotent predicate wrong")
	}
	for op, want := range map[AggOp]string{
		AggSum: "+", AggProd: "*", AggMin: "min", AggMax: "max", AggOr: "||", AggAnd: "&&",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	for d, want := range map[GraphDir]string{DirIn: "#in", DirOut: "#out", DirNeighbors: "#neighbors"} {
		if d.String() != want {
			t.Errorf("dir %d = %q, want %q", d, d.String(), want)
		}
	}
}

func TestTypeByteSizes(t *testing.T) {
	if types.Bool.ByteSize() != 1 || types.Int.ByteSize() != 8 || types.Float.ByteSize() != 8 {
		t.Fatal("byte sizes wrong")
	}
	if types.Unit.ByteSize() != 0 || types.Invalid.ByteSize() != 0 {
		t.Fatal("unit/invalid must be zero-sized")
	}
	if !types.Int.Numeric() || !types.Float.Numeric() || types.Bool.Numeric() {
		t.Fatal("Numeric predicate wrong")
	}
	for ty, want := range map[types.Type]string{
		types.Int: "int", types.Bool: "bool", types.Float: "float", types.Unit: "unit", types.Invalid: "invalid",
	} {
		if ty.String() != want {
			t.Errorf("%v = %q", ty, want)
		}
	}
}

func TestPrintParenthesization(t *testing.T) {
	// (1 + 2) * 3 must keep its parens; 1 + (2 * 3) must not add them.
	e1 := &Binary{Op: "*",
		L: &Binary{Op: "+", L: &IntLit{Val: 1}, R: &IntLit{Val: 2}},
		R: &IntLit{Val: 3}}
	if got := ExprString(e1); got != "(1 + 2) * 3" {
		t.Fatalf("got %q", got)
	}
	e2 := &Binary{Op: "+",
		L: &IntLit{Val: 1},
		R: &Binary{Op: "*", L: &IntLit{Val: 2}, R: &IntLit{Val: 3}}}
	if got := ExprString(e2); got != "1 + 2 * 3" {
		t.Fatalf("got %q", got)
	}
	// Unary binding.
	e3 := &Unary{Op: "-", X: &Binary{Op: "+", L: &IntLit{Val: 1}, R: &IntLit{Val: 2}}}
	if got := ExprString(e3); got != "-(1 + 2)" {
		t.Fatalf("got %q", got)
	}
}

func TestPrintFloatsRoundTrippable(t *testing.T) {
	for _, v := range []float64{0, 1, 0.85, 1e-9, 2.5e10} {
		s := ExprString(&FloatLit{Val: v})
		if !strings.ContainsAny(s, ".eE") {
			t.Errorf("float literal %v printed as %q (would reparse as int)", v, s)
		}
	}
}
