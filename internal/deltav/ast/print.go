package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a program in concrete ΔV syntax. Programs containing only
// user-visible forms re-parse to an equal tree; compiler-internal forms are
// rendered in the paper's pseudo-syntax (send, halt, for(m : messages), Δ)
// and are for human consumption (golden tests, -emit output).
func Print(p *Program) string {
	var b strings.Builder
	for _, pm := range p.Params {
		fmt.Fprintf(&b, "param %s : %s = %s;\n", pm.Name, pm.DeclType, ExprString(pm.Default))
	}
	b.WriteString("init {\n")
	writeBody(&b, p.Init, 1)
	b.WriteString("\n}")
	for _, s := range p.Stmts {
		b.WriteString(";\n")
		switch st := s.(type) {
		case *Step:
			b.WriteString("step {\n")
			writeBody(&b, st.Body, 1)
			b.WriteString("\n}")
		case *Iter:
			fmt.Fprintf(&b, "iter %s {\n", st.Var)
			writeBody(&b, st.Body, 1)
			b.WriteString("\n} until {\n")
			writeBody(&b, st.Until, 1)
			b.WriteString("\n}")
		}
	}
	b.WriteString("\n")
	return b.String()
}

// ExprString renders a single expression on one line.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0, false)
	return b.String()
}

func writeBody(b *strings.Builder, e Expr, depth int) {
	if seq, ok := e.(*Seq); ok {
		for i, it := range seq.Items {
			if i > 0 {
				b.WriteString(";\n")
			}
			indent(b, depth)
			writeExpr(b, it, depth, true)
		}
		return
	}
	indent(b, depth)
	writeExpr(b, e, depth, true)
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// prec returns a binding strength for parenthesization.
func binPrec(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "<", ">", "<=", ">=", "==", "!=":
		return 3
	case "+", "-":
		return 4
	case "*", "/":
		return 5
	}
	return 0
}

func writeExpr(b *strings.Builder, e Expr, depth int, stmtPos bool) {
	switch n := e.(type) {
	case *IntLit:
		b.WriteString(strconv.FormatInt(n.Val, 10))
	case *FloatLit:
		s := strconv.FormatFloat(n.Val, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		b.WriteString(s)
	case *BoolLit:
		b.WriteString(strconv.FormatBool(n.Val))
	case *Infty:
		b.WriteString("infty")
	case *GraphSize:
		b.WriteString("graphSize")
	case *VertexID:
		b.WriteString("id")
	case *FixpointRef:
		b.WriteString("fixpoint")
	case *Var:
		b.WriteString(n.Name)
	case *Field:
		b.WriteString(n.Name)
	case *Unary:
		if n.Op == "not" {
			b.WriteString("not ")
		} else {
			b.WriteString(n.Op)
		}
		writeChild(b, n.X, 6, depth)
	case *Binary:
		p := binPrec(n.Op)
		writeChild(b, n.L, p, depth)
		fmt.Fprintf(b, " %s ", n.Op)
		writeChild(b, n.R, p+1, depth)
	case *MinMax:
		if n.IsMax {
			b.WriteString("max ")
		} else {
			b.WriteString("min ")
		}
		writeChild(b, n.A, 7, depth)
		b.WriteString(" ")
		writeChild(b, n.B, 7, depth)
	case *If:
		b.WriteString("if ")
		writeExpr(b, n.Cond, depth, false)
		b.WriteString(" then {\n")
		writeBody(b, n.Then, depth+1)
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString("}")
		if n.Else != nil {
			b.WriteString(" else {\n")
			writeBody(b, n.Else, depth+1)
			b.WriteString("\n")
			indent(b, depth)
			b.WriteString("}")
		}
	case *Let:
		fmt.Fprintf(b, "let %s : %s = ", n.Name, n.DeclType)
		writeExpr(b, n.Init, depth, false)
		b.WriteString(" in\n")
		writeBody(b, n.Body, depth)
	case *Local:
		fmt.Fprintf(b, "local %s : %s = ", n.Name, n.DeclType)
		writeExpr(b, n.Init, depth, false)
	case *Assign:
		fmt.Fprintf(b, "%s = ", n.Name)
		writeExpr(b, n.Value, depth, false)
	case *Seq:
		// A nested sequence in expression position.
		b.WriteString("{\n")
		writeBody(b, n, depth+1)
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString("}")
	case *Agg:
		fmt.Fprintf(b, "%s [ ", n.Op)
		writeExpr(b, n.Body, depth, false)
		fmt.Fprintf(b, " | %s <- %s ]", n.BindVar, n.G)
	case *NeighborField:
		fmt.Fprintf(b, "%s.%s", n.Var, n.Name)
	case *EdgeWeight:
		b.WriteString("ew")
	case *Cardinality:
		fmt.Fprintf(b, "|%s|", n.G)

	// Internal forms, paper-style pseudo-syntax.
	case *ForNeighbors:
		fmt.Fprintf(b, "for (%s : %s) {\n", n.Var, n.G)
		writeBody(b, n.Body, depth+1)
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString("}")
	case *Send:
		fmt.Fprintf(b, "send(%s", n.DestVar)
		for _, p := range n.Payload {
			b.WriteString(", ")
			writeExpr(b, p, depth, false)
		}
		b.WriteString(")")
	case *Delta:
		fmt.Fprintf(b, "delta<%d>(", n.Site)
		writeExpr(b, n.X, depth, false)
		b.WriteString(")")
	case *MsgLoop:
		fmt.Fprintf(b, "for (m : messages<%d>) {\n", n.Group)
		writeBody(b, n.Body, depth+1)
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString("}")
	case *MsgSlot:
		fmt.Fprintf(b, "m.slot%d", n.Site)
	case *MsgIsNull:
		fmt.Fprintf(b, "is_nullary<%d>(m)", n.Site)
	case *MsgPrevNull:
		fmt.Fprintf(b, "prev_nullary<%d>(m)", n.Site)
	case *OldField:
		fmt.Fprintf(b, "old(%s)", n.Name)
	case *Halt:
		b.WriteString("halt")
	case *Changed:
		fmt.Fprintf(b, "changed(%s)", n.Name)
	case *TableUpdate:
		fmt.Fprintf(b, "table_update<%d>(messages)", n.Group)
	case *TableFold:
		fmt.Fprintf(b, "table_fold<%d>()", n.Site)
	default:
		fmt.Fprintf(b, "<?%T>", e)
	}
	_ = stmtPos
}

// writeChild writes a sub-expression, parenthesizing when its own binding
// strength is weaker than the surrounding context needs.
func writeChild(b *strings.Builder, e Expr, need int, depth int) {
	own := 8
	switch n := e.(type) {
	case *Binary:
		own = binPrec(n.Op)
	case *Unary:
		own = 6
	case *MinMax:
		own = 6
	case *If, *Let, *Seq, *Assign:
		own = 0
	default:
		_ = n
	}
	if own < need {
		b.WriteString("(")
		writeExpr(b, e, depth, false)
		b.WriteString(")")
		return
	}
	writeExpr(b, e, depth, false)
}
