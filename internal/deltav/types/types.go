// Package types defines the ΔV type universe: int, bool, float (paper
// Fig. 3), plus Unit for statement-position expressions.
package types

// Type is a ΔV type.
type Type int

// The ΔV types.
const (
	Invalid Type = iota
	Int
	Bool
	Float
	Unit // the "type" of assignments, sequences and other statements
)

// String returns the surface spelling.
func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Bool:
		return "bool"
	case Float:
		return "float"
	case Unit:
		return "unit"
	}
	return "invalid"
}

// Numeric reports whether t is int or float.
func (t Type) Numeric() bool { return t == Int || t == Float }

// ByteSize returns the bytes the ΔV-to-Pregel compiler accounts for a field
// of this type in the vertex state (Table 2 accounting): 8 for numeric
// scalars, 1 for bool.
func (t Type) ByteSize() int {
	switch t {
	case Bool:
		return 1
	case Int, Float:
		return 8
	}
	return 0
}
