// Package deltav groups the ΔV language implementation: the lexical and
// syntactic front end (token, lexer, ast, parser), the type checker
// (typer), the execution runtime (vm) and the Go backend (codegen). The
// transformation passes themselves — the paper's contribution — live in
// internal/core.
//
// # The ΔV language
//
// ΔV (paper Fig. 3) is a small pull-based vertex-centric query language.
// A program is
//
//	param*  init { … } ; stmt (';' stmt)*
//
// where each statement is either step{e} (one superstep) or
// iter x {e} until {cond} (repeat e, with x counting iterations from 1).
// The init block runs once per vertex before any communication and is the
// only place vertex-state fields may be declared:
//
//	local pr : float = 1.0 / graphSize
//
// # Expressions
//
//	let x : τ = e in e        lexical binding (binds the rest of a block)
//	x = e                     assignment to a field or let variable
//	if e then e [else e]      branches may be blocks: if c then { …; … }
//	⊞ [ e | u <- g ]          aggregation, ⊞ ∈ {+ * min max || &&},
//	                          g ∈ {#in #out #neighbors}
//	u.f                       the bound neighbour's field (only inside
//	                          an aggregation body)
//	ew                        the connecting edge's weight (ditto)
//	|g|                       neighbour count
//	min e e / max e e         binary prefix form
//	graphSize, id, infty      |V|, own vertex id, +∞
//	fixpoint                  (until only) no vertex changed state during
//	                          the iteration
//
// Types are int, bool, float with implicit int→float widening at bindings
// and assignments; '/' is always real-valued (so 1/graphSize is a
// fraction, as the paper's PageRank requires).
//
// # Static rules the compilation scheme relies on
//
// Aggregation bodies may only read the bound neighbour's fields, ew,
// literals, graphSize and params — this is what makes Δ-messages locally
// determinable at the sender (§4.2.2). Aggregations may not appear in
// init{} or until{}. Until conditions are master-evaluable: only the
// iteration counter, fixpoint, params and constants. #neighbors requires
// an undirected graph; on undirected graphs #in and #out mean #neighbors.
//
// # Execution model
//
// Compiled programs run as a master-driven state machine over the Pregel
// engine: each phase begins with a priming superstep that performs the
// initial full-value sends (§6.1), then body supersteps evaluate the
// transformed statement with messages applied to memoized accumulators.
// With the full pipeline (core.Incremental) vertices halt by default and
// wake on messages, so quiescent regions cost nothing and a globally
// quiescent iter is fast-forwarded to its exit condition.
package deltav
