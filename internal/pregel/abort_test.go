package pregel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
)

// withGoroutineCheck runs fn and then verifies that every goroutine the run
// started has exited: the engine's worker pool must drain cleanly on every
// abort path, never leaking a goroutine blocked on a barrier. Goroutine
// counts settle asynchronously after RunContext returns (workers exit after
// acknowledging the stop broadcast), so the check polls briefly.
func withGoroutineCheck(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// cancelHookProgram spins forever; the test cancels it from outside.
type cancelSpinProgram struct{}

func (cancelSpinProgram) Init(ctx *Context[sumVal, float64]) { ctx.BroadcastOut(1) }
func (cancelSpinProgram) Compute(ctx *Context[sumVal, float64], msgs []float64) {
	ctx.BroadcastOut(1)
}

func TestAbortCancelledContext(t *testing.T) {
	g := graph.Cycle(64, true)
	withGoroutineCheck(t, func() {
		ctx, cancel := context.WithCancel(context.Background())
		e := New[sumVal, float64](g, Options{Workers: 4})
		// Cancel mid-run, from the master hook after a few supersteps, so
		// the abort provably lands between barriers of a live run.
		e.SetMasterHook(func(mc *MasterContext) {
			if mc.Superstep() == 3 {
				cancel()
			}
		})
		stats, err := e.RunContext(ctx, cancelSpinProgram{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if stats == nil {
			t.Fatal("aborted run returned nil Stats")
		}
		if !stats.Aborted || stats.AbortReason == "" {
			t.Fatalf("stats not marked aborted: %+v", stats)
		}
		if stats.Supersteps < 4 {
			t.Fatalf("partial stats lost: %d supersteps recorded, want >= 4", stats.Supersteps)
		}
		if len(stats.Steps) != stats.Supersteps {
			t.Fatalf("Steps has %d entries, Supersteps = %d", len(stats.Steps), stats.Supersteps)
		}
		if stats.Duration <= 0 {
			t.Fatal("aborted run has zero Duration")
		}
	})
}

func TestAbortPreCancelledContext(t *testing.T) {
	g := graph.Cycle(16, true)
	withGoroutineCheck(t, func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		e := New[sumVal, float64](g, Options{Workers: 2})
		stats, err := e.RunContext(ctx, cancelSpinProgram{})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if stats == nil || !stats.Aborted {
			t.Fatalf("want non-nil aborted stats, got %+v", stats)
		}
		if stats.Supersteps != 0 || stats.Steps == nil {
			t.Fatalf("pre-cancelled run: supersteps=%d steps=%v", stats.Supersteps, stats.Steps)
		}
	})
}

func TestAbortDeadline(t *testing.T) {
	g := graph.Cycle(64, true)
	t.Run("options-deadline", func(t *testing.T) {
		withGoroutineCheck(t, func() {
			e := New[sumVal, float64](g, Options{
				Workers:  4,
				Deadline: time.Now().Add(10 * time.Millisecond),
			})
			stats, err := e.Run(cancelSpinProgram{})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if stats == nil || !stats.Aborted {
				t.Fatalf("want non-nil aborted stats, got %+v", stats)
			}
		})
	})
	t.Run("context-deadline", func(t *testing.T) {
		withGoroutineCheck(t, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
			defer cancel()
			e := New[sumVal, float64](g, Options{Workers: 4})
			stats, err := e.RunContext(ctx, cancelSpinProgram{})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if stats == nil || !stats.Aborted {
				t.Fatalf("want non-nil aborted stats, got %+v", stats)
			}
		})
	})
	t.Run("step-timeout", func(t *testing.T) {
		withGoroutineCheck(t, func() {
			e := New[sumVal, float64](g, Options{Workers: 4, StepTimeout: time.Nanosecond})
			stats, err := e.Run(cancelSpinProgram{})
			if !errors.Is(err, ErrStepTimeout) {
				t.Fatalf("err = %v, want ErrStepTimeout", err)
			}
			if stats == nil || !stats.Aborted {
				t.Fatalf("want non-nil aborted stats, got %+v", stats)
			}
			if !strings.Contains(stats.AbortReason, "StepTimeout") {
				t.Fatalf("AbortReason = %q, want it to name the step timeout", stats.AbortReason)
			}
		})
	})
}

// panicProgram panics inside Compute on one specific vertex at one specific
// superstep; every other vertex keeps the computation busy.
type panicProgram struct {
	vertex VertexID
	step   int
}

func (p panicProgram) Init(ctx *Context[sumVal, float64]) {
	if p.step == 0 && ctx.ID() == p.vertex {
		panic(fmt.Sprintf("boom at vertex %d", p.vertex))
	}
	ctx.BroadcastOut(1)
}
func (p panicProgram) Compute(ctx *Context[sumVal, float64], msgs []float64) {
	if ctx.Superstep() == p.step && ctx.ID() == p.vertex {
		panic(fmt.Sprintf("boom at vertex %d", p.vertex))
	}
	ctx.BroadcastOut(1)
}

func TestAbortPanickingCompute(t *testing.T) {
	g := graph.Cycle(64, true)
	for _, sched := range []Scheduler{ScanAll, WorkQueue} {
		t.Run(schedName(sched), func(t *testing.T) {
			withGoroutineCheck(t, func() {
				e := New[sumVal, float64](g, Options{Workers: 4, Scheduler: sched})
				stats, err := e.Run(panicProgram{vertex: 17, step: 2})
				if err == nil {
					t.Fatal("panicking Compute returned nil error")
				}
				var re *RunError
				if !errors.As(err, &re) {
					t.Fatalf("err = %T %v, want *RunError", err, err)
				}
				if re.Superstep != 2 {
					t.Fatalf("RunError.Superstep = %d, want 2", re.Superstep)
				}
				if re.Phase != "compute" {
					t.Fatalf("RunError.Phase = %q, want compute", re.Phase)
				}
				if !re.HasVertex || re.Vertex != 17 {
					t.Fatalf("RunError vertex attribution = (%v, %d), want (true, 17)", re.HasVertex, re.Vertex)
				}
				// With block partitioning vertex 17 of 64 over 4 workers
				// (block 16) lives on worker 1.
				if re.Worker != 1 {
					t.Fatalf("RunError.Worker = %d, want 1", re.Worker)
				}
				if s, ok := re.Value.(string); !ok || !strings.Contains(s, "boom") {
					t.Fatalf("RunError.Value = %v, want the panic payload", re.Value)
				}
				if len(re.Stack) == 0 {
					t.Fatal("RunError.Stack is empty")
				}
				if !strings.Contains(re.Error(), "vertex 17") {
					t.Fatalf("RunError.Error() = %q, want vertex attribution", re.Error())
				}
				if stats == nil || !stats.Aborted {
					t.Fatalf("want non-nil aborted stats, got %+v", stats)
				}
				// Supersteps 0 and 1 completed before the panic.
				if stats.Supersteps != 2 {
					t.Fatalf("partial stats: %d supersteps, want 2", stats.Supersteps)
				}
			})
		})
	}
}

func TestAbortPanickingInit(t *testing.T) {
	g := graph.Cycle(8, true)
	withGoroutineCheck(t, func() {
		e := New[sumVal, float64](g, Options{Workers: 2})
		stats, err := e.Run(panicProgram{vertex: 3, step: 0})
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("err = %v, want *RunError", err)
		}
		if re.Superstep != 0 || !re.HasVertex || re.Vertex != 3 {
			t.Fatalf("RunError = %+v, want superstep 0 vertex 3", re)
		}
		if stats.Supersteps != 0 {
			t.Fatalf("supersteps = %d, want 0", stats.Supersteps)
		}
	})
}

// panicErrProgram panics with an error value, which RunError must expose
// through Unwrap so errors.Is works across the panic boundary.
type panicErrProgram struct{ err error }

func (p panicErrProgram) Init(ctx *Context[sumVal, float64])                    { panic(p.err) }
func (p panicErrProgram) Compute(ctx *Context[sumVal, float64], msgs []float64) {}

func TestRunErrorUnwrapsPanicErrorValue(t *testing.T) {
	sentinel := errors.New("user compute failure")
	g := graph.Path(4, true)
	withGoroutineCheck(t, func() {
		e := New[sumVal, float64](g, Options{Workers: 2})
		_, err := e.Run(panicErrProgram{err: sentinel})
		if !errors.Is(err, sentinel) {
			t.Fatalf("errors.Is through RunError failed: %v", err)
		}
	})
}

// panicHook exercises panic containment on the master goroutine.
func TestAbortPanickingMasterHook(t *testing.T) {
	g := graph.Cycle(16, true)
	withGoroutineCheck(t, func() {
		e := New[sumVal, float64](g, Options{Workers: 2})
		e.SetMasterHook(func(mc *MasterContext) {
			if mc.Superstep() == 1 {
				panic("hook boom")
			}
		})
		stats, err := e.Run(cancelSpinProgram{})
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("err = %v, want *RunError", err)
		}
		if re.Worker != MasterWorker || re.Phase != "master" || re.Superstep != 1 {
			t.Fatalf("RunError = %+v, want master-phase superstep 1", re)
		}
		// Supersteps 0 and 1 completed (the hook runs after the step).
		if stats == nil || stats.Supersteps != 2 {
			t.Fatalf("stats = %+v, want 2 completed supersteps", stats)
		}
	})
}

// TestAbortStatsStringMentionsReason pins the Stats.String abort rendering
// used by dvrun and the bench harness.
func TestAbortStatsStringMentionsReason(t *testing.T) {
	s := Stats{Supersteps: 3, Aborted: true, AbortReason: "context canceled"}
	if out := s.String(); !strings.Contains(out, "aborted=") || !strings.Contains(out, "context canceled") {
		t.Fatalf("Stats.String() = %q, want abort reason", out)
	}
}
