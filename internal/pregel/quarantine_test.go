package pregel

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
)

// quarantineProgram runs a fixed number of broadcast rounds on a cycle, but
// one victim vertex broadcasts and THEN panics at one superstep — so the
// test can prove the quarantine path retracts the partial sends of the
// panicking call, not just the calls that would have followed it.
type quarantineProgram struct {
	victim VertexID
	step   int
	rounds int
}

func (p quarantineProgram) Init(ctx *Context[sumVal, float64]) {
	ctx.BroadcastOut(1)
	if p.step == 0 && ctx.ID() == p.victim {
		panic("poisoned init")
	}
}

func (p quarantineProgram) Compute(ctx *Context[sumVal, float64], msgs []float64) {
	for _, m := range msgs {
		ctx.Value().Sum += m
	}
	if ctx.Superstep() < p.rounds {
		ctx.BroadcastOut(1)
	} else {
		ctx.VoteToHalt()
	}
	if ctx.Superstep() == p.step && ctx.ID() == p.victim {
		panic("poisoned compute")
	}
}

func TestQuarantineSkipsPanickingVertex(t *testing.T) {
	const n, victim, step, rounds = 64, 17, 2, 4
	g := graph.Cycle(n, true)
	for _, sched := range []Scheduler{ScanAll, WorkQueue} {
		t.Run(schedName(sched), func(t *testing.T) {
			withGoroutineCheck(t, func() {
				e := New[sumVal, float64](g, Options{Workers: 4, Scheduler: sched, Quarantine: true})
				stats, err := e.Run(quarantineProgram{victim: victim, step: step, rounds: rounds})
				if err != nil {
					t.Fatalf("quarantined run failed: %v", err)
				}
				if stats.Aborted {
					t.Fatalf("quarantined run reported aborted: %+v", stats)
				}
				if stats.Quarantined != 1 {
					t.Fatalf("Quarantined = %d, want 1", stats.Quarantined)
				}
				if len(stats.QuarantinedVertices) != 1 || stats.QuarantinedVertices[0] != victim {
					t.Fatalf("QuarantinedVertices = %v, want [%d]", stats.QuarantinedVertices, victim)
				}
				// The victim folded in its inbox at supersteps 1 and 2
				// before panicking, then froze.
				if got := e.Value(victim).Sum; got != 2 {
					t.Fatalf("victim value = %g, want 2", got)
				}
				// The victim's successor on the cycle receives the victim's
				// sends from supersteps 0 and 1 only: the superstep-2
				// broadcast happened before the panic but must be rolled
				// back, and the removed victim never runs again.
				if got := e.Value(victim + 1).Sum; got != 2 {
					t.Fatalf("successor value = %g, want 2 (partial send not retracted?)", got)
				}
				// A vertex far from the victim sees all rounds: messages
				// arrive at supersteps 1..rounds.
				if got := e.Value(victim + 10).Sum; got != rounds {
					t.Fatalf("distant value = %g, want %d", got, rounds)
				}
			})
		})
	}
}

func TestQuarantineInitPanic(t *testing.T) {
	g := graph.Cycle(8, true)
	withGoroutineCheck(t, func() {
		e := New[sumVal, float64](g, Options{Workers: 2, Quarantine: true})
		stats, err := e.Run(quarantineProgram{victim: 3, step: 0, rounds: 2})
		if err != nil {
			t.Fatalf("quarantined init panic aborted the run: %v", err)
		}
		if stats.Quarantined != 1 || stats.QuarantinedVertices[0] != 3 {
			t.Fatalf("stats = %+v, want vertex 3 quarantined", stats)
		}
		if got := e.Value(3).Sum; got != 0 {
			t.Fatalf("victim value = %g, want 0 (never computed)", got)
		}
		// Vertex 4 misses vertex 3's (retracted) init broadcast but gets
		// the superstep-1 round from nobody — 3 is removed — so only the
		// messages 3 would have sent are gone.
		if got := e.Value(4).Sum; got != 0 {
			t.Fatalf("successor value = %g, want 0", got)
		}
		if got := e.Value(5).Sum; got != 2 {
			t.Fatalf("bystander value = %g, want 2", got)
		}
	})
}

// Stats.String should surface the quarantine count so operators see it in
// logs without digging into the struct.
func TestQuarantineStatsString(t *testing.T) {
	s := Stats{Supersteps: 3, Quarantined: 2}
	if got := s.String(); !strings.Contains(got, "quarantined=2") {
		t.Fatalf("Stats.String() = %q, want quarantined=2", got)
	}
}

// With Quarantine off the existing abort contract is unchanged.
func TestQuarantineOffStillAborts(t *testing.T) {
	g := graph.Cycle(16, true)
	withGoroutineCheck(t, func() {
		e := New[sumVal, float64](g, Options{Workers: 2})
		_, err := e.Run(panicProgram{vertex: 5, step: 1})
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("err = %v, want *RunError with Quarantine off", err)
		}
	})
}

// Panics outside a vertex program are not attributable to one vertex and
// must still abort even under Quarantine: here, a master hook.
func TestQuarantineMasterHookStillAborts(t *testing.T) {
	g := graph.Cycle(16, true)
	withGoroutineCheck(t, func() {
		e := New[sumVal, float64](g, Options{Workers: 2, Quarantine: true})
		e.SetMasterHook(func(mc *MasterContext) {
			if mc.Superstep() == 1 {
				panic("hook boom")
			}
		})
		_, err := e.Run(sumAllProgram{rounds: 5})
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("err = %v, want *RunError from master hook under Quarantine", err)
		}
	})
}

// A panicking combiner runs in the worker's combine phase, outside any one
// vertex call, so Quarantine must not swallow it.
func TestQuarantineCombinerStillAborts(t *testing.T) {
	g := graph.Complete(8, true)
	withGoroutineCheck(t, func() {
		e := New[sumVal, float64](g, Options{Workers: 2, Quarantine: true})
		e.SetCombiner(CombinerFunc[float64](func(a, b float64) float64 { panic("combiner boom") }))
		_, err := e.Run(sumAllProgram{rounds: 3})
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("err = %v, want *RunError from combiner under Quarantine", err)
		}
	})
}
