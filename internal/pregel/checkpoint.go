package pregel

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// This file is the engine side of checkpoint/restore: serializing a
// consistent barrier cut into the reusable Snapshot held by the Engine, and
// rehydrating a fresh Engine from a decoded Snapshot before its superstep
// loop starts. The wire format and codecs live in snapshot.go.

// SetValueCodec installs the codec used to serialize vertex values in
// snapshots. When checkpointing or resuming is requested and no codec was
// installed, the engine derives one with PODCodec[V]; types containing
// pointers need an explicit codec.
func (e *Engine[V, M]) SetValueCodec(c ValueCodec[V]) { e.valCodec = c }

// SetMessageCodec installs the codec used to serialize in-flight messages
// in snapshots; derived with PODCodec[M] when absent, as for SetValueCodec.
func (e *Engine[V, M]) SetMessageCodec(c ValueCodec[M]) { e.msgCodec = c }

// Globals returns the current globals value (as installed by SetGlobals or
// replaced by the master hook). Checkpoint Extra callbacks use it to fold
// master-side state into the snapshot.
func (e *Engine[V, M]) Globals() any { return e.globals }

// ensureCodecs derives POD codecs for any codec the caller did not install.
func (e *Engine[V, M]) ensureCodecs() error {
	if e.valCodec == nil {
		c, err := PODCodec[V]()
		if err != nil {
			return fmt.Errorf("pregel: checkpointing needs a value codec (SetValueCodec): %w", err)
		}
		e.valCodec = c
	}
	if e.msgCodec == nil {
		c, err := PODCodec[M]()
		if err != nil {
			return fmt.Errorf("pregel: checkpointing needs a message codec (SetMessageCodec): %w", err)
		}
		e.msgCodec = c
	}
	return nil
}

// capture serializes the barrier state of the given completed superstep and
// writes it to the configured Dir and/or Sink. It must only be called at a
// barrier (all workers parked): it walks worker inboxes and queues without
// synchronization. The Snapshot and encode buffer are reused across
// captures, so a warmed-up capture allocates only for buffer growth and the
// file write itself.
func (e *Engine[V, M]) capture(superstep int, done bool) error {
	n := e.g.NumVertices()
	s := &e.snap
	s.Version = SnapshotVersion
	s.Fingerprint = e.g.Fingerprint()
	s.Superstep = superstep
	s.NumVertices = n
	s.ActivateAll = e.activateAll
	s.Stopped = e.stopped
	s.Done = done
	s.WorkQueue = e.opts.Scheduler == WorkQueue
	s.Aggs = s.Aggs[:0]
	for _, a := range e.aggList {
		s.Aggs = append(s.Aggs, a.value)
	}
	// The bitsets are aliased, not copied: AppendTo only reads them and the
	// workers are parked.
	s.Active = e.active
	s.Removed = e.removed
	s.Queue = s.Queue[:0]
	for _, wk := range e.workers {
		s.Queue = append(s.Queue, wk.cur...)
	}
	if len(s.InboxCounts) != n {
		s.InboxCounts = make([]uint32, n)
	}
	s.Inbox = s.Inbox[:0]
	for u := 0; u < n; u++ {
		wk := e.workers[e.ownerOf(VertexID(u))]
		li := e.slotOf(VertexID(u)) - wk.lo
		lo, hi := wk.msgOff[li], wk.msgOff[li+1]
		s.InboxCounts[u] = uint32(hi - lo)
		for _, m := range wk.msgBuf[lo:hi] {
			s.Inbox = e.msgCodec.AppendValue(s.Inbox, m)
		}
	}
	s.Values = s.Values[:0]
	for i := range e.values {
		s.Values = e.valCodec.AppendValue(s.Values, e.values[i])
	}
	s.Extra = s.Extra[:0]
	if fn := e.opts.Checkpoint.Extra; fn != nil {
		s.Extra = fn(s.Extra)
	}
	e.snapBuf = s.AppendTo(e.snapBuf[:0])
	if w := e.opts.Checkpoint.Sink; w != nil {
		if _, err := w.Write(e.snapBuf); err != nil {
			return fmt.Errorf("pregel: checkpoint sink: %w", err)
		}
	}
	switch dir := e.opts.Checkpoint.Dir; {
	case dir != "" && e.opts.Checkpoint.Incremental:
		// Chain mode: append a base or DVSNPD delta record instead of a
		// fresh full snapshot file; the writer diffs against the previous
		// capture, so a converged-then-repaired run's records carry only
		// the touched frontier's bytes.
		if e.chain == nil {
			w, err := NewChainWriter(dir, e.opts.Checkpoint.RebaseEvery)
			if err != nil {
				return fmt.Errorf("pregel: checkpoint chain: %w", err)
			}
			e.chain = w
		}
		path, size, err := e.chain.AppendSnapshot(s)
		if err != nil {
			return fmt.Errorf("pregel: checkpoint chain: %w", err)
		}
		e.stats.CheckpointPath = path
		e.stats.CheckpointBytes += int64(size)
	case dir != "":
		// Temp-file + rename so a crash mid-write (a sharded peer can be
		// SIGKILLed at any point) never leaves a torn snapshot behind.
		path := filepath.Join(dir, SnapshotFileName(superstep))
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, e.snapBuf, 0o644); err != nil {
			return fmt.Errorf("pregel: checkpoint: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("pregel: checkpoint: %w", err)
		}
		e.stats.CheckpointPath = path
		e.stats.CheckpointBytes += int64(len(e.snapBuf))
	default:
		e.stats.CheckpointBytes += int64(len(e.snapBuf))
	}
	// Record which superstep the snapshot just written captured: after an
	// abort, CheckpointPath can name a snapshot many supersteps behind
	// Stats.Supersteps (e.g. the last periodic one before a panic), and
	// resume tooling must not assume the two agree.
	e.stats.CheckpointSuperstep = superstep
	return nil
}

// restore rehydrates the engine from a barrier snapshot, before the
// superstep loop starts. It validates that the snapshot belongs to this
// run's graph and aggregator registration and rebuilds the per-worker
// inboxes and work queues exactly as they stood at the snapshot barrier —
// including per-vertex message order and queue order, which is what makes
// resumed float reductions bitwise identical to the uninterrupted run.
func (e *Engine[V, M]) restore(s *Snapshot) error {
	n := e.g.NumVertices()
	if s.Version != SnapshotVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrSnapshotVersion, s.Version, SnapshotVersion)
	}
	if fp := e.g.Fingerprint(); s.Fingerprint != fp {
		return fmt.Errorf("%w: graph fingerprint %016x, snapshot was taken on %016x",
			ErrSnapshotMismatch, fp, s.Fingerprint)
	}
	if s.NumVertices != n {
		return fmt.Errorf("%w: graph has %d vertices, snapshot has %d",
			ErrSnapshotMismatch, n, s.NumVertices)
	}
	if len(s.Aggs) != len(e.aggList) {
		return fmt.Errorf("%w: run registers %d aggregators, snapshot has %d",
			ErrSnapshotMismatch, len(e.aggList), len(s.Aggs))
	}
	// The queue section is scheduler-specific: a ScanAll snapshot has no
	// queue for WorkQueue to run (it would silently truncate the
	// computation), and the schedulers' active-set semantics differ.
	if wq := e.opts.Scheduler == WorkQueue; s.WorkQueue != wq {
		schedName := func(q bool) string {
			if q {
				return "work-queue"
			}
			return "scan-all"
		}
		return fmt.Errorf("%w: run uses the %s scheduler, snapshot was taken under %s",
			ErrSnapshotMismatch, schedName(wq), schedName(s.WorkQueue))
	}
	if len(s.Active) != n || len(s.Removed) != n || len(s.InboxCounts) != n {
		return fmt.Errorf("%w: bitset/inbox sizes do not match vertex count", ErrSnapshotCorrupt)
	}
	b := s.Values
	for i := 0; i < n; i++ {
		v, rest, err := e.valCodec.DecodeValue(b)
		if err != nil {
			return fmt.Errorf("pregel: snapshot value %d: %w", i, err)
		}
		e.values[i] = v
		b = rest
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d trailing value bytes", ErrSnapshotCorrupt, len(b))
	}
	copy(e.active, s.Active)
	copy(e.removed, s.Removed)
	for i, a := range e.aggList {
		a.value = s.Aggs[i]
		if a.persistent {
			a.pending = 0
		} else {
			a.pending = aggIdentity(a.op)
		}
	}
	// Rebuild each worker's CSR inbox from the per-vertex counts, then fill
	// payloads in vertex order (one sequential decode of s.Inbox).
	var total int64
	for _, c := range s.InboxCounts {
		total += int64(c)
	}
	if total > math.MaxInt32 {
		return fmt.Errorf("%w: inbox count %d overflows", ErrSnapshotCorrupt, total)
	}
	for _, wk := range e.workers {
		off := wk.msgOff
		for i := range off {
			off[i] = 0
		}
		for slot := wk.lo; slot < wk.hi; slot++ {
			u := e.vertexAt(slot)
			if u < n {
				off[slot-wk.lo+1] = int32(s.InboxCounts[u])
			}
		}
		for i := 1; i < len(off); i++ {
			off[i] += off[i-1]
		}
		wtotal := int(off[len(off)-1])
		if cap(wk.msgBuf) < wtotal {
			wk.msgBuf = make([]M, wtotal)
		} else {
			wk.msgBuf = wk.msgBuf[:wtotal]
		}
	}
	b = s.Inbox
	for u := 0; u < n; u++ {
		c := int(s.InboxCounts[u])
		if c == 0 {
			continue
		}
		wk := e.workers[e.ownerOf(VertexID(u))]
		base := int(wk.msgOff[e.slotOf(VertexID(u))-wk.lo])
		for j := 0; j < c; j++ {
			m, rest, err := e.msgCodec.DecodeValue(b)
			if err != nil {
				return fmt.Errorf("pregel: snapshot inbox for vertex %d: %w", u, err)
			}
			wk.msgBuf[base+j] = m
			b = rest
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d trailing inbox bytes", ErrSnapshotCorrupt, len(b))
	}
	// Distribute the work queue back to its owners, preserving relative
	// order within each worker.
	for _, wk := range e.workers {
		wk.cur = wk.cur[:0]
	}
	for _, v := range s.Queue {
		if int(v) >= n {
			return fmt.Errorf("%w: queued vertex %d out of range", ErrSnapshotCorrupt, v)
		}
		wk := e.workers[e.ownerOf(v)]
		wk.cur = append(wk.cur, v)
	}
	e.activateAll = s.ActivateAll
	e.stopped = s.Stopped
	return nil
}
