package pregel

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// copyTree copies every regular file in src into dst (flat chain dirs
// only), simulating the state a crash would leave on disk.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		b, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChainCheckpointResumeEquivalence is the chain-mode crash-resume
// suite: run with an incremental checkpoint chain, snapshot the chain
// directory at every commit point, and require that every such
// "crash state" loads and resumes to the bitwise-identical final answer —
// the incremental analogue of TestCheckpointResumeEquivalence. Its name
// deliberately matches the CI rerun pattern.
func TestChainCheckpointResumeEquivalence(t *testing.T) {
	g := graph.ErdosRenyi(60, 240, true, 7)
	for _, sched := range []Scheduler{ScanAll, WorkQueue} {
		for _, part := range []Partition{PartitionBlock, PartitionHash} {
			t.Run(schedName(sched)+"/"+part.String(), func(t *testing.T) {
				dir := t.TempDir()
				copies := t.TempDir()
				var chains []string
				prev := chainCommitHook
				chainCommitHook = func(stage string) {
					// Copy at both stages: before the manifest rename the
					// copy must load to the previous commit, after it to
					// the new one — either way resume must be exact.
					dst := filepath.Join(copies, fmt.Sprintf("crash-%03d-%s", len(chains), stage))
					copyTree(t, dir, dst)
					chains = append(chains, dst)
				}
				defer func() { chainCommitHook = prev }()

				e := New[ckptVal, float64](g, Options{
					Workers:   4,
					Scheduler: sched,
					Partition: part,
					Checkpoint: CheckpointOptions{
						Every:       1,
						Dir:         dir,
						Incremental: true,
						RebaseEvery: 3,
					},
				})
				if err := e.RegisterAggregator("total", AggSum, true); err != nil {
					t.Fatal(err)
				}
				if err := e.RegisterAggregator("peak", AggMax, false); err != nil {
					t.Fatal(err)
				}
				e.SetMasterHook(func(mc *MasterContext) {
					if mc.AggValue("total") > 400 {
						mc.Stop()
					}
				})
				fullStats, err := e.Run(ckptProgram{rounds: 8})
				if err != nil {
					t.Fatal(err)
				}
				if fullStats.CheckpointBytes == 0 {
					t.Fatal("chain run recorded no CheckpointBytes")
				}
				want := append([]ckptVal(nil), e.Values()...)
				wantPeak := e.AggregatorValue("peak")
				wantTotal := e.AggregatorValue("total")
				S := fullStats.Supersteps
				if S < 5 {
					t.Fatalf("full run too short to be interesting: %d supersteps", S)
				}
				if len(chains) < S {
					t.Fatalf("only %d crash states for %d supersteps", len(chains), S)
				}

				seen := map[int]bool{}
				for _, cdir := range chains {
					st, err := LoadChain(cdir)
					if err != nil {
						if os.IsNotExist(err) {
							continue // crash before the first commit: no manifest yet
						}
						t.Fatalf("%s: %v", cdir, err)
					}
					k := st.Snapshot.Superstep
					seen[k] = true
					res := newCkptEngine(g, sched, part, st.Snapshot, "", 0)
					stats, err := res.Run(ckptProgram{rounds: 8})
					if err != nil {
						t.Fatalf("%s (k=%d): resume: %v", cdir, k, err)
					}
					wantLeft := S - (k + 1)
					if st.Snapshot.Done {
						wantLeft = 0
					}
					if stats.Supersteps != wantLeft {
						t.Errorf("%s (k=%d): resumed run took %d supersteps, want %d", cdir, k, stats.Supersteps, wantLeft)
					}
					for u, w := range want {
						got := res.Value(VertexID(u))
						if math.Float64bits(got.X) != math.Float64bits(w.X) || got.N != w.N {
							t.Fatalf("%s (k=%d): value[%d] = %+v, want %+v", cdir, k, u, got, w)
						}
					}
					if got := res.AggregatorValue("peak"); got != wantPeak {
						t.Errorf("k=%d: peak = %g, want %g", k, got, wantPeak)
					}
					if got := res.AggregatorValue("total"); got != wantTotal {
						t.Errorf("k=%d: total = %g, want %g", k, got, wantTotal)
					}
				}
				// Kill-anywhere must have covered every checkpointed superstep.
				for k := 0; k < S; k++ {
					if !seen[k] {
						t.Errorf("no crash state resumed from superstep %d", k)
					}
				}
				// The final chain itself must load to the Done tip.
				st, err := LoadChain(dir)
				if err != nil {
					t.Fatal(err)
				}
				if !st.Snapshot.Done {
					t.Fatal("final chain tip is not Done")
				}
			})
		}
	}
}

// TestChainCheckpointBytesIncremental pins the engine-level O(touched)
// property: with Every=1, the chain's delta records between consecutive
// barriers of a mostly-quiescent run must be far smaller than the full
// snapshot the non-incremental path would have written each time.
func TestChainCheckpointBytesIncremental(t *testing.T) {
	g := graph.ErdosRenyi(400, 800, true, 9)
	run := func(incremental bool) *Stats {
		dir := t.TempDir()
		e := New[ckptVal, float64](g, Options{
			Workers: 4,
			Checkpoint: CheckpointOptions{
				Every:       1,
				Dir:         dir,
				Incremental: incremental,
				RebaseEvery: 1 << 30, // never rebase: isolate delta-record size
			},
		})
		if err := e.RegisterAggregator("total", AggSum, true); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterAggregator("peak", AggMax, false); err != nil {
			t.Fatal(err)
		}
		stats, err := e.Run(ckptProgram{rounds: 6})
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	full := run(false)
	inc := run(true)
	if inc.Supersteps != full.Supersteps {
		t.Fatalf("incremental run diverged: %d vs %d supersteps", inc.Supersteps, full.Supersteps)
	}
	// Every barrier of this program touches every vertex, so deltas aren't
	// tiny — but they must still beat rewriting the whole snapshot, and
	// the win grows as activity shrinks (pinned by the VM-level test).
	if inc.CheckpointBytes >= full.CheckpointBytes {
		t.Fatalf("incremental chain wrote %d bytes, full snapshots only %d", inc.CheckpointBytes, full.CheckpointBytes)
	}
}
