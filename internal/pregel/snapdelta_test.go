package pregel

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// randSnapshot builds a random but structurally valid snapshot of n
// vertices, the shared generator for the delta-record property tests.
func randSnapshot(rng *rand.Rand, n int) *Snapshot {
	s := &Snapshot{
		Version:     SnapshotVersion,
		Fingerprint: rng.Uint64(),
		Superstep:   rng.Intn(1 << 20),
		NumVertices: n,
		ActivateAll: rng.Intn(2) == 0,
		Stopped:     rng.Intn(2) == 0,
		Done:        rng.Intn(2) == 0,
		WorkQueue:   rng.Intn(2) == 0,
	}
	for i := 0; i < rng.Intn(5); i++ {
		s.Aggs = append(s.Aggs, rng.NormFloat64())
	}
	s.Active = make([]bool, n)
	s.Removed = make([]bool, n)
	s.InboxCounts = make([]uint32, n)
	for i := 0; i < n; i++ {
		s.Active[i] = rng.Intn(2) == 0
		s.Removed[i] = rng.Intn(3) == 0
		s.InboxCounts[i] = uint32(rng.Intn(4))
	}
	for i := 0; n > 0 && i < rng.Intn(n+1); i++ {
		s.Queue = append(s.Queue, VertexID(rng.Intn(n)))
	}
	s.Inbox = randBytes(rng, rng.Intn(64))
	s.Values = randBytes(rng, 8*n)
	s.Extra = randBytes(rng, rng.Intn(256))
	return s
}

// perturbSnapshot derives a plausible "next checkpoint" from base: flip a
// few actives, rewrite a few value/extra cells, sometimes change the
// queue, fingerprint, flags — and occasionally grow the graph, which
// forces the length-changed sections onto the full-replacement path.
func perturbSnapshot(rng *rand.Rand, base *Snapshot) *Snapshot {
	s := cloneSnapshot(base)
	s.Superstep = base.Superstep + 1 + rng.Intn(3)
	if rng.Intn(2) == 0 {
		s.Fingerprint = rng.Uint64()
	}
	if rng.Intn(4) == 0 {
		s.Done = !s.Done
	}
	if rng.Intn(4) == 0 && len(s.Aggs) > 0 {
		s.Aggs[rng.Intn(len(s.Aggs))] = rng.NormFloat64()
	}
	n := s.NumVertices
	if rng.Intn(5) == 0 {
		// Grow the graph: every per-vertex section changes length.
		grow := 1 + rng.Intn(4)
		n += grow
		s.NumVertices = n
		s.Active = append(s.Active, make([]bool, grow)...)
		s.Removed = append(s.Removed, make([]bool, grow)...)
		s.InboxCounts = append(s.InboxCounts, make([]uint32, grow)...)
		s.Values = append(s.Values, randBytes(rng, 8*grow)...)
	}
	for i := 0; n > 0 && i < rng.Intn(4); i++ {
		s.Active[rng.Intn(n)] = rng.Intn(2) == 0
	}
	for i := 0; len(s.Values) >= 8 && i < rng.Intn(4); i++ {
		off := 8 * rng.Intn(len(s.Values)/8)
		copy(s.Values[off:], randBytes(rng, 8))
	}
	for i := 0; len(s.Extra) > 0 && i < rng.Intn(4); i++ {
		s.Extra[rng.Intn(len(s.Extra))] ^= byte(1 + rng.Intn(255))
	}
	if rng.Intn(3) == 0 {
		s.Queue = nil
		for i := 0; n > 0 && i < rng.Intn(n+1); i++ {
			s.Queue = append(s.Queue, VertexID(rng.Intn(n)))
		}
	}
	return s
}

// TestSnapshotDeltaRoundTrip is the property test for the DVSNPD record:
// for random (base, next) pairs, Diff → encode → decode → Apply must
// reconstruct next bit-exactly, including when embedded in a longer
// stream.
func TestSnapshotDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		base := randSnapshot(rng, rng.Intn(40))
		next := perturbSnapshot(rng, base)

		d := DiffSnapshots(base, next)
		prefix := randBytes(rng, rng.Intn(8))
		enc := d.AppendTo(append([]byte(nil), prefix...))
		tail := randBytes(rng, rng.Intn(8))
		enc = append(enc, tail...)

		got, rest, err := DecodeSnapshotDelta(enc[len(prefix):])
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !bytes.Equal(rest, tail) {
			t.Fatalf("trial %d: remainder mismatch", trial)
		}
		applied, err := ApplySnapshotDelta(base, got)
		if err != nil {
			t.Fatalf("trial %d: apply: %v", trial, err)
		}
		normalize(next)
		normalize(applied)
		if !reflect.DeepEqual(next, applied) {
			t.Fatalf("trial %d: apply mismatch:\n got %+v\nwant %+v", trial, applied, next)
		}
	}
}

// TestSnapshotDeltaIdentical pins the degenerate diff: identical
// snapshots produce a record with no section payloads, far smaller than
// the snapshot itself.
func TestSnapshotDeltaIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randSnapshot(rng, 30)
	d := DiffSnapshots(base, base)
	enc := d.AppendTo(nil)
	full := base.AppendTo(nil)
	if len(enc) >= len(full) {
		t.Fatalf("identical-snapshot delta is %d bytes, full snapshot only %d", len(enc), len(full))
	}
	applied, err := ApplySnapshotDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	want := cloneSnapshot(base)
	normalize(want)
	normalize(applied)
	if !reflect.DeepEqual(want, applied) {
		t.Fatalf("identity apply mismatch:\n got %+v\nwant %+v", applied, want)
	}
}

// TestSnapshotDeltaBytesOTouched is the O(touched) regression test at the
// codec level: against a large base, touching a handful of vertices must
// produce a record orders of magnitude smaller than the full snapshot.
func TestSnapshotDeltaBytesOTouched(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 20000
	base := randSnapshot(rng, n)
	base.Queue = nil
	next := cloneSnapshot(base)
	next.Superstep++
	// Touch 3 vertices: one value cell and one active bit each.
	for _, u := range []int{17, 9000, n - 2} {
		copy(next.Values[8*u:], randBytes(rng, 8))
		next.Active[u] = !next.Active[u]
	}
	d := DiffSnapshots(base, next)
	enc := d.AppendTo(nil)
	full := next.AppendTo(nil)
	if len(enc) > len(full)/100 {
		t.Fatalf("3-vertex delta record is %d bytes — not O(touched) against a %d-byte full snapshot", len(enc), len(full))
	}
	applied, err := ApplySnapshotDelta(base, d)
	if err != nil {
		t.Fatal(err)
	}
	normalize(next)
	normalize(applied)
	if !reflect.DeepEqual(next, applied) {
		t.Fatal("O(touched) delta did not reconstruct the next snapshot")
	}
}

// TestSnapshotDeltaDecodeRejects walks every truncation and a bitflip at
// every offset: none may decode successfully to a record that then applies
// to the original base as if nothing happened, and none may panic.
func TestSnapshotDeltaDecodeRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := randSnapshot(rng, 12)
	next := perturbSnapshot(rng, base)
	valid := DiffSnapshots(base, next).AppendTo(nil)

	if _, _, err := DecodeSnapshotDelta(nil); err == nil {
		t.Fatal("empty input decoded")
	}
	for i := 0; i < len(valid); i++ {
		if _, _, err := DecodeSnapshotDelta(valid[:i]); err == nil {
			t.Fatalf("truncation at %d decoded", i)
		}
	}
	for i := 0; i < len(valid); i++ {
		bad := append([]byte(nil), valid...)
		bad[i] ^= 0x40
		d, rest, err := DecodeSnapshotDelta(bad)
		if err != nil {
			continue
		}
		// A flip that still decodes (it can't: the CRC covers every byte)
		// would have to leave no remainder and survive apply.
		if len(rest) != 0 {
			t.Fatalf("bitflip at %d decoded with remainder", i)
		}
		if _, err := ApplySnapshotDelta(base, d); err == nil {
			t.Fatalf("bitflip at %d decoded and applied cleanly", i)
		}
	}
}

// TestSnapshotDeltaApplyRejects covers the apply-time validations: wrong
// base identity and out-of-bounds patch runs.
func TestSnapshotDeltaApplyRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := randSnapshot(rng, 10)
	next := perturbSnapshot(rng, base)
	d := DiffSnapshots(base, next)

	t.Run("wrong-fingerprint", func(t *testing.T) {
		other := cloneSnapshot(base)
		other.Fingerprint ^= 0xff
		if _, err := ApplySnapshotDelta(other, d); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("got %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("wrong-superstep", func(t *testing.T) {
		other := cloneSnapshot(base)
		other.Superstep++
		if _, err := ApplySnapshotDelta(other, d); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("got %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("run-out-of-bounds", func(t *testing.T) {
		bad := &SnapshotDelta{
			Version:         SnapshotDeltaVersion,
			Fingerprint:     base.Fingerprint,
			Superstep:       base.Superstep + 1,
			NumVertices:     base.NumVertices,
			BaseFingerprint: base.Fingerprint,
			BaseSuperstep:   base.Superstep,
		}
		bad.patches[5] = sectionPatch{tag: patchRuns, runs: []patchRun{{off: 1 << 30, data: []byte{1}}}}
		if _, err := ApplySnapshotDelta(base, bad); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("bad-section-lengths", func(t *testing.T) {
		bad := &SnapshotDelta{
			Version:         SnapshotDeltaVersion,
			Fingerprint:     base.Fingerprint,
			Superstep:       base.Superstep + 1,
			NumVertices:     base.NumVertices + 5, // header grows, sections don't
			BaseFingerprint: base.Fingerprint,
			BaseSuperstep:   base.Superstep,
		}
		if _, err := ApplySnapshotDelta(base, bad); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
}

// fuzzSeedSnapshotDelta builds the valid record the fuzz seeds mutate.
func fuzzSeedSnapshotDelta() []byte {
	rng := rand.New(rand.NewSource(19))
	base := randSnapshot(rng, 8)
	next := perturbSnapshot(rng, base)
	return DiffSnapshots(base, next).AppendTo(nil)
}

// FuzzSnapshotDeltaDecode asserts the delta-record decoder's contract on
// arbitrary input: reject or faithfully round-trip, never panic.
func FuzzSnapshotDeltaDecode(f *testing.F) {
	valid := fuzzSeedSnapshotDelta()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte{})
	f.Add([]byte("DVSNPD"))
	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[6] ^= 0xff
	f.Add(wrongVersion)
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0x01
	f.Add(badCRC)

	f.Fuzz(func(t *testing.T, b []byte) {
		d, rest, err := DecodeSnapshotDelta(b)
		if err != nil {
			if d != nil {
				t.Fatal("decode returned both a record and an error")
			}
			return
		}
		if len(rest) > len(b) {
			t.Fatal("remainder longer than input")
		}
		re := d.AppendTo(nil)
		d2, rest2, err := DecodeSnapshotDelta(re)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-encoded record left %d remainder bytes", len(rest2))
		}
		normalizeDelta(d)
		normalizeDelta(d2)
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("re-encode changed the record:\n got %+v\nwant %+v", d2, d)
		}
	})
}

// normalizeDelta maps nil and empty payloads to a canonical form so
// DeepEqual compares content, not allocation accidents.
func normalizeDelta(d *SnapshotDelta) {
	if len(d.Aggs) == 0 {
		d.Aggs = nil
	}
	for i := range d.patches {
		if len(d.patches[i].full) == 0 {
			d.patches[i].full = nil
		}
		if len(d.patches[i].runs) == 0 {
			d.patches[i].runs = nil
		}
		for j := range d.patches[i].runs {
			if len(d.patches[i].runs[j].data) == 0 {
				d.patches[i].runs[j].data = nil
			}
		}
	}
}
