package pregel

import (
	"testing"

	"repro/internal/graph"
)

// Engine micro-benchmarks: raw superstep and message-exchange throughput,
// independent of the ΔV layer.

func benchGraph() *graph.Graph {
	return graph.RMAT(12, 8, 0.57, 0.19, 0.19, true, 99)
}

// BenchmarkSuperstepThroughput runs 3 all-active broadcast rounds per
// iteration and reports edge-traversals per op.
func BenchmarkSuperstepThroughput(b *testing.B) {
	g := benchGraph()
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		b.Run(benchWorkersName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New[sumVal, float64](g, Options{Workers: workers})
				if _, err := e.Run(sumAllProgram{rounds: 3}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(4*g.NumArcs()), "msgs/op")
		})
	}
}

func benchWorkersName(w int) string {
	switch w {
	case 1:
		return "workers=1"
	case 4:
		return "workers=4"
	default:
		return "workers=16"
	}
}

// BenchmarkCombinerThroughput measures the sender-side combining path.
func BenchmarkCombinerThroughput(b *testing.B) {
	g := benchGraph()
	for _, combine := range []bool{false, true} {
		combine := combine
		name := "off"
		if combine {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New[sumVal, float64](g, Options{Workers: 4})
				if combine {
					e.SetCombiner(CombinerFunc[float64](func(a, b float64) float64 { return a + b }))
				}
				if _, err := e.Run(sumAllProgram{rounds: 3}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulers measures scan-all vs work-queue on a sparse-activity
// workload (SSSP-like flood where few vertices run per superstep).
func BenchmarkSchedulers(b *testing.B) {
	g := graph.Grid(120, 120, 1, 5)
	for _, sched := range []Scheduler{ScanAll, WorkQueue} {
		sched := sched
		name := "scan-all"
		if sched == WorkQueue {
			name = "work-queue"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New[echoVal, float64](g, Options{Workers: 4, Scheduler: sched})
				if _, err := e.Run(maxPropProgram{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitions measures block vs hash placement exchange cost.
func BenchmarkPartitions(b *testing.B) {
	g := benchGraph()
	for _, part := range []Partition{PartitionBlock, PartitionHash} {
		part := part
		b.Run(part.String(), func(b *testing.B) {
			var cross int64
			for i := 0; i < b.N; i++ {
				e := New[sumVal, float64](g, Options{Workers: 8, Partition: part})
				stats, err := e.Run(sumAllProgram{rounds: 3})
				if err != nil {
					b.Fatal(err)
				}
				cross = stats.CrossWorker
			}
			b.ReportMetric(float64(cross), "cross-worker")
		})
	}
}
