package pregel

import (
	"testing"

	"repro/internal/graph"
)

// Engine micro-benchmarks: raw superstep and message-exchange throughput,
// independent of the ΔV layer.

func benchGraph() *graph.Graph {
	return graph.RMAT(12, 8, 0.57, 0.19, 0.19, true, 99)
}

// BenchmarkSuperstepThroughput runs 3 all-active broadcast rounds per
// iteration and reports edge-traversals per op.
func BenchmarkSuperstepThroughput(b *testing.B) {
	g := benchGraph()
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		b.Run(benchWorkersName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New[sumVal, float64](g, Options{Workers: workers})
				if _, err := e.Run(sumAllProgram{rounds: 3}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(4*g.NumArcs()), "msgs/op")
		})
	}
}

func benchWorkersName(w int) string {
	switch w {
	case 1:
		return "workers=1"
	case 4:
		return "workers=4"
	default:
		return "workers=16"
	}
}

// BenchmarkCombinerThroughput measures the sender-side combining path.
func BenchmarkCombinerThroughput(b *testing.B) {
	g := benchGraph()
	for _, combine := range []bool{false, true} {
		combine := combine
		name := "off"
		if combine {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New[sumVal, float64](g, Options{Workers: 4})
				if combine {
					e.SetCombiner(CombinerFunc[float64](func(a, b float64) float64 { return a + b }))
				}
				if _, err := e.Run(sumAllProgram{rounds: 3}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulers measures scan-all vs work-queue on a sparse-activity
// workload (SSSP-like flood where few vertices run per superstep).
func BenchmarkSchedulers(b *testing.B) {
	g := graph.Grid(120, 120, 1, 5)
	for _, sched := range []Scheduler{ScanAll, WorkQueue} {
		sched := sched
		name := "scan-all"
		if sched == WorkQueue {
			name = "work-queue"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := New[echoVal, float64](g, Options{Workers: 4, Scheduler: sched})
				if _, err := e.Run(maxPropProgram{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// prVal / prProgram is a PageRank-shaped message-plane workload: every
// vertex is active every superstep, sends rank/outdeg along every out-edge,
// and sums its inbox — the densest steady-state traffic the engine sees,
// and the workload the BENCH_pregel.json baseline pins.
type prVal struct{ Rank float64 }

type prProgram struct{ rounds int }

func (p prProgram) Init(ctx *Context[prVal, float64]) {
	ctx.Value().Rank = 1 / float64(ctx.NumVertices())
	if d := ctx.OutDegree(); d > 0 {
		ctx.BroadcastOut(ctx.Value().Rank / float64(d))
	}
}

func (p prProgram) Compute(ctx *Context[prVal, float64], msgs []float64) {
	sum := 0.0
	for _, m := range msgs {
		sum += m
	}
	ctx.Value().Rank = 0.15/float64(ctx.NumVertices()) + 0.85*sum
	if ctx.Superstep() < p.rounds {
		if d := ctx.OutDegree(); d > 0 {
			ctx.BroadcastOut(ctx.Value().Rank / float64(d))
		}
	} else {
		ctx.VoteToHalt()
	}
}

func schedName(s Scheduler) string {
	if s == WorkQueue {
		return "work-queue"
	}
	return "scan-all"
}

// messagePlaneGraphs are the two benchmark topologies: a skewed R-MAT web
// graph and a uniform-degree grid.
func messagePlaneGraphs() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"rmat", benchGraph()},
		{"grid", graph.Grid(64, 64, 1, 5)},
	}
}

// BenchmarkMessagePlane is the headline engine micro-benchmark: combined
// PageRank-style traffic (Send → combine → exchange → deliver) per
// iteration, across both graph shapes, both schedulers and both
// partitionings. BENCH_pregel.json records its before/after numbers.
func BenchmarkMessagePlane(b *testing.B) {
	const rounds = 5
	for _, gs := range messagePlaneGraphs() {
		for _, sched := range []Scheduler{ScanAll, WorkQueue} {
			for _, part := range []Partition{PartitionBlock, PartitionHash} {
				gs, sched, part := gs, sched, part
				b.Run(gs.name+"/"+schedName(sched)+"/"+part.String(), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						e := New[prVal, float64](gs.g, Options{
							Workers:   4,
							Scheduler: sched,
							Partition: part,
						})
						e.SetCombiner(CombinerFunc[float64](func(a, b float64) float64 { return a + b }))
						if _, err := e.Run(prProgram{rounds: rounds}); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64((rounds+1)*gs.g.NumArcs()), "msgs/op")
				})
			}
		}
	}
}

// fillOutboxes replays a full broadcast round into every worker's
// outboxes: each vertex sends 1.0 along all its out-edges from its owning
// worker's context, exactly as a compute phase would.
func fillOutboxes(e *Engine[sumVal, float64]) {
	n := e.g.NumVertices()
	for _, w := range e.workers {
		for d := range w.outTo {
			w.outTo[d] = w.outTo[d][:0]
			w.outMsg[d] = w.outMsg[d][:0]
		}
		ctx := &w.ctx
		for slot := w.lo; slot < w.hi; slot++ {
			u := e.vertexAt(slot)
			if u >= n {
				continue
			}
			for _, v := range e.g.OutNeighbors(VertexID(u)) {
				ctx.Send(v, 1)
			}
		}
	}
}

// BenchmarkSend measures the raw Send path (owner lookup + SoA appends)
// into warm outboxes, per graph shape and partitioning.
func BenchmarkSend(b *testing.B) {
	for _, gs := range messagePlaneGraphs() {
		for _, part := range []Partition{PartitionBlock, PartitionHash} {
			gs, part := gs, part
			b.Run(gs.name+"/"+part.String(), func(b *testing.B) {
				e := New[sumVal, float64](gs.g, Options{Workers: 4, Partition: part})
				fillOutboxes(e) // warm outbox capacity
				w := e.workers[0]
				ctx := &w.ctx
				n := gs.g.NumVertices()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for d := range w.outTo {
						w.outTo[d] = w.outTo[d][:0]
						w.outMsg[d] = w.outMsg[d][:0]
					}
					for slot := w.lo; slot < w.hi; slot++ {
						u := e.vertexAt(slot)
						if u >= n {
							continue
						}
						for _, v := range gs.g.OutNeighbors(VertexID(u)) {
							ctx.Send(v, 1)
						}
					}
				}
				b.ReportMetric(float64(w.sent)/float64(b.N), "sends/op")
			})
		}
	}
}

// BenchmarkCombine measures one worker's sender-side combining pass over a
// full broadcast round: the dense slot-table path against the map-indexed
// KeyedCombiner fallback, per graph shape and partitioning.
func BenchmarkCombine(b *testing.B) {
	type cfg struct {
		name string
		c    Combiner[float64]
	}
	sum := CombinerFunc[float64](func(a, b float64) float64 { return a + b })
	for _, gs := range messagePlaneGraphs() {
		for _, part := range []Partition{PartitionBlock, PartitionHash} {
			for _, tc := range []cfg{{"dense", sum}, {"keyed-map", benchKeyCombiner{}}} {
				gs, part, tc := gs, part, tc
				b.Run(gs.name+"/"+part.String()+"/"+tc.name, func(b *testing.B) {
					e := New[sumVal, float64](gs.g, Options{Workers: 4, Partition: part})
					e.SetCombiner(tc.c)
					w := e.workers[0]
					w.combSlot = make([]int32, e.block)
					w.combStamp = make([]uint32, e.block)
					fillOutboxes(e)
					// Snapshot worker 0's outboxes: combining compacts them
					// in place, so each iteration restores from the copy.
					to := make([][]VertexID, len(w.outTo))
					msg := make([][]float64, len(w.outMsg))
					for d := range w.outTo {
						to[d] = append([]VertexID(nil), w.outTo[d]...)
						msg[d] = append([]float64(nil), w.outMsg[d]...)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for d := range to {
							w.outTo[d] = append(w.outTo[d][:0], to[d]...)
							w.outMsg[d] = append(w.outMsg[d][:0], msg[d]...)
						}
						w.combineOut()
					}
				})
			}
		}
	}
}

// benchKeyCombiner forces the KeyedCombiner map fallback with a constant
// key — semantically identical to the dense sum path.
type benchKeyCombiner struct{}

func (benchKeyCombiner) Combine(a, b float64) float64 { return a + b }
func (benchKeyCombiner) Key(float64) uint32           { return 0 }

// BenchmarkExchange measures the count/scatter/wake delivery pass over a
// full uncombined broadcast round, per graph shape, scheduler and
// partitioning. Outboxes are filled once; exchange does not consume them.
func BenchmarkExchange(b *testing.B) {
	for _, gs := range messagePlaneGraphs() {
		for _, sched := range []Scheduler{ScanAll, WorkQueue} {
			for _, part := range []Partition{PartitionBlock, PartitionHash} {
				gs, sched, part := gs, sched, part
				b.Run(gs.name+"/"+schedName(sched)+"/"+part.String(), func(b *testing.B) {
					e := New[sumVal, float64](gs.g, Options{Workers: 4, Scheduler: sched, Partition: part})
					e.superstep = 1 // deliveries behave as a steady-state superstep
					fillOutboxes(e)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for _, w := range e.workers {
							// Mimic the compute-phase queue reset so the
							// wake pass re-enqueues receivers every round.
							w.stamp++
							w.next = w.next[:0]
							w.exchange()
						}
					}
					b.ReportMetric(float64(gs.g.NumArcs()), "msgs/op")
				})
			}
		}
	}
}

// BenchmarkPartitions measures block vs hash placement exchange cost.
func BenchmarkPartitions(b *testing.B) {
	g := benchGraph()
	for _, part := range []Partition{PartitionBlock, PartitionHash} {
		part := part
		b.Run(part.String(), func(b *testing.B) {
			var cross int64
			for i := 0; i < b.N; i++ {
				e := New[sumVal, float64](g, Options{Workers: 8, Partition: part})
				stats, err := e.Run(sumAllProgram{rounds: 3})
				if err != nil {
					b.Fatal(err)
				}
				cross = stats.CrossWorker
			}
			b.ReportMetric(float64(cross), "cross-worker")
		})
	}
}
