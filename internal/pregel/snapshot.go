package pregel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"reflect"
	"unsafe"
)

// This file implements barrier snapshots: a versioned binary serialization
// of everything the engine needs to continue a run from a superstep barrier
// — vertex values, the active/removed sets, committed aggregator state, the
// work-queue contents, the messages delivered at the barrier but not yet
// consumed, and an opaque caller payload (the ΔV VM stores its flat state
// and phase machine there). See DESIGN.md §10 "Checkpoint/restore".
//
// Snapshots are only taken at superstep barriers, where every worker is
// parked and no sends are in flight, so a single-threaded walk over engine
// state observes a consistent cut — the classic Pregel checkpoint argument.

// SnapshotVersion is the current snapshot format version. Decoding rejects
// any other version.
const SnapshotVersion = 1

// snapshotMagic prefixes every encoded snapshot.
var snapshotMagic = [6]byte{'D', 'V', 'S', 'N', 'A', 'P'}

// ErrSnapshotCorrupt is wrapped by every snapshot decoding error caused by
// malformed input (truncation, bad magic, checksum mismatch, impossible
// section lengths).
var ErrSnapshotCorrupt = errors.New("pregel: corrupt snapshot")

// ErrSnapshotVersion is wrapped when the input is a snapshot of an
// unsupported format version.
var ErrSnapshotVersion = errors.New("pregel: unsupported snapshot version")

// ErrSnapshotMismatch is wrapped when a structurally valid snapshot cannot
// resume the engine it was handed to: wrong graph fingerprint, wrong vertex
// count, or a different aggregator registration.
var ErrSnapshotMismatch = errors.New("pregel: snapshot does not match run")

// Snapshot is a decoded barrier snapshot. Values and Inbox hold
// codec-encoded bytes (the engine's ValueCodec/MessageCodec decode them at
// restore time); everything else is fully decoded.
type Snapshot struct {
	Version     uint16
	Fingerprint uint64 // graph.Fingerprint of the run's graph
	Superstep   int    // the completed superstep whose barrier this is
	NumVertices int

	ActivateAll bool // master hook requested ActivateAll for superstep+1
	Stopped     bool // master hook stopped the run
	Done        bool // the run terminated at this barrier (stop/quiescence)
	WorkQueue   bool // taken under the WorkQueue scheduler (Queue is meaningful)

	Aggs []float64 // committed aggregator values, registration order

	Active  []bool // per vertex: runs next superstep without a message
	Removed []bool // per vertex: removed from the computation

	// Queue is the WorkQueue scheduler's runnable list for superstep+1,
	// concatenated across workers in worker order (empty under ScanAll).
	Queue []VertexID

	// InboxCounts[u] is the number of messages delivered to vertex u at
	// this barrier; the payloads sit in Inbox, vertex-major, each encoded
	// with the run's message codec.
	InboxCounts []uint32
	Inbox       []byte

	// Values holds the n vertex values, each encoded with the run's value
	// codec.
	Values []byte

	// Extra is an opaque caller payload (CheckpointOptions.Extra); the ΔV
	// VM serializes its machine state here.
	Extra []byte
}

// AppendTo appends the binary encoding of s to dst and returns the extended
// slice. The layout (all integers little-endian):
//
//	magic "DVSNAP" | version u16 | fingerprint u64 | superstep i64
//	| numVertices u64 | flags u8 (1=activateAll 2=stopped 4=done 8=workQueue)
//	| aggs:   count u32, value f64 ×count
//	| active: bitset ceil(n/8)
//	| removed: bitset ceil(n/8)
//	| queue:  count u32, vertex u32 ×count
//	| inbox:  count u32 ×n, payload len u64 + bytes
//	| values: len u64 + bytes
//	| extra:  len u64 + bytes
//	| crc32(IEEE) of everything above, u32
func (s *Snapshot) AppendTo(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, snapshotMagic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, SnapshotVersion)
	dst = binary.LittleEndian.AppendUint64(dst, s.Fingerprint)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(s.Superstep)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.NumVertices))
	var flags byte
	if s.ActivateAll {
		flags |= 1
	}
	if s.Stopped {
		flags |= 2
	}
	if s.Done {
		flags |= 4
	}
	if s.WorkQueue {
		flags |= 8
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Aggs)))
	for _, v := range s.Aggs {
		dst = AppendFloat64(dst, v)
	}
	dst = appendBitset(dst, s.Active)
	dst = appendBitset(dst, s.Removed)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Queue)))
	for _, v := range s.Queue {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	for _, c := range s.InboxCounts {
		dst = binary.LittleEndian.AppendUint32(dst, c)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(s.Inbox)))
	dst = append(dst, s.Inbox...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(s.Values)))
	dst = append(dst, s.Values...)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(s.Extra)))
	dst = append(dst, s.Extra...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

func appendBitset(dst []byte, bits []bool) []byte {
	n := (len(bits) + 7) / 8
	for i := 0; i < n; i++ {
		var b byte
		for j := 0; j < 8; j++ {
			k := i*8 + j
			if k < len(bits) && bits[k] {
				b |= 1 << j
			}
		}
		dst = append(dst, b)
	}
	return dst
}

// snapReader is a bounds-checked cursor over snapshot bytes; every decode
// error is reported as a wrapped ErrSnapshotCorrupt, never a panic.
type snapReader struct {
	b   []byte
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrSnapshotCorrupt, fmt.Sprintf(format, args...))
	}
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.fail("truncated (need %d bytes, have %d)", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *snapReader) u8() byte {
	if b := r.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (r *snapReader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *snapReader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *snapReader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// count reads a u32 length and validates it against the remaining input at
// unit bytes per element, so corrupted lengths cannot cause huge
// allocations.
func (r *snapReader) count(unit int, what string) int {
	n := int(r.u32())
	if r.err == nil && n*unit > len(r.b) {
		r.fail("%s count %d exceeds remaining input", what, n)
	}
	if r.err != nil {
		return 0
	}
	return n
}

// DecodeSnapshot decodes one snapshot from the front of b, returning the
// snapshot and any remaining bytes (snapshots are self-delimiting, so
// concatenated streams — e.g. a CheckpointOptions.Sink — can be decoded in
// a loop). Corrupt, truncated, or wrong-version input returns an error
// wrapping ErrSnapshotCorrupt or ErrSnapshotVersion; it never panics.
func DecodeSnapshot(b []byte) (*Snapshot, []byte, error) {
	r := &snapReader{b: b}
	if magic := r.take(len(snapshotMagic)); r.err == nil {
		for i := range snapshotMagic {
			if magic[i] != snapshotMagic[i] {
				r.fail("bad magic")
				break
			}
		}
	}
	s := &Snapshot{}
	s.Version = r.u16()
	if r.err == nil && s.Version != SnapshotVersion {
		return nil, nil, fmt.Errorf("%w: got %d, want %d", ErrSnapshotVersion, s.Version, SnapshotVersion)
	}
	s.Fingerprint = r.u64()
	s.Superstep = int(int64(r.u64()))
	n64 := r.u64()
	if r.err == nil && (n64 > uint64(len(r.b))*8+64 || n64 > math.MaxInt32) {
		// Each vertex costs at least 1/8 byte (two bitsets + counts), so a
		// vertex count wildly larger than the input is corrupt.
		r.fail("vertex count %d exceeds input", n64)
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	s.NumVertices = int(n64)
	flags := r.u8()
	s.ActivateAll = flags&1 != 0
	s.Stopped = flags&2 != 0
	s.Done = flags&4 != 0
	s.WorkQueue = flags&8 != 0
	if r.err == nil && flags&^byte(15) != 0 {
		r.fail("unknown flag bits %#x", flags)
	}
	nAggs := r.count(8, "aggregator")
	s.Aggs = make([]float64, 0, nAggs)
	for i := 0; i < nAggs && r.err == nil; i++ {
		s.Aggs = append(s.Aggs, math.Float64frombits(r.u64()))
	}
	s.Active = r.bitset(s.NumVertices)
	s.Removed = r.bitset(s.NumVertices)
	nQueue := r.count(4, "queue")
	s.Queue = make([]VertexID, 0, nQueue)
	for i := 0; i < nQueue && r.err == nil; i++ {
		v := r.u32()
		if r.err == nil && int(v) >= s.NumVertices {
			r.fail("queue vertex %d out of range", v)
		}
		s.Queue = append(s.Queue, VertexID(v))
	}
	if r.err == nil && s.NumVertices*4 > len(r.b) {
		r.fail("inbox counts exceed input")
	}
	s.InboxCounts = make([]uint32, 0, maxZero(s.NumVertices, r.err))
	for i := 0; i < s.NumVertices && r.err == nil; i++ {
		s.InboxCounts = append(s.InboxCounts, r.u32())
	}
	s.Inbox = r.blob("inbox")
	s.Values = r.blob("values")
	s.Extra = r.blob("extra")
	if r.err != nil {
		return nil, nil, r.err
	}
	consumed := len(b) - len(r.b)
	wantCRC := r.u32()
	if r.err != nil {
		return nil, nil, r.err
	}
	if got := crc32.ChecksumIEEE(b[:consumed]); got != wantCRC {
		return nil, nil, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrSnapshotCorrupt, got, wantCRC)
	}
	return s, r.b, nil
}

func maxZero(n int, err error) int {
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func (r *snapReader) bitset(n int) []bool {
	raw := r.take((n + 7) / 8)
	if r.err != nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return out
}

func (r *snapReader) blob(what string) []byte {
	n := r.u64()
	if r.err == nil && n > uint64(len(r.b)) {
		r.fail("%s length %d exceeds remaining input", what, n)
	}
	if r.err != nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.take(int(n)))
	return out
}

// ReadSnapshot decodes the first snapshot from r.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s, _, err := DecodeSnapshot(b)
	return s, err
}

// ReadSnapshotFile decodes the snapshot stored in path (as written by
// CheckpointOptions.Dir or WriteSnapshotFile).
func ReadSnapshotFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, _, err := DecodeSnapshot(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// WriteSnapshotFile encodes s into path. The write is atomic (temp
// file + rename), so a crash — e.g. a sharded peer SIGKILLed mid-
// checkpoint — can leave a missing snapshot but never a torn one, and
// resume can always trust whatever files exist.
func WriteSnapshotFile(path string, s *Snapshot) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, s.AppendTo(nil), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SnapshotFileName is the name pattern used for snapshots written into
// CheckpointOptions.Dir: one file per checkpointed superstep.
func SnapshotFileName(superstep int) string {
	return fmt.Sprintf("snap-%06d.dvsnap", superstep)
}

// ---------------------------------------------------------------------------
// Checkpoint configuration.

// CheckpointOptions enable barrier snapshots for a run. At the end of every
// Every-th completed superstep — and, regardless of Every, when a
// cancellation, deadline, or step timeout aborts the run — the engine
// serializes its state and writes it to Dir (one snap-NNNNNN.dvsnap file
// per checkpoint) and/or Sink (snapshots appended back to back; they are
// self-delimiting). Stats.CheckpointPath names the last file written.
//
// Capture happens only at barriers, after the master hook: every worker is
// parked, no messages are in flight (the delivered-but-unconsumed inbox is
// part of the snapshot), so the cut is consistent by construction. A run
// aborted between the compute and exchange phases is first drained through
// the exchange to the next barrier before the final snapshot is taken. A
// run aborted by a contained panic (*RunError) does NOT get a fresh final
// snapshot — the panicking superstep's state is not trustworthy — but
// Stats.CheckpointPath still names the last periodic checkpoint, if any.
type CheckpointOptions struct {
	// Every writes a periodic snapshot at the barrier of every superstep s
	// with (s+1) % Every == 0 (Every=1: every superstep). Zero means no
	// periodic snapshots; abort-time snapshots are still written.
	Every int
	// Dir receives one snapshot file per checkpoint. Empty disables file
	// output.
	Dir string
	// Sink, when non-nil, receives every snapshot's bytes appended in
	// order. Decode them with DecodeSnapshot in a loop (the last one is
	// the freshest).
	Sink io.Writer
	// Extra, when non-nil, is called at every capture to append an opaque
	// caller payload to the snapshot (returned to the caller verbatim in
	// Snapshot.Extra on decode). The ΔV VM uses this for its machine
	// state.
	Extra func(dst []byte) []byte
	// Incremental switches Dir from one full snapshot file per checkpoint
	// to a checkpoint chain (see chain.go): a full base record, then CRC'd
	// DVSNPD delta records holding only the bytes that changed since the
	// previous checkpoint — O(touched) instead of O(|V|) between nearby
	// barriers. Resume with LoadChain(dir). Ignored when Dir is empty;
	// Sink still receives full snapshots.
	Incremental bool
	// RebaseEvery caps consecutive delta records per base in incremental
	// mode (<=0: DefaultRebaseEvery).
	RebaseEvery int
}

// enabled reports whether the options request any output at all.
func (c *CheckpointOptions) enabled() bool {
	return c != nil && (c.Dir != "" || c.Sink != nil)
}

// ---------------------------------------------------------------------------
// Value codecs.

// ValueCodec serializes vertex values (or messages) of type T for
// snapshots. AppendValue must be the exact inverse of DecodeValue.
// Implementations should be deterministic and allocation-free on the append
// path so checkpoint capture stays cheap.
type ValueCodec[T any] interface {
	// AppendValue appends the encoding of v to dst.
	AppendValue(dst []byte, v T) []byte
	// DecodeValue decodes one value from the front of src, returning the
	// value and the remaining bytes. Truncated input must return an error,
	// never panic.
	DecodeValue(src []byte) (v T, rest []byte, err error)
}

// AppendFloat64 appends f as 8 little-endian IEEE-754 bytes; the canonical
// building block for hand-written codecs.
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// DecodeFloat64 decodes a float64 written by AppendFloat64.
func DecodeFloat64(src []byte) (float64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated float64", ErrSnapshotCorrupt)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(src)), src[8:], nil
}

// AppendInt64 appends v as 8 little-endian bytes.
func AppendInt64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

// DecodeInt64 decodes an int64 written by AppendInt64.
func DecodeInt64(src []byte) (int64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated int64", ErrSnapshotCorrupt)
	}
	return int64(binary.LittleEndian.Uint64(src)), src[8:], nil
}

// Float64Codec is the ValueCodec for plain float64 values/messages.
type Float64Codec struct{}

// AppendValue implements ValueCodec.
func (Float64Codec) AppendValue(dst []byte, v float64) []byte { return AppendFloat64(dst, v) }

// DecodeValue implements ValueCodec.
func (Float64Codec) DecodeValue(src []byte) (float64, []byte, error) { return DecodeFloat64(src) }

// PODCodec builds a ValueCodec for a fixed-size, pointer-free ("plain old
// data") type T by copying its in-memory representation. It returns an
// error when T contains pointers, slices, maps, strings, or any other
// indirection. POD encodings include padding bytes and use native byte
// order, so they are only portable between identical architectures; use a
// hand-written codec for portable snapshots.
func PODCodec[T any]() (ValueCodec[T], error) {
	var zero T
	t := reflect.TypeOf(&zero).Elem()
	if !podSafe(t) {
		return nil, fmt.Errorf("pregel: type %v contains pointers and needs a hand-written ValueCodec", t)
	}
	return podCodec[T]{size: int(t.Size())}, nil
}

// MustPODCodec is PODCodec that panics on non-POD types; for package-level
// codec variables of types known to be POD.
func MustPODCodec[T any]() ValueCodec[T] {
	c, err := PODCodec[T]()
	if err != nil {
		panic(err)
	}
	return c
}

func podSafe(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return true
	case reflect.Array:
		return podSafe(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !podSafe(t.Field(i).Type) {
				return false
			}
		}
		return true
	}
	return false
}

type podCodec[T any] struct{ size int }

func (c podCodec[T]) AppendValue(dst []byte, v T) []byte {
	return append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&v)), c.size)...)
}

func (c podCodec[T]) DecodeValue(src []byte) (T, []byte, error) {
	var v T
	if len(src) < c.size {
		return v, nil, fmt.Errorf("%w: truncated value (need %d bytes, have %d)", ErrSnapshotCorrupt, c.size, len(src))
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&v)), c.size), src[:c.size])
	return v, src[c.size:], nil
}

// WriteTo writes the encoded snapshot to w (a convenience for Sink-style
// plumbing).
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	b := s.AppendTo(nil)
	n, err := w.Write(b)
	return int64(n), err
}
