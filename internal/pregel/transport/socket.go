package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Wire format: every frame is [u32 LE length][u8 kind][payload], where
// length counts the kind byte plus the payload. The transport never
// inspects data payloads; control payloads are the engine's barrier
// blocks and the hello payload authenticates the mesh.
const (
	kindHello byte = 1
	kindCtrl  byte = 2
	kindData  byte = 3

	// maxFrame bounds a single frame (1 GiB): a worker-pair outbox past
	// this is a protocol error, not something to silently truncate.
	maxFrame = 1 << 30

	helloMagic = "DVSHRD1\x00"
)

// SocketConfig configures one shard's endpoint of a socket mesh.
type SocketConfig struct {
	// Shard and Count identify this endpoint: shards are numbered
	// [0, Count); shard i listens on Addrs[i] and dials every lower
	//-numbered shard.
	Shard, Count int
	// Addrs holds one address per shard: "unix:PATH" (or a bare path
	// containing a '/') or "tcp:HOST:PORT".
	Addrs []string
	// Fingerprint guards against mismatched runs: the hello exchange
	// rejects a peer whose fingerprint differs (callers pass the graph
	// fingerprint, or a hash of graph + run configuration).
	Fingerprint uint64
	// Timeout bounds mesh establishment (listen + dial + hello for
	// every pair). Zero means 30s.
	Timeout time.Duration
}

// Socket is a full-mesh Transport over unix or TCP sockets. One
// background goroutine per peer reads inbound frames into a per-peer
// FIFO queue; Barrier releases everything queued before the peer's
// control frame, so writers never block on readers and the engine's
// single-threaded Send/Barrier calls need no locking of their own.
type Socket struct {
	cfg   SocketConfig
	conns []*peerConn // indexed by shard; nil at the local index
	ln    net.Listener

	ctrls [][]byte // Barrier result, reused across calls
	ready [][]byte // data frames released by the last Barrier
	rpos  int

	closed atomic.Bool

	framesOut, bytesOut atomic.Int64
	framesIn, bytesIn   atomic.Int64
}

type peerConn struct {
	shard int
	c     net.Conn
	bw    *bufio.Writer

	mu    sync.Mutex
	cond  *sync.Cond
	queue []wireEntry
	err   error
}

type wireEntry struct {
	kind    byte
	payload []byte
}

// splitAddr parses a shard address into a net network/address pair.
func splitAddr(a string) (network, addr string, err error) {
	switch {
	case strings.HasPrefix(a, "tcp:"):
		return "tcp", strings.TrimPrefix(a, "tcp:"), nil
	case strings.HasPrefix(a, "unix:"):
		return "unix", strings.TrimPrefix(a, "unix:"), nil
	case strings.Contains(a, "/"):
		return "unix", a, nil
	}
	return "", "", fmt.Errorf("transport: address %q: want unix:PATH, a /path, or tcp:HOST:PORT", a)
}

// DialMesh establishes the full mesh for one shard and blocks until
// every pair is connected and hello-validated: this shard listens on
// its own address, accepts from every higher-numbered shard, and dials
// every lower-numbered one (retrying until the peer's listener is up
// or the timeout expires). Safe to call in any start order.
func DialMesh(cfg SocketConfig) (*Socket, error) {
	if cfg.Count < 1 || cfg.Shard < 0 || cfg.Shard >= cfg.Count {
		return nil, fmt.Errorf("transport: bad shard %d of %d", cfg.Shard, cfg.Count)
	}
	if len(cfg.Addrs) != cfg.Count {
		return nil, fmt.Errorf("transport: %d addrs for %d shards", len(cfg.Addrs), cfg.Count)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	s := &Socket{cfg: cfg, conns: make([]*peerConn, cfg.Count), ctrls: make([][]byte, cfg.Count)}
	if cfg.Count == 1 {
		return s, nil // degenerate mesh: no peers, Barrier echoes the local payload
	}
	deadline := time.Now().Add(cfg.Timeout) //lint:allow timenow — mesh setup timeout, not fold input

	network, addr, err := splitAddr(cfg.Addrs[cfg.Shard])
	if err != nil {
		return nil, err
	}
	if network == "unix" {
		_ = os.Remove(addr) // clear a stale socket file from a crashed run
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: shard %d listen %s: %w", cfg.Shard, cfg.Addrs[cfg.Shard], err)
	}
	s.ln = ln

	errc := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)

	// Accept from every higher-numbered shard.
	go func() {
		defer wg.Done()
		for need := cfg.Count - 1 - cfg.Shard; need > 0; need-- {
			if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
				_ = d.SetDeadline(deadline)
			}
			c, err := ln.Accept()
			if err != nil {
				errc <- fmt.Errorf("transport: shard %d accept: %w", cfg.Shard, err)
				return
			}
			peer, err := s.handshake(c, deadline, false)
			if err != nil {
				c.Close()
				errc <- err
				return
			}
			if peer <= cfg.Shard || peer >= cfg.Count || s.conns[peer] != nil {
				c.Close()
				errc <- fmt.Errorf("transport: shard %d: unexpected or duplicate hello from shard %d", cfg.Shard, peer)
				return
			}
			s.register(peer, c)
		}
	}()

	// Dial every lower-numbered shard, retrying while its listener comes up.
	go func() {
		defer wg.Done()
		for peer := 0; peer < cfg.Shard; peer++ {
			pnet, paddr, err := splitAddr(cfg.Addrs[peer])
			if err != nil {
				errc <- err
				return
			}
			var c net.Conn
			for {
				c, err = net.DialTimeout(pnet, paddr, 250*time.Millisecond)
				if err == nil {
					break
				}
				if !time.Now().Before(deadline) { //lint:allow timenow — mesh setup timeout
					errc <- fmt.Errorf("transport: shard %d dial shard %d (%s): %w", cfg.Shard, peer, cfg.Addrs[peer], err)
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
			got, err := s.handshake(c, deadline, true)
			if err != nil {
				c.Close()
				errc <- err
				return
			}
			if got != peer {
				c.Close()
				errc <- fmt.Errorf("transport: dialed %s expecting shard %d, got %d", cfg.Addrs[peer], peer, got)
				return
			}
			s.register(peer, c)
		}
	}()

	wg.Wait()
	select {
	case err := <-errc:
		s.Close()
		return nil, err
	default:
	}
	for i, p := range s.conns {
		if i != cfg.Shard && p == nil {
			s.Close()
			return nil, fmt.Errorf("transport: shard %d: mesh incomplete (no conn to shard %d)", cfg.Shard, i)
		}
	}
	for _, p := range s.conns {
		if p != nil {
			go s.reader(p)
		}
	}
	return s, nil
}

// handshake exchanges hello frames on a fresh conn. The dialer speaks
// first; both directions validate magic, count, and fingerprint.
// Returns the peer's shard index.
func (s *Socket) handshake(c net.Conn, deadline time.Time, dialer bool) (int, error) {
	_ = c.SetDeadline(deadline)
	defer c.SetDeadline(time.Time{})
	hello := make([]byte, 0, len(helloMagic)+16)
	hello = append(hello, helloMagic...)
	hello = binary.LittleEndian.AppendUint32(hello, uint32(s.cfg.Shard))
	hello = binary.LittleEndian.AppendUint32(hello, uint32(s.cfg.Count))
	hello = binary.LittleEndian.AppendUint64(hello, s.cfg.Fingerprint)
	send := func() error { return writeRawFrame(c, kindHello, hello) }
	recv := func() (int, error) {
		kind, payload, err := readRawFrame(c, len(hello))
		if err != nil {
			return 0, fmt.Errorf("transport: hello read: %w", err)
		}
		if kind != kindHello || len(payload) != len(hello) || string(payload[:len(helloMagic)]) != helloMagic {
			return 0, errors.New("transport: peer sent malformed hello")
		}
		peer := int(binary.LittleEndian.Uint32(payload[len(helloMagic):]))
		count := int(binary.LittleEndian.Uint32(payload[len(helloMagic)+4:]))
		fp := binary.LittleEndian.Uint64(payload[len(helloMagic)+8:])
		if count != s.cfg.Count {
			return 0, fmt.Errorf("transport: peer shard %d runs a %d-shard mesh, this is %d", peer, count, s.cfg.Count)
		}
		if fp != s.cfg.Fingerprint {
			return 0, fmt.Errorf("transport: peer shard %d fingerprint %016x != local %016x (different graph or run config)", peer, fp, s.cfg.Fingerprint)
		}
		return peer, nil
	}
	if dialer {
		if err := send(); err != nil {
			return 0, err
		}
		return recv()
	}
	peer, err := recv()
	if err != nil {
		return 0, err
	}
	return peer, send()
}

func (s *Socket) register(shard int, c net.Conn) {
	p := &peerConn{shard: shard, c: c, bw: bufio.NewWriterSize(c, 1<<16)}
	p.cond = sync.NewCond(&p.mu)
	s.conns[shard] = p
}

// reader drains one peer connection into its FIFO queue. A read error
// (including Close) is recorded and woken through the condvar so a
// Barrier blocked on this peer fails instead of hanging.
func (s *Socket) reader(p *peerConn) {
	br := bufio.NewReaderSize(p.c, 1<<16)
	for {
		kind, payload, err := readRawFrame(br, maxFrame)
		if err != nil {
			p.mu.Lock()
			if p.err == nil {
				if s.closed.Load() {
					p.err = net.ErrClosed
				} else {
					p.err = fmt.Errorf("transport: read from shard %d: %w", p.shard, err)
				}
			}
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		s.framesIn.Add(1)
		s.bytesIn.Add(int64(5 + len(payload)))
		p.mu.Lock()
		p.queue = append(p.queue, wireEntry{kind, payload})
		p.cond.Signal()
		p.mu.Unlock()
	}
}

// Send implements Transport: one buffered data frame to shard dst.
// The write lands on the wire no later than the next Barrier's flush.
func (s *Socket) Send(dst int, frame []byte) error {
	if dst < 0 || dst >= len(s.conns) || s.conns[dst] == nil {
		return fmt.Errorf("transport: Send to shard %d of %d", dst, s.cfg.Count)
	}
	p := s.conns[dst]
	if err := writeBufFrame(p.bw, kindData, frame); err != nil {
		return fmt.Errorf("transport: send to shard %d: %w", dst, err)
	}
	s.framesOut.Add(1)
	s.bytesOut.Add(int64(5 + len(frame)))
	return nil
}

// Recv implements Transport.
func (s *Socket) Recv() ([]byte, error) {
	if s.rpos >= len(s.ready) {
		return nil, nil
	}
	f := s.ready[s.rpos]
	s.rpos++
	return f, nil
}

// Barrier implements Transport: write + flush the control frame to
// every peer, then collect each peer's queue up to its control frame.
func (s *Socket) Barrier(ctrl []byte) ([][]byte, error) {
	s.ready = s.ready[:0]
	s.rpos = 0
	s.ctrls[s.cfg.Shard] = ctrl
	for _, p := range s.conns {
		if p == nil {
			continue
		}
		if err := writeBufFrame(p.bw, kindCtrl, ctrl); err != nil {
			return nil, fmt.Errorf("transport: barrier write to shard %d: %w", p.shard, err)
		}
		if err := p.bw.Flush(); err != nil {
			return nil, fmt.Errorf("transport: barrier flush to shard %d: %w", p.shard, err)
		}
		s.framesOut.Add(1)
		s.bytesOut.Add(int64(5 + len(ctrl)))
	}
	for _, p := range s.conns {
		if p == nil {
			continue
		}
		if err := s.collect(p); err != nil {
			return nil, err
		}
	}
	return s.ctrls, nil
}

// collect waits for p's control frame and releases everything queued
// before it: data frames in arrival order into ready, the control
// payload into ctrls.
func (s *Socket) collect(p *peerConn) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for i, e := range p.queue {
			if e.kind != kindCtrl {
				continue
			}
			for _, d := range p.queue[:i] {
				if d.kind == kindData {
					s.ready = append(s.ready, d.payload)
				}
			}
			s.ctrls[p.shard] = e.payload
			p.queue = append(p.queue[:0], p.queue[i+1:]...)
			return nil
		}
		if p.err != nil {
			return fmt.Errorf("transport: barrier with shard %d: %w", p.shard, p.err)
		}
		p.cond.Wait()
	}
}

// Close implements Transport.
func (s *Socket) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for _, p := range s.conns {
		if p != nil {
			_ = p.c.Close()
		}
	}
	return nil
}

// Counters reports cumulative wire traffic: frames and bytes written
// (data + control) and read. Hello frames are not counted.
func (s *Socket) Counters() (framesOut, bytesOut, framesIn, bytesIn int64) {
	return s.framesOut.Load(), s.bytesOut.Load(), s.framesIn.Load(), s.bytesIn.Load()
}

func writeBufFrame(bw *bufio.Writer, kind byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds the %d limit", len(payload), maxFrame)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = kind
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

func writeRawFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readRawFrame reads one frame from r. The hello handshake passes the
// bare conn — it MUST NOT read buffered, or read-ahead would swallow
// the first bytes of the frame stream the per-peer reader takes over.
func readRawFrame(r io.Reader, limit int) (byte, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if n < 1 || n > limit+1 {
		return 0, nil, fmt.Errorf("transport: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}
