// Package transport is the message plane under the sharded pregel
// engine: it moves opaque byte frames between shards and provides the
// superstep barrier. The engine's SoA outboxes (outTo/outMsg per
// worker pair) serialize into one length-prefixed frame per remote
// worker-pair bucket — nearly a memcpy for POD message types, with
// sender-side combining already applied — so the transport never looks
// inside a frame.
//
// Two implementations exist: Local, the degenerate single-shard
// transport that keeps the in-process engine's zero-allocation
// steady state, and Socket, a full mesh over unix or TCP sockets for
// multi-process runs. See DESIGN.md "Sharded message plane".
package transport

// Transport connects one shard to its peers. All methods are called
// from the engine's master goroutine only; implementations may use
// background readers internally but need not synchronize Send/Barrier
// against each other.
//
// The contract couples data frames to barriers: every frame Sent by a
// peer during superstep k becomes readable through Recv exactly after
// the local Barrier call for superstep k returns. Barrier is an
// all-gather — each shard contributes one control payload and receives
// every shard's, indexed by shard — which the engine uses for
// aggregator exchange, abort propagation, and stats merging, and after
// the run as a general value all-gather.
type Transport interface {
	// Send queues one data frame for shard dst. The frame becomes
	// visible to dst only after both sides pass the enclosing Barrier.
	// The callee may retain the slice until the next Barrier returns;
	// callers must not reuse it before then.
	Send(dst int, frame []byte) error
	// Recv pops the next inbound data frame released by the last
	// Barrier, in per-peer FIFO order. It returns (nil, nil) when the
	// interval is drained; it never blocks.
	Recv() ([]byte, error)
	// Barrier publishes this shard's control payload, waits for every
	// peer's, and returns all payloads indexed by shard (the local
	// payload at the local index). The returned slices are valid until
	// the next Barrier call.
	Barrier(ctrl []byte) ([][]byte, error)
	// Close tears the mesh down. Peers blocked in Barrier observe an
	// error rather than hanging.
	Close() error
}
