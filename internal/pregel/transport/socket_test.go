package transport

import (
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func netListenTCP() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

// unixAddrs returns one unix-socket address per shard under a temp dir.
func unixAddrs(t *testing.T, count int) []string {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, count)
	for i := range addrs {
		addrs[i] = "unix:" + filepath.Join(dir, fmt.Sprintf("s%d.sock", i))
	}
	return addrs
}

// dialAll establishes a full mesh of count shards concurrently and
// returns the transports indexed by shard.
func dialAll(t *testing.T, count int, addrs []string, fp uint64) []*Socket {
	t.Helper()
	socks := make([]*Socket, count)
	errs := make([]error, count)
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			socks[i], errs[i] = DialMesh(SocketConfig{
				Shard: i, Count: count, Addrs: addrs,
				Fingerprint: fp, Timeout: 10 * time.Second,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: DialMesh: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, s := range socks {
			s.Close()
		}
	})
	return socks
}

// TestSocketMeshBarrier drives a 3-shard mesh through several
// supersteps: every shard sends a distinct data frame to every peer,
// then barriers with its own control payload. Each shard must observe
// all three control payloads and exactly the data addressed to it, in
// per-peer FIFO order, released only by the barrier.
func TestSocketMeshBarrier(t *testing.T) {
	const count = 3
	socks := dialAll(t, count, unixAddrs(t, count), 0xfeed)

	var wg sync.WaitGroup
	fail := make(chan error, count)
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := socks[i]
			for step := 0; step < 5; step++ {
				// Before any send, the interval must be drained.
				if f, err := s.Recv(); err != nil || f != nil {
					fail <- fmt.Errorf("shard %d step %d: pre-send Recv = %v, %v", i, step, f, err)
					return
				}
				for dst := 0; dst < count; dst++ {
					if dst == i {
						continue
					}
					// Two frames per peer to exercise FIFO order.
					for k := 0; k < 2; k++ {
						frame := []byte(fmt.Sprintf("s%d>%d step%d #%d", i, dst, step, k))
						if err := s.Send(dst, frame); err != nil {
							fail <- fmt.Errorf("shard %d: Send: %v", i, err)
							return
						}
					}
				}
				ctrls, err := s.Barrier([]byte(fmt.Sprintf("ctrl s%d step%d", i, step)))
				if err != nil {
					fail <- fmt.Errorf("shard %d step %d: Barrier: %v", i, step, err)
					return
				}
				for j := 0; j < count; j++ {
					want := fmt.Sprintf("ctrl s%d step%d", j, step)
					if string(ctrls[j]) != want {
						fail <- fmt.Errorf("shard %d step %d: ctrl[%d] = %q, want %q", i, step, j, ctrls[j], want)
						return
					}
				}
				var got []string
				for {
					f, err := s.Recv()
					if err != nil {
						fail <- fmt.Errorf("shard %d: Recv: %v", i, err)
						return
					}
					if f == nil {
						break
					}
					got = append(got, string(f))
				}
				if len(got) != 2*(count-1) {
					fail <- fmt.Errorf("shard %d step %d: got %d frames, want %d (%v)", i, step, len(got), 2*(count-1), got)
					return
				}
				// Per-peer FIFO: for every src, #0 must precede #1.
				for src := 0; src < count; src++ {
					if src == i {
						continue
					}
					i0, i1 := -1, -1
					for idx, g := range got {
						if g == fmt.Sprintf("s%d>%d step%d #0", src, i, step) {
							i0 = idx
						}
						if g == fmt.Sprintf("s%d>%d step%d #1", src, i, step) {
							i1 = idx
						}
					}
					if i0 < 0 || i1 < 0 || i0 > i1 {
						fail <- fmt.Errorf("shard %d step %d: frames from %d out of order or missing: %v", i, step, src, got)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	fo, bo, fi, bi := socks[0].Counters()
	if fo == 0 || bo == 0 || fi == 0 || bi == 0 {
		t.Fatalf("counters not advancing: out %d/%d in %d/%d", fo, bo, fi, bi)
	}
}

// TestSocketLargeFrame round-trips a frame far larger than the write
// buffer, interleaved with small ones, across a 2-shard mesh.
func TestSocketLargeFrame(t *testing.T) {
	socks := dialAll(t, 2, unixAddrs(t, 2), 1)
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	big[0], big[len(big)-1] = 0x01, 0x02

	done := make(chan error, 1)
	go func() {
		s := socks[1]
		if _, err := s.Barrier(nil); err != nil {
			done <- err
			return
		}
		var frames [][]byte
		for {
			f, err := s.Recv()
			if err != nil {
				done <- err
				return
			}
			if f == nil {
				break
			}
			frames = append(frames, f)
		}
		if len(frames) != 3 || !bytes.Equal(frames[1], big) ||
			string(frames[0]) != "pre" || string(frames[2]) != "post" {
			done <- fmt.Errorf("peer got %d frames (lens %v)", len(frames), frameLens(frames))
			return
		}
		done <- nil
	}()

	s := socks[0]
	for _, f := range [][]byte{[]byte("pre"), big, []byte("post")} {
		if err := s.Send(1, f); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Barrier(nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func frameLens(frames [][]byte) []int {
	ls := make([]int, len(frames))
	for i, f := range frames {
		ls[i] = len(f)
	}
	return ls
}

// TestSocketFingerprintMismatch: a mesh where the two endpoints loaded
// different graphs must refuse to form.
func TestSocketFingerprintMismatch(t *testing.T) {
	addrs := unixAddrs(t, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := DialMesh(SocketConfig{
				Shard: i, Count: 2, Addrs: addrs,
				Fingerprint: uint64(100 + i), Timeout: 5 * time.Second,
			})
			if s != nil {
				s.Close()
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	// Whichever side validates first names the fingerprint and closes the
	// conn; the other may only observe the resulting EOF. Both must fail.
	named := false
	for i, err := range errs {
		if err == nil {
			t.Fatalf("shard %d formed a mesh despite mismatched fingerprints", i)
		}
		if strings.Contains(err.Error(), "fingerprint") {
			named = true
		}
	}
	if !named {
		t.Fatalf("neither error names the fingerprint: %v / %v", errs[0], errs[1])
	}
}

// TestSocketCloseUnblocksBarrier: a peer vanishing mid-barrier must
// surface an error on the survivor, not a hang.
func TestSocketCloseUnblocksBarrier(t *testing.T) {
	socks := dialAll(t, 2, unixAddrs(t, 2), 7)
	errc := make(chan error, 1)
	go func() {
		_, err := socks[1].Barrier([]byte("x"))
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	socks[0].Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Barrier returned nil error after peer closed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Barrier hung after peer closed")
	}
}

// TestSocketSingleShard: a 1-shard mesh is legal (dvshard -shards 1)
// and behaves like Local.
func TestSocketSingleShard(t *testing.T) {
	s, err := DialMesh(SocketConfig{Shard: 0, Count: 1, Addrs: []string{"unix:unused"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctrls, err := s.Barrier([]byte("solo"))
	if err != nil || len(ctrls) != 1 || string(ctrls[0]) != "solo" {
		t.Fatalf("Barrier = %q, %v", ctrls, err)
	}
	if f, err := s.Recv(); f != nil || err != nil {
		t.Fatalf("Recv = %v, %v", f, err)
	}
	if err := s.Send(1, nil); err == nil {
		t.Fatal("Send to a nonexistent shard succeeded")
	}
}

// TestLocalTransport pins the degenerate single-shard implementation.
func TestLocalTransport(t *testing.T) {
	l := NewLocal()
	ctrls, err := l.Barrier([]byte("c"))
	if err != nil || len(ctrls) != 1 || string(ctrls[0]) != "c" {
		t.Fatalf("Barrier = %q, %v", ctrls, err)
	}
	if f, err := l.Recv(); f != nil || err != nil {
		t.Fatalf("Recv = %v, %v", f, err)
	}
	if err := l.Send(0, []byte("x")); err == nil {
		t.Fatal("Send on Local succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAddr(t *testing.T) {
	cases := []struct {
		in, net, addr string
		ok            bool
	}{
		{"unix:/tmp/a.sock", "unix", "/tmp/a.sock", true},
		{"/tmp/a.sock", "unix", "/tmp/a.sock", true},
		{"tcp:127.0.0.1:9000", "tcp", "127.0.0.1:9000", true},
		{"tcp:localhost:0", "tcp", "localhost:0", true},
		{"garbage", "", "", false},
	}
	for _, tc := range cases {
		n, a, err := splitAddr(tc.in)
		if tc.ok != (err == nil) || n != tc.net || a != tc.addr {
			t.Errorf("splitAddr(%q) = %q, %q, %v", tc.in, n, a, err)
		}
	}
}

// TestSocketTCP forms a 2-shard mesh over loopback TCP.
func TestSocketTCP(t *testing.T) {
	// Reserve two ports by listening and closing; a race against another
	// process is possible but vanishingly unlikely in CI.
	addrs := []string{"tcp:127.0.0.1:0", "tcp:127.0.0.1:0"}
	ports := make([]string, 2)
	for i := range ports {
		ln, err := netListenTCP()
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().String()
		ln.Close()
	}
	addrs[0], addrs[1] = "tcp:"+ports[0], "tcp:"+ports[1]
	socks := dialAll(t, 2, addrs, 42)
	done := make(chan error, 1)
	go func() {
		_, err := socks[1].Barrier(nil)
		done <- err
	}()
	if err := socks[0].Send(1, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	if _, err := socks[0].Barrier(nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	f, err := socks[1].Recv()
	if err != nil || string(f) != "over tcp" {
		t.Fatalf("Recv = %q, %v", f, err)
	}
}
