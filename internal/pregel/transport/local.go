package transport

import "errors"

// Local is the single-shard transport: no peers, no wire. Barrier
// hands the caller's control payload straight back through a cached
// one-element slice, so the engine's barrier seam costs two interface
// calls and zero allocations per superstep — the refactored form of
// the original in-process exchange.
type Local struct {
	out [1][]byte
}

// NewLocal returns the single-shard transport.
func NewLocal() *Local { return &Local{} }

// Send fails: a single-shard mesh has nobody to send to, and the
// engine never produces remote-destined buckets when Count == 1.
func (l *Local) Send(dst int, frame []byte) error {
	return errors.New("transport: Send on single-shard local transport")
}

// Recv reports an always-drained interval.
func (l *Local) Recv() ([]byte, error) { return nil, nil }

// Barrier returns the caller's own payload at index 0.
func (l *Local) Barrier(ctrl []byte) ([][]byte, error) {
	l.out[0] = ctrl
	return l.out[:], nil
}

// Close is a no-op.
func (l *Local) Close() error { return nil }
