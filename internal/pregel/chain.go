package pregel

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// This file implements the checkpoint chain: a directory holding one full
// base snapshot, the incremental DVSNPD records layered on top of it, the
// graph mutation logs that explain fingerprint changes between records, and
// a CRC'd manifest naming them in replay order. A crashed or restarted node
// loads the chain, replays delta records over the base, and seeds the next
// repair without rereading full vertex state. See DESIGN.md §16.
//
// Commit protocol: every append writes its record file first, then rewrites
// the manifest to a temp file and renames it into place. The rename is the
// commit point — a crash between the two leaves an unreferenced record file
// behind, which replay ignores, so the chain always loads to the last
// committed entry.

// ChainManifestVersion is the current manifest format version.
const ChainManifestVersion = 1

// ChainManifestName is the manifest's file name inside a chain directory.
const ChainManifestName = "chain.dvchmf"

// chainManifestMagic prefixes every encoded chain manifest.
var chainManifestMagic = [6]byte{'D', 'V', 'C', 'H', 'M', 'F'}

// ChainEntryKind distinguishes the three record types a chain carries.
type ChainEntryKind uint8

const (
	// ChainBase is a full DVSNAP snapshot record.
	ChainBase ChainEntryKind = iota
	// ChainDelta is a DVSNPD incremental record patching the snapshot
	// reconstructed so far.
	ChainDelta
	// ChainGraphDelta is a graph mutation log (internal/graph delta-log
	// text format) explaining the fingerprint step to the next record.
	ChainGraphDelta
)

func (k ChainEntryKind) String() string {
	switch k {
	case ChainBase:
		return "base"
	case ChainDelta:
		return "delta"
	case ChainGraphDelta:
		return "graphdelta"
	}
	return fmt.Sprintf("ChainEntryKind(%d)", uint8(k))
}

// ChainEntry is one manifest row: a record file plus the identity replay
// must find in it.
type ChainEntry struct {
	Kind        ChainEntryKind
	Superstep   int    // snapshot superstep (0 for graph deltas)
	Fingerprint uint64 // graph fingerprint after this record applies
	// Base identity for ChainDelta entries (zero otherwise): the snapshot
	// state the record patches.
	BaseSuperstep   int
	BaseFingerprint uint64
	Name            string // record file name inside the chain directory
}

// EncodeChainManifest appends the binary manifest encoding to dst:
//
//	magic "DVCHMF" | version u16 | count u32
//	| entry ×count: kind u8 | superstep i64 | fingerprint u64
//	                | baseSuperstep i64 | baseFingerprint u64
//	                | nameLen u16 | name bytes
//	| crc32(IEEE) of everything above, u32
func EncodeChainManifest(dst []byte, entries []ChainEntry) []byte {
	start := len(dst)
	dst = append(dst, chainManifestMagic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, ChainManifestVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(entries)))
	for _, e := range entries {
		dst = append(dst, byte(e.Kind))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(e.Superstep)))
		dst = binary.LittleEndian.AppendUint64(dst, e.Fingerprint)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(e.BaseSuperstep)))
		dst = binary.LittleEndian.AppendUint64(dst, e.BaseFingerprint)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Name)))
		dst = append(dst, e.Name...)
	}
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeChainManifest decodes one manifest from the front of b, returning
// the entries and any remaining bytes. Corrupt, truncated, or
// wrong-version input returns an error wrapping ErrSnapshotCorrupt or
// ErrSnapshotVersion; it never panics. Entry names are constrained to
// plain file names (no path separators, no "..") so a hostile manifest
// cannot direct replay outside its own directory.
func DecodeChainManifest(b []byte) ([]ChainEntry, []byte, error) {
	r := &snapReader{b: b}
	if magic := r.take(len(chainManifestMagic)); r.err == nil {
		for i := range chainManifestMagic {
			if magic[i] != chainManifestMagic[i] {
				r.fail("bad manifest magic")
				break
			}
		}
	}
	ver := r.u16()
	if r.err == nil && ver != ChainManifestVersion {
		return nil, nil, fmt.Errorf("%w: chain manifest version %d, want %d", ErrSnapshotVersion, ver, ChainManifestVersion)
	}
	// Each entry costs at least 35 bytes (fixed fields + empty name).
	count := r.count(35, "manifest entry")
	entries := make([]ChainEntry, 0, count)
	for i := 0; i < count && r.err == nil; i++ {
		var e ChainEntry
		kind := r.u8()
		if r.err == nil && kind > uint8(ChainGraphDelta) {
			r.fail("unknown chain entry kind %d", kind)
		}
		e.Kind = ChainEntryKind(kind)
		e.Superstep = int(int64(r.u64()))
		e.Fingerprint = r.u64()
		e.BaseSuperstep = int(int64(r.u64()))
		e.BaseFingerprint = r.u64()
		nameLen := int(r.u16())
		name := r.take(nameLen)
		if r.err == nil {
			e.Name = string(name)
			if e.Name == "" || e.Name == "." || e.Name == ".." ||
				strings.ContainsAny(e.Name, "/\\\x00") {
				r.fail("entry %d has unsafe record name %q", i, e.Name)
			}
		}
		entries = append(entries, e)
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	consumed := len(b) - len(r.b)
	wantCRC := r.u32()
	if r.err != nil {
		return nil, nil, r.err
	}
	if got := crc32.ChecksumIEEE(b[:consumed]); got != wantCRC {
		return nil, nil, fmt.Errorf("%w: chain manifest checksum mismatch (got %08x, want %08x)", ErrSnapshotCorrupt, got, wantCRC)
	}
	return entries, r.b, nil
}

// cloneSnapshot deep-copies s. ChainWriter keeps the previous snapshot
// around to diff the next one against, and callers (the engine's reusable
// capture buffer in particular) alias and overwrite their snapshot's
// slices between appends.
func cloneSnapshot(s *Snapshot) *Snapshot {
	c := *s
	c.Aggs = append([]float64(nil), s.Aggs...)
	c.Active = append([]bool(nil), s.Active...)
	c.Removed = append([]bool(nil), s.Removed...)
	c.Queue = append([]VertexID(nil), s.Queue...)
	c.InboxCounts = append([]uint32(nil), s.InboxCounts...)
	c.Inbox = append([]byte(nil), s.Inbox...)
	c.Values = append([]byte(nil), s.Values...)
	c.Extra = append([]byte(nil), s.Extra...)
	return &c
}

// DefaultRebaseEvery caps how many consecutive incremental records a chain
// writer layers on one base before writing a fresh full snapshot, bounding
// both replay time and the blast radius of a lost record.
const DefaultRebaseEvery = 16

// ChainWriter appends snapshots and graph mutation logs to a chain
// directory. Not safe for concurrent use; the engine and the serving
// daemon both call it from their single checkpoint/flush path.
type ChainWriter struct {
	dir         string
	rebaseEvery int
	entries     []ChainEntry
	last        *Snapshot // last appended snapshot (deep copy), diff base
	sinceBase   int       // delta records since the last base
}

// NewChainWriter opens (or creates) the chain in dir. An existing manifest
// is loaded and fully replayed so subsequent appends diff against the
// chain's real tip; a corrupt chain returns an error rather than being
// silently overwritten. rebaseEvery <= 0 selects DefaultRebaseEvery.
func NewChainWriter(dir string, rebaseEvery int) (*ChainWriter, error) {
	if rebaseEvery <= 0 {
		rebaseEvery = DefaultRebaseEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &ChainWriter{dir: dir, rebaseEvery: rebaseEvery}
	if _, err := os.Stat(filepath.Join(dir, ChainManifestName)); err == nil {
		st, err := LoadChain(dir)
		if err != nil {
			return nil, fmt.Errorf("pregel: resuming chain %s: %w", dir, err)
		}
		w.entries = st.Entries
		w.last = st.Snapshot
		w.sinceBase = 0
		for _, e := range st.Entries {
			switch e.Kind {
			case ChainBase:
				w.sinceBase = 0
			case ChainDelta:
				w.sinceBase++
			}
		}
	}
	return w, nil
}

// Dir returns the chain directory.
func (w *ChainWriter) Dir() string { return w.dir }

// Entries returns a copy of the committed manifest entries.
func (w *ChainWriter) Entries() []ChainEntry {
	return append([]ChainEntry(nil), w.entries...)
}

// Tip returns the last appended snapshot (nil for an empty chain). The
// returned snapshot is the writer's diff base; callers must not modify it.
func (w *ChainWriter) Tip() *Snapshot { return w.last }

// snapshotEntry encodes the already-cloned snapshot c as the chain's next
// snapshot record — a full base if the chain is empty or rebaseEvery deltas
// have accumulated, an incremental DVSNPD record otherwise — named with
// sequence number seq. It does not touch writer state; the caller commits.
func (w *ChainWriter) snapshotEntry(c *Snapshot, seq int) (ChainEntry, []byte) {
	if w.last == nil || w.sinceBase >= w.rebaseEvery {
		return ChainEntry{
			Kind:        ChainBase,
			Superstep:   c.Superstep,
			Fingerprint: c.Fingerprint,
			Name:        fmt.Sprintf("chain-%06d.base", seq),
		}, c.AppendTo(nil)
	}
	d := DiffSnapshots(w.last, c)
	return ChainEntry{
		Kind:            ChainDelta,
		Superstep:       c.Superstep,
		Fingerprint:     c.Fingerprint,
		BaseSuperstep:   d.BaseSuperstep,
		BaseFingerprint: d.BaseFingerprint,
		Name:            fmt.Sprintf("chain-%06d.delta", seq),
	}, d.AppendTo(nil)
}

// noteSnapshot records a committed snapshot entry as the writer's new tip.
func (w *ChainWriter) noteSnapshot(e ChainEntry, c *Snapshot) {
	if e.Kind == ChainBase {
		w.sinceBase = 0
	} else {
		w.sinceBase++
	}
	w.last = c
}

// AppendSnapshot commits s to the chain: a full base record if the chain
// is empty or rebaseEvery deltas have accumulated, an incremental DVSNPD
// record otherwise. It returns the record's path and encoded size.
func (w *ChainWriter) AppendSnapshot(s *Snapshot) (path string, size int, err error) {
	c := cloneSnapshot(s)
	e, b := w.snapshotEntry(c, len(w.entries))
	path = filepath.Join(w.dir, e.Name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", 0, err
	}
	chainCommitHook("record")
	if err := w.commit(e); err != nil {
		return "", 0, err
	}
	w.noteSnapshot(e, c)
	return path, len(b), nil
}

// AppendBatch atomically appends one served batch: a graph mutation log
// (delta-log text, as written by graph.WriteDeltaLog) followed by the
// snapshot of the repaired run that incorporates it. Both record files are
// written before a single manifest commit publishes the pair, so a crash
// can never leave the chain describing a graph its tip snapshot does not
// match — replay sees either the whole batch or none of it. It returns the
// snapshot record's path and encoded size.
func (w *ChainWriter) AppendBatch(payload []byte, s *Snapshot) (snapPath string, snapSize int, err error) {
	c := cloneSnapshot(s)
	ge := ChainEntry{
		Kind:        ChainGraphDelta,
		Fingerprint: c.Fingerprint,
		Name:        fmt.Sprintf("chain-%06d.gdelta", len(w.entries)),
	}
	if err := os.WriteFile(filepath.Join(w.dir, ge.Name), payload, 0o644); err != nil {
		return "", 0, err
	}
	se, b := w.snapshotEntry(c, len(w.entries)+1)
	snapPath = filepath.Join(w.dir, se.Name)
	if err := os.WriteFile(snapPath, b, 0o644); err != nil {
		return "", 0, err
	}
	chainCommitHook("record")
	if err := w.commit(ge, se); err != nil {
		return "", 0, err
	}
	w.noteSnapshot(se, c)
	return snapPath, len(b), nil
}

// AppendGraphDelta commits a graph mutation log (delta-log text bytes, as
// written by graph.WriteDeltaLog) with the fingerprint the graph has after
// applying it. Replay hands these logs back in order so the caller can
// rebuild the mutated graph the chain's snapshots describe.
func (w *ChainWriter) AppendGraphDelta(payload []byte, fingerprint uint64) (path string, err error) {
	e := ChainEntry{
		Kind:        ChainGraphDelta,
		Fingerprint: fingerprint,
		Name:        fmt.Sprintf("chain-%06d.gdelta", len(w.entries)),
	}
	path = filepath.Join(w.dir, e.Name)
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		return "", err
	}
	chainCommitHook("record")
	if err := w.commit(e); err != nil {
		return "", err
	}
	return path, nil
}

// commit appends es to the manifest and atomically renames it into place —
// the chain's single commit point.
func (w *ChainWriter) commit(es ...ChainEntry) error {
	entries := append(w.entries, es...)
	tmp := filepath.Join(w.dir, ChainManifestName+".tmp")
	if err := os.WriteFile(tmp, EncodeChainManifest(nil, entries), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, ChainManifestName)); err != nil {
		return err
	}
	w.entries = entries
	chainCommitHook("manifest")
	return nil
}

// chainCommitHook is a test seam: the crash suites swap it to copy the
// chain directory between the record write and the manifest rename,
// simulating a kill at every commit stage. The default does nothing.
var chainCommitHook = func(stage string) {}

// ChainState is a fully replayed chain: the reconstructed tip snapshot and
// the graph mutation logs, in commit order, that explain how the graph
// reached the tip's fingerprint.
type ChainState struct {
	Dir      string
	Entries  []ChainEntry
	Snapshot *Snapshot // reconstructed tip (nil only if the chain has no snapshot records)
	// GraphDeltas holds each ChainGraphDelta record's payload in commit
	// order, parallel to GraphFingerprints (the fingerprint after applying
	// each log).
	GraphDeltas       [][]byte
	GraphFingerprints []uint64
}

// LoadChain reads dir's manifest and replays every record: base snapshots
// load whole, delta records patch the snapshot reconstructed so far, graph
// logs are collected for the caller to re-apply. Every record is CRC- and
// identity-checked against its manifest row; any mismatch fails the load.
func LoadChain(dir string) (*ChainState, error) {
	mb, err := os.ReadFile(filepath.Join(dir, ChainManifestName))
	if err != nil {
		return nil, err
	}
	entries, rest, err := DecodeChainManifest(mb)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Join(dir, ChainManifestName), err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: chain manifest has %d trailing bytes", ErrSnapshotCorrupt, len(rest))
	}
	st := &ChainState{Dir: dir, Entries: entries}
	for i, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name))
		if err != nil {
			return nil, fmt.Errorf("chain entry %d (%s): %w", i, e.Kind, err)
		}
		switch e.Kind {
		case ChainBase:
			s, rest, err := DecodeSnapshot(b)
			if err != nil {
				return nil, fmt.Errorf("chain entry %d (%s %s): %w", i, e.Kind, e.Name, err)
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("%w: chain entry %d (%s) has %d trailing bytes", ErrSnapshotCorrupt, i, e.Name, len(rest))
			}
			if s.Fingerprint != e.Fingerprint || s.Superstep != e.Superstep {
				return nil, fmt.Errorf("%w: chain entry %d (%s) is superstep %d/%016x, manifest says %d/%016x",
					ErrSnapshotMismatch, i, e.Name, s.Superstep, s.Fingerprint, e.Superstep, e.Fingerprint)
			}
			st.Snapshot = s
		case ChainDelta:
			if st.Snapshot == nil {
				return nil, fmt.Errorf("%w: chain entry %d (%s) is a delta record with no base before it", ErrSnapshotCorrupt, i, e.Name)
			}
			d, rest, err := DecodeSnapshotDelta(b)
			if err != nil {
				return nil, fmt.Errorf("chain entry %d (%s %s): %w", i, e.Kind, e.Name, err)
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("%w: chain entry %d (%s) has %d trailing bytes", ErrSnapshotCorrupt, i, e.Name, len(rest))
			}
			if d.Fingerprint != e.Fingerprint || d.Superstep != e.Superstep {
				return nil, fmt.Errorf("%w: chain entry %d (%s) is superstep %d/%016x, manifest says %d/%016x",
					ErrSnapshotMismatch, i, e.Name, d.Superstep, d.Fingerprint, e.Superstep, e.Fingerprint)
			}
			next, err := ApplySnapshotDelta(st.Snapshot, d)
			if err != nil {
				return nil, fmt.Errorf("chain entry %d (%s %s): %w", i, e.Kind, e.Name, err)
			}
			st.Snapshot = next
		case ChainGraphDelta:
			st.GraphDeltas = append(st.GraphDeltas, b)
			st.GraphFingerprints = append(st.GraphFingerprints, e.Fingerprint)
		}
	}
	if st.Snapshot == nil {
		return nil, fmt.Errorf("%w: chain %s has no snapshot records", ErrSnapshotCorrupt, dir)
	}
	return st, nil
}

// IsChainDir reports whether dir holds a chain manifest — used by CLIs to
// let one -resume flag accept either a snapshot file or a chain directory.
func IsChainDir(dir string) bool {
	fi, err := os.Stat(filepath.Join(dir, ChainManifestName))
	return err == nil && fi.Mode().IsRegular()
}
