package pregel

import (
	"io"
	"math"
	"testing"

	"repro/internal/graph"
)

// TestSteadyStateAllocs pins the engine's zero-allocation invariant: once
// the per-run scratch is warm (superstep >= 2), a superstep performs no
// heap allocation on the non-keyed PageRank and SSSP message paths, under
// both schedulers.
//
// Measuring "allocations per superstep" directly is awkward because Run
// drives the whole superstep loop, so the test measures the marginal cost:
// two runs of the same workload that differ only in how many steady-state
// supersteps they execute must allocate exactly the same amount. Any
// steady-state allocation shows up as >= 1 alloc per extra superstep;
// setup allocations (engine construction, goroutines, warm-up growth of
// outboxes and queues) cancel because both runs share them.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	g := graph.RMAT(10, 8, 0.57, 0.19, 0.19, true, 7)
	ring := graph.Cycle(64, true)
	for _, sched := range []Scheduler{ScanAll, WorkQueue} {
		sched := sched
		t.Run("pagerank/"+schedName(sched), func(t *testing.T) {
			run := func(rounds int) func() int {
				return func() int {
					e := New[prVal, float64](g, Options{Workers: 4, Scheduler: sched, MaxSupersteps: 32})
					e.SetCombiner(CombinerFunc[float64](func(a, b float64) float64 { return a + b }))
					stats, err := e.Run(prProgram{rounds: rounds})
					if err != nil {
						t.Fatal(err)
					}
					return stats.Supersteps
				}
			}
			checkMarginalAllocs(t, run(5), run(9))
		})
		t.Run("sssp/"+schedName(sched), func(t *testing.T) {
			run := func(waves int) func() int {
				return func() int {
					e := New[ringVal, float64](ring, Options{Workers: 4, Scheduler: sched, MaxSupersteps: 400})
					e.SetCombiner(CombinerFunc[float64](math.Min))
					stats, err := e.Run(ringProgram{waves: waves, n: 64})
					if err != nil {
						t.Fatal(err)
					}
					return stats.Supersteps
				}
			}
			checkMarginalAllocs(t, run(2), run(4))
		})
	}
}

// TestCheckpointSteadyStateAllocs pins the checkpoint-capture cost: with a
// snapshot taken at every barrier into a byte sink, a warmed-up capture
// reuses the engine's Snapshot and encode buffer, so steady-state
// supersteps still show zero marginal allocation. (Writing checkpoint
// files naturally allocates in the OS write path; that cost is per
// checkpoint barrier only, which is what the marginal measurement proves —
// checkpointing-disabled behavior is pinned by TestSteadyStateAllocs.)
func TestCheckpointSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	ring := graph.Cycle(64, true)
	for _, sched := range []Scheduler{ScanAll, WorkQueue} {
		sched := sched
		t.Run(schedName(sched), func(t *testing.T) {
			run := func(waves int) func() int {
				return func() int {
					e := New[ringVal, float64](ring, Options{
						Workers:       4,
						Scheduler:     sched,
						MaxSupersteps: 400,
						Checkpoint:    CheckpointOptions{Every: 1, Sink: io.Discard},
					})
					e.SetCombiner(CombinerFunc[float64](math.Min))
					stats, err := e.Run(ringProgram{waves: waves, n: 64})
					if err != nil {
						t.Fatal(err)
					}
					return stats.Supersteps
				}
			}
			checkMarginalAllocs(t, run(2), run(4))
		})
	}
}

// checkMarginalAllocs runs both workloads under testing.AllocsPerRun and
// fails if the longer one allocates anything beyond the shorter: the
// difference divided by the extra supersteps is the steady-state allocs
// per superstep, which must be zero.
func checkMarginalAllocs(t *testing.T, short, long func() int) {
	t.Helper()
	var shortSteps, longSteps int
	shortAllocs := testing.AllocsPerRun(8, func() { shortSteps = short() })
	longAllocs := testing.AllocsPerRun(8, func() { longSteps = long() })
	extra := longSteps - shortSteps
	if extra <= 0 {
		t.Fatalf("workloads must differ in superstep count: short=%d long=%d", shortSteps, longSteps)
	}
	perStep := (longAllocs - shortAllocs) / float64(extra)
	if perStep != 0 {
		t.Fatalf("steady-state supersteps allocate: %.3f allocs/superstep over %d extra supersteps (short: %.0f allocs in %d steps, long: %.0f allocs in %d steps)",
			perStep, extra, shortAllocs, shortSteps, longAllocs, longSteps)
	}
}

// ringVal / ringProgram is an SSSP-shaped steady-state workload: a
// single relaxation wave circles a directed cycle carrying min-combined
// distances, one message per superstep. Each time the wave returns to
// vertex 0 it is relaunched with strictly smaller distances (so every
// relaxation improves), up to `waves` laps — giving a tunable number of
// identical steady-state supersteps.
type ringVal struct {
	Dist  float64
	Waves int // laps started, maintained by vertex 0 only
}

type ringProgram struct {
	waves int // total laps around the cycle
	n     int // cycle length
}

func (p ringProgram) Init(ctx *Context[ringVal, float64]) {
	v := ctx.Value()
	if ctx.ID() == 0 {
		v.Dist = 0
		ctx.BroadcastOut(1)
	} else {
		v.Dist = math.Inf(1)
	}
	ctx.VoteToHalt()
}

func (p ringProgram) Compute(ctx *Context[ringVal, float64], msgs []float64) {
	v := ctx.Value()
	best := math.Inf(1)
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	switch {
	case best < v.Dist:
		v.Dist = best
		ctx.BroadcastOut(best + 1)
	case ctx.ID() == 0 && len(msgs) > 0 && v.Waves+1 < p.waves:
		// The wave wrapped around; relaunch it below every current
		// distance so each vertex relaxes again.
		v.Waves++
		v.Dist -= 2 * float64(p.n)
		ctx.BroadcastOut(v.Dist + 1)
	}
	ctx.VoteToHalt()
}
