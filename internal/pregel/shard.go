package pregel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/pregel/transport"
)

// This file is the engine side of multi-process sharding: each process
// (shard) owns a contiguous sub-range of the worker set and runs only
// those workers' goroutines; the remaining worker structs exist as
// message stubs that inbound frames decode into, so the exchange and
// aggregator folds still iterate every worker in global order and the
// sharded run is bit-identical to an in-process run with the same total
// worker count. The wire protocol is two transport barriers per
// superstep — one after compute (data frames + aggregator partials +
// hard-abort flags), one after exchange (merged statistics + deferred
// aborts) — and a final value all-gather on success. See DESIGN.md
// "Sharded message plane".

// ShardOptions place this engine in a multi-process sharded run. Every
// process must run the same program over the same graph with identical
// Options (in particular an explicit, identical Workers count — the
// GOMAXPROCS default would diverge across machines), differing only in
// Index. Sharding requires PartitionBlock and supports Checkpoint and
// Resume (each shard owns its own snapshot files); Quarantine and
// WarmStart are not supported sharded.
type ShardOptions struct {
	// Index is this process's shard number, in [0, Count).
	Index int
	// Count is the total number of shards. Count == 1 with a Transport
	// routes the single-process run through it (the dvshard baseline
	// mode); Count == 1 without one is equivalent to no sharding.
	Count int
	// Transport connects this shard to its peers. The engine does not
	// close it; the caller owns its lifecycle (and closing it is what
	// unblocks peers if this process aborts without reaching a barrier).
	Transport transport.Transport
}

// shardState is the per-run sharding bookkeeping hung off the Engine.
// The unsharded path gets a count==1 state routed through the local
// transport, so the superstep loop has exactly one shape.
type shardState struct {
	idx, count  int
	tr          transport.Transport
	wLo, wHi    int   // local worker index range [wLo, wHi)
	workerShard []int // worker id -> owning shard (sharded runs only)

	frameBuf []byte // reusable data-frame / gather scratch
	ctrlBuf  []byte // reusable control-payload scratch
}

func (s *shardState) owns(w int) bool { return w >= s.wLo && w < s.wHi }

// Control payload layout (both barriers):
//
//	u8  kind (1 = post-compute, 2 = post-exchange)
//	u32 superstep
//	u8  flags
//	u16 reason length + reason bytes (abort flags only)
//	kind-specific body
//
// Kind 1 body: u32 aggregator count, u32 worker count, then per local
// worker u32 id + per aggregator (u8 seen, u64 pending bits).
// Kind 2 body: five u64 statistic partials (sent, ran, delivered,
// cross-worker, next-active) summed over the shard's workers.
const (
	ctrlKindBarrier1 byte = 1
	ctrlKindBarrier2 byte = 2

	flagHardAbort    byte = 1 << 0 // abort now, cut inconsistent, no snapshot
	flagPendingAbort byte = 1 << 1 // abort after this barrier, cut consistent
)

// initShard validates Options.Shard and builds the shard state; the
// unsharded run is count==1 over the zero-cost local transport.
func (e *Engine[V, M]) initShard() error {
	so := e.opts.Shard
	w := len(e.workers)
	if so == nil {
		e.shard = &shardState{idx: 0, count: 1, tr: transport.NewLocal(), wLo: 0, wHi: w}
		return nil
	}
	if so.Count < 1 || so.Index < 0 || so.Index >= so.Count {
		return fmt.Errorf("pregel: bad shard %d of %d", so.Index, so.Count)
	}
	if so.Count == 1 {
		tr := so.Transport
		if tr == nil {
			tr = transport.NewLocal()
		}
		e.shard = &shardState{idx: 0, count: 1, tr: tr, wLo: 0, wHi: w}
		return nil
	}
	if so.Transport == nil {
		return errors.New("pregel: sharded run needs a transport")
	}
	if so.Count > w {
		return fmt.Errorf("pregel: %d shards over %d workers; every shard needs at least one", so.Count, w)
	}
	if e.opts.Partition != PartitionBlock {
		return errors.New("pregel: sharding requires PartitionBlock (contiguous vertex ownership)")
	}
	if e.opts.Quarantine {
		return errors.New("pregel: Quarantine is not supported sharded")
	}
	if e.opts.WarmStart != nil {
		return errors.New("pregel: WarmStart is not supported sharded")
	}
	// Frames and the value gather serialize through the codecs even when
	// checkpointing is off.
	if err := e.ensureCodecs(); err != nil {
		return err
	}
	ws := make([]int, w)
	for s := 0; s < so.Count; s++ {
		for i := s * w / so.Count; i < (s+1)*w/so.Count; i++ {
			ws[i] = s
		}
	}
	e.shard = &shardState{
		idx: so.Index, count: so.Count, tr: so.Transport,
		wLo: so.Index * w / so.Count, wHi: (so.Index + 1) * w / so.Count,
		workerShard: ws,
	}
	return nil
}

// localWorkers returns the workers this shard runs goroutines for.
func (e *Engine[V, M]) localWorkers() []*worker[V, M] {
	return e.workers[e.shard.wLo:e.shard.wHi]
}

// ShardInfo returns this engine's shard index and the total shard
// count; (0, 1) for an unsharded engine.
func (e *Engine[V, M]) ShardInfo() (index, count int) {
	if so := e.opts.Shard; so != nil && so.Count > 1 {
		return so.Index, so.Count
	}
	return 0, 1
}

// ShardOwnedRange returns the contiguous global vertex range
// [lo, hi) owned by this shard's workers — the full graph unsharded.
func (e *Engine[V, M]) ShardOwnedRange() (lo, hi int) {
	s := e.shard
	if s == nil || s.count == 1 {
		return 0, e.g.NumVertices()
	}
	if s.wLo >= s.wHi {
		return 0, 0
	}
	return e.workers[s.wLo].lo, e.workers[s.wHi-1].hi
}

// ShardAllGather runs one transport barrier carrying payload and
// returns every shard's payload indexed by shard (the local payload at
// the local index). Valid only outside the superstep loop — callers use
// it after Run to gather per-shard results (e.g. the ΔV VM's state
// rows); every shard must call it the same number of times. The
// returned slices are valid until the next barrier on the transport.
func (e *Engine[V, M]) ShardAllGather(payload []byte) ([][]byte, error) {
	s := e.shard
	if s == nil {
		return [][]byte{payload}, nil
	}
	return s.tr.Barrier(payload)
}

// shardBarrier1 is the post-compute barrier: ship every non-empty
// remote-destined outbox bucket as one data frame, publish aggregator
// partials, then decode the peers' frames into the stub workers so the
// local exchange delivers them in global worker order.
func (e *Engine[V, M]) shardBarrier1() error {
	s := e.shard
	if s.count == 1 {
		_, err := s.tr.Barrier(nil)
		return err
	}
	for _, src := range e.localWorkers() {
		for d := range src.outTo {
			if s.workerShard[d] == s.idx || len(src.outTo[d]) == 0 {
				continue
			}
			s.frameBuf = e.appendDataFrame(s.frameBuf[:0], src, d)
			if err := s.tr.Send(s.workerShard[d], s.frameBuf); err != nil {
				return err
			}
		}
	}
	s.ctrlBuf = e.appendCtrl1(s.ctrlBuf[:0])
	ctrls, err := s.tr.Barrier(s.ctrlBuf)
	if err != nil {
		return err
	}
	for i, c := range ctrls {
		if i == s.idx {
			continue
		}
		if err := e.applyCtrl1(i, c); err != nil {
			return err
		}
	}
	// Reset the stubs' local-destined buckets, then decode this
	// superstep's inbound frames into them. A peer with nothing to send
	// sends no frame, so the reset is what empties its bucket.
	for _, stub := range e.workers {
		if s.owns(stub.id) {
			continue
		}
		for d := s.wLo; d < s.wHi; d++ {
			stub.outTo[d] = stub.outTo[d][:0]
			stub.outMsg[d] = stub.outMsg[d][:0]
		}
	}
	for {
		f, err := s.tr.Recv()
		if err != nil {
			return err
		}
		if f == nil {
			return nil
		}
		if err := e.applyDataFrame(f); err != nil {
			return err
		}
	}
}

// shardBarrier2 is the post-exchange barrier: merge every shard's
// statistic partials into st/nextActive (so the master hook and the
// termination decision see identical global numbers on every shard) and
// exchange abort flags. It returns a non-nil pending error when any
// shard requested a consistent-cut abort at this barrier.
func (e *Engine[V, M]) shardBarrier2(st *StepStats, nextActive *int, pending error) (error, error) {
	s := e.shard
	if s.count == 1 {
		_, err := s.tr.Barrier(nil)
		return nil, err
	}
	s.ctrlBuf = e.appendCtrl2(s.ctrlBuf[:0], st, *nextActive, pending)
	ctrls, err := s.tr.Barrier(s.ctrlBuf)
	if err != nil {
		return nil, err
	}
	remotePending := pending
	for i, c := range ctrls {
		if i == s.idx {
			continue
		}
		reason, flags, err := e.applyCtrl2(i, c, st, nextActive)
		if err != nil {
			return nil, err
		}
		if flags&flagHardAbort != 0 {
			return nil, fmt.Errorf("pregel: aborted by shard %d: %s", i, reason)
		}
		if flags&flagPendingAbort != 0 && remotePending == nil {
			remotePending = fmt.Errorf("pregel: abort requested by shard %d: %s", i, reason)
		}
	}
	return remotePending, nil
}

// shardSignalAbort performs a best-effort barrier carrying a hard-abort
// flag so peers stop at their next barrier instead of hanging; the
// local run then aborts without a snapshot (the cluster-wide cut is
// inconsistent — some shards' compute for this superstep already ran).
func (e *Engine[V, M]) shardSignalAbort(kind byte, cause error) {
	s := e.shard
	if s == nil || s.count == 1 {
		return
	}
	s.ctrlBuf = e.appendAbortCtrl(s.ctrlBuf[:0], kind, cause.Error())
	_, _ = s.tr.Barrier(s.ctrlBuf)
}

// shardGatherValues completes a successful sharded run: every shard
// broadcasts its owned [lo, hi) value range so Values() is whole
// everywhere. PartitionBlock makes each range contiguous.
func (e *Engine[V, M]) shardGatherValues() error {
	s := e.shard
	if s == nil || s.count == 1 {
		return nil
	}
	n := e.g.NumVertices()
	lo, hi := e.ShardOwnedRange()
	buf := s.frameBuf[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(lo))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(hi))
	for u := lo; u < hi; u++ {
		buf = e.valCodec.AppendValue(buf, e.values[u])
	}
	s.frameBuf = buf
	ctrls, err := s.tr.Barrier(buf)
	if err != nil {
		return fmt.Errorf("pregel: value gather: %w", err)
	}
	for i, c := range ctrls {
		if i == s.idx {
			continue
		}
		if len(c) < 8 {
			return fmt.Errorf("pregel: value gather: short payload from shard %d", i)
		}
		plo := int(binary.LittleEndian.Uint32(c))
		phi := int(binary.LittleEndian.Uint32(c[4:]))
		if plo > phi || phi > n {
			return fmt.Errorf("pregel: value gather: shard %d claims range [%d, %d)", i, plo, phi)
		}
		rest := c[8:]
		for u := plo; u < phi; u++ {
			v, r, err := e.valCodec.DecodeValue(rest)
			if err != nil {
				return fmt.Errorf("pregel: value gather: shard %d vertex %d: %w", i, u, err)
			}
			e.values[u] = v
			rest = r
		}
		if len(rest) != 0 {
			return fmt.Errorf("pregel: value gather: %d trailing bytes from shard %d", len(rest), i)
		}
	}
	return nil
}

// appendDataFrame encodes one worker-pair outbox bucket: the SoA outTo
// array as packed u32s followed by the codec-encoded payloads — for POD
// message types both halves are effectively memcpys.
func (e *Engine[V, M]) appendDataFrame(dst []byte, src *worker[V, M], d int) []byte {
	to, msgs := src.outTo[d], src.outMsg[d]
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.superstep))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(src.id))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(to)))
	for _, t := range to {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(t))
	}
	for _, m := range msgs {
		dst = e.msgCodec.AppendValue(dst, m)
	}
	return dst
}

// applyDataFrame decodes an inbound worker-pair bucket into the sending
// stub worker, reusing the bucket's capacity.
func (e *Engine[V, M]) applyDataFrame(f []byte) error {
	s := e.shard
	if len(f) < 16 {
		return fmt.Errorf("pregel: short data frame (%d bytes)", len(f))
	}
	step := int(binary.LittleEndian.Uint32(f))
	src := int(binary.LittleEndian.Uint32(f[4:]))
	dst := int(binary.LittleEndian.Uint32(f[8:]))
	count := int(binary.LittleEndian.Uint32(f[12:]))
	if step != e.superstep {
		return fmt.Errorf("pregel: data frame for superstep %d at superstep %d (mismatched shards?)", step, e.superstep)
	}
	if src < 0 || src >= len(e.workers) || s.owns(src) || !s.owns(dst) {
		return fmt.Errorf("pregel: data frame routes worker %d -> %d, not a remote-to-local pair", src, dst)
	}
	rest := f[16:]
	if count < 0 || len(rest) < 4*count {
		return fmt.Errorf("pregel: data frame count %d exceeds payload", count)
	}
	stub := e.workers[src]
	to := stub.outTo[dst][:0]
	msg := stub.outMsg[dst][:0]
	for i := 0; i < count; i++ {
		to = append(to, graph.VertexID(binary.LittleEndian.Uint32(rest[4*i:])))
	}
	rest = rest[4*count:]
	for i := 0; i < count; i++ {
		m, r, err := e.msgCodec.DecodeValue(rest)
		if err != nil {
			return fmt.Errorf("pregel: data frame message %d: %w", i, err)
		}
		msg = append(msg, m)
		rest = r
	}
	if len(rest) != 0 {
		return fmt.Errorf("pregel: %d trailing data frame bytes", len(rest))
	}
	stub.outTo[dst] = to
	stub.outMsg[dst] = msg
	return nil
}

func appendCtrlHeader(dst []byte, kind byte, superstep int, flags byte, reason string) []byte {
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(superstep))
	dst = append(dst, flags)
	if len(reason) > 65535 {
		reason = reason[:65535]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(reason)))
	return append(dst, reason...)
}

// decodeCtrlHeader validates the common prefix against the local
// superstep and returns flags, reason, and the kind-specific body.
func (e *Engine[V, M]) decodeCtrlHeader(shard int, kind byte, c []byte) (byte, string, []byte, error) {
	if len(c) < 8 {
		return 0, "", nil, fmt.Errorf("pregel: short control payload from shard %d", shard)
	}
	if c[0] != kind {
		return 0, "", nil, fmt.Errorf("pregel: shard %d sent control kind %d at barrier kind %d", shard, c[0], kind)
	}
	step := int(binary.LittleEndian.Uint32(c[1:]))
	flags := c[5]
	rl := int(binary.LittleEndian.Uint16(c[6:]))
	if len(c) < 8+rl {
		return 0, "", nil, fmt.Errorf("pregel: truncated control payload from shard %d", shard)
	}
	reason := string(c[8 : 8+rl])
	if step != e.superstep {
		return 0, "", nil, fmt.Errorf("pregel: shard %d is at superstep %d, this shard at %d (mismatched resume?)", shard, step, e.superstep)
	}
	return flags, reason, c[8+rl:], nil
}

// appendCtrl1 encodes the post-compute control payload: per-local-
// worker aggregator partials, in worker order, so every shard can fold
// all W workers' contributions identically.
func (e *Engine[V, M]) appendCtrl1(dst []byte) []byte {
	dst = appendCtrlHeader(dst, ctrlKindBarrier1, e.superstep, 0, "")
	locals := e.localWorkers()
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.aggList)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(locals)))
	for _, wk := range locals {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(wk.id))
		for i := range e.aggList {
			seen := byte(0)
			if wk.aggSeen[i] {
				seen = 1
			}
			dst = append(dst, seen)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(wk.aggPend[i]))
		}
	}
	return dst
}

// applyCtrl1 copies a peer shard's aggregator partials into its stub
// workers (mergeAggregators then folds them in global worker order) and
// surfaces its abort flag.
func (e *Engine[V, M]) applyCtrl1(shard int, c []byte) error {
	flags, reason, body, err := e.decodeCtrlHeader(shard, ctrlKindBarrier1, c)
	if err != nil {
		return err
	}
	if flags&flagHardAbort != 0 {
		return fmt.Errorf("pregel: aborted by shard %d: %s", shard, reason)
	}
	if len(body) < 8 {
		return fmt.Errorf("pregel: truncated aggregator block from shard %d", shard)
	}
	nAggs := int(binary.LittleEndian.Uint32(body))
	nWorkers := int(binary.LittleEndian.Uint32(body[4:]))
	if nAggs != len(e.aggList) {
		return fmt.Errorf("pregel: shard %d registers %d aggregators, this shard %d", shard, nAggs, len(e.aggList))
	}
	body = body[8:]
	per := 4 + 9*nAggs
	if len(body) != nWorkers*per {
		return fmt.Errorf("pregel: aggregator block from shard %d is %d bytes, want %d", shard, len(body), nWorkers*per)
	}
	for w := 0; w < nWorkers; w++ {
		rec := body[w*per:]
		id := int(binary.LittleEndian.Uint32(rec))
		if id < 0 || id >= len(e.workers) || e.shard.workerShard[id] != shard {
			return fmt.Errorf("pregel: shard %d published aggregators for worker %d it does not own", shard, id)
		}
		stub := e.workers[id]
		rec = rec[4:]
		for i := 0; i < nAggs; i++ {
			stub.aggSeen[i] = rec[9*i] != 0
			stub.aggPend[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[9*i+1:]))
		}
	}
	return nil
}

// appendCtrl2 encodes the post-exchange control payload: this shard's
// statistic partials plus any deferred abort.
func (e *Engine[V, M]) appendCtrl2(dst []byte, st *StepStats, nextActive int, pending error) []byte {
	flags := byte(0)
	reason := ""
	if pending != nil {
		flags = flagPendingAbort
		reason = pending.Error()
	}
	dst = appendCtrlHeader(dst, ctrlKindBarrier2, e.superstep, flags, reason)
	for _, v := range [5]int{st.MessagesSent, st.ActiveVertices, st.CombinedMessages, st.CrossWorker, nextActive} {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	return dst
}

// applyCtrl2 folds a peer shard's statistic partials into the merged
// step statistics and returns its abort flags.
func (e *Engine[V, M]) applyCtrl2(shard int, c []byte, st *StepStats, nextActive *int) (string, byte, error) {
	flags, reason, body, err := e.decodeCtrlHeader(shard, ctrlKindBarrier2, c)
	if err != nil {
		return "", 0, err
	}
	if flags&flagHardAbort != 0 {
		return reason, flags, nil
	}
	if len(body) != 40 {
		return "", 0, fmt.Errorf("pregel: statistics block from shard %d is %d bytes, want 40", shard, len(body))
	}
	st.MessagesSent += int(binary.LittleEndian.Uint64(body))
	st.ActiveVertices += int(binary.LittleEndian.Uint64(body[8:]))
	st.CombinedMessages += int(binary.LittleEndian.Uint64(body[16:]))
	st.CrossWorker += int(binary.LittleEndian.Uint64(body[24:]))
	*nextActive += int(binary.LittleEndian.Uint64(body[32:]))
	return reason, flags, nil
}

func (e *Engine[V, M]) appendAbortCtrl(dst []byte, kind byte, reason string) []byte {
	return appendCtrlHeader(dst, kind, e.superstep, flagHardAbort, reason)
}
