package pregel

import (
	"testing"

	"repro/internal/graph"
)

// TestVertexDeletionWithZeroOutBroadcast reproduces the paper's §9 vertex
// deletion sketch: a vertex that leaves the computation first broadcasts a
// patch that zeroes out its most recently sent contribution, so receivers'
// memoized sums stay coherent after the deletion.
//
// Topology: leavers {1,2,3} each feed vertex 0, which memoizes the sum of
// contributions via Δ-messages (value 10 each). At superstep 2, vertex 2
// deletes itself: it sends -10 (the zero-out Δ) and removes itself. The
// hub's memoized sum must end at 20, and later messages addressed to the
// removed vertex must be dropped.
func TestVertexDeletionWithZeroOutBroadcast(t *testing.T) {
	b := graph.NewBuilder(4, true)
	b.AddEdge(1, 0)
	b.AddEdge(2, 0)
	b.AddEdge(3, 0)
	g := b.Finalize()

	e := New[delVal, float64](g, Options{Workers: 2})
	if _, err := e.Run(&deletionProgram{}); err != nil {
		t.Fatal(err)
	}
	if got := e.Value(0).Sum; got != 20 {
		t.Fatalf("hub sum after deletion = %g, want 20", got)
	}
	if e.Value(2).Runs != 2 {
		t.Fatalf("deleted vertex ran %d times, want 2", e.Value(2).Runs)
	}
}

type delVal struct {
	Sum  float64
	Runs int
}

type deletionProgram struct{}

func (*deletionProgram) Init(ctx *Context[delVal, float64]) {
	ctx.Value().Runs++
	if ctx.ID() != 0 {
		// Contribute 10 to the hub's memoized sum (the Δ of a fresh value
		// against the empty cache).
		ctx.BroadcastOut(10)
	}
	// Everyone stays active for one more superstep.
}

func (*deletionProgram) Compute(ctx *Context[delVal, float64], msgs []float64) {
	ctx.Value().Runs++
	for _, m := range msgs {
		ctx.Value().Sum += m // memoized aggregation: apply Δ-patches
	}
	if ctx.Superstep() == 1 && ctx.ID() == 2 {
		// §9: "the vertex being deleted first broadcasts a message that
		// zeros out the value of the vertex to its neighbors before the
		// deletion is performed".
		ctx.BroadcastOut(-10)
		ctx.RemoveSelf()
		return
	}
	if ctx.Superstep() == 1 && ctx.ID() == 1 {
		// Prove post-deletion messages to vertex 2 are dropped silently.
		ctx.Send(2, 999)
	}
	ctx.VoteToHalt()
}

// TestKeyedCombinerSeparatesChannels checks that a KeyedCombiner only
// merges same-key messages — the "message channels" behaviour the paper's
// future work points at.
func TestKeyedCombinerSeparatesChannels(t *testing.T) {
	// 8 senders → 1 hub, alternating channels; one worker so that without
	// keys everything would combine into a single envelope.
	b := graph.NewBuilder(9, true)
	for v := 1; v <= 8; v++ {
		b.AddEdge(graph.VertexID(v), 0)
	}
	g := b.Finalize()
	e := New[chanVal, chanMsg](g, Options{Workers: 1})
	e.SetCombiner(chanCombiner{})
	stats, err := e.Run(&chanProgram{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesSent != 8 {
		t.Fatalf("sent = %d, want 8", stats.MessagesSent)
	}
	// Two channels → exactly two combined envelopes.
	if stats.CombinedMessages != 2 {
		t.Fatalf("combined = %d, want 2 (one per channel)", stats.CombinedMessages)
	}
	v := e.Value(0)
	if v.A != 4 || v.B != 4 {
		t.Fatalf("channel sums = (%g, %g), want (4, 4)", v.A, v.B)
	}
}

type chanVal struct{ A, B float64 }

type chanMsg struct {
	Chan uint32
	Val  float64
}

type chanCombiner struct{}

func (chanCombiner) Combine(a, b chanMsg) chanMsg { a.Val += b.Val; return a }
func (chanCombiner) Key(m chanMsg) uint32         { return m.Chan }

type chanProgram struct{}

func (*chanProgram) Init(ctx *Context[chanVal, chanMsg]) {
	if ctx.ID() != 0 {
		ctx.Send(0, chanMsg{Chan: uint32(ctx.ID() % 2), Val: 1})
	}
	ctx.VoteToHalt()
}

func (*chanProgram) Compute(ctx *Context[chanVal, chanMsg], msgs []chanMsg) {
	for _, m := range msgs {
		if m.Chan == 0 {
			ctx.Value().A += m.Val
		} else {
			ctx.Value().B += m.Val
		}
	}
	ctx.VoteToHalt()
}
