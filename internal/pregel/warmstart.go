package pregel

import (
	"fmt"
)

// warmRestore seeds the engine from a converged snapshot for a
// delta-recomputation run. It is deliberately looser than restore in the
// dimensions a mutated graph changes — the graph fingerprint is checked
// against the caller's expectation (the pre-mutation graph), not the
// engine's graph, and the snapshot's scheduler flag, active set, and
// queue are ignored — and stricter in the dimension correctness needs:
// the snapshot must be a quiescent terminal cut, because a mid-run cut
// has in-flight messages whose senders' recorded state already accounts
// for them, and replaying from such a cut desynchronizes senders from
// receivers.
func (e *Engine[V, M]) warmRestore(ws *WarmStartOptions) error {
	s := ws.Snapshot
	if s == nil {
		return fmt.Errorf("pregel: warm start needs a snapshot")
	}
	n := e.g.NumVertices()
	if s.Version != SnapshotVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrSnapshotVersion, s.Version, SnapshotVersion)
	}
	if ws.ExpectFingerprint != 0 && s.Fingerprint != ws.ExpectFingerprint {
		return fmt.Errorf("%w: warm start expects a snapshot of graph %016x, snapshot was taken on %016x",
			ErrSnapshotMismatch, ws.ExpectFingerprint, s.Fingerprint)
	}
	if !s.Done {
		return fmt.Errorf("%w: warm start needs a terminal (Done) snapshot, got one at superstep %d",
			ErrSnapshotMismatch, s.Superstep)
	}
	// seeded is how many vertices the snapshot covers. With AllowGrowth a
	// larger graph is fine: the snapshot seeds its prefix and the added
	// vertices start zero-valued and halted for the caller to initialize
	// (the ΔV planner runs init{} for them and activates them).
	seeded := s.NumVertices
	if s.NumVertices != n {
		switch {
		case n > s.NumVertices && ws.AllowGrowth:
			// Vertex additions ride the repair superstep.
		case n > s.NumVertices:
			// The usual way here: an edge delta added vertices and the
			// caller fed the pre-mutation snapshot. Name the count and
			// the remedy instead of letting the size mismatch surface as
			// a confusing decode failure downstream.
			return fmt.Errorf("%w: graph gained %d vertices since the snapshot (%d now, %d at capture); added vertices have no converged state to seed — rerun from scratch instead of warm-starting",
				ErrSnapshotMismatch, n-s.NumVertices, n, s.NumVertices)
		default:
			return fmt.Errorf("%w: graph has %d vertices, snapshot has %d",
				ErrSnapshotMismatch, n, s.NumVertices)
		}
	}
	if len(s.Aggs) != len(e.aggList) {
		return fmt.Errorf("%w: run registers %d aggregators, snapshot has %d",
			ErrSnapshotMismatch, len(e.aggList), len(s.Aggs))
	}
	if len(s.Active) != seeded || len(s.Removed) != seeded || len(s.InboxCounts) != seeded {
		return fmt.Errorf("%w: bitset/inbox sizes do not match vertex count", ErrSnapshotCorrupt)
	}
	var inflight int64
	for _, c := range s.InboxCounts {
		inflight += int64(c)
	}
	if inflight != 0 {
		return fmt.Errorf("%w: snapshot is not quiescent (%d in-flight messages); warm starts need a converged fixpoint",
			ErrSnapshotMismatch, inflight)
	}
	b := s.Values
	for i := 0; i < seeded; i++ {
		v, rest, err := e.valCodec.DecodeValue(b)
		if err != nil {
			return fmt.Errorf("pregel: snapshot value %d: %w", i, err)
		}
		e.values[i] = v
		b = rest
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d trailing value bytes", ErrSnapshotCorrupt, len(b))
	}
	copy(e.removed, s.Removed)
	for i, a := range e.aggList {
		a.value = s.Aggs[i]
		if a.persistent {
			a.pending = 0
		} else {
			a.pending = aggIdentity(a.op)
		}
	}
	// Fresh scheduling state: everything halted except the frontier.
	for i := range e.active {
		e.active[i] = false
	}
	for _, wk := range e.workers {
		wk.cur = wk.cur[:0]
	}
	for _, v := range ws.Activate {
		if int(v) >= n {
			return fmt.Errorf("%w: warm start activates vertex %d, graph has %d vertices",
				ErrSnapshotMismatch, v, n)
		}
		if e.removed[v] {
			continue
		}
		if e.active[v] {
			continue // duplicate in Activate
		}
		e.active[v] = true
		if e.opts.Scheduler == WorkQueue {
			wk := e.workers[e.ownerOf(v)]
			wk.cur = append(wk.cur, v)
		}
	}
	e.activateAll = false
	e.stopped = false
	return nil
}
