package pregel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
	"unsafe"

	"repro/internal/graph"
)

// Engine executes a Program over a Graph. Create one with New, optionally
// configure combiner/aggregators/master hook, then call Run. An Engine is
// single-use: Run may only be called once.
type Engine[V, M any] struct {
	g    *graph.Graph
	opts Options

	values  []V
	active  []bool
	removed []bool

	workers []*worker[V, M]
	block   int // vertices per worker block

	combiner   Combiner[M]
	msgBytes   int
	aggs       map[string]*aggregator
	aggList    []*aggregator // registration order; index == aggregator.index
	masterHook func(*MasterContext)
	globals    any

	activateAll bool
	stopped     bool
	superstep   int

	// stepDeadline is the wall-clock bound of the current superstep's
	// compute phase, written by the master before each compute broadcast
	// when StepTimeout is armed (the broadcast orders it before worker
	// reads); zero when StepTimeout is off.
	stepDeadline time.Time

	stats Stats
	ran   bool

	// Checkpoint machinery (see checkpoint.go). The Snapshot and encode
	// buffer are reused across captures so periodic checkpoints settle into
	// steady-state buffers instead of allocating per barrier.
	valCodec ValueCodec[V]
	msgCodec ValueCodec[M]
	snap     Snapshot
	snapBuf  []byte
	chain    *ChainWriter // lazily opened when Checkpoint.Incremental

	// Sharding state (see shard.go). Always non-nil once RunContext
	// starts; the unsharded run is the count==1 case over the local
	// transport, so the superstep loop has exactly one shape.
	shard *shardState
}

// worker owns a contiguous slot range and all the scratch its superstep
// loop needs. Every buffer here is allocated once (in New or at the start
// of Run) and reused across supersteps, so a warmed-up steady-state
// superstep performs no heap allocation — see DESIGN.md "Message plane".
type worker[V, M any] struct {
	id     int
	lo, hi int // local vertex range [lo, hi)
	eng    *Engine[V, M]

	// Outboxes, one per destination worker, in structure-of-arrays form:
	// outTo[d][i] is the destination vertex of the i-th envelope to worker
	// d and outMsg[d][i] its payload. The count/scatter passes of exchange
	// stream over the compact outTo arrays without dragging payloads
	// through cache.
	outTo  [][]VertexID
	outMsg [][]M

	msgOff []int32 // per local vertex +1, offsets into msgBuf
	msgBuf []M

	// WorkQueue scheduling state.
	cur, next []VertexID
	queued    []uint32
	stamp     uint32

	// Exchange scatter cursor, sized once in New.
	cursor []int32

	// Dense combining scratch: combSlot[li] is the index (into the
	// combined prefix of the bucket being processed) of the envelope
	// addressed to local destination slot li; valid only while
	// combStamp[li] == combEpoch, so the table is never cleared.
	combSlot  []int32
	combStamp []uint32
	combEpoch uint32

	// Reusable fallback index for KeyedCombiner, where (vertex, key)
	// pairs are too sparse for a dense table.
	keyedIdx map[uint64]int32

	ctx Context[V, M]

	// Panic containment: step() recovers panics raised in compute or
	// exchange into panicErr, which the master reads after the barrier
	// (the WaitGroup wait orders the accesses). inVertex is true exactly
	// while a vertex's Init/Compute is on the stack, so a recovered
	// compute-phase panic can be attributed to ctx.id.
	panicErr *RunError
	inVertex bool

	// timedOut is set by the cooperative StepTimeout check inside the
	// vertex loop; the master reads it after the compute barrier.
	timedOut bool

	// Quarantine scratch (Options.Quarantine only): sendMark records the
	// per-destination outbox lengths before each vertex call so a
	// panicking vertex's partial sends can be rolled back, and
	// quarantined collects the vertices recovered this superstep (the
	// master drains it after the compute barrier).
	sendMark    []int
	quarantined []VertexID

	// Per-superstep partial stats.
	sent       int
	ran        int
	delivered  int
	cross      int
	nextActive int

	// Pending aggregator contributions, dense over registration order.
	aggPend []float64
	aggSeen []bool
}

// New creates an Engine over g with the given options.
func New[V, M any](g *graph.Graph, opts Options) *Engine[V, M] {
	n := g.NumVertices()
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers > n && n > 0 {
		opts.Workers = n
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.MaxSupersteps <= 0 {
		opts.MaxSupersteps = 10_000
	}
	var zero M
	e := &Engine[V, M]{
		g:        g,
		opts:     opts,
		values:   make([]V, n),
		active:   make([]bool, n),
		removed:  make([]bool, n),
		aggs:     map[string]*aggregator{},
		msgBytes: int(unsafe.Sizeof(zero)),
		block:    (n + opts.Workers - 1) / opts.Workers,
	}
	if e.block == 0 {
		e.block = 1
	}
	for w := 0; w < opts.Workers; w++ {
		lo := w * e.block
		hi := lo + e.block
		if opts.Partition == PartitionBlock {
			// Block slots are vertex IDs; trailing workers may be empty.
			if lo > n {
				lo = n
			}
			if hi > n {
				hi = n
			}
		}
		wk := &worker[V, M]{
			id:     w,
			lo:     lo,
			hi:     hi,
			eng:    e,
			outTo:  make([][]VertexID, opts.Workers),
			outMsg: make([][]M, opts.Workers),
		}
		wk.msgOff = make([]int32, hi-lo+1)
		wk.queued = make([]uint32, hi-lo)
		wk.cursor = make([]int32, hi-lo)
		wk.ctx = Context[V, M]{eng: e, w: wk}
		e.workers = append(e.workers, wk)
	}
	return e
}

// SetCombiner installs a sender-side message combiner.
func (e *Engine[V, M]) SetCombiner(c Combiner[M]) { e.combiner = c }

// SetMessageSize overrides the per-message byte accounting (defaults to
// unsafe.Sizeof(M)).
func (e *Engine[V, M]) SetMessageSize(bytes int) { e.msgBytes = bytes }

// SetMasterHook installs fn, called at the end of every superstep (after
// message exchange, before the next superstep's compute phase).
func (e *Engine[V, M]) SetMasterHook(fn func(*MasterContext)) { e.masterHook = fn }

// SetGlobals installs a value visible read-only to every vertex via
// Context.Globals. The master hook may replace it between supersteps.
func (e *Engine[V, M]) SetGlobals(g any) { e.globals = g }

// RegisterAggregator registers a master aggregator. Persistent aggregators
// must use AggSum; their value carries across supersteps and vertex
// contributions are treated as adjustments. Names are resolved to dense
// indices here, once, so the per-superstep aggregation path stays free of
// string-keyed maps.
func (e *Engine[V, M]) RegisterAggregator(name string, op AggregatorOp, persistent bool) error {
	if persistent && op != AggSum {
		return fmt.Errorf("pregel: persistent aggregator %q must use AggSum", name)
	}
	if _, dup := e.aggs[name]; dup {
		return fmt.Errorf("pregel: duplicate aggregator %q", name)
	}
	a := &aggregator{op: op, persistent: persistent, index: len(e.aggList)}
	a.value = aggIdentity(op)
	if persistent {
		a.value = 0
	}
	a.pending = aggIdentity(op)
	if persistent {
		a.pending = 0
	}
	e.aggs[name] = a
	e.aggList = append(e.aggList, a)
	return nil
}

// Values returns the vertex values; valid after Run.
func (e *Engine[V, M]) Values() []V { return e.values }

// Value returns vertex u's value; valid after Run.
func (e *Engine[V, M]) Value(u VertexID) V { return e.values[u] }

// Graph returns the underlying graph.
func (e *Engine[V, M]) Graph() *graph.Graph { return e.g }

// AggregatorValue returns the committed value of a registered aggregator.
func (e *Engine[V, M]) AggregatorValue(name string) float64 {
	a, ok := e.aggs[name]
	if !ok {
		panic(fmt.Sprintf("pregel: unknown aggregator %q", name))
	}
	return a.value
}

// slotOf maps a vertex to its scheduling slot. With block partitioning
// slots are vertex IDs; with hash partitioning vertex v lives at slot
// (v mod W)·block + v/W so that each worker still owns one contiguous
// slot range.
func (e *Engine[V, M]) slotOf(v VertexID) int {
	if e.opts.Partition == PartitionHash {
		return (int(v)%e.opts.Workers)*e.block + int(v)/e.opts.Workers
	}
	return int(v)
}

// vertexAt inverts slotOf; the result may be >= NumVertices for padding
// slots in hash mode (callers skip those).
func (e *Engine[V, M]) vertexAt(slot int) int {
	if e.opts.Partition == PartitionHash {
		w := slot / e.block
		i := slot % e.block
		return i*e.opts.Workers + w
	}
	return slot
}

func (e *Engine[V, M]) ownerOf(v VertexID) int {
	w := e.slotOf(v) / e.block
	if w >= e.opts.Workers {
		w = e.opts.Workers - 1
	}
	return w
}

type workerCmd int

const (
	cmdCompute workerCmd = iota
	cmdExchange
	cmdStop
)

// Run executes prog to completion and returns the run statistics. It is
// RunContext with a background context.
func (e *Engine[V, M]) Run(prog Program[V, M]) (*Stats, error) {
	return e.RunContext(context.Background(), prog)
}

// RunContext executes prog to completion, or until ctx is cancelled, a
// deadline (Options.Deadline, a ctx deadline, or Options.StepTimeout)
// fires, or user code panics. Lifecycle conditions are checked at the
// superstep barriers: before each superstep's compute phase and again
// between compute and exchange — a Compute call that never returns cannot
// be preempted. Panics raised by Program.Init/Compute, a Combiner, or the
// master hook are recovered into a *RunError (which the returned error
// wraps or is) instead of crashing the process; the worker pool shuts down
// cleanly in every case.
//
// On any abort the returned *Stats is non-nil and holds the statistics
// accumulated so far, with Aborted set and AbortReason describing the
// cause. An empty graph completes immediately with the same Stats shape as
// a zero-superstep run — non-nil Steps, a measured Duration — and, when a
// master hook is installed, fires it once with zero-valued step statistics
// so master-side finalization still happens.
func (e *Engine[V, M]) RunContext(ctx context.Context, prog Program[V, M]) (*Stats, error) {
	if e.ran {
		return nil, errors.New("pregel: Engine.Run called twice")
	}
	e.ran = true
	start := time.Now() //lint:allow timenow — stats-only wall-clock timing
	e.stats.CheckpointSuperstep = -1

	if err := e.initShard(); err != nil {
		return nil, err
	}
	sharded := e.shard.count > 1

	ckptOn := e.opts.Checkpoint.enabled()
	if ckptOn || e.opts.Resume != nil || e.opts.WarmStart != nil {
		if err := e.ensureCodecs(); err != nil {
			return nil, err
		}
	}
	if e.opts.Resume != nil && e.opts.WarmStart != nil {
		return nil, errors.New("pregel: Resume and WarmStart are mutually exclusive")
	}

	// The effective run deadline is the earlier of Options.Deadline and
	// the context's own deadline; either alone also applies.
	deadline := e.opts.Deadline
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	// abort finalizes partial statistics and wraps the cause. A *RunError
	// cause is returned as-is (it already carries superstep and worker
	// attribution); everything else is wrapped with the abort superstep.
	abort := func(cause error) (*Stats, error) {
		e.stats.Duration = time.Since(start)
		e.stats.Aborted = true
		e.stats.AbortReason = cause.Error()
		if re, ok := cause.(*RunError); ok {
			return &e.stats, re
		}
		return &e.stats, fmt.Errorf("pregel: run aborted at superstep %d: %w", e.superstep, cause)
	}

	var mc *MasterContext
	if e.masterHook != nil {
		mc = &MasterContext{
			aggValue:   e.AggregatorValue,
			setGlobals: func(g any) { e.globals = g },
			getGlobals: func() any { return e.globals },
		}
	}

	if e.g.NumVertices() == 0 {
		e.stats.Steps = make([]StepStats, 0)
		if e.masterHook != nil {
			if err := e.fireMasterHook(mc, StepStats{}, 0); err != nil {
				return abort(err)
			}
		}
		e.stats.Duration = time.Since(start)
		return &e.stats, nil
	}

	// Size the remaining per-run scratch now that combiner and aggregators
	// are known; nothing below allocates per superstep.
	_, keyed := e.combiner.(KeyedCombiner[M])
	for _, wk := range e.workers {
		wk.aggPend = make([]float64, len(e.aggList))
		wk.aggSeen = make([]bool, len(e.aggList))
		if e.combiner != nil && !keyed && e.shard.owns(wk.id) {
			wk.combSlot = make([]int32, e.block)
			wk.combStamp = make([]uint32, e.block)
		}
		if e.opts.Quarantine {
			wk.sendMark = make([]int, e.opts.Workers)
		}
	}
	e.stats.Steps = make([]StepStats, 0, min(e.opts.MaxSupersteps, 4096))

	// A resumed run restores the snapshot barrier's state and continues at
	// the next superstep; a snapshot of a finished run just rehydrates the
	// final values and returns.
	startStep := 0
	if s := e.opts.Resume; s != nil {
		if err := e.restore(s); err != nil {
			return nil, err
		}
		if s.Done {
			if err := e.shardGatherValues(); err != nil {
				return abort(err)
			}
			e.stats.Duration = time.Since(start)
			return &e.stats, nil
		}
		startStep = s.Superstep + 1
	}
	// A warm start seeds values from a converged snapshot and begins a new
	// computation at superstep 1 with only the delta frontier active.
	if ws := e.opts.WarmStart; ws != nil {
		if err := e.warmRestore(ws); err != nil {
			return nil, err
		}
		startStep = 1
	}

	// Only this shard's workers get goroutines; the rest of e.workers are
	// stubs that barrier-1 frame decoding fills (see shard.go). Unsharded,
	// locals is all of them.
	locals := e.localWorkers()
	cmds := make([]chan workerCmd, len(locals))
	var wg sync.WaitGroup
	for i, wk := range locals {
		cmds[i] = make(chan workerCmd)
		go func(wk *worker[V, M], ch chan workerCmd) {
			for cmd := range ch {
				if cmd == cmdStop {
					wg.Done()
					return
				}
				wk.step(cmd, prog)
				wg.Done()
			}
		}(wk, cmds[i])
	}
	broadcast := func(c workerCmd) {
		wg.Add(len(cmds))
		for _, ch := range cmds {
			ch <- c
		}
		wg.Wait()
	}
	// Workers recover their own panics, so they always reach the barrier
	// and this shutdown broadcast can never deadlock, abort or not.
	defer broadcast(cmdStop)

	// Superstep 0 runs Init on every vertex (a resumed run restored
	// activateAll from the snapshot instead and starts past 0; a warm
	// start activates exactly its frontier).
	if e.opts.Resume == nil && e.opts.WarmStart == nil {
		e.activateAll = true
	}
	// pendingAbort defers an abort detected between the compute and
	// exchange phases: with checkpointing on, the run first drains through
	// the exchange to the next barrier — where outboxes are empty and the
	// cut is consistent — takes the final snapshot, and only then aborts.
	var pendingAbort error
	for e.superstep = startStep; e.superstep < e.opts.MaxSupersteps; e.superstep++ {
		stepStart := time.Now() //lint:allow timenow — step-timeout/stats timing, not fold input
		if err := e.checkAbort(ctx, deadline, stepStart); err != nil {
			if sharded {
				// Peer shards may already have run this superstep's compute,
				// so no cluster-consistent snapshot exists; flag the abort at
				// their next barrier instead of capturing.
				e.shardSignalAbort(ctrlKindBarrier1, err)
			} else if ckptOn && e.superstep > startStep {
				// State sits at the previous superstep's barrier; persist it
				// so the abort leaves a resumable snapshot behind.
				_ = e.capture(e.superstep-1, false)
			}
			return abort(err)
		}
		if st := e.opts.StepTimeout; st > 0 {
			e.stepDeadline = stepStart.Add(st)
		}
		broadcast(cmdCompute)
		if re := e.workerPanic(); re != nil {
			e.shardSignalAbort(ctrlKindBarrier1, re)
			return abort(re)
		}
		if e.opts.Quarantine {
			e.drainQuarantined()
		}
		if e.workerTimedOut() {
			// The compute phase was cut short mid-loop: outboxes and the
			// active set are torn, so no snapshot can be taken for this
			// superstep — CheckpointPath keeps pointing at the last
			// periodic one.
			err := fmt.Errorf("%w (superstep %d ran > %v)", ErrStepTimeout, e.superstep, e.opts.StepTimeout)
			e.shardSignalAbort(ctrlKindBarrier1, err)
			return abort(err)
		}
		// Post-compute barrier: ship remote-destined outboxes and this
		// shard's aggregator partials, and fill the stub workers with
		// inbound frames so exchange delivers in global worker order.
		if err := e.shardBarrier1(); err != nil {
			return abort(err)
		}
		e.mergeAggregators()
		if err := e.checkAbort(ctx, deadline, stepStart); err != nil {
			if !ckptOn && !sharded {
				return abort(err)
			}
			// Sharded runs always drain to the post-exchange barrier so
			// every shard aborts at the same consistent cut.
			pendingAbort = err
		}
		broadcast(cmdExchange)
		if re := e.workerPanic(); re != nil {
			e.shardSignalAbort(ctrlKindBarrier2, re)
			return abort(re)
		}

		st := StepStats{Superstep: e.superstep}
		nextActive := 0
		for _, wk := range e.workers {
			st.MessagesSent += wk.sent
			st.ActiveVertices += wk.ran
			st.CombinedMessages += wk.delivered
			st.CrossWorker += wk.cross
			nextActive += wk.nextActive
		}
		// Post-exchange barrier: merge every shard's statistic partials so
		// the termination decision and the master hook run on identical
		// global numbers everywhere, and agree on deferred aborts.
		remotePending, err := e.shardBarrier2(&st, &nextActive, pendingAbort)
		if err != nil {
			return abort(err)
		}
		if pendingAbort == nil {
			pendingAbort = remotePending
		}
		st.Duration = time.Since(stepStart)
		e.stats.Steps = append(e.stats.Steps, st)
		e.stats.MessagesSent += int64(st.MessagesSent)
		e.stats.CombinedMessages += int64(st.CombinedMessages)
		e.stats.CrossWorker += int64(st.CrossWorker)
		e.stats.MessageBytes += int64(st.CombinedMessages) * int64(e.msgBytes)
		e.stats.TotalActive += int64(st.ActiveVertices)
		e.stats.Supersteps++

		e.activateAll = false
		if e.masterHook != nil {
			if err := e.fireMasterHook(mc, st, nextActive); err != nil {
				return abort(err)
			}
		}
		done := e.stopped || (nextActive == 0 && st.CombinedMessages == 0 && !e.activateAll)
		if ckptOn {
			every := e.opts.Checkpoint.Every
			if pendingAbort != nil || done || (every > 0 && (e.superstep+1)%every == 0) {
				if err := e.capture(e.superstep, done); err != nil && pendingAbort == nil {
					return abort(err)
				}
			}
		}
		if pendingAbort != nil {
			return abort(pendingAbort)
		}
		if e.stopped {
			break
		}
		if nextActive == 0 && st.CombinedMessages == 0 && !e.activateAll {
			break // global quiescence
		}
	}
	e.stats.Duration = time.Since(start)
	if e.superstep >= e.opts.MaxSupersteps && !e.stopped {
		if ckptOn && e.superstep > startStep {
			// The limit is a consistent barrier too: leave a resumable
			// snapshot so a rerun with a higher limit can continue.
			_ = e.capture(e.superstep-1, false)
		}
		return &e.stats, fmt.Errorf("pregel: superstep limit %d reached", e.opts.MaxSupersteps)
	}
	// A finished sharded run gathers every shard's owned value range so
	// Values() is whole on all shards.
	if err := e.shardGatherValues(); err != nil {
		return abort(err)
	}
	return &e.stats, nil
}

// checkAbort evaluates the run-lifecycle conditions at a barrier. The
// no-abort path performs no allocation: ctx.Err is an atomic load and the
// clock is only read when a deadline or step timeout is armed.
func (e *Engine[V, M]) checkAbort(ctx context.Context, deadline time.Time, stepStart time.Time) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !deadline.IsZero() && !time.Now().Before(deadline) { //lint:allow timenow — deadline enforcement by design
		return context.DeadlineExceeded
	}
	if st := e.opts.StepTimeout; st > 0 && time.Since(stepStart) > st {
		return fmt.Errorf("%w (superstep %d ran > %v)", ErrStepTimeout, e.superstep, st)
	}
	return nil
}

// drainQuarantined folds the vertices each worker quarantined during the
// compute phase that just completed into the run statistics. Safe to call
// only after the barrier's WaitGroup wait.
func (e *Engine[V, M]) drainQuarantined() {
	for _, wk := range e.workers {
		if len(wk.quarantined) == 0 {
			continue
		}
		e.stats.Quarantined += len(wk.quarantined)
		e.stats.QuarantinedVertices = append(e.stats.QuarantinedVertices, wk.quarantined...)
		wk.quarantined = wk.quarantined[:0]
	}
}

// workerTimedOut reports whether any worker's cooperative StepTimeout
// check fired during the compute phase that just completed. Safe to call
// only after the barrier's WaitGroup wait.
func (e *Engine[V, M]) workerTimedOut() bool {
	for _, wk := range e.workers {
		if wk.timedOut {
			return true
		}
	}
	return false
}

// workerPanic returns the first (lowest worker id) panic recovered during
// the barrier phase that just completed, or nil. Safe to call only after
// the barrier's WaitGroup wait.
func (e *Engine[V, M]) workerPanic() *RunError {
	for _, wk := range e.workers {
		if wk.panicErr != nil {
			return wk.panicErr
		}
	}
	return nil
}

// fireMasterHook invokes the master hook for a completed superstep and
// applies its decisions, recovering a hook panic into a *RunError so a
// buggy hook cannot crash the process.
func (e *Engine[V, M]) fireMasterHook(mc *MasterContext, st StepStats, nextActive int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &RunError{
				Worker:    MasterWorker,
				Superstep: e.superstep,
				Phase:     "master",
				Value:     r,
				Stack:     debug.Stack(),
			}
		}
	}()
	mc.step = st
	mc.nextActive = nextActive
	mc.activateAll = false
	mc.stop = false
	e.masterHook(mc)
	if mc.activateAll {
		e.activateAll = true
	}
	if mc.stop {
		e.stopped = true
	}
	return nil
}

// step dispatches one barrier phase on the worker goroutine, converting a
// panic from user code into a structured RunError instead of letting it
// kill the process. Recovering here (rather than not at all) is what keeps
// the barrier protocol deadlock-free: the worker always returns to its
// command loop and acknowledges the WaitGroup, so the master can observe
// the panic after the barrier and drain the pool with a normal stop
// broadcast.
func (w *worker[V, M]) step(cmd workerCmd, prog Program[V, M]) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		re := &RunError{
			Worker:    w.id,
			Superstep: w.eng.superstep,
			Phase:     "exchange",
			Value:     r,
			Stack:     debug.Stack(),
		}
		if cmd == cmdCompute {
			re.Phase = "compute"
			if w.inVertex {
				re.Vertex, re.HasVertex = w.ctx.id, true
				w.inVertex = false
			}
		}
		w.panicErr = re
	}()
	if cmd == cmdCompute {
		w.compute(prog)
	} else {
		w.exchange()
	}
}

// mergeAggregators folds every worker's dense pending array into the
// committed aggregator values. Worker order is fixed, so float reductions
// are deterministic run to run.
func (e *Engine[V, M]) mergeAggregators() {
	for _, wk := range e.workers {
		for i, seen := range wk.aggSeen {
			if !seen {
				continue
			}
			wk.aggSeen[i] = false
			a := e.aggList[i]
			if a.persistent {
				a.pending += wk.aggPend[i]
			} else {
				a.pending = aggReduce(a.op, a.pending, wk.aggPend[i])
			}
		}
	}
	for _, a := range e.aggList {
		if a.persistent {
			a.value += a.pending
			a.pending = 0
		} else {
			a.value = a.pending
			a.pending = aggIdentity(a.op)
		}
	}
}

// compute runs Init/Compute over this worker's runnable vertices and
// flushes (and optionally combines) outgoing messages.
func (w *worker[V, M]) compute(prog Program[V, M]) {
	e := w.eng
	w.sent, w.ran = 0, 0
	for d := range w.outTo {
		w.outTo[d] = w.outTo[d][:0]
		w.outMsg[d] = w.outMsg[d][:0]
	}
	queue := e.opts.Scheduler == WorkQueue
	if queue {
		w.stamp++
		w.next = w.next[:0]
	}
	n := e.g.NumVertices()
	// Cooperative StepTimeout: re-read the clock every 32 vertices run, so
	// a worker whose vertices are individually slow stops shortly past the
	// deadline instead of draining its whole range. The check is two
	// compares plus a (rare) time.Now — nothing on this path allocates, so
	// the zero-alloc steady state is untouched.
	w.timedOut = false
	deadline := e.stepDeadline
	quarantine := e.opts.Quarantine
	runVertex := func(u, slot int) {
		if !deadline.IsZero() && w.ran&31 == 0 && time.Now().After(deadline) { //lint:allow timenow — deadline enforcement by design
			w.timedOut = true
			return
		}
		w.ran++
		ctx := &w.ctx
		ctx.id = VertexID(u)
		ctx.votedHalt = false
		ctx.removeSelf = false
		w.inVertex = true
		if quarantine {
			if w.runGuarded(prog, slot) {
				// The vertex panicked and was quarantined: its sends were
				// rolled back and it is removed; nothing else to update.
				w.inVertex = false
				return
			}
		} else if e.superstep == 0 {
			prog.Init(ctx)
		} else {
			lo := w.msgOff[slot-w.lo]
			hi := w.msgOff[slot-w.lo+1]
			prog.Compute(ctx, w.msgBuf[lo:hi])
		}
		w.inVertex = false
		e.active[u] = !ctx.votedHalt
		if ctx.removeSelf {
			e.removed[u] = true
			e.active[u] = false
		}
		if queue && e.active[u] {
			w.enqueue(slot)
		}
	}
	switch {
	case e.activateAll:
		for slot := w.lo; slot < w.hi && !w.timedOut; slot++ {
			u := e.vertexAt(slot)
			if u >= n || e.removed[u] {
				continue
			}
			e.active[u] = true
			runVertex(u, slot)
		}
	case queue:
		for _, v := range w.cur {
			if w.timedOut {
				break
			}
			u := int(v)
			slot := e.slotOf(v)
			if e.removed[u] || (!e.active[u] && !w.hasMsgs(slot)) {
				continue
			}
			runVertex(u, slot)
		}
	default:
		for slot := w.lo; slot < w.hi && !w.timedOut; slot++ {
			u := e.vertexAt(slot)
			if u >= n || e.removed[u] {
				continue
			}
			if e.active[u] || w.hasMsgs(slot) {
				runVertex(u, slot)
			}
		}
	}
	if e.combiner != nil && !w.timedOut {
		w.combineOut()
	}
}

// runGuarded invokes the vertex program under Options.Quarantine: a panic
// raised by Init/Compute is recovered here — at vertex granularity rather
// than at the superstep barrier — the vertex's partial sends are rolled
// back to the marks taken before the call, its message count is restored,
// and the vertex is removed from the computation. The worker loop then
// continues with the next vertex, so one poisoned vertex cannot abort a
// resident run. Returns whether the vertex panicked.
func (w *worker[V, M]) runGuarded(prog Program[V, M], slot int) (panicked bool) {
	e := w.eng
	for d := range w.outTo {
		w.sendMark[d] = len(w.outTo[d])
	}
	sent := w.sent
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		panicked = true
		u := w.ctx.id
		for d := range w.outTo {
			w.outTo[d] = w.outTo[d][:w.sendMark[d]]
			w.outMsg[d] = w.outMsg[d][:w.sendMark[d]]
		}
		w.sent = sent
		e.removed[u] = true
		e.active[u] = false
		w.quarantined = append(w.quarantined, u)
	}()
	ctx := &w.ctx
	if e.superstep == 0 {
		prog.Init(ctx)
	} else {
		lo := w.msgOff[slot-w.lo]
		hi := w.msgOff[slot-w.lo+1]
		prog.Compute(ctx, w.msgBuf[lo:hi])
	}
	return false
}

func (w *worker[V, M]) hasMsgs(slot int) bool {
	if w.eng.superstep == 0 {
		return false
	}
	return w.msgOff[slot-w.lo+1] > w.msgOff[slot-w.lo]
}

// combineOut merges messages per destination vertex (and per key, for
// KeyedCombiners) within each destination-worker bucket, deterministically
// (insertion order). The plain-combiner path indexes envelopes by
// destination slot through a dense epoch-stamped table and compacts each
// bucket in place: the combined prefix [0, j) only ever trails the read
// position, so no fresh buffer and no per-bucket map is needed.
func (w *worker[V, M]) combineOut() {
	if keyed, ok := w.eng.combiner.(KeyedCombiner[M]); ok {
		w.combineKeyed(keyed)
		return
	}
	c := w.eng.combiner
	block := w.eng.block
	for d := range w.outTo {
		to, msg := w.outTo[d], w.outMsg[d]
		if len(to) <= 1 {
			continue
		}
		w.combEpoch++
		if w.combEpoch == 0 { // uint32 wrap: stale stamps would alias
			clear(w.combStamp)
			w.combEpoch = 1
		}
		base := d * block
		j := 0
		for i, t := range to {
			li := w.eng.slotOf(t) - base
			if w.combStamp[li] == w.combEpoch {
				k := w.combSlot[li]
				msg[k] = c.Combine(msg[k], msg[i])
				continue
			}
			w.combStamp[li] = w.combEpoch
			w.combSlot[li] = int32(j)
			to[j] = t
			msg[j] = msg[i]
			j++
		}
		w.outTo[d] = to[:j]
		w.outMsg[d] = msg[:j]
	}
}

// combineKeyed is the sparse fallback: (destination, key) pairs don't fit
// a dense table, so a reusable per-worker map indexes the combined prefix.
func (w *worker[V, M]) combineKeyed(c KeyedCombiner[M]) {
	if w.keyedIdx == nil {
		w.keyedIdx = make(map[uint64]int32)
	}
	for d := range w.outTo {
		to, msg := w.outTo[d], w.outMsg[d]
		if len(to) <= 1 {
			continue
		}
		clear(w.keyedIdx)
		j := 0
		for i, t := range to {
			k := uint64(t) | uint64(c.Key(msg[i]))<<32
			if p, ok := w.keyedIdx[k]; ok {
				msg[p] = c.Combine(msg[p], msg[i])
				continue
			}
			w.keyedIdx[k] = int32(j)
			to[j] = t
			msg[j] = msg[i]
			j++
		}
		w.outTo[d] = to[:j]
		w.outMsg[d] = msg[:j]
	}
}

// exchange gathers inbound envelopes into a per-vertex CSR inbox, wakes
// receivers, and counts the vertices runnable next superstep. The count
// and scatter passes read only the senders' outTo arrays; payloads are
// touched once, during the scatter copy.
func (w *worker[V, M]) exchange() {
	e := w.eng
	w.delivered = 0
	w.cross = 0
	off := w.msgOff
	for i := range off {
		off[i] = 0
	}
	// Count.
	for _, src := range e.workers {
		for _, to := range src.outTo[w.id] {
			if e.removed[to] {
				continue
			}
			off[e.slotOf(to)-w.lo+1]++
			w.delivered++
			if src.id != w.id {
				w.cross++
			}
		}
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	if cap(w.msgBuf) < w.delivered {
		w.msgBuf = make([]M, w.delivered)
	} else {
		w.msgBuf = w.msgBuf[:w.delivered]
	}
	cursor := w.cursor
	copy(cursor, off[:w.hi-w.lo])
	for _, src := range e.workers {
		msgs := src.outMsg[w.id]
		for i, to := range src.outTo[w.id] {
			if e.removed[to] {
				continue
			}
			li := e.slotOf(to) - w.lo
			w.msgBuf[cursor[li]] = msgs[i]
			cursor[li]++
		}
	}
	// Wake receivers and count the vertices runnable next superstep. In
	// WorkQueue mode receivers are appended to the queue built during
	// compute, so no O(|V|) scan is needed; in ScanAll mode we scan the
	// local block, which is exactly the per-superstep cost the paper's §9
	// points out for a non-halt-by-default runtime.
	if e.opts.Scheduler == WorkQueue {
		for _, src := range e.workers {
			for _, to := range src.outTo[w.id] {
				if e.removed[to] {
					continue
				}
				e.active[to] = true
				w.enqueue(e.slotOf(to))
			}
		}
		w.nextActive = len(w.next)
	} else {
		w.nextActive = 0
		n := e.g.NumVertices()
		for slot := w.lo; slot < w.hi; slot++ {
			li := slot - w.lo
			u := e.vertexAt(slot)
			if u >= n || e.removed[u] {
				continue
			}
			if off[li+1] > off[li] {
				e.active[u] = true
			}
			if e.active[u] {
				w.nextActive++
			}
		}
	}
	w.cur, w.next = w.next, w.cur
}

// enqueue adds the vertex at the local slot to the next-superstep queue,
// at most once.
func (w *worker[V, M]) enqueue(slot int) {
	li := slot - w.lo
	if w.queued[li] == w.stamp {
		return
	}
	w.queued[li] = w.stamp
	w.next = append(w.next, VertexID(w.eng.vertexAt(slot)))
}
