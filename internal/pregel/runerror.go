package pregel

import "fmt"

// MasterWorker is the Worker value of a RunError raised on the master
// goroutine (a panicking master hook or until-loop) rather than in a
// worker's compute/exchange phase.
const MasterWorker = -1

// RunError is a panic raised by user code (Program.Init/Compute, a
// Combiner, or a master hook) during a run, recovered at the superstep
// barrier and converted into an error so a panicking vertex program cannot
// crash the process. The engine shuts its worker pool down cleanly and
// returns the RunError together with the statistics accumulated so far.
type RunError struct {
	// Worker is the panicking worker's id, or MasterWorker (-1) for a
	// panic on the master goroutine.
	Worker int
	// Superstep is the superstep during which the panic was raised.
	Superstep int
	// Phase is the barrier phase that panicked: "compute", "exchange" or
	// "master".
	Phase string
	// Vertex is the vertex whose Init/Compute raised the panic; only
	// meaningful when HasVertex is true (a compute-phase panic inside a
	// vertex program — panics in combiners or exchange are not
	// attributable to a single vertex).
	Vertex    VertexID
	HasVertex bool
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace, captured at the
	// recovery point.
	Stack []byte
}

// Error implements the error interface.
func (e *RunError) Error() string {
	switch {
	case e.Worker == MasterWorker:
		return fmt.Sprintf("pregel: master hook panicked at superstep %d: %v", e.Superstep, e.Value)
	case e.HasVertex:
		return fmt.Sprintf("pregel: worker %d panicked at superstep %d (vertex %d, %s): %v",
			e.Worker, e.Superstep, e.Vertex, e.Phase, e.Value)
	default:
		return fmt.Sprintf("pregel: worker %d panicked at superstep %d (%s): %v",
			e.Worker, e.Superstep, e.Phase, e.Value)
	}
}

// Unwrap exposes the panic value when it is itself an error, so callers can
// errors.Is/As through a contained panic.
func (e *RunError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}
