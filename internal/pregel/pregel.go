// Package pregel implements a Pregel-style Bulk Synchronous Parallel
// vertex-centric execution engine, the substrate the paper compiles ΔV
// programs to (it plays the role Pregel+ plays in the paper).
//
// A computation proceeds in supersteps. Superstep 0 runs the program's Init
// on every vertex; subsequent supersteps run Compute on every active vertex
// with the messages addressed to it in the previous superstep. A vertex
// halts by voting to halt and is reawakened by any incoming message. The
// computation terminates when every vertex is halted and no messages are in
// flight (or a master hook or the superstep limit stops it).
//
// The engine is generic over the vertex value type V and the message type
// M. Vertices are partitioned into contiguous blocks, one block per worker
// goroutine; message exchange happens through per-worker-pair outboxes that
// are swapped at the superstep barrier, so no locks are taken on the hot
// path. Message counts are tracked both before and after the optional
// sender-side combiner, matching the two message metrics reported in the
// paper's evaluation.
package pregel

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
)

// VertexID aliases graph.VertexID for convenience.
type VertexID = graph.VertexID

// Program is a vertex-centric computation.
type Program[V, M any] interface {
	// Init runs on every vertex at superstep 0, before any communication.
	Init(ctx *Context[V, M])
	// Compute runs on every active vertex at supersteps >= 1 with the
	// messages sent to it during the previous superstep.
	Compute(ctx *Context[V, M], msgs []M)
}

// Combiner merges two messages addressed to the same destination vertex.
// It must be commutative and associative.
type Combiner[M any] interface {
	Combine(a, b M) M
}

// CombinerFunc adapts a function to the Combiner interface.
type CombinerFunc[M any] func(a, b M) M

// Combine implements Combiner.
func (f CombinerFunc[M]) Combine(a, b M) M { return f(a, b) }

// KeyedCombiner is a Combiner that only combines messages sharing a key
// (e.g. a message-channel or send-group id). Messages with different keys
// to the same vertex are delivered separately.
type KeyedCombiner[M any] interface {
	Combiner[M]
	// Key partitions messages: only equal-key messages are combined.
	Key(m M) uint32
}

// Scheduler selects how workers find the vertices to run each superstep.
type Scheduler int

const (
	// ScanAll scans every local vertex and runs those that are active or
	// have pending messages. This is how Pregel+ behaves and is the
	// default.
	ScanAll Scheduler = iota
	// WorkQueue keeps an explicit per-worker queue of runnable vertices,
	// fed by message arrivals and non-halting vertices — the
	// halt-by-default scheduler sketched in the paper's future work (§9).
	WorkQueue
)

// Partition selects how vertices are assigned to workers.
type Partition int

const (
	// PartitionBlock gives each worker a contiguous vertex range. Graph
	// generators emit correlated IDs, so blocks preserve locality.
	PartitionBlock Partition = iota
	// PartitionHash assigns vertex v to worker v mod W — the classic
	// Pregel default hash partitioning, which scatters neighbours across
	// workers. The paper cites partitioning research as the orthogonal
	// way to cut communication; the two placements are exposed here so
	// the partitioning ablation can quantify cross-worker traffic.
	PartitionHash
)

// String names the partition scheme.
func (p Partition) String() string {
	if p == PartitionHash {
		return "hash"
	}
	return "block"
}

// Options configure a run.
type Options struct {
	// Workers is the number of worker goroutines. Defaults to
	// GOMAXPROCS, capped by the number of vertices.
	Workers int
	// MaxSupersteps aborts the run after this many supersteps (counting
	// Init as superstep 0). Defaults to 10_000. Zero means the default.
	MaxSupersteps int
	// Scheduler selects the active-vertex discovery strategy.
	Scheduler Scheduler
	// Partition selects the vertex-to-worker placement.
	Partition Partition
	// StepTimeout, when positive, bounds each superstep's wall-clock
	// time. It is checked at the superstep barriers and cooperatively
	// inside each worker's vertex loop (every few dozen vertices), so a
	// worker with many slow vertices stops shortly after the deadline
	// instead of draining its whole range — though a single Compute call
	// that never returns still cannot be preempted. Exceeding it aborts
	// the run with an error wrapping ErrStepTimeout and partial Stats; a
	// mid-compute abort leaves a torn superstep, so no fresh snapshot is
	// taken for it.
	StepTimeout time.Duration
	// Deadline, when non-zero, aborts the run once the wall clock passes
	// it, returning an error wrapping context.DeadlineExceeded and
	// partial Stats. A context deadline passed to RunContext combines
	// with this; the earlier of the two wins.
	Deadline time.Time
	// Checkpoint enables barrier snapshots when it requests any output
	// (Dir and/or Sink set): periodic snapshots every Every supersteps,
	// plus a final snapshot at the terminal barrier and on every
	// cancellation/deadline abort. See CheckpointOptions.
	Checkpoint CheckpointOptions
	// Resume, when non-nil, restores engine state from a barrier snapshot
	// (see ReadSnapshotFile / DecodeSnapshot) instead of running superstep
	// 0: the snapshot's graph fingerprint and aggregator registration are
	// validated against this run, then execution continues at the
	// snapshot's superstep + 1. Resuming a snapshot whose Done flag is set
	// rehydrates the final vertex values and returns immediately.
	Resume *Snapshot
	// WarmStart, when non-nil, seeds a fresh computation from a converged
	// snapshot instead of running superstep 0: vertex values come from
	// the snapshot, only the listed vertices start active, and execution
	// begins at superstep 1 with empty inboxes. Mutually exclusive with
	// Resume. See WarmStartOptions.
	WarmStart *WarmStartOptions
	// Shard, when non-nil with Count > 1, places this engine in a
	// multi-process sharded run: this process executes only its shard's
	// contiguous worker range and exchanges messages, aggregator
	// partials, and statistics with its peers over Shard.Transport at
	// the superstep barriers. The merged run is bit-identical to an
	// in-process run with the same total Workers count. Requires
	// PartitionBlock and an explicit Workers value identical on every
	// shard; Quarantine and WarmStart are not supported sharded. See
	// ShardOptions.
	Shard *ShardOptions
	// Quarantine contains a panic raised inside a single vertex's
	// Init/Compute to that vertex instead of aborting the run: the panic
	// is recovered at the call site, every message the vertex sent during
	// the panicking call is retracted (its outbox marks are rolled back,
	// so a half-emitted broadcast cannot corrupt downstream
	// accumulators), the vertex is removed from the computation exactly
	// as if it had called RemoveSelf, and the superstep continues.
	// Quarantined vertices are recorded in Stats.Quarantined /
	// Stats.QuarantinedVertices; their values freeze (any writes the
	// panicking call made before the panic persist, like RemoveSelf)
	// and pending or future messages addressed to them are dropped. Panics outside a vertex program — combiners, the
	// exchange phase, master hooks — are not attributable to one vertex
	// and still abort the run with a *RunError. This is the resident-
	// server posture: a poisoned vertex program must not take down a
	// long-lived serving process (see DESIGN.md "Serving").
	Quarantine bool
}

// WarmStartOptions seed a run from the terminal snapshot of a previous,
// converged run — the delta-recomputation entry point: after an edge
// delta, a warm start activates only the vertices incident to the change
// and lets the computation repair outward from that frontier.
//
// Unlike Resume, a warm start begins a new computation: the snapshot's
// scheduler flag, active set, and queue are ignored (so a ScanAll
// snapshot can warm-start a WorkQueue run), and the engine's graph is
// not fingerprint-checked against the snapshot — it is expected to
// differ, since the point is to run on a mutated graph. The snapshot
// must be terminal (Done) and quiescent (no in-flight messages): a
// mid-run snapshot has senders whose recorded state already reflects
// messages their receivers have not folded in, and seeding from such a
// cut would double- or under-count contributions.
type WarmStartOptions struct {
	// Snapshot is the converged snapshot to seed values from.
	Snapshot *Snapshot
	// ExpectFingerprint, when non-zero, must equal the fingerprint
	// recorded in the snapshot — callers pass the pre-mutation graph's
	// fingerprint to prove the snapshot belongs to the graph the delta
	// was computed against.
	ExpectFingerprint uint64
	// Activate lists the vertices to run in the first superstep; all
	// others start halted and wake only on incoming messages. Removed
	// vertices are skipped. An empty list converges immediately.
	Activate []VertexID
	// AllowGrowth accepts a snapshot with fewer vertices than the graph:
	// the snapshot seeds the prefix it covers and vertices past
	// Snapshot.NumVertices start with zero values, halted, for the caller
	// to initialize and activate (the ΔV repair planner runs init{} for
	// them and puts them on the frontier). Without it a grown graph is a
	// mismatch.
	AllowGrowth bool
}

// ErrStepTimeout is wrapped by the run error when a superstep exceeds
// Options.StepTimeout.
var ErrStepTimeout = errors.New("pregel: superstep exceeded StepTimeout")

// StepStats records one superstep.
type StepStats struct {
	Superstep        int
	ActiveVertices   int // vertices that ran Compute (or Init)
	MessagesSent     int // vertex-level sends
	CombinedMessages int // envelopes delivered after combining
	CrossWorker      int // delivered envelopes that crossed workers
	Duration         time.Duration
}

// Stats aggregates a whole run. On an aborted run (cancellation, deadline,
// step timeout, or a recovered panic) Stats holds everything accumulated up
// to the abort point — Steps has one entry per completed superstep — and
// Aborted/AbortReason record why the run stopped early.
type Stats struct {
	Supersteps       int
	MessagesSent     int64
	CombinedMessages int64
	CrossWorker      int64 // delivered envelopes that crossed worker boundaries
	MessageBytes     int64
	TotalActive      int64 // sum over supersteps of vertices run
	Duration         time.Duration
	Steps            []StepStats
	// Aborted is true when the run stopped before reaching quiescence,
	// a master Stop, or the superstep limit: the context was cancelled, a
	// deadline or step timeout fired, or user code panicked.
	Aborted bool
	// AbortReason is a human-readable cause, set iff Aborted.
	AbortReason string
	// CheckpointPath names the most recent snapshot file written into
	// Options.Checkpoint.Dir (empty when checkpointing to a Dir is off or
	// no snapshot was taken yet). After an abort it points at resumable
	// state — except after a contained panic (*RunError), where it still
	// names the last periodic snapshot but no fresh one is taken, because
	// the panicking superstep left the barrier inconsistent.
	CheckpointPath string
	// CheckpointSuperstep is the superstep captured by the most recent
	// snapshot this run wrote (to Dir or Sink), or -1 when none was. It
	// can trail Supersteps: after a panic abort, CheckpointPath names the
	// last periodic snapshot, which may be many supersteps behind the
	// abort point — resume from this superstep, not from Supersteps.
	CheckpointSuperstep int
	// CheckpointBytes totals the encoded snapshot bytes this run wrote
	// (full snapshots, or chain records under Checkpoint.Incremental —
	// where a converged-then-repaired run's records shrink to O(touched)).
	// Sink and Dir writes of the same capture are counted once.
	CheckpointBytes int64
	// Quarantined counts vertices whose Init/Compute panicked under
	// Options.Quarantine and were skipped + removed instead of aborting
	// the run; QuarantinedVertices lists them in the order they were
	// recorded (worker order within a superstep, supersteps in run
	// order). Both stay zero when Quarantine is off.
	Quarantined         int
	QuarantinedVertices []VertexID
}

// String summarizes the run statistics.
func (s Stats) String() string {
	base := fmt.Sprintf("supersteps=%d msgs=%d combined=%d bytes=%d active=%d time=%v",
		s.Supersteps, s.MessagesSent, s.CombinedMessages, s.MessageBytes, s.TotalActive, s.Duration)
	if s.Quarantined > 0 {
		base += fmt.Sprintf(" quarantined=%d", s.Quarantined)
	}
	if s.Aborted {
		base += fmt.Sprintf(" aborted=%q", s.AbortReason)
	}
	return base
}

// AggregatorOp is the reduction used by a master aggregator.
type AggregatorOp int

// Aggregator reductions.
const (
	AggSum AggregatorOp = iota
	AggMin
	AggMax
	AggAnd // logical AND over (v != 0)
	AggOr  // logical OR over (v != 0)
)

type aggregator struct {
	op         AggregatorOp
	persistent bool
	index      int     // registration order; position in worker pending arrays
	value      float64 // committed value visible to vertices
	pending    float64 // being accumulated this superstep
}

func aggIdentity(op AggregatorOp) float64 {
	switch op {
	case AggSum:
		return 0
	case AggMin:
		return inf
	case AggMax:
		return -inf
	case AggAnd:
		return 1
	case AggOr:
		return 0
	}
	return 0
}

var inf = math.Inf(1)

func aggReduce(op AggregatorOp, a, b float64) float64 {
	switch op {
	case AggSum:
		return a + b
	case AggMin:
		if b < a {
			return b
		}
		return a
	case AggMax:
		if b > a {
			return b
		}
		return a
	case AggAnd:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case AggOr:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	}
	return a
}
