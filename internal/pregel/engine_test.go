package pregel

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// echoProgram floods a token outward: superstep 0 vertex 0 sends its ID+1
// to out-neighbours; each receiver stores max(received) and forwards once.
type echoVal struct {
	Best float64
}

type echoProgram struct{}

func (echoProgram) Init(ctx *Context[echoVal, float64]) {
	if ctx.ID() == 0 {
		ctx.Value().Best = 1
		ctx.BroadcastOut(1)
	}
	ctx.VoteToHalt()
}

func (echoProgram) Compute(ctx *Context[echoVal, float64], msgs []float64) {
	best := ctx.Value().Best
	changed := false
	for _, m := range msgs {
		if m > best {
			best = m
			changed = true
		}
	}
	if changed {
		ctx.Value().Best = best
		ctx.BroadcastOut(best + 1)
	}
	ctx.VoteToHalt()
}

func TestFloodOnPath(t *testing.T) {
	for _, sched := range []Scheduler{ScanAll, WorkQueue} {
		for _, workers := range []int{1, 3, 8} {
			g := graph.Path(10, true)
			e := New[echoVal, float64](g, Options{Workers: workers, Scheduler: sched})
			stats, err := e.Run(echoProgram{})
			if err != nil {
				t.Fatalf("sched=%v workers=%d: %v", sched, workers, err)
			}
			for u := 0; u < 10; u++ {
				want := float64(u)
				if u == 0 {
					want = 1
				}
				if got := e.Value(graph.VertexID(u)).Best; got != want {
					t.Fatalf("sched=%v workers=%d: value[%d] = %g, want %g", sched, workers, u, got, want)
				}
			}
			// Path of 10: 9 hops, so 9 messages, one per superstep after init.
			if stats.MessagesSent != 9 {
				t.Fatalf("sched=%v workers=%d: messages = %d, want 9", sched, workers, stats.MessagesSent)
			}
			if stats.Supersteps != 10 {
				t.Fatalf("sched=%v workers=%d: supersteps = %d, want 10", sched, workers, stats.Supersteps)
			}
		}
	}
}

// sumAllProgram: every vertex sends 1.0 to all out-neighbours each of 3
// supersteps; vertices accumulate. Exercises repeated activity without
// halting.
type sumVal struct{ Sum float64 }

type sumAllProgram struct{ rounds int }

func (p sumAllProgram) Init(ctx *Context[sumVal, float64]) {
	ctx.BroadcastOut(1)
}

func (p sumAllProgram) Compute(ctx *Context[sumVal, float64], msgs []float64) {
	for _, m := range msgs {
		ctx.Value().Sum += m
	}
	if ctx.Superstep() < p.rounds {
		ctx.BroadcastOut(1)
	} else {
		ctx.VoteToHalt()
	}
}

func TestMessageDeliveryCounts(t *testing.T) {
	g := graph.Complete(6, true) // 30 arcs
	e := New[sumVal, float64](g, Options{Workers: 4})
	stats, err := e.Run(sumAllProgram{rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Sends at supersteps 0,1,2 → 3 rounds × 30 arcs.
	if stats.MessagesSent != 90 {
		t.Fatalf("messages = %d, want 90", stats.MessagesSent)
	}
	for u := 0; u < 6; u++ {
		if got := e.Value(graph.VertexID(u)).Sum; got != 15 {
			t.Fatalf("value[%d] = %g, want 15 (5 in-neighbours × 3 rounds)", u, got)
		}
	}
}

func TestCombinerReducesDeliveredNotSent(t *testing.T) {
	g := graph.Star(9, true) // hub 0 -> 8 leaves
	// Reverse: all leaves send to hub. Build in-edges by using a program
	// where leaves send to vertex 0 directly.
	e := New[sumVal, float64](g, Options{Workers: 2})
	e.SetCombiner(CombinerFunc[float64](func(a, b float64) float64 { return a + b }))
	prog := &directedSendProgram{}
	stats, err := e.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MessagesSent != 8 {
		t.Fatalf("sent = %d, want 8", stats.MessagesSent)
	}
	// 2 workers → at most 2 combined envelopes reach the hub.
	if stats.CombinedMessages >= 8 || stats.CombinedMessages < 1 {
		t.Fatalf("combined = %d, want in [1,7]", stats.CombinedMessages)
	}
	if got := e.Value(0).Sum; got != 8 {
		t.Fatalf("hub sum = %g, want 8", got)
	}
}

type directedSendProgram struct{}

func (*directedSendProgram) Init(ctx *Context[sumVal, float64]) {
	if ctx.ID() != 0 {
		ctx.Send(0, 1)
	}
	ctx.VoteToHalt()
}

func (*directedSendProgram) Compute(ctx *Context[sumVal, float64], msgs []float64) {
	for _, m := range msgs {
		ctx.Value().Sum += m
	}
	ctx.VoteToHalt()
}

func TestAggregators(t *testing.T) {
	g := graph.Path(8, true)
	e := New[sumVal, float64](g, Options{Workers: 3})
	if err := e.RegisterAggregator("sum", AggSum, false); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterAggregator("min", AggMin, false); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterAggregator("max", AggMax, false); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterAggregator("sticky", AggSum, true); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterAggregator("sum", AggSum, false); err == nil {
		t.Fatal("duplicate aggregator registration should fail")
	}
	if err := e.RegisterAggregator("badpersist", AggMin, true); err == nil {
		t.Fatal("persistent min aggregator should be rejected")
	}
	prog := &aggProgram{}
	if _, err := e.Run(prog); err != nil {
		t.Fatal(err)
	}
	// At superstep 1 each vertex saw the aggregated values from superstep 0:
	// sum of ids = 28, min = 0, max = 7.
	if prog.seenSum != 28 || prog.seenMin != 0 || prog.seenMax != 7 {
		t.Fatalf("aggregates = (%g,%g,%g), want (28,0,7)", prog.seenSum, prog.seenMin, prog.seenMax)
	}
	// Persistent aggregator accumulated +1 per vertex at both supersteps.
	if got := e.AggregatorValue("sticky"); got != 16 {
		t.Fatalf("sticky = %g, want 16", got)
	}
}

type aggProgram struct {
	seenSum, seenMin, seenMax float64
}

func (p *aggProgram) Init(ctx *Context[sumVal, float64]) {
	id := float64(ctx.ID())
	ctx.Aggregate("sum", id)
	ctx.Aggregate("min", id)
	ctx.Aggregate("max", id)
	ctx.Aggregate("sticky", 1)
	if ctx.ID() == 0 {
		ctx.BroadcastOut(0) // keep vertex 1 alive for superstep 1
	}
	ctx.VoteToHalt()
}

func (p *aggProgram) Compute(ctx *Context[sumVal, float64], msgs []float64) {
	p.seenSum = ctx.AggValue("sum")
	p.seenMin = ctx.AggValue("min")
	p.seenMax = ctx.AggValue("max")
	ctx.Aggregate("sticky", 1)
	// All 8 vertices contribute to sticky at superstep 1? No — only this
	// one runs; contribute 8 to compensate for the other 7 plus self.
	ctx.Aggregate("sticky", 7)
	ctx.VoteToHalt()
}

func TestMasterHookGlobalsActivateAllAndStop(t *testing.T) {
	g := graph.Path(4, true)
	e := New[sumVal, float64](g, Options{Workers: 2})
	e.SetGlobals(&testGlobals{})
	ran := 0
	e.SetMasterHook(func(mc *MasterContext) {
		gl := mc.Globals().(*testGlobals)
		gl.round++
		mc.SetGlobals(gl)
		ran++
		if gl.round < 3 {
			mc.ActivateAll() // keep everything alive despite votes to halt
		}
		if gl.round == 3 {
			mc.Stop()
		}
	})
	prog := &globalsProgram{}
	stats, err := e.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 3 {
		t.Fatalf("supersteps = %d, want 3", stats.Supersteps)
	}
	if ran != 3 {
		t.Fatalf("master hook ran %d times, want 3", ran)
	}
	if prog.maxRound != 2 {
		t.Fatalf("vertices saw round %d, want 2", prog.maxRound)
	}
}

type testGlobals struct{ round int }

type globalsProgram struct {
	mu       sync.Mutex
	maxRound int
}

func (p *globalsProgram) Init(ctx *Context[sumVal, float64]) { ctx.VoteToHalt() }

func (p *globalsProgram) Compute(ctx *Context[sumVal, float64], msgs []float64) {
	r := ctx.Globals().(*testGlobals)
	p.mu.Lock()
	if r.round > p.maxRound {
		p.maxRound = r.round
	}
	p.mu.Unlock()
	ctx.VoteToHalt()
}

func TestRemoveSelfDropsFutureMessages(t *testing.T) {
	// 0 -> 1 -> 2; vertex 1 removes itself at superstep 1 after forwarding.
	g := graph.Path(3, true)
	e := New[removalVal, float64](g, Options{Workers: 1})
	if _, err := e.Run(&removalProgram{}); err != nil {
		t.Fatal(err)
	}
	if e.Value(2).Got != 1 {
		t.Fatal("vertex 2 should have received the forwarded message")
	}
	if e.Value(1).Runs != 2 {
		t.Fatalf("vertex 1 ran %d times, want 2 (init + one compute)", e.Value(1).Runs)
	}
}

type removalVal struct {
	Got  float64
	Runs int
}

type removalProgram struct{}

func (*removalProgram) Init(ctx *Context[removalVal, float64]) {
	ctx.Value().Runs++
	if ctx.ID() == 0 {
		ctx.BroadcastOut(1)
		return // stay active so superstep 1 can send to the removed vertex
	}
	ctx.VoteToHalt()
}

func (*removalProgram) Compute(ctx *Context[removalVal, float64], msgs []float64) {
	ctx.Value().Runs++
	for _, m := range msgs {
		if m != 99 {
			ctx.Value().Got = m
		}
	}
	switch ctx.ID() {
	case 0:
		// Send into the vertex that removes itself this same superstep;
		// delivery must drop it.
		ctx.Send(1, 99)
	case 1:
		ctx.BroadcastOut(ctx.Value().Got)
		ctx.RemoveSelf()
	}
	ctx.VoteToHalt()
}

func TestMaxSuperstepsError(t *testing.T) {
	g := graph.Cycle(4, true)
	e := New[sumVal, float64](g, Options{Workers: 1, MaxSupersteps: 5})
	_, err := e.Run(&spinProgram{})
	if err == nil {
		t.Fatal("expected superstep-limit error")
	}
}

type spinProgram struct{}

func (*spinProgram) Init(ctx *Context[sumVal, float64])                    { ctx.BroadcastOut(1) }
func (*spinProgram) Compute(ctx *Context[sumVal, float64], msgs []float64) { ctx.BroadcastOut(1) }

func TestRunTwiceFails(t *testing.T) {
	g := graph.Path(2, true)
	e := New[sumVal, float64](g, Options{})
	if _, err := e.Run(&directedSendProgram{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&directedSendProgram{}); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, true).Finalize()
	e := New[sumVal, float64](g, Options{})
	hookFired := 0
	e.SetMasterHook(func(mc *MasterContext) {
		hookFired++
		if mc.Step() != (StepStats{}) {
			t.Errorf("empty-graph hook step = %+v, want zero", mc.Step())
		}
	})
	stats, err := e.Run(&directedSendProgram{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 0 {
		t.Fatalf("supersteps = %d, want 0", stats.Supersteps)
	}
	// The empty-graph path must have the same shape as a zero-superstep
	// run: non-nil (empty) Steps, a measured Duration, one hook firing.
	if stats.Steps == nil {
		t.Fatal("empty-graph Steps is nil, want non-nil empty slice")
	}
	if len(stats.Steps) != 0 {
		t.Fatalf("empty-graph Steps has %d entries, want 0", len(stats.Steps))
	}
	if stats.Duration <= 0 {
		t.Fatalf("empty-graph Duration = %v, want > 0", stats.Duration)
	}
	if hookFired != 1 {
		t.Fatalf("master hook fired %d times on empty graph, want 1", hookFired)
	}
	if stats.Aborted {
		t.Fatalf("empty-graph run marked aborted: %q", stats.AbortReason)
	}
}

// Property: on a random directed graph, a program where every vertex sends
// its ID to each out-neighbour exactly once delivers every message exactly
// once (receiver-side sums match graph structure) for both schedulers and
// any worker count.
func TestExactlyOnceDeliveryProperty(t *testing.T) {
	f := func(seed int64, workerHint uint8, queueSched bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		m := rng.Intn(5 * n)
		b := graph.NewBuilder(n, true)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Finalize()
		g.BuildReverse()
		sched := ScanAll
		if queueSched {
			sched = WorkQueue
		}
		e := New[sumVal, float64](g, Options{Workers: 1 + int(workerHint%7), Scheduler: sched})
		if _, err := e.Run(&idSendProgram{}); err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			want := 0.0
			for _, v := range g.InNeighbors(graph.VertexID(u)) {
				want += float64(v) + 1
			}
			if e.Value(graph.VertexID(u)).Sum != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// maxPropProgram propagates the maximum vertex ID: converges on any graph.
type maxPropProgram struct{}

func (maxPropProgram) Init(ctx *Context[echoVal, float64]) {
	ctx.Value().Best = float64(ctx.ID())
	ctx.BroadcastOut(ctx.Value().Best)
	ctx.VoteToHalt()
}

func (maxPropProgram) Compute(ctx *Context[echoVal, float64], msgs []float64) {
	best := ctx.Value().Best
	changed := false
	for _, m := range msgs {
		if m > best {
			best = m
			changed = true
		}
	}
	if changed {
		ctx.Value().Best = best
		ctx.BroadcastOut(best)
	}
	ctx.VoteToHalt()
}

type idSendProgram struct{}

func (*idSendProgram) Init(ctx *Context[sumVal, float64]) {
	ctx.BroadcastOut(float64(ctx.ID()) + 1)
	ctx.VoteToHalt()
}

func (*idSendProgram) Compute(ctx *Context[sumVal, float64], msgs []float64) {
	for _, m := range msgs {
		ctx.Value().Sum += m
	}
	ctx.VoteToHalt()
}

// Property: block and hash partitioning produce identical vertex values
// and message counts for any worker count; only the cross-worker traffic
// may differ.
func TestPartitionEquivalenceProperty(t *testing.T) {
	f := func(seed int64, workerHint uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(4 * n)
		b := graph.NewBuilder(n, true)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Finalize()
		workers := 1 + int(workerHint%7)
		run := func(p Partition) ([]echoVal, int64) {
			e := New[echoVal, float64](g, Options{Workers: workers, Partition: p})
			st, err := e.Run(maxPropProgram{})
			if err != nil {
				return nil, -1
			}
			return e.Values(), st.MessagesSent
		}
		v1, m1 := run(PartitionBlock)
		v2, m2 := run(PartitionHash)
		if m1 != m2 || v1 == nil {
			return false
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHashPartitionSpreadsVertices(t *testing.T) {
	g := graph.Path(10, true)
	e := New[echoVal, float64](g, Options{Workers: 2, Partition: PartitionHash})
	// Vertex v lives on worker v mod 2.
	for v := 0; v < 10; v++ {
		if got := e.ownerOf(graph.VertexID(v)); got != v%2 {
			t.Fatalf("ownerOf(%d) = %d, want %d", v, got, v%2)
		}
	}
	if _, err := e.Run(echoProgram{}); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		want := float64(u)
		if u == 0 {
			want = 1
		}
		if got := e.Value(graph.VertexID(u)).Best; got != want {
			t.Fatalf("hash-partitioned value[%d] = %g, want %g", u, got, want)
		}
	}
}

func TestCrossWorkerCounting(t *testing.T) {
	// A path graph: with block partitioning only boundary edges cross;
	// with hash partitioning every consecutive pair crosses.
	g := graph.Path(16, true)
	for _, tc := range []struct {
		part Partition
		want int64
	}{{PartitionBlock, 1}, {PartitionHash, 15}} {
		e := New[echoVal, float64](g, Options{Workers: 2, Partition: tc.part})
		stats, err := e.Run(echoProgram{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.CrossWorker != tc.want {
			t.Fatalf("%v: cross-worker = %d, want %d", tc.part, stats.CrossWorker, tc.want)
		}
	}
}

// Property: ScanAll and WorkQueue produce identical vertex values and
// identical vertex-level message counts on the flood program.
func TestSchedulerEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(4 * n)
		b := graph.NewBuilder(n, true)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Finalize()
		run := func(s Scheduler) ([]echoVal, int64) {
			e := New[echoVal, float64](g, Options{Workers: 4, Scheduler: s})
			st, err := e.Run(maxPropProgram{})
			if err != nil {
				return nil, -1
			}
			return e.Values(), st.MessagesSent
		}
		v1, m1 := run(ScanAll)
		v2, m2 := run(WorkQueue)
		if m1 != m2 || v1 == nil {
			return false
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// constKeyCombiner wraps a plain sum combiner in the KeyedCombiner
// interface with a constant key, which forces the engine down the sparse
// map-indexed combining fallback while describing the exact same
// per-destination merge as the dense slot-table path.
type constKeyCombiner struct{}

func (constKeyCombiner) Combine(a, b float64) float64 { return a + b }
func (constKeyCombiner) Key(float64) uint32           { return 0 }

// Property: the dense slot-indexed combiner and the map-based keyed
// fallback produce identical message statistics and identical vertex
// values on random graphs — the dense rework must be observationally
// equivalent to the original map scheme.
func TestDenseCombinerMatchesKeyedFallbackProperty(t *testing.T) {
	f := func(seed int64, workerHint uint8, hashPart bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(6 * n)
		b := graph.NewBuilder(n, true)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Finalize()
		part := PartitionBlock
		if hashPart {
			part = PartitionHash
		}
		workers := 1 + int(workerHint%7)
		run := func(c Combiner[float64]) ([]sumVal, int64, int64) {
			e := New[sumVal, float64](g, Options{Workers: workers, Partition: part})
			e.SetCombiner(c)
			st, err := e.Run(sumAllProgram{rounds: 3})
			if err != nil {
				return nil, -1, -1
			}
			return e.Values(), st.MessagesSent, st.CombinedMessages
		}
		v1, sent1, comb1 := run(CombinerFunc[float64](func(a, b float64) float64 { return a + b }))
		v2, sent2, comb2 := run(constKeyCombiner{})
		if v1 == nil || sent1 != sent2 || comb1 != comb2 {
			return false
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsStringAndSteps(t *testing.T) {
	g := graph.Path(5, true)
	e := New[echoVal, float64](g, Options{Workers: 2})
	stats, err := e.Run(echoProgram{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Steps) != stats.Supersteps {
		t.Fatalf("steps len %d != supersteps %d", len(stats.Steps), stats.Supersteps)
	}
	if stats.String() == "" {
		t.Fatal("empty stats string")
	}
	if stats.MessageBytes != stats.CombinedMessages*8 {
		t.Fatalf("bytes = %d, want %d (8 per float64)", stats.MessageBytes, stats.CombinedMessages*8)
	}
}

func TestContextAccessors(t *testing.T) {
	g := graph.Grid(3, 3, 5, 1)
	e := New[probeVal, float64](g, Options{Workers: 2})
	if _, err := e.Run(&probeProgram{}); err != nil {
		t.Fatal(err)
	}
	// Vertex 4 is the grid centre: degree 4.
	v := e.Value(4)
	if v.OutDeg != 4 || v.InDeg != 4 {
		t.Fatalf("centre degrees = (%d,%d), want (4,4)", v.OutDeg, v.InDeg)
	}
	if v.N != 9 {
		t.Fatalf("NumVertices = %d, want 9", v.N)
	}
	if !v.Weighted {
		t.Fatal("expected weights visible")
	}
}

type probeVal struct {
	OutDeg, InDeg, N int
	Weighted         bool
}

type probeProgram struct{}

func (*probeProgram) Init(ctx *Context[probeVal, float64]) {
	v := ctx.Value()
	v.OutDeg = len(ctx.OutNeighbors())
	v.InDeg = len(ctx.InNeighbors())
	v.N = ctx.NumVertices()
	v.Weighted = ctx.OutWeights() != nil && ctx.InWeights() != nil && ctx.OutDegree() == v.OutDeg
	if ctx.Graph() == nil {
		panic("nil graph")
	}
	ctx.VoteToHalt()
}

func (*probeProgram) Compute(ctx *Context[probeVal, float64], msgs []float64) { ctx.VoteToHalt() }
