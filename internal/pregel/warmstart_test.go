package pregel

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
)

// wsProgram is a hop-count SSSP variant made for warm restarts: a vertex
// activated with an empty inbox re-announces its current distance, so
// activating the endpoints of an edge delta is enough to repair the
// fixpoint outward from the change.
type wsVal struct{ D float64 }

type wsProgram struct{}

func (wsProgram) Init(ctx *Context[wsVal, float64]) {
	v := ctx.Value()
	if ctx.ID() == 0 {
		v.D = 0
		ctx.BroadcastOut(1)
	} else {
		v.D = math.Inf(1)
	}
	ctx.VoteToHalt()
}

func (wsProgram) Compute(ctx *Context[wsVal, float64], msgs []float64) {
	v := ctx.Value()
	if len(msgs) == 0 {
		if !math.IsInf(v.D, 1) {
			ctx.BroadcastOut(v.D + 1)
		}
		ctx.VoteToHalt()
		return
	}
	best := math.Inf(1)
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < v.D {
		v.D = best
		ctx.BroadcastOut(v.D + 1)
	}
	ctx.VoteToHalt()
}

// terminalSnapshot runs prog on g to completion, capturing only the
// terminal barrier, and returns the decoded Done snapshot plus the stats.
func terminalSnapshot(t *testing.T, g *graph.Graph, sched Scheduler) (*Snapshot, *Stats, []wsVal) {
	t.Helper()
	var sink bytes.Buffer
	e := New[wsVal, float64](g, Options{
		Workers:    3,
		Scheduler:  sched,
		Checkpoint: CheckpointOptions{Sink: &sink},
	})
	e.SetCombiner(CombinerFunc[float64](math.Min))
	stats, err := e.Run(wsProgram{})
	if err != nil {
		t.Fatal(err)
	}
	s, rest, err := DecodeSnapshot(sink.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("sink holds %d trailing bytes; expected exactly the terminal snapshot", len(rest))
	}
	if !s.Done {
		t.Fatal("terminal snapshot not marked Done")
	}
	return s, stats, append([]wsVal(nil), e.Values()...)
}

// TestWarmStartDeltaRecompute is the engine-level delta-recomputation
// story: converge on a path, add a shortcut edge via graph.ApplyDelta,
// warm-start from the converged snapshot activating only the edge's
// endpoints, and require the repaired fixpoint to be bit-identical to a
// from-scratch run on the mutated graph — in strictly fewer supersteps
// and messages.
func TestWarmStartDeltaRecompute(t *testing.T) {
	g := graph.Path(24, true)
	oldFP := g.Fingerprint()
	d := &graph.Delta{}
	d.AddEdge(0, 18)
	mg, ad, err := graph.ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}

	for _, sched := range []Scheduler{ScanAll, WorkQueue} {
		t.Run(schedName(sched), func(t *testing.T) {
			snap, _, _ := terminalSnapshot(t, g, ScanAll) // snapshot scheduler may differ

			// Ground truth: from-scratch on the mutated graph.
			scratch := New[wsVal, float64](mg, Options{Workers: 3, Scheduler: sched})
			scratch.SetCombiner(CombinerFunc[float64](math.Min))
			scratchStats, err := scratch.Run(wsProgram{})
			if err != nil {
				t.Fatal(err)
			}

			warm := New[wsVal, float64](mg, Options{
				Workers:   3,
				Scheduler: sched,
				WarmStart: &WarmStartOptions{
					Snapshot:          snap,
					ExpectFingerprint: oldFP,
					Activate:          ad.Touched(g.NumVertices()),
				},
			})
			warm.SetCombiner(CombinerFunc[float64](math.Min))
			warmStats, err := warm.Run(wsProgram{})
			if err != nil {
				t.Fatal(err)
			}
			for u := range scratch.Values() {
				got := warm.Value(VertexID(u)).D
				want := scratch.Value(VertexID(u)).D
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("vertex %d: warm D = %g, scratch D = %g", u, got, want)
				}
			}
			if warmStats.Supersteps >= scratchStats.Supersteps {
				t.Errorf("warm restart took %d supersteps, scratch %d — expected strictly fewer",
					warmStats.Supersteps, scratchStats.Supersteps)
			}
			if warmStats.MessagesSent >= scratchStats.MessagesSent {
				t.Errorf("warm restart sent %d messages, scratch %d — expected strictly fewer",
					warmStats.MessagesSent, scratchStats.MessagesSent)
			}
			// Only the activated frontier ran in the first superstep.
			if got, want := warmStats.Steps[0].ActiveVertices, len(ad.Touched(g.NumVertices())); got != want {
				t.Errorf("first warm superstep ran %d vertices, want %d", got, want)
			}
		})
	}
}

// TestWarmStartEmptyFrontier: warm-starting with nothing to activate must
// converge immediately with the restored values intact.
func TestWarmStartEmptyFrontier(t *testing.T) {
	g := graph.Path(10, true)
	snap, _, want := terminalSnapshot(t, g, ScanAll)
	e := New[wsVal, float64](g, Options{
		Workers:   2,
		WarmStart: &WarmStartOptions{Snapshot: snap},
	})
	stats, err := e.Run(wsProgram{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 1 {
		t.Errorf("empty warm start took %d supersteps, want 1", stats.Supersteps)
	}
	for u, w := range want {
		if got := e.Value(VertexID(u)); got != w {
			t.Fatalf("value[%d] = %+v, want %+v", u, got, w)
		}
	}
}

func TestWarmStartValidation(t *testing.T) {
	g := graph.Path(10, true)
	done, _, _ := terminalSnapshot(t, g, ScanAll)

	// A mid-run snapshot: not Done, possibly with in-flight messages.
	dir := t.TempDir()
	e := New[wsVal, float64](g, Options{
		Workers:    2,
		Checkpoint: CheckpointOptions{Every: 1, Dir: dir},
	})
	if _, err := e.Run(wsProgram{}); err != nil {
		t.Fatal(err)
	}
	mid, err := ReadSnapshotFile(filepath.Join(dir, SnapshotFileName(2)))
	if err != nil {
		t.Fatal(err)
	}
	if mid.Done {
		t.Fatal("superstep-2 snapshot unexpectedly Done")
	}

	run := func(g *graph.Graph, ws *WarmStartOptions, resume *Snapshot) error {
		e := New[wsVal, float64](g, Options{Workers: 2, WarmStart: ws, Resume: resume})
		_, err := e.Run(wsProgram{})
		return err
	}

	if err := run(g, &WarmStartOptions{Snapshot: mid}, nil); err == nil || !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("non-Done snapshot: err = %v, want ErrSnapshotMismatch", err)
	}
	if err := run(g, &WarmStartOptions{Snapshot: done, ExpectFingerprint: 12345}, nil); err == nil || !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("wrong expected fingerprint: err = %v, want ErrSnapshotMismatch", err)
	}
	// A grown graph (delta added vertices, caller fed the old snapshot)
	// must be named precisely — added-vertex count plus the remedy — not
	// surface as a generic size or decode failure.
	if err := run(graph.Path(12, true), &WarmStartOptions{Snapshot: done}, nil); err == nil || !errors.Is(err, ErrSnapshotMismatch) ||
		!strings.Contains(err.Error(), "gained 2 vertices") || !strings.Contains(err.Error(), "rerun from scratch") {
		t.Errorf("grown graph: err = %v, want ErrSnapshotMismatch naming 2 added vertices", err)
	}
	if err := run(graph.Path(9, true), &WarmStartOptions{Snapshot: done}, nil); err == nil || !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("shrunk graph: err = %v, want ErrSnapshotMismatch", err)
	}
	if err := run(g, &WarmStartOptions{Snapshot: done, Activate: []VertexID{99}}, nil); err == nil || !errors.Is(err, ErrSnapshotMismatch) ||
		!strings.Contains(err.Error(), "activates vertex") {
		t.Errorf("out-of-range activation: err = %v, want ErrSnapshotMismatch", err)
	}
	if err := run(g, &WarmStartOptions{Snapshot: done}, done); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("Resume+WarmStart: err = %v", err)
	}
	if err := run(g, &WarmStartOptions{}, nil); err == nil || !strings.Contains(err.Error(), "needs a snapshot") {
		t.Errorf("nil snapshot: err = %v", err)
	}

	// A quiescent-looking but in-flight snapshot: doctor the Done flag on
	// the mid-run snapshot so only the inbox check can catch it.
	if inflight := func() int64 {
		var n int64
		for _, c := range mid.InboxCounts {
			n += int64(c)
		}
		return n
	}(); inflight > 0 {
		mid.Done = true
		err := run(g, &WarmStartOptions{Snapshot: mid}, nil)
		if err == nil || !strings.Contains(err.Error(), "not quiescent") {
			t.Errorf("in-flight snapshot: err = %v, want quiescence rejection", err)
		}
	}
}

// slowProgram sleeps in every Compute call, modelling a worker whose
// vertices are individually slow (not wedged).
type slowProgram struct{ d time.Duration }

func (slowProgram) Init(ctx *Context[int, int]) {}

func (p slowProgram) Compute(ctx *Context[int, int], msgs []int) {
	time.Sleep(p.d)
	ctx.VoteToHalt()
}

// TestStepTimeoutCooperative pins the satellite fix: StepTimeout is also
// checked inside the chunked vertex loop, so a superstep whose vertices
// are individually slow aborts shortly after the deadline instead of
// draining the whole range first. 256 vertices × 2ms on one worker is
// >500ms of compute; the cooperative check (every 32 vertices) must stop
// it far earlier.
func TestStepTimeoutCooperative(t *testing.T) {
	g := graph.Cycle(256, true)
	e := New[int, int](g, Options{
		Workers:     1,
		StepTimeout: 15 * time.Millisecond,
	})
	start := time.Now()
	stats, err := e.Run(slowProgram{d: 2 * time.Millisecond})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrStepTimeout) {
		t.Fatalf("err = %v, want ErrStepTimeout", err)
	}
	if stats == nil || !stats.Aborted {
		t.Fatalf("stats = %+v, want aborted partial stats", stats)
	}
	// Full drain would take >500ms; the cooperative check bounds overrun
	// to ~32 vertices past the deadline. Generous margin for slow CI.
	if elapsed > 300*time.Millisecond {
		t.Errorf("cooperative timeout took %v; superstep appears to have drained the full range", elapsed)
	}
}

// TestStepTimeoutBarrierStillWorks: the pre-existing barrier check still
// fires when compute is fast but the superstep as a whole overruns.
func TestStepTimeoutZeroAllocPath(t *testing.T) {
	// With StepTimeout unset the cooperative check must be inert: this is
	// implicitly pinned by TestSteadyStateAllocs, but assert the fast path
	// completes normally here too.
	g := graph.Cycle(64, true)
	e := New[int, int](g, Options{Workers: 2})
	if _, err := e.Run(slowProgram{d: 0}); err != nil {
		t.Fatal(err)
	}
}

// panicAtProgram panics in Compute at a chosen superstep.
type panicAtProgram struct{ at int }

func (panicAtProgram) Init(ctx *Context[int, int]) { ctx.BroadcastOut(1) }

func (p panicAtProgram) Compute(ctx *Context[int, int], msgs []int) {
	if ctx.Superstep() == p.at && ctx.ID() == 0 {
		panic("boom")
	}
	ctx.BroadcastOut(1)
	ctx.VoteToHalt()
}

// TestCheckpointSuperstepRecorded pins Stats.CheckpointSuperstep on the
// normal and panic-abort paths: it must always name the superstep the
// CheckpointPath snapshot captured, which after a panic is the last
// periodic snapshot — behind Stats.Supersteps.
func TestCheckpointSuperstepRecorded(t *testing.T) {
	g := graph.Cycle(8, true)

	// No checkpointing: stays -1.
	e := New[int, int](g, Options{Workers: 2, MaxSupersteps: 4})
	stats, err := e.Run(slowProgram{d: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointSuperstep != -1 {
		t.Errorf("no-checkpoint run: CheckpointSuperstep = %d, want -1", stats.CheckpointSuperstep)
	}

	// Terminal snapshot: matches the file the path names.
	dir := t.TempDir()
	e = New[int, int](g, Options{
		Workers:    2,
		Checkpoint: CheckpointOptions{Every: 1, Dir: dir},
	})
	stats, err = e.Run(slowProgram{d: 0})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointPath != filepath.Join(dir, SnapshotFileName(stats.CheckpointSuperstep)) {
		t.Errorf("CheckpointSuperstep %d does not match CheckpointPath %q",
			stats.CheckpointSuperstep, stats.CheckpointPath)
	}

	// Panic abort: no fresh snapshot, so CheckpointSuperstep names the
	// last periodic one and trails Supersteps.
	dir = t.TempDir()
	e = New[int, int](g, Options{
		Workers:    2,
		Checkpoint: CheckpointOptions{Every: 2, Dir: dir},
	})
	stats, err = e.Run(panicAtProgram{at: 4})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if stats.CheckpointPath == "" {
		t.Fatal("panic abort left no CheckpointPath")
	}
	var k int
	if _, err := fmt.Sscanf(filepath.Base(stats.CheckpointPath), "snap-%d.dvsnap", &k); err != nil {
		t.Fatalf("cannot parse %q: %v", stats.CheckpointPath, err)
	}
	if stats.CheckpointSuperstep != k {
		t.Errorf("CheckpointSuperstep = %d, path says %d", stats.CheckpointSuperstep, k)
	}
	if stats.CheckpointSuperstep >= stats.Supersteps {
		t.Errorf("CheckpointSuperstep %d should trail Supersteps %d after a panic abort",
			stats.CheckpointSuperstep, stats.Supersteps)
	}
}
