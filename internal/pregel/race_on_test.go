//go:build race

package pregel

// raceEnabled reports whether the race detector is active; allocation
// regression tests skip under it because instrumentation perturbs counts.
const raceEnabled = true
