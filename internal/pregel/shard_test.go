package pregel

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/pregel/transport"
)

// The sharded proof: a run split across S engines connected by the
// socket transport must be bit-identical — values, aggregators, merged
// statistics, superstep count — to an in-process run with the same
// total worker count, because the partition math and every float fold
// order are preserved (stub workers keep the global worker iteration
// order). These tests host the shards as goroutines of one process
// over a real unix-socket mesh; cmd/dvshard is the two-process CLI.

// shardVal exercises float accumulation so any fold-order divergence
// shows up as a bit difference.
type shardVal struct{ Score float64 }

// massProgram spreads weighted mass for a fixed number of rounds and
// folds every vertex's score into a sum aggregator each superstep.
type massProgram struct{ rounds int }

func (p *massProgram) Init(ctx *Context[shardVal, float64]) {
	ctx.Value().Score = 1 + float64(ctx.ID()%7)*0.125
	ctx.Aggregate("mass", ctx.Value().Score)
	p.spread(ctx)
}

func (p *massProgram) Compute(ctx *Context[shardVal, float64], msgs []float64) {
	sum := 0.0
	for _, m := range msgs {
		sum += m
	}
	ctx.Value().Score = 0.2*ctx.Value().Score + 0.8*sum
	ctx.Aggregate("mass", ctx.Value().Score)
	if ctx.Superstep() < p.rounds {
		p.spread(ctx)
	} else {
		ctx.VoteToHalt()
	}
}

func (p *massProgram) spread(ctx *Context[shardVal, float64]) {
	if d := ctx.OutDegree(); d > 0 {
		ctx.BroadcastOut(ctx.Value().Score / float64(d))
	}
}

func massEngine(g *graph.Graph, opts Options, combine bool) *Engine[shardVal, float64] {
	e := New[shardVal, float64](g, opts)
	if combine {
		e.SetCombiner(CombinerFunc[float64](func(a, b float64) float64 { return a + b }))
	}
	if err := e.RegisterAggregator("mass", AggSum, false); err != nil {
		panic(err)
	}
	return e
}

func shardAddrs(t *testing.T, count int) []string {
	t.Helper()
	dir := t.TempDir()
	addrs := make([]string, count)
	for i := range addrs {
		addrs[i] = "unix:" + filepath.Join(dir, fmt.Sprintf("s%d.sock", i))
	}
	return addrs
}

// shardOutcome is one shard's view of a sharded run.
type shardOutcome struct {
	eng   *Engine[shardVal, float64]
	stats *Stats
	err   error
}

// runMassSharded runs the mass program across count shards over a
// unix-socket mesh, one goroutine per shard. perShard tweaks each
// shard's options (checkpoint dir, resume snapshot); ctxOf supplies
// each shard's run context. Either may be nil.
func runMassSharded(t *testing.T, g *graph.Graph, base Options, combine bool, rounds, count int,
	perShard func(shard int, o *Options), ctxOf func(shard int) context.Context) []shardOutcome {
	t.Helper()
	addrs := shardAddrs(t, count)
	out := make([]shardOutcome, count)
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := transport.DialMesh(transport.SocketConfig{
				Shard: i, Count: count, Addrs: addrs,
				Fingerprint: g.Fingerprint(), Timeout: 10 * time.Second,
			})
			if err != nil {
				out[i] = shardOutcome{err: fmt.Errorf("dial: %w", err)}
				return
			}
			defer tr.Close()
			o := base
			o.Shard = &ShardOptions{Index: i, Count: count, Transport: tr}
			if perShard != nil {
				perShard(i, &o)
			}
			e := massEngine(g, o, combine)
			ctx := context.Background()
			if ctxOf != nil {
				ctx = ctxOf(i)
			}
			st, err := e.RunContext(ctx, &massProgram{rounds: rounds})
			out[i] = shardOutcome{eng: e, stats: st, err: err}
		}(i)
	}
	wg.Wait()
	return out
}

func requireBitIdentical(t *testing.T, label string, got, want []shardVal) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("%s: vertex %d = %v, want %v (bitwise)", label, u, got[u].Score, want[u].Score)
		}
	}
}

// TestShardedRunBitIdenticalToLocal is the core equivalence claim, over
// even and uneven worker splits, both schedulers, and the combiner.
func TestShardedRunBitIdenticalToLocal(t *testing.T) {
	g := graph.RMAT(8, 4, 0.57, 0.19, 0.19, true, 42)
	const rounds = 5
	cases := []struct {
		name            string
		workers, shards int
		sched           Scheduler
		combine         bool
	}{
		{"2x2-scan", 4, 2, ScanAll, false},
		{"2x2-scan-combine", 4, 2, ScanAll, true},
		{"2x2-queue", 4, 2, WorkQueue, false},
		{"3x5-uneven-scan-combine", 5, 3, ScanAll, true},
		{"3x5-uneven-queue", 5, 3, WorkQueue, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Workers: tc.workers, Scheduler: tc.sched}
			ref := massEngine(g, opts, tc.combine)
			refStats, err := ref.Run(&massProgram{rounds: rounds})
			if err != nil {
				t.Fatal(err)
			}
			outs := runMassSharded(t, g, opts, tc.combine, rounds, tc.shards, nil, nil)
			for i, o := range outs {
				if o.err != nil {
					t.Fatalf("shard %d: %v", i, o.err)
				}
				requireBitIdentical(t, fmt.Sprintf("shard %d", i), o.eng.Values(), ref.Values())
				if got, want := o.eng.AggregatorValue("mass"), ref.AggregatorValue("mass"); got != want {
					t.Fatalf("shard %d: mass aggregator = %v, want %v (bitwise)", i, got, want)
				}
				if o.stats.Supersteps != refStats.Supersteps ||
					o.stats.MessagesSent != refStats.MessagesSent ||
					o.stats.CombinedMessages != refStats.CombinedMessages ||
					o.stats.CrossWorker != refStats.CrossWorker ||
					o.stats.TotalActive != refStats.TotalActive {
					t.Fatalf("shard %d merged stats diverge:\n got %v\nwant %v", i, o.stats, refStats)
				}
				lo, hi := o.eng.ShardOwnedRange()
				if lo < 0 || hi < lo || hi > g.NumVertices() {
					t.Fatalf("shard %d owns bad range [%d, %d)", i, lo, hi)
				}
			}
		})
	}
}

// TestShardCheckpointResumeEquivalence kills a sharded run at every
// barrier and resumes it from the per-shard snapshots: MaxSupersteps=k
// is a deterministic, symmetric abort at barrier k (each shard captures
// superstep k-1), exactly the cut a crash-at-barrier leaves behind. The
// resumed run must land bit-identical to the uninterrupted reference.
func TestShardCheckpointResumeEquivalence(t *testing.T) {
	g := graph.RMAT(7, 4, 0.45, 0.25, 0.2, true, 9)
	const workers, shards, rounds = 4, 2, 5
	opts := Options{Workers: workers}
	ref := massEngine(g, opts, true)
	refStats, err := ref.Run(&massProgram{rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < refStats.Supersteps; k++ {
		t.Run(fmt.Sprintf("kill-at-barrier-%d", k), func(t *testing.T) {
			dirs := make([]string, shards)
			for i := range dirs {
				dirs[i] = t.TempDir()
			}
			// Phase 1: run to barrier k and stop — every shard writes its
			// own snapshot of superstep k-1, then the limit aborts the run.
			outs := runMassSharded(t, g, opts, true, rounds, shards, func(i int, o *Options) {
				o.MaxSupersteps = k
				o.Checkpoint = CheckpointOptions{Dir: dirs[i]}
			}, nil)
			for i, o := range outs {
				if o.err == nil || !strings.Contains(o.err.Error(), "superstep limit") {
					t.Fatalf("shard %d: err = %v, want superstep limit", i, o.err)
				}
				if o.stats.CheckpointSuperstep != k-1 {
					t.Fatalf("shard %d captured superstep %d, want %d", i, o.stats.CheckpointSuperstep, k-1)
				}
			}
			// Phase 2: restart both shards from their own snapshots.
			snaps := make([]*Snapshot, shards)
			for i := range snaps {
				s, err := ReadSnapshotFile(filepath.Join(dirs[i], SnapshotFileName(k-1)))
				if err != nil {
					t.Fatalf("shard %d snapshot: %v", i, err)
				}
				snaps[i] = s
			}
			outs = runMassSharded(t, g, opts, true, rounds, shards, func(i int, o *Options) {
				o.Resume = snaps[i]
			}, nil)
			for i, o := range outs {
				if o.err != nil {
					t.Fatalf("resumed shard %d: %v", i, o.err)
				}
				requireBitIdentical(t, fmt.Sprintf("resumed shard %d", i), o.eng.Values(), ref.Values())
				if got, want := o.eng.AggregatorValue("mass"), ref.AggregatorValue("mass"); got != want {
					t.Fatalf("resumed shard %d: mass = %v, want %v", i, got, want)
				}
			}
		})
	}
}

// TestShardMismatchedResumeRejected: shards resuming from different
// supersteps must fail at the first barrier, not silently diverge.
func TestShardMismatchedResumeRejected(t *testing.T) {
	g := graph.RMAT(6, 4, 0.5, 0.2, 0.2, true, 3)
	opts := Options{Workers: 4}
	dirs := []string{t.TempDir(), t.TempDir()}
	outs := runMassSharded(t, g, opts, false, 5, 2, func(i int, o *Options) {
		o.MaxSupersteps = 3
		o.Checkpoint = CheckpointOptions{Dir: dirs[i], Every: 1}
	}, nil)
	for i, o := range outs {
		if o.err == nil {
			t.Fatalf("shard %d: want superstep-limit error", i)
		}
	}
	// Shard 0 resumes from superstep 1, shard 1 from superstep 2.
	outs = runMassSharded(t, g, opts, false, 5, 2, func(i int, o *Options) {
		s, err := ReadSnapshotFile(filepath.Join(dirs[i], SnapshotFileName(1+i)))
		if err != nil {
			t.Fatal(err)
		}
		o.Resume = s
	}, nil)
	sawMismatch := false
	for i, o := range outs {
		if o.err == nil {
			t.Fatalf("shard %d: mismatched resume succeeded", i)
		}
		if strings.Contains(o.err.Error(), "superstep") {
			sawMismatch = true
		}
	}
	if !sawMismatch {
		t.Fatalf("no shard reported the superstep mismatch: %v / %v", outs[0].err, outs[1].err)
	}
}

// TestShardAbortPropagates: a shard aborting locally (cancelled context)
// must take its peer down with an attributed error instead of hanging it.
func TestShardAbortPropagates(t *testing.T) {
	g := graph.RMAT(6, 4, 0.5, 0.2, 0.2, true, 5)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	outs := runMassSharded(t, g, Options{Workers: 4}, false, 50, 2, nil, func(i int) context.Context {
		if i == 0 {
			return cancelled
		}
		return context.Background()
	})
	if outs[0].err == nil || !strings.Contains(outs[0].err.Error(), "context canceled") {
		t.Fatalf("shard 0 err = %v, want context canceled", outs[0].err)
	}
	if outs[1].err == nil {
		t.Fatal("shard 1 completed despite peer abort")
	}
	if !strings.Contains(outs[1].err.Error(), "shard 0") {
		t.Fatalf("shard 1 err = %v, want attribution to shard 0", outs[1].err)
	}
	if outs[1].stats == nil || !outs[1].stats.Aborted {
		t.Fatalf("shard 1 stats = %+v, want Aborted", outs[1].stats)
	}
}

// TestShardPanicPropagates: a vertex panic on one shard hard-aborts the
// whole mesh at the next barrier.
func TestShardPanicPropagates(t *testing.T) {
	g := graph.Path(64, true)
	addrs := shardAddrs(t, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := transport.DialMesh(transport.SocketConfig{
				Shard: i, Count: 2, Addrs: addrs,
				Fingerprint: g.Fingerprint(), Timeout: 10 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer tr.Close()
			e := New[shardVal, float64](g, Options{
				Workers: 4,
				Shard:   &ShardOptions{Index: i, Count: 2, Transport: tr},
			})
			// Vertex 40 lives on shard 1 and panics at superstep 1.
			_, errs[i] = e.Run(&shardPanicProgram{vertex: 40, superstep: 1})
		}(i)
	}
	wg.Wait()
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "boom") {
		t.Fatalf("panicking shard err = %v, want the recovered panic", errs[1])
	}
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "shard 1") {
		t.Fatalf("peer err = %v, want attribution to shard 1", errs[0])
	}
}

type shardPanicProgram struct {
	vertex    VertexID
	superstep int
}

func (p *shardPanicProgram) Init(ctx *Context[shardVal, float64]) {
	ctx.BroadcastOut(1)
}

func (p *shardPanicProgram) Compute(ctx *Context[shardVal, float64], msgs []float64) {
	if ctx.ID() == p.vertex && ctx.Superstep() == p.superstep {
		panic("boom")
	}
	ctx.BroadcastOut(1)
}

// TestShardOptionValidation pins the unsupported-configuration errors.
func TestShardOptionValidation(t *testing.T) {
	g := graph.Path(16, true)
	run := func(o Options) error {
		e := New[shardVal, float64](g, o)
		_, err := e.Run(&massProgram{rounds: 1})
		return err
	}
	tr := transport.NewLocal()
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"no transport", Options{Workers: 4, Shard: &ShardOptions{Index: 0, Count: 2}}, "transport"},
		{"bad index", Options{Workers: 4, Shard: &ShardOptions{Index: 2, Count: 2, Transport: tr}}, "bad shard"},
		{"hash partition", Options{Workers: 4, Partition: PartitionHash, Shard: &ShardOptions{Index: 0, Count: 2, Transport: tr}}, "PartitionBlock"},
		{"quarantine", Options{Workers: 4, Quarantine: true, Shard: &ShardOptions{Index: 0, Count: 2, Transport: tr}}, "Quarantine"},
		{"more shards than workers", Options{Workers: 2, Shard: &ShardOptions{Index: 0, Count: 3, Transport: tr}}, "shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.opts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestUnshardedShardAccessors: the degenerate single-shard accessors.
func TestUnshardedShardAccessors(t *testing.T) {
	g := graph.Path(16, true)
	e := massEngine(g, Options{Workers: 2}, false)
	if _, err := e.Run(&massProgram{rounds: 1}); err != nil {
		t.Fatal(err)
	}
	if idx, count := e.ShardInfo(); idx != 0 || count != 1 {
		t.Fatalf("ShardInfo = %d, %d", idx, count)
	}
	if lo, hi := e.ShardOwnedRange(); lo != 0 || hi != 16 {
		t.Fatalf("ShardOwnedRange = [%d, %d)", lo, hi)
	}
	got, err := e.ShardAllGather([]byte("x"))
	if err != nil || len(got) != 1 || string(got[0]) != "x" {
		t.Fatalf("ShardAllGather = %q, %v", got, err)
	}
}

// TestShardedCount1OverSocket: the dvshard baseline mode — one shard on
// a socket transport — behaves exactly like an unsharded run.
func TestShardedCount1OverSocket(t *testing.T) {
	g := graph.RMAT(6, 4, 0.5, 0.2, 0.2, true, 21)
	addrs := shardAddrs(t, 1)
	tr, err := transport.DialMesh(transport.SocketConfig{
		Shard: 0, Count: 1, Addrs: addrs, Fingerprint: g.Fingerprint(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ref := massEngine(g, Options{Workers: 4}, true)
	if _, err := ref.Run(&massProgram{rounds: 4}); err != nil {
		t.Fatal(err)
	}
	e := massEngine(g, Options{Workers: 4, Shard: &ShardOptions{Index: 0, Count: 1, Transport: tr}}, true)
	if _, err := e.Run(&massProgram{rounds: 4}); err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "count-1 socket", e.Values(), ref.Values())
}
