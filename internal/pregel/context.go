package pregel

import "repro/internal/graph"

// Context is the per-vertex view of the computation handed to Program.Init
// and Program.Compute. A Context is only valid for the duration of the call
// it is passed to.
type Context[V, M any] struct {
	eng *Engine[V, M]
	w   *worker[V, M]
	id  VertexID

	votedHalt  bool
	removeSelf bool
}

// ID returns the vertex this context belongs to.
func (c *Context[V, M]) ID() VertexID { return c.id }

// Superstep returns the current superstep number (0 = Init).
func (c *Context[V, M]) Superstep() int { return c.eng.superstep }

// NumVertices returns |V| of the graph.
func (c *Context[V, M]) NumVertices() int { return c.eng.g.NumVertices() }

// Value returns a pointer to this vertex's mutable state.
func (c *Context[V, M]) Value() *V { return &c.eng.values[c.id] }

// ValueOf returns a pointer to vertex u's state. Reading another vertex's
// state concurrently with its owner mutating it is a race; this accessor
// exists for single-threaded inspection (tests, master hooks).
func (c *Context[V, M]) ValueOf(u VertexID) *V { return &c.eng.values[u] }

// Graph returns the underlying immutable graph.
func (c *Context[V, M]) Graph() *graph.Graph { return c.eng.g }

// OutNeighbors returns this vertex's out-adjacency (neighbour set for
// undirected graphs). On flat graphs the slice is shared — do not
// modify it; on compact graphs it is a fresh copy, so hot paths should
// iterate with OutArcs instead.
func (c *Context[V, M]) OutNeighbors() []VertexID { return c.eng.g.OutNeighbors(c.id) }

// OutWeights returns the weights parallel to OutNeighbors, or nil.
func (c *Context[V, M]) OutWeights() []float64 { return c.eng.g.OutWeights(c.id) }

// InNeighbors returns this vertex's in-adjacency. The same sharing and
// allocation caveats as OutNeighbors apply; prefer InArcs on hot paths.
func (c *Context[V, M]) InNeighbors() []VertexID { return c.eng.g.InNeighbors(c.id) }

// OutArcs returns an allocation-free cursor over this vertex's
// out-edges, valid for both graph representations.
func (c *Context[V, M]) OutArcs() graph.ArcIter { return c.eng.g.OutArcs(c.id) }

// InArcs returns an allocation-free cursor over this vertex's in-edges.
func (c *Context[V, M]) InArcs() graph.ArcIter { return c.eng.g.InArcs(c.id) }

// InWeights returns the weights parallel to InNeighbors, or nil.
func (c *Context[V, M]) InWeights() []float64 { return c.eng.g.InWeights(c.id) }

// OutDegree returns this vertex's out-degree.
func (c *Context[V, M]) OutDegree() int { return c.eng.g.OutDegree(c.id) }

// Send sends m to vertex `to`, to be received next superstep.
func (c *Context[V, M]) Send(to VertexID, m M) {
	w := c.w
	d := c.eng.ownerOf(to)
	w.outTo[d] = append(w.outTo[d], to)
	w.outMsg[d] = append(w.outMsg[d], m)
	w.sent++
}

// BroadcastOut sends m along every out-edge. The flat path ranges over
// the shared adjacency slice; the compact path decodes through an
// ArcIter — neither allocates.
func (c *Context[V, M]) BroadcastOut(m M) {
	g := c.eng.g
	if !g.IsCompact() {
		for _, v := range g.OutNeighbors(c.id) {
			c.Send(v, m)
		}
		return
	}
	it := g.OutArcs(c.id)
	for it.Next() {
		c.Send(it.To(), m)
	}
}

// BroadcastIn sends m along every in-edge (to all in-neighbours).
func (c *Context[V, M]) BroadcastIn(m M) {
	g := c.eng.g
	if !g.IsCompact() {
		for _, v := range g.InNeighbors(c.id) {
			c.Send(v, m)
		}
		return
	}
	it := g.InArcs(c.id)
	for it.Next() {
		c.Send(it.To(), m)
	}
}

// VoteToHalt deactivates this vertex until a message arrives for it.
func (c *Context[V, M]) VoteToHalt() { c.votedHalt = true }

// RemoveSelf removes this vertex from the computation at the end of the
// current superstep: it will never run again and messages addressed to it
// are dropped. Messages it sent this superstep are still delivered (this is
// what lets a vertex broadcast a zero-out patch before disappearing, per
// the paper's §9 deletion sketch).
func (c *Context[V, M]) RemoveSelf() { c.removeSelf = true }

// Aggregate contributes v to the named master aggregator; the reduced value
// becomes visible through AggValue at the next superstep. Contributions
// accumulate into a dense per-worker array indexed by the aggregator's
// registration order, so the hot path never touches a string-keyed map.
func (c *Context[V, M]) Aggregate(name string, v float64) {
	a, ok := c.eng.aggs[name]
	if !ok {
		panic("pregel: Aggregate to unregistered aggregator " + name)
	}
	w := c.w
	i := a.index
	if !w.aggSeen[i] {
		w.aggSeen[i] = true
		w.aggPend[i] = v
		return
	}
	if a.persistent {
		w.aggPend[i] += v
	} else {
		w.aggPend[i] = aggReduce(a.op, w.aggPend[i], v)
	}
}

// AggValue returns the named aggregator's committed value (reduced over the
// previous superstep's contributions; running total for persistent
// aggregators).
func (c *Context[V, M]) AggValue(name string) float64 {
	a, ok := c.eng.aggs[name]
	if !ok {
		panic("pregel: AggValue of unregistered aggregator " + name)
	}
	return a.value
}

// Globals returns the engine-wide read-only value installed by SetGlobals
// or the master hook.
func (c *Context[V, M]) Globals() any { return c.eng.globals }

// MasterContext is handed to the master hook at the end of each superstep.
type MasterContext struct {
	step       StepStats
	nextActive int

	activateAll bool
	stop        bool

	aggValue   func(string) float64
	setGlobals func(any)
	getGlobals func() any
}

// Step returns the statistics of the superstep that just completed.
func (m *MasterContext) Step() StepStats { return m.step }

// Superstep returns the superstep that just completed.
func (m *MasterContext) Superstep() int { return m.step.Superstep }

// NextActive returns how many vertices are scheduled to run next superstep
// (before any ActivateAll).
func (m *MasterContext) NextActive() int { return m.nextActive }

// ActivateAll re-activates every non-removed vertex for the next superstep.
func (m *MasterContext) ActivateAll() { m.activateAll = true }

// Stop terminates the computation after this superstep.
func (m *MasterContext) Stop() { m.stop = true }

// AggValue returns the committed value of a registered aggregator.
func (m *MasterContext) AggValue(name string) float64 { return m.aggValue(name) }

// Globals returns the engine-wide globals value.
func (m *MasterContext) Globals() any { return m.getGlobals() }

// SetGlobals replaces the engine-wide globals value for subsequent
// supersteps.
func (m *MasterContext) SetGlobals(g any) { m.setGlobals(g) }
