package pregel

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedSnapshot builds the valid snapshot the fuzz seeds mutate; the
// same bytes are checked in under testdata/fuzz/FuzzSnapshotDecode.
func fuzzSeedSnapshot() []byte {
	s := &Snapshot{
		Version:     SnapshotVersion,
		Fingerprint: 0xdeadbeefcafef00d,
		Superstep:   3,
		NumVertices: 5,
		ActivateAll: true,
		Aggs:        []float64{1.5, -2},
		Active:      []bool{true, false, true, true, false},
		Removed:     []bool{false, false, true, false, false},
		Queue:       []VertexID{0, 3, 1},
		InboxCounts: []uint32{1, 0, 0, 2, 0},
		Inbox:       AppendFloat64(AppendFloat64(AppendFloat64(nil, 1), 2), 3),
		Values:      bytes.Repeat([]byte{7}, 40),
		Extra:       []byte("extra"),
	}
	return s.AppendTo(nil)
}

// FuzzSnapshotDecode asserts the decoder's contract on arbitrary input:
// it may reject (corrupt/truncated/wrong-version inputs must error) but it
// must never panic, and anything it accepts must re-encode to a snapshot
// that decodes to the same value.
func FuzzSnapshotDecode(f *testing.F) {
	valid := fuzzSeedSnapshot()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte{})
	f.Add([]byte("DVSNAP"))
	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[6] ^= 0xff
	f.Add(wrongVersion)
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0x01
	f.Add(badCRC)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, rest, err := DecodeSnapshot(b)
		if err != nil {
			if s != nil {
				t.Fatal("decode returned both a snapshot and an error")
			}
			return
		}
		if len(rest) > len(b) {
			t.Fatal("remainder longer than input")
		}
		// Accepted input must survive a re-encode/decode cycle (bitset
		// padding bits may differ, so compare semantically, not by bytes).
		re := s.AppendTo(nil)
		s2, rest2, err := DecodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-encoded snapshot left %d remainder bytes", len(rest2))
		}
		normalize(s)
		normalize(s2)
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("re-encode changed the snapshot:\n got %+v\nwant %+v", s2, s)
		}
	})
}
