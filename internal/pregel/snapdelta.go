package pregel

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// This file implements incremental snapshots: a CRC'd DVSNAP-companion
// record that stores a barrier snapshot as a *patch* against an earlier base
// snapshot, identified by fingerprint+superstep. Between two checkpoints of
// a converged-then-repaired run only the touched frontier's state changes,
// so the patch is O(touched) bytes where a full snapshot is O(|V|). See
// DESIGN.md §16 "Checkpoint chain".
//
// The record patches the *serialized sections* of the snapshot (the same
// seven sections AppendTo writes: active bitset, removed bitset, queue,
// inbox counts, inbox payload, values, extra). Equal-length sections are
// diffed into sparse byte runs; sections whose length changed (a grown
// graph, a resized extra payload) degrade to full replacement, which is
// still correct, just not small. Aggregates are tiny and always stored in
// full.

// SnapshotDeltaVersion is the current delta-record format version.
const SnapshotDeltaVersion = 1

// snapshotDeltaMagic prefixes every encoded snapshot delta record.
var snapshotDeltaMagic = [6]byte{'D', 'V', 'S', 'N', 'P', 'D'}

// Section patch tags.
const (
	patchUnchanged = 0 // section bytes identical to the base's
	patchFull      = 1 // full replacement: len u64 + bytes
	patchRuns      = 2 // equal-length sparse edit: count u32 + (off u64, len u32, bytes)×count
)

// numSnapSections is the number of patchable serialized sections (active,
// removed, queue, inboxCounts, inbox, values, extra).
const numSnapSections = 7

// snapSectionNames label sections in error messages, index-aligned with
// snapshotSections.
var snapSectionNames = [numSnapSections]string{
	"active", "removed", "queue", "inboxCounts", "inbox", "values", "extra",
}

// patchRun is one contiguous byte edit at off.
type patchRun struct {
	off  int
	data []byte
}

// sectionPatch is the patch for one serialized section.
type sectionPatch struct {
	tag  byte
	full []byte     // patchFull payload
	runs []patchRun // patchRuns payload
}

// SnapshotDelta is a decoded incremental snapshot record: everything a
// Snapshot's header carries, plus the identity of the base it patches.
// Reconstruct the full snapshot with ApplySnapshotDelta.
type SnapshotDelta struct {
	Version     uint16
	Fingerprint uint64 // graph fingerprint at this barrier (may differ from the base's)
	Superstep   int
	NumVertices int

	ActivateAll bool
	Stopped     bool
	Done        bool
	WorkQueue   bool

	BaseFingerprint uint64 // identity of the snapshot this record patches
	BaseSuperstep   int

	Aggs []float64

	patches [numSnapSections]sectionPatch
}

// snapshotSections serializes s's seven patchable sections into their
// canonical byte strings, exactly as AppendTo lays them out.
func snapshotSections(s *Snapshot) [numSnapSections][]byte {
	var out [numSnapSections][]byte
	out[0] = appendBitset(nil, s.Active)
	out[1] = appendBitset(nil, s.Removed)
	q := binary.LittleEndian.AppendUint32(nil, uint32(len(s.Queue)))
	for _, v := range s.Queue {
		q = binary.LittleEndian.AppendUint32(q, uint32(v))
	}
	out[2] = q
	ic := make([]byte, 0, 4*len(s.InboxCounts))
	for _, c := range s.InboxCounts {
		ic = binary.LittleEndian.AppendUint32(ic, c)
	}
	out[3] = ic
	out[4] = s.Inbox
	out[5] = s.Values
	out[6] = s.Extra
	return out
}

// runCoalesceGap: differing byte runs separated by at most this many equal
// bytes are merged into one run — 12 bytes of per-run framing make short
// gaps cheaper to carry than to split.
const runCoalesceGap = 16

// diffSection computes the cheapest patch turning base into next.
func diffSection(base, next []byte) sectionPatch {
	if len(base) == len(next) && bytes.Equal(base, next) {
		return sectionPatch{tag: patchUnchanged}
	}
	if len(base) != len(next) {
		return sectionPatch{tag: patchFull, full: next}
	}
	var runs []patchRun
	cost := 4 // run count
	i := 0
	for i < len(next) {
		if base[i] == next[i] {
			i++
			continue
		}
		start := i
		end := i + 1
		// Extend the run while bytes differ, absorbing short equal gaps.
		for end < len(next) {
			if base[end] != next[end] {
				end++
				continue
			}
			gap := end
			for gap < len(next) && gap-end < runCoalesceGap && base[gap] == next[gap] {
				gap++
			}
			if gap < len(next) && gap-end < runCoalesceGap && base[gap] != next[gap] {
				end = gap + 1
				continue
			}
			break
		}
		runs = append(runs, patchRun{off: start, data: next[start:end]})
		cost += 12 + (end - start)
		i = end
	}
	if cost >= 8+len(next) {
		// The sparse form is no smaller than a full replacement.
		return sectionPatch{tag: patchFull, full: next}
	}
	return sectionPatch{tag: patchRuns, runs: runs}
}

// DiffSnapshots computes the incremental record that turns base into next.
// Any two snapshots of the same format diff successfully; the record is
// small exactly when the runs share most of their serialized state (same
// graph size, same program, a small touched frontier).
func DiffSnapshots(base, next *Snapshot) *SnapshotDelta {
	d := &SnapshotDelta{
		Version:         SnapshotDeltaVersion,
		Fingerprint:     next.Fingerprint,
		Superstep:       next.Superstep,
		NumVertices:     next.NumVertices,
		ActivateAll:     next.ActivateAll,
		Stopped:         next.Stopped,
		Done:            next.Done,
		WorkQueue:       next.WorkQueue,
		BaseFingerprint: base.Fingerprint,
		BaseSuperstep:   base.Superstep,
		Aggs:            append([]float64(nil), next.Aggs...),
	}
	bs, ns := snapshotSections(base), snapshotSections(next)
	for i := range d.patches {
		d.patches[i] = diffSection(bs[i], ns[i])
	}
	return d
}

// ApplySnapshotDelta reconstructs the full snapshot d encodes by patching
// base. The base must be the snapshot the record was diffed against
// (matching fingerprint and superstep) or an error wrapping
// ErrSnapshotMismatch is returned; structurally impossible patches (runs
// out of the base's bounds, section lengths that contradict the vertex
// count) return an error wrapping ErrSnapshotCorrupt. base is not modified.
func ApplySnapshotDelta(base *Snapshot, d *SnapshotDelta) (*Snapshot, error) {
	if base.Fingerprint != d.BaseFingerprint {
		return nil, fmt.Errorf("%w: delta record patches base fingerprint %016x, snapshot has %016x",
			ErrSnapshotMismatch, d.BaseFingerprint, base.Fingerprint)
	}
	if base.Superstep != d.BaseSuperstep {
		return nil, fmt.Errorf("%w: delta record patches base superstep %d, snapshot is at %d",
			ErrSnapshotMismatch, d.BaseSuperstep, base.Superstep)
	}
	bs := snapshotSections(base)
	var sec [numSnapSections][]byte
	for i, p := range d.patches {
		switch p.tag {
		case patchUnchanged:
			sec[i] = bs[i]
		case patchFull:
			sec[i] = p.full
		case patchRuns:
			out := append([]byte(nil), bs[i]...)
			for _, r := range p.runs {
				if r.off < 0 || r.off+len(r.data) > len(out) {
					return nil, fmt.Errorf("%w: %s patch run [%d,%d) exceeds section length %d",
						ErrSnapshotCorrupt, snapSectionNames[i], r.off, r.off+len(r.data), len(out))
				}
				copy(out[r.off:], r.data)
			}
			sec[i] = out
		default:
			return nil, fmt.Errorf("%w: unknown section patch tag %d", ErrSnapshotCorrupt, p.tag)
		}
	}
	return snapshotFromSections(d, sec)
}

// snapshotFromSections parses the seven reconstructed section byte strings
// back into a Snapshot under d's header.
func snapshotFromSections(d *SnapshotDelta, sec [numSnapSections][]byte) (*Snapshot, error) {
	n := d.NumVertices
	s := &Snapshot{
		Version:     SnapshotVersion,
		Fingerprint: d.Fingerprint,
		Superstep:   d.Superstep,
		NumVertices: n,
		ActivateAll: d.ActivateAll,
		Stopped:     d.Stopped,
		Done:        d.Done,
		WorkQueue:   d.WorkQueue,
		Aggs:        append([]float64(nil), d.Aggs...),
	}
	for i, name := range []string{"active", "removed"} {
		raw := sec[i]
		if len(raw) != (n+7)/8 {
			return nil, fmt.Errorf("%w: %s bitset is %d bytes, %d vertices need %d",
				ErrSnapshotCorrupt, name, len(raw), n, (n+7)/8)
		}
	}
	s.Active = parseBitset(sec[0], n)
	s.Removed = parseBitset(sec[1], n)
	r := &snapReader{b: sec[2]}
	nQueue := r.count(4, "queue")
	s.Queue = make([]VertexID, 0, nQueue)
	for i := 0; i < nQueue && r.err == nil; i++ {
		v := r.u32()
		if r.err == nil && int(v) >= n {
			r.fail("queue vertex %d out of range", v)
		}
		s.Queue = append(s.Queue, VertexID(v))
	}
	if r.err == nil && len(r.b) != 0 {
		r.fail("queue section has %d trailing bytes", len(r.b))
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(sec[3]) != 4*n {
		return nil, fmt.Errorf("%w: inbox counts are %d bytes, %d vertices need %d",
			ErrSnapshotCorrupt, len(sec[3]), n, 4*n)
	}
	s.InboxCounts = make([]uint32, n)
	for i := range s.InboxCounts {
		s.InboxCounts[i] = binary.LittleEndian.Uint32(sec[3][4*i:])
	}
	s.Inbox = append([]byte(nil), sec[4]...)
	s.Values = append([]byte(nil), sec[5]...)
	s.Extra = append([]byte(nil), sec[6]...)
	return s, nil
}

func parseBitset(raw []byte, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = raw[i/8]&(1<<(i%8)) != 0
	}
	return out
}

// AppendTo appends the binary encoding of d to dst. The layout (all
// integers little-endian):
//
//	magic "DVSNPD" | version u16 | fingerprint u64 | superstep i64
//	| numVertices u64 | flags u8 (1=activateAll 2=stopped 4=done 8=workQueue)
//	| baseFingerprint u64 | baseSuperstep i64
//	| aggs: count u32, value f64 ×count
//	| section ×7: tag u8
//	    tag 1: len u64 + bytes
//	    tag 2: count u32, run ×count (off u64, len u32, bytes)
//	| crc32(IEEE) of everything above, u32
func (d *SnapshotDelta) AppendTo(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, snapshotDeltaMagic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, SnapshotDeltaVersion)
	dst = binary.LittleEndian.AppendUint64(dst, d.Fingerprint)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(d.Superstep)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(d.NumVertices))
	var flags byte
	if d.ActivateAll {
		flags |= 1
	}
	if d.Stopped {
		flags |= 2
	}
	if d.Done {
		flags |= 4
	}
	if d.WorkQueue {
		flags |= 8
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, d.BaseFingerprint)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(d.BaseSuperstep)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.Aggs)))
	for _, v := range d.Aggs {
		dst = AppendFloat64(dst, v)
	}
	for _, p := range d.patches {
		dst = append(dst, p.tag)
		switch p.tag {
		case patchFull:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(len(p.full)))
			dst = append(dst, p.full...)
		case patchRuns:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p.runs)))
			for _, r := range p.runs {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(r.off))
				dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.data)))
				dst = append(dst, r.data...)
			}
		}
	}
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeSnapshotDelta decodes one delta record from the front of b,
// returning the record and any remaining bytes. Corrupt, truncated, or
// wrong-version input returns an error wrapping ErrSnapshotCorrupt or
// ErrSnapshotVersion; it never panics. Run offsets are validated against
// the base at ApplySnapshotDelta time, not here.
func DecodeSnapshotDelta(b []byte) (*SnapshotDelta, []byte, error) {
	r := &snapReader{b: b}
	if magic := r.take(len(snapshotDeltaMagic)); r.err == nil {
		for i := range snapshotDeltaMagic {
			if magic[i] != snapshotDeltaMagic[i] {
				r.fail("bad delta-record magic")
				break
			}
		}
	}
	d := &SnapshotDelta{}
	d.Version = r.u16()
	if r.err == nil && d.Version != SnapshotDeltaVersion {
		return nil, nil, fmt.Errorf("%w: delta record version %d, want %d", ErrSnapshotVersion, d.Version, SnapshotDeltaVersion)
	}
	d.Fingerprint = r.u64()
	d.Superstep = int(int64(r.u64()))
	n64 := r.u64()
	if r.err == nil && n64 > math.MaxInt32 {
		r.fail("vertex count %d exceeds input", n64)
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	d.NumVertices = int(n64)
	flags := r.u8()
	d.ActivateAll = flags&1 != 0
	d.Stopped = flags&2 != 0
	d.Done = flags&4 != 0
	d.WorkQueue = flags&8 != 0
	if r.err == nil && flags&^byte(15) != 0 {
		r.fail("unknown flag bits %#x", flags)
	}
	d.BaseFingerprint = r.u64()
	d.BaseSuperstep = int(int64(r.u64()))
	nAggs := r.count(8, "aggregator")
	d.Aggs = make([]float64, 0, nAggs)
	for i := 0; i < nAggs && r.err == nil; i++ {
		d.Aggs = append(d.Aggs, math.Float64frombits(r.u64()))
	}
	for i := range d.patches {
		if r.err != nil {
			break
		}
		tag := r.u8()
		switch tag {
		case patchUnchanged:
			d.patches[i] = sectionPatch{tag: patchUnchanged}
		case patchFull:
			d.patches[i] = sectionPatch{tag: patchFull, full: r.blob(snapSectionNames[i])}
		case patchRuns:
			nRuns := r.count(12, "patch run")
			p := sectionPatch{tag: patchRuns}
			for j := 0; j < nRuns && r.err == nil; j++ {
				off := r.u64()
				if r.err == nil && off > math.MaxInt32 {
					r.fail("%s patch run offset %d out of range", snapSectionNames[i], off)
				}
				dlen := int(r.u32())
				data := r.take(dlen)
				if r.err == nil {
					p.runs = append(p.runs, patchRun{off: int(off), data: append([]byte(nil), data...)})
				}
			}
			d.patches[i] = p
		default:
			r.fail("unknown section patch tag %d", tag)
		}
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	consumed := len(b) - len(r.b)
	wantCRC := r.u32()
	if r.err != nil {
		return nil, nil, r.err
	}
	if got := crc32.ChecksumIEEE(b[:consumed]); got != wantCRC {
		return nil, nil, fmt.Errorf("%w: delta record checksum mismatch (got %08x, want %08x)", ErrSnapshotCorrupt, got, wantCRC)
	}
	return d, r.b, nil
}
