package pregel

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func randChainEntries(rng *rand.Rand, n int) []ChainEntry {
	out := make([]ChainEntry, n)
	for i := range out {
		out[i] = ChainEntry{
			Kind:            ChainEntryKind(rng.Intn(3)),
			Superstep:       rng.Intn(1 << 20),
			Fingerprint:     rng.Uint64(),
			BaseSuperstep:   rng.Intn(1 << 20),
			BaseFingerprint: rng.Uint64(),
			Name:            fmt.Sprintf("chain-%06d.%x", i, rng.Uint32()),
		}
	}
	return out
}

// TestChainManifestRoundTrip is the manifest codec property test:
// encode → decode must reproduce the entries bit-exactly, including when
// embedded in a longer stream.
func TestChainManifestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		entries := randChainEntries(rng, rng.Intn(20))
		prefix := randBytes(rng, rng.Intn(8))
		enc := EncodeChainManifest(append([]byte(nil), prefix...), entries)
		tail := randBytes(rng, rng.Intn(8))
		enc = append(enc, tail...)

		got, rest, err := DecodeChainManifest(enc[len(prefix):])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(rest, tail) {
			t.Fatalf("trial %d: remainder mismatch", trial)
		}
		if len(entries) == 0 {
			entries = nil
		}
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(entries, got) {
			t.Fatalf("trial %d: round trip mismatch:\n got %+v\nwant %+v", trial, got, entries)
		}
	}
}

// TestChainManifestDecodeRejects walks every truncation and bitflip of a
// valid manifest, plus structurally hostile names.
func TestChainManifestDecodeRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	valid := EncodeChainManifest(nil, randChainEntries(rng, 5))

	if _, _, err := DecodeChainManifest(nil); err == nil {
		t.Fatal("empty input decoded")
	}
	for i := 0; i < len(valid); i++ {
		if _, _, err := DecodeChainManifest(valid[:i]); err == nil {
			t.Fatalf("truncation at %d decoded", i)
		}
	}
	for i := 0; i < len(valid); i++ {
		bad := append([]byte(nil), valid...)
		bad[i] ^= 0x40
		if _, rest, err := DecodeChainManifest(bad); err == nil && len(rest) == 0 {
			t.Fatalf("bitflip at %d decoded cleanly", i)
		}
	}
	for _, name := range []string{"", ".", "..", "a/b", `a\b`, "a\x00b"} {
		enc := EncodeChainManifest(nil, []ChainEntry{{Kind: ChainBase, Name: name}})
		if _, _, err := DecodeChainManifest(enc); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("name %q: got %v, want ErrSnapshotCorrupt", name, err)
		}
	}
}

// chainTestSnapshots simulates a serving run's checkpoint sequence: a
// converged base, then one slightly-changed snapshot per flush.
func chainTestSnapshots(rng *rand.Rand, n, count int) []*Snapshot {
	out := make([]*Snapshot, count)
	out[0] = randSnapshot(rng, n)
	out[0].Done = true
	for i := 1; i < count; i++ {
		out[i] = perturbSnapshot(rng, out[i-1])
	}
	return out
}

// TestChainWriterReplay drives the writer through snapshots and graph
// logs, then replays with LoadChain: the tip must equal the last appended
// snapshot bit-exactly and the graph logs must come back verbatim, in
// order — including after closing and reopening the writer mid-chain.
func TestChainWriterReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	snaps := chainTestSnapshots(rng, 25, 9)
	dir := t.TempDir()

	w, err := NewChainWriter(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wantLogs [][]byte
	appendOne := func(w *ChainWriter, i int) {
		t.Helper()
		if i > 0 {
			log := []byte(fmt.Sprintf("# delta: flush %d\nadd %d %d 1.5\n", i, i, i+1))
			if _, err := w.AppendGraphDelta(log, snaps[i].Fingerprint); err != nil {
				t.Fatal(err)
			}
			wantLogs = append(wantLogs, log)
		}
		if _, _, err := w.AppendSnapshot(snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		appendOne(w, i)
	}
	// Reopen mid-chain: the new writer must replay to the same tip and
	// keep diffing against it.
	w2, err := NewChainWriter(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < len(snaps); i++ {
		appendOne(w2, i)
	}

	st, err := LoadChain(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := cloneSnapshot(snaps[len(snaps)-1])
	normalize(want)
	normalize(st.Snapshot)
	if !reflect.DeepEqual(want, st.Snapshot) {
		t.Fatalf("replayed tip mismatch:\n got %+v\nwant %+v", st.Snapshot, want)
	}
	if len(st.GraphDeltas) != len(wantLogs) {
		t.Fatalf("replayed %d graph logs, want %d", len(st.GraphDeltas), len(wantLogs))
	}
	for i := range wantLogs {
		if !bytes.Equal(st.GraphDeltas[i], wantLogs[i]) {
			t.Fatalf("graph log %d mismatch", i)
		}
	}
	// With rebaseEvery=3 the snapshot records must alternate base/delta in
	// the committed pattern: base, 3 deltas, base, 3 deltas, base.
	var kinds []ChainEntryKind
	for _, e := range st.Entries {
		if e.Kind != ChainGraphDelta {
			kinds = append(kinds, e.Kind)
		}
	}
	wantKinds := []ChainEntryKind{ChainBase, ChainDelta, ChainDelta, ChainDelta, ChainBase, ChainDelta, ChainDelta, ChainDelta, ChainBase}
	if !reflect.DeepEqual(kinds, wantKinds) {
		t.Fatalf("snapshot record kinds %v, want %v", kinds, wantKinds)
	}
}

// TestChainCrashAtEveryCommitStage snapshots the chain directory at every
// commit stage of every append — after the record write but before the
// manifest rename, and after the rename — and asserts each copy loads to
// the last *committed* prefix: the kill-anywhere property of the commit
// protocol.
func TestChainCrashAtEveryCommitStage(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	snaps := chainTestSnapshots(rng, 20, 6)
	dir := t.TempDir()
	copies := t.TempDir()

	type killPoint struct {
		dir       string
		committed int // manifest entries committed when the copy was taken
	}
	var kills []killPoint
	committed := 0
	copyDir := func(label string) string {
		dst := filepath.Join(copies, fmt.Sprintf("kill-%03d-%s", len(kills), label))
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		des, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, de := range des {
			b, err := os.ReadFile(filepath.Join(dir, de.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, de.Name()), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dst
	}
	prev := chainCommitHook
	chainCommitHook = func(stage string) {
		switch stage {
		case "record":
			// The record file exists but the manifest still names the old
			// prefix: a kill here must load to `committed` entries.
			kills = append(kills, killPoint{copyDir("record"), committed})
		case "manifest":
			committed++
			kills = append(kills, killPoint{copyDir("manifest"), committed})
		}
	}
	defer func() { chainCommitHook = prev }()

	w, err := NewChainWriter(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range snaps {
		if i > 0 {
			if _, err := w.AppendGraphDelta([]byte(fmt.Sprintf("# delta: %d\n", i)), s.Fingerprint); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := w.AppendSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}

	if len(kills) < 2*len(snaps) {
		t.Fatalf("only %d kill points recorded", len(kills))
	}
	for _, k := range kills {
		st, err := LoadChain(k.dir)
		if k.committed == 0 {
			// Nothing committed yet: no manifest at all.
			if err == nil {
				t.Fatalf("%s: loaded a chain before any commit", k.dir)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", k.dir, err)
		}
		if len(st.Entries) != k.committed {
			t.Fatalf("%s: loaded %d entries, want the committed prefix %d", k.dir, len(st.Entries), k.committed)
		}
		// The tip must be the last committed snapshot, bit-exactly.
		lastSnap := -1
		for i := len(st.Entries) - 1; i >= 0; i-- {
			if st.Entries[i].Kind != ChainGraphDelta {
				lastSnap = i
				break
			}
		}
		if lastSnap < 0 {
			t.Fatalf("%s: committed prefix has no snapshot records", k.dir)
		}
		want := -1
		for i := 0; i <= lastSnap; i++ {
			if st.Entries[i].Kind != ChainGraphDelta {
				want++
			}
		}
		wantSnap := cloneSnapshot(snaps[want])
		normalize(wantSnap)
		normalize(st.Snapshot)
		if !reflect.DeepEqual(wantSnap, st.Snapshot) {
			t.Fatalf("%s: tip is not snapshot %d", k.dir, want)
		}
	}
}

// TestLoadChainRejects covers replay's integrity checks: missing record
// files, manifest/record identity disagreement, deltas with no base, and
// chains with no snapshots at all.
func TestLoadChainRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	build := func(t *testing.T) (string, []*Snapshot) {
		dir := t.TempDir()
		snaps := chainTestSnapshots(rng, 15, 3)
		w, err := NewChainWriter(dir, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range snaps {
			if _, _, err := w.AppendSnapshot(s); err != nil {
				t.Fatal(err)
			}
		}
		return dir, snaps
	}

	t.Run("missing-record", func(t *testing.T) {
		dir, _ := build(t)
		if err := os.Remove(filepath.Join(dir, "chain-000001.delta")); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadChain(dir); err == nil {
			t.Fatal("loaded a chain with a missing record")
		}
	})
	t.Run("identity-mismatch", func(t *testing.T) {
		dir, _ := build(t)
		mb, err := os.ReadFile(filepath.Join(dir, ChainManifestName))
		if err != nil {
			t.Fatal(err)
		}
		entries, _, err := DecodeChainManifest(mb)
		if err != nil {
			t.Fatal(err)
		}
		entries[0].Fingerprint ^= 1
		if err := os.WriteFile(filepath.Join(dir, ChainManifestName), EncodeChainManifest(nil, entries), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadChain(dir); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("got %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("delta-without-base", func(t *testing.T) {
		dir, _ := build(t)
		mb, err := os.ReadFile(filepath.Join(dir, ChainManifestName))
		if err != nil {
			t.Fatal(err)
		}
		entries, _, err := DecodeChainManifest(mb)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, ChainManifestName), EncodeChainManifest(nil, entries[1:]), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadChain(dir); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("no-snapshots", func(t *testing.T) {
		dir := t.TempDir()
		w, err := NewChainWriter(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.AppendGraphDelta([]byte("# delta: 0\n"), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadChain(dir); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
		}
	})
	t.Run("corrupt-manifest", func(t *testing.T) {
		dir, _ := build(t)
		mb, err := os.ReadFile(filepath.Join(dir, ChainManifestName))
		if err != nil {
			t.Fatal(err)
		}
		mb[len(mb)-1] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, ChainManifestName), mb, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadChain(dir); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("got %v, want ErrSnapshotCorrupt", err)
		}
		// A corrupt chain must refuse to be appended to, not be overwritten.
		if _, err := NewChainWriter(dir, 0); err == nil {
			t.Fatal("NewChainWriter opened a corrupt chain")
		}
	})
}

// fuzzSeedChainManifest builds the valid manifest the fuzz seeds mutate.
func fuzzSeedChainManifest() []byte {
	rng := rand.New(rand.NewSource(47))
	return EncodeChainManifest(nil, randChainEntries(rng, 4))
}

// FuzzChainDecode asserts the manifest decoder's contract on arbitrary
// input: it may reject, but it must never panic, and anything it accepts
// must re-encode to an identical manifest.
func FuzzChainDecode(f *testing.F) {
	valid := fuzzSeedChainManifest()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])
	f.Add([]byte{})
	f.Add([]byte("DVCHMF"))
	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[6] ^= 0xff
	f.Add(wrongVersion)
	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-1] ^= 0x01
	f.Add(badCRC)

	f.Fuzz(func(t *testing.T, b []byte) {
		entries, rest, err := DecodeChainManifest(b)
		if err != nil {
			if entries != nil {
				t.Fatal("decode returned both entries and an error")
			}
			return
		}
		if len(rest) > len(b) {
			t.Fatal("remainder longer than input")
		}
		re := EncodeChainManifest(nil, entries)
		entries2, rest2, err := DecodeChainManifest(re)
		if err != nil {
			t.Fatalf("re-encoded manifest failed to decode: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-encoded manifest left %d remainder bytes", len(rest2))
		}
		if len(entries) == 0 {
			entries = nil
		}
		if len(entries2) == 0 {
			entries2 = nil
		}
		if !reflect.DeepEqual(entries, entries2) {
			t.Fatalf("re-encode changed the manifest:\n got %+v\nwant %+v", entries2, entries)
		}
	})
}
