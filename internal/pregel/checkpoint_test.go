package pregel

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// ckptProgram is built to exercise every piece of snapshotted state: vertex
// values mutate every superstep from multi-message inboxes (no combiner, so
// per-vertex delivery order matters for the float sums), vertices halt and
// are rewoken by messages, one vertex removes itself mid-run, and both a
// persistent and a non-persistent aggregator accumulate.
type ckptVal struct {
	X float64
	N int64
}

type ckptProgram struct{ rounds int }

func (p ckptProgram) Init(ctx *Context[ckptVal, float64]) {
	ctx.Value().X = float64(ctx.ID()) + 1
	ctx.BroadcastOut(ctx.Value().X)
	if ctx.ID()%3 == 0 {
		ctx.VoteToHalt() // rewoken by any message
	}
}

func (p ckptProgram) Compute(ctx *Context[ckptVal, float64], msgs []float64) {
	v := ctx.Value()
	for _, m := range msgs {
		v.X += m / float64(ctx.Superstep())
	}
	v.N++
	ctx.Aggregate("total", 1)
	ctx.Aggregate("peak", v.X)
	if ctx.ID() == 7 && ctx.Superstep() == 3 {
		ctx.RemoveSelf()
		return
	}
	if ctx.Superstep() < p.rounds {
		ctx.BroadcastOut(v.X / 16)
	}
	ctx.VoteToHalt()
}

// newCkptEngine builds the engine/program pair the equivalence tests run.
func newCkptEngine(g *graph.Graph, sched Scheduler, part Partition, resume *Snapshot, dir string, every int) *Engine[ckptVal, float64] {
	e := New[ckptVal, float64](g, Options{
		Workers:   4,
		Scheduler: sched,
		Partition: part,
		Resume:    resume,
		Checkpoint: CheckpointOptions{
			Every: every,
			Dir:   dir,
		},
	})
	if err := e.RegisterAggregator("total", AggSum, true); err != nil {
		panic(err)
	}
	if err := e.RegisterAggregator("peak", AggMax, false); err != nil {
		panic(err)
	}
	e.SetMasterHook(func(mc *MasterContext) {
		if mc.AggValue("total") > 400 {
			mc.Stop()
		}
	})
	return e
}

// TestCheckpointResumeEquivalence is the engine-level crash-resume suite:
// run to completion with a checkpoint at every barrier, then resume from
// every superstep-k snapshot and require bitwise-identical final values,
// identical remaining-superstep counts, and identical aggregator state —
// under both schedulers and both partitionings.
func TestCheckpointResumeEquivalence(t *testing.T) {
	g := graph.ErdosRenyi(60, 240, true, 7)
	for _, sched := range []Scheduler{ScanAll, WorkQueue} {
		for _, part := range []Partition{PartitionBlock, PartitionHash} {
			t.Run(schedName(sched)+"/"+part.String(), func(t *testing.T) {
				dir := t.TempDir()
				full := newCkptEngine(g, sched, part, nil, dir, 1)
				fullStats, err := full.Run(ckptProgram{rounds: 8})
				if err != nil {
					t.Fatal(err)
				}
				want := append([]ckptVal(nil), full.Values()...)
				wantPeak := full.AggregatorValue("peak")
				wantTotal := full.AggregatorValue("total")
				S := fullStats.Supersteps
				if S < 5 {
					t.Fatalf("full run too short to be interesting: %d supersteps", S)
				}
				if fullStats.CheckpointPath == "" {
					t.Fatal("full run recorded no CheckpointPath")
				}
				for k := 0; k < S; k++ {
					snap, err := ReadSnapshotFile(filepath.Join(dir, SnapshotFileName(k)))
					if err != nil {
						t.Fatalf("k=%d: %v", k, err)
					}
					res := newCkptEngine(g, sched, part, snap, "", 0)
					stats, err := res.Run(ckptProgram{rounds: 8})
					if err != nil {
						t.Fatalf("k=%d: resume: %v", k, err)
					}
					if got, wantLeft := stats.Supersteps, S-(k+1); got != wantLeft {
						t.Errorf("k=%d: resumed run took %d supersteps, want %d", k, got, wantLeft)
					}
					for u, w := range want {
						got := res.Value(VertexID(u))
						if math.Float64bits(got.X) != math.Float64bits(w.X) || got.N != w.N {
							t.Fatalf("k=%d: value[%d] = %+v, want %+v", k, u, got, w)
						}
					}
					if got := res.AggregatorValue("peak"); got != wantPeak {
						t.Errorf("k=%d: peak = %g, want %g", k, got, wantPeak)
					}
					if got := res.AggregatorValue("total"); got != wantTotal {
						t.Errorf("k=%d: total = %g, want %g", k, got, wantTotal)
					}
				}
			})
		}
	}
}

// TestCheckpointSinkStream checks that Sink receives a self-delimiting
// stream: decoding in a loop yields one snapshot per checkpointed barrier,
// in superstep order, and the last one is marked Done.
func TestCheckpointSinkStream(t *testing.T) {
	g := graph.ErdosRenyi(40, 160, true, 3)
	var buf bytes.Buffer
	e := New[ckptVal, float64](g, Options{
		Workers:    3,
		Checkpoint: CheckpointOptions{Every: 1, Sink: &buf},
	})
	if err := e.RegisterAggregator("total", AggSum, true); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterAggregator("peak", AggMax, false); err != nil {
		t.Fatal(err)
	}
	stats, err := e.Run(ckptProgram{rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	var snaps []*Snapshot
	for len(b) > 0 {
		s, rest, err := DecodeSnapshot(b)
		if err != nil {
			t.Fatalf("snapshot %d: %v", len(snaps), err)
		}
		snaps = append(snaps, s)
		b = rest
	}
	if len(snaps) != stats.Supersteps {
		t.Fatalf("decoded %d snapshots, want %d", len(snaps), stats.Supersteps)
	}
	for i, s := range snaps {
		if s.Superstep != i {
			t.Errorf("snapshot %d claims superstep %d", i, s.Superstep)
		}
		if s.Fingerprint != g.Fingerprint() {
			t.Errorf("snapshot %d has wrong fingerprint", i)
		}
		if got, want := s.Done, i == len(snaps)-1; got != want {
			t.Errorf("snapshot %d: Done = %v, want %v", i, got, want)
		}
	}
}

// TestCheckpointOnAbort cancels a run mid-flight and checks the abort left
// a resumable snapshot behind: CheckpointPath is set, and resuming from it
// reaches the same final state as the uninterrupted run.
func TestCheckpointOnAbort(t *testing.T) {
	g := graph.ErdosRenyi(50, 200, true, 11)
	full := newCkptEngine(g, WorkQueue, PartitionBlock, nil, "", 0)
	if _, err := full.Run(ckptProgram{rounds: 8}); err != nil {
		t.Fatal(err)
	}
	want := append([]ckptVal(nil), full.Values()...)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	e := newCkptEngine(g, WorkQueue, PartitionBlock, nil, dir, 0)
	hops := 0
	e.SetMasterHook(func(mc *MasterContext) {
		if hops++; hops == 3 {
			cancel()
		}
	})
	stats, err := e.RunContext(ctx, ckptProgram{rounds: 8})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !stats.Aborted {
		t.Fatal("stats not marked aborted")
	}
	if stats.CheckpointPath == "" {
		t.Fatal("abort left no CheckpointPath")
	}
	snap, err := ReadSnapshotFile(stats.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Done {
		t.Fatal("abort snapshot claims the run finished")
	}
	res := newCkptEngine(g, WorkQueue, PartitionBlock, snap, "", 0)
	if _, err := res.Run(ckptProgram{rounds: 8}); err != nil {
		t.Fatal(err)
	}
	for u, w := range want {
		got := res.Value(VertexID(u))
		if math.Float64bits(got.X) != math.Float64bits(w.X) || got.N != w.N {
			t.Fatalf("value[%d] = %+v, want %+v", u, got, w)
		}
	}
}

// TestCheckpointOnSuperstepLimit checks the MaxSupersteps exit writes a
// snapshot too, and that a rerun with a higher limit continues from it and
// matches an unbounded run.
func TestCheckpointOnSuperstepLimit(t *testing.T) {
	g := graph.ErdosRenyi(40, 160, true, 5)
	full := newCkptEngine(g, ScanAll, PartitionBlock, nil, "", 0)
	if _, err := full.Run(ckptProgram{rounds: 8}); err != nil {
		t.Fatal(err)
	}
	want := append([]ckptVal(nil), full.Values()...)

	dir := t.TempDir()
	e := newCkptEngine(g, ScanAll, PartitionBlock, nil, dir, 0)
	e.opts.MaxSupersteps = 4
	_, err := e.Run(ckptProgram{rounds: 8})
	if err == nil {
		t.Fatal("expected superstep-limit error")
	}
	snap, err := ReadSnapshotFile(filepath.Join(dir, SnapshotFileName(3)))
	if err != nil {
		t.Fatal(err)
	}
	res := newCkptEngine(g, ScanAll, PartitionBlock, snap, "", 0)
	if _, err := res.Run(ckptProgram{rounds: 8}); err != nil {
		t.Fatal(err)
	}
	for u, w := range want {
		got := res.Value(VertexID(u))
		if math.Float64bits(got.X) != math.Float64bits(w.X) || got.N != w.N {
			t.Fatalf("value[%d] = %+v, want %+v", u, got, w)
		}
	}
}

// TestResumeValidation exercises every mismatch restore must refuse.
func TestResumeValidation(t *testing.T) {
	g := graph.ErdosRenyi(30, 90, true, 2)
	dir := t.TempDir()
	e := newCkptEngine(g, ScanAll, PartitionBlock, nil, dir, 1)
	if _, err := e.Run(ckptProgram{rounds: 4}); err != nil {
		t.Fatal(err)
	}
	good, err := ReadSnapshotFile(filepath.Join(dir, SnapshotFileName(1)))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong graph", func(t *testing.T) {
		other := graph.ErdosRenyi(30, 90, true, 99)
		res := newCkptEngine(other, ScanAll, PartitionBlock, good, "", 0)
		if _, err := res.Run(ckptProgram{rounds: 4}); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("wrong vertex count", func(t *testing.T) {
		other := graph.ErdosRenyi(31, 90, true, 2)
		res := newCkptEngine(other, ScanAll, PartitionBlock, good, "", 0)
		if _, err := res.Run(ckptProgram{rounds: 4}); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("wrong aggregators", func(t *testing.T) {
		res := New[ckptVal, float64](g, Options{Resume: good})
		if _, err := res.Run(ckptProgram{rounds: 4}); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := *good
		bad.Version = SnapshotVersion + 1
		res := newCkptEngine(g, ScanAll, PartitionBlock, &bad, "", 0)
		if _, err := res.Run(ckptProgram{rounds: 4}); !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("err = %v, want ErrSnapshotVersion", err)
		}
	})
	t.Run("wrong scheduler", func(t *testing.T) {
		// A ScanAll snapshot carries no work queue; resuming it under
		// WorkQueue would silently run nothing, so it must be refused.
		res := newCkptEngine(g, WorkQueue, PartitionBlock, good, "", 0)
		if _, err := res.Run(ckptProgram{rounds: 4}); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
}

// TestCodecRequired checks that checkpointing a pointered value type
// without an explicit codec fails up front with a useful error.
func TestCodecRequired(t *testing.T) {
	type ptrVal struct{ P *int }
	g := graph.Path(4, true)
	e := New[ptrVal, float64](g, Options{
		Checkpoint: CheckpointOptions{Every: 1, Sink: &bytes.Buffer{}},
	})
	_, err := e.Run(haltImmediately[ptrVal]{})
	if err == nil {
		t.Fatal("expected codec error")
	}
}

type haltImmediately[V any] struct{}

func (haltImmediately[V]) Init(ctx *Context[V, float64])                    { ctx.VoteToHalt() }
func (haltImmediately[V]) Compute(ctx *Context[V, float64], msgs []float64) { ctx.VoteToHalt() }

// TestSnapshotRoundTrip is the codec property test: random snapshots
// survive AppendTo → DecodeSnapshot bit-exactly, including when embedded in
// a longer stream.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		s := &Snapshot{
			Version:     SnapshotVersion,
			Fingerprint: rng.Uint64(),
			Superstep:   rng.Intn(1 << 20),
			NumVertices: n,
			ActivateAll: rng.Intn(2) == 0,
			Stopped:     rng.Intn(2) == 0,
			Done:        rng.Intn(2) == 0,
			WorkQueue:   rng.Intn(2) == 0,
		}
		for i := 0; i < rng.Intn(5); i++ {
			s.Aggs = append(s.Aggs, rng.NormFloat64())
		}
		s.Active = make([]bool, n)
		s.Removed = make([]bool, n)
		s.InboxCounts = make([]uint32, n)
		for i := 0; i < n; i++ {
			s.Active[i] = rng.Intn(2) == 0
			s.Removed[i] = rng.Intn(3) == 0
			s.InboxCounts[i] = uint32(rng.Intn(4))
		}
		for i := 0; n > 0 && i < rng.Intn(n+1); i++ {
			s.Queue = append(s.Queue, VertexID(rng.Intn(n)))
		}
		s.Inbox = randBytes(rng, rng.Intn(64))
		s.Values = randBytes(rng, rng.Intn(64))
		s.Extra = randBytes(rng, rng.Intn(64))

		prefix := randBytes(rng, rng.Intn(8))
		enc := s.AppendTo(append([]byte(nil), prefix...))
		tail := randBytes(rng, rng.Intn(8))
		enc = append(enc, tail...)

		got, rest, err := DecodeSnapshot(enc[len(prefix):])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(rest, tail) {
			t.Fatalf("trial %d: remainder mismatch", trial)
		}
		normalize(s)
		normalize(got)
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("trial %d: round trip mismatch:\n got %+v\nwant %+v", trial, got, s)
		}
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// normalize maps nil and empty slices to a canonical form so DeepEqual
// compares content, not allocation accidents.
func normalize(s *Snapshot) {
	if len(s.Aggs) == 0 {
		s.Aggs = nil
	}
	if len(s.Active) == 0 {
		s.Active = nil
	}
	if len(s.Removed) == 0 {
		s.Removed = nil
	}
	if len(s.Queue) == 0 {
		s.Queue = nil
	}
	if len(s.InboxCounts) == 0 {
		s.InboxCounts = nil
	}
	if len(s.Inbox) == 0 {
		s.Inbox = nil
	}
	if len(s.Values) == 0 {
		s.Values = nil
	}
	if len(s.Extra) == 0 {
		s.Extra = nil
	}
}

// TestSnapshotDecodeRejects spot-checks the decoder's corruption handling
// (the fuzz target explores this space much harder).
func TestSnapshotDecodeRejects(t *testing.T) {
	s := &Snapshot{Version: SnapshotVersion, Fingerprint: 1, NumVertices: 3,
		Active: make([]bool, 3), Removed: make([]bool, 3), InboxCounts: make([]uint32, 3)}
	enc := s.AppendTo(nil)

	t.Run("truncated", func(t *testing.T) {
		for i := 0; i < len(enc); i++ {
			if _, _, err := DecodeSnapshot(enc[:i]); err == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", i)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for i := 0; i < len(enc); i++ {
			bad := append([]byte(nil), enc...)
			bad[i] ^= 0x40
			if _, _, err := DecodeSnapshot(bad); err == nil {
				t.Fatalf("bit flip at byte %d decoded successfully", i)
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, _, err := DecodeSnapshot(nil); err == nil {
			t.Fatal("empty input decoded successfully")
		}
	})
}

// TestPODCodecRejectsPointers pins the POD gate.
func TestPODCodecRejectsPointers(t *testing.T) {
	if _, err := PODCodec[*int](); err == nil {
		t.Error("PODCodec[*int] succeeded")
	}
	if _, err := PODCodec[struct{ S string }](); err == nil {
		t.Error("PODCodec[struct{string}] succeeded")
	}
	if _, err := PODCodec[struct {
		A [3]float64
		B int32
	}](); err != nil {
		t.Errorf("PODCodec on POD struct failed: %v", err)
	}
}

// TestReadSnapshotFileErrors covers the file-level error paths.
func TestReadSnapshotFileErrors(t *testing.T) {
	if _, err := ReadSnapshotFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file read successfully")
	}
	p := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(p, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(p); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("err = %v, want ErrSnapshotCorrupt", err)
	}
}
