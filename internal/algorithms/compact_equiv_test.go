package algorithms

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/pregel"
)

// Compact-CSR equivalence: every reference algorithm must produce
// bit-identical vertex state on a gap-varint compacted graph and on the
// flat graph it was built from, under every scheduler × combiner
// configuration. The engine is deterministic per configuration, so any
// divergence pins a decoding bug rather than float re-association.

var equivConfigs = []struct {
	name  string
	sched pregel.Scheduler
	comb  bool
}{
	{"scan-all", pregel.ScanAll, false},
	{"scan-all/combine", pregel.ScanAll, true},
	{"work-queue", pregel.WorkQueue, false},
	{"work-queue/combine", pregel.WorkQueue, true},
}

// equivGraphPair returns the same weighted directed graph in both
// representations, reverse adjacency built on each (the compact one stays
// deferred until an algorithm actually pulls on it).
func equivGraphPair() (flat, compact *graph.Graph) {
	flat = graph.WithRandomWeights(graph.RMAT(9, 6, 0.57, 0.19, 0.19, true, 21), 1, 10, 5)
	compact = graph.MustCompact(flat)
	flat.BuildReverse()
	compact.BuildReverse()
	return flat, compact
}

func bitsEqual(t *testing.T, cfg, field string, u int, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: %s[%d] = %g (%x), want %g (%x)",
			cfg, field, u, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func TestCompactEquivPageRank(t *testing.T) {
	flat, compact := equivGraphPair()
	for _, cfg := range equivConfigs {
		opts := RunOptions{Workers: 4, Scheduler: cfg.sched, Combine: cfg.comb}
		ef, _, err := RunPageRank(flat, 20, opts)
		if err != nil {
			t.Fatal(err)
		}
		ec, _, err := RunPageRank(compact, 20, opts)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < flat.NumVertices(); u++ {
			bitsEqual(t, cfg.name, "pr", u, ec.Value(graph.VertexID(u)).PR, ef.Value(graph.VertexID(u)).PR)
		}
	}
}

func TestCompactEquivSSSP(t *testing.T) {
	flat, compact := equivGraphPair()
	for _, cfg := range equivConfigs {
		opts := RunOptions{Workers: 4, Scheduler: cfg.sched, Combine: cfg.comb}
		ef, _, err := RunSSSP(flat, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		ec, _, err := RunSSSP(compact, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < flat.NumVertices(); u++ {
			bitsEqual(t, cfg.name, "dist", u, ec.Value(graph.VertexID(u)).Dist, ef.Value(graph.VertexID(u)).Dist)
		}
	}
}

func TestCompactEquivCC(t *testing.T) {
	// CC broadcasts both directions on directed graphs; use an undirected
	// graph too so the aliased-reverse compact path is also covered.
	for _, directed := range []bool{true, false} {
		flat := graph.RMAT(9, 5, 0.57, 0.19, 0.19, directed, 33)
		compact := graph.MustCompact(flat)
		flat.BuildReverse()
		compact.BuildReverse()
		for _, cfg := range equivConfigs {
			opts := RunOptions{Workers: 4, Scheduler: cfg.sched, Combine: cfg.comb}
			ef, _, err := RunCC(flat, opts)
			if err != nil {
				t.Fatal(err)
			}
			ec, _, err := RunCC(compact, opts)
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < flat.NumVertices(); u++ {
				if got, want := ec.Value(graph.VertexID(u)).Comp, ef.Value(graph.VertexID(u)).Comp; got != want {
					t.Fatalf("directed=%v %s: cid[%d] = %d, want %d", directed, cfg.name, u, got, want)
				}
			}
		}
	}
}

func TestCompactEquivHITS(t *testing.T) {
	flat, compact := equivGraphPair()
	for _, cfg := range equivConfigs {
		opts := RunOptions{Workers: 4, Scheduler: cfg.sched, Combine: cfg.comb}
		ef, _, err := RunHITS(flat, 12, opts)
		if err != nil {
			t.Fatal(err)
		}
		ec, _, err := RunHITS(compact, 12, opts)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < flat.NumVertices(); u++ {
			bitsEqual(t, cfg.name, "hub", u, ec.Value(graph.VertexID(u)).Hub, ef.Value(graph.VertexID(u)).Hub)
			bitsEqual(t, cfg.name, "auth", u, ec.Value(graph.VertexID(u)).Auth, ef.Value(graph.VertexID(u)).Auth)
		}
	}
}

// TestCompactEquivMmap closes the loop for the third representation: a
// DVGRAF file mapped from disk must run PageRank bit-identically to the
// flat in-memory graph it serialized.
func TestCompactEquivMmap(t *testing.T) {
	flat, _ := equivGraphPair()
	path := t.TempDir() + "/g.dvg"
	if err := graph.WriteGraphFile(path, flat); err != nil {
		t.Fatal(err)
	}
	mapped, err := graph.ReadGraphFile(path, graph.LoadMmap)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	mapped.BuildReverse()
	opts := RunOptions{Workers: 4, Combine: true}
	ef, _, err := RunPageRank(flat, 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	em, _, err := RunPageRank(mapped, 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < flat.NumVertices(); u++ {
		bitsEqual(t, mapped.Repr(), "pr", u, em.Value(graph.VertexID(u)).PR, ef.Value(graph.VertexID(u)).PR)
	}
}
