package algorithms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestPageRankMatchesOracle(t *testing.T) {
	g := graph.RMAT(8, 4, 0.57, 0.19, 0.19, true, 7)
	g.BuildReverse()
	want := PageRankOracle(g, 30)
	for _, combine := range []bool{false, true} {
		e, stats, err := RunPageRank(g, 30, RunOptions{Workers: 4, Combine: combine})
		if err != nil {
			t.Fatal(err)
		}
		for u := range want {
			got := e.Value(graph.VertexID(u)).PR
			if !almostEqual(got, want[u], 1e-12) {
				t.Fatalf("combine=%v: pr[%d] = %g, want %g", combine, u, got, want[u])
			}
		}
		if combine && stats.CombinedMessages >= stats.MessagesSent {
			t.Fatalf("combiner did not reduce: %d >= %d", stats.CombinedMessages, stats.MessagesSent)
		}
		// Fig. 1 sends every superstep: ~|E|·(iterations+1) messages minus
		// dangling vertices' shares.
		if stats.MessagesSent == 0 {
			t.Fatal("no messages sent")
		}
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	g := graph.Grid(12, 15, 9, 3)
	e, stats, err := RunSSSP(g, 0, RunOptions{Workers: 4, Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	want := SSSPOracle(g, 0)
	for u := range want {
		got := e.Value(graph.VertexID(u)).Dist
		if !almostEqual(got, want[u], 1e-12) {
			t.Fatalf("dist[%d] = %g, want %g", u, got, want[u])
		}
	}
	if stats.MessagesSent == 0 {
		t.Fatal("no messages")
	}
}

func TestSSSPUnreachable(t *testing.T) {
	// Two disconnected directed paths; distances in the far component stay ∞.
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Finalize()
	e, _, err := RunSSSP(g, 0, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(e.Value(2).Dist, 1) || !math.IsInf(e.Value(3).Dist, 1) {
		t.Fatalf("unreachable distances = %v, %v; want +Inf", e.Value(2).Dist, e.Value(3).Dist)
	}
	if e.Value(1).Dist != 1 {
		t.Fatalf("dist[1] = %v, want 1", e.Value(1).Dist)
	}
}

func TestCCMatchesOracle(t *testing.T) {
	g := graph.PreferentialAttachment(300, 2, 5)
	// Add some isolated structure: PA graphs are connected, so also test a
	// multi-component graph.
	b := graph.NewBuilder(10, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(5, 6)
	multi := b.Finalize()
	for name, gr := range map[string]*graph.Graph{"connected": g, "multi": multi} {
		e, _, err := RunCC(gr, RunOptions{Workers: 3, Combine: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, _ := graph.ConnectedComponents(gr)
		for u := range want {
			if got := e.Value(graph.VertexID(u)).Comp; got != int64(want[u]) {
				t.Fatalf("%s: comp[%d] = %d, want %d", name, u, got, want[u])
			}
		}
	}
}

func TestHITSMatchesOracle(t *testing.T) {
	g := graph.RMAT(7, 5, 0.57, 0.19, 0.19, true, 9)
	g.BuildReverse()
	wantHub, wantAuth := HITSOracle(g, 7)
	for _, combine := range []bool{false, true} {
		e, _, err := RunHITS(g, 7, RunOptions{Workers: 4, Combine: combine})
		if err != nil {
			t.Fatal(err)
		}
		for u := range wantHub {
			v := e.Value(graph.VertexID(u))
			if !almostEqual(v.Hub, wantHub[u], 1e-9) || !almostEqual(v.Auth, wantAuth[u], 1e-9) {
				t.Fatalf("combine=%v: hits[%d] = (%g,%g), want (%g,%g)",
					combine, u, v.Hub, v.Auth, wantHub[u], wantAuth[u])
			}
		}
	}
}

// Property: SSSP distances from the Pregel program equal Dijkstra on random
// weighted graphs.
func TestSSSPProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := rng.Intn(4 * n)
		b := graph.NewBuilder(n, true)
		for i := 0; i < m; i++ {
			b.AddWeightedEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), 1+rng.Float64()*9)
		}
		g := b.Finalize()
		src := graph.VertexID(rng.Intn(n))
		e, _, err := RunSSSP(g, src, RunOptions{Workers: 1 + rng.Intn(4), Combine: rng.Intn(2) == 0})
		if err != nil {
			return false
		}
		want := SSSPOracle(g, src)
		for u := range want {
			if !almostEqual(e.Value(graph.VertexID(u)).Dist, want[u], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: CC labels equal the DFS oracle on random undirected graphs.
func TestCCProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		m := rng.Intn(3 * n)
		b := graph.NewBuilder(n, false)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
		}
		g := b.Finalize()
		e, _, err := RunCC(g, RunOptions{Workers: 1 + rng.Intn(4)})
		if err != nil {
			return false
		}
		want, _ := graph.ConnectedComponents(g)
		for u := range want {
			if e.Value(graph.VertexID(u)).Comp != int64(want[u]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSSSPPreIncrementalizedMessageShape(t *testing.T) {
	// SSSP only sends on improvement: total messages should be far below
	// |E| × supersteps (the naive bound).
	g := graph.Grid(20, 20, 5, 11)
	_, stats, err := RunSSSP(g, 0, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	bound := int64(g.NumArcs()) * int64(stats.Supersteps)
	if stats.MessagesSent >= bound/2 {
		t.Fatalf("SSSP sent %d messages, naive bound %d — not send-on-change", stats.MessagesSent, bound)
	}
}
