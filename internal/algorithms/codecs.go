package algorithms

import (
	"fmt"

	"repro/internal/pregel"
)

// Snapshot codecs for the built-in algorithm state and message types.
// These are written field by field against the portable little-endian
// helpers (pregel.AppendFloat64 and friends) instead of using
// pregel.PODCodec, so snapshots carry no struct padding and decode
// identically across architectures.

type prStateCodec struct{}

func (prStateCodec) AppendValue(dst []byte, v PRState) []byte {
	return pregel.AppendFloat64(dst, v.PR)
}

func (prStateCodec) DecodeValue(src []byte) (PRState, []byte, error) {
	pr, rest, err := pregel.DecodeFloat64(src)
	return PRState{PR: pr}, rest, err
}

type ssspStateCodec struct{}

func (ssspStateCodec) AppendValue(dst []byte, v SSSPState) []byte {
	return pregel.AppendFloat64(dst, v.Dist)
}

func (ssspStateCodec) DecodeValue(src []byte) (SSSPState, []byte, error) {
	d, rest, err := pregel.DecodeFloat64(src)
	return SSSPState{Dist: d}, rest, err
}

type ccStateCodec struct{}

func (ccStateCodec) AppendValue(dst []byte, v CCState) []byte {
	return pregel.AppendInt64(dst, v.Comp)
}

func (ccStateCodec) DecodeValue(src []byte) (CCState, []byte, error) {
	c, rest, err := pregel.DecodeInt64(src)
	return CCState{Comp: c}, rest, err
}

type hitsStateCodec struct{}

func (hitsStateCodec) AppendValue(dst []byte, v HITSState) []byte {
	dst = pregel.AppendFloat64(dst, v.Hub)
	return pregel.AppendFloat64(dst, v.Auth)
}

func (hitsStateCodec) DecodeValue(src []byte) (HITSState, []byte, error) {
	var v HITSState
	var err error
	if v.Hub, src, err = pregel.DecodeFloat64(src); err != nil {
		return v, nil, err
	}
	if v.Auth, src, err = pregel.DecodeFloat64(src); err != nil {
		return v, nil, err
	}
	return v, src, nil
}

type hitsMsgCodec struct{}

func (hitsMsgCodec) AppendValue(dst []byte, m HITSMsg) []byte {
	b := byte(0)
	if m.ToAuth {
		b = 1
	}
	dst = append(dst, b)
	return pregel.AppendFloat64(dst, m.Val)
}

func (hitsMsgCodec) DecodeValue(src []byte) (HITSMsg, []byte, error) {
	var m HITSMsg
	if len(src) < 1 {
		return m, nil, fmt.Errorf("%w: truncated HITSMsg", pregel.ErrSnapshotCorrupt)
	}
	switch src[0] {
	case 0:
	case 1:
		m.ToAuth = true
	default:
		return m, nil, fmt.Errorf("%w: HITSMsg kind %d", pregel.ErrSnapshotCorrupt, src[0])
	}
	var err error
	m.Val, src, err = pregel.DecodeFloat64(src[1:])
	return m, src, err
}
