// Package algorithms provides handwritten vertex-centric reference
// implementations of the paper's four benchmarks — PageRank (Fig. 1), SSSP,
// Connected Components, and non-converging HITS — written directly against
// the Pregel engine the way a Pregel+ programmer would. They are the
// "Pregel+" bars of the paper's Figures 4 and 5 and the hand-written rows
// of Table 2.
package algorithms

import (
	"context"
	"math"

	"repro/internal/graph"
	"repro/internal/pregel"
)

// RunOptions configure a reference run.
type RunOptions struct {
	Workers   int
	Scheduler pregel.Scheduler
	Combine   bool
	// Ctx, when non-nil, bounds the run: cancellation or a deadline
	// aborts at the next superstep barrier with partial stats (see
	// pregel.Engine.RunContext). Nil means context.Background().
	Ctx context.Context
	// Checkpoint enables barrier snapshots (see pregel.CheckpointOptions);
	// the algorithms install portable codecs for their state types, so
	// snapshots are architecture-independent.
	Checkpoint pregel.CheckpointOptions
	// Resume continues a previous run from a barrier snapshot instead of
	// starting at superstep 0 (see pregel.Options.Resume).
	Resume *pregel.Snapshot
	// MaxSupersteps aborts the run after this many supersteps; 0 means
	// no limit (see pregel.Options.MaxSupersteps).
	MaxSupersteps int
	// Shard places the run in a multi-process sharded mesh (see
	// pregel.ShardOptions); Workers must then be explicit and identical
	// on every shard.
	Shard *pregel.ShardOptions
}

// ctx returns the run context, defaulting to Background.
func (o RunOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// engineOpts translates RunOptions to engine options.
func (o RunOptions) engineOpts() pregel.Options {
	return pregel.Options{
		Workers:       o.Workers,
		Scheduler:     o.Scheduler,
		Checkpoint:    o.Checkpoint,
		Resume:        o.Resume,
		MaxSupersteps: o.MaxSupersteps,
		Shard:         o.Shard,
	}
}

// ---------------------------------------------------------------------------
// PageRank, transcribed from the paper's Figure 1 (including its
// sum/graphSize normalization), generalized to directed graphs: ranks
// arrive on in-edges and are divided over the out-degree.

// PRState is the hand-written PageRank vertex state (Table 2's Pregel+
// column for PG).
type PRState struct {
	PR float64
}

// PageRank runs the Fig. 1 algorithm for the given number of iterations.
type PageRank struct {
	Iterations int
}

// Init implements superstep 1 of Fig. 1 (step_num() == 1).
func (p *PageRank) Init(ctx *pregel.Context[PRState, float64]) {
	ctx.Value().PR = 1.0 / float64(ctx.NumVertices())
	p.sendRank(ctx)
}

// Compute implements the remaining supersteps of Fig. 1.
func (p *PageRank) Compute(ctx *pregel.Context[PRState, float64], msgs []float64) {
	sum := 0.0
	for _, m := range msgs {
		sum += m
	}
	ctx.Value().PR = 0.15 + 0.85*(sum/float64(ctx.NumVertices()))
	if ctx.Superstep() < p.Iterations {
		p.sendRank(ctx)
	} else {
		ctx.VoteToHalt()
	}
}

func (p *PageRank) sendRank(ctx *pregel.Context[PRState, float64]) {
	d := ctx.OutDegree()
	if d == 0 {
		return
	}
	ctx.BroadcastOut(ctx.Value().PR / float64(d))
}

// RunPageRank executes PageRank and returns the engine plus run stats.
func RunPageRank(g *graph.Graph, iterations int, opts RunOptions) (*pregel.Engine[PRState, float64], *pregel.Stats, error) {
	e := pregel.New[PRState, float64](g, opts.engineOpts())
	e.SetValueCodec(prStateCodec{})
	e.SetMessageCodec(pregel.Float64Codec{})
	if opts.Combine {
		e.SetCombiner(pregel.CombinerFunc[float64](func(a, b float64) float64 { return a + b }))
	}
	stats, err := e.RunContext(opts.ctx(), &PageRank{Iterations: iterations})
	return e, stats, err
}

// ---------------------------------------------------------------------------
// Single-source shortest paths: the classic Pregel SSSP with a min
// combiner. Distances travel along out-edges; only improvements are
// propagated ("pre-incrementalized", §7.2).

// SSSPState is the hand-written SSSP vertex state.
type SSSPState struct {
	Dist float64
}

// SSSP computes shortest path distances from Source.
type SSSP struct {
	Source graph.VertexID
}

// Init seeds the source at distance 0 and broadcasts the first
// relaxations.
func (s *SSSP) Init(ctx *pregel.Context[SSSPState, float64]) {
	v := ctx.Value()
	if ctx.ID() == s.Source {
		v.Dist = 0
		s.relax(ctx)
	} else {
		v.Dist = math.Inf(1)
	}
	ctx.VoteToHalt()
}

// Compute applies incoming tentative distances and propagates
// improvements.
func (s *SSSP) Compute(ctx *pregel.Context[SSSPState, float64], msgs []float64) {
	best := ctx.Value().Dist
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < ctx.Value().Dist {
		ctx.Value().Dist = best
		s.relax(ctx)
	}
	ctx.VoteToHalt()
}

func (s *SSSP) relax(ctx *pregel.Context[SSSPState, float64]) {
	d := ctx.Value().Dist
	it := ctx.OutArcs()
	for it.Next() {
		ctx.Send(it.To(), d+it.Weight())
	}
}

// RunSSSP executes SSSP from source and returns the engine plus stats.
func RunSSSP(g *graph.Graph, source graph.VertexID, opts RunOptions) (*pregel.Engine[SSSPState, float64], *pregel.Stats, error) {
	e := pregel.New[SSSPState, float64](g, opts.engineOpts())
	e.SetValueCodec(ssspStateCodec{})
	e.SetMessageCodec(pregel.Float64Codec{})
	if opts.Combine {
		e.SetCombiner(pregel.CombinerFunc[float64](math.Min))
	}
	stats, err := e.RunContext(opts.ctx(), &SSSP{Source: source})
	return e, stats, err
}

// ---------------------------------------------------------------------------
// Connected components by minimum-label propagation (HashMin), for
// undirected graphs.

// CCState is the hand-written CC vertex state.
type CCState struct {
	Comp int64
}

// CC labels every vertex with the smallest vertex id in its component.
type CC struct{}

// Init starts every vertex at its own id and broadcasts it.
func (CC) Init(ctx *pregel.Context[CCState, float64]) {
	ctx.Value().Comp = int64(ctx.ID())
	ctx.BroadcastOut(float64(ctx.Value().Comp))
	ctx.VoteToHalt()
}

// Compute adopts the smallest label seen and propagates changes.
func (CC) Compute(ctx *pregel.Context[CCState, float64], msgs []float64) {
	best := ctx.Value().Comp
	for _, m := range msgs {
		if int64(m) < best {
			best = int64(m)
		}
	}
	if best < ctx.Value().Comp {
		ctx.Value().Comp = best
		ctx.BroadcastOut(float64(best))
	}
	ctx.VoteToHalt()
}

// RunCC executes connected components and returns the engine plus stats.
func RunCC(g *graph.Graph, opts RunOptions) (*pregel.Engine[CCState, float64], *pregel.Stats, error) {
	e := pregel.New[CCState, float64](g, opts.engineOpts())
	e.SetValueCodec(ccStateCodec{})
	e.SetMessageCodec(pregel.Float64Codec{})
	if opts.Combine {
		e.SetCombiner(pregel.CombinerFunc[float64](math.Min))
	}
	stats, err := e.RunContext(opts.ctx(), CC{})
	return e, stats, err
}

// ---------------------------------------------------------------------------
// Non-converging HITS (§7): hub and authority updated simultaneously with
// no normalization for a fixed number of rounds. auth(v) = Σ hub(u) over
// in-neighbours; hub(v) = Σ auth(u) over out-neighbours. Each vertex sends
// one two-value message per incident edge direction per round.

// HITSState is the hand-written HITS vertex state.
type HITSState struct {
	Hub, Auth float64
}

// HITSMsg carries a hub or authority contribution.
type HITSMsg struct {
	// ToAuth is true when Val is a hub score travelling to an authority
	// sum (sent along an out-edge); false for an authority score
	// travelling to a hub sum (sent along an in-edge).
	ToAuth bool
	Val    float64
}

// HITS runs the simultaneous update for Iterations rounds.
type HITS struct {
	Iterations int
}

// Init sets hub = auth = 1 and sends the first contributions.
func (h *HITS) Init(ctx *pregel.Context[HITSState, HITSMsg]) {
	v := ctx.Value()
	v.Hub, v.Auth = 1, 1
	h.send(ctx)
}

// Compute accumulates contributions and re-sends until the round limit.
func (h *HITS) Compute(ctx *pregel.Context[HITSState, HITSMsg], msgs []HITSMsg) {
	var auth, hub float64
	for _, m := range msgs {
		if m.ToAuth {
			auth += m.Val
		} else {
			hub += m.Val
		}
	}
	v := ctx.Value()
	v.Auth, v.Hub = auth, hub
	if ctx.Superstep() < h.Iterations {
		h.send(ctx)
	} else {
		ctx.VoteToHalt()
	}
}

func (h *HITS) send(ctx *pregel.Context[HITSState, HITSMsg]) {
	v := ctx.Value()
	out := ctx.OutArcs()
	for out.Next() {
		ctx.Send(out.To(), HITSMsg{ToAuth: true, Val: v.Hub})
	}
	in := ctx.InArcs()
	for in.Next() {
		ctx.Send(in.To(), HITSMsg{ToAuth: false, Val: v.Auth})
	}
}

// hitsCombiner sums contributions of the same kind; mixed-kind messages
// are never combined.
type hitsCombiner struct{}

func (hitsCombiner) Combine(a, b HITSMsg) HITSMsg { a.Val += b.Val; return a }
func (hitsCombiner) Key(m HITSMsg) uint32 {
	if m.ToAuth {
		return 1
	}
	return 0
}

// RunHITS executes HITS and returns the engine plus stats. The graph must
// have reverse adjacency.
func RunHITS(g *graph.Graph, iterations int, opts RunOptions) (*pregel.Engine[HITSState, HITSMsg], *pregel.Stats, error) {
	g.BuildReverse()
	e := pregel.New[HITSState, HITSMsg](g, opts.engineOpts())
	e.SetValueCodec(hitsStateCodec{})
	e.SetMessageCodec(hitsMsgCodec{})
	if opts.Combine {
		e.SetCombiner(hitsCombiner{})
	}
	stats, err := e.RunContext(opts.ctx(), &HITS{Iterations: iterations})
	return e, stats, err
}

// ---------------------------------------------------------------------------
// Oracles: sequential implementations used by tests to validate both the
// handwritten programs and the compiled ΔV programs.

// PageRankOracle computes the Fig. 1 recurrence sequentially.
func PageRankOracle(g *graph.Graph, iterations int) []float64 {
	n := g.NumVertices()
	pr := make([]float64, n)
	contrib := make([]float64, n)
	for i := range pr {
		pr[i] = 1.0 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		for u := 0; u < n; u++ {
			if d := g.OutDegree(graph.VertexID(u)); d > 0 {
				contrib[u] = pr[u] / float64(d)
			} else {
				contrib[u] = 0
			}
		}
		next := make([]float64, n)
		for u := 0; u < n; u++ {
			sum := 0.0
			it := g.InArcs(graph.VertexID(u))
			for it.Next() {
				sum += contrib[it.To()]
			}
			next[u] = 0.15 + 0.85*(sum/float64(n))
		}
		pr = next
	}
	return pr
}

// SSSPOracle computes exact shortest-path distances with Dijkstra.
func SSSPOracle(g *graph.Graph, source graph.VertexID) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	for {
		u, best := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		it := g.OutArcs(graph.VertexID(u))
		for it.Next() {
			if d := dist[u] + it.Weight(); d < dist[it.To()] {
				dist[it.To()] = d
			}
		}
	}
	return dist
}

// HITSOracle computes the non-normalized simultaneous update sequentially.
func HITSOracle(g *graph.Graph, iterations int) (hub, auth []float64) {
	n := g.NumVertices()
	hub = make([]float64, n)
	auth = make([]float64, n)
	for i := 0; i < n; i++ {
		hub[i], auth[i] = 1, 1
	}
	for it := 0; it < iterations; it++ {
		nh := make([]float64, n)
		na := make([]float64, n)
		for u := 0; u < n; u++ {
			in := g.InArcs(graph.VertexID(u))
			for in.Next() {
				na[u] += hub[in.To()]
			}
			out := g.OutArcs(graph.VertexID(u))
			for out.Next() {
				nh[u] += auth[out.To()]
			}
		}
		hub, auth = nh, na
	}
	return hub, auth
}
