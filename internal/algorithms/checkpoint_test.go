package algorithms

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/pregel"
)

// The crash-resume equivalence suite for the hand-written algorithms:
// each program runs to completion with a snapshot at every barrier, then is
// "killed" at every superstep k by resuming a fresh engine from the
// k-snapshot. The resumed run must reproduce the uninterrupted run's final
// values bit for bit and take exactly the remaining number of supersteps.

// ckptRunner abstracts one algorithm for the table: run it with the given
// options and return final values as raw float bits plus the stats.
type ckptRunner func(t *testing.T, opts RunOptions) ([]uint64, *pregel.Stats)

func checkpointRunners() map[string]ckptRunner {
	prG := graph.RMAT(8, 4, 0.57, 0.19, 0.19, true, 7)
	ssspG := graph.Grid(12, 15, 9, 3)
	ccG := graph.PreferentialAttachment(200, 2, 5)
	hitsG := graph.RMAT(7, 5, 0.57, 0.19, 0.19, true, 9)
	return map[string]ckptRunner{
		"pagerank": func(t *testing.T, opts RunOptions) ([]uint64, *pregel.Stats) {
			e, stats, err := RunPageRank(prG, 10, opts)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]uint64, 0, len(e.Values()))
			for _, v := range e.Values() {
				out = append(out, math.Float64bits(v.PR))
			}
			return out, stats
		},
		"sssp": func(t *testing.T, opts RunOptions) ([]uint64, *pregel.Stats) {
			e, stats, err := RunSSSP(ssspG, 0, opts)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]uint64, 0, len(e.Values()))
			for _, v := range e.Values() {
				out = append(out, math.Float64bits(v.Dist))
			}
			return out, stats
		},
		"cc": func(t *testing.T, opts RunOptions) ([]uint64, *pregel.Stats) {
			e, stats, err := RunCC(ccG, opts)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]uint64, 0, len(e.Values()))
			for _, v := range e.Values() {
				out = append(out, uint64(v.Comp))
			}
			return out, stats
		},
		"hits": func(t *testing.T, opts RunOptions) ([]uint64, *pregel.Stats) {
			e, stats, err := RunHITS(hitsG, 6, opts)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]uint64, 0, 2*len(e.Values()))
			for _, v := range e.Values() {
				out = append(out, math.Float64bits(v.Hub), math.Float64bits(v.Auth))
			}
			return out, stats
		},
	}
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	scheds := map[string]pregel.Scheduler{
		"scan-all":   pregel.ScanAll,
		"work-queue": pregel.WorkQueue,
	}
	for name, run := range checkpointRunners() {
		for schedName, sched := range scheds {
			for _, combine := range []bool{false, true} {
				sub := name + "/" + schedName
				if combine {
					sub += "/combine"
				}
				run, sched, combine := run, sched, combine
				t.Run(sub, func(t *testing.T) {
					dir := t.TempDir()
					base := RunOptions{Workers: 4, Scheduler: sched, Combine: combine}
					full := base
					full.Checkpoint = pregel.CheckpointOptions{Every: 1, Dir: dir}
					want, fullStats := run(t, full)
					S := fullStats.Supersteps
					if S < 3 {
						t.Fatalf("full run too short: %d supersteps", S)
					}
					for k := 0; k < S; k++ {
						snap, err := pregel.ReadSnapshotFile(filepath.Join(dir, pregel.SnapshotFileName(k)))
						if err != nil {
							t.Fatalf("k=%d: %v", k, err)
						}
						res := base
						res.Resume = snap
						got, stats := run(t, res)
						if want2 := S - (k + 1); stats.Supersteps != want2 {
							t.Errorf("k=%d: resumed run took %d supersteps, want %d", k, stats.Supersteps, want2)
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("k=%d: value bits [%d] = %x, want %x", k, i, got[i], want[i])
							}
						}
					}
				})
			}
		}
	}
}
