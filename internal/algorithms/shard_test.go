package algorithms

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/pregel/transport"
)

// The reference algorithms sharded across a 2-engine socket mesh must
// produce bit-identical values and merged stats versus the in-process
// run with the same total worker count. cmd/dvshard hosts the same
// configuration as two real processes; these tests pin the semantics.

const shardTestWorkers = 4

// runSharded2 runs fn once per shard over a fresh unix-socket mesh and
// returns each shard's result.
func runSharded2[R any](t *testing.T, fp uint64, fn func(shard int, tr transport.Transport) (R, error)) [2]R {
	t.Helper()
	dir := t.TempDir()
	addrs := []string{
		"unix:" + filepath.Join(dir, "s0.sock"),
		"unix:" + filepath.Join(dir, "s1.sock"),
	}
	var out [2]R
	errs := [2]error{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := transport.DialMesh(transport.SocketConfig{
				Shard: i, Count: 2, Addrs: addrs,
				Fingerprint: fp, Timeout: 10 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer tr.Close()
			out[i], errs[i] = fn(i, tr)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	return out
}

func shardOpts(i int, tr transport.Transport) RunOptions {
	return RunOptions{
		Workers: shardTestWorkers,
		Combine: true,
		Shard:   &pregel.ShardOptions{Index: i, Count: 2, Transport: tr},
	}
}

func requireSameStats(t *testing.T, label string, got, want *pregel.Stats) {
	t.Helper()
	if got.Supersteps != want.Supersteps || got.MessagesSent != want.MessagesSent ||
		got.CombinedMessages != want.CombinedMessages || got.TotalActive != want.TotalActive {
		t.Fatalf("%s: merged stats diverge:\n got %+v\nwant %+v", label, got, want)
	}
}

func TestShardedPageRankBitIdentical(t *testing.T) {
	g := graph.RMAT(8, 4, 0.57, 0.19, 0.19, true, 7)
	const iters = 10
	ref, refStats, err := RunPageRank(g, iters, RunOptions{Workers: shardTestWorkers, Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	outs := runSharded2(t, g.Fingerprint(), func(i int, tr transport.Transport) ([]PRState, error) {
		e, st, err := RunPageRank(g, iters, shardOpts(i, tr))
		if err != nil {
			return nil, err
		}
		requireSameStats(t, fmt.Sprintf("shard %d", i), st, refStats)
		return e.Values(), nil
	})
	for i, vals := range outs {
		for u, v := range vals {
			if v != ref.Values()[u] {
				t.Fatalf("shard %d vertex %d: PR %v != %v (bitwise)", i, u, v.PR, ref.Values()[u].PR)
			}
		}
	}
}

func TestShardedSSSPBitIdentical(t *testing.T) {
	g := graph.WithRandomWeights(graph.RMAT(8, 4, 0.45, 0.25, 0.2, true, 11), 1, 100, 19)
	ref, refStats, err := RunSSSP(g, 0, RunOptions{Workers: shardTestWorkers, Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	outs := runSharded2(t, g.Fingerprint(), func(i int, tr transport.Transport) ([]SSSPState, error) {
		e, st, err := RunSSSP(g, 0, shardOpts(i, tr))
		if err != nil {
			return nil, err
		}
		requireSameStats(t, fmt.Sprintf("shard %d", i), st, refStats)
		return e.Values(), nil
	})
	for i, vals := range outs {
		for u, v := range vals {
			if v != ref.Values()[u] {
				t.Fatalf("shard %d vertex %d: dist %v != %v (bitwise)", i, u, v.Dist, ref.Values()[u].Dist)
			}
		}
	}
}

func TestShardedCCBitIdentical(t *testing.T) {
	g := graph.WattsStrogatz(300, 6, 0.1, 23)
	ref, refStats, err := RunCC(g, RunOptions{Workers: shardTestWorkers, Combine: true})
	if err != nil {
		t.Fatal(err)
	}
	outs := runSharded2(t, g.Fingerprint(), func(i int, tr transport.Transport) ([]CCState, error) {
		e, st, err := RunCC(g, shardOpts(i, tr))
		if err != nil {
			return nil, err
		}
		requireSameStats(t, fmt.Sprintf("shard %d", i), st, refStats)
		return e.Values(), nil
	})
	for i, vals := range outs {
		for u, v := range vals {
			if v != ref.Values()[u] {
				t.Fatalf("shard %d vertex %d: comp %d != %d", i, u, v.Comp, ref.Values()[u].Comp)
			}
		}
	}
}
