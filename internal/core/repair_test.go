package core

import (
	"strings"
	"testing"

	"repro/internal/programs"
)

// The expected capability row per program × mode, rendered through
// RepairProfile.String (minus the "repairability <mode>:" prefix). These
// are derived by hand from the program sources; the exhaustive
// planner-agreement suite in internal/deltav/vm proves RunDelta's
// accept/reject behaviour matches them.
const (
	rowUnsupported = "arc-add=unsupported arc-remove=unsupported weight-tighten=unsupported weight-loosen=unsupported vertex-add=unsupported"

	// Clamped idempotent fold, weightless slot (bfs/cc/maxval/reach/wcc):
	// injections are clamp-safe, retractions are not, reweights are no-ops.
	rowClampedDV = "arc-add=repairable(delta-inject) arc-remove=fallback weight-tighten=repairable(no-op) weight-loosen=repairable(no-op) vertex-add=repairable(init-prime)"
	rowClampedMT = "arc-add=repairable(table-update) arc-remove=fallback weight-tighten=repairable(no-op) weight-loosen=repairable(no-op) vertex-add=repairable(init-prime)"

	// sssp reads ew: reweights split by direction under the clamp.
	rowSsspDV = "arc-add=repairable(delta-inject) arc-remove=fallback weight-tighten=repairable(delta-transition) weight-loosen=fallback vertex-add=repairable(init-prime)"
	rowSsspMT = "arc-add=repairable(table-update) arc-remove=fallback weight-tighten=repairable(table-update) weight-loosen=fallback vertex-add=repairable(init-prime)"

	// degreesum's init{} reads |#out|: every topology change invalidates
	// baked-in state, whatever the mode's repair machinery could do.
	rowDegreesum = "arc-add=fallback arc-remove=fallback weight-tighten=repairable(no-op) weight-loosen=repairable(no-op) vertex-add=repairable(init-prime)"
)

// corpusMatrix is the golden delta-capability matrix of the program corpus.
var corpusMatrix = map[string]map[Mode]string{
	"allreach":  {Incremental: rowUnsupported, MemoTable: rowUnsupported},
	"bfs":       {Incremental: rowClampedDV, MemoTable: rowClampedMT},
	"cc":        {Incremental: rowClampedDV, MemoTable: rowClampedMT},
	"degreesum": {Incremental: rowDegreesum, MemoTable: rowDegreesum},
	"hits":      {Incremental: rowUnsupported, MemoTable: rowUnsupported},
	"maxval":    {Incremental: rowClampedDV, MemoTable: rowClampedMT},
	"pagerank":  {Incremental: rowUnsupported, MemoTable: rowUnsupported},
	"prod":      {Incremental: rowUnsupported, MemoTable: rowUnsupported},
	"reach":     {Incremental: rowClampedDV, MemoTable: rowClampedMT},
	"sssp":      {Incremental: rowSsspDV, MemoTable: rowSsspMT},
	"twophase":  {Incremental: rowUnsupported, MemoTable: rowUnsupported},
	"wcc":       {Incremental: rowClampedDV, MemoTable: rowClampedMT},
}

func compileMode(t *testing.T, name string, mode Mode) *Program {
	t.Helper()
	p, err := Compile(programs.MustSource(name), Options{Mode: mode})
	if err != nil {
		t.Fatalf("compile %s (%s): %v", name, mode, err)
	}
	return p
}

func TestRepairabilityCorpusMatrix(t *testing.T) {
	for _, name := range programs.Names() {
		want, ok := corpusMatrix[name]
		if !ok {
			t.Errorf("%s: corpus program missing from the expected matrix", name)
			continue
		}
		for _, mode := range []Mode{Incremental, Baseline, MemoTable} {
			rp := compileMode(t, name, mode).Repairability()
			wantRow := rowUnsupported // everything × dV* keeps no repairable state
			if mode != Baseline {
				wantRow = want[mode]
			}
			got := rp.String()
			if wantGot := "repairability " + mode.String() + ": " + wantRow; got != wantGot {
				t.Errorf("%s × %s:\n got  %s\n want %s", name, mode, got, wantGot)
			}
		}
	}
}

func TestRepairabilityBlockersAndVerdicts(t *testing.T) {
	t.Run("blocked-iff-all-unsupported", func(t *testing.T) {
		for _, name := range programs.Names() {
			for _, mode := range []Mode{Incremental, Baseline, MemoTable} {
				rp := compileMode(t, name, mode).Repairability()
				allUnsupported := true
				for _, v := range rp.Classes {
					if v.Cap != Unsupported {
						allUnsupported = false
					}
				}
				if (rp.Blocked() != nil) != allUnsupported {
					t.Errorf("%s × %s: Blocked()=%v but allUnsupported=%v", name, mode, rp.Blocked(), allUnsupported)
				}
			}
		}
	})

	t.Run("baseline-blocker-names-modes", func(t *testing.T) {
		rp := compileMode(t, "sssp", Baseline).Repairability()
		b := rp.Blocked()
		if b == nil || !strings.Contains(b.Reason, "delta runs need mode dV or dV-memotable") {
			t.Fatalf("baseline blocker = %+v", b)
		}
	})

	t.Run("twophase-blocker", func(t *testing.T) {
		b := compileMode(t, "twophase", Incremental).Repairability().Blocked()
		if b == nil || !strings.Contains(b.Reason, "single-phase") {
			t.Fatalf("twophase blocker = %+v", b)
		}
	})

	t.Run("pagerank-until-blocker-has-position", func(t *testing.T) {
		rp := compileMode(t, "pagerank", Incremental).Repairability()
		b := rp.Blocked()
		if b == nil || !strings.Contains(b.Reason, "fixpoint") {
			t.Fatalf("pagerank blocker = %+v", b)
		}
		if !b.Pos.IsValid() {
			t.Fatalf("pagerank until blocker should carry the until{} position, got %+v", b)
		}
	})

	t.Run("prod-itervar-blocker", func(t *testing.T) {
		// prod's body reads the iteration variable (w flips at k >= 3), so
		// the iteration-dependence blocker fires before the until{} check —
		// the same order validateDelta reports them in.
		b := compileMode(t, "prod", Incremental).Repairability().Blocked()
		if b == nil || !strings.Contains(b.Reason, "iteration-dependent body") {
			t.Fatalf("prod blocker = %+v", b)
		}
	})

	t.Run("degreesum-topology-unconditional", func(t *testing.T) {
		rp := compileMode(t, "degreesum", Incremental).Repairability()
		for _, c := range []DeltaClass{DeltaArcAdd, DeltaArcRemove} {
			v := rp.Verdict(c)
			if v.Cap != FallbackRequired || !v.Unconditional {
				t.Errorf("degreesum %s: want unconditional fallback, got %+v", c, v)
			}
			if !strings.Contains(v.Reason, "init{}") || !v.Pos.IsValid() {
				t.Errorf("degreesum %s: want init{}-anchored reason, got %+v", c, v)
			}
		}
	})

	t.Run("clamp-retraction-is-value-dependent", func(t *testing.T) {
		// bfs removals are rejected per value (an identity contribution may
		// still be dropped), so the verdict must not claim unconditional.
		v := compileMode(t, "bfs", MemoTable).Repairability().Verdict(DeltaArcRemove)
		if v.Cap != FallbackRequired || v.Unconditional {
			t.Fatalf("bfs remove verdict = %+v", v)
		}
		if !strings.Contains(v.Reason, "pin the stale fixpoint") {
			t.Fatalf("bfs remove reason = %q", v.Reason)
		}
		if !v.Pos.IsValid() {
			t.Fatalf("clamp verdict should anchor the clamping assignment, got %+v", v)
		}
	})

	t.Run("vertex-add-gated-on-graphsize", func(t *testing.T) {
		// Growth reruns init{} for the new vertices only, so vertex-add is
		// repairable in place — unless some vertex-side expression reads
		// #V, which growth changes for every *existing* vertex. No corpus
		// program that survives the program-wide blockers reads #V.
		for _, name := range programs.Names() {
			rp := compileMode(t, name, Incremental).Repairability()
			if rp.Blocked() != nil {
				continue
			}
			if v := rp.Verdict(DeltaVertexAdd); v.Cap != Repairable || v.Strategy != "init-prime" {
				t.Errorf("%s: vertex-add = %+v, want repairable(init-prime)", name, v)
			}
		}
		const src = `
init { local share : float = 1.0 / graphSize };
iter k {
  share = max [ u.share | u <- #in ]
} until { fixpoint }`
		p, err := Compile(src, Options{Mode: Incremental})
		if err != nil {
			t.Fatal(err)
		}
		v := p.Repairability().Verdict(DeltaVertexAdd)
		if v.Cap != FallbackRequired || !v.Unconditional {
			t.Fatalf("graphSize-reading program: vertex-add = %+v, want unconditional fallback", v)
		}
		if !strings.Contains(v.Reason, "graph size") || !v.Pos.IsValid() {
			t.Fatalf("graphSize-reading program: want a #V-anchored reason, got %+v", v)
		}
	})

	t.Run("unclamped-min-retraction-names-memotable", func(t *testing.T) {
		// A min fold without a self-folding clamp hits the Δ-encoding wall
		// in dV mode and repairs by table surgery in memo-table mode.
		const src = `
init { local best : float = 1.0 * id };
iter k {
  best = min [ u.best | u <- #in ]
} until { fixpoint }`
		dv, err := Compile(src, Options{Mode: Incremental})
		if err != nil {
			t.Fatal(err)
		}
		v := dv.Repairability().Verdict(DeltaArcRemove)
		if v.Cap != FallbackRequired || !strings.Contains(v.Reason, "use mode dV-memotable") {
			t.Fatalf("unclamped dV min remove = %+v", v)
		}
		mt, err := Compile(src, Options{Mode: MemoTable})
		if err != nil {
			t.Fatal(err)
		}
		if v := mt.Repairability().Verdict(DeltaArcRemove); v.Cap != Repairable || v.Strategy != "table-surgery" {
			t.Fatalf("unclamped memotable min remove = %+v", v)
		}
	})

	t.Run("site-positions-recorded", func(t *testing.T) {
		p := compileMode(t, "sssp", Incremental)
		for _, s := range p.Sites {
			if !s.Pos.IsValid() || !s.End.IsValid() {
				t.Fatalf("site %d missing source range: %+v", s.ID, s)
			}
		}
	})
}
