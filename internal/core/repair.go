package core

import (
	"fmt"
	"strings"

	"repro/internal/deltav/ast"
	"repro/internal/deltav/token"
)

// This file computes the RepairProfile: the per-program delta-capability
// matrix. Whether a streaming graph mutation can be repaired in place is a
// *static* property of the compiled program — invertibility of the fold,
// memo-table eligibility, self-folding clamps, topology reads — yet the
// predicates that decide it (Invertible, SelfFoldingFields, ClampSafe,
// ReadsFixpoint, ReadsIterVar, the scratch-site and single-phase checks)
// historically lived scattered across the planner. The profile folds them
// into one declarative table with three consumers: the `repairability`
// analyzer renders it through `dvc vet`, vm.RunDelta's validation looks
// rejections up in it instead of rediscovering them one runtime attempt at
// a time, and dvserve short-circuits statically doomed batches straight to
// the from-scratch fallback.

// DeltaClass partitions graph mutations by how they perturb an aggregation
// input. Weight changes are classified by their effect on the fold, not by
// the raw weight direction: a transition tightens when the new contribution
// subsumes the old one under every weight-reading site's operator (the
// ClampSafe direction), and loosens otherwise.
type DeltaClass int

// Delta classes, in matrix order.
const (
	// DeltaArcAdd is a new arc: its contribution is injected.
	DeltaArcAdd DeltaClass = iota
	// DeltaArcRemove is a deleted arc: its contribution is retracted.
	DeltaArcRemove
	// DeltaWeightTighten is a reweight whose new contribution subsumes the
	// old one on every weight-reading site (e.g. a lowered SSSP weight).
	DeltaWeightTighten
	// DeltaWeightLoosen is a reweight that relaxes at least one folded-in
	// contribution (e.g. a raised SSSP weight).
	DeltaWeightLoosen
	// DeltaVertexAdd grows the vertex set, which needs init{} state no
	// snapshot can supply.
	DeltaVertexAdd

	// NumDeltaClasses sizes per-class tables.
	NumDeltaClasses int = iota
)

// String names the class as rendered in the capability matrix.
func (c DeltaClass) String() string {
	switch c {
	case DeltaArcAdd:
		return "arc-add"
	case DeltaArcRemove:
		return "arc-remove"
	case DeltaWeightTighten:
		return "weight-tighten"
	case DeltaWeightLoosen:
		return "weight-loosen"
	case DeltaVertexAdd:
		return "vertex-add"
	}
	return fmt.Sprintf("DeltaClass(%d)", int(c))
}

// Capability is the static verdict for one delta class.
type Capability int

// Capabilities, ordered from best to worst.
const (
	// Repairable: the planner repairs the class in place with the verdict's
	// strategy. Value-level guards (a zero-crossing product contribution)
	// may still reject individual deltas at runtime.
	Repairable Capability = iota
	// FallbackRequired: the program supports delta repair, but this class
	// must rerun from scratch; the planner rejects it with the verdict's
	// reason so callers fall back.
	FallbackRequired
	// Unsupported: delta repair never applies to this program × mode — the
	// planner rejects every delta, whatever its class.
	Unsupported
)

// String names the capability as rendered in the matrix.
func (c Capability) String() string {
	switch c {
	case Repairable:
		return "repairable"
	case FallbackRequired:
		return "fallback"
	}
	return "unsupported"
}

// ClassVerdict is the matrix entry for one delta class.
type ClassVerdict struct {
	Class DeltaClass
	Cap   Capability
	// Strategy names the repair mechanism (Repairable only): "delta-inject",
	// "delta-retract", "delta-transition", "table-update", "table-surgery",
	// or "no-op" when the class cannot touch any aggregation input.
	Strategy string
	// Reason explains a FallbackRequired/Unsupported verdict in the same
	// words the planner uses when it rejects the class.
	Reason string
	// Unconditional marks a non-repairable verdict the planner enforces
	// without evaluating the mutation's values: every delta of the class is
	// rejected (or short-circuited) up front. When false, the planner's
	// per-value guards may still admit degenerate members of the class
	// (a transition whose contributions are value-identical, a retraction
	// of an identity contribution).
	Unconditional bool
	// Pos/End anchor the verdict to the program construct that caused it
	// (the aggregation site, the clamping assignment, the until{} clause);
	// invalid for program-wide facts such as the compilation mode.
	Pos, End token.Pos
}

// Blocker is one program-wide reason delta repair is unavailable in any
// class, in the order the planner reports them.
type Blocker struct {
	Reason   string
	Pos, End token.Pos
}

// RepairProfile is the delta-capability matrix of one compiled program.
type RepairProfile struct {
	Mode    Mode
	Classes [NumDeltaClasses]ClassVerdict
	// Clamped lists the user fields the body folds with their own previous
	// value (see SelfFoldingFields), the source of every clamp verdict.
	Clamped []string
	// Blockers holds the program-wide gates that fail, first-reported
	// first; non-empty exactly when every class is Unsupported.
	Blockers []Blocker
}

// Verdict returns the matrix entry for a class.
func (rp *RepairProfile) Verdict(c DeltaClass) ClassVerdict { return rp.Classes[c] }

// Blocked returns the first program-wide blocker, or nil when the program
// admits delta repair for at least some class.
func (rp *RepairProfile) Blocked() *Blocker {
	if len(rp.Blockers) == 0 {
		return nil
	}
	return &rp.Blockers[0]
}

// String renders the matrix on one line, the form dvserve logs at boot:
//
//	repairability dV: arc-add=repairable(delta-inject) arc-remove=fallback ...
func (rp *RepairProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "repairability %s:", rp.Mode)
	for _, v := range rp.Classes {
		fmt.Fprintf(&b, " %s=%s", v.Class, v.Cap)
		if v.Strategy != "" {
			fmt.Fprintf(&b, "(%s)", v.Strategy)
		}
	}
	return b.String()
}

// clampedField is a self-folding assignment with its source anchor.
type clampedField struct {
	name     string
	pos, end token.Pos
}

// selfFoldingAssigns is SelfFoldingFields with source ranges: the Assign
// nodes whose right-hand side reads the assigned user field.
func selfFoldingAssigns(body ast.Expr, userFields int) []clampedField {
	var fields []clampedField
	seen := make(map[int]bool)
	ast.Walk(body, func(x ast.Expr) bool {
		a, ok := x.(*ast.Assign)
		if !ok || !a.IsField || a.Slot >= userFields || seen[a.Slot] {
			return true
		}
		ast.Walk(a.Value, func(y ast.Expr) bool {
			if f, isField := y.(*ast.Field); isField && f.Slot == a.Slot {
				seen[a.Slot] = true
				fields = append(fields, clampedField{name: a.Name, pos: a.Pos(), end: a.End()})
				return false
			}
			return true
		})
		return true
	})
	return fields
}

// vertexGraphSizeRead locates the first vertex-side graph-size (#V) read:
// in init{}, the phase-0 body, or an aggregation slot expression. Master
// expressions (until{}) are excluded — they evaluate against the current
// graph every superstep, so growth cannot leave them stale.
func vertexGraphSizeRead(p *Program) (pos, end token.Pos, ok bool) {
	exprs := []ast.Expr{p.Init, p.Phases[0].Body}
	for _, s := range p.Sites {
		exprs = append(exprs, s.SlotExpr)
	}
	for _, e := range exprs {
		ast.Walk(e, func(x ast.Expr) bool {
			if ok {
				return false
			}
			if g, isSize := x.(*ast.GraphSize); isSize {
				pos, end, ok = g.Pos(), g.End(), true
				return false
			}
			return true
		})
		if ok {
			return
		}
	}
	return
}

// topologyAnchor locates the first degree-reading node of an expression,
// for anchoring init-topology verdicts.
func topologyAnchor(e ast.Expr) (pos, end token.Pos) {
	ast.Walk(e, func(x ast.Expr) bool {
		if pos.IsValid() {
			return false
		}
		if c, ok := x.(*ast.Cardinality); ok {
			pos, end = c.Pos(), c.End()
			return false
		}
		return true
	})
	return
}

// staleInitTopologyFields finds the fields whose init{} value reads a
// degree and that the body of phase 0 never freshly recomputes — either it
// does not assign them at all, or every assignment folds in the field's
// own previous value, keeping the baked-in topology alive.
func staleInitTopologyFields(p *Program) []clampedField {
	assigned := map[int]bool{}   // field slots the body assigns
	selfFolded := map[int]bool{} // field slots some body assignment folds with themselves
	ast.Walk(p.Phases[0].Body, func(x ast.Expr) bool {
		a, ok := x.(*ast.Assign)
		if !ok || !a.IsField || a.Slot >= p.Layout.UserFields {
			return true
		}
		assigned[a.Slot] = true
		ast.Walk(a.Value, func(y ast.Expr) bool {
			if f, isField := y.(*ast.Field); isField && f.Slot == a.Slot {
				selfFolded[a.Slot] = true
				return false
			}
			return true
		})
		return true
	})
	var stale []clampedField
	ast.Walk(p.Init, func(x ast.Expr) bool {
		l, ok := x.(*ast.Local)
		if !ok || l.Slot >= p.Layout.UserFields {
			return true
		}
		if ri, ro, _ := SlotTopology(l.Init); !ri && !ro {
			return true
		}
		if assigned[l.Slot] && !selfFolded[l.Slot] {
			return true
		}
		pos, end := topologyAnchor(l.Init)
		stale = append(stale, clampedField{name: l.Name, pos: pos, end: end})
		return true
	})
	return stale
}

// Repairability computes the program's delta-capability matrix. The result
// depends only on the compiled program, so callers may compute it once
// (dvserve does, at boot) and share it.
func (p *Program) Repairability() *RepairProfile {
	rp := &RepairProfile{Mode: p.Mode}
	for c := DeltaClass(0); int(c) < NumDeltaClasses; c++ {
		rp.Classes[c] = ClassVerdict{Class: c, Cap: Repairable}
	}

	// Program-wide gates, in the order the planner reports them. Any
	// failure makes every class Unsupported: no delta of any shape can be
	// repaired against this program × mode.
	if p.Mode == Baseline {
		rp.block(Blocker{Reason: fmt.Sprintf(
			"%s re-sends full values every superstep and keeps no repairable state; delta runs need mode %s or %s",
			Baseline, Incremental, MemoTable)})
	}
	if len(p.Phases) != 1 {
		rp.block(Blocker{Reason: fmt.Sprintf(
			"delta run supports single-phase programs, this one has %d phases (earlier phases' effects are baked into the snapshot and cannot be replayed)",
			len(p.Phases))})
	}
	for _, s := range p.Sites {
		if s.Strategy == StrategyScratch {
			rp.block(Blocker{Reason: fmt.Sprintf(
				"aggregation site %d refolds from scratch each superstep; its receivers cannot be repaired in place", s.ID),
				Pos: s.Pos, End: s.End})
		}
	}
	if len(rp.Blockers) > 0 {
		return rp
	}
	ph := &p.Phases[0]
	rp.Clamped = SelfFoldingFields(ph.Body, p.Layout.UserFields)
	if ReadsIterVar(ph.Body) {
		rp.block(Blocker{Reason: "delta run cannot warm-start an iteration-dependent body (the repair restarts the iteration counter)"})
	}
	if ph.Kind == PhaseIter && ph.Until != nil && !ReadsFixpoint(ph.Until) {
		rp.block(Blocker{Reason: "delta run needs a convergence-detecting until{} (fixpoint); an iteration-count bound describes a prefix of the computation, not its fixpoint",
			Pos: ph.Until.Pos(), End: ph.Until.End()})
	}
	if len(rp.Blockers) > 0 {
		return rp
	}

	// Vertex additions: the repair superstep runs init{} for the new
	// vertices and primes their (simultaneously added) arcs, so the class
	// is repairable in place — unless some vertex-side expression reads
	// the graph size (#V). Growth changes #V for every *existing* vertex,
	// whose snapshotted fixpoint was computed against the old value; no
	// repair wave re-derives that (init{} only reruns for new vertices),
	// so such programs must rerun from scratch.
	if pos, end, ok := vertexGraphSizeRead(p); ok {
		rp.worsen(DeltaVertexAdd, ClassVerdict{
			Cap:           FallbackRequired,
			Unconditional: true,
			Reason:        "vertex code reads the graph size (#V), which growth changes for every existing vertex; their snapshotted state goes stale and init{} only reruns for new vertices — rerun from scratch",
			Pos:           pos, End: end,
		})
	}

	// init{} runs exactly once, in a from-scratch execution. A degree read
	// there (degreesum's `local deg : int = |#out|`) bakes pre-mutation
	// topology into vertex state — and if the body never freshly
	// recomputes that field, no repair superstep re-derives it, so every
	// topology-changing class must fall back. (A field the body overwrites
	// without folding in its own previous value, like stock PageRank's
	// `pr = vl / |#out|`, is re-derived by the repair wave: the planner
	// re-wakes every degree-changed vertex.)
	if stale := staleInitTopologyFields(p); len(stale) > 0 {
		v := ClassVerdict{
			Cap:           FallbackRequired,
			Unconditional: true,
			Reason: fmt.Sprintf(
				"init{} bakes a vertex degree into field %q, which the body never freshly recomputes; a topology change leaves it stale (init{} only runs from scratch)",
				stale[0].name),
			Pos: stale[0].pos, End: stale[0].end,
		}
		rp.worsen(DeltaArcAdd, v)
		rp.worsen(DeltaArcRemove, v)
	}

	clamps := selfFoldingAssigns(ph.Body, p.Layout.UserFields)
	for _, s := range p.Sites {
		rp.analyzeSite(p, s, clamps)
	}

	// A class no site constrained is repairable; name its mechanism.
	usesWeight := false
	for _, s := range p.Sites {
		usesWeight = usesWeight || s.UsesWeight
	}
	table := p.Mode == MemoTable
	defaults := map[DeltaClass]string{
		DeltaArcAdd:        pick(table, "table-update", "delta-inject"),
		DeltaArcRemove:     pick(table, "table-surgery", "delta-retract"),
		DeltaWeightTighten: pick(table, "table-update", "delta-transition"),
		DeltaWeightLoosen:  pick(table, "table-update", "delta-transition"),
		DeltaVertexAdd:     "init-prime",
	}
	if !usesWeight {
		// No slot expression reads ew: a reweight cannot move any
		// contribution and the planner drops it as a no-op.
		defaults[DeltaWeightTighten] = "no-op"
		defaults[DeltaWeightLoosen] = "no-op"
	}
	for c, strat := range defaults { //lint:allow maprange — writes one distinct class entry per key
		if rp.Classes[c].Cap == Repairable {
			rp.Classes[c].Strategy = strat
		}
	}
	return rp
}

func pick(cond bool, a, b string) string {
	if cond {
		return a
	}
	return b
}

// analyzeSite worsens the per-class verdicts with one aggregation site's
// constraints, mirroring the planner's per-sender checks: the clamp guard
// (checkClampedLoosening) first, then the Δ-encoding limits (repairSlot).
func (rp *RepairProfile) analyzeSite(p *Program, s *AggSite, clamps []clampedField) {
	ri, ro, _ := SlotTopology(s.SlotExpr)
	if len(clamps) > 0 {
		cl := clamps[0]
		if ri || ro {
			// A topology change moves the degree-reading site's contribution
			// on every incident arc; re-sending them all under a clamping
			// body could pin a loosened aggregate, so the planner rejects
			// the whole resweep up front.
			v := ClassVerdict{
				Cap:           FallbackRequired,
				Unconditional: true,
				Reason: fmt.Sprintf(
					"a topology change moves every contribution of a degree-reading %s site, and the body folds field %q with its own previous value; the clamp could pin a loosened aggregate",
					s.Op, cl.name),
				Pos: s.Pos, End: s.End,
			}
			rp.worsen(DeltaArcAdd, v)
			rp.worsen(DeltaArcRemove, v)
		}
		clampFallback := func(c DeltaClass, what string) {
			rp.worsen(c, ClassVerdict{
				Cap: FallbackRequired,
				Reason: fmt.Sprintf(
					"%s loosens a %s contribution, and the body folds field %q with its own previous value; the clamp would pin the stale fixpoint — rerun from scratch",
					what, s.Op, cl.name),
				Pos: cl.pos, End: cl.end,
			})
		}
		switch s.Op {
		case ast.AggMin, ast.AggMax, ast.AggOr, ast.AggAnd:
			// Injections and tightening transitions subsume the folded-in
			// value (ClampSafe); retractions and loosenings do not.
			clampFallback(DeltaArcRemove, "a removed arc")
			if s.UsesWeight {
				clampFallback(DeltaWeightLoosen, "a loosened arc weight")
			}
		default:
			// Sum and prod folds have no tightening direction: with a
			// clamping body every value-changing transition is unsafe.
			clampFallback(DeltaArcAdd, "an added arc")
			clampFallback(DeltaArcRemove, "a removed arc")
			if s.UsesWeight {
				clampFallback(DeltaWeightTighten, "a reweighted arc")
				clampFallback(DeltaWeightLoosen, "a reweighted arc")
			}
		}
	}

	if s.Strategy == StrategyTable {
		// Per-neighbour tables retract by surgery and transition by entry
		// replacement; no Δ-encoding limits apply.
		return
	}
	if !Invertible(s.Op) {
		// Idempotent (min/max) accumulators destroy the information needed
		// to undo a fold: retractions and loosening transitions hit the
		// planner's Δ-encoding wall (injections and tightenings are exact).
		reason := fmt.Sprintf(
			"cannot retract a %s contribution from a memoized accumulator (mutation loosens a folded-in value); use mode %s or rerun from scratch",
			s.Op, MemoTable)
		rp.worsen(DeltaArcRemove, ClassVerdict{
			Cap: FallbackRequired, Reason: reason, Pos: s.Pos, End: s.End,
		})
		if s.UsesWeight {
			rp.worsen(DeltaWeightLoosen, ClassVerdict{
				Cap: FallbackRequired, Reason: reason, Pos: s.Pos, End: s.End,
			})
		}
	}
}

// worsen replaces a class verdict when the new one is strictly worse, or
// equally bad but unconditional where the current one is value-dependent.
// The first verdict at a given badness wins otherwise, matching the order
// the planner reports rejections in.
func (rp *RepairProfile) worsen(c DeltaClass, v ClassVerdict) {
	v.Class = c
	cur := &rp.Classes[c]
	if v.Cap > cur.Cap || (v.Cap == cur.Cap && v.Unconditional && !cur.Unconditional) {
		*cur = v
	}
}

// block records a program-wide blocker and downgrades every class.
func (rp *RepairProfile) block(b Blocker) {
	rp.Blockers = append(rp.Blockers, b)
	for c := range rp.Classes {
		if rp.Classes[c].Cap < Unsupported {
			rp.Classes[c] = ClassVerdict{
				Class: DeltaClass(c), Cap: Unsupported, Unconditional: true,
				Reason: b.Reason, Pos: b.Pos, End: b.End,
			}
		}
	}
}
