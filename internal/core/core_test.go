package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/deltav/ast"
	"repro/internal/deltav/types"
	"repro/internal/programs"
)

func compileT(t *testing.T, name string, mode Mode) *Program {
	t.Helper()
	p, err := Compile(programs.MustSource(name), Options{Mode: mode})
	if err != nil {
		t.Fatalf("compile %s %v: %v", name, mode, err)
	}
	return p
}

func TestCompileCorpusAllModes(t *testing.T) {
	for _, name := range programs.Names() {
		for _, mode := range []Mode{Incremental, Baseline, MemoTable} {
			name, mode := name, mode
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				p := compileT(t, name, mode)
				if len(p.Phases) == 0 {
					t.Fatal("no phases")
				}
				if p.Layout.ByteSize()%8 != 0 {
					t.Fatalf("state size %d not 8-aligned", p.Layout.ByteSize())
				}
			})
		}
	}
}

// TestPageRankTransformGolden pins the transformed program for the paper's
// running example: the Eq. 8 receive loop, the §6.3 change check lifted
// out of the broadcast (Eq. 7), the Δ-message send (Eq. 10), the old-value
// update, and the Eq. 12 halt.
func TestPageRankTransformGolden(t *testing.T) {
	p := compileT(t, "pagerank", Incremental)
	body := ast.ExprString(p.Phases[0].Body)
	for _, want := range []string{
		"for (m : messages<0>) {\n    $acc_s0 = $acc_s0 + m.slot0\n  }", // Eq. 8
		"let sum : float = $acc_s0",                                     // aggregation reads the accumulator
		"$dirty_g0 = changed(pr)",                                       // Eq. 5 (lazy form)
		"if $dirty_g0 then {",                                           // Eq. 6/7: check lifted out of the loop
		"send(u, delta<0>(pr))",                                         // Eq. 10
		"$old_g0_pr = pr",                                               // §6.2 most-recently-sent update
		"halt",                                                          // Eq. 12
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("transformed body missing %q:\n%s", want, body)
		}
	}
	// The change check must come before the gated send.
	if strings.Index(body, "$dirty_g0 = changed(pr)") > strings.Index(body, "if $dirty_g0") {
		t.Fatalf("dirty computation after its use:\n%s", body)
	}
}

func TestBaselineOmitsMessageReductionMachinery(t *testing.T) {
	p := compileT(t, "pagerank", Baseline)
	body := ast.ExprString(p.Phases[0].Body)
	for _, banned := range []string{"delta<", "changed(", "$old_", "$dirty_", "halt"} {
		if strings.Contains(body, banned) {
			t.Fatalf("ΔV★ body contains %q:\n%s", banned, body)
		}
	}
	// Scratch semantics: accumulator reset each superstep (Eq. 3).
	if !strings.Contains(body, "$acc_s0 = 0.0") {
		t.Fatalf("ΔV★ body missing scratch reset:\n%s", body)
	}
	if p.Phases[0].Halts {
		t.Fatal("ΔV★ PageRank must not halt by default (scratch group)")
	}
}

func TestIdempotentSitesCompileIdenticallyInBothModes(t *testing.T) {
	// SSSP and CC are "pre-incrementalized" (§7.2): the ΔV and ΔV★
	// pipelines must produce identical phase bodies.
	for _, name := range []string{"sssp", "cc", "maxval"} {
		inc := compileT(t, name, Incremental)
		base := compileT(t, name, Baseline)
		for i := range inc.Phases {
			a := ast.ExprString(inc.Phases[i].Body)
			b := ast.ExprString(base.Phases[i].Body)
			if a != b {
				t.Fatalf("%s phase %d differs between ΔV and ΔV★:\n--- ΔV ---\n%s\n--- ΔV★ ---\n%s", name, i, a, b)
			}
		}
		if inc.Layout.ByteSize() != base.Layout.ByteSize() {
			t.Fatalf("%s: state sizes differ: %d vs %d", name, inc.Layout.ByteSize(), base.Layout.ByteSize())
		}
	}
}

func TestMultiplicativeTransformGolden(t *testing.T) {
	p := compileT(t, "prod", Incremental)
	body := ast.ExprString(p.Phases[0].Body)
	for _, want := range []string{
		"is_nullary<0>(m)",          // Eq. 9 dispatch
		"$nulls_s0 = $nulls_s0 + 1", // nullary arrival
		"$nn_s0 = $nn_s0 * m.slot0", // non-nulled accumulator
		"prev_nullary<0>(m)",        // tag check
		"$nulls_s0 = $nulls_s0 - 1", // recovery
		"if $nulls_s0 == 0 then {",  // commit
		"$acc_s0 = $nn_s0",          // non-null commit
		"$acc_s0 = 0.0",             // nullary_elem commit
		"$lastnn_s0",                // Δ ratio base
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("multiplicative body missing %q:\n%s", want, body)
		}
	}
}

func TestHITSGroupsAndSlots(t *testing.T) {
	p := compileT(t, "hits", Incremental)
	if len(p.Sites) != 2 {
		t.Fatalf("sites = %d, want 2", len(p.Sites))
	}
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (different pull directions)", len(p.Groups))
	}
	dirs := map[ast.GraphDir]bool{}
	for _, g := range p.Groups {
		dirs[g.PullDir] = true
		if g.PushDir == g.PullDir {
			t.Fatalf("push dir not reversed: %v", g.PushDir)
		}
	}
	if !dirs[ast.DirIn] || !dirs[ast.DirOut] {
		t.Fatalf("directions = %v, want #in and #out", dirs)
	}
}

func TestSharedDirectionSitesShareGroup(t *testing.T) {
	src := `
init { local a : float = 1.0; local b : float = 2.0 };
step {
  let x : float = + [ u.a | u <- #in ] in
  let y : float = + [ u.b | u <- #in ] in
  a = x + y
}`
	p, err := Compile(src, Options{Mode: Incremental})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (same direction and strategy)", len(p.Groups))
	}
	if len(p.Groups[0].Sites) != 2 || p.MaxSlotsPerGroup != 2 {
		t.Fatalf("group sites = %v, maxslots = %d", p.Groups[0].Sites, p.MaxSlotsPerGroup)
	}
	// Two sites, one message: the dirty check must mention both fields.
	body := ast.ExprString(p.Phases[0].Body)
	if !strings.Contains(body, "changed(a) || changed(b)") {
		t.Fatalf("group dirty check missing:\n%s", body)
	}
	if !strings.Contains(body, "send(u, delta<0>(a), delta<1>(b))") {
		t.Fatalf("two-slot send missing:\n%s", body)
	}
}

func TestMixedStrategySplitsGroups(t *testing.T) {
	src := `
init { local a : float = 1.0; local b : float = 2.0 };
step {
  let x : float = + [ u.a | u <- #in ] in
  let y : float = min [ u.b | u <- #in ] in
  a = x + y
}`
	p, err := Compile(src, Options{Mode: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: + is scratch, min is memoized → separate groups despite
	// the same direction.
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (scratch vs memoized)", len(p.Groups))
	}
}

// TestTable2StateSizes pins the Table 2 shape: ΔV adds a bounded number of
// bytes over ΔV★, and the increments match the synthesized fields.
func TestTable2StateSizes(t *testing.T) {
	rows := map[string]struct{ dv, dvStar int }{
		"pagerank": {48, 32},
		"sssp":     {40, 40}, // idempotent: identical layouts
		"cc":       {40, 40},
		"hits":     {64, 40},
	}
	for name, want := range rows {
		inc := compileT(t, name, Incremental)
		base := compileT(t, name, Baseline)
		if got := inc.Layout.ByteSize(); got != want.dv {
			t.Errorf("%s ΔV state = %dB, want %dB", name, got, want.dv)
		}
		if got := base.Layout.ByteSize(); got != want.dvStar {
			t.Errorf("%s ΔV★ state = %dB, want %dB", name, got, want.dvStar)
		}
		if inc.Layout.ByteSize() < base.Layout.ByteSize() {
			t.Errorf("%s: incremental state smaller than baseline", name)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
		mode               Mode
	}{
		{
			name: "weighted-multiplicative",
			src: `init { local w : float = 1.0 };
step { w = * [ u.w + ew | u <- #in ] }`,
			wantSub: "may not use ew",
			mode:    Incremental,
		},
		{
			name: "int-product",
			src: `init { local w : int = 2 };
step { w = * [ u.w | u <- #in ] }`,
			wantSub: "requires a float body",
			mode:    Incremental,
		},
		{
			name:    "type-error-propagates",
			src:     `init { local w : float = true };step { w = 1.0 }`,
			wantSub: "initialized with",
			mode:    Incremental,
		},
		{
			name:    "parse-error-propagates",
			src:     `init { local w : float = };step { w = 1.0 }`,
			wantSub: "syntax",
			mode:    Incremental,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, Options{Mode: tc.mode})
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
	// int product in Baseline mode is scratch and therefore fine.
	if _, err := Compile(`init { local w : int = 2 };
step { w = * [ u.w | u <- #in ] }`, Options{Mode: Baseline}); err != nil {
		t.Fatalf("baseline int product should compile: %v", err)
	}
}

func TestCompileDoesNotMutateInput(t *testing.T) {
	srcProg, err := Compile(programs.MustSource("pagerank"), Options{Mode: Incremental})
	if err != nil {
		t.Fatal(err)
	}
	before := ast.Print(srcProg.Source)
	if _, err := CompileAST(srcProg.Source, Options{Mode: Baseline}); err != nil {
		t.Fatal(err)
	}
	if after := ast.Print(srcProg.Source); after != before {
		t.Fatalf("CompileAST mutated its input:\n%s\nvs\n%s", before, after)
	}
}

func TestUsageFlags(t *testing.T) {
	if p := compileT(t, "cc", Incremental); !p.UsesNeighbors {
		t.Fatal("cc must use #neighbors")
	}
	p := compileT(t, "hits", Incremental)
	if !p.UsesIn || !p.UsesOut {
		t.Fatalf("hits flags = in:%v out:%v, want both", p.UsesIn, p.UsesOut)
	}
}

func TestParamSpecs(t *testing.T) {
	p := compileT(t, "sssp", Incremental)
	if len(p.Params) != 1 || p.Params[0].Name != "src" || p.Params[0].Default != 0 {
		t.Fatalf("params = %+v", p.Params)
	}
	if p.Params[0].Type != types.Int {
		t.Fatalf("param type = %v", p.Params[0].Type)
	}
}

func TestProgramString(t *testing.T) {
	p := compileT(t, "pagerank", Incremental)
	s := p.String()
	for _, want := range []string{"mode: dV", "state (48 bytes)", "group 0", "site 0", "phase 0 (iter i)", "until: i >= 30"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Program.String missing %q:\n%s", want, s)
		}
	}
}

// ---------------------------------------------------------------------------
// Algebra properties (Eq. 11): for every invertible ⊞, applying the
// synthesized Δ to the memoized accumulator equals re-aggregating with the
// new value.

func TestDeltaEquationSum(t *testing.T) {
	f := func(acc, m, m2 float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 1e6)
		}
		acc, m, m2 = clamp(acc), clamp(m), clamp(m2)
		// x ⊞ m' vs (x ⊞ m) ⊞ Δ with Δ = m' − m.
		lhs := acc + m2
		rhs := (acc + m) + (m2 - m)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaEquationProd(t *testing.T) {
	f := func(acc, m, m2 float64) bool {
		clamp := func(x float64) float64 {
			x = math.Mod(x, 1000)
			if math.Abs(x) < 1e-3 || math.IsNaN(x) {
				return 1
			}
			return x
		}
		acc, m, m2 = clamp(acc), clamp(m), clamp(m2)
		lhs := acc * m2
		rhs := (acc * m) * (m2 / m)
		return math.Abs(lhs-rhs) <= 1e-6*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaEquationMinMonotone(t *testing.T) {
	// For min under monotone updates (m' <= m), the new value is its own Δ.
	f := func(acc, m, drop float64) bool {
		if math.IsNaN(acc) || math.IsNaN(m) || math.IsNaN(drop) {
			return true
		}
		m2 := m - math.Abs(drop)
		lhs := math.Min(acc, m2)
		rhs := math.Min(math.Min(acc, m), m2)
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityAndAbsorbingTables(t *testing.T) {
	ops := []ast.AggOp{ast.AggSum, ast.AggProd, ast.AggMin, ast.AggMax, ast.AggOr, ast.AggAnd}
	for _, op := range ops {
		id := Identity(op)
		for _, x := range []float64{0, 1, -3.5, 42} {
			if op == ast.AggOr || op == ast.AggAnd {
				if x != 0 && x != 1 {
					continue
				}
			}
			if got := Apply(op, id, x); got != x {
				t.Errorf("%v: identity ⊞ %v = %v, want %v", op, x, got, x)
			}
		}
		if abs, ok := Absorbing(op); ok {
			for _, x := range []float64{0, 1} {
				if got := Apply(op, abs, x); got != abs {
					t.Errorf("%v: absorbing ⊞ %v = %v, want %v", op, x, got, abs)
				}
			}
			if !op.Multiplicative() {
				t.Errorf("%v has an absorbing element but is not multiplicative", op)
			}
		}
	}
	if Identity(ast.AggMin) != math.Inf(1) || Identity(ast.AggMax) != math.Inf(-1) {
		t.Fatal("min/max identities must be ±∞")
	}
}

func TestIterBodyReadingCounterDisablesHalts(t *testing.T) {
	p := compileT(t, "prod", Incremental) // prod.dv reads k in its body
	if p.Phases[0].Halts {
		t.Fatal("iteration-dependent body must not halt by default")
	}
	p2 := compileT(t, "pagerank", Incremental) // body does not read i
	if !p2.Phases[0].Halts {
		t.Fatal("pagerank must halt by default")
	}
}
