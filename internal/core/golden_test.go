package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/programs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden transformation outputs")

// TestGoldenTransformations pins the complete compiled-program rendering
// (layout, groups, sites, transformed bodies) for representative programs
// and modes, so any change to a pass shows up as a reviewable diff.
// Regenerate with: go test ./internal/core -run TestGolden -update-golden
func TestGoldenTransformations(t *testing.T) {
	cases := []struct {
		file    string
		program string
		mode    Mode
	}{
		{"pagerank_dv.golden", "pagerank", Incremental},
		{"pagerank_dvstar.golden", "pagerank", Baseline},
		{"prod_dv.golden", "prod", Incremental},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			prog, err := Compile(programs.MustSource(tc.program), Options{Mode: tc.mode})
			if err != nil {
				t.Fatal(err)
			}
			got := prog.String()
			path := filepath.Join("testdata", tc.file)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Fatalf("compiled output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
