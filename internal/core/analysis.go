package core

import (
	"repro/internal/deltav/ast"
)

// Halt-safety analysis.
//
// P6 (halt addition, §6.6) is justified by the paper's observation that
// "once a vertex has computed a specific value and sent its messages, the
// only way the values of the messages that it sends can change is by it
// receiving new messages". That holds only when re-executing the statement
// body with unchanged accumulators is a no-op on the vertex state — i.e.
// the body is re-execution stable: F(F(x)) = F(x) for the state F produces.
//
// bodyStable verifies this with an ordered dataflow over the body's field
// assignments. An assignment x = e is stable when every input it reads is
// at its post-body value already, where the admissible inputs are:
//
//   - literals, params, graphSize, id, |g| (static per vertex);
//   - aggregations (their memoized accumulators only move on messages);
//   - fields not assigned anywhere in the body;
//   - fields unconditionally assigned EARLIER in the body whose own
//     assignments are stable (the read sees this superstep's value);
//   - x itself read before its assignment, when every occurrence sits
//     under idempotent structure only — min/max, && and ||, or the
//     branches (not the condition) of an if — so x = min x m and
//     reach = reach || r are stable, while seen = seen + 1 is not.
//
// Reading a field that is assigned *later* in the body (or only
// conditionally) is unstable: the first execution sees the previous
// superstep's value while a re-execution would see the new one — the
// divergence the differential fuzzer caught. The iteration counter is an
// unstable input (it changes every superstep regardless of messages).
// ReExecutionStable reports whether an iter body is re-execution stable
// (F(F(x)) = F(x) for the state update F), the property P6's
// halt-by-default relies on. The compiler uses it to decide whether a
// compiled phase may vote to halt; the vet suite's initonly analyzer uses
// it to warn when a body disables halting.
func ReExecutionStable(body ast.Expr, iterVar string) bool {
	return bodyStable(body, iterVar)
}

func bodyStable(body ast.Expr, iterVar string) bool {
	a := &stabilityAnalysis{
		iterVar:     iterVar,
		lets:        map[string][]readSet{},
		allAssigned: map[string]bool{},
		done:        map[string]bool{},
	}
	// Pass A: which fields does the body assign at all?
	a.collectAssigned(body)
	// Pass B: ordered classification of every assignment's reads.
	a.classify(body, nil)
	if a.unanalyzable {
		return false
	}

	// Least fixpoint over the "needs stable(y)" edges.
	stable := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for field, recs := range a.records { //lint:allow maprange — monotone fixpoint; converges to the same set in any order
			if stable[field] {
				continue
			}
			ok := true
			for _, r := range recs {
				if r.unstable {
					ok = false
					break
				}
				for _, y := range r.needs {
					if !stable[y] {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				stable[field] = true
				changed = true
			}
		}
	}
	for field := range a.records { //lint:allow maprange — all-quantified check, any order
		if !stable[field] {
			return false
		}
	}
	return true
}

// readSet is the raw inputs of an expression: field name → whether some
// occurrence is outside idempotent structure; iterRead marks a read of the
// iteration counter.
type readSet struct {
	fields   map[string]bool
	iterRead bool
}

func (r *readSet) merge(o readSet) {
	if o.iterRead {
		r.iterRead = true
	}
	for f, outside := range o.fields { //lint:allow maprange — commutative OR-merge
		r.fields[f] = r.fields[f] || outside
	}
}

// assignRecord is one classified assignment: it is stable iff !unstable
// and every field in needs is stable.
type assignRecord struct {
	needs    []string
	unstable bool
}

type stabilityAnalysis struct {
	iterVar      string
	lets         map[string][]readSet // let var → reads of its init (scoped)
	allAssigned  map[string]bool      // fields assigned anywhere in the body
	done         map[string]bool      // fields unconditionally assigned so far
	records      map[string][]assignRecord
	unanalyzable bool
}

func (a *stabilityAnalysis) collectAssigned(e ast.Expr) {
	ast.Walk(e, func(x ast.Expr) bool {
		if asg, ok := x.(*ast.Assign); ok && asg.IsField {
			a.allAssigned[asg.Name] = true
		}
		return true
	})
}

// classify walks the body in execution order. conds carries the reads of
// all enclosing if-conditions; assignments under conditions don't enter
// the done set (a later reader can't rely on them having run).
func (a *stabilityAnalysis) classify(e ast.Expr, conds []readSet) {
	if a.records == nil {
		a.records = map[string][]assignRecord{}
	}
	switch n := e.(type) {
	case *ast.Seq:
		for _, it := range n.Items {
			a.classify(it, conds)
		}
	case *ast.Let:
		a.lets[n.Name] = append(a.lets[n.Name], a.reads(n.Init, false))
		a.classify(n.Body, conds)
		a.lets[n.Name] = a.lets[n.Name][:len(a.lets[n.Name])-1]
	case *ast.If:
		cr := a.reads(n.Cond, false)
		inner := append(append([]readSet(nil), conds...), cr)
		a.classify(n.Then, inner)
		if n.Else != nil {
			a.classify(n.Else, inner)
		}
	case *ast.Assign:
		if !n.IsField {
			// Writes to let temporaries don't persist across supersteps.
			// Their value flows were already captured when the let was
			// bound; a re-read after an assignment is rare and the
			// conservative treatment is to fold the assigned value's
			// reads into the let's read set — approximate by treating
			// the whole body as unanalyzable when a let is reassigned
			// from an unstable source. Keep it simple and conservative:
			rs := a.reads(n.Value, false)
			if rs.iterRead {
				a.unanalyzable = true
			}
			for _, stack := range [][]readSet{a.lets[n.Name]} {
				if len(stack) > 0 {
					stack[len(stack)-1].merge(rs)
				}
			}
			return
		}
		rs := a.reads(n.Value, true)
		for _, c := range conds {
			rs.merge(c)
		}
		rec := assignRecord{unstable: rs.iterRead}
		for y, outsideIdem := range rs.fields { //lint:allow maprange — fills a set consumed by all-quantifiers
			switch {
			case y == n.Name && !a.done[y]:
				// Pre-assignment self-read: the previous superstep's
				// value, admissible only under idempotent structure.
				if outsideIdem {
					rec.unstable = true
				}
			case a.done[y]:
				rec.needs = append(rec.needs, y)
			case a.allAssigned[y]:
				// Read of a field assigned later (or only conditionally):
				// first execution and re-execution disagree.
				rec.unstable = true
			default:
				// Unassigned field: cannot change without messages.
			}
		}
		a.records[n.Name] = append(a.records[n.Name], rec)
		if len(conds) == 0 {
			a.done[n.Name] = true
		}
	default:
		// Other statement-position forms don't write state.
	}
}

// reads computes the raw read set of an expression. idem tracks whether
// the current position is still inside idempotent-only structure counted
// from the assignment's root.
func (a *stabilityAnalysis) reads(e ast.Expr, idem bool) readSet {
	rs := readSet{fields: map[string]bool{}}
	a.readsInto(e, idem, &rs)
	return rs
}

func (a *stabilityAnalysis) readsInto(e ast.Expr, idem bool, rs *readSet) {
	switch n := e.(type) {
	case *ast.IntLit, *ast.FloatLit, *ast.BoolLit, *ast.Infty, *ast.GraphSize,
		*ast.VertexID, *ast.Cardinality, *ast.EdgeWeight, nil:
		// Static inputs.
	case *ast.Var:
		if n.Name == a.iterVar && a.iterVar != "" {
			rs.iterRead = true
			return
		}
		if stack := a.lets[n.Name]; len(stack) > 0 {
			// A let var used idempotently still exposes its init's reads
			// non-idempotently (conservative).
			rs.merge(stack[len(stack)-1])
			return
		}
		// Params are static; any other name is a field reference (the
		// analysis runs on the typed source, before Var→Field
		// resolution).
		rs.fields[n.Name] = rs.fields[n.Name] || !idem
	case *ast.Field:
		rs.fields[n.Name] = rs.fields[n.Name] || !idem
	case *ast.Agg:
		// Accumulators only move on messages; the aggregation body reads
		// neighbour state, not local state.
	case *ast.MinMax:
		a.readsInto(n.A, idem, rs)
		a.readsInto(n.B, idem, rs)
	case *ast.Binary:
		childIdem := idem && (n.Op == "&&" || n.Op == "||")
		a.readsInto(n.L, childIdem, rs)
		a.readsInto(n.R, childIdem, rs)
	case *ast.If:
		a.readsInto(n.Cond, false, rs)
		a.readsInto(n.Then, idem, rs)
		if n.Else != nil {
			a.readsInto(n.Else, idem, rs)
		}
	case *ast.Unary:
		a.readsInto(n.X, false, rs)
	case *ast.Let:
		a.lets[n.Name] = append(a.lets[n.Name], a.reads(n.Init, false))
		a.readsInto(n.Body, idem, rs)
		a.lets[n.Name] = a.lets[n.Name][:len(a.lets[n.Name])-1]
	case *ast.Seq:
		// A sequence in value position may contain assignments whose
		// ordering the simple read-set treatment cannot see; be
		// conservative.
		for _, it := range n.Items {
			if asg, ok := it.(*ast.Assign); ok && asg.IsField {
				a.unanalyzable = true
				continue
			}
			a.readsInto(it, false, rs)
		}
	case *ast.Assign:
		if n.IsField {
			a.unanalyzable = true
			return
		}
		sub := a.reads(n.Value, false)
		rs.merge(sub)
	case *ast.NeighborField:
		// Neighbour state: only visible through messages.
	default:
		a.unanalyzable = true
	}
}
