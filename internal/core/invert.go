package core

import "repro/internal/deltav/ast"

// This file exposes the operator- and expression-level facts the VM's
// delta-recomputation planner needs to decide whether a streaming edge
// mutation can be repaired in place (retract the stale contribution, inject
// the new one) or needs a from-scratch rerun. They are compile-time
// properties of the program, so they live next to the passes that
// establish them.

// Invertible reports whether a stale ⊞-contribution can be retracted from a
// memoized accumulator exactly: for sum by adding the negation, for prod by
// multiplying the reciprocal (with §6.4.1 nullary tags covering zeros), and
// for and/or through the same nullary-count machinery. Idempotent operators
// (min/max) destroy the information needed to undo a fold — once a value
// has been absorbed there is no way to tell whether the accumulator still
// depends on it — so removals against them force a rerun.
func Invertible(op ast.AggOp) bool {
	switch op {
	case ast.AggSum, ast.AggProd, ast.AggAnd, ast.AggOr:
		return true
	}
	return false
}

// SlotTopology reports which graph-topology inputs an expression reads:
// in-degree, out-degree (DirOut and DirNeighbors both resolve to the
// out-adjacency at the sender), and the vertex count. A site whose slot
// expression reads a degree produces different contributions on every
// incident edge when a mutation changes that degree — PageRank's
// rank/#neighbors is the canonical case — so the repair planner must
// re-send over the sender's whole adjacency, not just the mutated arcs.
func SlotTopology(e ast.Expr) (readsInDeg, readsOutDeg, readsSize bool) {
	ast.Walk(e, func(x ast.Expr) bool {
		switch n := x.(type) {
		case *ast.Cardinality:
			if n.G == ast.DirIn {
				readsInDeg = true
			} else {
				readsOutDeg = true
			}
		case *ast.GraphSize:
			readsSize = true
		}
		return true
	})
	return
}

// SelfFoldingFields lists the user vertex-state fields a phase body folds
// with their own previous value — assignments like SSSP's
// `dist = min dist d` where the assigned field is read inside its own
// right-hand side. Such a field memoizes history beyond the aggregation
// sites: even when a table site can retract a stale contribution exactly
// (§4.2.1), the body's self-fold clamps the field to its converged value,
// so a mutation that loosens an aggregate would leave the field pinned at
// a fixpoint no from-scratch run reaches. The repair planner uses this to
// admit only tightening transitions for clamped programs.
//
// userFields bounds the slots considered (Layout.UserFields): the
// compiler's synthesized fields ($acc_*, $old_*, …) self-fold by
// construction, and retractions against those are already policed by the
// Δ-message machinery itself.
func SelfFoldingFields(body ast.Expr, userFields int) []string {
	var fields []string
	seen := make(map[int]bool)
	ast.Walk(body, func(x ast.Expr) bool {
		a, ok := x.(*ast.Assign)
		if !ok || !a.IsField || a.Slot >= userFields || seen[a.Slot] {
			return true
		}
		ast.Walk(a.Value, func(y ast.Expr) bool {
			if f, isField := y.(*ast.Field); isField && f.Slot == a.Slot {
				seen[a.Slot] = true
				fields = append(fields, a.Name)
				return false
			}
			return true
		})
		return true
	})
	return fields
}

// ClampSafe reports whether moving one arc's ⊞-contribution from oldV to
// newV (absent sides pass present=false) can only tighten an aggregate —
// i.e. move it in the direction an idempotent or absorbing fold absorbs.
// A self-folding body (see SelfFoldingFields) masks any loosening: the
// clamped field keeps its converged value, so the planner only repairs
// transitions where the new contribution subsumes the old one. Sum and
// prod folds have no tightening direction, so with a clamping body every
// value-changing transition is unsafe.
func ClampSafe(op ast.AggOp, oldV float64, oldPresent bool, newV float64, newPresent bool) bool {
	id := Identity(op)
	if !oldPresent {
		oldV = id
	}
	if !newPresent {
		newV = id
	}
	if oldV == newV {
		return true
	}
	switch op {
	case ast.AggMin, ast.AggMax, ast.AggOr, ast.AggAnd:
		return Apply(op, newV, oldV) == newV
	}
	return false
}

// ReadsFixpoint reports whether an until{} condition consults the fixpoint
// aggregator. A delta repair is only meaningful for computations that stop
// when they converge: an iteration-count bound would cut the repair wave
// short (or run it long), producing a state no from-scratch run matches.
func ReadsFixpoint(e ast.Expr) bool {
	found := false
	ast.Walk(e, func(x ast.Expr) bool {
		if _, ok := x.(*ast.FixpointRef); ok {
			found = true
		}
		return !found
	})
	return found
}

// ReadsIterVar reports whether an expression reads the enclosing iter
// statement's iteration counter. A warm restart resets the counter (the
// repair wave needs its own iteration budget), which would change the
// meaning of an iteration-dependent body, so the planner rejects those.
func ReadsIterVar(e ast.Expr) bool {
	found := false
	ast.Walk(e, func(x ast.Expr) bool {
		if v, ok := x.(*ast.Var); ok && v.Slot == IterVarSlot {
			found = true
		}
		return !found
	})
	return found
}
