package core

import (
	"repro/internal/deltav/ast"
)

// Variable slot encoding used by Var nodes after resolution:
//
//	slot >= 0      let-bound variable, index into the evaluation stack
//	slot == -1     the enclosing iter statement's counter
//	slot <= -2     program parameter with index -(slot+2)
const (
	// IterVarSlot marks a Var as the iteration counter.
	IterVarSlot = -1
)

// ParamSlot encodes parameter index i as a Var slot.
func ParamSlot(i int) int { return -(i + 2) }

// ParamIndex decodes a parameter Var slot.
func ParamIndex(slot int) int { return -slot - 2 }

// resolveAll assigns layout slots to every field reference, stack slots to
// let variables, converts Var nodes that name vertex-state fields into
// Field nodes, fills per-site old-slot redirect tables, and computes the
// program's adjacency usage flags.
func (c *compiler) resolveAll() {
	// Per-site old-slot redirects for Δ evaluation.
	for _, s := range c.out.Sites {
		g := c.out.Groups[s.Group]
		if !g.changeDriven() {
			continue
		}
		s.OldSlots = make([]int, len(s.Fields))
		for i, fslot := range s.Fields {
			name := oldName(g.ID, c.out.Layout.Fields[fslot].Name)
			s.OldSlots[i] = c.fieldSlot[name]
		}
	}

	r := &resolver{c: c, letSlots: map[string][]int{}}
	for _, s := range c.out.Sites {
		s.SlotExpr = r.expr(s.SlotExpr)
	}
	c.out.Init = r.expr(c.in.Init)
	for pi := range c.out.Phases {
		ph := &c.out.Phases[pi]
		r.iterVar = ph.IterVar
		ph.Body = r.expr(ph.Body)
		if ph.Until != nil {
			ph.Until = r.expr(ph.Until)
		}
		r.iterVar = ""
	}
	c.out.MaxLetDepth = r.maxDepth
}

type resolver struct {
	c        *compiler
	iterVar  string
	letDepth int
	maxDepth int
	letSlots map[string][]int
}

func (r *resolver) fieldSlot(name string) int {
	slot, ok := r.c.fieldSlot[name]
	if !ok {
		r.c.errf("internal: unresolved field %q", name)
	}
	return slot
}

func (r *resolver) markDir(g ast.GraphDir) {
	switch g {
	case ast.DirIn:
		r.c.out.UsesIn = true
	case ast.DirOut:
		r.c.out.UsesOut = true
	default:
		r.c.out.UsesNeighbors = true
	}
}

// expr resolves in place (the compiler owns the cloned tree) and returns
// the node, replacing Var nodes that name fields with Field nodes.
func (r *resolver) expr(e ast.Expr) ast.Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *ast.IntLit, *ast.FloatLit, *ast.BoolLit, *ast.Infty, *ast.GraphSize,
		*ast.VertexID, *ast.FixpointRef, *ast.EdgeWeight, *ast.Halt,
		*ast.MsgSlot, *ast.MsgIsNull, *ast.MsgPrevNull:
		return e
	case *ast.Cardinality:
		r.markDir(n.G)
		return e
	case *ast.Var:
		if stack := r.letSlots[n.Name]; len(stack) > 0 {
			n.Slot = stack[len(stack)-1]
			return n
		}
		if n.Name == r.iterVar && r.iterVar != "" {
			n.Slot = IterVarSlot
			return n
		}
		if idx, ok := r.c.paramIdx[n.Name]; ok {
			n.Slot = ParamSlot(idx)
			return n
		}
		if slot, ok := r.c.fieldSlot[n.Name]; ok {
			return &ast.Field{Base: ast.Base{P: n.P, Ty: n.Ty}, Name: n.Name, Slot: slot}
		}
		r.c.errf("internal: unresolved variable %q", n.Name)
	case *ast.Field:
		n.Slot = r.fieldSlot(n.Name)
		return n
	case *ast.OldField:
		n.Slot = r.fieldSlot(n.Name)
		return n
	case *ast.Changed:
		n.Slot = r.fieldSlot(n.Name)
		n.OldSlot = r.fieldSlot(n.OldName)
		return n
	case *ast.Unary:
		n.X = r.expr(n.X)
		return n
	case *ast.Binary:
		n.L = r.expr(n.L)
		n.R = r.expr(n.R)
		return n
	case *ast.MinMax:
		n.A = r.expr(n.A)
		n.B = r.expr(n.B)
		return n
	case *ast.If:
		n.Cond = r.expr(n.Cond)
		n.Then = r.expr(n.Then)
		if n.Else != nil {
			n.Else = r.expr(n.Else)
		}
		return n
	case *ast.Let:
		n.Init = r.expr(n.Init)
		n.Slot = r.letDepth
		r.letDepth++
		if r.letDepth > r.maxDepth {
			r.maxDepth = r.letDepth
		}
		r.letSlots[n.Name] = append(r.letSlots[n.Name], n.Slot)
		n.Body = r.expr(n.Body)
		r.letSlots[n.Name] = r.letSlots[n.Name][:len(r.letSlots[n.Name])-1]
		r.letDepth--
		return n
	case *ast.Local:
		n.Init = r.expr(n.Init)
		n.Slot = r.fieldSlot(n.Name)
		return n
	case *ast.Assign:
		n.Value = r.expr(n.Value)
		if stack := r.letSlots[n.Name]; len(stack) > 0 {
			n.IsField = false
			n.Slot = stack[len(stack)-1]
			return n
		}
		n.IsField = true
		n.Slot = r.fieldSlot(n.Name)
		return n
	case *ast.Seq:
		for i := range n.Items {
			n.Items[i] = r.expr(n.Items[i])
		}
		return n
	case *ast.ForNeighbors:
		r.markDir(n.G)
		n.Body = r.expr(n.Body)
		return n
	case *ast.Send:
		for i := range n.Payload {
			n.Payload[i] = r.expr(n.Payload[i])
		}
		return n
	case *ast.Delta:
		n.X = r.expr(n.X)
		return n
	case *ast.MsgLoop:
		n.Body = r.expr(n.Body)
		return n
	case *ast.TableUpdate, *ast.TableFold:
		return e
	case *ast.Agg, *ast.NeighborField:
		r.c.errf("internal: %T survived aggregation conversion", e)
	}
	r.c.errf("internal: resolver missing case for %T", e)
	return nil
}
