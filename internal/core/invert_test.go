package core

import (
	"math"
	"testing"

	"repro/internal/deltav/ast"
)

// TestSelfFoldingFields pins the clamp analysis against the stock corpus:
// the monotone programs (sssp, wcc, cc, reach) fold their result field
// with its own previous value, while pagerank recomputes its fields as
// pure functions of the aggregates each round. Synthesized fields
// ($acc_*, $old_*) must never be reported — the compiled incremental body
// self-folds every accumulator by construction.
func TestSelfFoldingFields(t *testing.T) {
	cases := map[string][]string{
		"sssp":     {"dist"},
		"wcc":      {"cid"},
		"cc":       {"cid"},
		"reach":    {"reach"},
		"pagerank": nil,
	}
	for _, mode := range []Mode{Incremental, MemoTable} {
		for name, want := range cases {
			p := compileT(t, name, mode)
			got := SelfFoldingFields(p.Phases[0].Body, p.Layout.UserFields)
			if len(got) != len(want) {
				t.Errorf("%s/%s: SelfFoldingFields = %v, want %v", name, mode, got, want)
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s/%s: SelfFoldingFields = %v, want %v", name, mode, got, want)
				}
			}
		}
	}
}

// TestClampSafe enumerates the transition classes: injections and
// tightenings pass for idempotent and absorbing operators, retractions
// and loosenings fail, and sum/prod (no tightening direction) only pass
// value-preserving transitions.
func TestClampSafe(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name             string
		op               ast.AggOp
		oldV             float64
		oldPresent       bool
		newV             float64
		newPresent, want bool
	}{
		{"min-inject", ast.AggMin, 0, false, 3, true, true},
		{"min-tighten", ast.AggMin, 5, true, 3, true, true},
		{"min-loosen", ast.AggMin, 3, true, 5, true, false},
		{"min-remove", ast.AggMin, 3, true, 0, false, false},
		{"min-remove-identity", ast.AggMin, inf, true, 0, false, true},
		{"max-tighten", ast.AggMax, 3, true, 5, true, true},
		{"max-loosen", ast.AggMax, 5, true, 3, true, false},
		{"or-gain-true", ast.AggOr, 0, true, 1, true, true},
		{"or-lose-true", ast.AggOr, 1, true, 0, false, false},
		{"and-gain-false", ast.AggAnd, 1, true, 0, true, true},
		{"and-lose-false", ast.AggAnd, 0, true, 1, true, false},
		{"sum-same", ast.AggSum, 2, true, 2, true, true},
		{"sum-change", ast.AggSum, 2, true, 3, true, false},
		{"sum-remove-zero", ast.AggSum, 0, true, 0, false, true},
		{"prod-remove-one", ast.AggProd, 1, true, 1, false, true},
		{"prod-change", ast.AggProd, 2, true, 4, true, false},
	}
	for _, tc := range cases {
		if got := ClampSafe(tc.op, tc.oldV, tc.oldPresent, tc.newV, tc.newPresent); got != tc.want {
			t.Errorf("%s: ClampSafe = %v, want %v", tc.name, got, tc.want)
		}
	}
}
