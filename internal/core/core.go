// Package core implements the paper's primary contribution: the family of
// compile-time program transformations that automatically incrementalize a
// vertex-centric ΔV program (paper §6).
//
// The pipeline mirrors the paper's passes:
//
//	P1 Aggregation conversion (§6.1, Eq. 3): pull-based aggregations are
//	   A-normalized, assigned aggregation sites and send groups, and
//	   replaced by receive loops over messages plus accumulator reads.
//	P2 Adding vertex state (§6.2, Eq. 4): for every field feeding a send,
//	   an $old_f field remembers the most recently sent value.
//	P3 Inserting change checks (§6.3, Eqs. 5–7): a per-group $dirty bit
//	   gates sends, with the check lifted out of the broadcast loop.
//	P4 Incrementalizing aggregations (§6.4, Eqs. 8–9): receive loops become
//	   memoized accumulators; multiplicative operators get the
//	   ($nn, $nulls, $acc) triple with nullary tracking.
//	P5 Δ-message insertion (§6.5, Eqs. 10–11): payload slots are wrapped in
//	   Delta nodes whose synthesized ∆ function satisfies
//	   x ⊞ m′ ≃ (x ⊞ m) ⊞ ∆_m(m′).
//	P6 Addition of halts (§6.6, Eq. 12): halt is appended to every
//	   statement body, making halted the default vertex state.
//
// Three compile modes reproduce the paper's evaluation variants: Incremental
// (ΔV), Baseline (ΔV★ — no message-reduction optimizations), and MemoTable
// (the §4.2.1 lookup-table strawman used as an ablation). Idempotent
// aggregations (min/max) compile identically in Incremental and Baseline
// mode: they are the "pre-incrementalized" standard algorithms of §7.2, so
// ΔV and ΔV★ send exactly the same messages for SSSP and CC, as the paper
// reports.
package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/deltav/ast"
	"repro/internal/deltav/parser"
	"repro/internal/deltav/token"
	"repro/internal/deltav/typer"
	"repro/internal/deltav/types"
)

// Mode selects the compilation variant.
type Mode int

// Compilation modes.
const (
	// Incremental is ΔV: the full P1–P6 pipeline.
	Incremental Mode = iota
	// Baseline is ΔV★: aggregation conversion only. Non-idempotent
	// aggregations recompute from scratch each superstep and vertices
	// re-send full values every body superstep; idempotent aggregations
	// compile as in Incremental mode (see package comment).
	Baseline
	// MemoTable is the §4.2.1 strawman: meaningful-only messages via a
	// per-neighbour lookup table, id-tagged messages, and a full refold of
	// the table at every superstep.
	MemoTable
)

// String names the mode as in the paper.
func (m Mode) String() string {
	switch m {
	case Incremental:
		return "dV"
	case Baseline:
		return "dV*"
	case MemoTable:
		return "dV-memotable"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Options configure compilation.
type Options struct {
	Mode Mode
	// Epsilon is the §9 "allowable slop": a float field counts as changed
	// only when it differs from the most recently sent value by more than
	// Epsilon. Zero is the paper's exact policy. Only meaningful in
	// Incremental mode.
	Epsilon float64
	// MaxIterations bounds every iter statement (safety net for
	// non-terminating until conditions). Defaults to 10_000.
	MaxIterations int
}

// Strategy is how an aggregation site maintains its value across
// supersteps.
type Strategy int

// Aggregation strategies.
const (
	// StrategyMemoized keeps a persistent accumulator updated by
	// Δ-messages (Eq. 8/9).
	StrategyMemoized Strategy = iota
	// StrategyScratch resets the accumulator each superstep and refolds
	// the full messages received (Eq. 3) — ΔV★ behaviour.
	StrategyScratch
	// StrategyTable keeps a per-neighbour value table and refolds it each
	// superstep (§4.2.1) — MemoTable behaviour.
	StrategyTable
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyMemoized:
		return "memoized"
	case StrategyScratch:
		return "scratch"
	}
	return "table"
}

// AggSite is one aggregation occurrence ⊞[e | u <- g] in the program.
type AggSite struct {
	ID   int
	Op   ast.AggOp
	Dir  ast.GraphDir // pull direction (receiver's perspective)
	Type types.Type
	// SlotExpr is the aggregand evaluated at the *sender*: NeighborField
	// references rewritten to the sender's own fields; EdgeWeight refers
	// to the outgoing edge being sent on.
	SlotExpr ast.Expr
	// Fields are the layout slots of the user fields SlotExpr reads (the
	// externally visible fields of §6.3). OldSlots, parallel to Fields,
	// holds the $old_g_f slots used when recomputing the previous slot
	// value for Δ synthesis (nil for scratch sites).
	Fields   []int
	OldSlots []int
	// UsesWeight reports whether SlotExpr reads the edge weight.
	UsesWeight bool

	Group       int // send group
	SlotInGroup int // index of this site's value in the group's message

	Strategy Strategy
	Phase    int // phase whose body contains the site

	// Synthesized field slots (-1 when absent).
	AccSlot    int // $acc
	NNSlot     int // $nn   (multiplicative, memoized)
	NullsSlot  int // $nulls (multiplicative, memoized)
	LastNNSlot int // $lastnn (product, memoized: last non-null sent value)

	// Pos/End anchor the site's source aggregation expression, for
	// repairability diagnostics.
	Pos, End token.Pos
}

// Multiplicative reports whether the site needs §6.4.1 nullary tracking.
func (s *AggSite) Multiplicative() bool {
	return s.Op.Multiplicative() && s.Strategy == StrategyMemoized
}

// SendGroup is a set of aggregation sites with the same push direction and
// strategy; its sites' values travel in a single message per edge.
type SendGroup struct {
	ID int
	// PullDir is the receiver-side direction; PushDir the sender-side one.
	PullDir, PushDir ast.GraphDir
	Sites            []int
	Strategy         Strategy
	DirtySlot        int // $dirty field (-1 for scratch groups)
	Phase            int
}

// FieldKind classifies vertex-state fields.
type FieldKind int

// Field kinds.
const (
	UserField   FieldKind = iota // declared with local in init{}
	OldOfField                   // $old_f: most recently sent value of f (§6.2)
	DirtyField                   // $dirty_g: change flag for a send group (§6.3)
	AccField                     // $acc_s: memoized/scratch accumulator (§6.4)
	NNAccField                   // $nn_s: non-nulled accumulator (§6.4.1)
	NullsField                   // $nulls_s: nullary count (§6.4.1)
	LastNNField                  // $lastnn_s: last non-null sent value (Δ synthesis for *)
)

// String names the field kind.
func (k FieldKind) String() string {
	switch k {
	case UserField:
		return "user"
	case OldOfField:
		return "old"
	case DirtyField:
		return "dirty"
	case AccField:
		return "acc"
	case NNAccField:
		return "nnacc"
	case NullsField:
		return "nulls"
	}
	return "lastnn"
}

// FieldSpec is one vertex-state field in the compiled layout.
type FieldSpec struct {
	Name string
	Type types.Type
	Kind FieldKind
	// Ref is the user-field slot (OldOfField) or site ID (Acc/NN/Nulls/
	// LastNN); -1 otherwise.
	Ref int
}

// Layout is the compiled vertex-state layout.
type Layout struct {
	Fields []FieldSpec
	// UserFields is the number of leading user fields.
	UserFields int
}

// StateMachineBytes is the per-vertex cost of the compiled statement state
// machine (phase counter + iteration counter), charged to every compiled
// variant as in the paper's Table 2 discussion.
const StateMachineBytes = 8

// ByteSize returns the vertex-state size in bytes: each field per its type
// plus the state-machine overhead, rounded up to 8 (matching the C++
// struct accounting the paper uses).
func (l *Layout) ByteSize() int {
	n := StateMachineBytes
	for _, f := range l.Fields {
		n += f.Type.ByteSize()
	}
	if rem := n % 8; rem != 0 {
		n += 8 - rem
	}
	return n
}

// Slot returns the slot of the named field, or -1.
func (l *Layout) Slot(name string) int {
	for i, f := range l.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// PhaseKind distinguishes step and iter phases.
type PhaseKind int

// Phase kinds.
const (
	PhaseStep PhaseKind = iota
	PhaseIter
)

// Phase is one statement of the compiled state machine.
type Phase struct {
	Kind    PhaseKind
	IterVar string
	// Body is the fully transformed statement body (internal AST forms).
	Body ast.Expr
	// Until is the loop condition (nil for step); master-evaluable.
	Until ast.Expr
	// Groups and Sites used by this phase.
	Groups []int
	Sites  []int
	// Halts reports whether P6 appended a halt to this phase's body.
	Halts bool
}

// ParamSpec is a program parameter.
type ParamSpec struct {
	Name    string
	Type    types.Type
	Default float64 // numeric encoding (bools: 0/1)
}

// Program is a fully compiled ΔV program, ready for the VM.
type Program struct {
	Source *ast.Program // untouched input AST
	Mode   Mode
	Opts   Options

	Params []ParamSpec
	Layout Layout
	Init   ast.Expr // resolved init body
	Phases []Phase
	Sites  []*AggSite
	Groups []*SendGroup

	// MaxSlotsPerGroup is the widest message in slots.
	MaxSlotsPerGroup int
	// MaxLetDepth is the deepest let nesting (evaluation stack size).
	MaxLetDepth int
	// UsesNeighbors reports whether any site or cardinality uses
	// #neighbors (requires an undirected graph).
	UsesNeighbors bool
	// UsesIn/UsesOut report whether in-/out-adjacency is read.
	UsesIn, UsesOut bool
}

// Compile parses, type-checks and compiles ΔV source text.
func Compile(src string, opts Options) (*Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileAST(prog, opts)
}

// CompileAST compiles a parsed program. The input AST is not modified.
func CompileAST(prog *ast.Program, opts Options) (*Program, error) {
	info, err := typer.Check(prog)
	if err != nil {
		return nil, err
	}
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 10_000
	}
	c := &compiler{
		in:   ast.CloneProgram(prog),
		info: info,
		out: &Program{
			Source: prog,
			Mode:   opts.Mode,
			Opts:   opts,
		},
	}
	if err := c.run(); err != nil {
		return nil, err
	}
	return c.out, nil
}

// Identity returns ⊞'s identity element (default_init of §6.1) as a
// float64-encoded value: x ⊞ identity == x.
func Identity(op ast.AggOp) float64 {
	switch op {
	case ast.AggSum:
		return 0
	case ast.AggProd:
		return 1
	case ast.AggMin:
		return math.Inf(1)
	case ast.AggMax:
		return math.Inf(-1)
	case ast.AggOr:
		return 0 // false
	case ast.AggAnd:
		return 1 // true
	}
	return 0
}

// Absorbing returns ⊞'s absorbing ("nullary", §6.4.1) element and whether
// one exists: absorbing ⊞ x == absorbing.
func Absorbing(op ast.AggOp) (float64, bool) {
	switch op {
	case ast.AggProd:
		return 0, true
	case ast.AggAnd:
		return 0, true // false
	case ast.AggOr:
		return 1, true // true
	}
	return 0, false
}

// Apply evaluates a ⊞ b on float64-encoded values.
func Apply(op ast.AggOp, a, b float64) float64 {
	switch op {
	case ast.AggSum:
		return a + b
	case ast.AggProd:
		return a * b
	case ast.AggMin:
		return math.Min(a, b)
	case ast.AggMax:
		return math.Max(a, b)
	case ast.AggOr:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	case ast.AggAnd:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	}
	return a
}

// String renders the compiled program: layout, groups, sites, and the
// transformed bodies in the paper's pseudo-syntax. Golden tests pin this
// output for the paper's running example.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode: %s\n", p.Mode)
	fmt.Fprintf(&b, "state (%d bytes):\n", p.Layout.ByteSize())
	for i, f := range p.Layout.Fields {
		fmt.Fprintf(&b, "  [%d] %s %s (%s)\n", i, f.Name, f.Type, f.Kind)
	}
	for _, g := range p.Groups {
		fmt.Fprintf(&b, "group %d: pull %s push %s sites %v strategy %s dirty-slot %d\n",
			g.ID, g.PullDir, g.PushDir, g.Sites, g.Strategy, g.DirtySlot)
	}
	for _, s := range p.Sites {
		fmt.Fprintf(&b, "site %d: %s over %s slot-expr %s strategy %s acc-slot %d\n",
			s.ID, s.Op, s.Dir, ast.ExprString(s.SlotExpr), s.Strategy, s.AccSlot)
	}
	b.WriteString("init:\n")
	b.WriteString(indentLines(ast.ExprString(p.Init)))
	for i, ph := range p.Phases {
		kind := "step"
		if ph.Kind == PhaseIter {
			kind = "iter " + ph.IterVar
		}
		fmt.Fprintf(&b, "phase %d (%s):\n", i, kind)
		b.WriteString(indentLines(ast.ExprString(ph.Body)))
		if ph.Until != nil {
			fmt.Fprintf(&b, "until: %s\n", ast.ExprString(ph.Until))
		}
	}
	return b.String()
}

func indentLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
