package core

import (
	"fmt"

	"repro/internal/deltav/ast"
	"repro/internal/deltav/typer"
	"repro/internal/deltav/types"
)

// compiler drives the pass pipeline over a cloned, type-checked AST.
type compiler struct {
	in   *ast.Program
	info *typer.Info
	out  *Program

	fieldSlot map[string]int // all fields (user + synthesized) by name
	paramIdx  map[string]int
}

type compileError struct{ err error }

func (c *compiler) errf(format string, args ...any) {
	panic(compileError{fmt.Errorf("deltav: compile: %s", fmt.Sprintf(format, args...))})
}

func (c *compiler) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileError); ok {
				err = ce.err
				return
			}
			panic(r)
		}
	}()
	c.fieldSlot = map[string]int{}
	c.paramIdx = map[string]int{}

	c.collectParams()
	c.collectUserFields()

	// P1: aggregation conversion. Builds sites/groups and rewrites each
	// statement body so every aggregation reads its accumulator.
	bodies := make([]ast.Expr, len(c.in.Stmts))
	for pi, s := range c.in.Stmts {
		switch st := s.(type) {
		case *ast.Step:
			bodies[pi] = c.convertAggregations(st.Body, pi)
			c.out.Phases = append(c.out.Phases, Phase{Kind: PhaseStep})
		case *ast.Iter:
			bodies[pi] = c.convertAggregations(st.Body, pi)
			c.out.Phases = append(c.out.Phases, Phase{Kind: PhaseIter, IterVar: st.Var, Until: st.Until})
		}
	}

	// P2: add $old_(group,field) state and $lastnn for memoized products.
	c.addOldFields()
	// P3: add $dirty state per change-driven group.
	c.addDirtyFields()
	// P4: add accumulator state ($acc always; $nn/$nulls for
	// multiplicative memoized sites).
	c.addAccFields()

	// Assemble each phase: receive prologue ++ body ++ send epilogue
	// (P3/P5 shapes) ++ halt (P6).
	for pi := range c.out.Phases {
		items := c.receivePrologue(pi)
		items = append(items, flatten(bodies[pi])...)
		items = append(items, c.sendEpilogue(pi)...)
		if c.haltsInserted(pi) {
			items = append(items, &ast.Halt{Base: ast.Base{Ty: types.Unit}})
			c.out.Phases[pi].Halts = true
		}
		c.out.Phases[pi].Body = &ast.Seq{Base: ast.Base{Ty: types.Unit}, Items: items}
		for _, g := range c.out.Groups {
			if g.Phase == pi {
				c.out.Phases[pi].Groups = append(c.out.Phases[pi].Groups, g.ID)
			}
		}
		for _, s := range c.out.Sites {
			if s.Phase == pi {
				c.out.Phases[pi].Sites = append(c.out.Phases[pi].Sites, s.ID)
			}
		}
	}

	// Resolve names to slots everywhere and compute usage flags.
	c.resolveAll()
	for _, g := range c.out.Groups {
		if n := len(g.Sites); n > c.out.MaxSlotsPerGroup {
			c.out.MaxSlotsPerGroup = n
		}
	}
	return nil
}

func (c *compiler) collectParams() {
	for i, p := range c.in.Params {
		var def float64
		switch d := p.Default.(type) {
		case *ast.IntLit:
			def = float64(d.Val)
		case *ast.FloatLit:
			def = d.Val
		case *ast.BoolLit:
			if d.Val {
				def = 1
			}
		}
		c.out.Params = append(c.out.Params, ParamSpec{Name: p.Name, Type: p.DeclType, Default: def})
		c.paramIdx[p.Name] = i
	}
}

func (c *compiler) collectUserFields() {
	for _, f := range c.info.Fields {
		c.addField(FieldSpec{Name: f.Name, Type: f.Type, Kind: UserField, Ref: -1})
	}
	c.out.Layout.UserFields = len(c.out.Layout.Fields)
}

func (c *compiler) addField(f FieldSpec) int {
	if _, dup := c.fieldSlot[f.Name]; dup {
		c.errf("internal: duplicate field %q", f.Name)
	}
	slot := len(c.out.Layout.Fields)
	c.out.Layout.Fields = append(c.out.Layout.Fields, f)
	c.fieldSlot[f.Name] = slot
	return slot
}

// strategyFor implements the mode table from the package comment.
func (c *compiler) strategyFor(op ast.AggOp) Strategy {
	switch c.out.Mode {
	case Incremental:
		return StrategyMemoized
	case MemoTable:
		return StrategyTable
	default: // Baseline
		if op.Idempotent() {
			// The "pre-incrementalized" standard compilation (§7.2).
			return StrategyMemoized
		}
		return StrategyScratch
	}
}

// convertAggregations is P1 (§6.1): every ⊞[e | u <- g] becomes a read of
// its accumulator field, and an aggregation site + send group is recorded.
func (c *compiler) convertAggregations(body ast.Expr, phase int) ast.Expr {
	return ast.Rewrite(body, func(e ast.Expr) ast.Expr {
		agg, ok := e.(*ast.Agg)
		if !ok {
			return e
		}
		site := c.newSite(agg, phase)
		return &ast.Field{
			Base: ast.Base{P: agg.P, Ty: agg.Type()},
			Name: accName(site.ID),
			Slot: -1,
		}
	})
}

func accName(site int) string    { return fmt.Sprintf("$acc_s%d", site) }
func nnName(site int) string     { return fmt.Sprintf("$nn_s%d", site) }
func nullsName(site int) string  { return fmt.Sprintf("$nulls_s%d", site) }
func lastnnName(site int) string { return fmt.Sprintf("$lastnn_s%d", site) }
func dirtyName(group int) string { return fmt.Sprintf("$dirty_g%d", group) }
func oldName(group int, field string) string {
	return fmt.Sprintf("$old_g%d_%s", group, field)
}

func (c *compiler) newSite(agg *ast.Agg, phase int) *AggSite {
	s := &AggSite{
		ID:       len(c.out.Sites),
		Op:       agg.Op,
		Dir:      agg.G,
		Type:     agg.Type(),
		Strategy: c.strategyFor(agg.Op),
		Phase:    phase,
		AccSlot:  -1, NNSlot: -1, NullsSlot: -1, LastNNSlot: -1,
		Pos: agg.Pos(), End: agg.End(),
	}
	agg.Site = s.ID

	// The sender-side slot expression: u.f → the sender's own field f.
	s.SlotExpr = ast.Rewrite(agg.Body, func(e ast.Expr) ast.Expr {
		if nf, ok := e.(*ast.NeighborField); ok {
			return &ast.Field{Base: ast.Base{P: nf.P, Ty: nf.Type()}, Name: nf.Name, Slot: -1}
		}
		return e
	})
	seen := map[string]bool{}
	ast.Walk(s.SlotExpr, func(e ast.Expr) bool {
		switch n := e.(type) {
		case *ast.Field:
			if !seen[n.Name] {
				seen[n.Name] = true
				s.Fields = append(s.Fields, c.fieldSlot[n.Name])
			}
		case *ast.EdgeWeight:
			s.UsesWeight = true
		}
		return true
	})

	if s.Multiplicative() && s.UsesWeight {
		c.errf("site %d: %s aggregation body may not use ew (nullary tracking needs an edge-independent value)", s.ID, s.Op)
	}
	if s.Op == ast.AggProd && s.Type == types.Int && s.Strategy == StrategyMemoized {
		c.errf("site %d: incrementalized * aggregation requires a float body (Δ-messages are ratios)", s.ID)
	}

	c.out.Sites = append(c.out.Sites, s)
	c.assignGroup(s)
	return s
}

// assignGroup places a site in the send group keyed by (phase, pull
// direction, strategy); one message per edge carries all of a group's
// slots.
func (c *compiler) assignGroup(s *AggSite) {
	for _, g := range c.out.Groups {
		if g.Phase == s.Phase && g.PullDir == s.Dir && g.Strategy == s.Strategy {
			s.Group = g.ID
			s.SlotInGroup = len(g.Sites)
			g.Sites = append(g.Sites, s.ID)
			return
		}
	}
	g := &SendGroup{
		ID:        len(c.out.Groups),
		PullDir:   s.Dir,
		PushDir:   reverseDir(s.Dir),
		Sites:     []int{s.ID},
		Strategy:  s.Strategy,
		DirtySlot: -1,
		Phase:     s.Phase,
	}
	c.out.Groups = append(c.out.Groups, g)
	s.Group = g.ID
	s.SlotInGroup = 0
}

func reverseDir(d ast.GraphDir) ast.GraphDir {
	switch d {
	case ast.DirIn:
		return ast.DirOut
	case ast.DirOut:
		return ast.DirIn
	}
	return ast.DirNeighbors
}

// changeDriven reports whether a group sends only on change (and therefore
// needs dirty bits and old values).
func (g *SendGroup) changeDriven() bool { return g.Strategy != StrategyScratch }

// addOldFields is P2 (§6.2, Eq. 4): every user field feeding a
// change-driven group gets a most-recently-sent copy, per group so that
// groups with different send schedules never share a baseline.
func (c *compiler) addOldFields() {
	for _, g := range c.out.Groups {
		if !g.changeDriven() {
			continue
		}
		added := map[int]bool{}
		for _, sid := range g.Sites {
			s := c.out.Sites[sid]
			for _, fslot := range s.Fields {
				if added[fslot] {
					continue
				}
				added[fslot] = true
				uf := c.out.Layout.Fields[fslot]
				c.addField(FieldSpec{
					Name: oldName(g.ID, uf.Name),
					Type: uf.Type,
					Kind: OldOfField,
					Ref:  fslot,
				})
			}
			if s.Op == ast.AggProd && s.Strategy == StrategyMemoized {
				s.LastNNSlot = c.addField(FieldSpec{
					Name: lastnnName(s.ID),
					Type: s.Type,
					Kind: LastNNField,
					Ref:  s.ID,
				})
			}
		}
	}
}

// addDirtyFields is P3's state (§6.3): one dirty bit per change-driven
// group, pre-set in the initial vertex state.
func (c *compiler) addDirtyFields() {
	for _, g := range c.out.Groups {
		if g.changeDriven() {
			g.DirtySlot = c.addField(FieldSpec{
				Name: dirtyName(g.ID),
				Type: types.Bool,
				Kind: DirtyField,
				Ref:  g.ID,
			})
		}
	}
}

// addAccFields is P4's state (§6.4): the accumulator per site, plus the
// (nnAcc, aggNulls) pair for multiplicative memoized sites (Eq. 9).
func (c *compiler) addAccFields() {
	for _, s := range c.out.Sites {
		s.AccSlot = c.addField(FieldSpec{Name: accName(s.ID), Type: s.Type, Kind: AccField, Ref: s.ID})
		if s.Multiplicative() {
			s.NNSlot = c.addField(FieldSpec{Name: nnName(s.ID), Type: s.Type, Kind: NNAccField, Ref: s.ID})
			s.NullsSlot = c.addField(FieldSpec{Name: nullsName(s.ID), Type: types.Int, Kind: NullsField, Ref: s.ID})
		}
	}
}

// haltsInserted is P6's applicability rule for one phase. Halt-by-default
// is sound only when a halted vertex's recomputation is fully determined by
// its messages (the paper's determinism assumption, footnote 13). That
// fails when (a) the phase has scratch groups — a silent vertex would break
// receivers' from-scratch re-aggregation — or (b) the body is not
// re-execution stable (it reads the iteration counter or performs a
// non-idempotent self-update like seen = seen + 1), so re-running with no
// new messages could still change state. See bodyStable in analysis.go.
func (c *compiler) haltsInserted(phase int) bool {
	for _, g := range c.out.Groups {
		if g.Phase == phase && !g.changeDriven() {
			return false
		}
	}
	it, ok := c.in.Stmts[phase].(*ast.Iter)
	if !ok {
		return true // a step body runs exactly once; halting is trivially sound
	}
	return bodyStable(it.Body, it.Var)
}

// ---------------------------------------------------------------------------
// AST construction helpers.

func fieldRef(name string, ty types.Type) *ast.Field {
	return &ast.Field{Base: ast.Base{Ty: ty}, Name: name, Slot: -1}
}

func intLit(v int64) *ast.IntLit { return &ast.IntLit{Base: ast.Base{Ty: types.Int}, Val: v} }
func floatLit(v float64) *ast.FloatLit {
	return &ast.FloatLit{Base: ast.Base{Ty: types.Float}, Val: v}
}
func boolLit(v bool) *ast.BoolLit { return &ast.BoolLit{Base: ast.Base{Ty: types.Bool}, Val: v} }

// identityLit returns default_init(⊞, τ) as a literal (§6.1 footnote 11).
func identityLit(op ast.AggOp, ty types.Type) ast.Expr {
	switch ty {
	case types.Bool:
		return boolLit(Identity(op) != 0)
	case types.Int:
		if v := Identity(op); v == float64(int64(v)) {
			return intLit(int64(v))
		}
		// min/max identities are ±∞; keep them as float literals, the
		// runtime value representation is uniform.
		return floatLit(Identity(op))
	default:
		return floatLit(Identity(op))
	}
}

// absorbingLit returns nullary_elem(⊞, τ) (§6.4.1).
func absorbingLit(op ast.AggOp, ty types.Type) ast.Expr {
	v, ok := Absorbing(op)
	if !ok {
		panic("core: absorbingLit on non-multiplicative op")
	}
	if ty == types.Bool {
		return boolLit(v != 0)
	}
	return floatLit(v)
}

// opExpr builds the AST for a ⊞ b.
func opExpr(op ast.AggOp, ty types.Type, a, b ast.Expr) ast.Expr {
	switch op {
	case ast.AggMin:
		return &ast.MinMax{Base: ast.Base{Ty: ty}, IsMax: false, A: a, B: b}
	case ast.AggMax:
		return &ast.MinMax{Base: ast.Base{Ty: ty}, IsMax: true, A: a, B: b}
	default:
		return &ast.Binary{Base: ast.Base{Ty: ty}, Op: op.String(), L: a, R: b}
	}
}

func assign(name string, ty types.Type, v ast.Expr) *ast.Assign {
	return &ast.Assign{Base: ast.Base{Ty: types.Unit}, Name: name, IsField: true, Slot: -1, Value: v}
}

func flatten(e ast.Expr) []ast.Expr {
	if seq, ok := e.(*ast.Seq); ok {
		return seq.Items
	}
	return []ast.Expr{e}
}

// receivePrologue builds the message-application code that opens a phase
// body: Eq. 3 for scratch sites, Eq. 8 for memoized sites, Eq. 9 for
// multiplicative memoized sites, and table update+refold for §4.2.1.
func (c *compiler) receivePrologue(phase int) []ast.Expr {
	var items []ast.Expr
	for _, g := range c.out.Groups {
		if g.Phase != phase {
			continue
		}
		if g.Strategy == StrategyTable {
			items = append(items, &ast.TableUpdate{Base: ast.Base{Ty: types.Unit}, Group: g.ID})
		}
		for _, sid := range g.Sites {
			s := c.out.Sites[sid]
			items = append(items, c.receiveFor(s, g)...)
		}
	}
	return items
}

func (c *compiler) receiveFor(s *AggSite, g *SendGroup) []ast.Expr {
	acc := accName(s.ID)
	switch s.Strategy {
	case StrategyScratch:
		// Eq. 3: tmp := default_init; fold messages; the accumulator
		// field plays the role of tmp.
		return []ast.Expr{
			assign(acc, s.Type, identityLit(s.Op, s.Type)),
			&ast.MsgLoop{Base: ast.Base{Ty: types.Unit}, Group: g.ID, Body: assign(
				acc, s.Type,
				opExpr(s.Op, s.Type, fieldRef(acc, s.Type), &ast.MsgSlot{Base: ast.Base{Ty: s.Type}, Site: s.ID}),
			)},
		}
	case StrategyTable:
		return []ast.Expr{
			assign(acc, s.Type, &ast.TableFold{Base: ast.Base{Ty: s.Type}, Site: s.ID}),
		}
	}
	// Memoized.
	if !s.Multiplicative() {
		// Eq. 8.
		return []ast.Expr{
			&ast.MsgLoop{Base: ast.Base{Ty: types.Unit}, Group: g.ID, Body: assign(
				acc, s.Type,
				opExpr(s.Op, s.Type, fieldRef(acc, s.Type), &ast.MsgSlot{Base: ast.Base{Ty: s.Type}, Site: s.ID}),
			)},
		}
	}
	// Eq. 9: multiplicative with nullary tracking.
	nn, nulls := nnName(s.ID), nullsName(s.ID)
	loop := &ast.MsgLoop{Base: ast.Base{Ty: types.Unit}, Group: g.ID, Body: &ast.If{
		Base: ast.Base{Ty: types.Unit},
		Cond: &ast.MsgIsNull{Base: ast.Base{Ty: types.Bool}, Site: s.ID},
		Then: assign(nulls, types.Int,
			&ast.Binary{Base: ast.Base{Ty: types.Int}, Op: "+", L: fieldRef(nulls, types.Int), R: intLit(1)}),
		Else: &ast.Seq{Base: ast.Base{Ty: types.Unit}, Items: []ast.Expr{
			assign(nn, s.Type, opExpr(s.Op, s.Type, fieldRef(nn, s.Type), &ast.MsgSlot{Base: ast.Base{Ty: s.Type}, Site: s.ID})),
			&ast.If{
				Base: ast.Base{Ty: types.Unit},
				Cond: &ast.MsgPrevNull{Base: ast.Base{Ty: types.Bool}, Site: s.ID},
				Then: assign(nulls, types.Int,
					&ast.Binary{Base: ast.Base{Ty: types.Int}, Op: "-", L: fieldRef(nulls, types.Int), R: intLit(1)}),
			},
		}},
	}}
	commit := &ast.If{
		Base: ast.Base{Ty: types.Unit},
		Cond: &ast.Binary{Base: ast.Base{Ty: types.Bool}, Op: "==", L: fieldRef(nulls, types.Int), R: intLit(0)},
		Then: assign(accName(s.ID), s.Type, fieldRef(nn, s.Type)),
		Else: assign(accName(s.ID), s.Type, absorbingLit(s.Op, s.Type)),
	}
	return []ast.Expr{loop, commit}
}

// sendEpilogue builds the sending code that closes a phase body: Eq. 6/7
// change-gated Δ-message broadcasts for change-driven groups, plain
// full-value broadcasts for scratch groups.
func (c *compiler) sendEpilogue(phase int) []ast.Expr {
	var items []ast.Expr
	for _, g := range c.out.Groups {
		if g.Phase != phase {
			continue
		}
		items = append(items, c.sendFor(g)...)
	}
	return items
}

func (c *compiler) sendFor(g *SendGroup) []ast.Expr {
	// Payload: one slot per site; Δ-wrapped for memoized groups (P5,
	// Eq. 10), full values for scratch and table groups.
	payload := make([]ast.Expr, len(g.Sites))
	for i, sid := range g.Sites {
		s := c.out.Sites[sid]
		slot := ast.Clone(s.SlotExpr)
		if g.Strategy == StrategyMemoized {
			payload[i] = &ast.Delta{Base: ast.Base{Ty: s.Type}, Site: s.ID, X: slot}
		} else {
			payload[i] = slot
		}
	}
	loop := &ast.ForNeighbors{
		Base: ast.Base{Ty: types.Unit},
		Var:  "u",
		G:    g.PushDir,
		Body: &ast.Send{Base: ast.Base{Ty: types.Unit}, DestVar: "u", Group: g.ID, Payload: payload},
	}
	if !g.changeDriven() {
		return []ast.Expr{loop}
	}

	// P3 (Eqs. 5–7): compute the group dirty bit from the externally
	// visible fields, lift the check outside the broadcast loop, and
	// update the most-recently-sent copies after sending.
	var dirtyExpr ast.Expr
	var oldUpdates []ast.Expr
	seen := map[int]bool{}
	for _, sid := range g.Sites {
		s := c.out.Sites[sid]
		for _, fslot := range s.Fields {
			if seen[fslot] {
				continue
			}
			seen[fslot] = true
			uf := c.out.Layout.Fields[fslot]
			chk := &ast.Changed{
				Base: ast.Base{Ty: types.Bool},
				Name: uf.Name, OldName: oldName(g.ID, uf.Name),
				Slot: -1, OldSlot: -1,
			}
			if dirtyExpr == nil {
				dirtyExpr = chk
			} else {
				dirtyExpr = &ast.Binary{Base: ast.Base{Ty: types.Bool}, Op: "||", L: dirtyExpr, R: chk}
			}
			oldUpdates = append(oldUpdates,
				assign(oldName(g.ID, uf.Name), uf.Type, fieldRef(uf.Name, uf.Type)))
		}
		if s.LastNNSlot >= 0 {
			// Remember the last non-null sent value so a later
			// null→non-null Δ can be a correct ratio (see DESIGN.md §6.3).
			oldUpdates = append(oldUpdates, &ast.If{
				Base: ast.Base{Ty: types.Unit},
				Cond: &ast.Binary{Base: ast.Base{Ty: types.Bool}, Op: "!=", L: ast.Clone(s.SlotExpr), R: floatLit(0)},
				Then: assign(lastnnName(s.ID), s.Type, ast.Clone(s.SlotExpr)),
			})
		}
	}
	if dirtyExpr == nil {
		// Constant aggregand (no fields): never dirty after the prime.
		dirtyExpr = boolLit(false)
	}
	gate := &ast.If{
		Base: ast.Base{Ty: types.Unit},
		Cond: fieldRef(dirtyName(g.ID), types.Bool),
		Then: &ast.Seq{Base: ast.Base{Ty: types.Unit}, Items: append([]ast.Expr{loop}, oldUpdates...)},
	}
	return []ast.Expr{
		assign(dirtyName(g.ID), types.Bool, dirtyExpr),
		gate,
	}
}
