package core

import (
	"fmt"
	"testing"
)

// compileHaltCheck compiles a single-iter program with the given body and
// reports whether P6 inserted a halt.
func compileHaltCheck(t *testing.T, decls, body string) bool {
	t.Helper()
	src := fmt.Sprintf("init { %s };\niter k { %s } until { k >= 5 }", decls, body)
	p, err := Compile(src, Options{Mode: Incremental})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p.Phases[0].Halts
}

func TestHaltSafetyAnalysis(t *testing.T) {
	cases := []struct {
		name, decls, body string
		wantHalts         bool
	}{
		{
			name:      "pure-aggregation-consumer",
			decls:     "local x : float = 1.0",
			body:      "let s : float = + [ u.x | u <- #in ] in x = s * 0.5",
			wantHalts: true,
		},
		{
			name:      "idempotent-self-min",
			decls:     "local d : float = infty",
			body:      "let m : float = min [ u.d | u <- #in ] in d = min d m",
			wantHalts: true,
		},
		{
			name:      "idempotent-self-or",
			decls:     "local r : bool = false",
			body:      "let a : bool = || [ u.r | u <- #in ] in r = r || a",
			wantHalts: true,
		},
		{
			name:      "counter-self-increment",
			decls:     "local x : float = 1.0; local c : float = 0.0",
			body:      "let s : float = + [ u.x | u <- #in ] in x = s; c = c + 1.0",
			wantHalts: false,
		},
		{
			name:      "iter-var-read",
			decls:     "local x : float = 1.0",
			body:      "let s : float = + [ u.x | u <- #in ] in x = s + 1.0 * k",
			wantHalts: false,
		},
		{
			name:      "iter-var-in-condition",
			decls:     "local x : float = 1.0",
			body:      "let s : float = + [ u.x | u <- #in ] in if k >= 3 then x = s",
			wantHalts: false,
		},
		{
			name:      "chained-stable-fields",
			decls:     "local a : float = 1.0; local b : float = 0.0",
			body:      "let s : float = + [ u.a | u <- #in ] in a = s * 0.5; b = a + 1.0",
			wantHalts: true,
		},
		{
			name:      "mutual-cycle-rejected",
			decls:     "local a : float = 1.0; local b : float = 0.0",
			body:      "let s : float = + [ u.a | u <- #in ] in a = b + 1.0; b = a; a = a + s * 0.0",
			wantHalts: false,
		},
		{
			name:      "self-plus-under-min-rejected",
			decls:     "local d : float = 1.0",
			body:      "let m : float = min [ u.d | u <- #in ] in d = min (d + 1.0) m",
			wantHalts: false,
		},
		{
			name:      "self-in-if-condition-rejected",
			decls:     "local x : float = 1.0",
			body:      "let s : float = + [ u.x | u <- #in ] in x = if x > 2.0 then s else s + 1.0",
			wantHalts: false,
		},
		{
			name:      "self-in-if-branches-ok",
			decls:     "local x : float = 1.0; local c : bool = true",
			body:      "let s : float = + [ u.x | u <- #in ] in x = if c then x else s",
			wantHalts: true,
		},
		{
			name:      "let-laundered-self-increment-rejected",
			decls:     "local x : float = 1.0",
			body:      "let s : float = + [ u.x | u <- #in ] in let t : float = x + 1.0 in x = min t s",
			wantHalts: false,
		},
		{
			name:      "assignment-to-let-is-harmless",
			decls:     "local x : float = 1.0",
			body:      "let s : float = + [ u.x | u <- #in ] in let t : float = 0.0 in t = t + 1.0; x = s",
			wantHalts: true,
		},
		{
			name:      "static-inputs-ok",
			decls:     "local x : float = 1.0",
			body:      "let s : float = + [ u.x | u <- #in ] in x = s + 1.0 / graphSize + 1.0 * id + 1.0 * |#out|",
			wantHalts: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := compileHaltCheck(t, tc.decls, tc.body); got != tc.wantHalts {
				t.Fatalf("halts = %v, want %v", got, tc.wantHalts)
			}
		})
	}
}

func TestCorpusHaltFlags(t *testing.T) {
	wantHalts := map[string]bool{
		"bfs":       true,
		"wcc":       true,
		"pagerank":  true,
		"sssp":      true,
		"cc":        true,
		"hits":      true,
		"maxval":    true,
		"reach":     true,
		"prod":      false, // body reads the iteration counter
		"allreach":  true,
		"degreesum": true, // step
		"twophase":  true,
	}
	for name, want := range wantHalts {
		p := compileT(t, name, Incremental)
		for i, ph := range p.Phases {
			if ph.Halts != want {
				t.Errorf("%s phase %d: halts = %v, want %v", name, i, ph.Halts, want)
			}
		}
	}
}
