package bench

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"sync/atomic"
	"testing"
)

// The bench package's own tests use the smallest dataset to stay fast; the
// full-size runs live in the repository root's bench_test.go.
const testDS = "livejournal-ug-s"

func TestTable1(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["wikipedia-s"].Type != "Directed" || byName["facebook-s"].Type != "Undirected" {
		t.Fatalf("directedness wrong: %+v", byName)
	}
	// Density ratios should roughly track the paper's datasets.
	w := byName["wikipedia-s"]
	if ratio := float64(w.E) / float64(w.V); ratio < 3 || ratio > 12 {
		t.Fatalf("wikipedia-s |E|/|V| = %.1f, want ≈ 7.5", ratio)
	}
	var buf bytes.Buffer
	if err := RenderTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Wikipedia") || !strings.Contains(buf.String(), "136.54M") {
		t.Fatalf("render missing content:\n%s", buf.String())
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.DV < r.DVStar {
			t.Errorf("%s: ΔV state %d < ΔV★ %d", r.Program, r.DV, r.DVStar)
		}
		if r.DV-r.DVStar > 24 {
			t.Errorf("%s: incrementalization overhead %dB — paper says it is 'fairly minimal'", r.Program, r.DV-r.DVStar)
		}
		if r.Pregel <= 0 || r.Pregel > r.DV {
			t.Errorf("%s: handwritten state %dB out of range (compiled %dB)", r.Program, r.Pregel, r.DV)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pagerank") {
		t.Fatal("render missing pagerank row")
	}
}

func TestMeasureShapesOnSmallDataset(t *testing.T) {
	byVariant := map[string]PerfRow{}
	for _, variant := range []string{VariantDV, VariantDVStar, VariantPregel} {
		r, err := Measure(context.Background(), "cc", testDS, variant, 1)
		if err != nil {
			t.Fatal(err)
		}
		byVariant[variant] = r
	}
	// §7.2: ΔV and ΔV★ send the exact same number of messages for CC.
	if byVariant[VariantDV].Messages != byVariant[VariantDVStar].Messages {
		t.Fatalf("CC messages: dV=%d dV*=%d, want equal",
			byVariant[VariantDV].Messages, byVariant[VariantDVStar].Messages)
	}
	// And the handwritten reference sends the same number too (same
	// algorithm, same engine).
	if byVariant[VariantDV].Messages != byVariant[VariantPregel].Messages {
		t.Fatalf("CC messages: dV=%d Pregel+=%d, want equal",
			byVariant[VariantDV].Messages, byVariant[VariantPregel].Messages)
	}
}

func TestPageRankReductionShape(t *testing.T) {
	dv, err := Measure(context.Background(), "pagerank", testDS, VariantDV, 1)
	if err != nil {
		t.Fatal(err)
	}
	star, err := Measure(context.Background(), "pagerank", testDS, VariantDVStar, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dv.Messages >= star.Messages {
		t.Fatalf("pagerank: dV %d >= dV* %d messages — no reduction", dv.Messages, star.Messages)
	}
	sums := Summarize([]PerfRow{dv, star})
	if len(sums) != 1 || sums[0].MsgReduction <= 1 {
		t.Fatalf("summary = %+v", sums)
	}
	var buf bytes.Buffer
	if err := RenderSummary(&buf, sums); err != nil {
		t.Fatal(err)
	}
	if err := RenderPerf(&buf, "test", []PerfRow{dv, star}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureErrors(t *testing.T) {
	if _, err := Measure(context.Background(), "pagerank", "nope", VariantDV, 1); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if _, err := Measure(context.Background(), "pagerank", testDS, "nope", 1); err == nil {
		t.Fatal("unknown variant should fail")
	}
	if _, err := Measure(context.Background(), "nope", testDS, VariantPregel, 1); err == nil {
		t.Fatal("unknown handwritten program should fail")
	}
}

func TestAblations(t *testing.T) {
	t.Run("memotable", func(t *testing.T) {
		rows, err := AblationMemoTable(context.Background(), testDS, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("rows = %d, want 4", len(rows))
		}
		// The strawman must carry heavier messages and state than ΔV.
		var inc, tbl MemoTableRow
		for _, r := range rows {
			if r.Program != "pagerank" {
				continue
			}
			if r.Variant == "dV" {
				inc = r
			} else {
				tbl = r
			}
		}
		if tbl.MsgBytes <= inc.MsgBytes {
			t.Fatalf("table msg bytes %d <= dV %d", tbl.MsgBytes, inc.MsgBytes)
		}
		if tbl.StateBytes <= inc.StateBytes {
			t.Fatalf("table state %f <= dV %f", tbl.StateBytes, inc.StateBytes)
		}
		var buf bytes.Buffer
		if err := RenderMemoTable(&buf, rows); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("epsilon", func(t *testing.T) {
		rows, err := AblationEpsilon(context.Background(), testDS, []float64{0, 1e-9, 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		if rows[0].MaxErr > 1e-9 {
			t.Fatalf("ε=0 must be exact, err=%g", rows[0].MaxErr)
		}
		if rows[2].Messages > rows[0].Messages {
			t.Fatalf("ε=1e-6 sent more messages (%d) than exact (%d)", rows[2].Messages, rows[0].Messages)
		}
		var buf bytes.Buffer
		if err := RenderEpsilon(&buf, testDS, rows); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("scheduler", func(t *testing.T) {
		rows, err := AblationScheduler(context.Background(), testDS, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("rows = %d, want 4", len(rows))
		}
		var buf bytes.Buffer
		if err := RenderScheduler(&buf, rows); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("combiner", func(t *testing.T) {
		rows, err := AblationCombiner(context.Background(), testDS, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rows[1].Combined >= rows[0].Combined {
			t.Fatalf("combiner delivered %d >= uncombined %d", rows[1].Combined, rows[0].Combined)
		}
		var buf bytes.Buffer
		if err := RenderCombiner(&buf, rows); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMicroSnapshotRoundTrip(t *testing.T) {
	path := t.TempDir() + "/BENCH_pregel.json"
	before := []MicroRow{{Name: "message-plane/rmat/scan-all/block", NsPerOp: 1000, BytesPerOp: 4096, AllocsPerOp: 12, MsgsPerOp: 99}}
	after := []MicroRow{{Name: "message-plane/rmat/scan-all/block", NsPerOp: 500, BytesPerOp: 1024, AllocsPerOp: 3, MsgsPerOp: 99}}
	if err := WriteMicroSnapshot(path, "before", before); err != nil {
		t.Fatal(err)
	}
	if err := WriteMicroSnapshot(path, "after", after); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderMicro(&buf, after); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "message-plane/rmat/scan-all/block") {
		t.Fatalf("RenderMicro output:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderMicroDelta(&buf, path); err != nil {
		t.Fatal(err)
	}
	// 1000 -> 500 ns/op is a -50% delta; both snapshots must survive the merge.
	if !strings.Contains(buf.String(), "-50.0%") {
		t.Fatalf("RenderMicroDelta output:\n%s", buf.String())
	}
	// Re-writing a label replaces, not duplicates.
	if err := WriteMicroSnapshot(path, "after", after); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "\"after\"") != 2 { // map key + label field
		t.Fatalf("unexpected snapshot file:\n%s", data)
	}
}

// countdownCtx cancels itself after a fixed number of Err() calls. The
// engine polls ctx.Err() only at barriers from the master loop, so the call
// count of a run is deterministic — which lets tests abort exactly between
// two measurements of a figure.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	limit int64 // <= 0: count only, never cancel
}

func (c *countdownCtx) Err() error {
	if n := c.calls.Add(1); c.limit > 0 && n > c.limit {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestFigure5PartialRowsOnAbort is the regression test for the mid-suite
// abort fix: an abort during the second measurement must still return the
// first, completed row alongside the error (it used to discard everything).
func TestFigure5PartialRowsOnAbort(t *testing.T) {
	// Count the barrier checks of one full first measurement...
	counting := &countdownCtx{Context: context.Background()}
	if _, err := Measure(counting, "cc", Figure5Datasets[0], Variants[0], 1); err != nil {
		t.Fatal(err)
	}
	// ...then allow exactly that many: the first Figure5 measurement
	// completes, the second aborts at its first barrier.
	ctx := &countdownCtx{Context: context.Background(), limit: counting.calls.Load()}
	rows, err := Figure5(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(rows) != 1 {
		t.Fatalf("partial rows = %d, want exactly the 1 completed measurement", len(rows))
	}
	if rows[0].Dataset != Figure5Datasets[0] || rows[0].Variant != Variants[0] {
		t.Fatalf("partial row = %+v, want %s/%s", rows[0], Figure5Datasets[0], Variants[0])
	}
	if rows[0].Seconds <= 0 || rows[0].Steps <= 0 {
		t.Fatalf("partial row not a real measurement: %+v", rows[0])
	}
}
