// Package bench regenerates every table and figure of the paper's
// evaluation (§7) on the synthetic stand-in datasets:
//
//	Table 1  — datasets (type, |V|, |E|)
//	Table 2  — vertex-state sizes for ΔV, ΔV★, Palgol (modeled), Pregel+
//	Figure 4 — runtime and messages for PageRank, SSSP, HITS on the two
//	           directed datasets, for ΔV / ΔV★ / Pregel+
//	Figure 5 — Connected Components runtime on the two undirected datasets
//
// plus the ablations from DESIGN.md §4 (lookup-table strawman, ε-slop,
// scheduler, combiner). Each experiment returns structured rows and can be
// rendered as an aligned text table.
package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"text/tabwriter"
	"time"
	"unsafe"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/programs"
)

// Variant names used throughout, matching the paper's legend.
const (
	VariantDV        = "dV"
	VariantDVStar    = "dV*"
	VariantPregel    = "Pregel+"
	VariantMemoTable = "dV-memotable"
)

// PageRankIterations and HITSIterations follow §7.2: "PageRank was run for
// 30 iterations, and HITS for 7".
const (
	PageRankIterations = 30
	HITSIterations     = 7
)

// BenchWorkers matches the paper's cluster: 8 nodes × 2 workers. On
// machines with fewer cores the workers are time-sliced, which preserves
// the message-exchange structure (and the cross-worker traffic metric)
// even though it cannot add parallel speedup.
const BenchWorkers = 16

var (
	dsMu    sync.Mutex
	dsCache = map[string]*graph.Graph{}
)

// LoadDataset builds (and caches) a stand-in dataset by name.
func LoadDataset(name string) (*graph.Graph, error) {
	dsMu.Lock()
	defer dsMu.Unlock()
	if g, ok := dsCache[name]; ok {
		return g, nil
	}
	d, err := graph.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	g := d.Build()
	dsCache[name] = g
	return g, nil
}

// PerfRow is one (program, dataset, variant) measurement, averaged over
// Runs executions as in the paper ("the average of three runs").
type PerfRow struct {
	Program  string
	Dataset  string
	Variant  string
	Runs     int
	Seconds  float64 // mean wall time
	Messages int64   // vertex-level sends (identical across runs)
	Combined int64   // post-combiner envelopes
	Bytes    int64   // message bytes on the wire
	Steps    int     // supersteps
}

// Measure runs one benchmark variant. Program names: pagerank, sssp, cc,
// hits. Variants: VariantDV, VariantDVStar, VariantMemoTable (compiled) or
// VariantPregel (handwritten reference). Cancelling ctx aborts the current
// run at its next superstep barrier and Measure returns the abort error.
func Measure(ctx context.Context, program, dataset, variant string, runs int) (PerfRow, error) {
	g, err := LoadDataset(dataset)
	if err != nil {
		return PerfRow{}, err
	}
	if runs <= 0 {
		runs = 1
	}
	row := PerfRow{Program: program, Dataset: dataset, Variant: variant, Runs: runs}
	var total time.Duration
	for i := 0; i < runs; i++ {
		var stats *pregel.Stats
		if variant == VariantPregel {
			stats, err = runHandwritten(ctx, program, g)
		} else {
			stats, err = runCompiled(ctx, program, variant, g)
		}
		if err != nil {
			return PerfRow{}, fmt.Errorf("bench: %s/%s/%s: %w", program, dataset, variant, err)
		}
		total += stats.Duration
		row.Messages = stats.MessagesSent
		row.Combined = stats.CombinedMessages
		row.Bytes = stats.MessageBytes
		row.Steps = stats.Supersteps
	}
	row.Seconds = total.Seconds() / float64(runs)
	return row, nil
}

func modeOf(variant string) (core.Mode, error) {
	switch variant {
	case VariantDV:
		return core.Incremental, nil
	case VariantDVStar:
		return core.Baseline, nil
	case VariantMemoTable:
		return core.MemoTable, nil
	}
	return 0, fmt.Errorf("bench: unknown compiled variant %q", variant)
}

// sourceVertex picks a deterministic well-connected source for SSSP-like
// programs: the vertex with the largest out-degree.
func sourceVertex(g *graph.Graph) graph.VertexID {
	best, bestDeg := graph.VertexID(0), -1
	for u := 0; u < g.NumVertices(); u++ {
		if d := g.OutDegree(graph.VertexID(u)); d > bestDeg {
			best, bestDeg = graph.VertexID(u), d
		}
	}
	return best
}

func runCompiled(ctx context.Context, program, variant string, g *graph.Graph) (*pregel.Stats, error) {
	mode, err := modeOf(variant)
	if err != nil {
		return nil, err
	}
	prog, err := core.Compile(programs.MustSource(program), core.Options{Mode: mode})
	if err != nil {
		return nil, err
	}
	opts := vm.RunOptions{Combine: true, Workers: BenchWorkers}
	if program == "sssp" {
		opts.Params = map[string]float64{"src": float64(sourceVertex(g))}
	}
	res, err := vm.RunContext(ctx, prog, g, opts)
	if err != nil {
		return nil, err
	}
	return res.Stats, nil
}

func runHandwritten(ctx context.Context, program string, g *graph.Graph) (*pregel.Stats, error) {
	opts := algorithms.RunOptions{Combine: true, Workers: BenchWorkers, Ctx: ctx}
	switch program {
	case "pagerank":
		_, stats, err := algorithms.RunPageRank(g, PageRankIterations, opts)
		return stats, err
	case "sssp":
		_, stats, err := algorithms.RunSSSP(g, sourceVertex(g), opts)
		return stats, err
	case "cc":
		_, stats, err := algorithms.RunCC(g, opts)
		return stats, err
	case "hits":
		_, stats, err := algorithms.RunHITS(g, HITSIterations, opts)
		return stats, err
	}
	return nil, fmt.Errorf("bench: no handwritten reference for %q", program)
}

// ---------------------------------------------------------------------------
// Table 1.

// Table1Row describes one dataset stand-in next to the paper's original.
type Table1Row struct {
	Name     string
	Original string
	Type     string
	V, E     int
	PaperV   int64
	PaperE   int64
}

// Table1 builds all four stand-ins and reports their shapes.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, d := range graph.Datasets() {
		g, err := LoadDataset(d.Name)
		if err != nil {
			return nil, err
		}
		typ := "Undirected"
		if d.Directed {
			typ = "Directed"
		}
		rows = append(rows, Table1Row{
			Name: d.Name, Original: d.Original, Type: typ,
			V: g.NumVertices(), E: g.NumEdges(),
			PaperV: d.PaperV, PaperE: d.PaperE,
		})
	}
	return rows, nil
}

// RenderTable1 writes Table 1 as text.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tOriginal\tType\t|V|\t|E|\tPaper |V|\tPaper |E|")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%s\t%s\n",
			r.Name, r.Original, r.Type, r.V, r.E, human(r.PaperV), human(r.PaperE))
	}
	return tw.Flush()
}

func human(v int64) string {
	switch {
	case v >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.2fK", float64(v)/1e3)
	}
	return fmt.Sprintf("%d", v)
}

// ---------------------------------------------------------------------------
// Table 2.

// EnginePerVertexBytes is the engine bookkeeping charged to every
// hand-written vertex alongside its value struct: the active and removed
// flags plus the per-vertex inbox offset (1+1+4, padded to 8). The
// compiled variants' Layout.ByteSize already includes the analogous
// state-machine overhead, so this keeps the Table 2 columns comparable.
const EnginePerVertexBytes = 8

// Table2Row reports vertex-state bytes per variant for one program.
type Table2Row struct {
	Program string
	DV      int // ΔV (incrementalized)
	DVStar  int // ΔV★
	Palgol  int // modeled: a non-incremental compiled DSL ≈ ΔV★ layout
	Pregel  int // handwritten vertex value struct
	// Paper's reported sizes for the same columns.
	PaperDV, PaperDVStar, PaperPalgol, PaperPregel int
}

// Table2 computes the vertex-state sizes for the four benchmarks.
func Table2() ([]Table2Row, error) {
	paper := map[string][4]int{
		"pagerank": {48, 40, 40, 32},
		"sssp":     {48, 40, 64, 40},
		"cc":       {48, 40, 40, 32},
		"hits":     {80, 64, 64, 56},
	}
	handwritten := map[string]int{
		"pagerank": int(unsafe.Sizeof(algorithms.PRState{})) + EnginePerVertexBytes,
		"sssp":     int(unsafe.Sizeof(algorithms.SSSPState{})) + EnginePerVertexBytes,
		"cc":       int(unsafe.Sizeof(algorithms.CCState{})) + EnginePerVertexBytes,
		"hits":     int(unsafe.Sizeof(algorithms.HITSState{})) + EnginePerVertexBytes,
	}
	var rows []Table2Row
	for _, name := range []string{"pagerank", "sssp", "cc", "hits"} {
		inc, err := core.Compile(programs.MustSource(name), core.Options{Mode: core.Incremental})
		if err != nil {
			return nil, err
		}
		base, err := core.Compile(programs.MustSource(name), core.Options{Mode: core.Baseline})
		if err != nil {
			return nil, err
		}
		p := paper[name]
		rows = append(rows, Table2Row{
			Program: name,
			DV:      inc.Layout.ByteSize(),
			DVStar:  base.Layout.ByteSize(),
			Palgol:  base.Layout.ByteSize(),
			Pregel:  handwritten[name],
			PaperDV: p[0], PaperDVStar: p[1], PaperPalgol: p[2], PaperPregel: p[3],
		})
	}
	return rows, nil
}

// RenderTable2 writes Table 2 as text.
func RenderTable2(w io.Writer, rows []Table2Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Program\tdV\tdV*\tPalgol~\tPregel+\t(paper: dV\tdV*\tPalgol\tPregel+)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%dB\t%dB\t%dB\t%dB\t%dB\t%dB\t%dB\t%dB\n",
			r.Program, r.DV, r.DVStar, r.Palgol, r.Pregel,
			r.PaperDV, r.PaperDVStar, r.PaperPalgol, r.PaperPregel)
	}
	return tw.Flush()
}

// ---------------------------------------------------------------------------
// Figures 4 and 5.

// Figure4Programs are the benchmarks of Fig. 4, in its order.
var Figure4Programs = []string{"sssp", "hits", "pagerank"}

// Figure4Datasets are the directed datasets of Fig. 4.
var Figure4Datasets = []string{"wikipedia-s", "livejournal-dg-s"}

// Figure5Datasets are the undirected datasets of Fig. 5.
var Figure5Datasets = []string{"facebook-s", "livejournal-ug-s"}

// Variants is the Fig. 4/5 legend order.
var Variants = []string{VariantDV, VariantDVStar, VariantPregel}

// Figure4 measures runtime and messages for SSSP, HITS and PageRank on the
// directed stand-ins across the three variants. On abort (cancellation or
// deadline) the rows measured before the abort are returned alongside the
// error, so callers can still render the completed part of the experiment.
func Figure4(ctx context.Context, runs int) ([]PerfRow, error) {
	var rows []PerfRow
	for _, ds := range Figure4Datasets {
		for _, prog := range Figure4Programs {
			for _, variant := range Variants {
				r, err := Measure(ctx, prog, ds, variant, runs)
				if err != nil {
					return rows, err
				}
				rows = append(rows, r)
			}
		}
	}
	return rows, nil
}

// Figure5 measures Connected Components on the undirected stand-ins. Like
// Figure4, an abort returns the completed rows alongside the error.
func Figure5(ctx context.Context, runs int) ([]PerfRow, error) {
	var rows []PerfRow
	for _, ds := range Figure5Datasets {
		for _, variant := range Variants {
			r, err := Measure(ctx, "cc", ds, variant, runs)
			if err != nil {
				return rows, err
			}
			rows = append(rows, r)
		}
	}
	return rows, nil
}

// RenderPerf writes performance rows as text.
func RenderPerf(w io.Writer, title string, rows []PerfRow) error {
	fmt.Fprintf(w, "== %s ==\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tProgram\tVariant\tRuntime (s)\tMessages\tCombined\tMsg bytes\tSupersteps")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.4f\t%d\t%d\t%d\t%d\n",
			r.Dataset, r.Program, r.Variant, r.Seconds, r.Messages, r.Combined, r.Bytes, r.Steps)
	}
	return tw.Flush()
}

// Summary computes the paper's headline ratios from Fig. 4 rows: per
// (program, dataset), the ΔV★/ΔV message and runtime ratios.
type Summary struct {
	Program, Dataset            string
	MsgReduction, SpeedupVsStar float64
	SpeedupVsPregel             float64
}

// Summarize derives reduction/speedup ratios from measured rows.
func Summarize(rows []PerfRow) []Summary {
	type key struct{ p, d string }
	byKey := map[key]map[string]PerfRow{}
	for _, r := range rows {
		k := key{r.Program, r.Dataset}
		if byKey[k] == nil {
			byKey[k] = map[string]PerfRow{}
		}
		byKey[k][r.Variant] = r
	}
	var out []Summary
	for _, r := range rows {
		if r.Variant != VariantDV {
			continue
		}
		k := key{r.Program, r.Dataset}
		dv := byKey[k][VariantDV]
		star, okStar := byKey[k][VariantDVStar]
		pp, okPP := byKey[k][VariantPregel]
		s := Summary{Program: r.Program, Dataset: r.Dataset}
		if okStar && dv.Messages > 0 {
			s.MsgReduction = float64(star.Messages) / float64(dv.Messages)
		}
		if okStar && dv.Seconds > 0 {
			s.SpeedupVsStar = star.Seconds / dv.Seconds
		}
		if okPP && dv.Seconds > 0 {
			s.SpeedupVsPregel = pp.Seconds / dv.Seconds
		}
		out = append(out, s)
	}
	return out
}

// RenderSummary writes the ratio summary as text.
func RenderSummary(w io.Writer, sums []Summary) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tProgram\tMsg reduction (dV*/dV)\tSpeedup vs dV*\tSpeedup vs Pregel+")
	for _, s := range sums {
		fmt.Fprintf(tw, "%s\t%s\t%.2fx\t%.2fx\t%.2fx\n",
			s.Dataset, s.Program, s.MsgReduction, s.SpeedupVsStar, s.SpeedupVsPregel)
	}
	return tw.Flush()
}
