package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShardExperimentSmoke runs the whole experiment at a tiny scale:
// every sharded row must reproduce its in-process digest, and the
// render and JSON snapshot must round-trip.
func TestShardExperimentSmoke(t *testing.T) {
	rows, err := ShardExperiment(context.Background(), 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 algos x 2 configs)", len(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Fatalf("%s/%s: digest mismatch: %+v", r.Algo, r.Config, r)
		}
		if r.Config == "shard2-unix" && (r.WireFrames == 0 || r.WireBytes == 0) {
			t.Fatalf("%s sharded row reports no wire traffic: %+v", r.Algo, r)
		}
		if r.Supersteps <= 0 || r.Seconds <= 0 {
			t.Fatalf("%s/%s: empty measurements: %+v", r.Algo, r.Config, r)
		}
	}

	var buf bytes.Buffer
	if err := RenderShard(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "shard2-unix") {
		t.Fatalf("render missing sharded rows:\n%s", buf.String())
	}

	path := filepath.Join(t.TempDir(), "shard.json")
	if err := WriteShardSnapshot(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file ShardFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Rows) != len(rows) || file.EdgeFactor != ShardEdgeFactor {
		t.Fatalf("snapshot round-trip mismatch: %+v", file)
	}
}
