package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestParseVmRSS(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want int64
	}{
		{"typical", "Name:\tdvbench\nVmPeak:\t  200 kB\nVmRSS:\t  1234 kB\nVmData:\t 99 kB\n", 1234 << 10},
		{"missing", "Name:\tdvbench\nVmPeak:\t 200 kB\n", -1},
		{"bad unit", "VmRSS:\t 1234 MB\n", -1},
		{"bad number", "VmRSS:\t xyz kB\n", -1},
		{"truncated", "VmRSS:", -1},
	}
	for _, c := range cases {
		if got := parseVmRSS([]byte(c.in)); got != c.want {
			t.Errorf("%s: parseVmRSS = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestRSSSampler(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("VmRSS needs /proc")
	}
	if r := ReadVmRSS(); r <= 0 {
		t.Fatalf("ReadVmRSS = %d on linux", r)
	}
	s := StartRSSSampler(time.Millisecond)
	// Force some resident growth so the peak has something to catch.
	ballast := make([]byte, 32<<20)
	for i := range ballast {
		ballast[i] = byte(i)
	}
	time.Sleep(10 * time.Millisecond)
	peak := s.Stop()
	runtime.KeepAlive(ballast)
	if peak <= 0 {
		t.Fatalf("sampler peak = %d", peak)
	}
	if settled := SettleHeap(); settled <= 0 {
		t.Fatalf("SettleHeap = %d", settled)
	}
}

func TestMemLoadModeAndProgramErrors(t *testing.T) {
	if _, err := memLoadMode("bogus"); err == nil {
		t.Fatal("memLoadMode(bogus) should fail")
	}
	if _, err := memProgram("bogus"); err == nil {
		t.Fatal("memProgram(bogus) should fail")
	}
	for _, repr := range MemoryReprs {
		if _, err := memLoadMode(repr); err != nil {
			t.Fatalf("memLoadMode(%s): %v", repr, err)
		}
	}
	for _, prog := range MemoryPrograms {
		if _, err := memProgram(prog); err != nil {
			t.Fatalf("memProgram(%s): %v", prog, err)
		}
	}
}

func TestSummarizeMemoryRatios(t *testing.T) {
	rows := []MemRow{
		{Scale: 10, Program: "pagerank", Repr: "flat", BytesPerArc: 8, PeakRSS: 400, NsPerStep: 100},
		{Scale: 10, Program: "pagerank", Repr: "compact", BytesPerArc: 2, PeakRSS: 100, NsPerStep: 120},
		{Scale: 10, Program: "pagerank", Repr: "mmap", BytesPerArc: 2, PeakRSS: 80, NsPerStep: 150},
		// sssp has no compact cell -> no summary row.
		{Scale: 10, Program: "sssp", Repr: "flat", BytesPerArc: 8, PeakRSS: 400, NsPerStep: 100},
		// Aborted rows must not poison the ratios.
		{Scale: 12, Program: "pagerank", Repr: "flat", AbortReason: "context canceled"},
	}
	sums := SummarizeMemory(rows)
	if len(sums) != 1 {
		t.Fatalf("summaries = %d, want 1: %+v", len(sums), sums)
	}
	s := sums[0]
	if s.Scale != 10 || s.Program != "pagerank" {
		t.Fatalf("summary key = %d/%s", s.Scale, s.Program)
	}
	for _, c := range []struct {
		name string
		got  float64
		want float64
	}{
		{"bytes ratio", s.BytesRatio, 4.0},
		{"rss ratio", s.RSSRatio, 4.0},
		{"compact slowdown", s.SlowdownComp, 1.2},
		{"mmap slowdown", s.SlowdownMmap, 1.5},
	} {
		if math.Abs(c.got-c.want) > 1e-9 {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
	var buf bytes.Buffer
	if err := RenderMemorySummary(&buf, sums); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4.00x") {
		t.Fatalf("summary render:\n%s", buf.String())
	}
}

// TestMemoryExperimentSmoke runs the full axis at a toy scale: every
// (program, repr) cell must measure the same graph, report its declared
// representation, and show the compact encoding strictly smaller per arc
// than flat.
func TestMemoryExperimentSmoke(t *testing.T) {
	rows, err := MemoryExperiment(context.Background(), []int{8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(MemoryPrograms) * len(MemoryReprs); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	byRepr := map[string]MemRow{}
	for _, r := range rows {
		if r.AbortReason != "" {
			t.Fatalf("aborted cell: %+v", r)
		}
		wantRepr := r.Repr
		if r.Repr == "mmap" {
			wantRepr = "compact+mmap" // mmap rows page the compact encoding from disk
		}
		if r.ReprReported != wantRepr {
			t.Fatalf("%s/%s: graph reports repr %q, want %q", r.Program, r.Repr, r.ReprReported, wantRepr)
		}
		if r.Arcs != rows[0].Arcs || r.Vertices != rows[0].Vertices {
			t.Fatalf("cells measured different graphs: %+v vs %+v", r, rows[0])
		}
		if r.Steps <= 0 || r.NsPerStep <= 0 || r.GraphBytes <= 0 {
			t.Fatalf("cell missing measurements: %+v", r)
		}
		if r.Program == "pagerank" {
			byRepr[r.Repr] = r
		}
	}
	if byRepr["flat"].BytesPerArc <= byRepr["compact"].BytesPerArc {
		t.Fatalf("compact not smaller: flat %.2f vs compact %.2f B/arc",
			byRepr["flat"].BytesPerArc, byRepr["compact"].BytesPerArc)
	}
	var buf bytes.Buffer
	if err := RenderMemory(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compact") || !strings.Contains(buf.String(), "mmap") {
		t.Fatalf("memory render:\n%s", buf.String())
	}

	path := t.TempDir() + "/BENCH_memory.json"
	if err := WriteMemorySnapshot(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file MemFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if file.EdgeFactor != MemoryEdgeFactor || len(file.Rows) != len(rows) || len(file.Summary) != 2 {
		t.Fatalf("snapshot file = %+v", file)
	}
}

// TestMemoryExperimentAbort: a cancelled context marks every cell and
// surfaces the abort error like the other experiments do.
func TestMemoryExperimentAbort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := MemoryExperiment(ctx, []int{8}, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if want := len(MemoryPrograms) * len(MemoryReprs); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.AbortReason == "" {
			t.Fatalf("cell not marked aborted: %+v", r)
		}
	}
	if sums := SummarizeMemory(rows); len(sums) != 0 {
		t.Fatalf("aborted rows produced summaries: %+v", sums)
	}
	var buf bytes.Buffer
	if err := RenderMemory(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ABORTED") {
		t.Fatalf("render of aborted rows:\n%s", buf.String())
	}
}
