package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/programs"
)

// MemoTableRow compares the §4.2.1 lookup-table strawman against full
// incrementalization: same meaningful-only message counts, but heavier
// messages, more per-vertex memory, and a slower refold.
type MemoTableRow struct {
	Program    string
	Dataset    string
	Variant    string
	Seconds    float64
	Messages   int64
	MsgBytes   int64
	StateBytes float64
}

// AblationMemoTable runs PageRank and HITS under ΔV and the lookup-table
// strawman.
func AblationMemoTable(ctx context.Context, dataset string, runs int) ([]MemoTableRow, error) {
	g, err := LoadDataset(dataset)
	if err != nil {
		return nil, err
	}
	var rows []MemoTableRow
	for _, progName := range []string{"pagerank", "hits"} {
		for _, mode := range []core.Mode{core.Incremental, core.MemoTable} {
			prog, err := core.Compile(programs.MustSource(progName), core.Options{Mode: mode})
			if err != nil {
				return nil, err
			}
			row := MemoTableRow{Program: progName, Dataset: dataset, Variant: mode.String()}
			for i := 0; i < maxInt(1, runs); i++ {
				m, err := vm.NewMachine(prog, g, vm.RunOptions{})
				if err != nil {
					return nil, err
				}
				res, err := m.RunContext(ctx, vm.RunOptions{Combine: mode != core.MemoTable, Workers: BenchWorkers})
				if err != nil {
					return rows, err // completed variants survive an abort
				}
				row.Seconds += res.Stats.Duration.Seconds()
				row.Messages = res.Stats.MessagesSent
				row.MsgBytes = res.Stats.MessageBytes
				row.StateBytes = m.StateBytes()
			}
			row.Seconds /= float64(maxInt(1, runs))
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RenderMemoTable writes the strawman ablation as text.
func RenderMemoTable(w io.Writer, rows []MemoTableRow) error {
	fmt.Fprintln(w, "== Ablation: incrementalization vs §4.2.1 lookup-table memoization ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tProgram\tVariant\tRuntime (s)\tMessages\tMsg bytes\tState bytes/vertex")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.4f\t%d\t%d\t%.1f\n",
			r.Dataset, r.Program, r.Variant, r.Seconds, r.Messages, r.MsgBytes, r.StateBytes)
	}
	return tw.Flush()
}

// EpsilonRow reports the §9 allowable-slop extension: larger ε suppresses
// more messages at a bounded accuracy cost.
type EpsilonRow struct {
	Epsilon  float64
	Messages int64
	Steps    int
	MaxErr   float64 // max |vl - exact| over vertices
}

// AblationEpsilon sweeps ε for PageRank on a dataset.
func AblationEpsilon(ctx context.Context, dataset string, epsilons []float64) ([]EpsilonRow, error) {
	g, err := LoadDataset(dataset)
	if err != nil {
		return nil, err
	}
	exact := algorithms.PageRankOracle(g, PageRankIterations)
	var rows []EpsilonRow
	for _, eps := range epsilons {
		prog, err := core.Compile(programs.MustSource("pagerank"),
			core.Options{Mode: core.Incremental, Epsilon: eps})
		if err != nil {
			return nil, err
		}
		res, err := vm.RunContext(ctx, prog, g, vm.RunOptions{Combine: true, Workers: BenchWorkers})
		if err != nil {
			return rows, err // completed ε points survive an abort
		}
		maxErr := 0.0
		for u := range exact {
			if d := math.Abs(res.Field("vl", graph.VertexID(u)) - exact[u]); d > maxErr {
				maxErr = d
			}
		}
		rows = append(rows, EpsilonRow{
			Epsilon:  eps,
			Messages: res.Stats.MessagesSent,
			Steps:    res.Stats.Supersteps,
			MaxErr:   maxErr,
		})
	}
	return rows, nil
}

// RenderEpsilon writes the ε sweep as text.
func RenderEpsilon(w io.Writer, dataset string, rows []EpsilonRow) error {
	fmt.Fprintf(w, "== Ablation: ε-slop messaging (§9), PageRank on %s ==\n", dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Epsilon\tMessages\tSupersteps\tMax |error|")
	for _, r := range rows {
		fmt.Fprintf(tw, "%g\t%d\t%d\t%.3g\n", r.Epsilon, r.Messages, r.Steps, r.MaxErr)
	}
	return tw.Flush()
}

// SchedulerRow compares the scan-all runtime against the §9 work-queue
// (halt-by-default) scheduler.
type SchedulerRow struct {
	Program   string
	Dataset   string
	Scheduler string
	Seconds   float64
	Active    int64 // total vertices run across supersteps
}

// AblationScheduler times the two schedulers on incremental PageRank and
// SSSP.
func AblationScheduler(ctx context.Context, dataset string, runs int) ([]SchedulerRow, error) {
	g, err := LoadDataset(dataset)
	if err != nil {
		return nil, err
	}
	var rows []SchedulerRow
	for _, progName := range []string{"pagerank", "sssp"} {
		prog, err := core.Compile(programs.MustSource(progName), core.Options{Mode: core.Incremental})
		if err != nil {
			return nil, err
		}
		for _, sched := range []pregel.Scheduler{pregel.ScanAll, pregel.WorkQueue} {
			name := "scan-all"
			if sched == pregel.WorkQueue {
				name = "work-queue"
			}
			row := SchedulerRow{Program: progName, Dataset: dataset, Scheduler: name}
			for i := 0; i < maxInt(1, runs); i++ {
				opts := vm.RunOptions{Scheduler: sched, Combine: true, Workers: BenchWorkers}
				if progName == "sssp" {
					opts.Params = map[string]float64{"src": float64(sourceVertex(g))}
				}
				res, err := vm.RunContext(ctx, prog, g, opts)
				if err != nil {
					return rows, err // completed scheduler rows survive an abort
				}
				row.Seconds += res.Stats.Duration.Seconds()
				row.Active = res.Stats.TotalActive
			}
			row.Seconds /= float64(maxInt(1, runs))
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderScheduler writes the scheduler ablation as text.
func RenderScheduler(w io.Writer, rows []SchedulerRow) error {
	fmt.Fprintln(w, "== Ablation: scan-all vs work-queue scheduling (§9) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tProgram\tScheduler\tRuntime (s)\tVertices run")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.4f\t%d\n", r.Dataset, r.Program, r.Scheduler, r.Seconds, r.Active)
	}
	return tw.Flush()
}

// PartitionRow compares vertex placements: the fraction of delivered
// envelopes that cross worker boundaries is what graph-partitioning
// research (the paper's related-work axis) optimizes.
type PartitionRow struct {
	Program   string
	Dataset   string
	Partition string
	Seconds   float64
	Delivered int64
	Cross     int64
}

// AblationPartition measures block vs hash placement on incremental
// PageRank.
func AblationPartition(ctx context.Context, dataset string, runs int) ([]PartitionRow, error) {
	g, err := LoadDataset(dataset)
	if err != nil {
		return nil, err
	}
	prog, err := core.Compile(programs.MustSource("pagerank"), core.Options{Mode: core.Incremental})
	if err != nil {
		return nil, err
	}
	var rows []PartitionRow
	for _, part := range []pregel.Partition{pregel.PartitionBlock, pregel.PartitionHash} {
		row := PartitionRow{Program: "pagerank", Dataset: dataset, Partition: part.String()}
		for i := 0; i < maxInt(1, runs); i++ {
			res, err := vm.RunContext(ctx, prog, g, vm.RunOptions{Partition: part, Combine: true, Workers: BenchWorkers})
			if err != nil {
				return rows, err // completed placement rows survive an abort
			}
			row.Seconds += res.Stats.Duration.Seconds()
			row.Delivered = res.Stats.CombinedMessages
			row.Cross = res.Stats.CrossWorker
		}
		row.Seconds /= float64(maxInt(1, runs))
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderPartition writes the partitioning ablation as text.
func RenderPartition(w io.Writer, rows []PartitionRow) error {
	fmt.Fprintln(w, "== Ablation: block vs hash vertex placement ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tProgram\tPlacement\tRuntime (s)\tDelivered\tCross-worker\tCross %")
	for _, r := range rows {
		pct := 0.0
		if r.Delivered > 0 {
			pct = 100 * float64(r.Cross) / float64(r.Delivered)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.4f\t%d\t%d\t%.1f%%\n",
			r.Dataset, r.Program, r.Partition, r.Seconds, r.Delivered, r.Cross, pct)
	}
	return tw.Flush()
}

// CombinerRow compares message delivery with and without sender-side
// combining.
type CombinerRow struct {
	Program  string
	Dataset  string
	Combine  bool
	Messages int64
	Combined int64
	Seconds  float64
}

// AblationCombiner measures combiner effectiveness on PageRank (ΔV★,
// where per-superstep fan-in is maximal).
func AblationCombiner(ctx context.Context, dataset string, runs int) ([]CombinerRow, error) {
	g, err := LoadDataset(dataset)
	if err != nil {
		return nil, err
	}
	prog, err := core.Compile(programs.MustSource("pagerank"), core.Options{Mode: core.Baseline})
	if err != nil {
		return nil, err
	}
	var rows []CombinerRow
	for _, combine := range []bool{false, true} {
		row := CombinerRow{Program: "pagerank", Dataset: dataset, Combine: combine}
		for i := 0; i < maxInt(1, runs); i++ {
			res, err := vm.RunContext(ctx, prog, g, vm.RunOptions{Combine: combine, Workers: BenchWorkers})
			if err != nil {
				return rows, err // completed combiner rows survive an abort
			}
			row.Messages = res.Stats.MessagesSent
			row.Combined = res.Stats.CombinedMessages
			row.Seconds += res.Stats.Duration.Seconds()
		}
		row.Seconds /= float64(maxInt(1, runs))
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCombiner writes the combiner ablation as text.
func RenderCombiner(w io.Writer, rows []CombinerRow) error {
	fmt.Fprintln(w, "== Ablation: sender-side combiners ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tProgram\tCombiner\tMessages\tDelivered\tRuntime (s)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%v\t%d\t%d\t%.4f\n", r.Dataset, r.Program, r.Combine, r.Messages, r.Combined, r.Seconds)
	}
	return tw.Flush()
}
