package bench

import (
	"bytes"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"
)

// Peak-RSS measurement for the memory experiment. Go's heap statistics
// miss what the memory axis is about — mmap'd pages, allocator slack,
// fragmentation — so the sampler reads the kernel's VmRSS from
// /proc/self/status. VmHWM would be cheaper but is a process-lifetime
// high-water mark, useless for comparing configurations measured back to
// back in one process.

// ReadVmRSS returns the process's current resident set in bytes, or -1
// where /proc/self/status is unavailable (non-Linux).
func ReadVmRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return -1
	}
	return parseVmRSS(data)
}

// parseVmRSS extracts the "VmRSS: N kB" line from a /proc/self/status
// image, returning bytes or -1.
func parseVmRSS(data []byte) int64 {
	i := bytes.Index(data, []byte("VmRSS:"))
	if i < 0 {
		return -1
	}
	f := bytes.Fields(data[i+len("VmRSS:"):])
	if len(f) < 2 || string(f[1]) != "kB" {
		return -1
	}
	kb, err := strconv.ParseInt(string(f[0]), 10, 64)
	if err != nil {
		return -1
	}
	return kb << 10
}

// RSSSampler polls VmRSS on a fixed interval and tracks the maximum seen.
type RSSSampler struct {
	stop chan struct{}
	done chan struct{}
	peak int64
}

// StartRSSSampler begins sampling every interval (capped below at 1ms).
// The first sample is taken synchronously so even an instantly-stopped
// sampler reports the current footprint.
func StartRSSSampler(interval time.Duration) *RSSSampler {
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	s := &RSSSampler{stop: make(chan struct{}), done: make(chan struct{}), peak: ReadVmRSS()}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				if r := ReadVmRSS(); r > s.peak {
					s.peak = r
				}
			}
		}
	}()
	return s
}

// Stop halts sampling and returns the peak RSS observed (including one
// final synchronous sample), in bytes; -1 where RSS is unreadable.
func (s *RSSSampler) Stop() int64 {
	close(s.stop)
	<-s.done
	if r := ReadVmRSS(); r > s.peak {
		s.peak = r
	}
	return s.peak
}

// SettleHeap runs the collector and returns freed pages to the OS so the
// next measurement window starts from a reproducible floor. Returns the
// settled VmRSS.
func SettleHeap() int64 {
	runtime.GC()
	debug.FreeOSMemory()
	return ReadVmRSS()
}
