package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/programs"
)

// Streaming-delta experiment: after a handful of edge mutations arrive, is
// it cheaper to re-run the converged program from scratch on the mutated
// graph, or to warm-start from the pre-mutation snapshot and repair only
// the delta-incident contributions (DESIGN.md §11)? The seed run is not
// part of the comparison — it was already paid for when the original graph
// was processed.

// DeltaRow is one (program, dataset, variant) comparison of a full rerun
// against a delta-recomputation warm restart over the same mutations.
type DeltaRow struct {
	Program string
	Dataset string
	Variant string
	Arcs    int // arc changes in the applied delta (mirrors counted)
	Runs    int

	ScratchSeconds  float64
	ScratchMessages int64
	ScratchSteps    int

	DeltaSeconds  float64
	DeltaMessages int64
	DeltaSteps    int

	// Checkpoint persistence cost after the repair: a full terminal
	// snapshot of the repaired state vs the DVSNPD delta record an
	// incremental checkpoint chain would append for the same barrier.
	FullCkptBytes  int
	DeltaCkptBytes int
}

// deltaMutations builds the deterministic small-delta workload for a
// program: a few streaming edge arrivals. For min-fold programs (sssp, cc)
// the mutations are additions only — removals loosen a min input, which is
// not repairable in place (see vm.RunDelta).
func deltaMutations(program string, g *graph.Graph) (*graph.Delta, error) {
	n := g.NumVertices()
	d := &graph.Delta{}
	switch program {
	case "sssp":
		// New links toward the well-connected source (no distance changes)
		// plus one fresh shortcut out of it (a small local improvement).
		src := sourceVertex(g)
		d.AddWeightedEdge(graph.VertexID(n/7), src, 1)
		d.AddWeightedEdge(graph.VertexID(n/3), src, 1)
		d.AddWeightedEdge(src, graph.VertexID(n/2), 1)
		return d, nil
	case "cc":
		// New intra-component friendships: labels are already consistent,
		// the repair wave should die out immediately.
		d.AddEdge(7, graph.VertexID(n/2))
		d.AddEdge(graph.VertexID(n/4), graph.VertexID(3*n/4))
		return d, nil
	}
	return nil, fmt.Errorf("bench: no delta workload for %q", program)
}

// MeasureDelta runs the rerun-vs-repair comparison for one program,
// dataset and compiled variant, averaging wall time over runs executions.
func MeasureDelta(ctx context.Context, program, dataset, variant string, runs int) (DeltaRow, error) {
	g0, err := LoadDataset(dataset)
	if err != nil {
		return DeltaRow{}, err
	}
	mode, err := modeOf(variant)
	if err != nil {
		return DeltaRow{}, err
	}
	if runs <= 0 {
		runs = 1
	}
	d, err := deltaMutations(program, g0)
	if err != nil {
		return DeltaRow{}, err
	}
	compile := func() (*core.Program, error) {
		return core.Compile(programs.MustSource(program), core.Options{Mode: mode})
	}
	opts := vm.RunOptions{Combine: true, Workers: BenchWorkers}
	if program == "sssp" {
		opts.Params = map[string]float64{"src": float64(sourceVertex(g0))}
	}
	fail := func(err error) (DeltaRow, error) {
		return DeltaRow{}, fmt.Errorf("bench: delta %s/%s/%s: %w", program, dataset, variant, err)
	}

	// Seed: converge on the pre-mutation graph, capturing the terminal
	// snapshot in memory.
	prog, err := compile()
	if err != nil {
		return fail(err)
	}
	var buf bytes.Buffer
	seedOpts := opts
	seedOpts.Checkpoint = pregel.CheckpointOptions{Sink: &buf}
	if _, err := vm.RunContext(ctx, prog, g0, seedOpts); err != nil {
		return fail(err)
	}
	snap, err := pregel.ReadSnapshot(&buf)
	if err != nil {
		return fail(err)
	}

	g1, ad, err := graph.ApplyDelta(g0, d)
	if err != nil {
		return fail(err)
	}

	row := DeltaRow{Program: program, Dataset: dataset, Variant: variant, Arcs: len(ad.Arcs), Runs: runs}
	var scratchTotal, deltaTotal time.Duration
	for i := 0; i < runs; i++ {
		prog, err := compile()
		if err != nil {
			return fail(err)
		}
		res, err := vm.RunContext(ctx, prog, g1, opts)
		if err != nil {
			return fail(err)
		}
		scratchTotal += res.Stats.Duration
		row.ScratchMessages = res.Stats.MessagesSent
		row.ScratchSteps = res.Stats.Supersteps

		prog, err = compile()
		if err != nil {
			return fail(err)
		}
		dres, err := vm.RunDeltaContext(ctx, prog, g1, vm.DeltaRunOptions{
			RunOptions: opts,
			Snapshot:   snap,
			Changes:    ad,
		})
		if err != nil {
			return fail(err)
		}
		deltaTotal += dres.Stats.Duration
		row.DeltaMessages = dres.Stats.MessagesSent
		row.DeltaSteps = dres.Stats.Supersteps
	}
	row.ScratchSeconds = scratchTotal.Seconds() / float64(runs)
	row.DeltaSeconds = deltaTotal.Seconds() / float64(runs)

	// Checkpoint-bytes comparison, outside the timed loop so the snapshot
	// sink never pollutes the wall-clock numbers: repair once more with a
	// terminal-snapshot sink, then price persisting that barrier both ways.
	prog, err = compile()
	if err != nil {
		return fail(err)
	}
	var rbuf bytes.Buffer
	ckptOpts := opts
	ckptOpts.Checkpoint = pregel.CheckpointOptions{Sink: &rbuf}
	if _, err := vm.RunDeltaContext(ctx, prog, g1, vm.DeltaRunOptions{
		RunOptions: ckptOpts,
		Snapshot:   snap,
		Changes:    ad,
	}); err != nil {
		return fail(err)
	}
	rsnap, err := pregel.ReadSnapshot(&rbuf)
	if err != nil {
		return fail(err)
	}
	row.FullCkptBytes = len(rsnap.AppendTo(nil))
	row.DeltaCkptBytes = len(pregel.DiffSnapshots(snap, rsnap).AppendTo(nil))
	return row, nil
}

// DeltaCases are the canonical streaming workloads of the experiment.
var DeltaCases = []struct {
	Program, Dataset, Variant string
}{
	{"sssp", "wikipedia-s", VariantDV},
	{"sssp", "wikipedia-s", VariantMemoTable},
	{"cc", "facebook-s", VariantDV},
}

// DeltaRecompute runs the full experiment. Like Figure4, an abort returns
// the rows completed before the abort alongside the error.
func DeltaRecompute(ctx context.Context, runs int) ([]DeltaRow, error) {
	var rows []DeltaRow
	for _, c := range DeltaCases {
		r, err := MeasureDelta(ctx, c.Program, c.Dataset, c.Variant, runs)
		if err != nil {
			return rows, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// RenderDelta writes the comparison as text, one row per case with the
// rerun/repair ratios that make the payoff visible at a glance.
func RenderDelta(w io.Writer, rows []DeltaRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tProgram\tVariant\tΔarcs\tScratch (s)\tRepair (s)\tSpeedup\tScratch msgs\tRepair msgs\tScratch steps\tRepair steps\tFull ckpt (B)\tΔ ckpt (B)")
	for _, r := range rows {
		speedup := 0.0
		if r.DeltaSeconds > 0 {
			speedup = r.ScratchSeconds / r.DeltaSeconds
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.4f\t%.4f\t%.1fx\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Dataset, r.Program, r.Variant, r.Arcs,
			r.ScratchSeconds, r.DeltaSeconds, speedup,
			r.ScratchMessages, r.DeltaMessages, r.ScratchSteps, r.DeltaSteps,
			r.FullCkptBytes, r.DeltaCkptBytes)
	}
	return tw.Flush()
}
