package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestDeltaRecomputeCheaper pins the experiment's headline claim: on a
// small-delta streaming workload the warm repair takes strictly fewer
// supersteps AND strictly fewer messages than the from-scratch rerun, for
// every canonical case.
func TestDeltaRecomputeCheaper(t *testing.T) {
	rows, err := DeltaRecompute(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DeltaCases) {
		t.Fatalf("rows = %d, want %d", len(rows), len(DeltaCases))
	}
	for _, r := range rows {
		if r.Arcs == 0 {
			t.Errorf("%s/%s/%s: empty delta", r.Program, r.Dataset, r.Variant)
		}
		if r.DeltaSteps >= r.ScratchSteps {
			t.Errorf("%s/%s/%s: repair took %d supersteps, scratch %d — expected strictly fewer",
				r.Program, r.Dataset, r.Variant, r.DeltaSteps, r.ScratchSteps)
		}
		if r.DeltaMessages >= r.ScratchMessages {
			t.Errorf("%s/%s/%s: repair sent %d messages, scratch %d — expected strictly fewer",
				r.Program, r.Dataset, r.Variant, r.DeltaMessages, r.ScratchMessages)
		}
		// The incremental-checkpoint claim: persisting the post-repair
		// barrier as a DVSNPD delta record must cost a fraction of a full
		// snapshot — the record scales with what the repair wave touched,
		// not with graph size. The bound is pinned for the dv variant only:
		// memotable state rewrites its memo sections wholesale when the
		// repair renumbers supersteps, so its record is honestly large.
		if r.FullCkptBytes == 0 || r.DeltaCkptBytes == 0 {
			t.Errorf("%s/%s/%s: checkpoint-bytes columns missing: full=%d delta=%d",
				r.Program, r.Dataset, r.Variant, r.FullCkptBytes, r.DeltaCkptBytes)
		}
		if r.Variant == VariantDV && r.DeltaCkptBytes*4 >= r.FullCkptBytes {
			t.Errorf("%s/%s/%s: delta checkpoint record is %d bytes vs %d full — not O(touched)",
				r.Program, r.Dataset, r.Variant, r.DeltaCkptBytes, r.FullCkptBytes)
		}
	}
	var buf bytes.Buffer
	if err := RenderDelta(&buf, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wikipedia-s", "facebook-s", "Repair msgs", "Full ckpt", "Δ ckpt", "dV-memotable"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}

// TestMeasureDeltaErrors covers the error paths.
func TestMeasureDeltaErrors(t *testing.T) {
	if _, err := MeasureDelta(context.Background(), "sssp", "nope", VariantDV, 1); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if _, err := MeasureDelta(context.Background(), "sssp", testDS, "nope", 1); err == nil {
		t.Fatal("unknown variant should fail")
	}
	if _, err := MeasureDelta(context.Background(), "hits", testDS, VariantDV, 1); err == nil {
		t.Fatal("program without a delta workload should fail")
	}
	// A cancelled ctx aborts the seed run at its first barrier.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MeasureDelta(ctx, "cc", testDS, VariantDV, 1); err == nil {
		t.Fatal("cancelled ctx should abort")
	}
}
