package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/algorithms"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/pregel/transport"
)

// Shard experiment: the sharded message plane's cost axis. Each
// configuration runs a reference algorithm over an R-MAT graph either
// in-process (one engine, the zero-copy local transport) or split into
// two shards meshed over a unix socket — the same wire path two dvshard
// processes use, so the serialization, framing, and barrier costs are
// the real ones; only the process boundary itself is elided. Every
// sharded run's value digest is checked against the in-process run:
// the experiment measures the cost of distribution, never a different
// answer. Sharded wall clock includes forming the mesh (as a real
// two-process launch would), which dominates for short runs — compare
// ms/superstep on the long PageRank row for the steady-state overhead.

// ShardEdgeFactor is the R-MAT edge factor used by the shard experiment.
const ShardEdgeFactor = 16

// ShardRow is one (algorithm, configuration) cell.
type ShardRow struct {
	Algo        string  `json:"algo"`
	Config      string  `json:"config"` // "inproc" or "shard2-unix"
	Scale       int     `json:"scale"`
	Workers     int     `json:"workers"`
	Supersteps  int     `json:"supersteps"`
	Messages    int64   `json:"messages"`
	WireFrames  int64   `json:"wire_frames"`  // frames sent per shard 0 (0 in-process)
	WireBytes   int64   `json:"wire_bytes"`   // bytes sent by shard 0 (0 in-process)
	Seconds     float64 `json:"seconds"`      // best-of-runs wall clock
	NsSuperstep float64 `json:"ns_superstep"` // Seconds / Supersteps
	Digest      string  `json:"digest"`
	Identical   bool    `json:"identical"` // digest matches the in-process run
	AbortReason string  `json:"abort_reason,omitempty"`
}

// shardBenchWorkers is the total worker count for both configurations,
// chosen explicitly so the in-process and sharded runs are comparable
// (and bit-identical) regardless of GOMAXPROCS.
const shardBenchWorkers = 4

type shardAlgo struct {
	name string
	run  func(g *graph.Graph, opts algorithms.RunOptions) ([]float64, *pregel.Stats, error)
}

func shardAlgos() []shardAlgo {
	return []shardAlgo{
		{"pagerank", func(g *graph.Graph, opts algorithms.RunOptions) ([]float64, *pregel.Stats, error) {
			e, st, err := algorithms.RunPageRank(g, 20, opts)
			if err != nil {
				return nil, nil, err
			}
			vals := make([]float64, g.NumVertices())
			for u, v := range e.Values() {
				vals[u] = v.PR
			}
			return vals, st, nil
		}},
		{"sssp", func(g *graph.Graph, opts algorithms.RunOptions) ([]float64, *pregel.Stats, error) {
			e, st, err := algorithms.RunSSSP(g, 0, opts)
			if err != nil {
				return nil, nil, err
			}
			vals := make([]float64, g.NumVertices())
			for u, v := range e.Values() {
				vals[u] = v.Dist
			}
			return vals, st, nil
		}},
		{"cc", func(g *graph.Graph, opts algorithms.RunOptions) ([]float64, *pregel.Stats, error) {
			e, st, err := algorithms.RunCC(g, opts)
			if err != nil {
				return nil, nil, err
			}
			vals := make([]float64, g.NumVertices())
			for u, v := range e.Values() {
				vals[u] = float64(v.Comp)
			}
			return vals, st, nil
		}},
	}
}

func shardDigest(vals []float64) string {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ShardExperiment benches every algorithm in-process and 2-shard over a
// unix-socket mesh, runs times each, keeping the best wall clock.
func ShardExperiment(ctx context.Context, scale, runs int) ([]ShardRow, error) {
	if runs < 1 {
		runs = 1
	}
	g := graph.RMAT(scale, ShardEdgeFactor, 0.57, 0.19, 0.19, true, 42)
	var rows []ShardRow
	for _, a := range shardAlgos() {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		inproc, err := benchInproc(ctx, g, a, scale, runs)
		rows = append(rows, inproc)
		if err != nil {
			return rows, err
		}
		sharded, err := benchSharded(ctx, g, a, scale, runs, inproc.Digest)
		rows = append(rows, sharded)
		if err != nil {
			return rows, err
		}
	}
	return rows, nil
}

func benchInproc(ctx context.Context, g *graph.Graph, a shardAlgo, scale, runs int) (ShardRow, error) {
	row := ShardRow{Algo: a.name, Config: "inproc", Scale: scale, Workers: shardBenchWorkers}
	best := time.Duration(math.MaxInt64)
	for r := 0; r < runs; r++ {
		start := time.Now()
		vals, st, err := a.run(g, algorithms.RunOptions{Workers: shardBenchWorkers, Combine: true, Ctx: ctx})
		elapsed := time.Since(start)
		if err != nil {
			row.AbortReason = err.Error()
			return row, err
		}
		if elapsed < best {
			best = elapsed
		}
		row.Supersteps = st.Supersteps
		row.Messages = st.MessagesSent
		row.Digest = shardDigest(vals)
	}
	row.Seconds = best.Seconds()
	if row.Supersteps > 0 {
		row.NsSuperstep = float64(best.Nanoseconds()) / float64(row.Supersteps)
	}
	row.Identical = true
	return row, nil
}

func benchSharded(ctx context.Context, g *graph.Graph, a shardAlgo, scale, runs int, wantDigest string) (ShardRow, error) {
	row := ShardRow{Algo: a.name, Config: "shard2-unix", Scale: scale, Workers: shardBenchWorkers}
	best := time.Duration(math.MaxInt64)
	for r := 0; r < runs; r++ {
		dir, err := os.MkdirTemp("", "dvbench-shard")
		if err != nil {
			row.AbortReason = err.Error()
			return row, err
		}
		res, err := runShardedPair(ctx, g, a, dir)
		os.RemoveAll(dir)
		if err != nil {
			row.AbortReason = err.Error()
			return row, err
		}
		if res.elapsed < best {
			best = res.elapsed
		}
		row.Supersteps = res.stats.Supersteps
		row.Messages = res.stats.MessagesSent
		row.WireFrames = res.framesOut
		row.WireBytes = res.bytesOut
		row.Digest = shardDigest(res.vals)
	}
	row.Seconds = best.Seconds()
	if row.Supersteps > 0 {
		row.NsSuperstep = float64(best.Nanoseconds()) / float64(row.Supersteps)
	}
	row.Identical = row.Digest == wantDigest
	if !row.Identical {
		err := fmt.Errorf("bench: %s sharded digest %s != in-process %s", a.name, row.Digest, wantDigest)
		row.AbortReason = err.Error()
		return row, err
	}
	return row, nil
}

type shardedResult struct {
	vals      []float64
	stats     *pregel.Stats
	framesOut int64
	bytesOut  int64
	elapsed   time.Duration
}

// runShardedPair hosts both shards as goroutines over a fresh
// unix-socket mesh in dir and returns shard 0's view.
func runShardedPair(ctx context.Context, g *graph.Graph, a shardAlgo, dir string) (shardedResult, error) {
	addrs := []string{
		"unix:" + filepath.Join(dir, "s0.sock"),
		"unix:" + filepath.Join(dir, "s1.sock"),
	}
	var res [2]shardedResult
	errs := [2]error{}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := transport.DialMesh(transport.SocketConfig{
				Shard: i, Count: 2, Addrs: addrs,
				Fingerprint: g.Fingerprint(), Timeout: 30 * time.Second,
			})
			if err != nil {
				errs[i] = err
				return
			}
			defer tr.Close()
			opts := algorithms.RunOptions{
				Workers: shardBenchWorkers, Combine: true, Ctx: ctx,
				Shard: &pregel.ShardOptions{Index: i, Count: 2, Transport: tr},
			}
			vals, st, err := a.run(g, opts)
			if err != nil {
				errs[i] = err
				return
			}
			fo, bo, _, _ := tr.Counters()
			res[i] = shardedResult{vals: vals, stats: st, framesOut: fo, bytesOut: bo}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return shardedResult{}, err
		}
	}
	res[0].elapsed = elapsed
	return res[0], nil
}

// RenderShard writes the rows as an aligned table.
func RenderShard(w io.Writer, rows []ShardRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Algo\tConfig\tSupersteps\tMessages\tWire frames\tWire MB\tTime (s)\tms/superstep\tIdentical")
	for _, r := range rows {
		if r.AbortReason != "" {
			fmt.Fprintf(tw, "%s\t%s\tABORTED: %s\n", r.Algo, r.Config, r.AbortReason)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.2f\t%.4f\t%.3f\t%v\n",
			r.Algo, r.Config, r.Supersteps, r.Messages,
			r.WireFrames, float64(r.WireBytes)/(1<<20),
			r.Seconds, r.NsSuperstep/1e6, r.Identical)
	}
	return tw.Flush()
}

// ShardFile is the BENCH_shard.json snapshot layout.
type ShardFile struct {
	Benchmark  string     `json:"benchmark"`
	GoVersion  string     `json:"go_version"`
	EdgeFactor int        `json:"edge_factor"`
	Rows       []ShardRow `json:"rows"`
}

// WriteShardSnapshot writes rows to path as indented JSON.
func WriteShardSnapshot(path string, rows []ShardRow) error {
	file := ShardFile{
		Benchmark:  "sharded message plane: in-process vs 2 shards over a unix-socket mesh",
		GoVersion:  runtime.Version(),
		EdgeFactor: ShardEdgeFactor,
		Rows:       rows,
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
