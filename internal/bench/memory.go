package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
)

// Memory experiment: the iPregel-style axis. Each configuration loads an
// R-MAT graph from a DVGRAF file in one of the three representations
// (flat CSR, compact gap-varint CSR, mmap-backed compact), makes it
// reverse-capable as every serving path does, and runs a ΔV program over
// it, measuring structural bytes per arc, peak resident set over the
// load+run window, and throughput. The interesting contrast: a flat
// directed graph pays ~8 bytes per arc across outAdj/inAdj the moment
// the reverse is built, while the compact representation gap-varint
// encodes the out-direction (~2 bytes/arc on R-MAT) and defers the
// reverse until something actually iterates it — which the
// incrementalized pull-form programs never do, because the compiler
// turns their #in aggregations into pushes along out-edges.

// MemoryScales are the default R-MAT scales (log2 |V|) of the experiment.
var MemoryScales = []int{20, 22}

// MemoryEdgeFactor is arcs per vertex, the Graph500 convention.
const MemoryEdgeFactor = 16

// MemoryReprs is the representation axis, in rendering order.
var MemoryReprs = []string{"flat", "compact", "mmap"}

// MemoryPrograms is the program axis.
var MemoryPrograms = []string{"pagerank", "sssp"}

// memPageRankSrc is the stock ΔV PageRank bounded to 6 iterations so a
// scale-22 measurement stays in seconds; the memory footprint is
// iteration-independent.
const memPageRankSrc = `
init {
  local vl : float = 1.0 / graphSize;
  local pr : float = if |#out| > 0 then vl / |#out| else 0.0
};
iter i {
  let sum : float = + [ u.pr | u <- #in ] in
  vl = 0.15 + 0.85 * (sum / graphSize);
  pr = if |#out| > 0 then vl / |#out| else 0.0
} until {
  i >= 6
}
`

// memSSSPSrc is stock ΔV SSSP; R-MAT arcs are unweighted, so ew is 1 and
// distances are hop counts.
const memSSSPSrc = `
param src : int = 0;
init {
  local dist : float = if id == src then 0.0 else infty
};
iter k {
  let d : float = min [ u.dist + ew | u <- #in ] in
  dist = min dist d
} until {
  fixpoint
}
`

// MemRow is one (scale, program, representation) measurement.
type MemRow struct {
	Scale    int    `json:"scale"`
	Program  string `json:"program"`
	Repr     string `json:"repr"`
	Vertices int    `json:"vertices"`
	Arcs     int    `json:"arcs"`
	// GraphBytes is Graph.ArcBytes after the run: adjacency + offsets in
	// the process address space, including any reverse CSR the run forced
	// into existence. For mmap rows these bytes are file-backed.
	GraphBytes  int64   `json:"graph_bytes"`
	BytesPerArc float64 `json:"bytes_per_arc"`
	// PeakRSS is the peak VmRSS over the load+run window minus the
	// settled floor before loading; -1 where /proc is unavailable.
	PeakRSS      int64   `json:"peak_rss_bytes"`
	RSSPerArc    float64 `json:"rss_per_arc"`
	HeapInuse    uint64  `json:"heap_inuse_bytes"`
	LoadSeconds  float64 `json:"load_seconds"`
	Seconds      float64 `json:"run_seconds"`
	Steps        int     `json:"supersteps"`
	NsPerStep    float64 `json:"ns_per_superstep"`
	Runs         int     `json:"runs"`
	ReprReported string  `json:"repr_reported"`
	AbortReason  string  `json:"abort_reason,omitempty"`
}

func memLoadMode(repr string) (graph.LoadMode, error) {
	switch repr {
	case "flat":
		return graph.LoadFlat, nil
	case "compact":
		return graph.LoadCompact, nil
	case "mmap":
		return graph.LoadMmap, nil
	}
	return 0, fmt.Errorf("bench: unknown graph representation %q", repr)
}

func memProgram(name string) (string, error) {
	switch name {
	case "pagerank":
		return memPageRankSrc, nil
	case "sssp":
		return memSSSPSrc, nil
	}
	return "", fmt.Errorf("bench: unknown memory-experiment program %q", name)
}

// MemoryExperiment measures every (scale, program, repr) cell. Graphs are
// generated once per scale, written as DVGRAF into a temp dir, and every
// cell re-loads from that file so the measurement window covers the load
// path it is naming. On abort the completed rows are returned with the
// error, matching the other experiments.
func MemoryExperiment(ctx context.Context, scales []int, runs int) ([]MemRow, error) {
	if len(scales) == 0 {
		scales = MemoryScales
	}
	if runs <= 0 {
		runs = 1
	}
	dir, err := os.MkdirTemp("", "dvbench-mem")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var rows []MemRow
	var abortErr error
	for _, scale := range scales {
		path := filepath.Join(dir, fmt.Sprintf("rmat-s%d.dvg", scale))
		if ctx.Err() == nil { // don't generate multi-GB graphs after an abort
			if err := writeRMATGraph(path, scale); err != nil {
				return rows, err
			}
		}
		for _, prog := range MemoryPrograms {
			for _, repr := range MemoryReprs {
				if err := ctx.Err(); err != nil {
					if abortErr == nil {
						abortErr = err
					}
					rows = append(rows, MemRow{Scale: scale, Program: prog, Repr: repr, AbortReason: err.Error()})
					continue
				}
				row, err := measureMemCell(ctx, path, scale, prog, repr, runs)
				rows = append(rows, row)
				if err != nil {
					return rows, err
				}
			}
		}
	}
	return rows, abortErr
}

// writeRMATGraph generates the scale's R-MAT graph and serializes it,
// letting the builder's transient memory die before any measurement.
func writeRMATGraph(path string, scale int) error {
	g := graph.RMAT(scale, MemoryEdgeFactor, 0.57, 0.19, 0.19, true, 7)
	if err := graph.WriteGraphFile(path, g); err != nil {
		return err
	}
	SettleHeap()
	return nil
}

func measureMemCell(ctx context.Context, path string, scale int, prog, repr string, runs int) (MemRow, error) {
	row := MemRow{Scale: scale, Program: prog, Repr: repr, Runs: runs}
	mode, err := memLoadMode(repr)
	if err != nil {
		return row, err
	}
	src, err := memProgram(prog)
	if err != nil {
		return row, err
	}
	compiled, err := core.Compile(src, core.Options{Mode: core.Incremental})
	if err != nil {
		return row, err
	}

	base := SettleHeap()
	sampler := StartRSSSampler(5 * time.Millisecond)

	loadStart := time.Now()
	g, err := graph.ReadGraphFile(path, mode)
	if err != nil {
		sampler.Stop()
		return row, err
	}
	// Directed graphs are served reverse-capable, like every other loading
	// path in the repo (the Table-1 datasets build their in-CSR up front so
	// any program can run). Flat pays the full in-adjacency here; compact
	// merely arms its deferred reverse, which PageRank/SSSP never
	// materialize because the incrementalized runtime pushes along
	// out-edges only.
	g.BuildReverse()
	row.LoadSeconds = time.Since(loadStart).Seconds()
	row.Vertices, row.Arcs = g.NumVertices(), g.NumArcs()

	opts := vm.RunOptions{Combine: true, Workers: BenchWorkers}
	if prog == "sssp" {
		opts.Params = map[string]float64{"src": float64(sourceVertex(g))}
	}
	var total time.Duration
	for i := 0; i < runs; i++ {
		res, err := vm.RunContext(ctx, compiled, g, opts)
		if err != nil {
			row.AbortReason = err.Error()
			sampler.Stop()
			g.Close()
			return row, fmt.Errorf("bench: memory %s/s%d/%s: %w", prog, scale, repr, err)
		}
		total += res.Stats.Duration
		row.Steps = res.Stats.Supersteps
	}
	peak := sampler.Stop()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	row.HeapInuse = ms.HeapInuse
	row.GraphBytes = g.ArcBytes()
	row.ReprReported = g.Repr()
	if row.Arcs > 0 {
		row.BytesPerArc = float64(row.GraphBytes) / float64(row.Arcs)
	}
	if peak >= 0 && base >= 0 {
		row.PeakRSS = peak - base
		if row.Arcs > 0 {
			row.RSSPerArc = float64(row.PeakRSS) / float64(row.Arcs)
		}
	} else {
		row.PeakRSS = -1
	}
	row.Seconds = total.Seconds() / float64(runs)
	if row.Steps > 0 {
		row.NsPerStep = float64(total.Nanoseconds()) / float64(runs) / float64(row.Steps)
	}
	err = g.Close()
	SettleHeap()
	return row, err
}

// RenderMemory writes the memory rows as text.
func RenderMemory(w io.Writer, rows []MemRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Scale\tProgram\tRepr\tArcs\tGraph MB\tB/arc\tPeak RSS MB\tRSS B/arc\tLoad (s)\tRun (s)\tns/step")
	for _, r := range rows {
		if r.AbortReason != "" {
			fmt.Fprintf(tw, "%d\t%s\t%s\tABORTED: %s\n", r.Scale, r.Program, r.Repr, r.AbortReason)
			continue
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%.1f\t%.2f\t%.1f\t%.2f\t%.3f\t%.3f\t%.0f\n",
			r.Scale, r.Program, r.Repr, r.Arcs,
			float64(r.GraphBytes)/(1<<20), r.BytesPerArc,
			float64(r.PeakRSS)/(1<<20), r.RSSPerArc,
			r.LoadSeconds, r.Seconds, r.NsPerStep)
	}
	return tw.Flush()
}

// MemSummary holds the headline compact-vs-flat ratios for one
// (scale, program) pair: how many fewer structural bytes per arc the
// compact representation keeps resident, and its throughput cost.
type MemSummary struct {
	Scale        int     `json:"scale"`
	Program      string  `json:"program"`
	BytesRatio   float64 `json:"flat_over_compact_bytes_per_arc"`
	RSSRatio     float64 `json:"flat_over_compact_peak_rss"`
	SlowdownComp float64 `json:"compact_over_flat_ns_per_step"`
	SlowdownMmap float64 `json:"mmap_over_flat_ns_per_step"`
}

// SummarizeMemory derives the ratio rows from measured cells.
func SummarizeMemory(rows []MemRow) []MemSummary {
	type key struct {
		s int
		p string
	}
	byKey := map[key]map[string]MemRow{}
	var order []key
	for _, r := range rows {
		if r.AbortReason != "" {
			continue
		}
		k := key{r.Scale, r.Program}
		if byKey[k] == nil {
			byKey[k] = map[string]MemRow{}
			order = append(order, k)
		}
		byKey[k][r.Repr] = r
	}
	var out []MemSummary
	for _, k := range order {
		cells := byKey[k]
		flat, okF := cells["flat"]
		comp, okC := cells["compact"]
		if !okF || !okC {
			continue
		}
		s := MemSummary{Scale: k.s, Program: k.p}
		if comp.BytesPerArc > 0 {
			s.BytesRatio = flat.BytesPerArc / comp.BytesPerArc
		}
		if comp.PeakRSS > 0 && flat.PeakRSS > 0 {
			s.RSSRatio = float64(flat.PeakRSS) / float64(comp.PeakRSS)
		}
		if flat.NsPerStep > 0 {
			s.SlowdownComp = comp.NsPerStep / flat.NsPerStep
			if m, ok := cells["mmap"]; ok {
				s.SlowdownMmap = m.NsPerStep / flat.NsPerStep
			}
		}
		out = append(out, s)
	}
	return out
}

// RenderMemorySummary writes the ratio summary as text.
func RenderMemorySummary(w io.Writer, sums []MemSummary) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Scale\tProgram\tB/arc flat÷compact\tPeak RSS flat÷compact\tns/step compact÷flat\tns/step mmap÷flat")
	for _, s := range sums {
		fmt.Fprintf(tw, "%d\t%s\t%.2fx\t%.2fx\t%.2fx\t%.2fx\n",
			s.Scale, s.Program, s.BytesRatio, s.RSSRatio, s.SlowdownComp, s.SlowdownMmap)
	}
	return tw.Flush()
}

// MemFile is the on-disk BENCH_memory.json format.
type MemFile struct {
	Benchmark  string       `json:"benchmark"`
	GoVersion  string       `json:"go_version"`
	EdgeFactor int          `json:"edge_factor"`
	Rows       []MemRow     `json:"rows"`
	Summary    []MemSummary `json:"summary"`
}

// WriteMemorySnapshot writes the memory-experiment artifact.
func WriteMemorySnapshot(path string, rows []MemRow) error {
	file := MemFile{
		Benchmark:  "graph storage: flat vs compact vs mmap (R-MAT, dV PageRank/SSSP)",
		GoVersion:  runtime.Version(),
		EdgeFactor: MemoryEdgeFactor,
		Rows:       rows,
		Summary:    SummarizeMemory(rows),
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
