package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
	"text/tabwriter"

	"repro/internal/graph"
	"repro/internal/pregel"
)

// Engine micro-benchmark harness: the combined PageRank message-plane
// workload from internal/pregel's BenchmarkMessagePlane, runnable outside
// `go test` so cmd/dvbench can snapshot ns/op, B/op and allocs/op into
// BENCH_pregel.json before and after an engine change.

// MicroRow is one engine micro-benchmark measurement. AbortReason is
// non-empty when the configuration was cancelled or aborted before a clean
// measurement completed; its numbers are then partial and not comparable.
type MicroRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MsgsPerOp   int64   `json:"msgs_per_op"`
	AbortReason string  `json:"abort_reason,omitempty"`
}

// MicroSnapshot is one labelled run of the whole micro-benchmark suite.
type MicroSnapshot struct {
	Label     string     `json:"label"`
	GoVersion string     `json:"go_version"`
	Results   []MicroRow `json:"results"`
}

// MicroFile is the on-disk BENCH_pregel.json format: labelled snapshots
// (conventionally "before" and "after") of the same suite, so perf
// regressions and wins are diffable in-repo.
type MicroFile struct {
	Benchmark string                   `json:"benchmark"`
	Snapshots map[string]MicroSnapshot `json:"snapshots"`
}

// microVal / microProgram mirror internal/pregel's message-plane PageRank:
// every vertex active every superstep, rank/outdeg along every out-edge,
// sum-combined inbox.
type microVal struct{ Rank float64 }

type microProgram struct{ rounds int }

func (p microProgram) Init(ctx *pregel.Context[microVal, float64]) {
	ctx.Value().Rank = 1 / float64(ctx.NumVertices())
	if d := ctx.OutDegree(); d > 0 {
		ctx.BroadcastOut(ctx.Value().Rank / float64(d))
	}
}

func (p microProgram) Compute(ctx *pregel.Context[microVal, float64], msgs []float64) {
	sum := 0.0
	for _, m := range msgs {
		sum += m
	}
	ctx.Value().Rank = 0.15/float64(ctx.NumVertices()) + 0.85*sum
	if ctx.Superstep() < p.rounds {
		if d := ctx.OutDegree(); d > 0 {
			ctx.BroadcastOut(ctx.Value().Rank / float64(d))
		}
	} else {
		ctx.VoteToHalt()
	}
}

// PregelMicro runs the engine micro-benchmark suite (combined PageRank
// message plane on R-MAT and grid graphs, both schedulers, both
// partitionings) via testing.Benchmark and returns one row per
// configuration. When ctx is cancelled, remaining configurations are
// emitted as rows with AbortReason set instead of measurements, so the
// snapshot records how far the suite got.
func PregelMicro(ctx context.Context) []MicroRow {
	if ctx == nil {
		ctx = context.Background()
	}
	const rounds = 5
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"rmat", graph.RMAT(12, 8, 0.57, 0.19, 0.19, true, 99)},
		{"grid", graph.Grid(64, 64, 1, 5)},
	}
	scheds := []struct {
		name string
		s    pregel.Scheduler
	}{
		{"scan-all", pregel.ScanAll},
		{"work-queue", pregel.WorkQueue},
	}
	var rows []MicroRow
	for _, gs := range graphs {
		for _, sc := range scheds {
			for _, part := range []pregel.Partition{pregel.PartitionBlock, pregel.PartitionHash} {
				gs, sc, part := gs, sc, part
				name := "message-plane/" + gs.name + "/" + sc.name + "/" + part.String()
				if err := ctx.Err(); err != nil {
					rows = append(rows, MicroRow{Name: name, AbortReason: err.Error()})
					continue
				}
				msgs := int64(rounds+1) * int64(gs.g.NumArcs())
				var runErr error
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						e := pregel.New[microVal, float64](gs.g, pregel.Options{
							Workers:   4,
							Scheduler: sc.s,
							Partition: part,
						})
						e.SetCombiner(pregel.CombinerFunc[float64](func(a, b float64) float64 { return a + b }))
						if _, err := e.RunContext(ctx, microProgram{rounds: rounds}); err != nil {
							runErr = err
							return
						}
					}
				})
				row := MicroRow{
					Name:        name,
					NsPerOp:     float64(r.NsPerOp()),
					BytesPerOp:  r.AllocedBytesPerOp(),
					AllocsPerOp: r.AllocsPerOp(),
					MsgsPerOp:   msgs,
				}
				if runErr != nil {
					row.AbortReason = runErr.Error()
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// RenderMicro prints the micro-benchmark rows as an aligned table.
func RenderMicro(w io.Writer, rows []MicroRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tns/op\tB/op\tallocs/op\tmsgs/op")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d\t%d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.MsgsPerOp)
	}
	return tw.Flush()
}

// WriteMicroSnapshot merges a labelled snapshot into the JSON artifact at
// path, creating the file if needed and replacing any snapshot with the
// same label.
func WriteMicroSnapshot(path, label string, rows []MicroRow) error {
	file := MicroFile{
		Benchmark: "internal/pregel message plane (combined PageRank, 4 workers)",
		Snapshots: map[string]MicroSnapshot{},
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("bench: parse %s: %w", path, err)
		}
		if file.Snapshots == nil {
			file.Snapshots = map[string]MicroSnapshot{}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	file.Snapshots[label] = MicroSnapshot{
		Label:     label,
		GoVersion: runtime.Version(),
		Results:   rows,
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderMicroDelta prints per-configuration before→after ns/op and
// allocs/op changes when the artifact holds both snapshots.
func RenderMicroDelta(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var file MicroFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("bench: parse %s: %w", path, err)
	}
	before, okB := file.Snapshots["before"]
	after, okA := file.Snapshots["after"]
	if !okB || !okA {
		return nil // nothing to diff yet
	}
	byName := map[string]MicroRow{}
	for _, r := range before.Results {
		byName[r.Name] = r
	}
	names := make([]string, 0, len(after.Results))
	rowsByName := map[string]MicroRow{}
	for _, r := range after.Results {
		names = append(names, r.Name)
		rowsByName[r.Name] = r
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tns/op before\tns/op after\tspeedup\tallocs before\tallocs after")
	for _, name := range names {
		a := rowsByName[name]
		b, ok := byName[name]
		if !ok {
			continue
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%d\t%d\n",
			name, b.NsPerOp, a.NsPerOp, 100*(a.NsPerOp-b.NsPerOp)/b.NsPerOp, b.AllocsPerOp, a.AllocsPerOp)
	}
	return tw.Flush()
}
