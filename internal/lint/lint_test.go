package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// write drops one Go file into a fresh package dir and lints it.
func lintSource(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := Package(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestMapRangeDetected(t *testing.T) {
	fs := lintSource(t, `package x

type ID uint32

func fold(tbl map[ID]float64) float64 {
	acc := 0.0
	for _, v := range tbl {
		acc += v
	}
	for i, v := range []float64{1, 2} { // slices are fine
		_ = i
		acc += v
	}
	return acc
}
`)
	if len(fs) != 1 || fs[0].Check != "maprange" || fs[0].Pos.Line != 7 {
		t.Fatalf("findings = %v, want one maprange at line 7", fs)
	}
}

func TestMapRangeThroughCrossPackageValueType(t *testing.T) {
	// The map is composed in-package even though its key type comes from
	// an unresolvable import: the checker must still see a map.
	fs := lintSource(t, `package x

import "repro/internal/graph"

func fold(tbl map[graph.VertexID]float64) float64 {
	acc := 0.0
	for _, v := range tbl {
		acc += v
	}
	return acc
}
`)
	if len(fs) != 1 || fs[0].Check != "maprange" {
		t.Fatalf("findings = %v, want one maprange", fs)
	}
}

func TestTimeNowDetected(t *testing.T) {
	fs := lintSource(t, `package x

import (
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano()
}

func local() {
	time := struct{ Now func() int }{Now: func() int { return 0 }}
	_ = time.Now()
}
`)
	if len(fs) != 1 || fs[0].Check != "timenow" || fs[0].Pos.Line != 8 {
		t.Fatalf("findings = %v, want one timenow at line 8 (shadowed time is fine)", fs)
	}
}

func TestAllowAnnotations(t *testing.T) {
	fs := lintSource(t, `package x

import "time"

func ok(tbl map[int]int) int {
	acc := 0
	for _, v := range tbl { //lint:allow maprange — sum is commutative
		acc += v
	}
	//lint:allow timenow — stats-only timing
	_ = time.Now()
	return acc
}

func bad(tbl map[int]int) {
	//lint:allow timenow — wrong check name does not excuse a map range
	for range tbl {
	}
}
`)
	if len(fs) != 1 || fs[0].Check != "maprange" || fs[0].Pos.Line != 17 {
		t.Fatalf("findings = %v, want only the mismatched-annotation maprange at line 17", fs)
	}
}

func TestRepoDeterministicPackagesAreClean(t *testing.T) {
	// The CI gate in miniature: the fold/repair packages must stay free of
	// unannotated map ranges and wall-clock reads.
	for _, dir := range []string{
		"../core", "../deltav/vm", "../pregel", "../serve",
	} {
		fs, err := Package(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range fs {
			t.Errorf("%s: %s", dir, f)
		}
	}
}
