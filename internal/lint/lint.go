// Package lint is a tiny stdlib-only static checker for the repo's
// determinism-critical packages. The ΔV runtime promises bitwise
// reproducible folds and repairs, and the two classic ways Go code breaks
// that promise are iterating a map (randomized order) and reading the
// wall clock. dvlint walks a package and reports:
//
//   - maprange: a range statement over a map. Sort the keys first, or
//     annotate the line (or the line above) with
//     "//lint:allow maprange — <why the fold is order-insensitive>".
//   - timenow: a time.Now call. Wall-clock reads belong in stats, not in
//     anything that feeds a fold; annotate stats-only timing with
//     "//lint:allow timenow — <reason>".
//
// The checker type-checks each package in isolation with a stub importer:
// cross-package named types resolve to invalid, so a range over a map
// returned by another package can escape it (best-effort, no false
// positives on slices), but every map declared or composed inside the
// package — the shape all fold state takes — is seen.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos     token.Position
	Check   string // "maprange" or "timenow"
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Package lints every non-test .go file of the single package in dir and
// returns the findings in file/line order.
func Package(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Error:    func(error) {}, // imports are stubs; their errors are expected
		Importer: stubImporter{},
	}
	// The returned error repeats what the handler swallowed; intra-package
	// declarations are fully checked regardless.
	_, _ = conf.Check(dir, fset, files, info)

	var out []Finding
	for _, f := range files {
		allowed := allowLines(fset, f)
		report := func(pos token.Pos, check, msg string) {
			p := fset.Position(pos)
			if hasAllow(allowed, p.Line, check) || hasAllow(allowed, p.Line-1, check) {
				return
			}
			out = append(out, Finding{Pos: p, Check: check, Message: msg})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						report(n.Range, "maprange",
							"map iteration order is nondeterministic; sort the keys first, or annotate //lint:allow maprange with why the consumer is order-insensitive")
					}
				}
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok && n.Sel.Name == "Now" {
					if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "time" {
						report(n.Sel.NamePos, "timenow",
							"wall-clock reads are forbidden on deterministic fold/repair paths; annotate //lint:allow timenow for stats-only timing")
					}
				}
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Column < out[j].Pos.Column
	})
	return out, nil
}

// allowLines collects "//lint:allow <check> ..." annotations by the line
// the comment starts on.
func allowLines(fset *token.FileSet, f *ast.File) map[int][]string {
	m := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			i := strings.Index(text, "lint:allow ")
			if i < 0 {
				continue
			}
			fields := strings.Fields(text[i+len("lint:allow "):])
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			m[line] = append(m[line], fields[0])
		}
	}
	return m
}

func hasAllow(m map[int][]string, line int, check string) bool {
	for _, c := range m[line] {
		if c == check {
			return true
		}
	}
	return false
}

// stubImporter satisfies every import with an empty marked-complete
// package, so single-package type checking proceeds without a build
// graph. Identifiers from those packages type as invalid, which the
// checks treat as "not a map" / "not the time package".
type stubImporter map[string]*types.Package

func (si stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := si[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	si[path] = p
	return p, nil
}
