package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderDirectedCSR(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Finalize()
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if !g.Directed() {
		t.Fatal("Directed = false, want true")
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("OutNeighbors(0) = %v, want [1 2]", got)
	}
	if d := g.OutDegree(1); d != 0 {
		t.Fatalf("OutDegree(1) = %d, want 0", d)
	}
	if g.HasReverse() {
		t.Fatal("directed graph should not have reverse adjacency before BuildReverse")
	}
}

func TestBuilderUndirectedMirrors(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Finalize()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if g.NumArcs() != 4 {
		t.Fatalf("NumArcs = %d, want 4", g.NumArcs())
	}
	if got := g.OutNeighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("OutNeighbors(1) = %v, want [0 2]", got)
	}
	if !g.HasReverse() {
		t.Fatal("undirected graph must always expose reverse adjacency")
	}
	if g.InDegree(1) != 2 {
		t.Fatalf("InDegree(1) = %d, want 2", g.InDegree(1))
	}
}

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(2, true)
	b.SetDedup(true)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.Finalize()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range vertex")
		}
	}()
	NewBuilder(2, true).AddEdge(0, 5)
}

func TestBuildReverseDirected(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddWeightedEdge(0, 2, 5)
	b.AddWeightedEdge(1, 2, 7)
	b.AddWeightedEdge(2, 3, 9)
	g := b.Finalize()
	g.BuildReverse()
	if got := g.InNeighbors(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("InNeighbors(2) = %v, want [0 1]", got)
	}
	ws := g.InWeights(2)
	if len(ws) != 2 || ws[0] != 5 || ws[1] != 7 {
		t.Fatalf("InWeights(2) = %v, want [5 7]", ws)
	}
	if g.InDegree(0) != 0 || g.InDegree(3) != 1 {
		t.Fatalf("InDegree(0,3) = %d,%d; want 0,1", g.InDegree(0), g.InDegree(3))
	}
	// Idempotent.
	g.BuildReverse()
	if g.InDegree(2) != 2 {
		t.Fatal("BuildReverse not idempotent")
	}
}

// Property: for any directed graph, sum of out-degrees equals sum of
// in-degrees equals the number of arcs, and every out-arc (u,v) appears as
// an in-arc at v.
func TestReverseIsExactTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := rng.Intn(4 * n)
		b := NewBuilder(n, true)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Finalize()
		g.BuildReverse()
		sumOut, sumIn := 0, 0
		for u := 0; u < n; u++ {
			sumOut += g.OutDegree(VertexID(u))
			sumIn += g.InDegree(VertexID(u))
		}
		if sumOut != sumIn || sumOut != g.NumArcs() {
			return false
		}
		// Count (u,v) pairs both ways.
		fwd := map[[2]VertexID]int{}
		rev := map[[2]VertexID]int{}
		for u := 0; u < n; u++ {
			for _, v := range g.OutNeighbors(VertexID(u)) {
				fwd[[2]VertexID{VertexID(u), v}]++
			}
			for _, v := range g.InNeighbors(VertexID(u)) {
				rev[[2]VertexID{v, VertexID(u)}]++
			}
		}
		if len(fwd) != len(rev) {
			return false
		}
		for k, c := range fwd {
			if rev[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerators(t *testing.T) {
	t.Run("rmat", func(t *testing.T) {
		g := RMAT(8, 4, 0.57, 0.19, 0.19, true, 42)
		if g.NumVertices() != 256 {
			t.Fatalf("|V| = %d, want 256", g.NumVertices())
		}
		if g.NumEdges() == 0 || g.NumEdges() > 4*256 {
			t.Fatalf("|E| = %d out of range", g.NumEdges())
		}
		// Deterministic.
		g2 := RMAT(8, 4, 0.57, 0.19, 0.19, true, 42)
		if g.NumEdges() != g2.NumEdges() {
			t.Fatal("RMAT not deterministic for fixed seed")
		}
	})
	t.Run("preferential-attachment", func(t *testing.T) {
		g := PreferentialAttachment(500, 3, 7)
		if g.NumVertices() != 500 {
			t.Fatalf("|V| = %d, want 500", g.NumVertices())
		}
		if _, comps := ConnectedComponents(g); comps != 1 {
			t.Fatalf("BA graph has %d components, want 1", comps)
		}
		st := Summarize(g)
		if st.MinOutDeg < 3 {
			t.Fatalf("min degree %d, want >= 3", st.MinOutDeg)
		}
	})
	t.Run("erdos-renyi", func(t *testing.T) {
		g := ErdosRenyi(100, 300, true, 5)
		if g.NumEdges() != 300 {
			t.Fatalf("|E| = %d, want 300", g.NumEdges())
		}
	})
	t.Run("grid", func(t *testing.T) {
		g := Grid(5, 7, 10, 3)
		if g.NumVertices() != 35 {
			t.Fatalf("|V| = %d, want 35", g.NumVertices())
		}
		wantEdges := 5*6 + 4*7 // horizontal + vertical
		if g.NumEdges() != wantEdges {
			t.Fatalf("|E| = %d, want %d", g.NumEdges(), wantEdges)
		}
		if !g.Weighted() {
			t.Fatal("grid with maxW=10 should be weighted")
		}
	})
	t.Run("watts-strogatz", func(t *testing.T) {
		g := WattsStrogatz(200, 4, 0.1, 7)
		if g.NumVertices() != 200 {
			t.Fatalf("|V| = %d, want 200", g.NumVertices())
		}
		// The lattice contributes n·k/2 edges; rewiring preserves the count.
		if g.NumEdges() != 400 {
			t.Fatalf("|E| = %d, want 400", g.NumEdges())
		}
		if _, comps := ConnectedComponents(g); comps != 1 {
			t.Fatalf("components = %d, want 1 at beta=0.1", comps)
		}
		// beta=0 is the pure ring lattice: every degree is exactly k.
		ring := WattsStrogatz(50, 4, 0, 1)
		st := Summarize(ring)
		if st.MinOutDeg != 4 || st.MaxOutDeg != 4 {
			t.Fatalf("ring lattice degrees = [%d,%d], want [4,4]", st.MinOutDeg, st.MaxOutDeg)
		}
		// Odd k is rounded up; k >= n is clamped.
		if g2 := WattsStrogatz(10, 3, 0, 2); g2.OutDegree(0) != 4 {
			t.Fatalf("odd-k degree = %d, want 4", g2.OutDegree(0))
		}
	})
	t.Run("star-path-cycle-complete", func(t *testing.T) {
		if g := Star(10, true); g.OutDegree(0) != 9 {
			t.Fatalf("star hub degree = %d, want 9", g.OutDegree(0))
		}
		if g := Path(10, false); g.NumEdges() != 9 {
			t.Fatalf("path |E| = %d, want 9", g.NumEdges())
		}
		if g := Cycle(10, true); g.NumEdges() != 10 {
			t.Fatalf("cycle |E| = %d, want 10", g.NumEdges())
		}
		if g := Complete(5, false); g.NumEdges() != 10 {
			t.Fatalf("K5 |E| = %d, want 10", g.NumEdges())
		}
	})
}

func TestWithRandomWeights(t *testing.T) {
	g := Cycle(10, false)
	wg := WithRandomWeights(g, 1, 5, 9)
	if !wg.Weighted() {
		t.Fatal("expected weighted graph")
	}
	if wg.NumEdges() != g.NumEdges() {
		t.Fatalf("|E| changed: %d != %d", wg.NumEdges(), g.NumEdges())
	}
	// Mirrored arcs must carry the same weight.
	for u := 0; u < wg.NumVertices(); u++ {
		adj := wg.OutNeighbors(VertexID(u))
		ws := wg.OutWeights(VertexID(u))
		for i, v := range adj {
			back := wg.OutNeighbors(v)
			bws := wg.OutWeights(v)
			found := false
			for j, x := range back {
				if x == VertexID(u) && bws[j] == ws[i] {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) weight %g not mirrored", u, v, ws[i])
			}
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := RMAT(6, 4, 0.57, 0.19, 0.19, true, 11)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip |E| = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	for u := 0; u < g.NumVertices() && u < g2.NumVertices(); u++ {
		a, b := g.OutNeighbors(VertexID(u)), g2.OutNeighbors(VertexID(u))
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch: %d vs %d", u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency mismatch at %d", u, i)
			}
		}
	}
}

func TestEdgeListWeightedRoundTrip(t *testing.T) {
	g := Grid(4, 4, 9, 1)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Weighted() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("weighted round trip mismatch: weighted=%v |E|=%d want %d",
			g2.Weighted(), g2.NumEdges(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",
		"a b\n",
		"0 b\n",
		"0 1 x\n",
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c), true); err == nil {
			t.Fatalf("ReadEdgeList(%q) succeeded, want error", c)
		}
	}
	// Comments and blank lines are fine.
	g, err := ReadEdgeList(strings.NewReader("# c\n\n% c2\n0 1\n"), true)
	if err != nil || g.NumEdges() != 1 {
		t.Fatalf("comment handling failed: %v, %v", g, err)
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# only comments\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty input produced %v", g)
	}
}

func TestConnectedComponentsOracle(t *testing.T) {
	// Two triangles plus an isolated vertex.
	b := NewBuilder(7, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 3)
	g := b.Finalize()
	labels, comps := ConnectedComponents(g)
	if comps != 3 {
		t.Fatalf("components = %d, want 3", comps)
	}
	want := []VertexID{0, 0, 0, 3, 3, 3, 6}
	for i, l := range labels {
		if l != want[i] {
			t.Fatalf("label[%d] = %d, want %d", i, l, want[i])
		}
	}
}

func TestConnectedComponentsDirectedTreatsAsUndirected(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddEdge(1, 0) // only a back edge; undirected reachability must still join them
	b.AddEdge(2, 3)
	g := b.Finalize()
	_, comps := ConnectedComponents(g)
	if comps != 2 {
		t.Fatalf("components = %d, want 2", comps)
	}
}

func TestDatasets(t *testing.T) {
	for _, d := range Datasets() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			g := d.Build()
			if g.Directed() != d.Directed {
				t.Fatalf("directedness = %v, want %v", g.Directed(), d.Directed)
			}
			if g.NumVertices() < 1000 {
				t.Fatalf("|V| = %d, unexpectedly small", g.NumVertices())
			}
			if !g.HasReverse() {
				t.Fatal("datasets must expose reverse adjacency for pull-based programs")
			}
			st := Summarize(g)
			if st.MaxOutDeg < 3*int(st.AvgOutDeg) {
				t.Fatalf("degree distribution not skewed: %v", st)
			}
		})
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("DatasetByName(nope) should fail")
	}
	if d, err := DatasetByName("wikipedia-s"); err != nil || d.Original != "Wikipedia" {
		t.Fatalf("DatasetByName(wikipedia-s) = %v, %v", d, err)
	}
}

func TestSummarizeAndHistogram(t *testing.T) {
	g := Star(11, true)
	st := Summarize(g)
	if st.MaxOutDeg != 10 || st.MinOutDeg != 0 {
		t.Fatalf("star stats wrong: %v", st)
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
	h := DegreeHistogram(g)
	if len(h) != 2 || h[0] != [2]int{0, 10} || h[1] != [2]int{10, 1} {
		t.Fatalf("histogram = %v", h)
	}
	empty := NewBuilder(0, true).Finalize()
	if s := Summarize(empty); s.Vertices != 0 {
		t.Fatalf("empty summary = %v", s)
	}
}

func TestGraphString(t *testing.T) {
	g := Path(3, true)
	if s := g.String(); !strings.Contains(s, "directed") || !strings.Contains(s, "|V|=3") {
		t.Fatalf("String() = %q", s)
	}
}
