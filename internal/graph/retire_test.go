package graph

import (
	"path/filepath"
	"sync"
	"testing"
)

// TestRetainDefersUnmapPastReaders is the regression test for the serving
// use-after-unmap: readers holding ArcIter cursors over a file-mapped
// graph while another goroutine retires it with Close. Before the refs
// guard, Close unmapped immediately and the readers faulted on the dead
// mapping (a crash, not a -race report — the kernel sees the access first);
// with it, Close defers the unmap to the last Release and every read
// completes against live pages.
func TestRetainDefersUnmapPastReaders(t *testing.T) {
	g := WithRandomWeights(RMAT(9, 8, 0.57, 0.19, 0.19, true, 7), 1, 10, 4)
	path := filepath.Join(t.TempDir(), "g.dvg")
	if err := WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	m, err := ReadGraphFile(path, LoadMmap)
	if err != nil {
		t.Fatal(err)
	}
	wantSum := degreeSum(g)

	const readers = 8
	var wg sync.WaitGroup
	pinned := make(chan struct{}, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			first := true
			for {
				if !m.Retain() {
					if first {
						// Every reader must win at least one pin before
						// Close is allowed to run; see the barrier below.
						panic("retire_test: first Retain failed before Close")
					}
					return
				}
				if got := degreeSum(m); got != wantSum {
					m.Release()
					panic("retire_test: torn read from retired mapping")
				}
				if first {
					first = false
					pinned <- struct{}{}
				}
				m.Release()
			}
		}()
	}
	// Wait until every reader holds (or has held) a pin, then retire the
	// graph out from under them.
	for i := 0; i < readers; i++ {
		<-pinned
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()

	if m.Retain() {
		t.Fatal("Retain succeeded after Close")
	}
	if m.Mapped() {
		t.Fatal("mapping still live after Close and all Releases")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// degreeSum walks every arc through the copy-free cursor, touching the
// mapped pages the way the serving read path does.
func degreeSum(g *Graph) int64 {
	var sum int64
	for u := 0; u < g.NumVertices(); u++ {
		it := g.OutArcs(VertexID(u))
		for it.Next() {
			sum += int64(it.To())
		}
	}
	return sum
}

// TestRetainHeapGraph: pins on a heap-backed graph are bookkeeping only,
// but the closed-after-Close contract must hold for every representation
// so serving code can stay representation-agnostic.
func TestRetainHeapGraph(t *testing.T) {
	g := Cycle(10, true)
	if !g.Retain() {
		t.Fatal("Retain on open heap graph failed")
	}
	g.Release()
	if err := g.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if g.Retain() {
		t.Fatal("Retain succeeded after Close on heap graph")
	}
}

// TestCloseWithPinnedReaderKeepsMapping: the mapping must remain readable
// between Close and the final Release.
func TestCloseWithPinnedReaderKeepsMapping(t *testing.T) {
	g := RMAT(8, 6, 0.57, 0.19, 0.19, true, 3)
	path := filepath.Join(t.TempDir(), "g.dvg")
	if err := WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	m, err := ReadGraphFile(path, LoadMmap)
	if err != nil {
		t.Fatal(err)
	}
	mapped := m.Mapped()
	if !m.Retain() {
		t.Fatal("Retain failed")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close with pin: %v", err)
	}
	if mapped && !m.Mapped() {
		t.Fatal("Close unmapped despite an outstanding pin")
	}
	// Reads through the pin still see every arc.
	if got, want := degreeSum(m), degreeSum(g); got != want {
		t.Fatalf("pinned read after Close: sum %d, want %d", got, want)
	}
	m.Release()
	if mapped && m.Mapped() {
		t.Fatal("final Release did not unmap")
	}
}
