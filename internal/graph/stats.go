package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes a graph's degree structure.
type Stats struct {
	Vertices  int
	Edges     int
	Directed  bool
	Weighted  bool
	MinOutDeg int
	MaxOutDeg int
	AvgOutDeg float64
	Isolated  int // vertices with out-degree 0 (and in-degree 0 if known)
}

// Summarize computes Stats for g.
func Summarize(g *Graph) Stats {
	s := Stats{
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Directed: g.Directed(),
		Weighted: g.Weighted(),
	}
	if g.NumVertices() == 0 {
		return s
	}
	s.MinOutDeg = g.OutDegree(0)
	for u := 0; u < g.NumVertices(); u++ {
		d := g.OutDegree(VertexID(u))
		if d < s.MinOutDeg {
			s.MinOutDeg = d
		}
		if d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
		if d == 0 {
			iso := true
			// Consult the in-degree only when the reverse CSR is actually
			// materialized: summarizing must not force a compact graph's
			// deferred reverse adjacency into memory.
			if g.inOff != nil && g.InDegree(VertexID(u)) > 0 {
				iso = false
			}
			if iso {
				s.Isolated++
			}
		}
	}
	s.AvgOutDeg = float64(g.NumArcs()) / float64(g.NumVertices())
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	kind := "undirected"
	if s.Directed {
		kind = "directed"
	}
	return fmt.Sprintf("%s |V|=%d |E|=%d deg[min=%d avg=%.2f max=%d] isolated=%d",
		kind, s.Vertices, s.Edges, s.MinOutDeg, s.AvgOutDeg, s.MaxOutDeg, s.Isolated)
}

// DegreeHistogram returns sorted (degree, count) pairs of the out-degree
// distribution.
func DegreeHistogram(g *Graph) [][2]int {
	counts := make(map[int]int)
	for u := 0; u < g.NumVertices(); u++ {
		counts[g.OutDegree(VertexID(u))]++
	}
	out := make([][2]int, 0, len(counts))
	for d, c := range counts {
		out = append(out, [2]int{d, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// ConnectedComponents labels every vertex with the smallest vertex ID
// reachable from it treating edges as undirected, and returns the labels
// plus the number of components. It is used by tests as an oracle for the
// CC benchmark programs.
func ConnectedComponents(g *Graph) ([]VertexID, int) {
	n := g.NumVertices()
	label := make([]VertexID, n)
	for i := range label {
		label[i] = VertexID(n) // sentinel: unvisited
	}
	if g.Directed() {
		g.BuildReverse()
	}
	count := 0
	stack := make([]VertexID, 0, 64)
	for start := 0; start < n; start++ {
		if label[start] != VertexID(n) {
			continue
		}
		count++
		root := VertexID(start)
		stack = append(stack[:0], root)
		label[start] = root
		visit := func(v VertexID) {
			if label[v] == VertexID(n) {
				label[v] = root
				stack = append(stack, v)
			}
		}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.ForEachOutNeighbor(u, visit)
			if g.Directed() {
				g.ForEachInNeighbor(u, visit)
			}
		}
	}
	return label, count
}
