package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// arcKey is one (target, weight) out-arc used for multiset comparison;
// weight defaults to 1 for unweighted graphs so a graph whose weights all
// happen to equal 1 compares equal to its unweighted round-trip image.
type arcKey struct {
	v VertexID
	w float64
}

func outArcs(g *Graph, u VertexID) []arcKey {
	adj := g.OutNeighbors(u)
	ws := g.OutWeights(u)
	arcs := make([]arcKey, len(adj))
	for i, v := range adj {
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		arcs[i] = arcKey{v, w}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].v != arcs[j].v {
			return arcs[i].v < arcs[j].v
		}
		return arcs[i].w < arcs[j].w
	})
	return arcs
}

func sameGraph(t *testing.T, label string, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() {
		t.Fatalf("%s: |V| %d != %d", label, a.NumVertices(), b.NumVertices())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: |E| %d != %d", label, a.NumEdges(), b.NumEdges())
	}
	if a.Directed() != b.Directed() {
		t.Fatalf("%s: directedness %v != %v", label, a.Directed(), b.Directed())
	}
	for u := 0; u < a.NumVertices(); u++ {
		ga, gb := outArcs(a, VertexID(u)), outArcs(b, VertexID(u))
		if len(ga) != len(gb) {
			t.Fatalf("%s: vertex %d out-degree %d != %d", label, u, len(ga), len(gb))
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("%s: vertex %d arc %d: %+v != %+v", label, u, i, ga[i], gb[i])
			}
		}
	}
}

// TestEdgeListRoundTripProperty generates random graphs across the full
// cross product of {weighted, unweighted} × {directed, undirected}, with
// self-loops and sparse vertex IDs, and checks WriteEdgeList → ReadEdgeList
// reproduces the graph exactly (and is idempotent across a second trip).
func TestEdgeListRoundTripProperty(t *testing.T) {
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 6151))
		directed := rng.Intn(2) == 0
		weighted := rng.Intn(2) == 0
		sparse := rng.Intn(2) == 0

		// Pick the ID universe: dense 0..n-1 or a sparse subset of a much
		// larger range (ReadEdgeList keeps IDs as given, n = 1 + max id).
		nIDs := 2 + rng.Intn(20)
		ids := make([]VertexID, nIDs)
		if sparse {
			seen := map[int]bool{}
			for i := range ids {
				id := rng.Intn(10 * nIDs)
				for seen[id] {
					id = rng.Intn(10 * nIDs)
				}
				seen[id] = true
				ids[i] = VertexID(id)
			}
		} else {
			for i := range ids {
				ids[i] = VertexID(i)
			}
		}

		type edge struct {
			u, v VertexID
			w    float64
		}
		nEdges := 1 + rng.Intn(4*nIDs)
		edges := make([]edge, 0, nEdges)
		maxID := VertexID(0)
		for i := 0; i < nEdges; i++ {
			u := ids[rng.Intn(nIDs)]
			v := ids[rng.Intn(nIDs)]
			if i == 0 || rng.Intn(8) == 0 {
				v = u // guarantee self-loops appear
			}
			w := 1.0
			if weighted {
				w = []float64{0.5, 1.5, 2, 3.25}[rng.Intn(4)]
			}
			if u > maxID {
				maxID = u
			}
			if v > maxID {
				maxID = v
			}
			edges = append(edges, edge{u, v, w})
		}

		bld := NewBuilder(int(maxID)+1, directed)
		for _, e := range edges {
			bld.AddWeightedEdge(e.u, e.v, e.w)
		}
		orig := bld.Finalize()

		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, orig); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ReadEdgeList(bytes.NewReader(buf.Bytes()), directed)
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		label := fmt.Sprintf("trial %d (directed=%v weighted=%v sparse=%v)", trial, directed, weighted, sparse)
		sameGraph(t, label, orig, got)

		// Second trip: writing the re-read graph must reproduce it again.
		var buf2 bytes.Buffer
		if err := WriteEdgeList(&buf2, got); err != nil {
			t.Fatalf("%s: rewrite: %v", label, err)
		}
		got2, err := ReadEdgeList(bytes.NewReader(buf2.Bytes()), directed)
		if err != nil {
			t.Fatalf("%s: reread: %v", label, err)
		}
		sameGraph(t, label+" second trip", got, got2)
	}
}

// TestReadEdgeListCommentsAndBlanks checks '#' and '%' comment styles,
// blank lines, mixed 2/3-column rows and leading whitespace all parse.
func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := strings.Join([]string{
		"# hash comment",
		"% percent comment",
		"",
		"   ",
		"0 1",
		"  1 2 2.5",
		"2 2", // self-loop
		"# trailing comment",
	}, "\n")
	g, err := ReadEdgeList(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got |V|=%d |E|=%d, want 3 and 3", g.NumVertices(), g.NumEdges())
	}
	// The mixed-width rows default missing weights to 1.
	arcs := outArcs(g, 1)
	if len(arcs) != 1 || arcs[0] != (arcKey{2, 2.5}) {
		t.Fatalf("vertex 1 arcs = %+v", arcs)
	}
	if a := outArcs(g, 0); len(a) != 1 || a[0] != (arcKey{1, 1}) {
		t.Fatalf("vertex 0 arcs = %+v", a)
	}
}

// TestEdgeListZeroEdges pins the empty-input contract: no edges means an
// empty graph (not an error), and writing it back yields a header-only
// file that round-trips.
func TestEdgeListZeroEdges(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g, err := ReadEdgeList(strings.NewReader("# nothing here\n\n"), directed)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() != 0 || g.NumEdges() != 0 {
			t.Fatalf("empty input: |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(buf.String(), "#") || strings.Count(buf.String(), "\n") != 1 {
			t.Fatalf("empty graph wrote:\n%q", buf.String())
		}
		again, err := ReadEdgeList(bytes.NewReader(buf.Bytes()), directed)
		if err != nil {
			t.Fatal(err)
		}
		sameGraph(t, "zero-edge round trip", g, again)
	}
}
