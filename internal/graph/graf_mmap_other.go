//go:build !unix

package graph

// readGraphMmap is unavailable off unix; ReadGraphFile falls back to the
// buffered compact loader.
func readGraphMmap(path string) (*Graph, bool, error) {
	return nil, false, nil
}
