package graph

import (
	"math"
	"sync"
	"testing"
)

// compactCorpus builds a spread of graphs exercising every structural
// feature the compact encoding has to preserve: directed/undirected,
// weighted/unweighted, parallel arcs, self-loops, isolated vertices,
// heavy-tailed degrees.
func compactCorpus(t *testing.T) map[string]*Graph {
	t.Helper()
	withParallel := func(directed bool) *Graph {
		b := NewBuilder(8, directed)
		b.AddEdge(0, 3)
		b.AddEdge(0, 3) // parallel arc
		b.AddEdge(0, 0) // self loop
		b.AddWeightedEdge(1, 2, 2.5)
		b.AddWeightedEdge(1, 2, 7.25) // parallel, different weight
		b.AddEdge(5, 1)
		b.AddEdge(7, 0)
		return b.Finalize()
	}
	return map[string]*Graph{
		"rmat-directed":      RMAT(9, 8, 0.57, 0.19, 0.19, true, 42),
		"rmat-undirected":    RMAT(8, 6, 0.57, 0.19, 0.19, false, 7),
		"grid-weighted":      Grid(17, 23, 9, 3),
		"star-directed":      Star(64, true),
		"path-undirected":    Path(33, false),
		"parallel-directed":  withParallel(true),
		"parallel-undirect":  withParallel(false),
		"pa-undirected":      PreferentialAttachment(200, 3, 11),
		"er-directed-weight": WithRandomWeights(ErdosRenyi(120, 700, true, 5), 1, 10, 6),
		"empty":              NewBuilder(0, true).Finalize(),
		"isolated":           NewBuilder(5, false).Finalize(),
	}
}

func TestCompactAccessorEquivalence(t *testing.T) {
	for name, g := range compactCorpus(t) {
		t.Run(name, func(t *testing.T) {
			c := MustCompact(g)
			if !c.IsCompact() && g.NumArcs() >= 0 {
				t.Fatalf("Compact returned non-compact graph")
			}
			if MustCompact(c) != c {
				t.Fatalf("Compact of a compact graph must return it unchanged")
			}
			if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() ||
				c.NumArcs() != g.NumArcs() || c.Directed() != g.Directed() ||
				c.Weighted() != g.Weighted() {
				t.Fatalf("summary accessors disagree: %v vs %v", c, g)
			}
			g.BuildReverse()
			c2 := MustCompact(g) // compact with reverse already present
			for _, cc := range []*Graph{c, c2} {
				cc.BuildReverse()
				for u := 0; u < g.NumVertices(); u++ {
					id := VertexID(u)
					if cc.OutDegree(id) != g.OutDegree(id) || cc.InDegree(id) != g.InDegree(id) {
						t.Fatalf("vertex %d: degree mismatch", u)
					}
					checkSame(t, "out", g.OutNeighbors(id), cc.OutNeighbors(id), g.OutWeights(id), cc.OutWeights(id))
					checkSame(t, "in", g.InNeighbors(id), cc.InNeighbors(id), g.InWeights(id), cc.InWeights(id))
					checkIter(t, cc.OutArcs(id), g.OutNeighbors(id), g.OutWeights(id))
					checkIter(t, cc.InArcs(id), g.InNeighbors(id), g.InWeights(id))
					for i := 0; i < g.OutDegree(id); i++ {
						if cc.OutEdge(id, i) != g.OutEdge(id, i) {
							t.Fatalf("vertex %d: OutEdge(%d) mismatch", u, i)
						}
					}
				}
				if cc.Fingerprint() != g.Fingerprint() {
					t.Fatalf("fingerprint not representation-independent: %x vs %x",
						cc.Fingerprint(), g.Fingerprint())
				}
			}
			f := Flatten(c2)
			if f.IsCompact() {
				t.Fatalf("Flatten returned compact graph")
			}
			if f.Fingerprint() != g.Fingerprint() {
				t.Fatalf("Flatten changed fingerprint")
			}
			if Flatten(f) != f {
				t.Fatalf("Flatten of a flat graph must return it unchanged")
			}
		})
	}
}

func checkSame(t *testing.T, dir string, want, got []VertexID, wantW, gotW []float64) {
	t.Helper()
	if len(want) != len(got) || len(wantW) != len(gotW) {
		t.Fatalf("%s: length mismatch: %v vs %v", dir, want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: neighbor %d: %d != %d", dir, i, got[i], want[i])
		}
	}
	for i := range wantW {
		if math.Float64bits(wantW[i]) != math.Float64bits(gotW[i]) {
			t.Fatalf("%s: weight %d: %g != %g", dir, i, gotW[i], wantW[i])
		}
	}
}

func checkIter(t *testing.T, it ArcIter, adj []VertexID, ws []float64) {
	t.Helper()
	for i, v := range adj {
		if !it.Next() {
			t.Fatalf("iterator ended early at %d/%d", i, len(adj))
		}
		if it.To() != v {
			t.Fatalf("iterator arc %d: %d != %d", i, it.To(), v)
		}
		w := 1.0
		if ws != nil {
			w = ws[i]
		}
		if math.Float64bits(it.Weight()) != math.Float64bits(w) {
			t.Fatalf("iterator weight %d: %g != %g", i, it.Weight(), w)
		}
	}
	if it.Next() {
		t.Fatalf("iterator did not end after %d arcs", len(adj))
	}
}

func TestZeroArcIterIsEmpty(t *testing.T) {
	var it ArcIter
	if it.Next() {
		t.Fatal("zero ArcIter must be empty")
	}
}

func TestCompactLazyReverse(t *testing.T) {
	g := RMAT(9, 8, 0.57, 0.19, 0.19, true, 1)
	c := MustCompact(g)
	if c.HasReverse() {
		t.Fatal("fresh compact directed graph must not have a reverse")
	}
	before := c.ArcBytes()
	c.BuildReverse()
	if !c.HasReverse() {
		t.Fatal("BuildReverse must make the reverse available")
	}
	if c.ArcBytes() != before {
		t.Fatal("BuildReverse on a compact graph must not materialize anything")
	}
	g.BuildReverse()
	// First in-side access materializes, and results match the flat CSR.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := 0; u < g.NumVertices(); u++ {
				it := c.InArcs(VertexID(u))
				k := 0
				for it.Next() {
					k++
				}
				if k != g.InDegree(VertexID(u)) {
					t.Errorf("vertex %d: in-degree %d != %d", u, k, g.InDegree(VertexID(u)))
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.ArcBytes() <= before {
		t.Fatal("materialized reverse must be accounted by ArcBytes")
	}
	for u := 0; u < g.NumVertices(); u++ {
		checkSame(t, "in", g.InNeighbors(VertexID(u)), c.InNeighbors(VertexID(u)), nil, nil)
	}
}

func TestCompactArcBytesSmaller(t *testing.T) {
	g := RMAT(12, 16, 0.57, 0.19, 0.19, true, 99)
	c := MustCompact(g)
	fb, cb := g.ArcBytes(), c.ArcBytes()
	if cb >= fb {
		t.Fatalf("compact ArcBytes %d not smaller than flat %d", cb, fb)
	}
	t.Logf("flat=%d compact=%d ratio=%.2f", fb, cb, float64(fb)/float64(cb))
}

func TestCompactApplyDeltaPreservesRepr(t *testing.T) {
	g := RMAT(8, 4, 0.57, 0.19, 0.19, true, 17)
	g.BuildReverse()
	c := MustCompact(RMAT(8, 4, 0.57, 0.19, 0.19, true, 17))
	c.BuildReverse() // deferred
	d := &Delta{}
	d.AddVertices(2)
	d.AddWeightedEdge(3, VertexID(g.NumVertices()), 2.5)
	d.AddEdge(1, 2)
	if g.OutDegree(5) > 0 {
		d.RemoveEdge(5, g.OutNeighbors(5)[0])
	}
	ng, ad, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	nc, ac, err := ApplyDelta(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if !nc.IsCompact() {
		t.Fatal("ApplyDelta on a compact graph must return a compact graph")
	}
	if ng.IsCompact() {
		t.Fatal("ApplyDelta on a flat graph must return a flat graph")
	}
	if !nc.HasReverse() {
		t.Fatal("reverse availability must be preserved through ApplyDelta")
	}
	if ad.OldFingerprint != ac.OldFingerprint {
		t.Fatal("OldFingerprint must be representation-independent")
	}
	if len(ad.Arcs) != len(ac.Arcs) {
		t.Fatalf("diff length mismatch: %d vs %d", len(ad.Arcs), len(ac.Arcs))
	}
	for i := range ad.Arcs {
		if ad.Arcs[i] != ac.Arcs[i] {
			t.Fatalf("diff entry %d mismatch: %+v vs %+v", i, ad.Arcs[i], ac.Arcs[i])
		}
	}
	if ng.Fingerprint() != nc.Fingerprint() {
		t.Fatal("mutated graphs must fingerprint identically across representations")
	}
}

func TestBuilderSetCompact(t *testing.T) {
	b := NewBuilder(4, false)
	b.SetCompact(true)
	b.AddWeightedEdge(0, 1, 2)
	b.AddEdge(2, 3)
	g := b.Finalize()
	if !g.IsCompact() {
		t.Fatal("SetCompact(true) must produce a compact graph")
	}
	if !g.HasReverse() {
		t.Fatal("undirected compact graph must have its reverse aliased")
	}
	checkSame(t, "out", []VertexID{1}, g.OutNeighbors(0), []float64{2}, g.OutWeights(0))
	checkSame(t, "in", []VertexID{0}, g.InNeighbors(1), []float64{2}, g.InWeights(1))
}

func TestAppendOutNeighbors(t *testing.T) {
	g := MustCompact(Star(10, true))
	buf := make([]VertexID, 0, 16)
	got := g.AppendOutNeighbors(0, buf[:0])
	if len(got) != 9 || got[0] != 1 || got[8] != 9 {
		t.Fatalf("AppendOutNeighbors = %v", got)
	}
	if got2 := g.AppendOutNeighbors(1, buf[:0]); len(got2) != 0 {
		t.Fatalf("leaf vertex should have no out-neighbors, got %v", got2)
	}
}

func TestCompactReprStrings(t *testing.T) {
	g := Path(4, true)
	if g.Repr() != "flat" {
		t.Fatalf("flat Repr = %q", g.Repr())
	}
	c := MustCompact(g)
	if c.Repr() != "compact" {
		t.Fatalf("compact Repr = %q", c.Repr())
	}
	if g.Mapped() || c.Mapped() {
		t.Fatal("heap graphs must not report Mapped")
	}
	if err := g.Close(); err != nil {
		t.Fatalf("Close on heap graph: %v", err)
	}
}

func TestUvarintLen(t *testing.T) {
	cases := map[uint32]int{0: 1, 1: 1, 127: 1, 128: 2, 16383: 2, 16384: 3, 1 << 28: 5, math.MaxUint32: 5}
	for x, want := range cases {
		if got := uvarintLen(x); got != want {
			t.Fatalf("uvarintLen(%d) = %d, want %d", x, got, want)
		}
	}
}
