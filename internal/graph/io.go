package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list: one "u v" or
// "u v w" triple per line, with '#' or '%' starting a comment. Vertex IDs
// may be sparse; they are kept as given and the vertex count is
// 1 + max(id). Lines mixing 2- and 3-column formats are allowed; missing
// weights default to 1.
func ReadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	type rawEdge struct {
		u, v uint64
		w    float64
	}
	var edges []rawEdge
	var maxID uint64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id: %w", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id: %w", lineNo, err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, rawEdge{u, v, w})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	n := 0
	if len(edges) > 0 {
		n = int(maxID) + 1
	}
	bld := NewBuilder(n, directed)
	for _, e := range edges {
		bld.AddWeightedEdge(VertexID(e.u), VertexID(e.v), e.w)
	}
	return bld.Finalize(), nil
}

// WriteEdgeList writes g as a parseable edge list. Undirected edges are
// written once (u <= v ordering); weights are written only for weighted
// graphs.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	kind := "undirected"
	if g.Directed() {
		kind = "directed"
	}
	if _, err := fmt.Fprintf(bw, "# %s |V|=%d |E|=%d\n", kind, g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	weighted := g.Weighted()
	for u := 0; u < g.NumVertices(); u++ {
		it := g.OutArcs(VertexID(u))
		for it.Next() {
			v := it.To()
			if !g.Directed() && v < VertexID(u) {
				continue
			}
			var err error
			if weighted {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", u, v, it.Weight())
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
