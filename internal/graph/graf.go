package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"unsafe"
)

// DVGRAF is the binary on-disk graph format. It stores exactly the
// compact representation — arc offsets, gap-varint adjacency stream,
// per-vertex byte offsets, optional weights — so a graph can be mapped
// straight from the file without ever holding the edge list on the heap
// twice. Layout (all integers little-endian):
//
//	magic   [6]byte  "DVGRAF"
//	version u16      GraphFormatVersion
//	flags   u64      bit 0 directed, bit 1 weighted
//	n       u64      vertex count
//	arcs    u64      stored adjacency entries (== outOff[n])
//	cOutLen u64      gap-varint stream length in bytes
//	outOff  (n+1)×i64   arc offsets
//	cOutIdx (n+1)×u32   per-vertex byte offsets into the stream
//	pad     0..7 zero bytes to an 8-byte boundary
//	cOut    cOutLen bytes of gap-varint adjacency
//	pad     0..7 zero bytes to an 8-byte boundary
//	weights arcs×f64 (present iff the weighted flag is set)
//	crc     u32      IEEE CRC-32 of every preceding byte
//
// Sections start on 8-byte boundaries so an mmap'd file can be aliased
// directly as []int64/[]float64 slices on little-endian hosts. Only the
// out-direction is stored; the reverse adjacency is derivable and
// (re)built lazily after loading.

// GraphFormatVersion is the current DVGRAF version. Decoding rejects any
// other version.
const GraphFormatVersion = 1

// grafMagic prefixes every DVGRAF file.
var grafMagic = [6]byte{'D', 'V', 'G', 'R', 'A', 'F'}

// ErrGraphCorrupt is wrapped by every DVGRAF decoding error caused by
// malformed input (truncation, bad magic, checksum mismatch, impossible
// section lengths, invalid adjacency streams).
var ErrGraphCorrupt = errors.New("graph: corrupt DVGRAF data")

// ErrGraphVersion is wrapped when the input is a DVGRAF file of an
// unsupported format version.
var ErrGraphVersion = errors.New("graph: unsupported DVGRAF version")

const (
	grafHeaderLen = 40 // magic + version + flags + n + arcs + cOutLen
	grafFlagDir   = 1 << 0
	grafFlagWtd   = 1 << 1
)

// LoadMode selects the in-memory representation a DVGRAF graph is
// decoded into.
type LoadMode int

const (
	// LoadFlat decodes into the flat CSR: fastest iteration, largest
	// footprint. The varint stream is decoded directly into the
	// adjacency array — no intermediate edge list.
	LoadFlat LoadMode = iota
	// LoadCompact keeps the gap-varint form on the heap: ~2 bytes/arc
	// for the adjacency instead of 4, decoded on the fly by ArcIter.
	LoadCompact
	// LoadMmap maps the file and aliases the compact representation
	// straight into the mapping: load allocates almost nothing, and
	// cold adjacency pages stay on disk until iterated. Falls back to
	// LoadCompact when mapping is unavailable (non-unix, misaligned,
	// or big-endian hosts). Only valid with ReadGraphFile.
	LoadMmap
)

func (m LoadMode) String() string {
	switch m {
	case LoadFlat:
		return "flat"
	case LoadCompact:
		return "compact"
	case LoadMmap:
		return "mmap"
	}
	return fmt.Sprintf("LoadMode(%d)", int(m))
}

// hostLittleEndian reports whether the host stores integers
// little-endian, the precondition for aliasing file sections in place.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func pad8(x uint64) uint64 { return (8 - x%8) % 8 }

// EncodeGraph serializes g into the DVGRAF format. Both representations
// encode identically: a flat graph is gap-encoded on the fly.
func EncodeGraph(g *Graph) []byte {
	cOut, cOutIdx := g.cOut, g.cOutIdx
	if cOutIdx == nil {
		var err error
		cOut, cOutIdx, err = encodeAdj(g.outOff, g.outAdj, "out")
		if err != nil {
			// DVGRAF shares the uint32 stream-offset limit, so a graph
			// past it has no on-disk form either; surface the typed
			// overflow rather than writing corrupt offsets.
			panic(err)
		}
	}
	n := uint64(g.n)
	arcs := uint64(g.NumArcs())
	cOutLen := uint64(len(cOut))
	size := uint64(grafHeaderLen) + 8*(n+1) + 4*(n+1)
	size += pad8(size)
	size += cOutLen
	size += pad8(size)
	if g.weighted {
		size += 8 * arcs
	}
	size += 4 // crc
	buf := make([]byte, 0, size)

	buf = append(buf, grafMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, GraphFormatVersion)
	var flags uint64
	if g.directed {
		flags |= grafFlagDir
	}
	if g.weighted {
		flags |= grafFlagWtd
	}
	buf = binary.LittleEndian.AppendUint64(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, n)
	buf = binary.LittleEndian.AppendUint64(buf, arcs)
	buf = binary.LittleEndian.AppendUint64(buf, cOutLen)
	for _, o := range g.outOff {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o))
	}
	for _, o := range cOutIdx {
		buf = binary.LittleEndian.AppendUint32(buf, o)
	}
	for i := pad8(uint64(len(buf))); i > 0; i-- {
		buf = append(buf, 0)
	}
	buf = append(buf, cOut...)
	for i := pad8(uint64(len(buf))); i > 0; i-- {
		buf = append(buf, 0)
	}
	if g.weighted {
		for _, w := range g.outW {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// grafSections locates and fully validates every section of a DVGRAF
// image: exact length, checksum, monotonic offset arrays, and a
// complete walk of the varint stream (bounded gaps, in-range
// neighbours, per-vertex byte ranges consumed exactly). After it
// returns nil the adjacency stream is safe for the unchecked ArcIter
// decoder.
type grafSections struct {
	directed, weighted bool
	n                  int
	arcs               uint64
	outOff             []byte // raw LE section bytes
	cOutIdx            []byte
	cOut               []byte
	weights            []byte // nil when unweighted
}

func parseGraf(b []byte) (*grafSections, error) {
	bad := func(format string, a ...any) error {
		return fmt.Errorf("%w: %s", ErrGraphCorrupt, fmt.Sprintf(format, a...))
	}
	if len(b) < 8 {
		return nil, bad("truncated header (%d bytes)", len(b))
	}
	for i := range grafMagic {
		if b[i] != grafMagic[i] {
			return nil, bad("bad magic")
		}
	}
	if v := binary.LittleEndian.Uint16(b[6:]); v != GraphFormatVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrGraphVersion, v, GraphFormatVersion)
	}
	if len(b) < grafHeaderLen+4 {
		return nil, bad("truncated header (%d bytes)", len(b))
	}
	flags := binary.LittleEndian.Uint64(b[8:])
	if flags&^uint64(grafFlagDir|grafFlagWtd) != 0 {
		return nil, bad("unknown flags %#x", flags)
	}
	n := binary.LittleEndian.Uint64(b[16:])
	arcs := binary.LittleEndian.Uint64(b[24:])
	cOutLen := binary.LittleEndian.Uint64(b[32:])
	if n > math.MaxUint32 {
		return nil, bad("vertex count %d exceeds the 32-bit ID space", n)
	}
	if arcs > cOutLen {
		// Every arc takes at least one stream byte.
		return nil, bad("%d arcs cannot fit in a %d-byte stream", arcs, cOutLen)
	}
	if cOutLen > uint64(len(b)) {
		return nil, bad("stream length %d exceeds input", cOutLen)
	}
	weighted := flags&grafFlagWtd != 0
	size := uint64(grafHeaderLen) + 8*(n+1) + 4*(n+1)
	if size < uint64(grafHeaderLen) || size > uint64(len(b)) {
		return nil, bad("offset sections for %d vertices exceed input", n)
	}
	offStart := uint64(grafHeaderLen)
	idxStart := offStart + 8*(n+1)
	size += pad8(size)
	streamStart := size
	size += cOutLen
	size += pad8(size)
	weightStart := size
	if weighted {
		size += 8 * arcs
	}
	size += 4
	if size != uint64(len(b)) {
		return nil, bad("size mismatch: have %d bytes, layout needs %d", len(b), size)
	}
	sum := crc32.ChecksumIEEE(b[:len(b)-4])
	if got := binary.LittleEndian.Uint32(b[len(b)-4:]); got != sum {
		return nil, bad("checksum mismatch: %08x != %08x", got, sum)
	}

	s := &grafSections{
		directed: flags&grafFlagDir != 0,
		weighted: weighted,
		n:        int(n),
		arcs:     arcs,
		outOff:   b[offStart:idxStart],
		cOutIdx:  b[idxStart : idxStart+4*(n+1)],
		cOut:     b[streamStart : streamStart+cOutLen],
	}
	if weighted {
		s.weights = b[weightStart : weightStart+8*arcs]
	}

	// Structural validation: the CRC guards against accidental damage,
	// this guards against adversarial images with a valid checksum.
	prevOff := uint64(0)
	for u := uint64(0); u <= n; u++ {
		o := binary.LittleEndian.Uint64(s.outOff[8*u:])
		if o < prevOff || (u == 0 && o != 0) {
			return nil, bad("arc offsets not monotone at vertex %d", u)
		}
		prevOff = o
	}
	if prevOff != arcs {
		return nil, bad("arc offsets end at %d, header says %d arcs", prevOff, arcs)
	}
	prevIdx := uint64(0)
	for u := uint64(0); u <= n; u++ {
		o := uint64(binary.LittleEndian.Uint32(s.cOutIdx[4*u:]))
		if o < prevIdx || (u == 0 && o != 0) {
			return nil, bad("stream offsets not monotone at vertex %d", u)
		}
		prevIdx = o
	}
	if prevIdx != cOutLen {
		return nil, bad("stream offsets end at %d, header says %d bytes", prevIdx, cOutLen)
	}
	p := uint64(0)
	for u := uint64(0); u < n; u++ {
		deg := binary.LittleEndian.Uint64(s.outOff[8*(u+1):]) - binary.LittleEndian.Uint64(s.outOff[8*u:])
		end := uint64(binary.LittleEndian.Uint32(s.cOutIdx[4*(u+1):]))
		prev := uint64(0)
		for k := uint64(0); k < deg; k++ {
			var x uint64
			var shift uint
			for {
				if p >= end {
					return nil, bad("vertex %d: adjacency stream truncated", u)
				}
				c := s.cOut[p]
				p++
				x |= uint64(c&0x7f) << shift
				if c < 0x80 {
					break
				}
				shift += 7
				if shift > 32 {
					return nil, bad("vertex %d: oversized varint", u)
				}
			}
			prev += x
			if prev >= n {
				return nil, bad("vertex %d: neighbour %d out of range", u, prev)
			}
		}
		if p != end {
			return nil, bad("vertex %d: %d trailing stream bytes", u, end-p)
		}
	}
	return s, nil
}

// DecodeGraph decodes a DVGRAF image into a graph with the requested
// representation (LoadFlat or LoadCompact; LoadMmap needs a file — use
// ReadGraphFile). The input is fully validated and never aliased, and
// decoding never panics on malformed input: it returns an error
// wrapping ErrGraphCorrupt or ErrGraphVersion.
func DecodeGraph(b []byte, mode LoadMode) (*Graph, error) {
	if mode == LoadMmap {
		return nil, fmt.Errorf("graph: DecodeGraph: LoadMmap requires a file; use ReadGraphFile")
	}
	s, err := parseGraf(b)
	if err != nil {
		return nil, err
	}
	return s.build(mode, false)
}

// build assembles the Graph. With alias=true (mmap, or a private file
// buffer) the compact sections reference the parsed bytes directly when
// the host allows it; otherwise they are copied out.
func (s *grafSections) build(mode LoadMode, alias bool) (*Graph, error) {
	g := &Graph{n: s.n, directed: s.directed, weighted: s.weighted}
	canAlias := alias && hostLittleEndian &&
		uintptr(unsafe.Pointer(unsafe.SliceData(s.outOff)))%8 == 0 &&
		(s.weights == nil || uintptr(unsafe.Pointer(unsafe.SliceData(s.weights)))%8 == 0)
	if canAlias {
		g.outOff = unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(s.outOff))), s.n+1)
		if s.weights != nil {
			g.outW = unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(s.weights))), s.arcs)
		}
	} else {
		g.outOff = make([]int64, s.n+1)
		for i := range g.outOff {
			g.outOff[i] = int64(binary.LittleEndian.Uint64(s.outOff[8*i:]))
		}
		if s.weights != nil {
			g.outW = make([]float64, s.arcs)
			for i := range g.outW {
				g.outW[i] = math.Float64frombits(binary.LittleEndian.Uint64(s.weights[8*i:]))
			}
		}
	}
	switch mode {
	case LoadFlat:
		g.outAdj = decodeAdj(g.outOff, s.cOut)
	case LoadCompact, LoadMmap:
		if canAlias {
			// cOutIdx has 4-byte alignment requirements only.
			g.cOutIdx = unsafe.Slice((*uint32)(unsafe.Pointer(unsafe.SliceData(s.cOutIdx))), s.n+1)
			g.cOut = s.cOut
		} else {
			g.cOutIdx = make([]uint32, s.n+1)
			for i := range g.cOutIdx {
				g.cOutIdx[i] = binary.LittleEndian.Uint32(s.cOutIdx[4*i:])
			}
			g.cOut = append([]byte(nil), s.cOut...)
		}
	}
	if !g.directed {
		g.BuildReverse() // alias in-direction, both representations
	}
	return g, nil
}

// WriteGraphFile encodes g into path in the DVGRAF format.
func WriteGraphFile(path string, g *Graph) error {
	return os.WriteFile(path, EncodeGraph(g), 0o644)
}

// ReadGraphFile loads a DVGRAF file with the requested representation.
// LoadMmap maps the file read-only — the returned graph aliases the
// mapping, stays valid until Close, and must not be used afterwards;
// validation reads every page once, then the pages are dropped back to
// the file so the steady-state footprint is only what iteration
// touches. When mapping is unavailable LoadMmap silently degrades to a
// heap-backed compact load.
func ReadGraphFile(path string, mode LoadMode) (*Graph, error) {
	if mode == LoadMmap {
		if g, handled, err := readGraphMmap(path); handled {
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			return g, nil
		}
		mode = LoadCompact
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := parseGraf(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// b is private to this call, so the compact form may alias it
	// instead of copying the sections out.
	return s.build(mode, mode == LoadCompact)
}

// IsGraphFile sniffs whether path starts with the DVGRAF magic.
func IsGraphFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [6]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return false
	}
	return hdr == grafMagic
}
