package graph

import (
	"fmt"
	"math"
	"math/bits"
)

// Compact adjacency representation.
//
// A compact graph stores each vertex's sorted neighbour list as a
// delta-gap varint byte stream instead of a []VertexID slice: the first
// neighbour is encoded as itself, every later neighbour as the
// (non-negative) gap from its predecessor, each value LEB128-style with
// 7 payload bits per byte. On power-law graphs the common case is a one-
// or two-byte arc, cutting adjacency storage from 4 bytes/arc to ~2.
//
// The compact form keeps the arc-offset array (outOff/inOff) and the
// weight arrays of the flat CSR, and adds a per-vertex byte-offset array
// (cOutIdx/cInIdx) into the stream, so degrees, weight lookup, and
// Fingerprint are representation-independent. Adjacency is consumed
// through the ArcIter cursor or the ForEach helpers; OutNeighbors /
// InNeighbors still work but return freshly allocated copies.
//
// Compact directed graphs additionally defer BuildReverse: the reverse
// adjacency is materialized on first in-side access rather than when
// BuildReverse is called, so programs that declare #in but only ever
// push along out-edges never pay for an in-CSR at all.

// maxCompactStream bounds one direction's encoded adjacency: byte
// offsets are uint32, so a stream must fit in 4 GiB (roughly two billion
// arcs per direction at typical gap sizes). It is a variable only so the
// overflow tests can lower it without materializing billions of arcs; no
// non-test code reassigns it.
var maxCompactStream uint64 = math.MaxUint32

// CompactOverflowError is the typed error returned by Compact and
// Builder.Compact when one direction's gap-varint stream would exceed
// the uint32 byte-offset limit. Offsets past 4 GiB cannot be represented
// in the cOutIdx/cInIdx arrays, so instead of writing truncated offsets
// the encoder refuses; callers keep the flat CSR (or shard the graph).
type CompactOverflowError struct {
	Direction string // "out" or "in"
	Vertex    int    // first vertex whose list pushed the stream past the limit
	Bytes     uint64 // encoded bytes accumulated through that vertex
}

func (e *CompactOverflowError) Error() string {
	return fmt.Sprintf("graph: %s-adjacency gap-varint stream is %d bytes at vertex %d, exceeding the 4 GiB uint32 offset limit; compact representation unavailable",
		e.Direction, e.Bytes, e.Vertex)
}

// ArcIter is a copy-free cursor over one vertex's adjacency, valid for
// both flat and compact graphs:
//
//	it := g.OutArcs(u)
//	for it.Next() {
//		use(it.To(), it.Weight())
//	}
//
// ArcIter is a plain value: obtaining and advancing one never
// allocates, which is what lets the engine's hot paths stay
// allocation-free on either representation. The zero ArcIter is empty.
type ArcIter struct {
	adj  []VertexID // flat representation (non-nil even when empty)
	b    []byte     // compact: this vertex's encoded stream
	ws   []float64  // this vertex's weights, or nil when unweighted
	i    int        // arc ordinal within the vertex
	p    int        // byte position in b (compact)
	rem  int        // arcs remaining (compact)
	prev uint32     // previous decoded neighbour (gap base)
	v    VertexID
	w    float64
}

// Next advances to the next arc, reporting whether one exists.
func (it *ArcIter) Next() bool {
	if it.adj != nil {
		if it.i == len(it.adj) {
			return false
		}
		it.v = it.adj[it.i]
	} else {
		if it.rem == 0 {
			return false
		}
		it.rem--
		var x uint32
		var s uint
		p := it.p
		for {
			c := it.b[p]
			p++
			if c < 0x80 {
				x |= uint32(c) << s
				break
			}
			x |= uint32(c&0x7f) << s
			s += 7
		}
		it.p = p
		it.v = it.prev + x
		it.prev = it.v
	}
	if it.ws != nil {
		it.w = it.ws[it.i]
	} else {
		it.w = 1
	}
	it.i++
	return true
}

// To returns the far endpoint of the current arc.
func (it *ArcIter) To() VertexID { return it.v }

// Weight returns the weight of the current arc (1 when unweighted).
func (it *ArcIter) Weight() float64 { return it.w }

// OutArcs returns a cursor over u's out-edges.
func (g *Graph) OutArcs(u VertexID) ArcIter {
	lo, hi := g.outOff[u], g.outOff[u+1]
	var ws []float64
	if g.outW != nil {
		ws = g.outW[lo:hi]
	}
	if g.cOutIdx == nil {
		return ArcIter{adj: g.outAdj[lo:hi:hi], ws: ws}
	}
	return ArcIter{b: g.cOut[g.cOutIdx[u]:g.cOutIdx[u+1]], rem: int(hi - lo), ws: ws}
}

// InArcs returns a cursor over u's in-edges. The reverse adjacency must
// be available (BuildReverse for directed graphs); on a compact graph
// with deferred reverse adjacency, the first call materializes it.
func (g *Graph) InArcs(u VertexID) ArcIter {
	if !g.ensureIn() {
		panic("graph: InArcs requires reverse adjacency; call BuildReverse")
	}
	lo, hi := g.inOff[u], g.inOff[u+1]
	var ws []float64
	if g.inW != nil {
		ws = g.inW[lo:hi]
	}
	if g.cInIdx == nil {
		return ArcIter{adj: g.inAdj[lo:hi:hi], ws: ws}
	}
	return ArcIter{b: g.cIn[g.cInIdx[u]:g.cInIdx[u+1]], rem: int(hi - lo), ws: ws}
}

// ForEachOutNeighbor calls fn for every out-neighbour of u, in
// adjacency order, without allocating.
func (g *Graph) ForEachOutNeighbor(u VertexID, fn func(v VertexID)) {
	it := g.OutArcs(u)
	for it.Next() {
		fn(it.To())
	}
}

// ForEachOutEdge calls fn for every out-edge of u with its weight, in
// adjacency order, without allocating.
func (g *Graph) ForEachOutEdge(u VertexID, fn func(v VertexID, w float64)) {
	it := g.OutArcs(u)
	for it.Next() {
		fn(it.To(), it.Weight())
	}
}

// ForEachInNeighbor calls fn for every in-neighbour of u, in adjacency
// order, without allocating.
func (g *Graph) ForEachInNeighbor(u VertexID, fn func(v VertexID)) {
	it := g.InArcs(u)
	for it.Next() {
		fn(it.To())
	}
}

// ForEachInEdge calls fn for every in-edge of u with its weight, in
// adjacency order, without allocating.
func (g *Graph) ForEachInEdge(u VertexID, fn func(v VertexID, w float64)) {
	it := g.InArcs(u)
	for it.Next() {
		fn(it.To(), it.Weight())
	}
}

// AppendOutNeighbors appends u's out-neighbours to buf and returns the
// extended slice — the allocation-controlled form of OutNeighbors for
// callers that need an indexable scratch list on compact graphs.
func (g *Graph) AppendOutNeighbors(u VertexID, buf []VertexID) []VertexID {
	if g.cOutIdx == nil {
		return append(buf, g.OutNeighbors(u)...)
	}
	it := g.OutArcs(u)
	for it.Next() {
		buf = append(buf, it.To())
	}
	return buf
}

// IsCompact reports whether the graph stores adjacency in the compact
// gap-varint form.
func (g *Graph) IsCompact() bool { return g.cOutIdx != nil }

// Mapped reports whether the graph's storage aliases a live file mapping
// (see ReadGraphFile with LoadMmap). It turns false once the mapping has
// actually been released, which a Close can defer past outstanding
// Retain pins.
func (g *Graph) Mapped() bool {
	return g.unmap != nil && g.refs.Load()&graphUnmappedBit == 0
}

// Repr names the adjacency representation: "flat", "compact", or
// "compact+mmap" for a file-mapped compact graph.
func (g *Graph) Repr() string {
	switch {
	case g.unmap != nil:
		return "compact+mmap"
	case g.cOutIdx != nil:
		return "compact"
	default:
		return "flat"
	}
}

// ArcBytes returns the bytes currently resident for adjacency storage:
// offset arrays, neighbour storage (flat slices or encoded streams plus
// their byte-offset arrays), and weights, for every direction that has
// been materialized. Undirected graphs alias the two directions and are
// counted once. File-mapped bytes are counted too — they are
// addressable like heap bytes; the peak-RSS bench axis is what shows
// the paging difference. Go slice headers are not included.
func (g *Graph) ArcBytes() int64 {
	b := int64(len(g.outOff))*8 +
		int64(len(g.outAdj))*4 +
		int64(len(g.cOut)) +
		int64(len(g.cOutIdx))*4 +
		int64(len(g.outW))*8
	if g.directed && g.inOff != nil {
		b += int64(len(g.inOff))*8 +
			int64(len(g.inAdj))*4 +
			int64(len(g.cIn)) +
			int64(len(g.cInIdx))*4 +
			int64(len(g.inW))*8
	}
	return b
}

// Compact returns a graph equivalent to g whose adjacency is stored in
// the compact gap-varint form. The offset and weight arrays are shared
// with g (both are immutable); the savings are realized once the caller
// drops its reference to the flat graph. If g is already compact it is
// returned unchanged.
//
// If g is directed and has no reverse adjacency yet, the compact graph
// defers any later BuildReverse: the in-CSR is materialized only on
// first in-side access. If one direction's encoded stream would exceed
// 4 GiB (the uint32 byte-offset limit), Compact returns a
// *CompactOverflowError and no graph.
func Compact(g *Graph) (*Graph, error) {
	if g.cOutIdx != nil {
		return g, nil
	}
	ng := &Graph{n: g.n, directed: g.directed, weighted: g.weighted}
	ng.outOff = g.outOff
	ng.outW = g.outW
	var err error
	ng.cOut, ng.cOutIdx, err = encodeAdj(g.outOff, g.outAdj, "out")
	if err != nil {
		return nil, err
	}
	if g.inOff != nil {
		if !g.directed {
			ng.inOff, ng.inW = ng.outOff, ng.outW
			ng.cIn, ng.cInIdx = ng.cOut, ng.cOutIdx
		} else {
			ng.inOff = g.inOff
			ng.inW = g.inW
			ng.cIn, ng.cInIdx, err = encodeAdj(g.inOff, g.inAdj, "in")
			if err != nil {
				return nil, err
			}
		}
	}
	if fp := g.fp.Load(); fp != 0 {
		ng.fp.Store(fp)
	}
	return ng, nil
}

// MustCompact is Compact for graphs known to fit the 4 GiB stream limit
// (tests, generators); it panics on *CompactOverflowError.
func MustCompact(g *Graph) *Graph {
	ng, err := Compact(g)
	if err != nil {
		panic(err)
	}
	return ng
}

// Flatten returns a flat-CSR graph equivalent to g, decoding compact
// streams back into plain slices. If g is already flat it is returned
// unchanged. A deferred (not yet materialized) reverse adjacency is not
// carried over; callers that need it call BuildReverse on the result.
func Flatten(g *Graph) *Graph {
	if g.cOutIdx == nil {
		return g
	}
	ng := &Graph{n: g.n, directed: g.directed, weighted: g.weighted}
	ng.outOff = g.outOff
	ng.outW = g.outW
	ng.outAdj = decodeAdj(g.outOff, g.cOut)
	if g.inOff != nil {
		if !g.directed {
			ng.inOff, ng.inAdj, ng.inW = ng.outOff, ng.outAdj, ng.outW
		} else {
			ng.inOff = g.inOff
			ng.inW = g.inW
			ng.inAdj = decodeAdj(g.inOff, g.cIn)
		}
	}
	if fp := g.fp.Load(); fp != 0 {
		ng.fp.Store(fp)
	}
	return ng
}

// ensureIn makes the in-adjacency available if it can be, materializing
// the deferred reverse CSR of a compact directed graph on first use. It
// reports whether the in-adjacency is available.
func (g *Graph) ensureIn() bool {
	if g.lazyIn {
		g.inOnce.Do(g.materializeIn)
		return true
	}
	return g.inOff != nil
}

// materializeIn builds the compact reverse adjacency of a directed
// compact graph. Runs at most once, under g.inOnce. The reverse CSR is
// scattered into transient flat slices (released before returning) and
// then gap-encoded: scanning sources in increasing order leaves every
// in-list sorted, which is exactly what the encoding needs.
func (g *Graph) materializeIn() {
	inOff := make([]int64, g.n+1)
	for u := 0; u < g.n; u++ {
		it := g.OutArcs(VertexID(u))
		for it.Next() {
			inOff[it.To()+1]++
		}
	}
	for i := 0; i < g.n; i++ {
		inOff[i+1] += inOff[i]
	}
	arcs := inOff[g.n]
	inAdj := make([]VertexID, arcs)
	var inW []float64
	if g.outW != nil {
		inW = make([]float64, arcs)
	}
	cursor := make([]int64, g.n)
	copy(cursor, inOff[:g.n])
	for u := 0; u < g.n; u++ {
		it := g.OutArcs(VertexID(u))
		for it.Next() {
			v := it.To()
			p := cursor[v]
			cursor[v]++
			inAdj[p] = VertexID(u)
			if inW != nil {
				inW[p] = it.Weight()
			}
		}
	}
	// The lazy path runs under inOnce and has no error channel; a reverse
	// stream past 4 GiB is unrepresentable, so the typed error becomes a
	// panic here. Compact validated the out-direction eagerly; graphs big
	// enough to trip this should stay flat or load via DVGRAF/mmap.
	cIn, cInIdx, err := encodeAdj(inOff, inAdj, "in")
	if err != nil {
		panic(err)
	}
	g.cIn, g.cInIdx = cIn, cInIdx
	g.inW = inW
	g.inOff = inOff
}

// uvarintLen returns the encoded length of x in bytes (1..5).
func uvarintLen(x uint32) int {
	return (bits.Len32(x|1) + 6) / 7
}

// encodeAdj gap-encodes a flat adjacency into a byte stream plus a
// per-vertex byte-offset array. Neighbour lists must be sorted
// ascending within each vertex (the Builder invariant). A stream that
// would not fit the uint32 offsets yields a *CompactOverflowError
// before any offset is written truncated.
func encodeAdj(off []int64, adj []VertexID, dir string) ([]byte, []uint32, error) {
	n := len(off) - 1
	idx := make([]uint32, n+1)
	var total uint64
	for u := 0; u < n; u++ {
		prev := uint32(0)
		for i := off[u]; i < off[u+1]; i++ {
			v := adj[i]
			if v < prev {
				panic(fmt.Sprintf("graph: adjacency of vertex %d not sorted; cannot compact", u))
			}
			total += uint64(uvarintLen(v - prev))
			prev = v
		}
		if total > maxCompactStream {
			return nil, nil, &CompactOverflowError{Direction: dir, Vertex: u, Bytes: total}
		}
		idx[u+1] = uint32(total)
	}
	buf := make([]byte, total)
	p := 0
	for u := 0; u < n; u++ {
		prev := uint32(0)
		for i := off[u]; i < off[u+1]; i++ {
			v := adj[i]
			x := v - prev
			prev = v
			for x >= 0x80 {
				buf[p] = byte(x) | 0x80
				p++
				x >>= 7
			}
			buf[p] = byte(x)
			p++
		}
	}
	return buf, idx, nil
}

// decodeAdj expands a gap-encoded stream back into a flat adjacency
// slice. The stream must be well-formed (encoder output or a
// DVGRAF-validated stream).
func decodeAdj(off []int64, stream []byte) []VertexID {
	n := len(off) - 1
	adj := make([]VertexID, off[n])
	p := 0
	k := 0
	for u := 0; u < n; u++ {
		prev := uint32(0)
		for i := off[u]; i < off[u+1]; i++ {
			var x uint32
			var s uint
			for {
				c := stream[p]
				p++
				if c < 0x80 {
					x |= uint32(c) << s
					break
				}
				x |= uint32(c&0x7f) << s
				s += 7
			}
			prev += x
			adj[k] = prev
			k++
		}
	}
	return adj
}
