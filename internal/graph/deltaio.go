package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Mutation-log text format, one entry per line, '#' or '%' comments:
//
//	add u v [w]   add edge u→v (weight w, default 1)
//	del u v       remove every parallel edge u→v
//	set u v w     rewrite the weight of every parallel edge u→v
//	addv k        append k isolated vertices
//
// The format is deliberately the edge-list dialect with verbs, so the
// same tooling habits (comments, whitespace-splitting) apply.
//
// Logs authored on other platforms parse as-is: lines may end in "\n",
// "\r\n", or a lone "\r", every line is trimmed of surrounding
// whitespace, and a leading UTF-8 BOM is ignored.

// scanLogLines is the bufio.SplitFunc for mutation logs: it terminates a
// line on "\n", "\r\n", or a lone "\r" (classic-Mac and mixed-editor
// exports), so Windows-authored logs replay without normalization.
func scanLogLines(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if atEOF && len(data) == 0 {
		return 0, nil, nil
	}
	if i := bytes.IndexAny(data, "\r\n"); i >= 0 {
		if data[i] == '\n' {
			return i + 1, data[:i], nil
		}
		switch {
		case i+1 < len(data) && data[i+1] == '\n':
			return i + 2, data[:i], nil
		case i+1 < len(data) || atEOF:
			return i + 1, data[:i], nil
		default:
			return 0, nil, nil // hold the trailing \r until \r-vs-\r\n is decidable
		}
	}
	if atEOF {
		return len(data), data, nil
	}
	return 0, nil, nil
}

// ReadDeltaLog parses a mutation log.
func ReadDeltaLog(r io.Reader) (*Delta, error) {
	d := &Delta{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	sc.Split(scanLogLines)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if lineNo == 1 {
			line = strings.TrimPrefix(line, "\ufeff")
		}
		line = strings.TrimSpace(line)
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		verb, args := fields[0], fields[1:]
		bad := func(format string, a ...any) error {
			return fmt.Errorf("graph: delta line %d: %s", lineNo, fmt.Sprintf(format, a...))
		}
		id := func(s string) (VertexID, error) {
			u, err := strconv.ParseUint(s, 10, 32)
			if err != nil {
				return 0, bad("bad vertex id %q: %v", s, err)
			}
			return VertexID(u), nil
		}
		switch verb {
		case "add":
			if len(args) != 2 && len(args) != 3 {
				return nil, bad("add needs 2 or 3 arguments, got %d", len(args))
			}
			u, err := id(args[0])
			if err != nil {
				return nil, err
			}
			v, err := id(args[1])
			if err != nil {
				return nil, err
			}
			w := 1.0
			if len(args) == 3 {
				w, err = strconv.ParseFloat(args[2], 64)
				if err != nil {
					return nil, bad("bad weight %q: %v", args[2], err)
				}
			}
			d.AddWeightedEdge(u, v, w)
		case "del":
			if len(args) != 2 {
				return nil, bad("del needs 2 arguments, got %d", len(args))
			}
			u, err := id(args[0])
			if err != nil {
				return nil, err
			}
			v, err := id(args[1])
			if err != nil {
				return nil, err
			}
			d.RemoveEdge(u, v)
		case "set":
			if len(args) != 3 {
				return nil, bad("set needs 3 arguments, got %d", len(args))
			}
			u, err := id(args[0])
			if err != nil {
				return nil, err
			}
			v, err := id(args[1])
			if err != nil {
				return nil, err
			}
			w, err := strconv.ParseFloat(args[2], 64)
			if err != nil {
				return nil, bad("bad weight %q: %v", args[2], err)
			}
			d.SetWeight(u, v, w)
		case "addv":
			if len(args) != 1 {
				return nil, bad("addv needs 1 argument, got %d", len(args))
			}
			k, err := strconv.Atoi(args[0])
			if err != nil || k <= 0 {
				return nil, bad("addv needs a positive count, got %q", args[0])
			}
			d.AddVertices(k)
		default:
			return nil, bad("unknown verb %q (want add/del/set/addv)", verb)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: delta read: %w", err)
	}
	return d, nil
}

// ReadDeltaLogFile reads a mutation log from a file.
func ReadDeltaLogFile(path string) (*Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: delta: %w", err)
	}
	defer f.Close()
	return ReadDeltaLog(f)
}

// WriteDeltaLog writes d in the parseable text format.
func WriteDeltaLog(w io.Writer, d *Delta) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# delta: %d mutations\n", len(d.Muts)); err != nil {
		return err
	}
	for i, m := range d.Muts {
		var err error
		switch m.Op {
		case MutAddEdge:
			if m.W == 1 {
				_, err = fmt.Fprintf(bw, "add %d %d\n", m.U, m.V)
			} else {
				_, err = fmt.Fprintf(bw, "add %d %d %g\n", m.U, m.V, m.W)
			}
		case MutRemoveEdge:
			_, err = fmt.Fprintf(bw, "del %d %d\n", m.U, m.V)
		case MutSetWeight:
			_, err = fmt.Fprintf(bw, "set %d %d %g\n", m.U, m.V, m.W)
		case MutAddVertices:
			_, err = fmt.Fprintf(bw, "addv %d\n", m.Count)
		default:
			err = fmt.Errorf("graph: delta entry %d: unknown op %d", i, m.Op)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}
