package graph

import (
	"math/rand"
)

// The generators in this file are deterministic given their seed so that
// every benchmark and test is reproducible. They stand in for the paper's
// real-world datasets (Wikipedia, LiveJournal, Facebook), which are not
// redistributable; see DESIGN.md §2 for the substitution argument.

// RMAT generates a directed (or undirected) recursive-matrix graph with
// 2^scale vertices and approximately edgeFactor·2^scale edges, using the
// classic (a,b,c,d) quadrant probabilities. Duplicate arcs are removed.
// R-MAT graphs have heavy-tailed degree distributions similar to web and
// social graphs.
func RMAT(scale int, edgeFactor int, a, b, c float64, directed bool, seed int64) *Graph {
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n, directed)
	bld.SetDedup(true)
	for e := 0; e < m; e++ {
		u, v := rmatEdge(rng, scale, a, b, c)
		if u == v {
			continue // drop self loops
		}
		bld.AddEdge(VertexID(u), VertexID(v))
	}
	return bld.Finalize()
}

func rmatEdge(rng *rand.Rand, scale int, a, b, c float64) (int, int) {
	u, v := 0, 0
	for bit := 0; bit < scale; bit++ {
		r := rng.Float64()
		switch {
		case r < a:
			// top-left: nothing set
		case r < a+b:
			v |= 1 << bit
		case r < a+b+c:
			u |= 1 << bit
		default:
			u |= 1 << bit
			v |= 1 << bit
		}
	}
	return u, v
}

// PreferentialAttachment generates an undirected Barabási–Albert graph: n
// vertices, each new vertex attaching k edges to existing vertices chosen
// proportionally to their degree. The result is connected and scale-free.
func PreferentialAttachment(n, k int, seed int64) *Graph {
	if k < 1 {
		k = 1
	}
	if n < k+1 {
		n = k + 1
	}
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n, false)
	bld.SetDedup(true)
	// Repeated-endpoints list: choosing a uniform element of targets is
	// equivalent to degree-proportional selection.
	targets := make([]VertexID, 0, 2*n*k)
	// Seed clique over the first k+1 vertices.
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			bld.AddEdge(VertexID(i), VertexID(j))
			targets = append(targets, VertexID(i), VertexID(j))
		}
	}
	for v := k + 1; v < n; v++ {
		seen := make(map[VertexID]bool, k)
		chosen := make([]VertexID, 0, k) // insertion order keeps runs deterministic
		for len(chosen) < k {
			t := targets[rng.Intn(len(targets))]
			if int(t) == v || seen[t] {
				continue
			}
			seen[t] = true
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			bld.AddEdge(VertexID(v), t)
			targets = append(targets, VertexID(v), t)
		}
	}
	return bld.Finalize()
}

// ErdosRenyi generates a G(n, m) random graph with exactly m distinct
// edges (arcs if directed).
func ErdosRenyi(n, m int, directed bool, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(n, directed)
	bld.SetDedup(true)
	seen := make(map[uint64]bool, m)
	for len(seen) < m {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		key := uint64(u)<<32 | uint64(v)
		if !directed && u > v {
			key = uint64(v)<<32 | uint64(u)
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		bld.AddEdge(u, v)
	}
	return bld.Finalize()
}

// Grid generates an undirected rows×cols grid with weighted edges drawn
// uniformly from [1, maxW]. With maxW <= 1 the grid is unweighted. Grids
// approximate road networks: large diameter, uniform low degree.
func Grid(rows, cols int, maxW float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	bld := NewBuilder(n, false)
	w := func() float64 {
		if maxW <= 1 {
			return 1
		}
		return 1 + rng.Float64()*(maxW-1)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := VertexID(r*cols + c)
			if c+1 < cols {
				bld.AddWeightedEdge(u, u+1, w())
			}
			if r+1 < rows {
				bld.AddWeightedEdge(u, VertexID((r+1)*cols+c), w())
			}
		}
	}
	return bld.Finalize()
}

// Star generates a star: vertex 0 connected to all others. Directed stars
// point from the hub outward.
func Star(n int, directed bool) *Graph {
	bld := NewBuilder(n, directed)
	for v := 1; v < n; v++ {
		bld.AddEdge(0, VertexID(v))
	}
	return bld.Finalize()
}

// Path generates a path 0-1-…-(n-1). Directed paths point forward.
func Path(n int, directed bool) *Graph {
	bld := NewBuilder(n, directed)
	for v := 0; v+1 < n; v++ {
		bld.AddEdge(VertexID(v), VertexID(v+1))
	}
	return bld.Finalize()
}

// Cycle generates a cycle over n vertices.
func Cycle(n int, directed bool) *Graph {
	bld := NewBuilder(n, directed)
	for v := 0; v < n; v++ {
		bld.AddEdge(VertexID(v), VertexID((v+1)%n))
	}
	return bld.Finalize()
}

// Complete generates the complete graph K_n (all ordered pairs if directed).
func Complete(n int, directed bool) *Graph {
	bld := NewBuilder(n, directed)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if !directed && u > v {
				continue
			}
			bld.AddEdge(VertexID(u), VertexID(v))
		}
	}
	return bld.Finalize()
}

// WattsStrogatz generates an undirected small-world graph: a ring lattice
// of n vertices each connected to its k nearest neighbours (k even), with
// every edge rewired to a random endpoint with probability beta. Low beta
// keeps high clustering and large diameter (road-like); high beta
// approaches Erdős–Rényi.
func WattsStrogatz(n, k int, beta float64, seed int64) *Graph {
	if k%2 != 0 {
		k++
	}
	if k >= n {
		k = n - 1 - (n-1)%2
	}
	rng := rand.New(rand.NewSource(seed))
	type edge struct{ u, v VertexID }
	seen := map[uint64]bool{}
	key := func(a, b VertexID) uint64 {
		if a > b {
			a, b = b, a
		}
		return uint64(a)<<32 | uint64(b)
	}
	var edges []edge
	add := func(a, b VertexID) bool {
		if a == b || seen[key(a, b)] {
			return false
		}
		seen[key(a, b)] = true
		edges = append(edges, edge{a, b})
		return true
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			add(VertexID(u), VertexID((u+j)%n))
		}
	}
	// Rewire: replace the far endpoint with a uniform random vertex.
	for i := range edges {
		if rng.Float64() >= beta {
			continue
		}
		e := edges[i]
		for attempts := 0; attempts < 8; attempts++ {
			w := VertexID(rng.Intn(n))
			if w == e.u || seen[key(e.u, w)] {
				continue
			}
			delete(seen, key(e.u, e.v))
			seen[key(e.u, w)] = true
			edges[i].v = w
			break
		}
	}
	bld := NewBuilder(n, false)
	for _, e := range edges {
		bld.AddEdge(e.u, e.v)
	}
	return bld.Finalize()
}

// WithRandomWeights returns a weighted copy of g with edge weights drawn
// uniformly from [lo, hi]. For undirected graphs the two arcs of an edge
// receive the same weight.
func WithRandomWeights(g *Graph, lo, hi float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	bld := NewBuilder(g.n, g.directed)
	bld.SetCompact(g.IsCompact())
	for u := 0; u < g.n; u++ {
		g.ForEachOutNeighbor(VertexID(u), func(v VertexID) {
			if !g.directed && v < VertexID(u) {
				return // the mirrored arc is added by the builder
			}
			bld.AddWeightedEdge(VertexID(u), v, lo+rng.Float64()*(hi-lo))
		})
	}
	return bld.Finalize()
}
