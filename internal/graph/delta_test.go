package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// arcsOf flattens g's out-adjacency into (u,v,w) triples for comparison.
func arcsOf(g *Graph) [][3]float64 {
	var out [][3]float64
	for u := 0; u < g.NumVertices(); u++ {
		adj := g.OutNeighbors(VertexID(u))
		ws := g.OutWeights(VertexID(u))
		for i, v := range adj {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			out = append(out, [3]float64{float64(u), float64(v), w})
		}
	}
	return out
}

func TestApplyDeltaDirected(t *testing.T) {
	b := NewBuilder(4, true)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 3)
	b.AddWeightedEdge(2, 3, 4)
	g := b.Finalize()

	d := &Delta{}
	d.AddWeightedEdge(3, 0, 5)
	d.RemoveEdge(1, 2)
	d.SetWeight(2, 3, 7)
	ng, ad, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]float64{{0, 1, 2}, {2, 3, 7}, {3, 0, 5}}
	if got := arcsOf(ng); !reflect.DeepEqual(got, want) {
		t.Fatalf("mutated arcs = %v, want %v", got, want)
	}
	wantChanges := []ArcChange{
		{Kind: ArcRemove, U: 1, V: 2, OldW: 3},
		{Kind: ArcReweight, U: 2, V: 3, OldW: 4, NewW: 7},
		{Kind: ArcAdd, U: 3, V: 0, NewW: 5},
	}
	if !reflect.DeepEqual(ad.Arcs, wantChanges) {
		t.Fatalf("arc changes = %v, want %v", ad.Arcs, wantChanges)
	}
	if got, want := ad.Touched(g.NumVertices()), []VertexID{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("touched = %v, want %v", got, want)
	}
	// The original graph is untouched.
	if got := arcsOf(g); !reflect.DeepEqual(got, [][3]float64{{0, 1, 2}, {1, 2, 3}, {2, 3, 4}}) {
		t.Fatalf("original graph mutated: %v", got)
	}
}

// TestApplyDeltaFingerprint is the mutate-then-fingerprint regression test:
// Fingerprint caches its hash, so a mutated graph must start with the cache
// invalid — its fingerprint must be computed from the new structure and
// must match a from-scratch build of the same edges.
func TestApplyDeltaFingerprint(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Finalize()
	oldFP := g.Fingerprint() // populate the cache before mutating

	d := &Delta{}
	d.AddEdge(2, 0)
	ng, ad, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if ad.OldFingerprint != oldFP {
		t.Fatalf("AppliedDelta.OldFingerprint = %016x, want %016x", ad.OldFingerprint, oldFP)
	}
	if ng.Fingerprint() == oldFP {
		t.Fatalf("mutated graph kept the stale fingerprint %016x", oldFP)
	}
	b2 := NewBuilder(3, true)
	b2.AddEdge(0, 1)
	b2.AddEdge(1, 2)
	b2.AddEdge(2, 0)
	if want := b2.Finalize().Fingerprint(); ng.Fingerprint() != want {
		t.Fatalf("mutated fingerprint %016x != from-scratch build %016x", ng.Fingerprint(), want)
	}
	if g.Fingerprint() != oldFP {
		t.Fatalf("original graph's fingerprint changed")
	}
	// An empty delta rebuilds the same structure, so the (recomputed)
	// fingerprint must agree with the original.
	same, _, err := ApplyDelta(g, &Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if same.Fingerprint() != oldFP {
		t.Fatalf("empty delta changed fingerprint: %016x != %016x", same.Fingerprint(), oldFP)
	}
}

func TestApplyDeltaUndirectedMirrors(t *testing.T) {
	b := NewBuilder(3, false)
	b.AddEdge(0, 1)
	g := b.Finalize()

	d := &Delta{}
	d.AddWeightedEdge(1, 2, 4)
	d.RemoveEdge(1, 0) // reversed orientation must still find the edge
	ng, ad, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	want := [][3]float64{{1, 2, 4}, {2, 1, 4}}
	if got := arcsOf(ng); !reflect.DeepEqual(got, want) {
		t.Fatalf("mutated arcs = %v, want %v", got, want)
	}
	if len(ad.Arcs) != 4 { // two removes + two adds, mirrored
		t.Fatalf("want 4 mirrored arc changes, got %v", ad.Arcs)
	}
	if !ng.HasReverse() {
		t.Fatal("undirected result must alias reverse adjacency")
	}
}

func TestApplyDeltaSelfLoop(t *testing.T) {
	b := NewBuilder(2, false)
	b.AddEdge(0, 1)
	g := b.Finalize()
	d := &Delta{}
	d.AddEdge(1, 1)
	ng, ad, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	// Self-loops stay single-arc in undirected graphs, as in Builder.
	if got := arcsOf(ng); !reflect.DeepEqual(got, [][3]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 1}}) {
		t.Fatalf("arcs = %v", got)
	}
	if len(ad.Arcs) != 1 {
		t.Fatalf("self-loop add should be one arc change, got %v", ad.Arcs)
	}
}

func TestApplyDeltaSequentialSemantics(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 1)
	g := b.Finalize()

	// add then del: nothing survives, diff only removes the original.
	d := &Delta{}
	d.AddEdge(0, 1)
	d.RemoveEdge(0, 1)
	ng, ad, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(arcsOf(ng)) != 0 {
		t.Fatalf("add-then-del left arcs: %v", arcsOf(ng))
	}
	if !reflect.DeepEqual(ad.Arcs, []ArcChange{{Kind: ArcRemove, U: 0, V: 1, OldW: 1}}) {
		t.Fatalf("diff = %v", ad.Arcs)
	}

	// del then add: exactly the new edge, diff is remove+add.
	d = &Delta{}
	d.RemoveEdge(0, 1)
	d.AddWeightedEdge(0, 1, 9)
	ng, ad, err = ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := arcsOf(ng); !reflect.DeepEqual(got, [][3]float64{{0, 1, 9}}) {
		t.Fatalf("del-then-add arcs = %v", got)
	}
	if len(ad.Arcs) != 2 {
		t.Fatalf("diff = %v", ad.Arcs)
	}

	// set to the identical weight is a no-op in the diff.
	d = &Delta{}
	d.SetWeight(0, 1, 1)
	_, ad, err = ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ad.Arcs) != 0 {
		t.Fatalf("no-op reweight produced diff %v", ad.Arcs)
	}
}

func TestApplyDeltaParallelArcs(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(0, 1, 3)
	g := b.Finalize()

	// del clears every parallel arc.
	d := &Delta{}
	d.RemoveEdge(0, 1)
	ng, ad, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(arcsOf(ng)) != 0 || len(ad.Arcs) != 2 {
		t.Fatalf("parallel remove: arcs=%v diff=%v", arcsOf(ng), ad.Arcs)
	}

	// set rewrites every parallel arc.
	d = &Delta{}
	d.SetWeight(0, 1, 5)
	ng, _, err = ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := arcsOf(ng); !reflect.DeepEqual(got, [][3]float64{{0, 1, 5}, {0, 1, 5}}) {
		t.Fatalf("parallel set arcs = %v", got)
	}
}

func TestApplyDeltaAddVertices(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 1)
	g := b.Finalize()
	d := &Delta{}
	d.AddVertices(2)
	d.AddEdge(1, 3)
	ng, ad, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumVertices() != 4 || ad.NewVertices != 2 {
		t.Fatalf("n=%d new=%d", ng.NumVertices(), ad.NewVertices)
	}
	if got := arcsOf(ng); !reflect.DeepEqual(got, [][3]float64{{0, 1, 1}, {1, 3, 1}}) {
		t.Fatalf("arcs = %v", got)
	}
	// New isolated vertices are part of the activation frontier.
	if got, want := ad.Touched(2), []VertexID{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("touched = %v, want %v", got, want)
	}
}

func TestApplyDeltaWeightPromotion(t *testing.T) {
	b := NewBuilder(2, true)
	b.AddEdge(0, 1)
	g := b.Finalize()
	if g.Weighted() {
		t.Fatal("seed graph should be unweighted")
	}
	d := &Delta{}
	d.AddWeightedEdge(1, 0, 2.5)
	ng, _, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if !ng.Weighted() {
		t.Fatal("adding a non-unit weight must promote the graph to weighted")
	}
	if got := arcsOf(ng); !reflect.DeepEqual(got, [][3]float64{{0, 1, 1}, {1, 0, 2.5}}) {
		t.Fatalf("arcs = %v", got)
	}
}

func TestApplyDeltaPreservesReverse(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Finalize()
	g.BuildReverse()
	d := &Delta{}
	d.AddEdge(2, 0)
	ng, _, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if !ng.HasReverse() {
		t.Fatal("reverse adjacency should carry over when the source had it")
	}
	if got := ng.InNeighbors(0); !reflect.DeepEqual(got, []VertexID{2}) {
		t.Fatalf("in-neighbors of 0 = %v", got)
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	b := NewBuilder(3, true)
	b.AddEdge(0, 1)
	g := b.Finalize()
	cases := []struct {
		name string
		d    func() *Delta
		want string
	}{
		{"del missing", func() *Delta { d := &Delta{}; d.RemoveEdge(1, 2); return d }, "no such edge"},
		{"set missing", func() *Delta { d := &Delta{}; d.SetWeight(2, 0, 3); return d }, "no such edge"},
		{"del twice", func() *Delta { d := &Delta{}; d.RemoveEdge(0, 1); d.RemoveEdge(0, 1); return d }, "no such edge"},
		{"out of range", func() *Delta { d := &Delta{}; d.AddEdge(0, 7); return d }, "out of range"},
		{"bad addv", func() *Delta { d := &Delta{}; d.AddVertices(0); return d }, "positive count"},
	}
	for _, c := range cases {
		_, _, err := ApplyDelta(g, c.d())
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

func TestDeltaLogRoundTrip(t *testing.T) {
	d := &Delta{}
	d.AddEdge(0, 1)
	d.AddWeightedEdge(2, 3, 0.25)
	d.RemoveEdge(1, 0)
	d.SetWeight(2, 3, 1.75)
	d.AddVertices(4)
	var buf bytes.Buffer
	if err := WriteDeltaLog(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDeltaLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, d)
	}
}

func TestReadDeltaLogErrors(t *testing.T) {
	bad := []string{
		"frob 1 2",
		"add 1",
		"add a b",
		"add 1 2 x",
		"del 1",
		"set 1 2",
		"set 1 2 z",
		"addv",
		"addv -3",
		"addv x",
		"add 99999999999999999999 0",
	}
	for _, src := range bad {
		if _, err := ReadDeltaLog(strings.NewReader(src)); err == nil {
			t.Errorf("ReadDeltaLog(%q) succeeded, want error", src)
		}
	}
	d, err := ReadDeltaLog(strings.NewReader("# comment\n% also comment\n\n add 1 2 \n"))
	if err != nil || d.Len() != 1 {
		t.Fatalf("comment handling: %v %v", d, err)
	}
}

// FuzzDeltaLogDecode asserts the mutation-log decoder's contract on
// arbitrary input: it may reject, but must never panic, and anything it
// accepts must survive a write/re-read cycle to the same canonical text.
func FuzzDeltaLogDecode(f *testing.F) {
	f.Add("add 0 1\nadd 1 2 2.5\ndel 0 1\nset 1 2 7\naddv 3\n")
	f.Add("# comment\n% other comment\n\nadd 1 1\n")
	f.Add("add 0 1 NaN\nadd 0 1 +Inf\nadd 0 1 -0\n")
	f.Add("frob 1 2\n")
	f.Add("add 1\n")
	f.Add("addv -1\n")
	f.Add("")
	f.Add("add 0 1\r\ndel 0 1\r\naddv 2\r\n")
	f.Add("add 0 1\radd 1 2 2.5\rset 1 2 7\r")
	f.Add("add 0 1  \t\r\n\r\n% note\r\nadd 1 2\n")
	f.Add("\ufeffadd 0 1\r\naddv 1\r\n")
	f.Add("add 0 1\n\ufeffadd 1 2\n")
	f.Add("\r\r\r")
	f.Add("\r\n\r\n")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ReadDeltaLog(strings.NewReader(src))
		if err != nil {
			if d != nil {
				t.Fatal("ReadDeltaLog returned both a delta and an error")
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteDeltaLog(&buf, d); err != nil {
			t.Fatalf("write accepted delta: %v", err)
		}
		first := buf.String()
		d2, err := ReadDeltaLog(strings.NewReader(first))
		if err != nil {
			t.Fatalf("re-read written delta: %v\n%s", err, first)
		}
		var buf2 bytes.Buffer
		if err := WriteDeltaLog(&buf2, d2); err != nil {
			t.Fatal(err)
		}
		// Compare canonical text, not structs: NaN weights are legal and
		// defeat DeepEqual.
		if buf2.String() != first {
			t.Fatalf("canonical text not stable:\nfirst:\n%s\nsecond:\n%s", first, buf2.String())
		}
	})
}
