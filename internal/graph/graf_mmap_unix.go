//go:build unix

package graph

import (
	"os"
	"syscall"
)

// readGraphMmap maps path and builds a graph aliasing the mapping. It
// reports handled=false (and no error) when the caller should fall back
// to the buffered loader: mapping unsupported, empty file, big-endian
// host, or a kernel that refuses the map.
func readGraphMmap(path string) (*Graph, bool, error) {
	if !hostLittleEndian {
		return nil, false, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, true, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, true, err
	}
	size := st.Size()
	if size == 0 {
		return nil, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, false, nil // e.g. special files; use the buffered path
	}
	s, err := parseGraf(b)
	if err != nil {
		_ = syscall.Munmap(b)
		return nil, true, err
	}
	g, err := s.build(LoadMmap, true)
	if err != nil {
		_ = syscall.Munmap(b)
		return nil, true, err
	}
	if len(g.cOut) > 0 && &g.cOut[0] != &s.cOut[0] {
		// build copied instead of aliasing (misaligned sections —
		// impossible for a page-aligned mapping, but stay safe): the
		// graph is heap-backed, so drop the mapping now.
		_ = syscall.Munmap(b)
		return g, true, nil
	}
	// Validation touched every page; give them back so the resident
	// footprint starts at zero and only iterated pages fault back in.
	_ = syscall.Madvise(b, syscall.MADV_DONTNEED)
	g.unmap = func() error { return syscall.Munmap(b) }
	return g, true, nil
}
