package graph

import (
	"reflect"
	"strings"
	"testing"
)

// TestReadDeltaLogForeignLineEndings pins the platform-tolerance contract:
// CRLF, lone-CR, mixed endings, trailing whitespace, and a UTF-8 BOM all
// decode to the same mutations as the canonical Unix form.
func TestReadDeltaLogForeignLineEndings(t *testing.T) {
	canonical := "add 0 1\nadd 1 2 2.5\ndel 0 1\nset 1 2 7\naddv 3\n"
	want, err := ReadDeltaLog(strings.NewReader(canonical))
	if err != nil {
		t.Fatalf("canonical log: %v", err)
	}
	variants := map[string]string{
		"crlf":             "add 0 1\r\nadd 1 2 2.5\r\ndel 0 1\r\nset 1 2 7\r\naddv 3\r\n",
		"cr-only":          "add 0 1\radd 1 2 2.5\rdel 0 1\rset 1 2 7\raddv 3\r",
		"mixed":            "add 0 1\r\nadd 1 2 2.5\ndel 0 1\rset 1 2 7\r\naddv 3",
		"trailing-ws":      "add 0 1   \t\nadd 1 2 2.5\t\ndel 0 1 \nset 1 2 7  \naddv 3\t \n",
		"indented":         "  add 0 1\n\tadd 1 2 2.5\n del 0 1\n\t set 1 2 7\naddv 3\n",
		"bom":              "\ufeffadd 0 1\nadd 1 2 2.5\ndel 0 1\nset 1 2 7\naddv 3\n",
		"bom-crlf":         "\ufeffadd 0 1\r\nadd 1 2 2.5\r\ndel 0 1\r\nset 1 2 7\r\naddv 3\r\n",
		"windows-comments": "# header\r\n\r\nadd 0 1\r\n% mid\r\nadd 1 2 2.5\r\ndel 0 1\r\nset 1 2 7\r\naddv 3\r\n",
		"no-final-newline": "add 0 1\nadd 1 2 2.5\ndel 0 1\nset 1 2 7\naddv 3",
		"blank-cr-lines":   "add 0 1\r\n\r\radd 1 2 2.5\rdel 0 1\r\n   \r\nset 1 2 7\naddv 3\n",
	}
	for name, src := range variants {
		got, err := ReadDeltaLog(strings.NewReader(src))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(got.Muts, want.Muts) {
			t.Errorf("%s: mutations differ\ngot:  %+v\nwant: %+v", name, got.Muts, want.Muts)
		}
	}
}

// TestReadDeltaLogCRLFErrorLineNumbers checks that error positions count
// CR-terminated lines too.
func TestReadDeltaLogCRLFErrorLineNumbers(t *testing.T) {
	_, err := ReadDeltaLog(strings.NewReader("add 0 1\r\nadd 1 2\rfrob 9\r\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want unknown-verb error at line 3, got %v", err)
	}
}

// A BOM anywhere but the start of the stream is still garbage, not
// silently skipped: it glues onto the first field of its line.
func TestReadDeltaLogInteriorBOMRejected(t *testing.T) {
	_, err := ReadDeltaLog(strings.NewReader("add 0 1\n\ufeffadd 1 2\n"))
	if err == nil {
		t.Fatal("interior BOM must not be stripped")
	}
}
